// Package sim is a minimal discrete-event simulation kernel.
//
// It plays the role OMNeT++ plays in the paper: an event calendar with
// deterministic ordering that drives the flit-level network model. Time is an
// integer cycle count. Events scheduled for the same cycle are ordered by an
// explicit priority and then by insertion sequence, so a simulation is a pure
// function of its inputs and seeds.
package sim

import "container/heap"

// Time is simulation time in clock cycles.
type Time = int64

// Priority orders events that fire at the same cycle. Lower runs first.
type Priority int

// Standard priorities used by the network model. Traffic arrives first so a
// message generated at cycle t can be considered by the fabric tick of the
// same cycle; statistics run last so they observe a settled state.
const (
	PriTraffic Priority = 10
	PriFabric  Priority = 20
	PriStats   Priority = 30
)

// Event is a scheduled callback.
type Event struct {
	at  Time
	pri Priority
	seq uint64
	fn  func(now Time)
	// tick, when set, makes this a repeating event: after it fires, the
	// same Event object is re-pushed every cycles later while tick returns
	// true. Reusing the object keeps per-cycle tickers (the fabric clock)
	// allocation-free.
	tick   func(now Time) bool
	every  Time
	skipTo Time
	k      *Kernel
	dead   bool
	idx    int
}

// Cancel marks the event so that it will not fire. Cancelling an already
// fired or cancelled event is a no-op.
func (e *Event) Cancel() {
	if e == nil || e.dead {
		return
	}
	e.dead = true
	if e.k != nil && e.idx >= 0 {
		e.k.live--
	}
}

// SkipTo requests that this repeating event's next firing be at the given
// absolute time instead of one period after the current one (it never moves
// the firing earlier than that). Call it from inside the event's own
// callback; the request applies to the upcoming reschedule only. The fabric
// ticker uses it to fast-forward over stretches of cycles in which nothing
// can happen.
func (e *Event) SkipTo(at Time) { e.skipTo = at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].pri != h[j].pri {
		return h[i].pri < h[j].pri
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Kernel is the event calendar. The zero value is ready to use.
type Kernel struct {
	heap    eventHeap
	now     Time
	seq     uint64
	live    int // scheduled, not-cancelled events
	stopped bool
	fired   uint64
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Fired returns the number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending returns the number of events still scheduled to fire. Cancelled
// events are excluded, whether or not their heap slots have been discarded
// yet.
func (k *Kernel) Pending() int { return k.live }

// NextEventTime returns the time of the earliest event still scheduled to
// fire, and false when the calendar is empty. Dead (cancelled) entries at the
// head of the calendar are discarded on the way, so the reported time is
// always one at which something will actually run.
func (k *Kernel) NextEventTime() (Time, bool) {
	for len(k.heap) > 0 && k.heap[0].dead {
		heap.Pop(&k.heap)
	}
	if len(k.heap) == 0 {
		return 0, false
	}
	return k.heap[0].at, true
}

// Schedule registers fn to run at the given absolute time. Scheduling in the
// past (before Now) panics: the fabric depends on causality.
func (k *Kernel) Schedule(at Time, pri Priority, fn func(now Time)) *Event {
	if at < k.now {
		panic("sim: scheduling event in the past")
	}
	e := &Event{at: at, pri: pri, seq: k.seq, fn: fn, k: k}
	k.seq++
	k.live++
	heap.Push(&k.heap, e)
	return e
}

// After schedules fn delay cycles from now.
func (k *Kernel) After(delay Time, pri Priority, fn func(now Time)) *Event {
	return k.Schedule(k.now+delay, pri, fn)
}

// Stop halts Run before the next event fires.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in order until the calendar is empty, an event at a
// time strictly greater than until would fire, or Stop is called. It returns
// the final simulation time.
func (k *Kernel) Run(until Time) Time {
	k.stopped = false
	for len(k.heap) > 0 && !k.stopped {
		e := k.heap[0]
		if e.at > until {
			break
		}
		heap.Pop(&k.heap)
		if e.dead {
			continue
		}
		k.live--
		k.now = e.at
		k.fired++
		if e.tick != nil {
			// Repeating event: fire, then re-push the same object. The
			// sequence number is taken after the callback runs, matching a
			// callback that reschedules itself as its last action.
			if e.tick(e.at) && !e.dead {
				next := e.at + e.every
				if e.skipTo > next {
					next = e.skipTo
				}
				e.skipTo = 0
				e.at = next
				e.seq = k.seq
				k.seq++
				k.live++
				heap.Push(&k.heap, e)
			}
			continue
		}
		e.fn(e.at)
	}
	if k.now < until && !k.stopped {
		k.now = until
	}
	return k.now
}

// Ticker repeatedly schedules fn every period cycles at the given priority,
// starting at start. fn returning false stops the ticker. One Event object
// is reused for every firing, so a per-cycle ticker costs no allocation
// after setup. The returned Event supports Cancel and, from inside fn,
// SkipTo.
func (k *Kernel) Ticker(start Time, period Time, pri Priority, fn func(now Time) bool) *Event {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	if start < k.now {
		panic("sim: scheduling event in the past")
	}
	e := &Event{at: start, pri: pri, seq: k.seq, tick: fn, every: period, k: k}
	k.seq++
	k.live++
	heap.Push(&k.heap, e)
	return e
}

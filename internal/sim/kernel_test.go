package sim

import "testing"

// Dedicated Kernel bookkeeping tests: the calendar's Pending/NextEventTime
// accounting and the repeating-event (ticker) lifecycle, including the skip
// API the activity-driven fabric ticker uses.

func TestPendingExcludesCancelled(t *testing.T) {
	var k Kernel
	a := k.Schedule(5, PriFabric, func(Time) {})
	b := k.Schedule(7, PriFabric, func(Time) {})
	if k.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", k.Pending())
	}
	a.Cancel()
	if k.Pending() != 1 {
		t.Fatalf("Pending = %d after cancel, want 1", k.Pending())
	}
	a.Cancel() // double cancel must not double-decrement
	if k.Pending() != 1 {
		t.Fatalf("Pending = %d after double cancel, want 1", k.Pending())
	}
	k.Run(10)
	if k.Pending() != 0 {
		t.Fatalf("Pending = %d after run, want 0", k.Pending())
	}
	b.Cancel() // cancelling an already fired event is a no-op
	if k.Pending() != 0 {
		t.Fatalf("Pending = %d after post-fire cancel, want 0", k.Pending())
	}
}

func TestCancelBeforeFire(t *testing.T) {
	var k Kernel
	fired := 0
	e := k.Schedule(3, PriFabric, func(Time) { fired++ })
	k.Schedule(3, PriFabric, func(Time) { fired++ })
	e.Cancel()
	k.Run(10)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (cancelled event must not run)", fired)
	}
	if k.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", k.Fired())
	}
}

// Same-cycle ordering: priority first, then insertion sequence — including a
// ticker re-pushed at the cycle it fired from (its sequence is taken after
// the callback, so it runs after same-priority events already scheduled).
func TestSameCyclePriorityThenSeq(t *testing.T) {
	var k Kernel
	var got []string
	k.Schedule(4, PriStats, func(Time) { got = append(got, "stats") })
	k.Schedule(4, PriFabric, func(Time) { got = append(got, "fabric-a") })
	k.Schedule(4, PriTraffic, func(Time) { got = append(got, "traffic") })
	k.Schedule(4, PriFabric, func(Time) { got = append(got, "fabric-b") })
	k.Run(4)
	want := []string{"traffic", "fabric-a", "fabric-b", "stats"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestTickerSelfStop(t *testing.T) {
	var k Kernel
	ticks := 0
	k.Ticker(0, 2, PriFabric, func(now Time) bool {
		ticks++
		return now < 4 // fires at 0, 2, 4; stops after 4
	})
	k.Run(100)
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending = %d after ticker stop, want 0", k.Pending())
	}
}

func TestTickerCancel(t *testing.T) {
	var k Kernel
	ticks := 0
	e := k.Ticker(0, 1, PriFabric, func(Time) bool { ticks++; return true })
	k.Run(2)
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
	e.Cancel()
	if k.Pending() != 0 {
		t.Fatalf("Pending = %d after ticker cancel, want 0", k.Pending())
	}
	k.Run(10)
	if ticks != 3 {
		t.Fatal("cancelled ticker kept firing")
	}
}

func TestNextEventTime(t *testing.T) {
	var k Kernel
	if _, ok := k.NextEventTime(); ok {
		t.Fatal("empty calendar reported a next event")
	}
	a := k.Schedule(9, PriFabric, func(Time) {})
	k.Schedule(12, PriFabric, func(Time) {})
	if at, ok := k.NextEventTime(); !ok || at != 9 {
		t.Fatalf("NextEventTime = %d,%v, want 9,true", at, ok)
	}
	// A cancelled head must be skipped, not reported.
	a.Cancel()
	if at, ok := k.NextEventTime(); !ok || at != 12 {
		t.Fatalf("NextEventTime = %d,%v after cancel, want 12,true", at, ok)
	}
	k.Run(20)
	if _, ok := k.NextEventTime(); ok {
		t.Fatal("drained calendar reported a next event")
	}
}

// TestTickerSkipTo is the idle-skipping contract: a per-cycle ticker can
// fast-forward its next firing to the calendar's next event, and the skip
// never moves a firing earlier than one period ahead.
func TestTickerSkipTo(t *testing.T) {
	var k Kernel
	var ticks []Time
	arrivals := []Time{40, 41, 90}
	for _, at := range arrivals {
		k.Schedule(at, PriTraffic, func(Time) {})
	}
	var e *Event
	e = k.Ticker(0, 1, PriFabric, func(now Time) bool {
		ticks = append(ticks, now)
		if next, ok := k.NextEventTime(); ok && next > now+1 {
			e.SkipTo(next)
		}
		return now < 100
	})
	k.Run(200)
	// Tick at 0 skips to 40; 40 sees the arrival at 41 (period lower bound
	// keeps it at 41, not earlier); 41 skips to 90; 90 has nothing left and
	// ticks densely until the callback stops itself at 100.
	want := []Time{0, 40, 41, 90}
	for i := Time(91); i <= 100; i++ {
		want = append(want, i)
	}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

// TestTickerSkipToPastUntil: a skip target beyond the run horizon simply
// parks the ticker there; Run still ends at until.
func TestTickerSkipToPastUntil(t *testing.T) {
	var k Kernel
	ticks := 0
	var e *Event
	e = k.Ticker(0, 1, PriFabric, func(now Time) bool {
		ticks++
		e.SkipTo(500)
		return true
	})
	if end := k.Run(100); end != 100 {
		t.Fatalf("Run returned %d, want 100", end)
	}
	if ticks != 1 {
		t.Fatalf("ticks = %d, want 1", ticks)
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending = %d, want the parked ticker", k.Pending())
	}
}

package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	var k Kernel
	var got []Time
	for _, at := range []Time{5, 1, 3, 2, 4} {
		at := at
		k.Schedule(at, PriFabric, func(now Time) {
			if now != at {
				t.Errorf("event scheduled at %d fired at %d", at, now)
			}
			got = append(got, now)
		})
	}
	k.Run(100)
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestSameCyclePriorityOrder(t *testing.T) {
	var k Kernel
	var got []Priority
	k.Schedule(10, PriStats, func(Time) { got = append(got, PriStats) })
	k.Schedule(10, PriTraffic, func(Time) { got = append(got, PriTraffic) })
	k.Schedule(10, PriFabric, func(Time) { got = append(got, PriFabric) })
	k.Run(10)
	want := []Priority{PriTraffic, PriFabric, PriStats}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("priority order = %v, want %v", got, want)
		}
	}
}

func TestSamePrioritySeqOrder(t *testing.T) {
	var k Kernel
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(1, PriFabric, func(Time) { got = append(got, i) })
	}
	k.Run(1)
	for i, v := range got {
		if v != i {
			t.Fatalf("insertion order not preserved: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	var k Kernel
	fired := false
	e := k.Schedule(1, PriFabric, func(Time) { fired = true })
	e.Cancel()
	k.Run(10)
	if fired {
		t.Fatal("cancelled event fired")
	}
	e.Cancel() // double cancel is a no-op
}

func TestRunUntilBoundary(t *testing.T) {
	var k Kernel
	fired := 0
	k.Schedule(5, PriFabric, func(Time) { fired++ })
	k.Schedule(6, PriFabric, func(Time) { fired++ })
	end := k.Run(5)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (event at 6 is beyond until)", fired)
	}
	if end != 5 {
		t.Fatalf("Run returned %d, want 5", end)
	}
	k.Run(6)
	if fired != 2 {
		t.Fatalf("fired = %d after second run, want 2", fired)
	}
}

func TestSchedulingFromWithinEvent(t *testing.T) {
	var k Kernel
	var got []Time
	k.Schedule(1, PriFabric, func(now Time) {
		got = append(got, now)
		k.After(2, PriFabric, func(now Time) { got = append(got, now) })
	})
	k.Run(10)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got = %v, want [1 3]", got)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var k Kernel
	k.Schedule(5, PriFabric, func(Time) {})
	k.Run(5)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.Schedule(1, PriFabric, func(Time) {})
}

func TestStop(t *testing.T) {
	var k Kernel
	fired := 0
	k.Schedule(1, PriFabric, func(Time) { fired++; k.Stop() })
	k.Schedule(2, PriFabric, func(Time) { fired++ })
	k.Run(10)
	if fired != 1 {
		t.Fatalf("Stop did not halt the run: fired = %d", fired)
	}
	// Run can be resumed afterwards.
	k.Run(10)
	if fired != 2 {
		t.Fatalf("resume after Stop failed: fired = %d", fired)
	}
}

func TestTicker(t *testing.T) {
	var k Kernel
	var ticks []Time
	k.Ticker(0, 3, PriFabric, func(now Time) bool {
		ticks = append(ticks, now)
		return now < 9
	})
	k.Run(100)
	want := []Time{0, 3, 6, 9}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerBadPeriodPanics(t *testing.T) {
	var k Kernel
	defer func() {
		if recover() == nil {
			t.Fatal("zero period did not panic")
		}
	}()
	k.Ticker(0, 0, PriFabric, func(Time) bool { return false })
}

func TestNowAdvancesToUntil(t *testing.T) {
	var k Kernel
	if end := k.Run(42); end != 42 {
		t.Fatalf("empty run returned %d, want 42", end)
	}
	if k.Now() != 42 {
		t.Fatalf("Now() = %d, want 42", k.Now())
	}
}

// Property: for any set of (time, priority) pairs, execution order is the
// lexicographic order by (time, priority, insertion index).
func TestOrderingProperty(t *testing.T) {
	type item struct {
		At  uint8
		Pri uint8
	}
	check := func(items []item) bool {
		var k Kernel
		type key struct {
			at   Time
			pri  Priority
			seq  int
			name int
		}
		var fired []key
		for i, it := range items {
			i := i
			at := Time(it.At % 16)
			pri := Priority(it.Pri % 3)
			k.Schedule(at, pri, func(now Time) {
				fired = append(fired, key{at, pri, i, i})
			})
		}
		k.Run(1000)
		if len(fired) != len(items) {
			return false
		}
		return sort.SliceIsSorted(fired, func(a, b int) bool {
			x, y := fired[a], fired[b]
			if x.at != y.at {
				return x.at < y.at
			}
			if x.pri != y.pri {
				return x.pri < y.pri
			}
			return x.seq < y.seq
		})
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var k Kernel
		for j := 0; j < 100; j++ {
			k.Schedule(Time(j%10), PriFabric, func(Time) {})
		}
		k.Run(10)
	}
}

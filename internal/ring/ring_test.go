package ring

import (
	"testing"

	"quarc/internal/model"
	"quarc/internal/topology"
)

// TestCDGAcyclic checks the deadlock-freedom argument: the channel
// dependency graph over all shortest-direction routes, with the dateline VC
// split, has no directed cycle (Dally & Seitz).
func TestCDGAcyclic(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64} {
		ok, stuck := CDG(n).Acyclic()
		if !ok {
			t.Errorf("n=%d: CDG has a cycle through %v", n, stuck)
		}
	}
}

// TestRouteChannelsShortest checks that every route takes the shorter arc
// (ties go clockwise) and never exceeds n/2 hops.
func TestRouteChannelsShortest(t *testing.T) {
	n := 16
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			chs := RouteChannels(n, s, d)
			hops := len(chs)
			want := topology.Offset(n, s, d)
			if want > n/2 {
				want = n - want
			}
			if hops != want {
				t.Fatalf("route %d->%d: %d hops, want %d", s, d, hops, want)
			}
		}
	}
}

// TestUnicastAndBroadcastDeliver drives the fabric directly: every unicast
// and software broadcast lands, with no duplicates.
func TestUnicastAndBroadcastDeliver(t *testing.T) {
	fab, as, err := Build(Config{N: 16, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 16; s++ {
		as[s].SendUnicast((s+5)%16, 4, 0)
	}
	as[3].SendBroadcast(4, 0)
	for i := 0; i < 20000 && fab.Tracker.InFlight() > 0; i++ {
		fab.Step()
	}
	if left := fab.Tracker.InFlight(); left != 0 {
		t.Fatalf("%d messages still in flight", left)
	}
	if dup := fab.Tracker.Duplicates(); dup != 0 {
		t.Fatalf("%d duplicate deliveries", dup)
	}
	if got, want := fab.Tracker.Completed(), uint64(17); got != want {
		t.Fatalf("completed %d messages, want %d", got, want)
	}
}

// TestRegistered checks the package registered itself under its wire name.
func TestRegistered(t *testing.T) {
	m, ok := model.Lookup("ring")
	if !ok {
		t.Fatal("ring is not registered")
	}
	if err := m.CheckN(16); err != nil {
		t.Fatalf("CheckN(16): %v", err)
	}
	if m.CheckN(7) == nil {
		t.Fatal("CheckN(7) accepted a non-ring size")
	}
	fab, nodes, err := m.Build(model.BuildConfig{N: m.ExampleN, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fab.N != m.ExampleN || len(nodes) != m.ExampleN {
		t.Fatalf("built %d routers, %d nodes; want %d", fab.N, len(nodes), m.ExampleN)
	}
}

// Package ring implements a plain bidirectional ring NoC on the shared
// switch microarchitecture: no cross links, shortest-direction deterministic
// routing on the two rim rings, and the dateline virtual-channel discipline
// of internal/topology. It is the degenerate member of the Spidergon family
// (a Spidergon with the cross channel removed) and exists both as a lower
// bound in architecture sweeps and as the registry's proof of extensibility:
// it registers itself with internal/model and inherits the experiment
// harness, the service API and the shared invariant test suite without any
// of those layers naming it.
//
// Deadlock freedom follows from the channel dependency graph: each rim ring
// is a cycle broken by the dateline VC split, exactly as for the rim
// channels of the Quarc and Spidergon; RouteChannels exposes the per-route
// channel sequences so the CDG can be checked with topology.CDG (see the
// package test).
//
// Port layout:
//
//	inputs  0 RimCWIn   flits flowing clockwise, from node i-1
//	        1 RimCCWIn  flits flowing counter-clockwise, from node i+1
//	        2 Inj       the single local injection channel
//	outputs 0 RimCWOut  to node i+1
//	        1 RimCCWOut to node i-1
//	        2 Eject     the single local ejection channel (shared, arbitrated)
package ring

import (
	"fmt"

	"quarc/internal/flit"
	"quarc/internal/model"
	"quarc/internal/network"
	"quarc/internal/router"
	"quarc/internal/topology"
)

// Input port indices.
const (
	RimCWIn = iota
	RimCCWIn
	Inj
	numInputs
)

// Output port indices.
const (
	RimCWOut = iota
	RimCCWOut
	Eject
	numOutputs
)

// NumNetworkInputs is the index of the first injection port.
const NumNetworkInputs = 2

const link2VCs = 2

// dirTo returns the shortest rim direction from src to dst; the clockwise
// direction wins exact antipodal ties, keeping the route a pure function of
// (n, src, dst).
func dirTo(n, src, dst int) topology.Direction {
	if topology.Offset(n, src, dst) <= n/2 {
		return topology.CW
	}
	return topology.CCW
}

// Route is shortest-direction deterministic routing: the injection decision
// fixes the rim ring, and the packet stays on it until it ejects.
func Route(n int) router.RouteFunc {
	return func(node, in int, f flit.Flit) router.Decision {
		if f.Dst == node {
			return router.Decision{Out: Eject, Eject: true}
		}
		switch in {
		case RimCWIn:
			return router.Decision{Out: RimCWOut}
		case RimCCWIn:
			return router.Decision{Out: RimCCWOut}
		case Inj:
			if dirTo(n, node, f.Dst) == topology.CW {
				return router.Decision{Out: RimCWOut}
			}
			return router.Decision{Out: RimCCWOut}
		}
		panic(fmt.Sprintf("ring: no such input port %d", in))
	}
}

// VCNext applies the dateline discipline on both rim rings.
func VCNext(n int) router.VCFunc {
	return func(node, out, in, cur int, f flit.Flit) int {
		switch out {
		case RimCWOut:
			return topology.RimVC(n, topology.CW, node, cur)
		case RimCCWOut:
			return topology.RimVC(n, topology.CCW, node, cur)
		default:
			return 0
		}
	}
}

// Reach is the minimal crossbar: packets never reverse direction on the rim.
func Reach() [][]int {
	return [][]int{
		RimCWOut:  {RimCWIn, Inj},
		RimCCWOut: {RimCCWIn, Inj},
		Eject:     {RimCWIn, RimCCWIn},
	}
}

// RouteChannels returns the channel sequence of the route from src to dst
// (excluding injection/ejection, which cannot participate in cycles); it
// feeds the CDG acyclicity check.
func RouteChannels(n, src, dst int) []topology.Channel {
	if src == dst {
		return nil
	}
	dir := dirTo(n, src, dst)
	kind := topology.ChRimCW
	if dir == topology.CCW {
		kind = topology.ChRimCCW
	}
	var chs []topology.Channel
	cur, vc := src, 0
	for cur != dst {
		vc = topology.RimVC(n, dir, cur, vc)
		chs = append(chs, topology.Channel{Kind: kind, From: cur, VC: vc})
		if dir == topology.CW {
			cur = topology.NextCW(n, cur)
		} else {
			cur = topology.NextCCW(n, cur)
		}
	}
	return chs
}

// CDG builds the channel dependency graph over all unicast routes of an
// n-node ring.
func CDG(n int) *topology.CDG {
	g := topology.NewCDG()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				g.AddPath(RouteChannels(n, s, d))
			}
		}
	}
	return g
}

// Config describes a ring network build.
type Config struct {
	N     int
	Depth int
}

// Build assembles an n-node bidirectional ring and its adapters.
func Build(cfg Config) (*network.Fabric, []*Adapter, error) {
	if err := topology.ValidateRingSize(cfg.N); err != nil {
		return nil, nil, err
	}
	if cfg.Depth < 1 {
		return nil, nil, fmt.Errorf("ring: buffer depth %d", cfg.Depth)
	}
	n := cfg.N
	routers := make([]*router.Router, n)
	wires := make([][]network.OutputWire, n)
	injStart := make([]int, n)
	inLanes := []int{link2VCs, link2VCs, 1}
	for node := 0; node < n; node++ {
		routers[node] = router.New(router.Config{
			Node:      node,
			VCs:       link2VCs,
			Depth:     cfg.Depth,
			InLanes:   inLanes,
			NOut:      numOutputs,
			EjectPort: Eject,
			Route:     Route(n),
			VCNext:    VCNext(n),
			Reach:     Reach(),
		})
		wires[node] = []network.OutputWire{
			RimCWOut:  {Dst: network.PortRef{Node: topology.NextCW(n, node), Port: RimCWIn}},
			RimCCWOut: {Dst: network.PortRef{Node: topology.NextCCW(n, node), Port: RimCCWIn}},
			Eject:     {Sink: true},
		}
		injStart[node] = NumNetworkInputs
	}
	fab := network.New(routers, wires, injStart)
	as := make([]*Adapter, n)
	for node := 0; node < n; node++ {
		as[node] = newAdapter(fab, routers[node], node, n)
		fab.SetAdapter(node, as[node])
	}
	return fab, as, nil
}

// Adapter is the one-port ring network interface. The ring has no hardware
// collective support, so a broadcast is n-1 independent unicasts.
type Adapter struct {
	network.BaseAdapter
	n   int
	fab *network.Fabric
}

func newAdapter(fab *network.Fabric, r *router.Router, node, n int) *Adapter {
	a := &Adapter{n: n, fab: fab}
	a.Node = node
	a.R = r
	a.Queues = make([]network.PacketQueue, 1)
	a.InjPorts = []int{Inj}
	a.OnTail = func(f flit.Flit, now int64) {
		a.fab.Tracker.Delivered(f.MsgID, a.Node, now)
	}
	return a
}

// SendUnicast queues a unicast message of msgLen flits for dst.
func (a *Adapter) SendUnicast(dst, msgLen int, now int64) uint64 {
	if dst == a.Node {
		panic("ring: unicast to self")
	}
	msgID := a.fab.NextMsgID()
	h := flit.Flit{
		Traffic: flit.Unicast, Src: a.Node, Dst: dst,
		PktID: a.fab.NextPktID(), MsgID: msgID, Gen: now,
	}
	a.fab.Tracker.Register(msgID, network.ClassUnicast, a.Node, now, 1)
	a.Enqueue(0, h, msgLen)
	return msgID
}

// SendBroadcast emits n-1 unicasts (software broadcast).
func (a *Adapter) SendBroadcast(msgLen int, now int64) uint64 {
	msgID := a.fab.NextMsgID()
	a.fab.Tracker.Register(msgID, network.ClassBroadcast, a.Node, now, a.n-1)
	for d := 0; d < a.n; d++ {
		if d == a.Node {
			continue
		}
		h := flit.Flit{
			Traffic: flit.Unicast, Src: a.Node, Dst: d,
			PktID: a.fab.NextPktID(), MsgID: msgID, Gen: now,
		}
		a.Enqueue(0, h, msgLen)
	}
	return msgID
}

// SendMulticast emits one unicast per distinct remote target (software
// multicast, like the broadcast).
func (a *Adapter) SendMulticast(targets []int, msgLen int, now int64) uint64 {
	return a.SendMulticastFanout(a.fab, 0, targets, msgLen, now)
}

var _ network.Adapter = (*Adapter)(nil)

func init() {
	model.Register(model.Model{
		Name:        "ring",
		Description: "bidirectional ring: shortest-direction routing, dateline VCs, no cross links (lower bound)",
		CheckN:      topology.ValidateRingSize,
		ExampleN:    16,
		Build: func(bc model.BuildConfig) (*network.Fabric, []model.Node, error) {
			fab, as, err := Build(Config{N: bc.N, Depth: bc.Depth})
			if err != nil {
				return nil, nil, err
			}
			nodes := make([]model.Node, len(as))
			for i, a := range as {
				nodes[i] = a
			}
			return fab, nodes, nil
		},
	})
}

package network_test

// Fabric-level invariant stress tests: run every topology under heavy mixed
// traffic with the wormhole invariant checker active on every cycle. These
// are the tests that would have caught the classic NoC simulator bugs
// (interleaved packets on one VC, credit violations, silent deadlock) as
// attributable single-cycle failures.

import (
	"testing"

	"quarc/internal/flit"
	"quarc/internal/mesh"
	"quarc/internal/network"
	"quarc/internal/quarc"
	"quarc/internal/rng"
	"quarc/internal/spidergon"
	"quarc/internal/traffic"
)

type fabricUnderTest struct {
	name    string
	fab     *network.Fabric
	senders []traffic.Sender
}

func buildAll(t *testing.T, n int) []fabricUnderTest {
	t.Helper()
	var out []fabricUnderTest

	qf, qt, err := quarc.Build(quarc.Config{N: n, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]traffic.Sender, n)
	for i, a := range qt {
		qs[i] = a
	}
	out = append(out, fabricUnderTest{"quarc", qf, qs})

	sf, sa, err := spidergon.Build(spidergon.Config{N: n, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	ss := make([]traffic.Sender, n)
	for i, a := range sa {
		ss[i] = a
	}
	out = append(out, fabricUnderTest{"spidergon", sf, ss})

	side := 4
	mf, ma, err := mesh.Build(mesh.Config{W: side, H: side, Torus: true, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]traffic.Sender, side*side)
	for i, a := range ma {
		ms[i] = a
	}
	out = append(out, fabricUnderTest{"torus", mf, ms})
	return out
}

func TestInvariantsUnderHeavyMixedTraffic(t *testing.T) {
	const n = 16
	for _, fut := range buildAll(t, n) {
		fut := fut
		t.Run(fut.name, func(t *testing.T) {
			chk := network.NewInvariantChecker(fut.fab)
			r := rng.New(1234, 77)
			// Offered load well past saturation: queues grow, the checker
			// must still see forward progress and clean lanes every cycle.
			for cyc := 0; cyc < 1200; cyc++ {
				for s := 0; s < n; s++ {
					if r.Bernoulli(0.10) {
						if r.Bernoulli(0.25) {
							fut.senders[s].SendBroadcast(6, fut.fab.Now())
						} else {
							d := r.Intn(n - 1)
							if d >= s {
								d++
							}
							fut.senders[s].SendUnicast(d, 6, fut.fab.Now())
						}
					}
				}
				if err := chk.StepChecked(); err != nil {
					t.Fatalf("cycle %d: %v", cyc, err)
				}
			}
			// Drain with the checker still armed (tests the progress
			// invariant: the dateline discipline must clear the backlog).
			for i := 0; i < 500000 && fut.fab.Tracker.InFlight() > 0; i++ {
				if err := chk.StepChecked(); err != nil {
					t.Fatalf("drain: %v", err)
				}
			}
			if fut.fab.Tracker.InFlight() != 0 {
				t.Fatalf("%d messages stuck after drain", fut.fab.Tracker.InFlight())
			}
			if fut.fab.Tracker.Duplicates() != 0 {
				t.Fatalf("%d duplicate deliveries", fut.fab.Tracker.Duplicates())
			}
		})
	}
}

func TestLaneStreamValidatorCatchesCorruption(t *testing.T) {
	// White-box: hand the checker a fabric whose lane we corrupt through
	// the public Push surface — an out-of-order body flit must be flagged.
	fab, ts, err := quarc.Build(quarc.Config{N: 8, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	_ = ts
	chk := network.NewInvariantChecker(fab)
	// Push a header then a body with a skipped sequence number into a
	// network input lane, bypassing the link layer.
	h := flit.Flit{Kind: flit.Header, Traffic: flit.Unicast, Src: 1, Dst: 3, PktID: 9, Seq: 0, PktLen: 4}
	b := h
	b.Kind = flit.Body
	b.Seq = 2 // skipped 1
	fab.Routers[2].Push(0, 0, h)
	fab.Routers[2].Push(0, 0, b)
	if err := chk.Check(); err == nil {
		t.Fatal("checker accepted an out-of-order lane stream")
	}
}

func TestProgressDetectorFiresOnStuckFabric(t *testing.T) {
	// Register a message with the tracker but never inject its flits: the
	// fabric shows in-flight work with no movement, which must trip the
	// progress horizon.
	fab, _, err := quarc.Build(quarc.Config{N: 8, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	fab.Tracker.Register(1, network.ClassUnicast, 0, 0, 1)
	chk := network.NewInvariantChecker(fab)
	chk.Horizon = 50
	var got error
	for i := 0; i < 200; i++ {
		if got = chk.StepChecked(); got != nil {
			break
		}
	}
	if got == nil {
		t.Fatal("progress detector never fired")
	}
	// The error must be sticky.
	if chk.Err() == nil || chk.Check() == nil {
		t.Fatal("checker error not sticky")
	}
}

// Package network assembles switches into a simulated NoC: it owns the
// wiring between output ports and downstream input ports, runs the global
// two-phase (compute/commit) cycle, feeds network adapters, delivers ejected
// flits and tracks message lifecycles for the statistics layer.
//
// The fabric is topology-agnostic: internal/quarc, internal/spidergon and
// internal/mesh provide router configurations, wiring tables and adapters.
//
// Stepping is activity-driven: the fabric keeps a set of active nodes (any
// buffered flit or pending source-queue backlog) and each cycle snapshots,
// arbitrates, commits and feeds only those. Routers are woken by flits
// pushed into them and by adapter enqueues, and go to sleep when fully
// drained — or, under saturation, when provably blocked (buffered flits but
// no possible move until a downstream credit returns; see sleepScan); slept
// cycles are credited to their statistics in bulk, so the observable
// simulation — every flit movement, every counter — is bit-identical to
// stepping all N routers every cycle (SetDense selects that reference
// behaviour, and the experiment layer's equivalence suite proves the
// identity for every registered model).
//
// Within one cycle the phases are data-parallel per router: SetStepWorkers
// shards the active set across a persistent worker pool with all shared
// state mutated in single-threaded sections in ascending node order, so
// results are byte-identical at any worker count (see parallel.go).
package network

import (
	"fmt"
	"math/bits"
	"runtime"

	"quarc/internal/flit"
	"quarc/internal/router"
	"quarc/internal/trace"
)

// PortRef identifies an input port of a node.
type PortRef struct {
	Node, Port int
}

// OutputWire describes where an output port leads: a downstream input port,
// or the local PE (shared ejection sinks).
type OutputWire struct {
	Sink bool
	Dst  PortRef
}

// Adapter is a network adapter (the paper's transceiver for Quarc, the
// one-port NI for Spidergon): it feeds injection lanes and consumes
// delivered flits.
type Adapter interface {
	// Feed may push at most one flit per injection port into its router's
	// injection lanes. Called once per cycle after commits.
	Feed(now int64)
	// Receive consumes a flit delivered to the local PE.
	Receive(f flit.Flit, now int64)
	// Backlog returns the flits still waiting in the adapter's source
	// queues; the fabric consults it before putting a drained router to
	// sleep, so it must be cheap (O(1) for BaseAdapter).
	Backlog() int
}

// binder is implemented by adapters (BaseAdapter and anything embedding it)
// that accept a wake callback: the fabric installs one in SetAdapter so
// source-queue enqueues can reactivate a sleeping node. Adapters that do not
// implement it are never put to sleep.
type binder interface {
	bind(fab *Fabric, node int)
}

// feedBlocked is implemented by adapters that can report whether Feed is
// unable to inject a single flit (every backlogged source queue faces a full
// injection lane). Required for blocked sleep: a node with backlog may only
// sleep while its adapter provably cannot make progress either.
type feedBlocked interface {
	FeedBlocked() bool
}

// Node sleep states.
const (
	sleepNone    uint8 = iota // awake
	sleepIdle                 // drained: no flits, no backlog
	sleepBlocked              // frozen: buffered flits, no possible move
)

// blockedSleepAfter is how many consecutive grantless busy cycles a node
// must accumulate before the fabric pays for the frozen-state probe. Cheap
// transient contention never reaches the probe.
const blockedSleepAfter = 4

// satBatchStreak is how many consecutive >90%-active cycles engage
// multi-cycle batching in StepBatch: one pool dispatch then covers a run of
// cycles instead of one, amortising per-dispatch overhead exactly when the
// active set is stable.
const satBatchStreak = 8

// defaultStepGrain is the minimum active-set size before the worker pool is
// worth its barriers; below it the serial path is faster.
const defaultStepGrain = 48

// stepScratch is per-worker per-cycle scratch: wake accounting and sleep
// candidates, merged by the coordinator in single-threaded sections. The
// trailing pad keeps adjacent workers' scratches off shared cache lines.
type stepScratch struct {
	woken        int   // nodes reconciled out of sleep this cycle
	wokenBlocked int   // subset that slept blocked
	sleptIdle    []int // drained nodes leaving the step set
	sleptBlocked []int // frozen nodes leaving the step set
	_            [64]byte
}

// Fabric is the assembled network.
type Fabric struct {
	N        int
	Routers  []*router.Router
	Adapters []Adapter
	Tracker  *Tracker
	// Trace, when non-nil, records flit-level forward/deliver events.
	Trace *trace.Buffer

	wires    [][]OutputWire        // [node][out]
	views    [][]router.Downstream // [node][out] snapshot credit views
	injStart []int                 // first injection port index per node
	moves    [][]router.Move       // scratch, reused
	cycle    int64
	pktSeq   uint64
	msgSeq   uint64

	// Activity scheduling state.
	activeMask []uint64 // bit per node: stepped next cycle
	stepList   []int    // scratch: nodes stepped this cycle, ascending
	idleSince  []int64  // first un-stepped cycle while asleep; -1 when awake
	canSleep   []bool   // adapter supports wake-on-enqueue
	sleeping   int      // nodes currently asleep (either kind)
	dense      bool     // reference mode: step every router every cycle

	// Blocked-sleep state (the dependency wake graph).
	liveViews       [][]router.Downstream // [node][out] live credit views for frozen probes
	feeder          [][]int32             // [node][in] upstream node feeding the port, or -1
	sleepKind       []uint8               // per node: sleepNone/sleepIdle/sleepBlocked
	noGrant         []uint8               // consecutive grantless busy cycles
	feedBlk         []feedBlocked         // adapters' FeedBlocked hooks, nil when unsupported
	noBlockedSleep  bool                  // wiring defeats per-port wake attribution
	blockedSleeping int                   // nodes currently in blocked sleep
	blockedSleeps   uint64                // cumulative blocked-sleep entries (diagnostic)

	// Intra-cycle parallelism.
	scr       stepScratch // serial-path scratch
	stepGrain int         // min active nodes before the pool engages
	satStreak uint8       // consecutive >90%-active cycles
	pool      *stepPool   // nil: serial stepping

	delivered uint64 // flits delivered to PEs
	forwarded uint64 // flits crossing links
	stepped   uint64 // router-steps executed (activity diagnostic)
}

// creditView is the registered (one-cycle lagged) credit semantics used by
// arbitration: free space as snapshotted at the start of the cycle.
type creditView struct {
	r    *router.Router
	port int
}

func (c creditView) CreditFree(vc int) int { return c.r.SnapFree(c.port, vc) }

// liveCreditView reads the downstream occupancy as it is right now; the
// frozen-state probe uses it because a blocked router's credit view cannot
// change between the lagged and live values.
type liveCreditView struct {
	r    *router.Router
	port int
}

func (c liveCreditView) CreditFree(vc int) int { return c.r.LaneFree(c.port, vc) }

// New assembles a fabric. wires[node][out] must describe every output port
// of every router; injStart[node] is the index of the first injection input
// port of node (ports below it are network inputs whose multicast bitstrings
// shift on forward).
func New(routers []*router.Router, wires [][]OutputWire, injStart []int) *Fabric {
	n := len(routers)
	if len(wires) != n || len(injStart) != n {
		panic("network: inconsistent fabric tables")
	}
	f := &Fabric{
		N:          n,
		Routers:    routers,
		Adapters:   make([]Adapter, n),
		Tracker:    NewTracker(),
		wires:      wires,
		injStart:   injStart,
		moves:      make([][]router.Move, n),
		activeMask: make([]uint64, (n+63)/64),
		stepList:   make([]int, 0, n),
		idleSince:  make([]int64, n),
		canSleep:   make([]bool, n),
		sleepKind:  make([]uint8, n),
		noGrant:    make([]uint8, n),
		feedBlk:    make([]feedBlocked, n),
		stepGrain:  defaultStepGrain,
	}
	f.scr.sleptIdle = make([]int, 0, n)
	f.scr.sleptBlocked = make([]int, 0, n)
	// Every node starts awake (matching a dense cycle 0); empty routers go
	// quiescent after their first step.
	for node := 0; node < n; node++ {
		f.activeMask[node>>6] |= 1 << uint(node&63)
		f.idleSince[node] = -1
	}
	f.views = make([][]router.Downstream, n)
	f.liveViews = make([][]router.Downstream, n)
	f.feeder = make([][]int32, n)
	for node, r := range routers {
		fd := make([]int32, r.NumInputs())
		for i := range fd {
			fd[i] = -1
		}
		f.feeder[node] = fd
	}
	for node, ws := range wires {
		f.views[node] = make([]router.Downstream, len(ws))
		f.liveViews[node] = make([]router.Downstream, len(ws))
		for o, w := range ws {
			if w.Sink {
				continue // nil views: the PE absorbs at link rate
			}
			if w.Dst.Node < 0 || w.Dst.Node >= n {
				panic(fmt.Sprintf("network: wire %d.%d to bad node %d", node, o, w.Dst.Node))
			}
			f.views[node][o] = creditView{r: routers[w.Dst.Node], port: w.Dst.Port}
			f.liveViews[node][o] = liveCreditView{r: routers[w.Dst.Node], port: w.Dst.Port}
			// The dependency wake graph inverts the wiring: a pop at input
			// port (dst, port) returns a credit to exactly this node. If two
			// outputs ever fed one input port that attribution would break,
			// so blocked sleep shuts off rather than risk a lost wake.
			if prev := f.feeder[w.Dst.Node][w.Dst.Port]; prev >= 0 && prev != int32(node) {
				f.noBlockedSleep = true
			}
			f.feeder[w.Dst.Node][w.Dst.Port] = int32(node)
		}
	}
	return f
}

// SetAdapter installs the network adapter of a node. All nodes must have one
// before stepping.
func (f *Fabric) SetAdapter(node int, a Adapter) {
	f.Adapters[node] = a
	if b, ok := a.(binder); ok {
		b.bind(f, node)
		f.canSleep[node] = true
		f.feedBlk[node], _ = a.(feedBlocked)
	} else {
		// An adapter without wake plumbing cannot reactivate its node on
		// enqueue, so the node must stay in the step set forever.
		f.canSleep[node] = false
		f.feedBlk[node] = nil
	}
}

// SetDense switches the fabric to the dense reference behaviour: every
// router stepped every cycle, no sleeping. It exists so the activity-driven
// scheduler can be proved bit-identical against it; call it before the first
// Step.
func (f *Fabric) SetDense(dense bool) {
	if f.cycle != 0 {
		panic("network: SetDense after stepping began")
	}
	f.dense = dense
}

// DefaultStepWorkers returns the worker count used when a configuration does
// not pin one: GOMAXPROCS clamped to n/16, so small fabrics (whose phases
// cannot amortise barrier latency) stay serial and large ones use the
// machine.
func DefaultStepWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if limit := n / 16; w > limit {
		w = limit
	}
	if w < 1 {
		w = 1
	}
	return w
}

// SetStepWorkers sizes the fabric's intra-cycle worker pool: w <= 1 steps
// serially, larger values shard each phase of each cycle across w goroutines
// (the caller counts as one). Results are byte-identical at any value. The
// pool is persistent; callers owning a fabric with w > 1 should Close it
// when done. Calling SetStepWorkers again replaces the pool.
func (f *Fabric) SetStepWorkers(w int) {
	if f.pool != nil {
		f.pool.close()
		f.pool = nil
	}
	if w > f.N {
		w = f.N
	}
	if w <= 1 {
		return
	}
	f.pool = newStepPool(f, w)
}

// SetStepGrain overrides the minimum active-set size at which the worker
// pool engages (default 48). Test hook: small fabrics can force the parallel
// path to prove invariance.
func (f *Fabric) SetStepGrain(minActive int) {
	if minActive < 1 {
		minActive = 1
	}
	f.stepGrain = minActive
}

// Close releases the worker pool, if any. The fabric remains usable (it
// steps serially afterwards). Safe to call multiple times.
func (f *Fabric) Close() {
	if f.pool != nil {
		f.pool.close()
		f.pool = nil
	}
}

// Now returns the current cycle.
func (f *Fabric) Now() int64 { return f.cycle }

// NextPktID returns a fresh packet identifier.
func (f *Fabric) NextPktID() uint64 { f.pktSeq++; return f.pktSeq }

// NextMsgID returns a fresh message identifier.
func (f *Fabric) NextMsgID() uint64 { f.msgSeq++; return f.msgSeq }

// FlitsDelivered returns the total flits handed to PEs.
func (f *Fabric) FlitsDelivered() uint64 { return f.delivered }

// FlitsForwarded returns the total flits that crossed links (including
// injection links).
func (f *Fabric) FlitsForwarded() uint64 { return f.forwarded }

// SteppedRouters returns the cumulative number of router-steps executed.
// Dense stepping performs N per cycle; the ratio of this counter to N*Now()
// is the activity factor the scheduler exploited.
func (f *Fabric) SteppedRouters() uint64 { return f.stepped }

// BlockedSleeps returns how many times a router entered blocked sleep
// (frozen with buffered flits). Diagnostic for the saturation regime, where
// idle sleep never fires.
func (f *Fabric) BlockedSleeps() uint64 { return f.blockedSleeps }

// ActiveNodes returns how many nodes are in the step set for the next cycle.
func (f *Fabric) ActiveNodes() int {
	total := 0
	for _, w := range f.activeMask {
		total += bits.OnesCount64(w)
	}
	return total
}

// Idle reports whether the step set is empty: no router holds a flit and no
// source queue has backlog, so nothing can happen until new traffic is
// enqueued. The fabric clock may fast-forward over idle stretches with
// AdvanceIdle. Blocked-sleeping routers hold flits, so they keep the fabric
// non-idle even though they are out of the step set.
func (f *Fabric) Idle() bool {
	if f.blockedSleeping != 0 {
		return false
	}
	for _, w := range f.activeMask {
		if w != 0 {
			return false
		}
	}
	return true
}

// wake puts a node back into the step set. Slept cycles are reconciled into
// its statistics when it is next stepped.
func (f *Fabric) wake(node int) {
	f.activeMask[node>>6] |= 1 << uint(node&63)
}

// SyncStats brings the cycle counters of sleeping routers up to the current
// cycle, as if each had been stepped every cycle — idle sleepers empty,
// blocked sleepers replaying their frozen stall profile. It is idempotent at
// a given cycle; RouterStats calls it implicitly, and tests comparing
// per-router statistics against dense stepping call it first.
func (f *Fabric) SyncStats() {
	for node, since := range f.idleSince {
		if since >= 0 && since < f.cycle {
			k := uint64(f.cycle - since)
			if f.sleepKind[node] == sleepBlocked {
				f.Routers[node].ReplayBlockedCycles(k)
			} else {
				f.Routers[node].AddIdleCycles(k)
			}
			f.idleSince[node] = f.cycle
		}
	}
}

// RouterStats aggregates the microarchitectural counters of all switches:
// total grants, stalls by cause, and the network-wide buffer-occupancy
// integral.
func (f *Fabric) RouterStats() router.Stats {
	f.SyncStats()
	var agg router.Stats
	for _, r := range f.Routers {
		s := r.Stats()
		agg.Grants += s.Grants
		agg.OccupancySum += s.OccupancySum
		agg.Cycles += s.Cycles
		for i := range s.Stalls {
			agg.Stalls[i] += s.Stalls[i]
		}
	}
	return agg
}

// LinkLoad returns the per-output-port flit counts, indexed [node][out], for
// the edge-load-balance analysis (§2.1: Spidergon's edge asymmetry).
func (f *Fabric) LinkLoad() [][]uint64 {
	out := make([][]uint64, f.N)
	for node, r := range f.Routers {
		out[node] = make([]uint64, len(f.wires[node]))
		for o := range f.wires[node] {
			out[node][o] = r.Sent(o)
		}
	}
	return out
}

// latch freezes the step set for the next cycle: wakes during a cycle
// (commit pushes, adapter enqueues) take effect the following cycle, exactly
// when a dense step would first observe the new flit. It also maintains the
// saturation streak that arms multi-cycle batching.
//
//quarc:hotpath
//quarc:coordinator
func (f *Fabric) latch() {
	list := f.stepList[:0]
	if f.dense {
		for node := 0; node < f.N; node++ {
			list = append(list, node)
		}
	} else {
		for wi, word := range f.activeMask {
			base := wi << 6
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &^= 1 << uint(b)
				list = append(list, base+b)
			}
		}
	}
	f.stepList = list
	f.stepped += uint64(len(list))
	if len(list)*10 > f.N*9 {
		if f.satStreak < satBatchStreak {
			f.satStreak++
		}
	} else {
		f.satStreak = 0
	}
}

// reconcile credits a newly woken router with its slept cycles, then latches
// its occupancy snapshot for this cycle (registered credits). Phase 0 of the
// cycle; per-node, safe to run in parallel over disjoint nodes.
//
//quarc:hotpath
func (f *Fabric) reconcile(node int, sc *stepScratch) {
	if f.idleSince[node] >= 0 {
		k := uint64(f.cycle - f.idleSince[node])
		if f.sleepKind[node] == sleepBlocked {
			f.Routers[node].ReplayBlockedCycles(k)
			sc.wokenBlocked++
		} else {
			f.Routers[node].AddIdleCycles(k)
		}
		f.sleepKind[node] = sleepNone
		f.idleSince[node] = -1
		sc.woken++
	}
	f.Routers[node].Snapshot()
}

// applyWoken folds one scratch's wake counts into the fabric totals.
//
//quarc:hotpath
//quarc:coordinator
func (f *Fabric) applyWoken(sc *stepScratch) {
	f.sleeping -= sc.woken
	f.blockedSleeping -= sc.wokenBlocked
	sc.woken, sc.wokenBlocked = 0, 0
}

// applyMoves is the shared-state half of commit: deliver ejected copies,
// move flits across links, fire credit-return wakes. Must run
// single-threaded in ascending node order — it mutates the tracker, the
// trace, the global counters and downstream lanes, and its order defines the
// deterministic event order the parallel path reproduces.
//
//quarc:hotpath
//quarc:coordinator
func (f *Fabric) applyMoves(list []int) {
	for _, node := range list {
		moves := f.moves[node]
		for i := range moves {
			m := &moves[i]
			// The committed pop freed a slot in lane (node, m.In): if the
			// upstream switch feeding that port sleeps blocked, the returned
			// credit is exactly the event it waits for.
			if fd := f.feeder[node][m.In]; fd >= 0 && f.sleepKind[fd] == sleepBlocked {
				f.wake(int(fd))
			}
			if m.Deliver {
				f.delivered++
				if f.Trace != nil {
					f.Trace.Record(trace.Event{Cycle: f.cycle, Kind: trace.Deliver,
						Node: node, Out: -1, VC: -1,
						PktID: m.Flit.PktID, MsgID: m.Flit.MsgID, Seq: m.Flit.Seq})
				}
				f.Adapters[node].Receive(m.Flit, f.cycle)
			}
			if m.Out == router.NoOutput {
				continue
			}
			w := f.wires[node][m.Out]
			if w.Sink {
				continue // shared ejection port: consumed by the PE
			}
			g := m.Flit
			if m.In < f.injStart[node] {
				// Multicast bitstrings are hop-indexed: forwarding from a
				// network input moves the stream one hop, so the hardware
				// shifts the bitstring (bit 0 always means "the node this
				// flit is arriving at").
				g.Bits >>= 1
			}
			f.forwarded++
			if f.Trace != nil {
				f.Trace.Record(trace.Event{Cycle: f.cycle, Kind: trace.Forward,
					Node: node, Out: m.Out, VC: m.OutVC,
					PktID: g.PktID, MsgID: g.MsgID, Seq: g.Seq})
			}
			if !f.Routers[w.Dst.Node].Push(w.Dst.Port, m.OutVC, g) {
				//quarc:allow hotpath: invariant-violation panic path, unreachable in a correct build
				panic(fmt.Sprintf("network: credit violation pushing into %d.%d vc %d",
					w.Dst.Node, w.Dst.Port, m.OutVC))
			}
			f.wake(w.Dst.Node)
		}
	}
}

// sleepScan decides whether a just-stepped node can leave the step set:
// drained nodes sleep idle; nodes that stay grantless for blockedSleepAfter
// cycles and then prove frozen (no head flit can move until a credit
// returns, and the adapter cannot inject) sleep blocked. Candidates are
// recorded in scratch; applySleep commits them. Per-node: reads other
// routers only through live occupancy (stable during this phase), so it is
// safe to run in parallel over disjoint nodes.
//
//quarc:hotpath
func (f *Fabric) sleepScan(node int, sc *stepScratch) {
	if !f.canSleep[node] {
		return
	}
	r := f.Routers[node]
	if r.Quiescent() {
		f.noGrant[node] = 0
		if f.Adapters[node].Backlog() == 0 {
			sc.sleptIdle = append(sc.sleptIdle, node)
			// Refreshing the credit snapshot on the way out keeps upstream
			// credit views identical to dense stepping, where the next cycle
			// would re-latch the same state.
			r.RefreshSnapshot()
		}
		return
	}
	if f.noBlockedSleep || len(f.moves[node]) != 0 {
		f.noGrant[node] = 0
		return
	}
	if f.noGrant[node] < blockedSleepAfter {
		f.noGrant[node]++
		return
	}
	if f.Adapters[node].Backlog() > 0 {
		fb := f.feedBlk[node]
		if fb == nil || !fb.FeedBlocked() {
			f.noGrant[node] = 0
			return
		}
	}
	if !r.FrozenBlocked(f.liveViews[node]) {
		// Some head is sendable (it keeps losing arbitration): re-arm the
		// counter so the relatively expensive probe stays off the hot path.
		f.noGrant[node] = 0
		return
	}
	sc.sleptBlocked = append(sc.sleptBlocked, node)
	r.RefreshSnapshot()
}

// applySleep removes one scratch's sleep candidates from the step set.
// Single-threaded; the per-node sets are disjoint across workers and every
// mutation commutes, so merge order does not matter.
//
//quarc:hotpath
//quarc:coordinator
func (f *Fabric) applySleep(sc *stepScratch) {
	for _, node := range sc.sleptIdle {
		f.activeMask[node>>6] &^= 1 << uint(node&63)
		f.idleSince[node] = f.cycle + 1
		f.sleepKind[node] = sleepIdle
		f.sleeping++
	}
	sc.sleptIdle = sc.sleptIdle[:0]
	for _, node := range sc.sleptBlocked {
		f.activeMask[node>>6] &^= 1 << uint(node&63)
		f.idleSince[node] = f.cycle + 1
		f.sleepKind[node] = sleepBlocked
		f.sleeping++
		f.blockedSleeping++
		f.blockedSleeps++
	}
	sc.sleptBlocked = sc.sleptBlocked[:0]
}

// stepSerial runs one latched cycle on the calling goroutine.
//
//quarc:hotpath
func (f *Fabric) stepSerial(list []int) {
	sc := &f.scr
	// Phase 0: latch occupancy snapshots (registered credits), crediting
	// newly woken routers with their slept cycles first.
	for _, node := range list {
		f.reconcile(node, sc)
	}
	// Phase 1: active routers arbitrate against the snapshots.
	for _, node := range list {
		f.moves[node] = f.Routers[node].Arbitrate(f.views[node], f.moves[node][:0])
	}
	// Phase 2: commit switch state, then apply the shared-state half
	// (deliveries, link transfers, wakes) in node order.
	for _, node := range list {
		f.Routers[node].Commit(f.moves[node])
	}
	f.applyWoken(sc)
	f.applyMoves(list)
	// Phase 3: adapters refill injection lanes.
	for _, node := range list {
		f.Adapters[node].Feed(f.cycle)
	}
	// Drained or frozen nodes leave the step set until a push, an enqueue
	// or a returned credit wakes them.
	if !f.dense {
		for _, node := range list {
			f.sleepScan(node, sc)
		}
		f.applySleep(sc)
	}
}

// Step advances the network by one cycle, visiting only active routers.
//
//quarc:hotpath
func (f *Fabric) Step() {
	f.StepBatch(1, nil)
}

// StepBatch advances the network by up to n cycles, returning how many ran.
// stop, when non-nil, is evaluated before each cycle (between cycles, never
// mid-cycle); a true return halts the batch. Cycles run on the worker pool
// when one is installed and the active set is large enough, and — once the
// fabric has been saturated for satBatchStreak cycles — whole runs of cycles
// execute in a single pool dispatch. External events (traffic enqueues) must
// not occur between batched cycles; drive the fabric cycle by cycle with
// Step while sources are live, and batch only event-free spans (drains,
// fixed-workload runs).
//
//quarc:hotpath
func (f *Fabric) StepBatch(n int64, stop func() bool) int64 {
	done := int64(0)
	latched := false
	for done < n {
		if !latched {
			if stop != nil && stop() {
				return done
			}
			f.latch()
		}
		latched = false
		if f.pool != nil && len(f.stepList) >= f.stepGrain {
			max := int64(1)
			if f.satStreak >= satBatchStreak {
				max = n - done
			}
			ran, latchedNext, stopped := f.pool.run(max, stop)
			done += ran
			latched = latchedNext
			if stopped {
				return done
			}
		} else {
			f.stepSerial(f.stepList)
			f.cycle++
			done++
		}
	}
	return done
}

// AdvanceIdle fast-forwards the fabric clock over cycles during which every
// router is verifiably empty: sleeping-router statistics are reconciled
// lazily, so the whole skip is O(1) regardless of length. It is only legal
// while every node is asleep and drained (nodes woken by pending source
// enqueues are fine: their flits cannot enter a router before the next
// Step). The experiment layer pairs it with the kernel's ticker skip to jump
// from one traffic arrival to the next without simulating the empty cycles
// between.
func (f *Fabric) AdvanceIdle(cycles int64) {
	if cycles < 0 {
		panic("network: negative idle advance")
	}
	if cycles == 0 {
		return
	}
	if f.sleeping != f.N {
		panic(fmt.Sprintf("network: AdvanceIdle with %d of %d routers awake",
			f.N-f.sleeping, f.N))
	}
	if f.blockedSleeping != 0 {
		panic(fmt.Sprintf("network: AdvanceIdle with %d routers blocked", f.blockedSleeping))
	}
	f.cycle += cycles
}

// Run advances the fabric by the given number of cycles. Saturated spans
// batch multiple cycles per pool dispatch; callers needing per-cycle events
// must call Step in their own loop.
func (f *Fabric) Run(cycles int64) {
	f.StepBatch(cycles, nil)
}

// Package network assembles switches into a simulated NoC: it owns the
// wiring between output ports and downstream input ports, runs the global
// two-phase (compute/commit) cycle, feeds network adapters, delivers ejected
// flits and tracks message lifecycles for the statistics layer.
//
// The fabric is topology-agnostic: internal/quarc, internal/spidergon and
// internal/mesh provide router configurations, wiring tables and adapters.
package network

import (
	"fmt"

	"quarc/internal/flit"
	"quarc/internal/router"
	"quarc/internal/trace"
)

// PortRef identifies an input port of a node.
type PortRef struct {
	Node, Port int
}

// OutputWire describes where an output port leads: a downstream input port,
// or the local PE (shared ejection sinks).
type OutputWire struct {
	Sink bool
	Dst  PortRef
}

// Adapter is a network adapter (the paper's transceiver for Quarc, the
// one-port NI for Spidergon): it feeds injection lanes and consumes
// delivered flits.
type Adapter interface {
	// Feed may push at most one flit per injection port into its router's
	// injection lanes. Called once per cycle after commits.
	Feed(now int64)
	// Receive consumes a flit delivered to the local PE.
	Receive(f flit.Flit, now int64)
}

// Fabric is the assembled network.
type Fabric struct {
	N        int
	Routers  []*router.Router
	Adapters []Adapter
	Tracker  *Tracker
	// Trace, when non-nil, records flit-level forward/deliver events.
	Trace *trace.Buffer

	wires    [][]OutputWire        // [node][out]
	views    [][]router.Downstream // [node][out] credit views
	injStart []int                 // first injection port index per node
	moves    [][]router.Move       // scratch, reused
	cycle    int64
	pktSeq   uint64
	msgSeq   uint64

	delivered uint64 // flits delivered to PEs
	forwarded uint64 // flits crossing links
}

type creditView struct {
	r    *router.Router
	port int
}

func (c creditView) CreditFree(vc int) int { return c.r.SnapFree(c.port, vc) }

// New assembles a fabric. wires[node][out] must describe every output port
// of every router; injStart[node] is the index of the first injection input
// port of node (ports below it are network inputs whose multicast bitstrings
// shift on forward).
func New(routers []*router.Router, wires [][]OutputWire, injStart []int) *Fabric {
	n := len(routers)
	if len(wires) != n || len(injStart) != n {
		panic("network: inconsistent fabric tables")
	}
	f := &Fabric{
		N:        n,
		Routers:  routers,
		Adapters: make([]Adapter, n),
		Tracker:  NewTracker(),
		wires:    wires,
		injStart: injStart,
		moves:    make([][]router.Move, n),
	}
	f.views = make([][]router.Downstream, n)
	for node, ws := range wires {
		f.views[node] = make([]router.Downstream, len(ws))
		for o, w := range ws {
			if w.Sink {
				f.views[node][o] = nil
				continue
			}
			if w.Dst.Node < 0 || w.Dst.Node >= n {
				panic(fmt.Sprintf("network: wire %d.%d to bad node %d", node, o, w.Dst.Node))
			}
			f.views[node][o] = creditView{r: routers[w.Dst.Node], port: w.Dst.Port}
		}
	}
	return f
}

// SetAdapter installs the network adapter of a node. All nodes must have one
// before stepping.
func (f *Fabric) SetAdapter(node int, a Adapter) { f.Adapters[node] = a }

// Now returns the current cycle.
func (f *Fabric) Now() int64 { return f.cycle }

// NextPktID returns a fresh packet identifier.
func (f *Fabric) NextPktID() uint64 { f.pktSeq++; return f.pktSeq }

// NextMsgID returns a fresh message identifier.
func (f *Fabric) NextMsgID() uint64 { f.msgSeq++; return f.msgSeq }

// FlitsDelivered returns the total flits handed to PEs.
func (f *Fabric) FlitsDelivered() uint64 { return f.delivered }

// FlitsForwarded returns the total flits that crossed links (including
// injection links).
func (f *Fabric) FlitsForwarded() uint64 { return f.forwarded }

// RouterStats aggregates the microarchitectural counters of all switches:
// total grants, stalls by cause, and the network-wide buffer-occupancy
// integral.
func (f *Fabric) RouterStats() router.Stats {
	var agg router.Stats
	for _, r := range f.Routers {
		s := r.Stats()
		agg.Grants += s.Grants
		agg.OccupancySum += s.OccupancySum
		agg.Cycles += s.Cycles
		for i := range s.Stalls {
			agg.Stalls[i] += s.Stalls[i]
		}
	}
	return agg
}

// LinkLoad returns the per-output-port flit counts, indexed [node][out], for
// the edge-load-balance analysis (§2.1: Spidergon's edge asymmetry).
func (f *Fabric) LinkLoad() [][]uint64 {
	out := make([][]uint64, f.N)
	for node, r := range f.Routers {
		out[node] = make([]uint64, len(f.wires[node]))
		for o := range f.wires[node] {
			out[node][o] = r.Sent(o)
		}
	}
	return out
}

// Step advances the network by one cycle.
func (f *Fabric) Step() {
	// Phase 0: latch occupancy snapshots (registered credits).
	for _, r := range f.Routers {
		r.Snapshot()
	}
	// Phase 1: all routers arbitrate against the snapshots.
	for node, r := range f.Routers {
		f.moves[node] = r.Arbitrate(f.views[node], f.moves[node][:0])
	}
	// Phase 2: commit switch state, deliver ejected copies, move flits
	// across links.
	for node, r := range f.Routers {
		moves := f.moves[node]
		r.Commit(moves)
		for i := range moves {
			m := &moves[i]
			if m.Deliver {
				f.delivered++
				if f.Trace != nil {
					f.Trace.Record(trace.Event{Cycle: f.cycle, Kind: trace.Deliver,
						Node: node, Out: -1, VC: -1,
						PktID: m.Flit.PktID, MsgID: m.Flit.MsgID, Seq: m.Flit.Seq})
				}
				f.Adapters[node].Receive(m.Flit, f.cycle)
			}
			if m.Out == router.NoOutput {
				continue
			}
			w := f.wires[node][m.Out]
			if w.Sink {
				continue // shared ejection port: consumed by the PE
			}
			g := m.Flit
			if m.In < f.injStart[node] {
				// Multicast bitstrings are hop-indexed: forwarding from a
				// network input moves the stream one hop, so the hardware
				// shifts the bitstring (bit 0 always means "the node this
				// flit is arriving at").
				g.Bits >>= 1
			}
			f.forwarded++
			if f.Trace != nil {
				f.Trace.Record(trace.Event{Cycle: f.cycle, Kind: trace.Forward,
					Node: node, Out: m.Out, VC: m.OutVC,
					PktID: g.PktID, MsgID: g.MsgID, Seq: g.Seq})
			}
			if !f.Routers[w.Dst.Node].Push(w.Dst.Port, m.OutVC, g) {
				panic(fmt.Sprintf("network: credit violation pushing into %d.%d vc %d",
					w.Dst.Node, w.Dst.Port, m.OutVC))
			}
		}
	}
	// Phase 3: adapters refill injection lanes.
	for _, a := range f.Adapters {
		a.Feed(f.cycle)
	}
	f.cycle++
}

// Run advances the fabric by the given number of cycles.
func (f *Fabric) Run(cycles int64) {
	for i := int64(0); i < cycles; i++ {
		f.Step()
	}
}

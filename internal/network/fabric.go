// Package network assembles switches into a simulated NoC: it owns the
// wiring between output ports and downstream input ports, runs the global
// two-phase (compute/commit) cycle, feeds network adapters, delivers ejected
// flits and tracks message lifecycles for the statistics layer.
//
// The fabric is topology-agnostic: internal/quarc, internal/spidergon and
// internal/mesh provide router configurations, wiring tables and adapters.
//
// Stepping is activity-driven: the fabric keeps a set of active nodes (any
// buffered flit or pending source-queue backlog) and each cycle snapshots,
// arbitrates, commits and feeds only those. Routers are woken by flits
// pushed into them and by adapter enqueues, and go to sleep when fully
// drained; slept cycles are credited to their statistics in bulk, so the
// observable simulation — every flit movement, every counter — is
// bit-identical to stepping all N routers every cycle (SetDense selects that
// reference behaviour, and the experiment layer's equivalence suite proves
// the identity for every registered model).
package network

import (
	"fmt"
	"math/bits"

	"quarc/internal/flit"
	"quarc/internal/router"
	"quarc/internal/trace"
)

// PortRef identifies an input port of a node.
type PortRef struct {
	Node, Port int
}

// OutputWire describes where an output port leads: a downstream input port,
// or the local PE (shared ejection sinks).
type OutputWire struct {
	Sink bool
	Dst  PortRef
}

// Adapter is a network adapter (the paper's transceiver for Quarc, the
// one-port NI for Spidergon): it feeds injection lanes and consumes
// delivered flits.
type Adapter interface {
	// Feed may push at most one flit per injection port into its router's
	// injection lanes. Called once per cycle after commits.
	Feed(now int64)
	// Receive consumes a flit delivered to the local PE.
	Receive(f flit.Flit, now int64)
	// Backlog returns the flits still waiting in the adapter's source
	// queues; the fabric consults it before putting a drained router to
	// sleep, so it must be cheap (O(1) for BaseAdapter).
	Backlog() int
}

// binder is implemented by adapters (BaseAdapter and anything embedding it)
// that accept a wake callback: the fabric installs one in SetAdapter so
// source-queue enqueues can reactivate a sleeping node. Adapters that do not
// implement it are never put to sleep.
type binder interface {
	bind(fab *Fabric, node int)
}

// Fabric is the assembled network.
type Fabric struct {
	N        int
	Routers  []*router.Router
	Adapters []Adapter
	Tracker  *Tracker
	// Trace, when non-nil, records flit-level forward/deliver events.
	Trace *trace.Buffer

	wires    [][]OutputWire        // [node][out]
	views    [][]router.Downstream // [node][out] credit views
	injStart []int                 // first injection port index per node
	moves    [][]router.Move       // scratch, reused
	cycle    int64
	pktSeq   uint64
	msgSeq   uint64

	// Activity scheduling state.
	activeMask []uint64 // bit per node: stepped next cycle
	stepList   []int    // scratch: nodes stepped this cycle, ascending
	idleSince  []int64  // first un-stepped cycle while asleep; -1 when awake
	canSleep   []bool   // adapter supports wake-on-enqueue
	sleeping   int      // nodes currently asleep
	dense      bool     // reference mode: step every router every cycle

	delivered uint64 // flits delivered to PEs
	forwarded uint64 // flits crossing links
	stepped   uint64 // router-steps executed (activity diagnostic)
}

type creditView struct {
	r    *router.Router
	port int
}

func (c creditView) CreditFree(vc int) int { return c.r.SnapFree(c.port, vc) }

// New assembles a fabric. wires[node][out] must describe every output port
// of every router; injStart[node] is the index of the first injection input
// port of node (ports below it are network inputs whose multicast bitstrings
// shift on forward).
func New(routers []*router.Router, wires [][]OutputWire, injStart []int) *Fabric {
	n := len(routers)
	if len(wires) != n || len(injStart) != n {
		panic("network: inconsistent fabric tables")
	}
	f := &Fabric{
		N:          n,
		Routers:    routers,
		Adapters:   make([]Adapter, n),
		Tracker:    NewTracker(),
		wires:      wires,
		injStart:   injStart,
		moves:      make([][]router.Move, n),
		activeMask: make([]uint64, (n+63)/64),
		stepList:   make([]int, 0, n),
		idleSince:  make([]int64, n),
		canSleep:   make([]bool, n),
	}
	// Every node starts awake (matching a dense cycle 0); empty routers go
	// quiescent after their first step.
	for node := 0; node < n; node++ {
		f.activeMask[node>>6] |= 1 << uint(node&63)
		f.idleSince[node] = -1
	}
	f.views = make([][]router.Downstream, n)
	for node, ws := range wires {
		f.views[node] = make([]router.Downstream, len(ws))
		for o, w := range ws {
			if w.Sink {
				f.views[node][o] = nil
				continue
			}
			if w.Dst.Node < 0 || w.Dst.Node >= n {
				panic(fmt.Sprintf("network: wire %d.%d to bad node %d", node, o, w.Dst.Node))
			}
			f.views[node][o] = creditView{r: routers[w.Dst.Node], port: w.Dst.Port}
		}
	}
	return f
}

// SetAdapter installs the network adapter of a node. All nodes must have one
// before stepping.
func (f *Fabric) SetAdapter(node int, a Adapter) {
	f.Adapters[node] = a
	if b, ok := a.(binder); ok {
		b.bind(f, node)
		f.canSleep[node] = true
	} else {
		// An adapter without wake plumbing cannot reactivate its node on
		// enqueue, so the node must stay in the step set forever.
		f.canSleep[node] = false
	}
}

// SetDense switches the fabric to the dense reference behaviour: every
// router stepped every cycle, no sleeping. It exists so the activity-driven
// scheduler can be proved bit-identical against it; call it before the first
// Step.
func (f *Fabric) SetDense(dense bool) {
	if f.cycle != 0 {
		panic("network: SetDense after stepping began")
	}
	f.dense = dense
}

// Now returns the current cycle.
func (f *Fabric) Now() int64 { return f.cycle }

// NextPktID returns a fresh packet identifier.
func (f *Fabric) NextPktID() uint64 { f.pktSeq++; return f.pktSeq }

// NextMsgID returns a fresh message identifier.
func (f *Fabric) NextMsgID() uint64 { f.msgSeq++; return f.msgSeq }

// FlitsDelivered returns the total flits handed to PEs.
func (f *Fabric) FlitsDelivered() uint64 { return f.delivered }

// FlitsForwarded returns the total flits that crossed links (including
// injection links).
func (f *Fabric) FlitsForwarded() uint64 { return f.forwarded }

// SteppedRouters returns the cumulative number of router-steps executed.
// Dense stepping performs N per cycle; the ratio of this counter to N*Now()
// is the activity factor the scheduler exploited.
func (f *Fabric) SteppedRouters() uint64 { return f.stepped }

// ActiveNodes returns how many nodes are in the step set for the next cycle.
func (f *Fabric) ActiveNodes() int {
	total := 0
	for _, w := range f.activeMask {
		total += bits.OnesCount64(w)
	}
	return total
}

// Idle reports whether the step set is empty: no router holds a flit and no
// source queue has backlog, so nothing can happen until new traffic is
// enqueued. The fabric clock may fast-forward over idle stretches with
// AdvanceIdle.
func (f *Fabric) Idle() bool {
	for _, w := range f.activeMask {
		if w != 0 {
			return false
		}
	}
	return true
}

// wake puts a node back into the step set. Slept cycles are reconciled into
// its statistics when it is next stepped.
func (f *Fabric) wake(node int) {
	f.activeMask[node>>6] |= 1 << uint(node&63)
}

// SyncStats brings the cycle counters of sleeping routers up to the current
// cycle, as if each had been stepped (empty) every cycle. It is idempotent
// at a given cycle; RouterStats calls it implicitly, and tests comparing
// per-router statistics against dense stepping call it first.
func (f *Fabric) SyncStats() {
	for node, since := range f.idleSince {
		if since >= 0 && since < f.cycle {
			f.Routers[node].AddIdleCycles(uint64(f.cycle - since))
			f.idleSince[node] = f.cycle
		}
	}
}

// RouterStats aggregates the microarchitectural counters of all switches:
// total grants, stalls by cause, and the network-wide buffer-occupancy
// integral.
func (f *Fabric) RouterStats() router.Stats {
	f.SyncStats()
	var agg router.Stats
	for _, r := range f.Routers {
		s := r.Stats()
		agg.Grants += s.Grants
		agg.OccupancySum += s.OccupancySum
		agg.Cycles += s.Cycles
		for i := range s.Stalls {
			agg.Stalls[i] += s.Stalls[i]
		}
	}
	return agg
}

// LinkLoad returns the per-output-port flit counts, indexed [node][out], for
// the edge-load-balance analysis (§2.1: Spidergon's edge asymmetry).
func (f *Fabric) LinkLoad() [][]uint64 {
	out := make([][]uint64, f.N)
	for node, r := range f.Routers {
		out[node] = make([]uint64, len(f.wires[node]))
		for o := range f.wires[node] {
			out[node][o] = r.Sent(o)
		}
	}
	return out
}

// Step advances the network by one cycle, visiting only active routers.
func (f *Fabric) Step() {
	// Latch the step set for this cycle: wakes during the cycle (commit
	// pushes, adapter enqueues) take effect next cycle, exactly when a dense
	// step would first observe the new flit.
	list := f.stepList[:0]
	if f.dense {
		for node := 0; node < f.N; node++ {
			list = append(list, node)
		}
	} else {
		for wi, word := range f.activeMask {
			base := wi << 6
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &^= 1 << uint(b)
				list = append(list, base+b)
			}
		}
	}
	f.stepList = list
	f.stepped += uint64(len(list))

	// Phase 0: latch occupancy snapshots (registered credits), crediting
	// newly woken routers with their slept cycles first.
	for _, node := range list {
		if f.idleSince[node] >= 0 {
			f.Routers[node].AddIdleCycles(uint64(f.cycle - f.idleSince[node]))
			f.idleSince[node] = -1
			f.sleeping--
		}
		f.Routers[node].Snapshot()
	}
	// Phase 1: active routers arbitrate against the snapshots.
	for _, node := range list {
		f.moves[node] = f.Routers[node].Arbitrate(f.views[node], f.moves[node][:0])
	}
	// Phase 2: commit switch state, deliver ejected copies, move flits
	// across links.
	for _, node := range list {
		r := f.Routers[node]
		moves := f.moves[node]
		r.Commit(moves)
		for i := range moves {
			m := &moves[i]
			if m.Deliver {
				f.delivered++
				if f.Trace != nil {
					f.Trace.Record(trace.Event{Cycle: f.cycle, Kind: trace.Deliver,
						Node: node, Out: -1, VC: -1,
						PktID: m.Flit.PktID, MsgID: m.Flit.MsgID, Seq: m.Flit.Seq})
				}
				f.Adapters[node].Receive(m.Flit, f.cycle)
			}
			if m.Out == router.NoOutput {
				continue
			}
			w := f.wires[node][m.Out]
			if w.Sink {
				continue // shared ejection port: consumed by the PE
			}
			g := m.Flit
			if m.In < f.injStart[node] {
				// Multicast bitstrings are hop-indexed: forwarding from a
				// network input moves the stream one hop, so the hardware
				// shifts the bitstring (bit 0 always means "the node this
				// flit is arriving at").
				g.Bits >>= 1
			}
			f.forwarded++
			if f.Trace != nil {
				f.Trace.Record(trace.Event{Cycle: f.cycle, Kind: trace.Forward,
					Node: node, Out: m.Out, VC: m.OutVC,
					PktID: g.PktID, MsgID: g.MsgID, Seq: g.Seq})
			}
			if !f.Routers[w.Dst.Node].Push(w.Dst.Port, m.OutVC, g) {
				panic(fmt.Sprintf("network: credit violation pushing into %d.%d vc %d",
					w.Dst.Node, w.Dst.Port, m.OutVC))
			}
			f.wake(w.Dst.Node)
		}
	}
	// Phase 3: adapters refill injection lanes.
	for _, node := range list {
		f.Adapters[node].Feed(f.cycle)
	}
	// Fully drained nodes leave the step set until a push or an enqueue
	// wakes them. Refreshing the credit snapshot on the way out is what
	// keeps upstream credit views identical to dense stepping, where the
	// next cycle would re-latch the drained (all-free) state.
	if !f.dense {
		for _, node := range list {
			r := f.Routers[node]
			if r.Quiescent() && f.canSleep[node] && f.Adapters[node].Backlog() == 0 {
				f.activeMask[node>>6] &^= 1 << uint(node&63)
				f.idleSince[node] = f.cycle + 1
				f.sleeping++
				r.RefreshSnapshot()
			}
		}
	}
	f.cycle++
}

// AdvanceIdle fast-forwards the fabric clock over cycles during which every
// router is verifiably empty: sleeping-router statistics are reconciled
// lazily, so the whole skip is O(1) regardless of length. It is only legal
// while every node is asleep (nodes woken by pending source enqueues are
// fine: their flits cannot enter a router before the next Step). The
// experiment layer pairs it with the kernel's ticker skip to jump from one
// traffic arrival to the next without simulating the empty cycles between.
func (f *Fabric) AdvanceIdle(cycles int64) {
	if cycles < 0 {
		panic("network: negative idle advance")
	}
	if cycles == 0 {
		return
	}
	if f.sleeping != f.N {
		panic(fmt.Sprintf("network: AdvanceIdle with %d of %d routers awake",
			f.N-f.sleeping, f.N))
	}
	f.cycle += cycles
}

// Run advances the fabric by the given number of cycles.
func (f *Fabric) Run(cycles int64) {
	for i := int64(0); i < cycles; i++ {
		f.Step()
	}
}

// Intra-cycle parallel stepping: a persistent worker pool shards each phase
// of a fabric cycle across goroutines.
//
// Determinism contract: within a phase the per-node work touches only that
// node's router/adapter plus read-only views of other routers' state that is
// stable for the whole phase (occupancy snapshots during arbitration, live
// occupancy during the sleep scan), so shard boundaries cannot change any
// outcome. Everything order-sensitive — delivery/trace/counter updates,
// cross-link pushes, wake bits, sleep-set edits, the cycle counter — runs in
// single-threaded coordinator sections in ascending node order, exactly the
// serial order. Results are therefore byte-identical at any worker count,
// including 1 (the pool-free serial path).
//
// quarcvet enforces the discipline: this file is the blessed pool
// implementation (//quarc:poolfile), and its shared-state writes must sit
// inside worker-0 sections or //quarc:coordinator functions.
//
//quarc:poolfile intra-cycle stepping pool; determinism proven by TestStepWorkerInvariance
package network

import (
	"runtime"
	"sync/atomic"
)

// spinBarrier synchronises the pool between phases. Workers spin on a
// generation counter (yielding after a burst), which is dramatically cheaper
// than mutex/condvar parking at the microsecond phase lengths of a fabric
// cycle; the atomics carry the happens-before edges the memory model (and
// the race detector) need.
type spinBarrier struct {
	n int32
	// spinLimit is how long a waiter burns cycles before yielding to the
	// scheduler. When the pool has a core per worker, spinning through a
	// phase boundary is the fast path; when workers outnumber GOMAXPROCS
	// (CI containers, -race runs on small machines), the stragglers can
	// only arrive once the waiter yields, so it must do so immediately.
	spinLimit int
	count     atomic.Int32
	gen       atomic.Uint64
}

//quarc:hotpath
func (b *spinBarrier) wait() {
	g := b.gen.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.gen.Add(1)
		return
	}
	for spins := 0; b.gen.Load() == g; spins++ {
		if spins >= b.spinLimit {
			runtime.Gosched()
		}
	}
}

// stepPool runs fabric cycles with `workers` goroutines (the dispatching
// caller counts as worker 0; workers-1 helpers park on a channel between
// dispatches). One dispatch covers maxCycles cycles — 1 in normal operation,
// a whole batch once the fabric saturates — with the coordinator latching
// the next step set and checking the stop hook between cycles.
type stepPool struct {
	f       *Fabric
	workers int
	bar     spinBarrier
	work    chan struct{} // one token per helper per dispatch; closed to exit
	shards  [][2]int      // per worker: [lo, hi) into f.stepList
	scratch []stepScratch

	// Dispatch state: written by worker 0 in single-threaded sections,
	// published to helpers by the barrier.
	maxCycles   int64
	ran         int64
	stop        func() bool
	halt        bool
	latchedNext bool
	stopped     bool
}

// newStepPool builds the pool before any helper exists; single-threaded by
// construction.
//
//quarc:coordinator
func newStepPool(f *Fabric, workers int) *stepPool {
	p := &stepPool{
		f:       f,
		workers: workers,
		work:    make(chan struct{}),
		shards:  make([][2]int, workers),
		scratch: make([]stepScratch, workers),
	}
	p.bar.n = int32(workers)
	if runtime.GOMAXPROCS(0) >= workers {
		p.bar.spinLimit = 512
	}
	for w := range p.scratch {
		p.scratch[w].sleptIdle = make([]int, 0, f.N)
		p.scratch[w].sleptBlocked = make([]int, 0, f.N)
	}
	for w := 1; w < workers; w++ {
		go func(id int) {
			for range p.work {
				p.cycles(id)
			}
		}(w)
	}
	return p
}

// close shuts the helper goroutines down. Must not be called while a
// dispatch is in flight.
//
//quarc:coordinator
func (p *stepPool) close() {
	close(p.work)
}

// computeShards splits the latched step list into contiguous, balanced
// per-worker ranges. Contiguity keeps each worker on an ascending node range
// (cache-friendly, and shard-count independent results fall out of phase
// independence, not shard layout).
//
//quarc:coordinator
func (p *stepPool) computeShards() {
	n := len(p.f.stepList)
	q, r := n/p.workers, n%p.workers
	lo := 0
	for w := 0; w < p.workers; w++ {
		sz := q
		if w < r {
			sz++
		}
		p.shards[w][0], p.shards[w][1] = lo, lo+sz
		lo += sz
	}
}

// run executes up to maxCycles cycles on the pool against the already
// latched step list. It returns the cycles run, whether the next cycle's
// step set was latched but left unrun (it fell below the pool grain), and
// whether the stop hook fired. The dispatching caller is single-threaded:
// helpers only wake at the work-channel sends below, after the dispatch
// state is fully written.
//
//quarc:coordinator
func (p *stepPool) run(maxCycles int64, stop func() bool) (ran int64, latchedNext, stopped bool) {
	p.maxCycles, p.stop = maxCycles, stop
	p.ran, p.halt, p.latchedNext, p.stopped = 0, false, false, false
	p.computeShards()
	for w := 1; w < p.workers; w++ {
		p.work <- struct{}{}
	}
	p.cycles(0)
	p.stop = nil
	return p.ran, p.latchedNext, p.stopped
}

// cycles is the per-worker cycle loop: five parallel phases over the
// worker's shard, interleaved with coordinator sections on worker 0. All
// workers observe the same halt decision through the final barrier, so they
// enter and leave together.
//
//quarc:hotpath
func (p *stepPool) cycles(w int) {
	f := p.f
	sc := &p.scratch[w]
	for {
		shard := f.stepList[p.shards[w][0]:p.shards[w][1]]
		for _, node := range shard {
			f.reconcile(node, sc)
		}
		p.bar.wait()
		for _, node := range shard {
			f.moves[node] = f.Routers[node].Arbitrate(f.views[node], f.moves[node][:0])
		}
		p.bar.wait()
		for _, node := range shard {
			f.Routers[node].Commit(f.moves[node])
		}
		p.bar.wait()
		if w == 0 {
			for i := range p.scratch {
				f.applyWoken(&p.scratch[i])
			}
			f.applyMoves(f.stepList)
		}
		p.bar.wait()
		for _, node := range shard {
			f.Adapters[node].Feed(f.cycle)
		}
		p.bar.wait()
		if !f.dense {
			for _, node := range shard {
				f.sleepScan(node, sc)
			}
		}
		p.bar.wait()
		if w == 0 {
			if !f.dense {
				for i := range p.scratch {
					f.applySleep(&p.scratch[i])
				}
			}
			f.cycle++
			p.ran++
			p.halt = true
			if p.ran < p.maxCycles {
				switch {
				case p.stop != nil && p.stop():
					p.stopped = true
				default:
					f.latch()
					if len(f.stepList) >= f.stepGrain {
						p.computeShards()
						p.halt = false
					} else {
						p.latchedNext = true
					}
				}
			}
		}
		p.bar.wait()
		if p.halt {
			// Exit barrier: the moment worker 0 returns, the next run() call
			// resets the dispatch state (halt included), so no worker may
			// leave until every worker has read this dispatch's halt
			// decision. Without it a descheduled helper could read the
			// reset halt=false, re-enter the cycle loop and spin on a
			// barrier no other worker will ever join.
			p.bar.wait()
			return
		}
	}
}

package network

import (
	"testing"

	"quarc/internal/flit"
	"quarc/internal/rng"
)

// sumBacklog recomputes the flit backlog the slow way, as FlitBacklog did
// before the running counter: the property test's reference.
func sumBacklog(q *PacketQueue) int {
	total := 0
	for i := q.head; i < len(q.pkts); i++ {
		total += len(q.pkts[i])
	}
	return total - q.pos
}

// TestPacketQueueBacklogCounter drives a queue through a random interleaving
// of PushBack, PushFront and Advance and checks the O(1) counter against the
// recomputed sum after every operation — including across the drain-reset
// and compaction paths.
func TestPacketQueueBacklogCounter(t *testing.T) {
	r := rng.New(42, 0)
	var q PacketQueue
	for op := 0; op < 20000; op++ {
		switch {
		case q.Packets() == 0 || r.Intn(3) == 0:
			length := 2 + r.Intn(6)
			p := q.NewPacket(flit.Flit{PktID: uint64(op) + 1}, length)
			if r.Intn(4) == 0 {
				q.PushFront(p)
			} else {
				q.PushBack(p)
			}
		default:
			if _, ok := q.NextFlit(); ok {
				q.Advance()
			}
		}
		if got, want := q.FlitBacklog(), sumBacklog(&q); got != want {
			t.Fatalf("op %d: FlitBacklog = %d, recomputed %d", op, got, want)
		}
	}
	// Drain completely; the counter must land exactly on zero.
	for {
		if _, ok := q.NextFlit(); !ok {
			break
		}
		q.Advance()
	}
	if q.FlitBacklog() != 0 {
		t.Fatalf("drained queue reports backlog %d", q.FlitBacklog())
	}
}

// BenchmarkAssemblerBroadcastReceive measures the receive/reassembly path
// under interleaved multi-flit streams from many sources — the broadcast
// delivery profile. The interesting number is allocs/op: the slice-backed
// Assembler must not allocate in steady state, where the map-backed one
// churned an insert+delete per completed packet.
func BenchmarkAssemblerBroadcastReceive(b *testing.B) {
	const sources = 8
	const msgLen = 16
	var a Assembler
	// Pre-build one packet per source; streams interleave round-robin, the
	// worst case for lookup.
	pkts := make([][]flit.Flit, sources)
	for s := range pkts {
		pkts[s] = flit.Packet(flit.Flit{Src: s, PktID: uint64(s) + 1}, msgLen)
	}
	b.ReportAllocs()
	b.ResetTimer()
	completed := 0
	for i := 0; i < b.N; i++ {
		round := uint64(i)
		for seq := 0; seq < msgLen; seq++ {
			for s := range pkts {
				f := pkts[s][seq]
				// Fresh packet ids per round keep the id space realistic.
				f.PktID = round*sources + uint64(s) + 1
				if a.Add(f) {
					completed++
				}
			}
		}
	}
	if completed != b.N*sources {
		b.Fatalf("completed %d packets, want %d", completed, b.N*sources)
	}
}

// TestAssemblerSteadyStateAllocs is the CI-checkable form of the benchmark:
// after the first round grows the partial-packet slice to its peak, the
// receive path must not allocate at all.
func TestAssemblerSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the guard runs without -race")
	}
	const sources = 8
	const msgLen = 16
	var a Assembler
	pkts := make([][]flit.Flit, sources)
	for s := range pkts {
		pkts[s] = flit.Packet(flit.Flit{Src: s, PktID: uint64(s) + 1}, msgLen)
	}
	round := uint64(0)
	deliverRound := func() {
		round++
		for seq := 0; seq < msgLen; seq++ {
			for s := range pkts {
				f := pkts[s][seq]
				f.PktID = round*sources + uint64(s) + 1
				a.Add(f)
			}
		}
	}
	deliverRound() // reach steady-state capacity
	if avg := testing.AllocsPerRun(100, deliverRound); avg != 0 {
		t.Fatalf("receive path allocated %.1f times per round in steady state; want 0", avg)
	}
}

package network_test

// Fabric-level tests of the activity scheduler mechanics: sleeping drained
// routers, waking on enqueue and on link push, bulk idle accounting, and the
// AdvanceIdle fast-forward. The end-to-end bit-identity proof lives in the
// experiment layer's registry-driven suite; these pin the mechanism.

import (
	"testing"

	"quarc/internal/network"
	"quarc/internal/quarc"
)

func buildQuarc(t *testing.T, n int) (*network.Fabric, []*quarc.Transceiver) {
	t.Helper()
	fab, ts, err := quarc.Build(quarc.Config{N: n, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	return fab, ts
}

func TestFabricSleepsWhenDrained(t *testing.T) {
	const n = 8
	fab, ts := buildQuarc(t, n)
	if fab.ActiveNodes() != n {
		t.Fatalf("fresh fabric has %d active nodes, want %d", fab.ActiveNodes(), n)
	}
	fab.Step()
	if fab.ActiveNodes() != 0 || !fab.Idle() {
		t.Fatalf("empty fabric kept %d nodes active after one step", fab.ActiveNodes())
	}

	// An enqueue wakes exactly the sender; deliveries wake receivers as the
	// packet moves, and the fabric drains back to fully idle.
	ts[0].SendUnicast(3, 4, fab.Now())
	if fab.ActiveNodes() != 1 {
		t.Fatalf("enqueue woke %d nodes, want 1", fab.ActiveNodes())
	}
	for i := 0; i < 100 && !fab.Idle(); i++ {
		fab.Step()
	}
	if !fab.Idle() {
		t.Fatal("fabric did not drain back to idle")
	}
	if fab.Tracker.Completed() != 1 {
		t.Fatalf("completed %d messages, want 1", fab.Tracker.Completed())
	}
	// Activity accounting must reconstruct dense per-router cycle counts.
	if st := fab.RouterStats(); st.Cycles != uint64(n)*uint64(fab.Now()) {
		t.Fatalf("router cycle integral %d, want %d (N=%d x %d cycles)",
			st.Cycles, uint64(n)*uint64(fab.Now()), n, fab.Now())
	}
}

func TestAdvanceIdleAccountsBulkCycles(t *testing.T) {
	const n = 8
	fab, ts := buildQuarc(t, n)
	fab.Step() // everyone sleeps
	before := fab.Now()
	fab.AdvanceIdle(10_000)
	if fab.Now() != before+10_000 {
		t.Fatalf("Now = %d after advance, want %d", fab.Now(), before+10_000)
	}
	if st := fab.RouterStats(); st.Cycles != uint64(n)*uint64(fab.Now()) {
		t.Fatalf("router cycle integral %d after idle advance, want %d",
			st.Cycles, uint64(n)*uint64(fab.Now()))
	}
	// The fabric must still work normally after a fast-forward.
	ts[2].SendUnicast(5, 4, fab.Now())
	for i := 0; i < 100 && fab.Tracker.InFlight() > 0; i++ {
		fab.Step()
	}
	if fab.Tracker.Completed() != 1 {
		t.Fatal("message did not complete after idle advance")
	}
}

func TestAdvanceIdleRefusesBusyFabric(t *testing.T) {
	fab, ts := buildQuarc(t, 8)
	ts[0].SendUnicast(1, 4, 0)
	fab.Step() // flits in flight: not every router is asleep
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceIdle on a busy fabric did not panic")
		}
	}()
	fab.AdvanceIdle(10)
}

func TestSetDenseKeepsEveryNodeActive(t *testing.T) {
	const n = 8
	fab, _ := buildQuarc(t, n)
	fab.SetDense(true)
	for i := 0; i < 5; i++ {
		fab.Step()
	}
	if fab.ActiveNodes() != n {
		t.Fatalf("dense fabric slept nodes: %d active, want %d", fab.ActiveNodes(), n)
	}
	if got := fab.SteppedRouters(); got != uint64(n*5) {
		t.Fatalf("dense stepped %d router-steps, want %d", got, n*5)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetDense after stepping did not panic")
		}
	}()
	fab.SetDense(false)
}

// TestSleepRefreshesCreditView reproduces the subtle staleness hazard: a
// router's credit snapshot is latched at the start of its last stepped
// cycle, so without the refresh-on-sleep an upstream router would see the
// pre-drain occupancy for as long as the downstream node sleeps.
func TestSleepRefreshesCreditView(t *testing.T) {
	fab, ts := buildQuarc(t, 8)
	// Stream a packet from 0 to its clockwise neighbour 1 and drain fully.
	ts[0].SendUnicast(1, 4, 0)
	for i := 0; i < 100 && !fab.Idle(); i++ {
		fab.Step()
	}
	if !fab.Idle() {
		t.Fatal("did not drain")
	}
	// Every lane of every router must now advertise full credit.
	for node, r := range fab.Routers {
		for in := 0; in < r.NumInputs(); in++ {
			for ln := 0; ; ln++ {
				if _, ok := r.LaneContents(in, ln); !ok {
					break
				}
				if free := r.SnapFree(in, ln); free != r.LaneFree(in, ln) {
					t.Fatalf("node %d in %d lane %d: snapshot says %d free, lane has %d",
						node, in, ln, free, r.LaneFree(in, ln))
				}
			}
		}
	}
}

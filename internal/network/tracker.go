package network

import "fmt"

// MessageClass is the statistics class of a message.
type MessageClass int

const (
	ClassUnicast MessageClass = iota
	ClassMulticast
	ClassBroadcast
)

func (c MessageClass) String() string {
	switch c {
	case ClassUnicast:
		return "unicast"
	case ClassMulticast:
		return "multicast"
	case ClassBroadcast:
		return "broadcast"
	}
	return fmt.Sprintf("MessageClass(%d)", int(c))
}

// MessageRecord is the completed lifecycle of one message.
type MessageRecord struct {
	MsgID     uint64
	Class     MessageClass
	Src       int
	Gen       int64 // generation cycle
	First     int64 // first delivery (tail at some destination)
	Last      int64 // final delivery: completion for collectives
	Expected  int   // destinations
	Delivered int
	DeliSum   int64 // sum of delivery cycles (for mean-per-delivery stats)
}

// Tracker follows in-flight messages: adapters register a message when its
// packets are enqueued and report each destination's tail arrival; the
// tracker finalises the record when all destinations have been served.
type Tracker struct {
	inflight map[uint64]*trackState
	OnDone   func(MessageRecord)

	// free recycles completed trackStates so steady-state registration does
	// not allocate; the list grows to the peak in-flight population.
	free []*trackState

	completed  uint64
	duplicates uint64
}

type trackState struct {
	rec  MessageRecord
	mask uint64 // delivered-node bitmask, nodes 0..63
	// maskHi extends the bitmask for nodes >= 64 (word w covers nodes
	// 64w+64 .. 64w+127). Lazily grown, recycled with the state so large-N
	// steady-state registration stays allocation-free.
	maskHi []uint64
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{inflight: make(map[uint64]*trackState)}
}

// Register announces a message entering the network.
//
//quarc:hotpath
func (t *Tracker) Register(msgID uint64, class MessageClass, src int, gen int64, expected int) {
	if expected <= 0 {
		panic("network: message with no destinations")
	}
	if _, dup := t.inflight[msgID]; dup {
		//quarc:allow hotpath: invariant-violation panic path, unreachable in a correct build
		panic(fmt.Sprintf("network: duplicate message id %d", msgID))
	}
	var st *trackState
	if n := len(t.free); n > 0 {
		st = t.free[n-1]
		t.free[n-1] = nil
		t.free = t.free[:n-1]
	} else {
		st = new(trackState)
	}
	st.rec = MessageRecord{
		MsgID: msgID, Class: class, Src: src, Gen: gen, Expected: expected, First: -1,
	}
	st.mask = 0
	for i := range st.maskHi {
		st.maskHi[i] = 0
	}
	t.inflight[msgID] = st
}

// Delivered reports the tail of msgID arriving at node. Unknown ids panic
// (they indicate a routing bug); duplicate deliveries to the same node are
// counted and reported via Duplicates (the Quarc broadcast must never
// produce one).
//
//quarc:hotpath
func (t *Tracker) Delivered(msgID uint64, node int, now int64) {
	st, ok := t.inflight[msgID]
	if !ok {
		//quarc:allow hotpath: invariant-violation panic path, unreachable in a correct build
		panic(fmt.Sprintf("network: delivery for unknown message %d", msgID))
	}
	bit := uint64(1) << uint(node&63)
	if w := node >> 6; w == 0 {
		if st.mask&bit != 0 {
			t.duplicates++
			return
		}
		st.mask |= bit
	} else {
		for len(st.maskHi) < w {
			st.maskHi = append(st.maskHi, 0)
		}
		if st.maskHi[w-1]&bit != 0 {
			t.duplicates++
			return
		}
		st.maskHi[w-1] |= bit
	}
	st.rec.Delivered++
	st.rec.DeliSum += now
	if st.rec.First < 0 {
		st.rec.First = now
	}
	st.rec.Last = now
	if st.rec.Delivered == st.rec.Expected {
		t.completed++
		delete(t.inflight, msgID)
		if t.OnDone != nil {
			t.OnDone(st.rec)
		}
		t.free = append(t.free, st)
	}
}

// InFlight returns the number of incomplete messages.
func (t *Tracker) InFlight() int { return len(t.inflight) }

// Completed returns the number of finished messages.
func (t *Tracker) Completed() uint64 { return t.completed }

// Duplicates returns how many redundant deliveries were observed. A correct
// Quarc/Spidergon configuration produces zero.
func (t *Tracker) Duplicates() uint64 { return t.duplicates }

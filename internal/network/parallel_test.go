package network_test

// Mechanism tests for StepBatch and the worker pool: the stop hook must act
// between cycles exactly as a caller's own per-Step loop would, whether the
// cycles run serially, on the pool one dispatch per cycle, or batched many
// cycles per dispatch. The end-to-end bit-identity matrix lives in the
// experiment layer's registry-driven suite.

import (
	"testing"

	"quarc/internal/network"
)

// referenceCycles runs the caller's own stop-checked loop: test before every
// cycle, step while work remains.
func referenceCycles(fab *network.Fabric) int64 {
	var n int64
	for fab.Tracker.InFlight() > 0 {
		fab.Step()
		n++
	}
	return n
}

func TestStepBatchStopMatchesPerStepLoop(t *testing.T) {
	ref, refTs := buildQuarc(t, 8)
	refTs[0].SendUnicast(3, 12, 0)
	want := referenceCycles(ref)
	if want == 0 {
		t.Fatal("reference run did no work")
	}

	for _, tc := range []struct {
		name  string
		setup func(f *network.Fabric)
	}{
		{"serial", func(f *network.Fabric) {}},
		{"pool", func(f *network.Fabric) {
			f.SetStepWorkers(2)
			f.SetStepGrain(1)
		}},
		{"pool-batched", func(f *network.Fabric) {
			// Dense mode keeps every node in the step set, so the
			// saturation streak arms immediately and the dispatch covers
			// many cycles — the stop hook must still fire between them.
			f.SetDense(true)
			f.SetStepWorkers(2)
			f.SetStepGrain(1)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fab, ts := buildQuarc(t, 8)
			tc.setup(fab)
			defer fab.Close()
			ts[0].SendUnicast(3, 12, 0)
			got := fab.StepBatch(1_000, func() bool { return fab.Tracker.InFlight() == 0 })
			if got != want {
				t.Fatalf("StepBatch ran %d cycles, per-Step loop ran %d", got, want)
			}
			if fab.Now() != ref.Now() {
				t.Fatalf("clock at %d, reference at %d", fab.Now(), ref.Now())
			}
			if fab.Tracker.Completed() != 1 {
				t.Fatalf("completed %d messages, want 1", fab.Tracker.Completed())
			}
		})
	}
}

func TestStepBatchHonoursBudget(t *testing.T) {
	fab, ts := buildQuarc(t, 8)
	defer fab.Close()
	ts[0].SendUnicast(3, 12, 0)
	if got := fab.StepBatch(3, nil); got != 3 {
		t.Fatalf("StepBatch(3) ran %d cycles", got)
	}
	if fab.Now() != 3 {
		t.Fatalf("clock at %d after a 3-cycle batch", fab.Now())
	}
	// A stop that is already true runs nothing.
	if got := fab.StepBatch(10, func() bool { return true }); got != 0 {
		t.Fatalf("StepBatch with an immediately-true stop ran %d cycles", got)
	}
}

package network

import (
	"fmt"

	"quarc/internal/flit"
)

// InvariantChecker validates wormhole-switching invariants on a live fabric
// after every cycle. It is used by stress tests (and available behind
// quarcsim-style debugging) to turn subtle routing bugs into immediate,
// attributable failures instead of corrupted statistics:
//
//	I1  In-order per lane: flits buffered in any input lane belong to at
//	    most two packets (the tail of one followed by the head of the
//	    next), with strictly consecutive sequence numbers per packet.
//	I2  Exclusive VC ownership: every (output port, downstream VC) pair is
//	    held by at most one upstream lane (checked structurally inside the
//	    router; here we re-derive it from buffer contents).
//	I3  Buffer bounds: no lane ever exceeds its configured depth (the
//	    credit/handshake guarantee of the link layer).
//	I4  Progress: unless the fabric is empty, some flit moves at least once
//	    every Horizon cycles (deadlock/livelock detector; the dateline VC
//	    discipline makes genuine deadlock impossible, so a stall of Horizon
//	    cycles is a bug).
type InvariantChecker struct {
	fab     *Fabric
	Horizon int64 // progress window (default 4096)

	lastForward uint64
	lastMove    int64
	err         error
}

// NewInvariantChecker attaches a checker to a fabric.
func NewInvariantChecker(fab *Fabric) *InvariantChecker {
	return &InvariantChecker{fab: fab, Horizon: 4096, lastMove: 0}
}

// Err returns the first violation found, or nil.
func (c *InvariantChecker) Err() error { return c.err }

// Check validates the invariants at the current cycle. It records (and
// keeps returning) the first violation.
func (c *InvariantChecker) Check() error {
	if c.err != nil {
		return c.err
	}
	if err := c.checkLanes(); err != nil {
		c.err = err
		return err
	}
	if err := c.checkProgress(); err != nil {
		c.err = err
		return err
	}
	return nil
}

func (c *InvariantChecker) checkLanes() error {
	for node, r := range c.fab.Routers {
		for in := 0; in < r.NumInputs(); in++ {
			for lane := 0; ; lane++ {
				flits, ok := r.LaneContents(in, lane)
				if !ok {
					break
				}
				if err := validateLaneStream(flits); err != nil {
					return fmt.Errorf("node %d in %d lane %d: %w", node, in, lane, err)
				}
			}
		}
	}
	return nil
}

// validateLaneStream checks I1 on one lane's buffered flits.
func validateLaneStream(fl []flit.Flit) error {
	for i := 0; i < len(fl); i++ {
		f := fl[i]
		if i == 0 {
			// The head may be mid-packet (header already gone) or a header.
			continue
		}
		prev := fl[i-1]
		if f.PktID == prev.PktID {
			if f.Seq != prev.Seq+1 {
				return fmt.Errorf("flit seq %d after %d in pkt %d", f.Seq, prev.Seq, f.PktID)
			}
			continue
		}
		// Packet boundary: previous must be a tail, next must be a header.
		if prev.Kind != flit.Tail {
			return fmt.Errorf("pkt %d interrupted by pkt %d before its tail", prev.PktID, f.PktID)
		}
		if f.Kind != flit.Header {
			return fmt.Errorf("pkt %d starts mid-lane with %v", f.PktID, f.Kind)
		}
	}
	return nil
}

func (c *InvariantChecker) checkProgress() error {
	now := c.fab.Now()
	moved := c.fab.FlitsForwarded() + c.fab.FlitsDelivered()
	if moved != c.lastForward {
		c.lastForward = moved
		c.lastMove = now
		return nil
	}
	// Nothing moved this cycle; fine if the network is idle.
	idle := c.fab.Tracker.InFlight() == 0
	if idle {
		c.lastMove = now
		return nil
	}
	if now-c.lastMove > c.Horizon {
		return fmt.Errorf("network: no flit movement for %d cycles with %d messages in flight",
			now-c.lastMove, c.fab.Tracker.InFlight())
	}
	return nil
}

// StepChecked advances the fabric one cycle and validates invariants,
// returning the first violation.
func (c *InvariantChecker) StepChecked() error {
	c.fab.Step()
	return c.Check()
}

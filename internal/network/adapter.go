package network

import (
	"fmt"

	"quarc/internal/flit"
	"quarc/internal/router"
)

// PacketQueue is an unbounded source queue of packets waiting at a network
// adapter, streaming the front packet flit by flit. The open-loop traffic
// model of the paper's evaluation queues messages here while the injection
// channel is busy; the queue population is the saturation signal.
//
// The queue recycles finished packet storage: dequeueing advances a head
// index instead of reslicing, the backing array is compacted when it drains,
// and fully injected packets return to a bounded free list that NewPacket
// reuses — so a steady-state simulation injects messages without allocating.
// A running flit counter makes FlitBacklog O(1): the saturation sampler
// polls it for every node, and the activity scheduler polls it for every
// stepped node every cycle.
type PacketQueue struct {
	pkts    [][]flit.Flit
	head    int           // index of the front packet in pkts
	pos     int           // next flit of the front packet
	backlog int           // flits still to inject, maintained incrementally
	free    [][]flit.Flit // recycled packet storage for NewPacket
}

// MaxFreePackets bounds a per-queue recycled-packet list; beyond it,
// finished packets are released to the garbage collector. Exported so
// adapter-side queues with the same recycling discipline (the quarc
// single-queue ablation) share the bound.
const MaxFreePackets = 16

// NewPacket assembles a packet of length flits headed by h, reusing a
// previously injected packet's storage when available. The returned slice is
// owned by the caller until it is pushed back into a queue.
//
//quarc:hotpath
func (q *PacketQueue) NewPacket(h flit.Flit, length int) []flit.Flit {
	if n := len(q.free); n > 0 {
		buf := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		return flit.AppendPacket(buf[:0], h, length)
	}
	return flit.Packet(h, length)
}

// PushBack appends a packet.
//
//quarc:hotpath
func (q *PacketQueue) PushBack(p []flit.Flit) {
	if len(p) < 2 {
		panic("network: packet too short")
	}
	q.pkts = append(q.pkts, p)
	q.backlog += len(p)
}

// PushFront inserts a packet to be sent next. If the front packet has
// already started streaming it is not disturbed: the new packet goes second
// (a switch cannot recall flits already committed to the channel).
//
//quarc:hotpath
func (q *PacketQueue) PushFront(p []flit.Flit) {
	if len(p) < 2 {
		panic("network: packet too short")
	}
	q.backlog += len(p)
	if q.pos == 0 && q.head > 0 {
		// The drained prefix has a free slot just before the front packet:
		// insert in O(1) instead of shifting the live region.
		q.head--
		q.pkts[q.head] = p
		return
	}
	at := q.head
	if q.pos > 0 && q.head < len(q.pkts) {
		at = q.head + 1
	}
	q.pkts = append(q.pkts, nil)
	copy(q.pkts[at+1:], q.pkts[at:])
	q.pkts[at] = p
}

// NextFlit peeks at the next flit to inject.
//
//quarc:hotpath
func (q *PacketQueue) NextFlit() (flit.Flit, bool) {
	if q.head == len(q.pkts) {
		return flit.Flit{}, false
	}
	return q.pkts[q.head][q.pos], true
}

// Advance consumes the peeked flit.
//
//quarc:hotpath
func (q *PacketQueue) Advance() {
	if q.head == len(q.pkts) {
		panic("network: Advance on empty queue")
	}
	q.pos++
	q.backlog--
	if q.pos == len(q.pkts[q.head]) {
		done := q.pkts[q.head]
		q.pkts[q.head] = nil
		q.head++
		q.pos = 0
		if len(q.free) < MaxFreePackets {
			q.free = append(q.free, done)
		}
		switch {
		case q.head == len(q.pkts):
			q.pkts = q.pkts[:0]
			q.head = 0
		case q.head > 32 && q.head*2 >= len(q.pkts):
			// Compact the drained prefix so a saturated queue's backing
			// array stays proportional to its live population.
			n := copy(q.pkts, q.pkts[q.head:])
			for i := n; i < len(q.pkts); i++ {
				q.pkts[i] = nil
			}
			q.pkts = q.pkts[:n]
			q.head = 0
		}
	}
}

// Packets returns the queued packet count.
func (q *PacketQueue) Packets() int { return len(q.pkts) - q.head }

// FlitBacklog returns the number of flits still to inject, in O(1).
func (q *PacketQueue) FlitBacklog() int { return q.backlog }

// Assembler reassembles packets delivered flit by flit (the receive side of
// the transceiver). Packets from different sources interleave freely; each
// is tracked by packet id.
//
// In-progress packets live in a small reused slice rather than a map: the
// population is bounded by the handful of streams a switch can interleave
// into one PE, so a linear scan beats hashing, and completing a packet does
// not churn map buckets — the receive path allocates nothing in steady
// state.
type Assembler struct {
	partial []partialPkt
}

type partialPkt struct {
	pkt uint64
	got int
}

// Add consumes one delivered flit and reports whether it completed a packet
// (i.e. it was the tail and all earlier flits had arrived).
//
//quarc:hotpath
func (a *Assembler) Add(f flit.Flit) bool {
	at := -1
	got := 0
	for i := range a.partial {
		if a.partial[i].pkt == f.PktID {
			at, got = i, a.partial[i].got
			break
		}
	}
	if f.Seq != got {
		//quarc:allow hotpath: invariant-violation panic path, unreachable in a correct build
		panic(fmt.Sprintf("network: out-of-order delivery: pkt %d flit %d after %d flits",
			f.PktID, f.Seq, got))
	}
	if f.Kind == flit.Tail {
		if got+1 != f.PktLen && f.PktLen != 0 {
			//quarc:allow hotpath: invariant-violation panic path, unreachable in a correct build
			panic(fmt.Sprintf("network: tail of pkt %d after %d flits", f.PktID, got+1))
		}
		if at >= 0 {
			// Order is irrelevant (lookup is by packet id): swap-remove so
			// the slot is reused without shifting.
			last := len(a.partial) - 1
			a.partial[at] = a.partial[last]
			a.partial = a.partial[:last]
		}
		return true
	}
	if at >= 0 {
		a.partial[at].got = got + 1
	} else {
		a.partial = append(a.partial, partialPkt{pkt: f.PktID, got: 1})
	}
	return false
}

// Pending returns the number of partially received packets.
func (a *Assembler) Pending() int { return len(a.partial) }

// BaseAdapter implements the mechanics shared by every network adapter:
// per-injection-port source queues, one-flit-per-cycle feeding, and receive
// reassembly. Topology-specific adapters embed it and set OnTail to handle
// completed deliveries (statistics, chain retransmission).
type BaseAdapter struct {
	Node     int
	R        *router.Router
	Queues   []PacketQueue
	InjPorts []int // router input port per queue
	asm      Assembler

	// OnTail is invoked when a packet completes reassembly at this node.
	OnTail func(f flit.Flit, now int64)

	fab *Fabric // set by Fabric.SetAdapter; carries wake-on-enqueue
}

// bind gives the adapter its wake target; Fabric.SetAdapter calls it, and
// its presence (via the binder interface) is what marks the node as safe to
// put to sleep.
func (b *BaseAdapter) bind(f *Fabric, node int) {
	if node != b.Node {
		panic(fmt.Sprintf("network: adapter for node %d installed at node %d", b.Node, node))
	}
	b.fab = f
}

// Wake reactivates this adapter's node in the fabric's step set. Every path
// that enqueues source traffic must call it (the Enqueue helpers do), or a
// sleeping router would never notice the new packet. Outside a fabric (unit
// tests driving a bare adapter) it is a no-op.
//
//quarc:hotpath
func (b *BaseAdapter) Wake() {
	if b.fab != nil {
		b.fab.wake(b.Node)
	}
}

// Enqueue assembles a packet of length flits headed by h, appends it to
// source queue qi (reusing that queue's recycled storage) and wakes the
// node.
//
//quarc:hotpath
func (b *BaseAdapter) Enqueue(qi int, h flit.Flit, length int) {
	q := &b.Queues[qi]
	q.PushBack(q.NewPacket(h, length))
	b.Wake()
}

// EnqueueFront is Enqueue at the head of the queue: switch-generated
// packets (chain retransmissions) bypass waiting PE traffic.
//
//quarc:hotpath
func (b *BaseAdapter) EnqueueFront(qi int, h flit.Flit, length int) {
	q := &b.Queues[qi]
	q.PushFront(q.NewPacket(h, length))
	b.Wake()
}

// Feed pushes at most one flit per injection port into the router.
//
//quarc:hotpath
func (b *BaseAdapter) Feed(now int64) {
	for qi := range b.Queues {
		q := &b.Queues[qi]
		f, ok := q.NextFlit()
		if !ok {
			continue
		}
		if b.R.Push(b.InjPorts[qi], 0, f) {
			q.Advance()
		}
	}
}

// FeedBlocked reports whether Feed cannot inject a single flit right now:
// every source queue with a pending flit faces a full injection lane. The
// fabric consults it (through the feedBlocked interface) before putting a
// backlogged node into blocked sleep — a node whose Feed could still make
// progress must keep stepping. Adapters that override Feed's queue discipline
// must override this to match.
func (b *BaseAdapter) FeedBlocked() bool {
	for qi := range b.Queues {
		q := &b.Queues[qi]
		if _, ok := q.NextFlit(); !ok {
			continue
		}
		if b.R.LaneFree(b.InjPorts[qi], 0) > 0 {
			return false
		}
	}
	return true
}

// Receive reassembles delivered flits and fires OnTail on completion.
//
//quarc:hotpath
func (b *BaseAdapter) Receive(f flit.Flit, now int64) {
	if b.asm.Add(f) {
		b.OnTail(f, now)
	}
}

// Backlog returns the total flits waiting in this adapter's source queues;
// the experiment layer samples it to detect saturation and the fabric polls
// it before sleeping the node, so it stays O(number of queues).
func (b *BaseAdapter) Backlog() int {
	total := 0
	for i := range b.Queues {
		total += b.Queues[i].FlitBacklog()
	}
	return total
}

// CountRemoteTargets returns the number of distinct targets excluding self —
// the expected delivery count of a multicast. Nodes below 64 deduplicate
// through a bitmask; higher ids (large meshes) fall back to a linear rescan
// of the prefix, which stays cheap at realistic multicast widths and
// allocates nothing.
func CountRemoteTargets(targets []int, self int) int {
	var seen uint64
	count := 0
	for i, d := range targets {
		if d == self {
			continue
		}
		if uint(d) < 64 {
			bit := uint64(1) << uint(d)
			if seen&bit != 0 {
				continue
			}
			seen |= bit
			count++
			continue
		}
		dup := false
		for _, e := range targets[:i] {
			if e == d {
				dup = true
				break
			}
		}
		if !dup {
			count++
		}
	}
	return count
}

// SendMulticastFanout is the software multicast emulation shared by adapters
// without hardware collective support: the message registers as
// ClassMulticast with one expected delivery per distinct remote target, and
// one independent unicast packet per target is enqueued on source queue qi.
// Duplicate targets and self are ignored, mirroring the Quarc transceiver's
// semantics.
func (b *BaseAdapter) SendMulticastFanout(fab *Fabric, qi int, targets []int, msgLen int, now int64) uint64 {
	expected := CountRemoteTargets(targets, b.Node)
	if expected == 0 {
		panic("network: multicast with no remote targets")
	}
	msgID := fab.NextMsgID()
	fab.Tracker.Register(msgID, ClassMulticast, b.Node, now, expected)
	var seen uint64
	for i, d := range targets {
		if d == b.Node {
			continue
		}
		if uint(d) < 64 {
			bit := uint64(1) << uint(d)
			if seen&bit != 0 {
				continue
			}
			seen |= bit
		} else {
			dup := false
			for _, e := range targets[:i] {
				if e == d {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
		}
		h := flit.Flit{
			Traffic: flit.Unicast, Src: b.Node, Dst: d,
			PktID: fab.NextPktID(), MsgID: msgID, Gen: now,
		}
		b.Enqueue(qi, h, msgLen)
	}
	return msgID
}

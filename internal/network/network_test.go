package network

import (
	"testing"

	"quarc/internal/flit"
	"quarc/internal/router"
)

func pkt(id uint64, n int) []flit.Flit {
	return flit.Packet(flit.Flit{Src: 0, Dst: 1, PktID: id, MsgID: id}, n)
}

func TestPacketQueueFIFO(t *testing.T) {
	var q PacketQueue
	q.PushBack(pkt(1, 2))
	q.PushBack(pkt(2, 3))
	if q.Packets() != 2 || q.FlitBacklog() != 5 {
		t.Fatalf("packets/backlog = %d/%d", q.Packets(), q.FlitBacklog())
	}
	var ids []uint64
	for {
		f, ok := q.NextFlit()
		if !ok {
			break
		}
		ids = append(ids, f.PktID)
		q.Advance()
	}
	want := []uint64{1, 1, 2, 2, 2}
	if len(ids) != len(want) {
		t.Fatalf("streamed %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("streamed %v, want %v", ids, want)
		}
	}
}

func TestPacketQueuePushFrontIdle(t *testing.T) {
	var q PacketQueue
	q.PushBack(pkt(1, 2))
	q.PushFront(pkt(9, 2))
	f, _ := q.NextFlit()
	if f.PktID != 9 {
		t.Fatalf("front flit from pkt %d, want 9", f.PktID)
	}
}

func TestPacketQueuePushFrontMidStream(t *testing.T) {
	var q PacketQueue
	q.PushBack(pkt(1, 3))
	q.PushBack(pkt(2, 2))
	q.Advance() // pkt 1 started streaming
	q.PushFront(pkt(9, 2))
	// Order must be: rest of pkt 1, then pkt 9, then pkt 2.
	var ids []uint64
	for {
		f, ok := q.NextFlit()
		if !ok {
			break
		}
		ids = append(ids, f.PktID)
		q.Advance()
	}
	want := []uint64{1, 1, 9, 9, 2, 2}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("streamed %v, want %v", ids, want)
		}
	}
}

func TestPacketQueueBacklogAccounting(t *testing.T) {
	var q PacketQueue
	q.PushBack(pkt(1, 4))
	q.Advance()
	if q.FlitBacklog() != 3 {
		t.Fatalf("backlog = %d, want 3", q.FlitBacklog())
	}
}

func TestPacketQueueRejectsShortPacket(t *testing.T) {
	var q PacketQueue
	defer func() {
		if recover() == nil {
			t.Fatal("short packet accepted")
		}
	}()
	q.PushBack([]flit.Flit{{}})
}

func TestAssemblerCompletesOnTail(t *testing.T) {
	var a Assembler
	p := pkt(5, 4)
	for i, f := range p {
		done := a.Add(f)
		if done != (i == 3) {
			t.Fatalf("flit %d: done = %v", i, done)
		}
	}
	if a.Pending() != 0 {
		t.Fatalf("pending = %d after completion", a.Pending())
	}
}

func TestAssemblerInterleavedPackets(t *testing.T) {
	var a Assembler
	p1, p2 := pkt(1, 3), pkt(2, 3)
	a.Add(p1[0])
	a.Add(p2[0])
	a.Add(p1[1])
	a.Add(p2[1])
	if a.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", a.Pending())
	}
	if !a.Add(p1[2]) || !a.Add(p2[2]) {
		t.Fatal("tails did not complete packets")
	}
}

func TestAssemblerPanicsOnOutOfOrder(t *testing.T) {
	var a Assembler
	p := pkt(1, 3)
	a.Add(p[0])
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order flit accepted")
		}
	}()
	a.Add(p[2]) // skip the body
}

func TestTrackerLifecycle(t *testing.T) {
	tr := NewTracker()
	var done []MessageRecord
	tr.OnDone = func(r MessageRecord) { done = append(done, r) }
	tr.Register(1, ClassBroadcast, 0, 10, 3)
	tr.Delivered(1, 1, 20)
	tr.Delivered(1, 2, 25)
	if len(done) != 0 || tr.InFlight() != 1 {
		t.Fatal("completed early")
	}
	tr.Delivered(1, 3, 30)
	if len(done) != 1 || tr.InFlight() != 0 {
		t.Fatal("did not complete")
	}
	r := done[0]
	if r.First != 20 || r.Last != 30 || r.Delivered != 3 || r.Gen != 10 {
		t.Fatalf("record = %+v", r)
	}
	if r.DeliSum != 75 {
		t.Fatalf("DeliSum = %d, want 75", r.DeliSum)
	}
	if tr.Completed() != 1 {
		t.Fatalf("Completed = %d", tr.Completed())
	}
}

func TestTrackerDuplicateDelivery(t *testing.T) {
	tr := NewTracker()
	tr.Register(1, ClassBroadcast, 0, 0, 2)
	tr.Delivered(1, 5, 1)
	tr.Delivered(1, 5, 2) // duplicate node
	if tr.Duplicates() != 1 {
		t.Fatalf("Duplicates = %d, want 1", tr.Duplicates())
	}
	if tr.InFlight() != 1 {
		t.Fatal("duplicate delivery must not complete the message")
	}
}

func TestTrackerUnknownMessagePanics(t *testing.T) {
	tr := NewTracker()
	defer func() {
		if recover() == nil {
			t.Fatal("unknown delivery accepted")
		}
	}()
	tr.Delivered(42, 0, 0)
}

func TestTrackerDuplicateRegisterPanics(t *testing.T) {
	tr := NewTracker()
	tr.Register(1, ClassUnicast, 0, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate register accepted")
		}
	}()
	tr.Register(1, ClassUnicast, 0, 0, 1)
}

func TestMessageClassString(t *testing.T) {
	if ClassUnicast.String() != "unicast" || ClassBroadcast.String() != "broadcast" ||
		ClassMulticast.String() != "multicast" || MessageClass(9).String() == "" {
		t.Fatal("MessageClass strings wrong")
	}
}

func TestBaseAdapterFeedPacing(t *testing.T) {
	// Feed pushes at most one flit per injection port per cycle, even when
	// the lane has more space.
	r := router.New(router.Config{
		Node: 0, VCs: 2, Depth: 8, InLanes: []int{2, 1}, NOut: 1,
		EjectPort: router.NoOutput,
		Route: func(node, in int, f flit.Flit) router.Decision {
			return router.Decision{Out: 0}
		},
		VCNext: func(node, out, in, cur int, f flit.Flit) int { return 0 },
	})
	a := &BaseAdapter{Node: 0, R: r, Queues: make([]PacketQueue, 1), InjPorts: []int{1}}
	a.OnTail = func(f flit.Flit, now int64) {}
	a.Queues[0].PushBack(pkt(1, 6))
	for cyc := int64(0); cyc < 3; cyc++ {
		a.Feed(cyc)
		if got := r.LaneLen(1, 0); got != int(cyc)+1 {
			t.Fatalf("cycle %d: lane holds %d flits, want %d", cyc, got, cyc+1)
		}
	}
}

func TestBaseAdapterFeedStopsWhenLaneFull(t *testing.T) {
	r := router.New(router.Config{
		Node: 0, VCs: 2, Depth: 2, InLanes: []int{1}, NOut: 1,
		EjectPort: router.NoOutput,
		Route: func(node, in int, f flit.Flit) router.Decision {
			return router.Decision{Out: 0}
		},
		VCNext: func(node, out, in, cur int, f flit.Flit) int { return 0 },
	})
	a := &BaseAdapter{Node: 0, R: r, Queues: make([]PacketQueue, 1), InjPorts: []int{0}}
	a.OnTail = func(f flit.Flit, now int64) {}
	a.Queues[0].PushBack(pkt(1, 5))
	for cyc := int64(0); cyc < 6; cyc++ {
		a.Feed(cyc)
	}
	if got := r.LaneLen(0, 0); got != 2 {
		t.Fatalf("lane holds %d flits, want capacity 2", got)
	}
	if a.Backlog() != 3 {
		t.Fatalf("backlog %d, want 3", a.Backlog())
	}
}

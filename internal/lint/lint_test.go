package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// fixture loads one testdata package, posing as importPath so path-scoped
// analyzers see the package they expect.
func fixture(t *testing.T, dir, importPath string) *Package {
	t.Helper()
	pkg, err := LoadFixture("../..", filepath.Join("testdata", "src", dir), importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	return pkg
}

// checkFixture runs one analyzer over a fixture and fails on any mismatch
// with its // want comments.
func checkFixture(t *testing.T, dir, importPath string, a *Analyzer) {
	t.Helper()
	pkg := fixture(t, dir, importPath)
	for _, e := range CheckFixture(pkg, []*Analyzer{a}) {
		t.Error(e)
	}
}

func TestDeterminismFixture(t *testing.T) {
	// Posed as internal/network: fully inside the determinism scope.
	checkFixture(t, "determinism", "quarc/internal/network", Determinism)
}

func TestDeterminismOutOfScope(t *testing.T) {
	// The same sources posed as a non-simulation package produce nothing:
	// the scope map is what keeps cmd/ and the HTTP layer free to use
	// clocks and goroutines.
	pkg := fixture(t, "determinism", "quarc/internal/webui")
	if diags := RunAnalyzers(pkg, []*Analyzer{Determinism}); len(diags) != 0 {
		t.Errorf("determinism fired outside its scope: %v", diags)
	}
}

func TestCacheKeyPurityFixture(t *testing.T) {
	checkFixture(t, "cachekey", "quarc/fixture/cachekey", CacheKeyPurity)
}

func TestHotPathFixture(t *testing.T) {
	checkFixture(t, "hotpath", "quarc/fixture/hotpath", HotPath)
}

func TestCoordSectionFixture(t *testing.T) {
	checkFixture(t, "coordsection", "quarc/fixture/coordsection", CoordSection)
}

func TestMetricsOnceFixture(t *testing.T) {
	checkFixture(t, "metricsonce", "quarc/fixture/metricsonce", MetricsOnce)
}

func TestAllowSuppression(t *testing.T) {
	pkg := fixture(t, "allow", "quarc/fixture/allow")
	diags := RunAnalyzers(pkg, []*Analyzer{HotPath})

	wants := []struct{ analyzer, substr string }{
		// unjustified(): the reason-less allow suppresses nothing...
		{"hotpath", `fmt.Println in hot path`},
		// ...and is a finding of its own.
		{"allow", "needs a justification"},
		// wrongAnalyzer(): an allow for another analyzer does not apply.
		{"hotpath", `fmt.Println in hot path`},
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(wants), diags)
	}
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if !matched[i] && d.Analyzer == w.analyzer && strings.Contains(d.Message, w.substr) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic from %s containing %q in %v", w.analyzer, w.substr, diags)
		}
	}
	// The justified allow in suppressed() must have silenced its fmt call.
	for _, d := range diags {
		if d.Pos.Line < 14 {
			t.Errorf("diagnostic inside the suppressed function: %v", d)
		}
	}
}

// TestQuarcvetCleanTree is the dogfooding gate: the real repository, loaded
// exactly as cmd/quarcvet loads it, must produce zero unsuppressed
// diagnostics. A regression anywhere in internal/ (a stray clock read, a
// wire field with no cache-key fate, a shared write outside a coordinator
// section) fails this test before it fails CI's quarcvet run.
func TestQuarcvetCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, pkg := range pkgs {
		for _, d := range RunAnalyzers(pkg, All()) {
			t.Errorf("%s", d)
		}
	}
}

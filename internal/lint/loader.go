package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one type-checked package ready for analysis. Only non-test
// sources are loaded: the invariants quarcvet enforces are production-code
// properties, and test files are free to use time, maps and goroutines.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Incomplete bool
}

// goList shells out to the go command in dir and decodes the JSON stream.
func goList(dir string, extra []string, patterns []string) ([]listedPkg, error) {
	args := append([]string{"list"}, extra...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %v: %v\n%s", args, err, stderr.String())
	}
	var out []listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		out = append(out, p)
	}
	return out, nil
}

// Load enumerates the packages matching the patterns (relative to dir),
// parses their non-test sources and type-checks them. Imports — stdlib and
// intra-module alike — are satisfied from compiled gc export data produced
// by `go list -export`, so loading is fast and needs no network.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	deps, err := goList(dir, []string{"-deps", "-export", "-json=ImportPath,Dir,GoFiles,Export,Standard,Incomplete"}, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range deps {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	targets, err := goList(dir, []string{"-json=ImportPath,Dir,GoFiles"}, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// LoadFixture type-checks a single fixture directory (every .go file in it,
// one package) while posing as importPath, so path-scoped analyzers treat
// the fixture as the package it stands in for. modDir anchors the go
// command invocation that resolves the fixture's imports.
func LoadFixture(modDir, fixtureDir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, filepath.Join(fixtureDir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", fixtureDir)
	}
	sort.Strings(files)

	// Resolve the fixture's imports by asking go list for their compiled
	// export data (the fixture itself is outside any build, under testdata).
	fset := token.NewFileSet()
	var parsed []*ast.File
	importSet := map[string]bool{}
	for _, fn := range files {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
		for _, spec := range f.Imports {
			importSet[importString(spec)] = true
		}
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		var paths []string
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		deps, err := goList(modDir, []string{"-deps", "-export", "-json=ImportPath,Dir,GoFiles,Export,Standard,Incomplete"}, paths)
		if err != nil {
			return nil, err
		}
		for _, p := range deps {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return checkParsed(fset, exportImporter(fset, exports), importPath, fixtureDir, parsed)
}

func importString(spec *ast.ImportSpec) string {
	s := spec.Path.Value
	return s[1 : len(s)-1]
}

// exportImporter satisfies go/types imports from gc export data files.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

func check(fset *token.FileSet, imp types.Importer, pkgPath, dir string, filenames []string) (*Package, error) {
	var parsed []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	return checkParsed(fset, imp, pkgPath, dir, parsed)
}

func checkParsed(fset *token.FileSet, imp types.Importer, pkgPath, dir string, parsed []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Files:   parsed,
		Types:   tpkg,
		Info:    info,
	}, nil
}

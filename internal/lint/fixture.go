package lint

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// want is one `// want "regex" ...` expectation in a fixture file.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// CheckFixture runs the analyzers over a fixture package and compares the
// surviving diagnostics against the fixture's `// want "regex"` comments —
// the stdlib-only equivalent of analysistest.Run. A want comment expects a
// diagnostic on its own line whose message matches the regex; multiple
// quoted regexes expect multiple diagnostics. Every unmatched expectation
// and every unexpected diagnostic is returned as an error string.
func CheckFixture(pkg *Package, analyzers []*Analyzer) []string {
	var wants []*want
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				text, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
					unq, err := strconv.Unquote(`"` + m[1] + `"`)
					if err != nil {
						unq = m[1]
					}
					re, err := regexp.Compile(unq)
					if err != nil {
						return []string{fmt.Sprintf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)}
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}

	var errs []string
	for _, d := range RunAnalyzers(pkg, analyzers) {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			errs = append(errs, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.matched {
			errs = append(errs, fmt.Sprintf("%s:%d: no diagnostic matching %q", w.file, w.line, w.pattern))
		}
	}
	return errs
}

package lint

// All returns the quarcvet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		CacheKeyPurity,
		HotPath,
		CoordSection,
		MetricsOnce,
	}
}

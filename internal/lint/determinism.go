package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// determinismScope names the packages whose output must be a pure function
// of (configuration, seed): the simulation stack end to end, plus the
// canonical-key and wire-encoding code in the service layer (nil file list
// = every file of the package).
var determinismScope = map[string][]string{
	"internal/network":     nil,
	"internal/router":      nil,
	"internal/experiments": nil,
	"internal/sim":         nil,
	"internal/traffic":     nil,
	"internal/explore":     nil,
	"internal/service":     {"api.go", "canonical.go", "explore.go"},
}

// wallClockFuncs are the time package's clock reads. time.Duration values
// and constants stay legal — only sampling the wall clock is flagged.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// Determinism flags the constructs that make simulation output depend on
// anything beyond (configuration, seed): wall-clock reads, the globally
// seeded math/rand, map iteration (Go randomizes the order), and goroutine
// spawns outside the blessed worker-pool files (//quarc:poolfile).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock reads, global math/rand, map iteration and stray goroutines in simulation and canonical-key code",
	Run:  runDeterminism,
}

func runDeterminism(p *Pass) {
	var scoped []string
	ok := false
	for suffix, fs := range determinismScope {
		if p.PkgPath == suffix || strings.HasSuffix(p.PkgPath, "/"+suffix) {
			scoped, ok = fs, true
			break
		}
	}
	if !ok {
		return
	}
	for _, f := range p.Files {
		base := filepath.Base(p.Fset.Position(f.Pos()).Filename)
		if scoped != nil && !contains(scoped, base) {
			continue
		}
		poolFile := fileHasDirective(f, "poolfile")
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ImportSpec:
				switch importString(n) {
				case "math/rand", "math/rand/v2":
					p.Reportf(n.Pos(), "import of %s draws from a global, run-order-dependent source; use internal/rng's seeded streams", importString(n))
				}
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if pn, ok := pkgNameOf(p.Info, sel.X); ok && pn.Imported().Path() == "time" && wallClockFuncs[sel.Sel.Name] {
						p.Reportf(n.Pos(), "time.%s reads the wall clock; simulation output must be a pure function of (config, seed)", sel.Sel.Name)
					}
				}
			case *ast.RangeStmt:
				if t := p.Info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						p.Reportf(n.Pos(), "map iteration order is randomized; range over sorted keys, or annotate `//quarc:allow determinism: <why order cannot matter>`")
					}
				}
			case *ast.GoStmt:
				if !poolFile {
					p.Reportf(n.Pos(), "goroutine spawned outside a blessed pool file; concurrency in simulation code lives in //quarc:poolfile worker pools with coordinator-section discipline")
				}
			}
			return true
		})
	}
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

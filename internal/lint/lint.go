// Package lint is quarcvet: a repo-specific static-analysis suite that
// enforces the invariants the compiler cannot see but the paper's results
// depend on — bit-identical simulation output at any worker count, canonical
// cache keys that exclude execution-only knobs, an allocation-free fabric
// hot path, and the parallel stepper's coordinator-section race discipline.
//
// The suite is built directly on go/ast + go/types (the module is
// stdlib-only by policy, so golang.org/x/tools/go/analysis is off the
// table), but mirrors its shape: small single-purpose Analyzers over a
// typed Pass, unit-tested against `// want` fixtures under testdata, and a
// cmd/quarcvet multichecker that runs the whole suite over `./...`.
//
// # Annotation vocabulary
//
// Analyzers are directed by `//quarc:` comments in the source they check:
//
//	//quarc:hotpath
//	    (func doc) The function is on the fabric hot path and must stay
//	    allocation-free in steady state: no fmt calls, closures,
//	    escaping composite literals, interface conversions, defers, or
//	    appends that grow a slice other than the one appended to.
//
//	//quarc:coordinator
//	    (func doc) The function mutates fabric-shared state and may only
//	    run single-threaded. Inside parallel.go, calls to coordinator
//	    functions and writes to shared fields are legal only inside a
//	    `if w == 0` worker-0 section or another coordinator function.
//
//	//quarc:poolfile <reason>
//	    (file comment) The file is a blessed worker-pool implementation;
//	    `go` statements in it are exempt from the determinism analyzer.
//
//	//quarc:wirekey <KeyFunc>
//	    (struct doc) The struct is a wire request schema whose canonical
//	    cache key is computed by <KeyFunc> in the same package; every
//	    exported field must appear in the key struct or be marked
//	    execution-only.
//
//	//quarc:execonly
//	    (field doc or line comment) The wire field is an execution-only
//	    knob (changes wall-clock, never output) and must NOT appear in
//	    the canonical key.
//
//	//quarc:keyfield <Name>
//	    (field doc or line comment) The wire field appears in the key
//	    struct under a different field name.
//
//	//quarc:allow <analyzer>: <reason>
//	    (same line as the diagnostic, or the line directly above)
//	    Suppress one analyzer's diagnostics on that line. The reason is
//	    mandatory; an allow without one is itself a diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one check of the suite.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	PkgPath  string
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos. Suppression (`//quarc:allow`) is
// applied by the driver, not here.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// FileOf returns the *ast.File containing pos.
func (p *Pass) FileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// directive is one parsed //quarc:<verb> <arg> comment.
type directive struct {
	verb string // "hotpath", "coordinator", "allow", ...
	arg  string // remainder after the verb, trimmed
	pos  token.Pos
}

// parseDirectives extracts //quarc: directives from a comment group.
func parseDirectives(groups ...*ast.CommentGroup) []directive {
	var out []directive
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text, ok := strings.CutPrefix(c.Text, "//quarc:")
			if !ok {
				continue
			}
			verb, arg, _ := strings.Cut(text, " ")
			out = append(out, directive{verb: verb, arg: strings.TrimSpace(arg), pos: c.Pos()})
		}
	}
	return out
}

// hasDirective reports whether any of the comment groups carries the verb.
func hasDirective(verb string, groups ...*ast.CommentGroup) bool {
	for _, d := range parseDirectives(groups...) {
		if d.verb == verb {
			return true
		}
	}
	return false
}

// directiveArg returns the argument of the first matching directive.
func directiveArg(verb string, groups ...*ast.CommentGroup) (string, bool) {
	for _, d := range parseDirectives(groups...) {
		if d.verb == verb {
			return d.arg, true
		}
	}
	return "", false
}

// fileHasDirective reports whether any comment anywhere in the file carries
// the verb (used for file-scoped pragmas like //quarc:poolfile).
func fileHasDirective(f *ast.File, verb string) bool {
	for _, g := range f.Comments {
		if hasDirective(verb, g) {
			return true
		}
	}
	return false
}

// allowSite is one //quarc:allow comment.
type allowSite struct {
	analyzer string
	reason   string
	pos      token.Pos
}

// allowsByLine maps file -> line -> allows in force on that line. An allow
// comment covers its own line and the line below it.
func allowsByLine(fset *token.FileSet, files []*ast.File) map[string]map[int][]allowSite {
	out := map[string]map[int][]allowSite{}
	for _, f := range files {
		for _, g := range f.Comments {
			for _, d := range parseDirectives(g) {
				if d.verb != "allow" {
					continue
				}
				name, reason, _ := strings.Cut(d.arg, ":")
				site := allowSite{
					analyzer: strings.TrimSpace(name),
					reason:   strings.TrimSpace(reason),
					pos:      d.pos,
				}
				p := fset.Position(d.pos)
				m := out[p.Filename]
				if m == nil {
					m = map[int][]allowSite{}
					out[p.Filename] = m
				}
				m[p.Line] = append(m[p.Line], site)
				m[p.Line+1] = append(m[p.Line+1], site)
			}
		}
	}
	return out
}

// RunAnalyzers runs the analyzers over one loaded package and returns the
// surviving diagnostics: `//quarc:allow <analyzer>: <reason>` comments on
// the diagnostic's line (or the line above) suppress it, and every allow
// missing its justification is reported as a diagnostic of its own.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			PkgPath:  pkg.PkgPath,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &raw,
		}
		a.Run(pass)
	}

	allows := allowsByLine(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, d := range raw {
		suppressed := false
		for _, site := range allows[d.Pos.Filename][d.Pos.Line] {
			if site.analyzer == d.Analyzer && site.reason != "" {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	// Malformed allows are findings themselves: a suppression with no
	// justification defeats the point of the annotation vocabulary.
	seen := map[token.Pos]bool{}
	for _, m := range allows {
		for _, sites := range m {
			for _, site := range sites {
				if site.reason != "" || seen[site.pos] {
					continue
				}
				seen[site.pos] = true
				out = append(out, Diagnostic{
					Analyzer: "allow",
					Pos:      pkg.Fset.Position(site.pos),
					Message:  "//quarc:allow needs a justification: `//quarc:allow <analyzer>: <reason>`",
				})
			}
		}
	}
	sortDiagnostics(out)
	return out
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// pkgNameOf resolves a selector's base identifier to the imported package it
// names, if any.
func pkgNameOf(info *types.Info, x ast.Expr) (*types.PkgName, bool) {
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return pn, ok
}

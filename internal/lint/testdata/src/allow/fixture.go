// Fixture for the //quarc:allow suppression mechanism: a justified allow
// silences the diagnostic on its line (and the line below); an allow with
// no reason suppresses nothing and is itself reported. Checked directly by
// TestAllowSuppression rather than through want comments (the reason-less
// allow's diagnostic lands on the comment's own line).
package allow

import "fmt"

//quarc:hotpath
func suppressed() {
	//quarc:allow hotpath: cold error path, runs once at shutdown
	fmt.Println("justified suppression")
}

//quarc:hotpath
func unjustified() {
	//quarc:allow hotpath:
	fmt.Println("no reason given")
}

//quarc:hotpath
func wrongAnalyzer() {
	//quarc:allow determinism: an allow only silences the analyzer it names
	fmt.Println("still reported")
}

// Fixture for the coordsection analyzer: the file is named parallel.go, so
// every non-coordinator function in it is held to the worker-0 discipline.
package coordsection

type pool struct {
	halt   bool
	n      int
	shards []int
}

// apply mutates shared state on behalf of the coordinator.
//
//quarc:coordinator
func apply(p *pool) {
	p.n++ // coordinator functions are exempt
}

func cycles(p *pool, w int) {
	p.halt = true   // want "write to shared state p.halt outside a worker-0 section"
	p.n++           // want "write to shared state p.n outside a worker-0 section"
	apply(p)        // want "call to coordinator function apply outside a worker-0 section"
	p.shards[w] = 1 // sharded per worker: index expressions are exempt
	if w == 0 {
		p.halt = true // guarded: legal
		apply(p)      // guarded: legal
	}
	if w == 1 {
		p.halt = false // want "write to shared state p.halt outside a worker-0 section"
	}
	if w == 0 {
		go func() {
			p.halt = true // want "write to shared state p.halt outside a worker-0 section"
		}()
	}
}

// Fixture for the hotpath analyzer.
package hotpath

import "fmt"

type point struct{ x, y int }

func cleanup() {}

//quarc:hotpath
func bad(buf []int, n int) []int {
	fmt.Println(n) // want "fmt.Println in hot path formats through interfaces"
	f := func() {} // want "closure literal in hot path"
	_ = f
	p := &point{} // want "&composite literal in hot path escapes to the heap"
	_ = p
	s := []int{n} // want "slice/map composite literal allocates in hot path"
	_ = s
	defer cleanup()         // want "defer in hot path"
	go cleanup()            // want "goroutine spawn in hot path"
	_ = any(n)              // want "conversion to interface type .* boxes the value"
	grown := append(buf, n) // want "append grows a slice .buf. other than the one assigned back .grown."
	_ = grown
	return buf
}

//quarc:hotpath
func good(buf []int, n int, v point) []int {
	buf = append(buf, n) // self-append reuses the backing array
	_ = point{x: n}      // value struct literal stays on the stack
	_ = v.x
	return buf
}

// Unannotated functions may do anything.
func cold() {
	fmt.Println("cold path")
}

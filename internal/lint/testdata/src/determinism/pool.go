// A blessed pool file: its goroutine spawns are exempt.
//
//quarc:poolfile fixture pool; determinism proven elsewhere
package network

func pooled() {
	done := make(chan struct{})
	go func() { // no diagnostic: the file is a //quarc:poolfile
		close(done)
	}()
	<-done
}

// Fixture for the determinism analyzer, type-checked while posing as
// quarc/internal/network so the path scope applies.
package network

import (
	"math/rand" // want "import of math/rand draws from a global, run-order-dependent source"
	"time"
)

var _ = rand.Int

func clock() int64 {
	start := time.Now() // want "time.Now reads the wall clock"
	return start.UnixNano()
}

func elapsed(d time.Duration) time.Duration {
	// Duration arithmetic is legal: only sampling the clock is flagged.
	return d + time.Millisecond
}

func iterate(m map[int]int, s []int) int {
	total := 0
	for _, v := range m { // want "map iteration order is randomized"
		total += v
	}
	for _, v := range s { // slice ranges are deterministic
		total += v
	}
	return total
}

func spawn() {
	go clock() // want "goroutine spawned outside a blessed pool file"
}

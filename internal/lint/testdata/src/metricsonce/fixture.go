// Fixture for the metricsonce analyzer.
package metricsonce

import "io"

func g(name string, v float64) { _, _ = name, v }
func c(name string, v uint64)  { _, _ = name, v }

func writeProm(w io.Writer) {
	_ = w
	g("quarcd_jobs_running", 1)
	c("quarcd_jobs_done_total", 2)
	g("jobs_running", 1)           // want "violates the quarcd_.* naming convention"
	c("quarcd_cache_hits", 3)      // want "must carry the _total suffix"
	g("quarcd_cache_total", 4)     // want "carries the counter suffix _total"
	c("quarcd_jobs_done_total", 5) // want "registered more than once"
}

// Helpers named g/c outside writeProm are not the exposition writer.
func elsewhere() {
	g("anything_goes", 1)
}

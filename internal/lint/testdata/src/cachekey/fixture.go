// Fixture for the cachekeypurity analyzer. BadKey replays the
// step_workers near-miss: the wire marks StepWorkers execution-only, but
// the key struct hashes it (the Config field lost its `json:"-"` tag).
package cachekey

func hashKey(v any) string { _ = v; return "" }

// Config stands in for experiments.Config with the protective `json:"-"`
// tag missing from StepWorkers.
type Config struct {
	N           int
	StepWorkers int
	hidden      int // unexported: never hashed by encoding/json
}

// Request is the wire schema checked against BadKey.
//
//quarc:wirekey BadKey
type Request struct {
	N int
	//quarc:execonly
	StepWorkers int // want "execution-only field StepWorkers leaks into the canonical key hashed by BadKey"
	Extra       int // want "wire field Extra is absent from the canonical key hashed by BadKey"
	//quarc:keyfield Renamed
	Alias int // matches the key through its //quarc:keyfield alias
	Opts  Nested
}

// Nested is flattened into the check with its own field directives.
type Nested struct {
	Depth int
	//quarc:execonly
	Workers int
}

func BadKey(cfg Config) string {
	return hashKey(struct {
		Kind    string
		Cfg     Config
		Renamed int
		Depth   int
	}{"bad", cfg, 0, 0})
}

package lint

import (
	"go/ast"
	"go/types"
)

// HotPath checks functions annotated `//quarc:hotpath` — the fabric's
// per-cycle Step/arbitrate/commit/feed chain, PacketQueue, Assembler and
// the tracker — for the constructs that break the 0 allocs/op steady-state
// contract (guarded at runtime by TestFabricStepSteadyStateAllocs and the
// CI benchmark gate; enforced here at review time):
//
//   - fmt calls (every verb formats through interfaces and allocates);
//   - closure literals (captured variables escape to the heap);
//   - &T{...}, slice and map composite literals (heap allocations);
//   - explicit interface conversions (boxing allocates);
//   - defer (scheduling overhead on a nanosecond-scale path);
//   - append that grows a slice other than the one being assigned back
//     (`x = append(x, ...)` reuses x's backing array in steady state;
//     `y = append(x, ...)` silently copies and grows without bound).
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "//quarc:hotpath functions must avoid fmt, closures, escaping composite literals, interface conversions, defers and unbounded appends",
	Run:  runHotPath,
}

func runHotPath(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective("hotpath", fd.Doc) {
				continue
			}
			checkHotFunc(p, fd)
		}
	}
}

func checkHotFunc(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(p, n)
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "closure literal in hot path: captured variables escape to the heap")
			return false
		case *ast.UnaryExpr:
			if cl, ok := n.X.(*ast.CompositeLit); ok {
				p.Reportf(cl.Pos(), "&composite literal in hot path escapes to the heap; reuse a scratch value instead")
				return false
			}
		case *ast.CompositeLit:
			if t := p.Info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					p.Reportf(n.Pos(), "slice/map composite literal allocates in hot path; hoist it or reuse a scratch buffer")
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) {
					checkHotAppend(p, rhs, n.Lhs[i])
				}
			}
		case *ast.DeferStmt:
			p.Reportf(n.Pos(), "defer in hot path adds per-call scheduling overhead")
		case *ast.GoStmt:
			p.Reportf(n.Pos(), "goroutine spawn in hot path")
		}
		return true
	})
}

func checkHotCall(p *Pass, call *ast.CallExpr) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pn, ok := pkgNameOf(p.Info, sel.X); ok && pn.Imported().Path() == "fmt" {
			p.Reportf(call.Pos(), "fmt.%s in hot path formats through interfaces and allocates", sel.Sel.Name)
			return
		}
	}
	// Explicit conversion to an interface type boxes the operand.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
			if arg := p.Info.TypeOf(call.Args[0]); arg != nil {
				if _, already := arg.Underlying().(*types.Interface); !already {
					p.Reportf(call.Pos(), "conversion to interface type %s in hot path boxes the value on the heap", tv.Type.String())
				}
			}
		}
	}
}

// checkHotAppend flags `lhs = append(first, ...)` where lhs is not the same
// expression as first: appending into a fresh slice grows a new backing
// array every time, while the self-append idiom amortizes to zero
// steady-state allocations once the buffer has warmed up.
func checkHotAppend(p *Pass, rhs ast.Expr, lhs ast.Expr) {
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return
	}
	if _, ok := p.Info.Uses[id].(*types.Builtin); !ok {
		return
	}
	if types.ExprString(lhs) == types.ExprString(call.Args[0]) {
		return
	}
	p.Reportf(call.Pos(), "append grows a slice (%s) other than the one assigned back (%s); hot-path appends must reuse their own backing array",
		types.ExprString(call.Args[0]), types.ExprString(lhs))
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// CoordSection turns the parallel stepper's race discipline into a checked
// rule. Inside parallel.go — the intra-cycle worker pool — all mutation of
// fabric-shared state must happen single-threaded: either inside a worker-0
// coordinator section (`if w == 0 { ... }` on the worker-id parameter) or
// in a function annotated `//quarc:coordinator` (which must itself only be
// called from coordinator context within parallel.go).
//
// Checked constructs, in any parallel.go function not annotated
// coordinator:
//
//   - assignments / ++ / -- through a pointer field chain (`p.halt = true`,
//     `f.cycle++`): shared by every worker, so they need the guard. Writes
//     through an index expression (`f.moves[node] = ...`) are exempt — the
//     pool shards node-indexed state so each worker owns its range;
//   - calls to //quarc:coordinator functions (applyMoves, applyWoken,
//     applySleep, latch, ...), wherever in the package they are declared.
var CoordSection = &Analyzer{
	Name: "coordsection",
	Doc:  "in parallel.go, fabric-shared state is only written inside worker-0 coordinator sections or //quarc:coordinator functions",
	Run:  runCoordSection,
}

func runCoordSection(p *Pass) {
	coordinators := map[types.Object]bool{}
	hasParallel := false
	for _, f := range p.Files {
		if filepath.Base(p.Fset.Position(f.Pos()).Filename) == "parallel.go" {
			hasParallel = true
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && hasDirective("coordinator", fd.Doc) {
				if obj := p.Info.Defs[fd.Name]; obj != nil {
					coordinators[obj] = true
				}
			}
		}
	}
	if !hasParallel {
		return
	}
	for _, f := range p.Files {
		if filepath.Base(p.Fset.Position(f.Pos()).Filename) != "parallel.go" {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || hasDirective("coordinator", fd.Doc) {
				continue
			}
			checkWorkerFunc(p, fd, coordinators)
		}
	}
}

func checkWorkerFunc(p *Pass, fd *ast.FuncDecl, coordinators map[types.Object]bool) {
	params := map[types.Object]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	var walk func(n ast.Node, guarded bool)
	inspect := func(n ast.Node, guarded bool) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if n.Init != nil {
				walk(n.Init, guarded)
			}
			walk(n.Cond, guarded)
			walk(n.Body, guarded || isWorkerZeroCond(p, n.Cond, params))
			if n.Else != nil {
				walk(n.Else, guarded)
			}
			return false
		case *ast.AssignStmt:
			if !guarded {
				for _, lhs := range n.Lhs {
					reportSharedWrite(p, lhs)
				}
			}
		case *ast.IncDecStmt:
			if !guarded {
				reportSharedWrite(p, n.X)
			}
		case *ast.CallExpr:
			if guarded {
				break
			}
			var callee types.Object
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				callee = p.Info.Uses[fun]
			case *ast.SelectorExpr:
				callee = p.Info.Uses[fun.Sel]
			}
			if coordinators[callee] {
				p.Reportf(n.Pos(), "call to coordinator function %s outside a worker-0 section: it mutates fabric-shared state and must run single-threaded", types.ExprString(n.Fun))
			}
		case *ast.FuncLit:
			// A nested goroutine body gets no credit from an enclosing
			// guard: the closure may run on any worker.
			walk(n.Body, false)
			return false
		}
		return true
	}
	walk = func(n ast.Node, guarded bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil {
				return false
			}
			return inspect(m, guarded)
		})
	}
	walk(fd.Body, false)
}

// isWorkerZeroCond matches `w == 0` / `0 == w` where w is a parameter of
// the enclosing function — the pool's worker-id convention.
func isWorkerZeroCond(p *Pass, cond ast.Expr, params map[types.Object]bool) bool {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return false
	}
	isZero := func(e ast.Expr) bool {
		bl, ok := e.(*ast.BasicLit)
		return ok && bl.Value == "0"
	}
	isParam := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && params[p.Info.Uses[id]]
	}
	return (isZero(be.X) && isParam(be.Y)) || (isZero(be.Y) && isParam(be.X))
}

// reportSharedWrite flags a write whose target is a pure pointer field
// chain (x.a.b where x has pointer type). Index expressions anywhere in the
// chain exempt the write: node-indexed state is sharded per worker.
func reportSharedWrite(p *Pass, lhs ast.Expr) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	root := sel.X
	for {
		if inner, ok := root.(*ast.SelectorExpr); ok {
			root = inner.X
			continue
		}
		break
	}
	id, ok := root.(*ast.Ident)
	if !ok {
		return
	}
	if t := p.Info.TypeOf(id); t != nil {
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			p.Reportf(lhs.Pos(), "write to shared state %s outside a worker-0 section; move it into `if w == 0 { ... }` or a //quarc:coordinator function", types.ExprString(lhs))
		}
	}
}

package lint

import (
	"go/ast"
	"regexp"
	"strconv"
	"strings"
)

// metricName matches the daemon's metric-naming convention.
var metricName = regexp.MustCompile(`^quarcd_[a-z][a-z0-9_]*$`)

// MetricsOnce checks the Prometheus exposition writer (the writeProm
// function, whose local g/c helpers emit one gauge or counter each):
//
//   - every metric name matches the `quarcd_[a-z0-9_]+` convention;
//   - counters (registered via c) end in `_total`, gauges (via g) do not —
//     the Prometheus naming rules scrapers rely on;
//   - no metric name is registered twice: a duplicate emission corrupts
//     the exposition and usually means a copy-pasted line shadowing the
//     real counter.
var MetricsOnce = &Analyzer{
	Name: "metricsonce",
	Doc:  "metrics are registered exactly once, named quarcd_*, with counter/gauge suffixes matching their type",
	Run:  runMetricsOnce,
}

func runMetricsOnce(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.Name != "writeProm" {
				continue
			}
			checkWriteProm(p, fd)
		}
	}
}

func checkWriteProm(p *Pass, fd *ast.FuncDecl) {
	seen := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || (id.Name != "g" && id.Name != "c") {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok {
			return true
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		if !metricName.MatchString(name) {
			p.Reportf(lit.Pos(), "metric %q violates the quarcd_[a-z0-9_]+ naming convention", name)
		}
		isTotal := strings.HasSuffix(name, "_total")
		switch {
		case id.Name == "c" && !isTotal:
			p.Reportf(lit.Pos(), "counter %q must carry the _total suffix", name)
		case id.Name == "g" && isTotal:
			p.Reportf(lit.Pos(), "gauge %q carries the counter suffix _total; rename it or register it as a counter", name)
		}
		if seen[name] {
			p.Reportf(lit.Pos(), "metric %q registered more than once", name)
		}
		seen[name] = true
		return true
	})
}

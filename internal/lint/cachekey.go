package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// CacheKeyPurity cross-checks every wire request struct annotated
// `//quarc:wirekey <KeyFunc>` against the canonical-key struct its key
// function hashes:
//
//   - every exported wire field must appear (by its own name, or by its
//     `//quarc:keyfield <Name>` alias — useful when the key renames a
//     field, e.g. a Depth knob folded into a normalised Depths axis)
//     somewhere in the flattened key struct, OR be marked
//     `//quarc:execonly`;
//   - every `//quarc:execonly` field must NOT appear in the key.
//
// This is the static form of the golden-key tests: adding a request knob
// without deciding its cache-key fate, or leaking an execution-only knob
// like step_workers into the key (the PR 8 near-miss), fails the build
// instead of waiting for a runtime cache collision. Key-struct fields
// tagged `json:"-"` are excluded from the hash by encoding/json, so the
// analyzer excludes them too — removing such a tag is exactly how a leak
// happens, and is exactly what gets caught.
var CacheKeyPurity = &Analyzer{
	Name: "cachekeypurity",
	Doc:  "every wire request field is either hashed into the canonical cache key or explicitly execution-only",
	Run:  runCacheKeyPurity,
}

func runCacheKeyPurity(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				keyFn, ok := directiveArg("wirekey", ts.Doc, gd.Doc)
				if !ok {
					continue
				}
				checkWireStruct(p, ts, keyFn)
			}
		}
	}
}

func checkWireStruct(p *Pass, ts *ast.TypeSpec, keyFn string) {
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		p.Reportf(ts.Pos(), "//quarc:wirekey on non-struct type %s", ts.Name.Name)
		return
	}
	keyNames, ok := keyStructNames(p, keyFn)
	if !ok {
		p.Reportf(ts.Pos(), "//quarc:wirekey %s: no hashKey(struct{...}{...}) call found in a function of that name", keyFn)
		return
	}
	checkWireFields(p, st, keyFn, keyNames)
}

// checkWireFields walks the wire struct's exported fields, recursing into
// nested wire structs declared in the same package (e.g. PanelRequest.Opts
// -> SweepOpts), and reports fields with an undeclared cache-key fate.
func checkWireFields(p *Pass, st *ast.StructType, keyFn string, keyNames map[string]bool) {
	for _, field := range st.Fields.List {
		execOnly := hasDirective("execonly", field.Doc, field.Comment)
		alias, hasAlias := directiveArg("keyfield", field.Doc, field.Comment)
		for _, name := range field.Names {
			if !name.IsExported() {
				continue
			}
			inKey := keyNames[name.Name] || (hasAlias && keyNames[alias])
			switch {
			case execOnly && inKey:
				p.Reportf(name.Pos(), "execution-only field %s leaks into the canonical key hashed by %s: it would split the cache by a knob that cannot change the result", name.Name, keyFn)
			case !execOnly && !inKey:
				if nested := localStructDecl(p, field.Type); nested != nil {
					checkWireFields(p, nested, keyFn, keyNames)
					continue
				}
				p.Reportf(name.Pos(), "wire field %s is absent from the canonical key hashed by %s: hash it, or mark it `//quarc:execonly` if it can never change the result", name.Name, keyFn)
			}
		}
	}
}

// localStructDecl resolves a field type to a struct type declared in the
// package under analysis, so nested wire structs can be flattened with
// their own //quarc: field directives intact.
func localStructDecl(p *Pass, expr ast.Expr) *ast.StructType {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	obj, ok := p.Info.Uses[id].(*types.TypeName)
	if !ok || obj.Pkg() != p.Pkg {
		return nil
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.Name == id.Name {
					if st, ok := ts.Type.(*ast.StructType); ok {
						return st
					}
				}
			}
		}
	}
	return nil
}

// keyStructNames finds `func <keyFn>` in the package, locates the struct
// literal it passes to hashKey, and returns the flattened set of hashed
// field names: `json:"-"` fields are dropped (encoding/json drops them from
// the hash), `json:"name"` renames apply, and struct-typed fields from this
// module are flattened recursively (e.g. experiments.Config inside RunKey).
func keyStructNames(p *Pass, keyFn string) (map[string]bool, bool) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != keyFn || fd.Recv != nil {
				continue
			}
			var lit *ast.CompositeLit
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || lit != nil {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "hashKey" && len(call.Args) > 0 {
					if cl, ok := call.Args[0].(*ast.CompositeLit); ok {
						lit = cl
					}
				}
				return true
			})
			if lit == nil {
				return nil, false
			}
			t := p.Info.TypeOf(lit)
			if t == nil {
				return nil, false
			}
			st, ok := t.Underlying().(*types.Struct)
			if !ok {
				return nil, false
			}
			names := map[string]bool{}
			flattenKeyStruct(p, st, names)
			return names, true
		}
	}
	return nil, false
}

func flattenKeyStruct(p *Pass, st *types.Struct, names map[string]bool) {
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		if !field.Exported() {
			// encoding/json never hashes unexported fields.
			continue
		}
		jsonName, _, _ := strings.Cut(reflect.StructTag(st.Tag(i)).Get("json"), ",")
		if jsonName == "-" {
			continue
		}
		name := field.Name()
		if jsonName != "" {
			names[jsonName] = true
		}
		names[name] = true
		if nested, ok := moduleStruct(p, field.Type()); ok {
			flattenKeyStruct(p, nested, names)
		}
	}
}

// moduleStruct reports whether t is a struct type declared inside this
// module (or the package under analysis), i.e. one whose fields are part of
// the canonical encoding rather than an opaque stdlib value.
func moduleStruct(p *Pass, t types.Type) (*types.Struct, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil, false
	}
	if pkg != p.Pkg && pkg.Path() != "quarc" && !strings.HasPrefix(pkg.Path(), "quarc/") {
		return nil, false
	}
	st, ok := named.Underlying().(*types.Struct)
	return st, ok
}

package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"quarc/internal/analytic"
	"quarc/internal/faultinject"
	"quarc/internal/model"
	"quarc/internal/network"
)

// panictest is a registry model whose builder always panics — the class of
// third-party bug per-job panic isolation exists for. Registered for this
// test binary only.
func init() {
	model.Register(model.Model{
		Name:        "panictest",
		Description: "test-only model that panics at build time",
		ExampleN:    8,
		Build: func(model.BuildConfig) (*network.Fabric, []model.Node, error) {
			panic("injected model bug")
		},
	})
}

// An analyzable run that outlives its deadline_ms is answered with the
// closed-form analytic estimate flagged degraded — and that estimate is
// never cached, so an identical later request without pressure still gets
// the exact simulation.
func TestDeadlineExpiredRunAnswersDegraded(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})
	req := slowRun() // uniform pattern: inside the analytic models' domain
	req.Measure = 400_000_000
	req.DeadlineMs = 400
	job := submitWait(t, ts, "/v1/runs", req)
	if job.State != StateDone || !job.Degraded {
		t.Fatalf("state=%s degraded=%v (%s), want done degraded", job.State, job.Degraded, job.Error)
	}
	var rr RunResult
	if err := json.Unmarshal(job.Result, &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Degraded || rr.ErrorBand != analytic.ErrorBand {
		t.Fatalf("payload degraded=%v band=%v, want true/%v", rr.Degraded, rr.ErrorBand, analytic.ErrorBand)
	}
	if !strings.Contains(rr.DegradedReason, "deadline") {
		t.Fatalf("degraded reason %q does not name the deadline", rr.DegradedReason)
	}
	if rr.Result.Topo != "quarc" || rr.Result.N != req.N {
		t.Fatalf("degraded payload misdescribes the request: %+v", rr.Result)
	}
	if n := svc.Snapshot().DegradedAnswers; n != 1 {
		t.Fatalf("degraded answers = %d, want 1", n)
	}

	// The degraded answer must not have poisoned either cache tier: the
	// identical resubmission simulates again (and degrades again), it is not
	// served as a cached exact result.
	again := submitWait(t, ts, "/v1/runs", req)
	if !again.Degraded || again.Cached {
		t.Fatalf("resubmission degraded=%v cached=%v, want degraded uncached", again.Degraded, again.Cached)
	}
	if n := svc.Snapshot().DegradedAnswers; n != 2 {
		t.Fatalf("degraded answers after resubmit = %d, want 2", n)
	}

	// A negative deadline is a validation error, not a job.
	req.DeadlineMs = -5
	if resp, body := postJSON(t, ts.URL+"/v1/runs", req); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("deadline_ms=-5: %s: %s", resp.Status, body)
	}
}

// Panels have no analytic fallback: an expired deadline fails the job with
// the reason, it does not invent a degraded answer.
func TestDeadlineExpiredPanelFails(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	p := tinyPanel()
	p.Opts.Measure = 400_000_000
	p.DeadlineMs = 300
	_, data := postJSON(t, ts.URL+"/v1/panels", p)
	var job JobJSON
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, ts, job.ID, StateFailed, 30*time.Second)
	if !strings.Contains(failed.Error, "deadline") {
		t.Fatalf("panel failure %q does not name the deadline", failed.Error)
	}
}

// A run outside the analytic models' validated domain (here: hotspot
// traffic) also fails on deadline expiry instead of answering with an
// unquantified guess.
func TestDeadlineExpiredUnanalyzableRunFails(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})
	req := slowRun()
	req.Measure = 400_000_000
	req.Pattern = "hotspot"
	req.HotspotBias = 0.5
	req.DeadlineMs = 300
	_, data := postJSON(t, ts.URL+"/v1/runs", req)
	var job JobJSON
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, ts, job.ID, StateFailed, 30*time.Second)
	if !strings.Contains(failed.Error, "deadline") {
		t.Fatalf("failure %q does not name the deadline", failed.Error)
	}
	if n := svc.Snapshot().DegradedAnswers; n != 0 {
		t.Fatalf("unanalyzable run produced %d degraded answers, want 0", n)
	}
}

// Disk-store faults must never surface as 5xx: the breaker opens after the
// configured consecutive failures, the server degrades to memory-cache-only,
// and once the fault episode ends a half-open probe closes the breaker and
// disk persistence resumes.
func TestStoreFaultsOpenBreakerThenRecover(t *testing.T) {
	dir := t.TempDir()
	plan := faultinject.New(faultinject.Spec{Seed: 11, ErrRate: 1, MaxOps: 30})
	svc, ts := newTestServer(t, Config{
		Workers: 1, DataDir: dir, BreakerThreshold: 2, Chaos: plan,
	})

	// Every request answers 200 while the disk store fails every operation.
	req := quickRun()
	for seed := uint64(60); seed < 64; seed++ {
		req.Seed = seed
		job := submitWait(t, ts, "/v1/runs", req)
		if job.State != StateDone || job.Degraded {
			t.Fatalf("seed %d under store faults: state=%s degraded=%v (%s)",
				seed, job.State, job.Degraded, job.Error)
		}
	}
	snap := svc.Snapshot()
	if snap.StoreFaults < 2 {
		t.Fatalf("store faults = %d, want >= 2 (plan injected %d)", snap.StoreFaults, plan.Stats().Injected())
	}
	if snap.BreakerOpens == 0 {
		t.Fatal("breaker never opened under a 100% store fault rate")
	}
	// Memory cache still serves the whole answer path.
	req.Seed = 60
	if job := submitWait(t, ts, "/v1/runs", req); !job.Cached {
		t.Fatal("memory cache missed while the breaker guarded the disk")
	}

	// The plan quiets after MaxOps: fresh submissions admit a half-open
	// probe once the backoff elapses, the probe succeeds, and entries start
	// landing on disk again.
	deadline := time.Now().Add(20 * time.Second)
	seed := uint64(100)
	for {
		req.Seed = seed
		seed++
		if job := submitWait(t, ts, "/v1/runs", req); job.State != StateDone {
			t.Fatalf("post-chaos run: %s (%s)", job.State, job.Error)
		}
		s := svc.Snapshot()
		if s.BreakerState == BreakerClosed && s.StoreEntries > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered: state=%v entries=%d faults=%d",
				s.BreakerState, s.StoreEntries, s.StoreFaults)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// The watchdog cancels a running job that stops making point progress,
// failing it with a diagnosis instead of leaving it wedged forever.
func TestWatchdogCancelsStalledJob(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, WatchdogStall: 400 * time.Millisecond})
	req := slowRun()
	req.Measure = 400_000_000 // one point, hours of simulation: no progress events
	_, data := postJSON(t, ts.URL+"/v1/runs", req)
	var job JobJSON
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, ts, job.ID, StateFailed, 30*time.Second)
	if !strings.Contains(failed.Error, "watchdog") || !strings.Contains(failed.Error, "no point progress") {
		t.Fatalf("failure %q is not a watchdog diagnosis", failed.Error)
	}
	if n := svc.Snapshot().WatchdogCancels; n != 1 {
		t.Fatalf("watchdog cancels = %d, want 1", n)
	}
	// The executor is free again: normal work proceeds.
	if ok := submitWait(t, ts, "/v1/runs", quickRun()); ok.State != StateDone {
		t.Fatalf("post-watchdog run: %s (%s)", ok.State, ok.Error)
	}
}

// A panic inside a job's simulation fails that job with a diagnosis; the
// daemon and every other job keep serving. Covers both the single-replicate
// path and the sweep worker pool.
func TestPanicFailsJobNotDaemon(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})
	boom := RunRequest{Topo: "panictest", N: 8, MsgLen: 4, Rate: 0.002,
		Warmup: 100, Measure: 300, Drain: 3000, Seed: 1}
	_, data := postJSON(t, ts.URL+"/v1/runs", boom)
	var job JobJSON
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, ts, job.ID, StateFailed, 30*time.Second)
	if !strings.Contains(failed.Error, "panicked") {
		t.Fatalf("failure %q does not diagnose the panic", failed.Error)
	}

	boom.Seed, boom.Replicates = 2, 3 // sweep worker-pool path
	_, data = postJSON(t, ts.URL+"/v1/runs", boom)
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatal(err)
	}
	failed = waitState(t, ts, job.ID, StateFailed, 30*time.Second)
	if !strings.Contains(failed.Error, "panicked") {
		t.Fatalf("replicated failure %q does not diagnose the panic", failed.Error)
	}

	// The daemon survived both panics.
	if ok := submitWait(t, ts, "/v1/runs", quickRun()); ok.State != StateDone {
		t.Fatalf("post-panic run: %s (%s)", ok.State, ok.Error)
	}
	if n := svc.Snapshot().JobsFailed; n != 2 {
		t.Fatalf("jobs failed = %d, want 2", n)
	}
}

// The seeded chaos end-to-end schedule: a daemon serves correctly while a
// deterministic fault plan batters its durability layer, then a clean
// restart over the same data directory serves every previous answer
// byte-identically — whether from the entries that survived on disk or by
// deterministic re-simulation of the ones that did not.
func TestChaosRestartServesByteIdenticalResults(t *testing.T) {
	dir := t.TempDir()
	plan := faultinject.New(faultinject.Spec{Seed: 0xE2E, ErrRate: 0.25, TornRate: 0.25, MaxOps: 200})
	svc1, ts1 := newTestServer(t, Config{Workers: 1, DataDir: dir, BreakerThreshold: 3, Chaos: plan})

	req := quickRun()
	results := make(map[uint64][]byte)
	for seed := uint64(90); seed < 94; seed++ {
		req.Seed = seed
		job := submitWait(t, ts1, "/v1/runs", req)
		if job.State != StateDone || job.Degraded || len(job.Result) == 0 {
			t.Fatalf("seed %d under chaos: state=%s degraded=%v (%s)",
				seed, job.State, job.Degraded, job.Error)
		}
		results[seed] = job.Result
	}
	if plan.Stats().Injected() == 0 {
		t.Fatal("chaos plan injected nothing: the restart proves nothing")
	}
	if svc1.Snapshot().JobsFailed != 0 {
		t.Fatal("store faults failed jobs; they must only cost durability")
	}
	ts1.Close()
	svc1.Close()

	// Clean restart: no injection, same directory.
	_, ts2 := newTestServer(t, Config{Workers: 1, DataDir: dir})
	for seed := uint64(90); seed < 94; seed++ {
		req.Seed = seed
		job := submitWait(t, ts2, "/v1/runs", req)
		if job.State != StateDone {
			t.Fatalf("seed %d after restart: %s (%s)", seed, job.State, job.Error)
		}
		if !bytes.Equal(job.Result, results[seed]) {
			t.Fatalf("seed %d: post-restart payload differs\nold: %s\nnew: %s",
				seed, results[seed], job.Result)
		}
	}
}

package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"quarc/internal/experiments"
)

// Canonical request hashing: the result cache is content-addressed by a
// SHA-256 over a canonical JSON encoding of everything the response payload
// depends on — the normalised configuration (defaults filled in, so a
// request spelling out the defaults and one omitting them share a key), the
// seed, the replicate count, and for panels the Figure/Name labels (they are
// echoed in the payload, so two requests differing only in labels must not
// share cached bytes). Deliberately excluded: worker counts and progress
// callbacks, which never change a single output bit.

// RunKey returns the cache key of a replicated single-configuration run.
func RunKey(cfg experiments.Config, replicates int) string {
	if replicates < 1 {
		replicates = 1
	}
	return hashKey(struct {
		Kind       string
		Cfg        experiments.Config
		Replicates int
	}{"run", cfg.WithDefaults(), replicates})
}

// PanelKey returns the cache key of a panel sweep.
func PanelKey(spec experiments.PanelSpec, opts experiments.RunOpts) string {
	if opts.Replicates < 1 {
		opts.Replicates = 1
	}
	if len(spec.Rates) > 0 {
		// Explicit rates make the Points grid size irrelevant to the sweep;
		// keep it out of the key so the identical work shares one entry.
		opts.Points = 0
	}
	return hashKey(struct {
		Kind         string
		Figure, Name string
		N, MsgLen    int
		Beta         float64
		// The traffic-shaping, model-set and multicast fields carry
		// omitempty so the paper's fixed-pair uniform panels keep the exact
		// cache keys they had before the fields existed.
		Pattern                int      `json:",omitempty"`
		HotspotBias            float64  `json:",omitempty"`
		Models                 []string `json:",omitempty"`
		McastFrac              float64  `json:",omitempty"`
		McastSize              int      `json:",omitempty"`
		Rates                  []float64
		Warmup, Measure, Drain int64
		Depth                  int
		Seed                   uint64
		Points, Replicates     int
	}{
		Kind: "panel", Figure: spec.Figure, Name: spec.Name,
		N: spec.N, MsgLen: spec.MsgLen, Beta: spec.Beta,
		Pattern: int(spec.Pattern), HotspotBias: spec.HotspotBias,
		Models: spec.Models, McastFrac: spec.McastFrac, McastSize: spec.McastSize,
		Rates:  spec.Rates,
		Warmup: opts.Warmup, Measure: opts.Measure, Drain: opts.Drain,
		Depth: opts.Depth, Seed: opts.Seed,
		Points: opts.Points, Replicates: opts.Replicates,
	})
}

// hashKey marshals v deterministically (struct field order, no maps) and
// hashes the bytes.
func hashKey(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		// Key structs contain only value fields; this cannot happen.
		panic("service: canonical key marshal: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

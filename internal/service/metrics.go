package service

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Metrics aggregates the daemon's operational counters. Everything is
// atomic so the simulation hot path (per-point callbacks) never contends on
// a lock.
type Metrics struct {
	start          time.Time
	jobsAccepted   atomic.Uint64
	jobsDone       atomic.Uint64
	jobsFailed     atomic.Uint64
	jobsCancelled  atomic.Uint64
	jobsRejected   atomic.Uint64
	jobsCoalesced  atomic.Uint64
	jobsRecovered  atomic.Uint64
	storeHits      atomic.Uint64
	pointsSim      atomic.Uint64
	cyclesSim      atomic.Uint64
	cachedResponse atomic.Uint64
	// Design-space exploration counters: lattice points expanded into jobs,
	// duplicate points collapsed at expansion, and points answered from the
	// per-point result cache instead of simulating.
	explorePointsExpanded atomic.Uint64
	explorePointsDeduped  atomic.Uint64
	explorePointsCacheHit atomic.Uint64
	// Robustness counters: degraded analytic answers served under deadline
	// pressure or load shedding, jobs the watchdog cancelled for making no
	// progress, panics converted into single-job failures, and disk-store
	// I/O failures (the circuit breaker's input signal).
	degradedAnswers atomic.Uint64
	watchdogCancels atomic.Uint64
	panicsRecovered atomic.Uint64
	storeFaults     atomic.Uint64
}

// NewMetrics starts the uptime clock.
func NewMetrics() *Metrics { return &Metrics{start: time.Now()} }

// MetricsSnapshot is a consistent-enough copy of the counters for tests and
// the /metrics endpoint.
type MetricsSnapshot struct {
	UptimeSeconds         float64
	JobsAccepted          uint64
	JobsDone              uint64
	JobsFailed            uint64
	JobsCancelled         uint64
	JobsRejected          uint64
	JobsCoalesced         uint64
	JobsRecovered         uint64
	CachedResponses       uint64
	PointsSimulated       uint64
	CyclesSimulated       uint64
	ExplorePointsExpanded uint64
	ExplorePointsDeduped  uint64
	ExplorePointsCacheHit uint64
	CacheHits             uint64
	CacheMisses           uint64
	CacheEntries          int
	CacheBytes            int64
	StoreHits             uint64
	StoreEntries          int
	StoreBytes            int64
	StoreEvictions        uint64
	QueueDepth            int
	QueueInteractive      int
	QueueBatch            int
	JobsRunning           int
	DegradedAnswers       uint64
	WatchdogCancels       uint64
	PanicsRecovered       uint64
	StoreFaults           uint64
	BreakerState          BreakerState
	BreakerOpens          uint64
}

// CyclesPerSecond is the lifetime average simulation throughput.
func (m MetricsSnapshot) CyclesPerSecond() float64 {
	if m.UptimeSeconds <= 0 {
		return 0
	}
	return float64(m.CyclesSimulated) / m.UptimeSeconds
}

// HitRate is the cache hit fraction in [0,1] (0 before any lookup).
func (m MetricsSnapshot) HitRate() float64 {
	total := m.CacheHits + m.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(m.CacheHits) / float64(total)
}

// writeProm renders the snapshot in the Prometheus text exposition format.
func (m MetricsSnapshot) writeProm(w io.Writer) {
	g := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	c := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	g("quarcd_uptime_seconds", "Seconds since the daemon started.", m.UptimeSeconds)
	g("quarcd_queue_depth", "Jobs queued and not yet executing.", float64(m.QueueDepth))
	g("quarcd_queue_depth_interactive", "Interactive-class jobs queued and not yet executing.", float64(m.QueueInteractive))
	g("quarcd_queue_depth_batch", "Batch-class jobs queued and not yet executing.", float64(m.QueueBatch))
	g("quarcd_jobs_running", "Jobs currently executing.", float64(m.JobsRunning))
	c("quarcd_jobs_accepted_total", "Jobs submitted; each eventually counts done, failed or cancelled.", m.JobsAccepted)
	c("quarcd_jobs_done_total", "Jobs finished successfully.", m.JobsDone)
	c("quarcd_jobs_failed_total", "Jobs finished with an error.", m.JobsFailed)
	c("quarcd_jobs_cancelled_total", "Jobs cancelled before completion.", m.JobsCancelled)
	c("quarcd_jobs_rejected_total", "Submissions rejected by queue backpressure.", m.JobsRejected)
	c("quarcd_jobs_coalesced_total", "Submissions attached to an identical in-flight job instead of simulating.", m.JobsCoalesced)
	c("quarcd_cached_responses_total", "Jobs answered from the result cache without simulating.", m.CachedResponses)
	c("quarcd_cache_hits_total", "Result-cache lookup hits.", m.CacheHits)
	c("quarcd_cache_misses_total", "Result-cache lookup misses.", m.CacheMisses)
	g("quarcd_cache_entries", "Entries resident in the result cache.", float64(m.CacheEntries))
	g("quarcd_cache_bytes", "Payload bytes resident in the in-memory result cache.", float64(m.CacheBytes))
	g("quarcd_cache_hit_rate", "Lifetime cache hit fraction.", m.HitRate())
	c("quarcd_store_hits_total", "Memory-cache misses answered from the disk result store.", m.StoreHits)
	g("quarcd_store_entries", "Entries resident in the disk result store.", float64(m.StoreEntries))
	g("quarcd_store_bytes", "Payload bytes resident in the disk result store.", float64(m.StoreBytes))
	c("quarcd_store_evictions_total", "Disk-store entries evicted to fit the byte budget.", m.StoreEvictions)
	c("quarcd_jobs_recovered_total", "Job records rebuilt from journals at boot.", m.JobsRecovered)
	c("quarcd_points_simulated_total", "Sweep design points simulated.", m.PointsSimulated)
	c("quarcd_cycles_simulated_total", "Fabric cycles simulated.", m.CyclesSimulated)
	c("quarcd_explore_points_expanded_total", "Lattice points expanded by explore jobs.", m.ExplorePointsExpanded)
	c("quarcd_explore_points_deduped_total", "Duplicate lattice points collapsed at explore expansion.", m.ExplorePointsDeduped)
	c("quarcd_explore_points_cache_hit_total", "Explore lattice points answered from the per-point result cache.", m.ExplorePointsCacheHit)
	c("quarcd_degraded_answers_total", "Jobs answered with a degraded analytic estimate under deadline pressure or load shedding.", m.DegradedAnswers)
	c("quarcd_watchdog_cancels_total", "Running jobs the watchdog cancelled for making no point progress.", m.WatchdogCancels)
	c("quarcd_panics_recovered_total", "Job panics converted into single-job failures instead of daemon crashes.", m.PanicsRecovered)
	c("quarcd_store_faults_total", "Disk result-store I/O failures observed by the serving path.", m.StoreFaults)
	g("quarcd_store_breaker_state", "Disk-store circuit breaker state: 0 closed, 1 open, 2 half-open.", float64(m.BreakerState))
	c("quarcd_store_breaker_opens_total", "Disk-store circuit breaker open transitions.", m.BreakerOpens)
	g("quarcd_cycles_per_second", "Lifetime average simulated cycles per wall-clock second.", m.CyclesPerSecond())
}

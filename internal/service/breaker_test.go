package service

import (
	"testing"
	"time"
)

// The breaker trips after exactly threshold consecutive failures, refuses
// while open, admits a single half-open probe once the backoff elapses, and
// closes again on a successful probe.
func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(3, time.Millisecond, 10*time.Millisecond)
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("new breaker not closed/allowing")
	}
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2/3 failures = %v, want closed", b.State())
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3/3 failures = %v, want open", b.State())
	}
	if n := b.Opens(); n != 1 {
		t.Fatalf("opens = %d, want 1", n)
	}

	// Wait out the worst-case jittered backoff (1.5x base), polling Allow.
	deadline := time.Now().Add(time.Second)
	for !b.Allow() {
		if time.Now().After(deadline) {
			t.Fatal("breaker never admitted a half-open probe")
		}
		time.Sleep(time.Millisecond)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after admitted probe = %v, want half-open", b.State())
	}
	// Only one probe at a time.
	if b.Allow() {
		t.Fatal("second caller admitted while a probe is in flight")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("successful probe did not close the breaker")
	}
}

// A failed half-open probe reopens the breaker (counted as another open),
// and an intervening success fully resets the consecutive-failure count.
func TestBreakerProbeFailureReopensAndSuccessResets(t *testing.T) {
	b := NewBreaker(2, time.Millisecond, 5*time.Millisecond)
	b.Failure()
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("breaker not open")
	}
	deadline := time.Now().Add(time.Second)
	for !b.Allow() {
		if time.Now().After(deadline) {
			t.Fatal("no probe admitted")
		}
		time.Sleep(time.Millisecond)
	}
	b.Failure() // the probe fails
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if n := b.Opens(); n != 2 {
		t.Fatalf("opens = %d, want 2", n)
	}

	// Recover, then check one failure alone no longer trips it.
	deadline = time.Now().Add(time.Second)
	for !b.Allow() {
		if time.Now().After(deadline) {
			t.Fatal("no second probe admitted")
		}
		time.Sleep(time.Millisecond)
	}
	b.Success()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("single failure after success tripped the breaker: count not reset")
	}
}

// A neutral outcome (no I/O evidence either way) must not reset the failure
// count while closed, and must release a half-open probe slot for an
// immediate re-probe instead of wedging the breaker.
func TestBreakerNeutralOutcomes(t *testing.T) {
	b := NewBreaker(2, time.Millisecond, 5*time.Millisecond)
	b.Failure()
	b.Neutral() // e.g. an index miss between two disk failures
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("neutral outcome reset the consecutive-failure count")
	}
	deadline := time.Now().Add(time.Second)
	for !b.Allow() {
		if time.Now().After(deadline) {
			t.Fatal("no probe admitted")
		}
		time.Sleep(time.Millisecond)
	}
	b.Neutral() // the probe performed no I/O: no verdict
	if b.State() != BreakerOpen {
		t.Fatalf("state after neutral probe = %v, want open", b.State())
	}
	if !b.Allow() {
		t.Fatal("neutral probe did not release the slot for an immediate re-probe")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("successful re-probe did not close the breaker")
	}
}

// While open and inside the backoff window, Allow refuses without admitting
// probes; extra Failure calls from concurrent stragglers neither extend the
// backoff nor count extra opens.
func TestBreakerOpenRefusesAndIgnoresStragglers(t *testing.T) {
	b := NewBreaker(1, time.Hour, time.Hour)
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("breaker not open")
	}
	for i := 0; i < 5; i++ {
		if b.Allow() {
			t.Fatal("open breaker inside backoff admitted a caller")
		}
		b.Failure()
	}
	if n := b.Opens(); n != 1 {
		t.Fatalf("straggler failures counted opens: %d, want 1", n)
	}
}

package service

import (
	"testing"

	"quarc/internal/experiments"
	"quarc/internal/explore"
	"quarc/internal/traffic"
)

// TestCanonicalKeysUnchangedAcrossRegistryRefactor pins the cache keys of
// representative pre-registry requests to the exact SHA-256 values the
// pre-refactor code produced (recorded before the model registry, the
// Config.Model field and the traffic-shaping knobs were introduced). A
// change here means every deployed cache entry would be orphaned — treat it
// as a wire-format break, not a test to update casually.
func TestCanonicalKeysUnchangedAcrossRegistryRefactor(t *testing.T) {
	runCases := []struct {
		cfg  experiments.Config
		reps int
		want string
	}{
		{experiments.Config{Topo: experiments.TopoQuarc, N: 16, Rate: 0.01}, 3,
			"8f0c3c8f63cffa079b76e69a1b1c5cf80e79e545e78659a98260b9e1473803bd"},
		{experiments.Config{Topo: experiments.TopoSpidergon, N: 64, MsgLen: 32, Beta: 0.1, Rate: 0.004, Seed: 7}, 3,
			"ba2bc4d5c21407846e348bcde0a9c1c6c832938c7a259c7c5eede59a150c687a"},
		{experiments.Config{Topo: experiments.TopoTorus, N: 16, Rate: 0.02, Pattern: traffic.Hotspot, HotspotBias: 0.3, Depth: 8}, 3,
			"86fb86974e50d78359f25c4e81f5b7b90b5edb152fc1754d3e1f1de85cefb4c7"},
		{experiments.Config{Topo: experiments.TopoQuarcSingleQueue, N: 8, Rate: 0.005, Warmup: 100, Measure: 200, Drain: 300}, 3,
			"9cffdf53a37e7120205198ea7c5c2b2fa4c6418dbbc28b1ce4c1c39b468b36a5"},
	}
	for i, c := range runCases {
		if got := RunKey(c.cfg, c.reps); got != c.want {
			t.Errorf("run case %d (%v): key drifted\n got %s\nwant %s", i, c.cfg.Topo, got, c.want)
		}
	}

	// A request selecting a legacy model by wire name must share the key of
	// the enum-selected request: names canonicalise onto the enum.
	byName := experiments.Config{Model: "quarc", N: 16, Rate: 0.01}
	if got, want := RunKey(byName, 3), runCases[0].want; got != want {
		t.Errorf("name-selected quarc key %s != enum-selected key %s", got, want)
	}

	spec := experiments.PanelSpec{Figure: "fig9", Name: "N=16 beta=5% M=16",
		N: 16, MsgLen: 16, Beta: 0.05, Rates: []float64{0.002, 0.004}}
	opts := experiments.RunOpts{Warmup: 500, Measure: 2500, Drain: 10000,
		Depth: 4, Seed: 20090523, Points: 5, Replicates: 2}
	if got, want := PanelKey(spec, opts), "05265f606992990fa4e2b28d7eb8618128f1d8df7ac1f2a6664f81bf0ac060b1"; got != want {
		t.Errorf("panel key drifted\n got %s\nwant %s", got, want)
	}
	if got, want := PanelKey(experiments.PanelSpec{N: 32}, experiments.DefaultOpts()),
		"cbda8e698199c1f36bcc62958e2b5cf6152fcaaea69c7eff403eb9ad858a3c61"; got != want {
		t.Errorf("default panel key drifted\n got %s\nwant %s", got, want)
	}

	// New knobs must change keys (no silent cache aliasing).
	burst := runCases[0].cfg
	burst.BurstMeanOn, burst.BurstMeanOff = 40, 120
	if RunKey(burst, 3) == runCases[0].want {
		t.Error("bursty run shares the smooth run's cache key")
	}
	ring := experiments.Config{Model: "ring", N: 16, Rate: 0.01}
	if RunKey(ring, 3) == runCases[0].want {
		t.Error("ring run shares the quarc run's cache key")
	}
	hot := spec
	hot.Pattern, hot.HotspotBias = traffic.Hotspot, 0.3
	if PanelKey(hot, opts) == PanelKey(spec, opts) {
		t.Error("hotspot panel shares the uniform panel's cache key")
	}
	mcast := runCases[0].cfg
	mcast.McastFrac, mcast.McastSize = 0.2, 4
	if RunKey(mcast, 3) == runCases[0].want {
		t.Error("multicast run shares the plain run's cache key")
	}
	nway := spec
	nway.Models = []string{"quarc", "spidergon", "ring"}
	if PanelKey(nway, opts) == PanelKey(spec, opts) {
		t.Error("N-way panel shares the legacy pair's cache key")
	}
	explicitPair := spec
	explicitPair.Models = []string{"quarc", "spidergon"}
	if PanelKey(explicitPair, opts) == PanelKey(spec, opts) {
		// The explicit pair simulates the same systems but echoes a models
		// field in its payload, so the cached bytes must not alias.
		t.Error("explicit quarc/spidergon panel shares the legacy pair's cache key")
	}
	mcastPanel := spec
	mcastPanel.McastFrac, mcastPanel.McastSize = 0.2, 4
	if PanelKey(mcastPanel, opts) == PanelKey(spec, opts) {
		t.Error("multicast panel shares the plain panel's cache key")
	}
}

// TestExploreKeyGolden pins the explore cache key the same way: the pinned
// hash is the wire contract for deployed explore cache entries, and the
// normalisation cases assert that spelling out a default never forks a key
// while changing any real knob always does.
func TestExploreKeyGolden(t *testing.T) {
	spec := explore.Spec{
		Models: []string{"quarc", "spidergon"},
		Ns:     []int{16},
		Rates:  []float64{0.005, 0.01},
		MsgLen: 16,
	}
	opts := experiments.RunOpts{Warmup: 500, Measure: 2500, Drain: 10000,
		Depth: 4, Seed: 20090523, Replicates: 2}
	const want = "3fad8fe0b3021645ad7caca785fe1a38e394e7c620fbe3505480daac0ca11d09"
	if got := ExploreKey(spec, opts); got != want {
		t.Errorf("explore key drifted\n got %s\nwant %s", got, want)
	}

	// Spelling out a default must not fork the key: the default message
	// length, the opts-depth axis, the default cost width and the empty
	// multicast axis all normalise onto the same bytes.
	elided := spec
	elided.MsgLen = 0
	if ExploreKey(elided, opts) != want {
		t.Error("eliding the default msglen forks the explore key")
	}
	explicitDepth := spec
	explicitDepth.Depths = []int{4}
	if ExploreKey(explicitDepth, opts) != want {
		t.Error("spelling out the default depth axis forks the explore key")
	}
	explicitWidth := spec
	explicitWidth.CostWidth = 32
	if ExploreKey(explicitWidth, opts) != want {
		t.Error("spelling out the default cost width forks the explore key")
	}

	// Any real knob must fork the key (no silent cache aliasing).
	forks := []struct {
		name   string
		mutate func(*explore.Spec, *experiments.RunOpts)
	}{
		{"model set", func(s *explore.Spec, _ *experiments.RunOpts) { s.Models = []string{"quarc"} }},
		{"sizes", func(s *explore.Spec, _ *experiments.RunOpts) { s.Ns = []int{32} }},
		{"rates", func(s *explore.Spec, _ *experiments.RunOpts) { s.Rates = []float64{0.005} }},
		{"depth axis", func(s *explore.Spec, _ *experiments.RunOpts) { s.Depths = []int{2, 4} }},
		{"mcast axis", func(s *explore.Spec, _ *experiments.RunOpts) { s.Mcast = []explore.McastKnob{{Frac: 0.2, Size: 4}} }},
		{"beta", func(s *explore.Spec, _ *experiments.RunOpts) { s.Beta = 0.05 }},
		{"pattern", func(s *explore.Spec, _ *experiments.RunOpts) { s.Pattern = traffic.Hotspot; s.HotspotBias = 0.3 }},
		{"cost width", func(s *explore.Spec, _ *experiments.RunOpts) { s.CostWidth = 64 }},
		{"seed", func(_ *explore.Spec, o *experiments.RunOpts) { o.Seed = 1 }},
		{"replicates", func(_ *explore.Spec, o *experiments.RunOpts) { o.Replicates = 3 }},
		{"cycle budget", func(_ *explore.Spec, o *experiments.RunOpts) { o.Measure = 5000 }},
	}
	for _, f := range forks {
		s2, o2 := spec, opts
		s2.Models = append([]string(nil), spec.Models...)
		s2.Ns = append([]int(nil), spec.Ns...)
		s2.Rates = append([]float64(nil), spec.Rates...)
		f.mutate(&s2, &o2)
		if ExploreKey(s2, o2) == want {
			t.Errorf("changing the %s does not change the explore key", f.name)
		}
	}

	// The explore keyspace must be disjoint from runs and panels even for
	// look-alike requests.
	if ExploreKey(spec, opts) == PanelKey(experiments.PanelSpec{N: 16, MsgLen: 16, Models: spec.Models, Rates: spec.Rates}, opts) {
		t.Error("explore key collides with a panel key")
	}
}

package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"quarc/internal/experiments"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

// tinyPanel is a panel small enough for unit tests: 8 points of an 8-node
// network, a few hundred cycles each.
func tinyPanel() PanelRequest {
	return PanelRequest{
		Figure: "fig9", Name: "test", N: 8, MsgLen: 4, Beta: 0.05,
		Rates: []float64{0.002, 0.004},
		Opts:  SweepOpts{Warmup: 100, Measure: 400, Drain: 4000, Seed: 7, Replicates: 2},
	}
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func submitWait(t *testing.T, ts *httptest.Server, path string, body any) JobJSON {
	t.Helper()
	resp, data := postJSON(t, ts.URL+path+"?wait=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s: %s", path, resp.Status, data)
	}
	var job JobJSON
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatalf("decode job: %v\n%s", err, data)
	}
	return job
}

// A panel submitted through the API must return results bit-identical to a
// direct sweep-engine call with the same parameters — and the serial
// reference path at that.
func TestPanelEndpointMatchesDirectSweep(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := tinyPanel()
	job := submitWait(t, ts, "/v1/panels", req)
	if job.State != StateDone {
		t.Fatalf("job finished %s: %s", job.State, job.Error)
	}
	if job.Cached {
		t.Fatal("first request reported cached")
	}

	spec, opts, err := req.SpecOpts()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := experiments.RunPanelSerial(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(EncodePanel(direct))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(job.Result, want) {
		t.Fatalf("API result differs from direct RunPanelSerial:\napi:    %s\ndirect: %s",
			job.Result, want)
	}
}

// The second identical request must be served from cache: byte-identical
// result, cached flag set, and zero new points simulated.
func TestPanelCacheHitSimulatesNothing(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2})
	first := submitWait(t, ts, "/v1/panels", tinyPanel())
	if first.State != StateDone || first.Cached {
		t.Fatalf("first request: state=%s cached=%v", first.State, first.Cached)
	}
	before := svc.Snapshot()
	if before.PointsSimulated == 0 || before.CacheMisses == 0 {
		t.Fatalf("first request recorded no work: %+v", before)
	}

	second := submitWait(t, ts, "/v1/panels", tinyPanel())
	if second.State != StateDone || !second.Cached {
		t.Fatalf("second request: state=%s cached=%v", second.State, second.Cached)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatal("cached result not byte-identical to the computed one")
	}
	after := svc.Snapshot()
	if after.PointsSimulated != before.PointsSimulated {
		t.Fatalf("cache hit simulated %d new points",
			after.PointsSimulated-before.PointsSimulated)
	}
	if after.CacheHits != before.CacheHits+1 {
		t.Fatalf("cache hits %d -> %d, want +1", before.CacheHits, after.CacheHits)
	}
}

// A duplicate that was queued behind its twin must be answered from cache at
// dequeue time instead of re-simulating.
func TestQueuedDuplicateServedFromCache(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})
	req := RunRequest{N: 8, MsgLen: 4, Rate: 0.002, Warmup: 100, Measure: 300, Drain: 3000, Seed: 8}
	_, d1 := postJSON(t, ts.URL+"/v1/runs", req)
	_, d2 := postJSON(t, ts.URL+"/v1/runs", req)
	var a, b JobJSON
	if err := json.Unmarshal(d1, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(d2, &b); err != nil {
		t.Fatal(err)
	}
	fa := waitState(t, ts, a.ID, StateDone, 10*time.Second)
	fb := waitState(t, ts, b.ID, StateDone, 10*time.Second)
	if !fb.Cached {
		t.Fatal("queued duplicate was re-simulated instead of served from cache")
	}
	if !bytes.Equal(fa.Result, fb.Result) {
		t.Fatal("duplicate results differ")
	}
	if snap := svc.Snapshot(); snap.PointsSimulated != 1 {
		t.Fatalf("simulated %d points for two identical jobs, want 1", snap.PointsSimulated)
	}
}

// slowRun is a single-point run long enough (hundreds of milliseconds) that
// a test can act while it is still running. The network is saturated so the
// active set is the whole fabric: activity-driven stepping cannot shortcut
// it, keeping the duration stable across scheduler improvements.
func slowRun() RunRequest {
	return RunRequest{N: 16, MsgLen: 16, Rate: 0.2, Warmup: 100,
		Measure: 120000, Drain: 4000, Seed: 9}
}

// An identical uncached submission arriving while its twin is still running
// must coalesce onto it: one simulation, two done jobs, byte-identical
// results, and zero points simulated by the second job.
func TestInFlightDuplicateCoalesces(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2})
	req := slowRun()
	_, d1 := postJSON(t, ts.URL+"/v1/runs", req)
	var a JobJSON
	if err := json.Unmarshal(d1, &a); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts, a.ID, StateRunning, 10*time.Second)

	// Workers=2: a second executor is idle, so only coalescing (not queue
	// backpressure) can prevent a duplicate simulation.
	_, d2 := postJSON(t, ts.URL+"/v1/runs", req)
	var b JobJSON
	if err := json.Unmarshal(d2, &b); err != nil {
		t.Fatal(err)
	}
	// Generous deadline: the saturated slowRun fixture takes ~3s natively
	// but >20s under the race detector.
	fa := waitState(t, ts, a.ID, StateDone, 90*time.Second)
	fb := waitState(t, ts, b.ID, StateDone, 90*time.Second)
	if !fb.Cached {
		t.Fatal("coalesced duplicate not marked cached")
	}
	if !bytes.Equal(fa.Result, fb.Result) {
		t.Fatal("coalesced results differ")
	}
	snap := svc.Snapshot()
	if snap.JobsCoalesced != 1 {
		t.Fatalf("jobs coalesced = %d, want 1", snap.JobsCoalesced)
	}
	if snap.PointsSimulated != 1 {
		t.Fatalf("two identical in-flight jobs simulated %d points, want 1", snap.PointsSimulated)
	}
}

// Cancelling the primary must not cancel a coalesced follower: the follower
// is promoted and simulates the request itself.
func TestCoalescedFollowerSurvivesPrimaryCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := slowRun()
	_, d1 := postJSON(t, ts.URL+"/v1/runs", req)
	var a JobJSON
	if err := json.Unmarshal(d1, &a); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts, a.ID, StateRunning, 10*time.Second)
	_, d2 := postJSON(t, ts.URL+"/v1/runs", req)
	var b JobJSON
	if err := json.Unmarshal(d2, &b); err != nil {
		t.Fatal(err)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/jobs/"+a.ID+"/cancel", struct{}{}); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %s", resp.Status)
	}
	waitState(t, ts, a.ID, StateCancelled, 10*time.Second)
	fb := waitState(t, ts, b.ID, StateDone, 60*time.Second)
	if fb.Cached {
		t.Fatal("promoted follower claims a cached result; it should have simulated")
	}
	if len(fb.Result) == 0 {
		t.Fatal("promoted follower produced no result")
	}
}

// The /metrics endpoint must expose the hit counter the acceptance criterion
// keys on.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	submitWait(t, ts, "/v1/panels", tinyPanel())
	submitWait(t, ts, "/v1/panels", tinyPanel())
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, want := range []string{
		"quarcd_cache_hits_total 1",
		"quarcd_cache_misses_total 1",
		// Both jobs count done (one computed, one from cache): accepted ==
		// done + failed + cancelled.
		"quarcd_jobs_accepted_total 2",
		"quarcd_jobs_done_total 2",
		"quarcd_cached_responses_total 1",
		"quarcd_queue_depth 0",
		"quarcd_queue_depth_interactive 0",
		"quarcd_queue_depth_batch 0",
		"quarcd_cache_bytes ",
		"quarcd_store_bytes 0",
		"quarcd_store_evictions_total 0",
		"quarcd_jobs_recovered_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

func waitState(t *testing.T, ts *httptest.Server, id string, want State, budget time.Duration) JobJSON {
	t.Helper()
	deadline := time.Now().Add(budget)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var job JobJSON
		err = json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if job.State == want {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, job.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Cancelling a running job must stop it promptly and free its executor for
// the next job.
func TestCancellationFreesWorker(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// A job that would simulate for hours on the single executor.
	long := RunRequest{N: 8, MsgLen: 4, Rate: 0.002, Warmup: 100, Measure: 400_000_000, Seed: 3}
	resp, data := postJSON(t, ts.URL+"/v1/runs", long)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, data)
	}
	var job JobJSON
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts, job.ID, StateRunning, 5*time.Second)

	cresp, cdata := postJSON(t, ts.URL+"/v1/jobs/"+job.ID+"/cancel", nil)
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %s: %s", cresp.Status, cdata)
	}
	waitState(t, ts, job.ID, StateCancelled, 5*time.Second)

	// The executor must now be free: a small job completes.
	quick := submitWait(t, ts, "/v1/runs", RunRequest{
		N: 8, MsgLen: 4, Rate: 0.002, Warmup: 100, Measure: 300, Drain: 3000, Seed: 4,
	})
	if quick.State != StateDone {
		t.Fatalf("post-cancel job finished %s: %s", quick.State, quick.Error)
	}
}

// Cancelling a queued job must prevent it from ever running.
func TestCancelQueuedJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	long := RunRequest{N: 8, MsgLen: 4, Rate: 0.002, Warmup: 100, Measure: 400_000_000, Seed: 3}
	_, d1 := postJSON(t, ts.URL+"/v1/runs", long)
	var running JobJSON
	if err := json.Unmarshal(d1, &running); err != nil {
		t.Fatal(err)
	}
	long.Seed = 5 // distinct key so it cannot be answered from cache
	_, d2 := postJSON(t, ts.URL+"/v1/runs", long)
	var queued JobJSON
	if err := json.Unmarshal(d2, &queued); err != nil {
		t.Fatal(err)
	}
	postJSON(t, ts.URL+"/v1/jobs/"+queued.ID+"/cancel", nil)
	waitState(t, ts, queued.ID, StateCancelled, 5*time.Second)
	postJSON(t, ts.URL+"/v1/jobs/"+running.ID+"/cancel", nil)
	waitState(t, ts, running.ID, StateCancelled, 5*time.Second)
}

// The NDJSON event stream must replay the full lifecycle: queued, running,
// one point event per design point, done.
func TestEventStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	job := submitWait(t, ts, "/v1/panels", tinyPanel())
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	req := tinyPanel()
	spec, opts, _ := req.SpecOpts()
	wantPoints := experiments.PanelPointCount(spec, opts)
	var points int
	for _, e := range events {
		if e.Type == "point" {
			points++
			if e.Done < 1 || e.Done > wantPoints || e.Total != wantPoints {
				t.Fatalf("bad point event %+v", e)
			}
		}
	}
	if points != wantPoints {
		t.Fatalf("%d point events, want %d", points, wantPoints)
	}
	if events[0].Type != "state" || events[0].State != StateQueued {
		t.Fatalf("first event %+v, want queued", events[0])
	}
	last := events[len(events)-1]
	if last.Type != "state" || last.State != StateDone {
		t.Fatalf("last event %+v, want done", last)
	}
}

// Run jobs are cached and deterministic end to end too.
func TestRunEndpointDeterminism(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := RunRequest{
		N: 8, MsgLen: 4, Beta: 0.05, Rate: 0.004,
		Warmup: 100, Measure: 400, Drain: 4000, Seed: 42, Replicates: 2,
	}
	first := submitWait(t, ts, "/v1/runs", req)
	if first.State != StateDone {
		t.Fatalf("run finished %s: %s", first.State, first.Error)
	}
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	agg, reps, err := experiments.RunReplicated(cfg, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := RunResult{Result: EncodeResult(agg)}
	for _, r := range reps {
		out.Replicates = append(out.Replicates, EncodeResult(r))
	}
	want, _ := json.Marshal(out)
	if !bytes.Equal(first.Result, want) {
		t.Fatalf("API run differs from direct RunReplicated:\napi:    %s\ndirect: %s",
			first.Result, want)
	}
	// Worker count must not leak into the payload: replicated on more workers.
	req.Workers = 4
	second := submitWait(t, ts, "/v1/runs", req)
	if !second.Cached || !bytes.Equal(first.Result, second.Result) {
		t.Fatal("worker count changed the cache identity or payload")
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		path string
		body string
	}{
		{"/v1/runs", `{"n":0,"rate":0.01}`},
		{"/v1/runs", `{"n":16,"rate":0.01,"topo":"nope"}`},
		{"/v1/runs", `{"n":16,"rate":0.01,"pattern":"nope"}`},
		{"/v1/runs", `{"n":16,"rate":0.01,"measure":9999999999}`},
		{"/v1/runs", `{"n":16,"rate":0.01,"bogus_field":1}`},
		// Individually legal knobs whose product exceeds the job-work bound.
		{"/v1/runs", `{"n":16,"rate":0.01,"measure":400000000,"replicates":100}`},
		// Model-specific size validation happens at submission time.
		{"/v1/runs", `{"n":12,"rate":0.01,"topo":"mesh"}`},
		{"/v1/runs", `{"n":10,"rate":0.01,"topo":"ring"}`},
		// Bursty knobs: both-or-neither, and an ON-state rate above 1
		// msg/node/cycle is infeasible.
		{"/v1/runs", `{"n":16,"rate":0.01,"burst_mean_on":40}`},
		{"/v1/runs", `{"n":16,"rate":0.01,"burst_mean_on":-40,"burst_mean_off":-120}`},
		{"/v1/runs", `{"n":16,"rate":0.01,"pattern":"hotspot","hotspot_bias":1.5}`},
		{"/v1/runs", `{"n":16,"rate":0.01,"burst_mean_on":40,"burst_mean_off":120,"pattern":"hotspot"}`},
		{"/v1/runs", `{"n":16,"rate":0.9,"burst_mean_on":40,"burst_mean_off":120}`},
		{"/v1/panels", `{"n":0}`},
		{"/v1/panels", fmt.Sprintf(`{"n":16,"opts":{"replicates":%d}}`, MaxReplicates+1)},
		{"/v1/panels", `{"n":16,"opts":{"measure":400000000,"replicates":200,"points":256}}`},
		{"/v1/panels", `{"n":16,"pattern":"nope"}`},
		{"/v1/panels", `{"n":16,"hotspot_bias":1.5}`},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s: status %d, want 400", c.path, c.body, resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
		}
	}
}

func TestJobListing(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	submitWait(t, ts, "/v1/runs", RunRequest{
		N: 8, MsgLen: 4, Rate: 0.002, Warmup: 100, Measure: 300, Drain: 3000, Seed: 1,
	})
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jobs []JobJSON
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].State != StateDone {
		t.Fatalf("job listing %+v", jobs)
	}
	if len(jobs[0].Result) != 0 {
		t.Fatal("listing should omit result payloads")
	}
}

// GET /v1/models must enumerate the registry, and a model that exists only
// in the registry (no Topology enum member, no service code naming it) must
// be servable end to end.
func TestModelsEndpointAndRegistryOnlyModel(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var models []ModelJSON
	err = json.NewDecoder(resp.Body).Decode(&models)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ModelJSON{}
	for _, m := range models {
		byName[m.Name] = m
	}
	for _, want := range []string{"quarc", "spidergon", "quarc-chainbcast",
		"quarc-1queue", "mesh", "torus", "ring"} {
		m, ok := byName[want]
		if !ok {
			t.Errorf("/v1/models missing %q", want)
			continue
		}
		if m.Description == "" || m.ExampleN <= 0 {
			t.Errorf("model %q listed without metadata: %+v", want, m)
		}
	}

	job := submitWait(t, ts, "/v1/runs", RunRequest{
		Topo: "ring", N: 8, MsgLen: 4, Rate: 0.002,
		Warmup: 100, Measure: 400, Drain: 4000, Seed: 3,
	})
	if job.State != StateDone {
		t.Fatalf("ring job finished %s: %s", job.State, job.Error)
	}
	var out RunResult
	if err := json.Unmarshal(job.Result, &out); err != nil {
		t.Fatal(err)
	}
	if out.Result.Topo != "ring" {
		t.Fatalf("result echoes topo %q, want ring", out.Result.Topo)
	}
	if out.Result.UnicastCount == 0 {
		t.Fatal("ring run measured no unicasts")
	}
}

// Bursty knobs travel the wire, are echoed in results, and key the cache
// separately from the smooth run.
func TestBurstyRunOverWire(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	smooth := submitWait(t, ts, "/v1/runs", RunRequest{
		N: 16, MsgLen: 4, Rate: 0.004, Warmup: 100, Measure: 1500, Drain: 10000, Seed: 3,
	})
	burst := submitWait(t, ts, "/v1/runs", RunRequest{
		N: 16, MsgLen: 4, Rate: 0.004, Warmup: 100, Measure: 1500, Drain: 10000, Seed: 3,
		BurstMeanOn: 40, BurstMeanOff: 120,
	})
	if smooth.State != StateDone || burst.State != StateDone {
		t.Fatalf("states: smooth=%s burst=%s (%s %s)", smooth.State, burst.State, smooth.Error, burst.Error)
	}
	if burst.Cached {
		t.Fatal("bursty run aliased the smooth run's cache entry")
	}
	var out RunResult
	if err := json.Unmarshal(burst.Result, &out); err != nil {
		t.Fatal(err)
	}
	if out.Result.BurstMeanOn != 40 || out.Result.BurstMeanOff != 120 {
		t.Fatalf("burst knobs not echoed: %+v", out.Result)
	}
	if bytes.Equal(smooth.Result, burst.Result) {
		t.Fatal("bursty result identical to smooth result")
	}
}

// Oversized collectives can never complete (the tracker's delivered-node
// mask is 64 bits), so the registry size check must reject them at
// submission time for every model.
func TestOversizedMeshRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/runs", RunRequest{Topo: "mesh", N: 8100, Beta: 0.1, Rate: 0.005})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("n=8100 mesh accepted: %s: %s", resp.Status, body)
	}
}

// collectEvents replays a finished job's NDJSON stream.
func collectEvents(t *testing.T, ts *httptest.Server, id string) []Event {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// Regression: point progress events of a registry-only model must carry its
// canonical name, not the zero-value enum's "quarc" (PointDone used to hold
// the Topology enum, which is TopoQuarc whenever Config.Model selects the
// model).
func TestRunEventsCarryRegistryModelName(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, replicates := range []int{1, 2} { // both RunReplicatedContext paths
		job := submitWait(t, ts, "/v1/runs", RunRequest{
			Topo: "ring", N: 8, MsgLen: 4, Rate: 0.002,
			Warmup: 100, Measure: 300, Drain: 3000, Seed: 21, Replicates: replicates,
		})
		if job.State != StateDone {
			t.Fatalf("replicates=%d: job finished %s: %s", replicates, job.State, job.Error)
		}
		points := 0
		for _, e := range collectEvents(t, ts, job.ID) {
			if e.Type != "point" {
				continue
			}
			points++
			if e.Topo != "ring" {
				t.Fatalf("replicates=%d: point event labels topo %q, want ring", replicates, e.Topo)
			}
		}
		if points != replicates {
			t.Fatalf("replicates=%d: %d point events", replicates, points)
		}
	}
}

// Regression: a ?wait=1 submission whose request context expires mid-wait
// must answer 202 with the job's live state, never 200 with a non-terminal
// snapshot a client could mistake for a completed job. The handler is driven
// directly (a real client would abort the round trip along with its
// context), which is exactly the view a reverse proxy with a read timeout
// or a cancelled downstream handler gets.
func TestWaitExpiryAnswersAccepted(t *testing.T) {
	svc, _ := newTestServer(t, Config{Workers: 1})
	body, err := json.Marshal(slowRun())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/runs?wait=1", bytes.NewReader(body)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, req) // blocks until the wait context expires
	if rec.Code != http.StatusAccepted {
		t.Fatalf("expired wait answered %d: %s", rec.Code, rec.Body.String())
	}
	var job JobJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &job); err != nil {
		t.Fatal(err)
	}
	if job.State.terminal() {
		t.Fatalf("expired wait reports terminal state %s", job.State)
	}
	if len(job.Result) != 0 {
		t.Fatal("non-terminal snapshot carries a result payload")
	}
}

// A three-model panel with multicast traffic runs end to end through the
// daemon: models echoed in curve order, one curve per model, multicast knobs
// echoed on the panel and its points, and the legacy quarc/spidergon arrays
// still present for old consumers.
func TestPanelNWayMulticastOverWire(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := PanelRequest{
		Figure: "nway", Name: "three models", N: 8, MsgLen: 4, Beta: 0.05,
		Models:    []string{"quarc", "spidergon", "ring"},
		McastFrac: 0.2, McastSize: 3,
		Rates: []float64{0.008, 0.015},
		Opts:  SweepOpts{Warmup: 100, Measure: 600, Drain: 8000, Seed: 7, Replicates: 2},
	}
	job := submitWait(t, ts, "/v1/panels", req)
	if job.State != StateDone {
		t.Fatalf("job finished %s: %s", job.State, job.Error)
	}
	var out PanelResultJSON
	if err := json.Unmarshal(job.Result, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Models, req.Models) {
		t.Fatalf("models echoed as %v, want %v", out.Models, req.Models)
	}
	if out.McastFrac != req.McastFrac || out.McastSize != req.McastSize {
		t.Fatalf("multicast knobs not echoed: %+v", out)
	}
	if len(out.Curves) != 3 {
		t.Fatalf("%d curves, want 3", len(out.Curves))
	}
	for _, m := range req.Models {
		curve := out.Curves[m]
		if len(curve) != len(req.Rates) {
			t.Fatalf("%s: curve has %d points, want %d", m, len(curve), len(req.Rates))
		}
		for _, p := range curve {
			if p.Topo != m {
				t.Fatalf("curve %s holds a %s point", m, p.Topo)
			}
			if p.McastFrac != req.McastFrac || p.McastSize != req.McastSize {
				t.Fatalf("%s point lost the multicast knobs: %+v", m, p)
			}
			if p.McastCount == 0 {
				t.Fatalf("%s point completed no multicasts", m)
			}
			if p.UnicastCI == 0 {
				t.Fatalf("%s point has no CI whisker under replication: %+v", m, p)
			}
		}
	}
	// Back-compat arrays mirror the curves for the legacy pair.
	if !reflect.DeepEqual(out.Quarc, out.Curves["quarc"]) ||
		!reflect.DeepEqual(out.Spidergon, out.Curves["spidergon"]) {
		t.Fatal("legacy quarc/spidergon arrays diverge from the curves map")
	}
	// Point progress events must name every model in the set.
	seen := map[string]bool{}
	for _, e := range collectEvents(t, ts, job.ID) {
		if e.Type == "point" {
			seen[e.Topo] = true
		}
	}
	for _, m := range req.Models {
		if !seen[m] {
			t.Errorf("no point event for model %q", m)
		}
	}
}

// Multicast and model-set validation at the API boundary.
func TestNWayAndMulticastValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		path string
		body string
	}{
		{"/v1/runs", `{"n":16,"rate":0.01,"mcast_frac":1.5,"mcast_size":3}`},
		{"/v1/runs", `{"n":16,"rate":0.01,"mcast_frac":0.2}`},
		{"/v1/runs", `{"n":16,"rate":0.01,"mcast_size":3}`},
		{"/v1/runs", `{"n":16,"rate":0.01,"mcast_frac":0.2,"mcast_size":1}`},
		{"/v1/runs", `{"n":16,"rate":0.01,"mcast_frac":0.2,"mcast_size":16}`},
		{"/v1/panels", `{"n":16,"models":["quarc","nope"]}`},
		{"/v1/panels", `{"n":16,"models":["quarc","quarc"]}`},
		{"/v1/panels", `{"n":12,"models":["mesh"]}`},
		{"/v1/panels", `{"n":16,"mcast_frac":0.2}`},
		{"/v1/panels", `{"n":16,"mcast_frac":0.2,"mcast_size":16}`},
		{"/v1/panels", `{"n":16,"mcast_size":4}`},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s: status %d, want 400", c.path, c.body, resp.StatusCode)
		}
	}
}

package service

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"quarc/internal/experiments"
)

// schedJob builds a bare job for scheduler unit tests (no work, no sinks).
func schedJob(id string, class Class) *Job {
	return newJob(id, "run", "k-"+id, nil, jobWork{}, class, nil, nil)
}

// waitRunning polls until the scheduler reports n executing jobs.
func waitRunning(t *testing.T, s *Scheduler, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Running() != n {
		if time.Now().After(deadline) {
			t.Fatalf("running=%d, want %d", s.Running(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// The weighted-fair pick: interactive jobs go first, but batch work waiting
// through interactiveWeight consecutive interactive picks forces a batch
// pick — priority with a hard no-starvation bound of at least
// 1/(interactiveWeight+1) of the dequeues.
func TestSchedulerWeightedFairOrder(t *testing.T) {
	var mu sync.Mutex
	var order []string
	gate := make(chan struct{})
	var wg sync.WaitGroup
	exec := func(j *Job) {
		if j.ID == "gate" {
			<-gate
			return
		}
		mu.Lock()
		order = append(order, j.ID)
		mu.Unlock()
		wg.Done()
	}
	s := NewScheduler(1, 32, exec)
	defer s.Close()

	// Park the single executor so every later enqueue lands in the queues
	// and the dequeue order is decided by pickLocked alone.
	if err := s.Enqueue(schedJob("gate", ClassInteractive)); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, 1)

	var jobs []*Job
	for i := 1; i <= 8; i++ {
		jobs = append(jobs, schedJob(fmt.Sprintf("I%d", i), ClassInteractive))
	}
	batch := []*Job{schedJob("B1", ClassBatch), schedJob("B2", ClassBatch)}
	// Enqueue batch first so it is always "waiting" during interactive picks.
	for _, j := range batch {
		wg.Add(1)
		if err := s.Enqueue(j); err != nil {
			t.Fatal(err)
		}
	}
	for _, j := range jobs {
		wg.Add(1)
		if err := s.Enqueue(j); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	wg.Wait()

	want := []string{"I1", "I2", "I3", "B1", "I4", "I5", "I6", "B2", "I7", "I8"}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(want) {
		t.Fatalf("executed %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dequeue order %v, want %v", order, want)
		}
	}
}

// Backpressure and shutdown are distinguishable error causes.
func TestSchedulerQueueFullAndClosed(t *testing.T) {
	gate := make(chan struct{})
	s := NewScheduler(1, 2, func(j *Job) { <-gate })
	if err := s.Enqueue(schedJob("running", ClassInteractive)); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, 1)
	if err := s.Enqueue(schedJob("q1", ClassInteractive)); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(schedJob("q2", ClassBatch)); err != nil {
		t.Fatal(err)
	}
	err := s.Enqueue(schedJob("q3", ClassInteractive))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-cap enqueue: %v, want ErrQueueFull", err)
	}
	if s.Depth() != 2 || s.DepthClass(ClassBatch) != 1 {
		t.Fatalf("depth=%d batch=%d", s.Depth(), s.DepthClass(ClassBatch))
	}
	close(gate)
	s.Close()
	if err := s.Enqueue(schedJob("late", ClassInteractive)); !errors.Is(err, ErrSchedClosed) {
		t.Fatalf("post-close enqueue: %v, want ErrSchedClosed", err)
	}
}

// classifyRun admits cheap runs (the analytic cost estimate bounds their
// simulated work) to the interactive class and sends soak-sized runs to
// batch, where they cannot block dashboard queries.
func TestClassifyRun(t *testing.T) {
	quick := experiments.Config{
		Topo: experiments.TopoQuarc, N: 16, MsgLen: 16, Depth: 4, Rate: 0.01,
		Warmup: 2000, Measure: 10000, Drain: 20000, Seed: 1,
	}
	if got := classifyRun(quick, 1); got != ClassInteractive {
		t.Fatalf("paper-default run classified %s, want interactive (cost %g)",
			got, runCost(quick, 1))
	}
	soak := quick
	soak.Measure = 400_000_000
	if got := classifyRun(soak, 1); got != ClassBatch {
		t.Fatalf("400M-cycle soak classified %s, want batch (cost %g)",
			got, runCost(soak, 1))
	}
	// Replication multiplies the estimate: enough replicates push an
	// otherwise-cheap run over the interactive budget.
	if runCost(quick, 50) <= runCost(quick, 1) {
		t.Fatal("replicates do not scale the cost estimate")
	}
	// The analytic models bound the active fraction for uniform traffic, so
	// a lightly loaded run costs less than the same run at saturation.
	hot := quick
	hot.Rate = 0.5
	if runCost(quick, 1) >= runCost(hot, 1) {
		t.Fatalf("low-load cost %g not below saturated cost %g",
			runCost(quick, 1), runCost(hot, 1))
	}
	// Workloads the analytic models do not cover count the whole fabric.
	mcast := quick
	mcast.McastFrac, mcast.McastSize = 0.2, 4
	if runCost(mcast, 1) < runCost(hot, 1) {
		t.Fatal("non-analyzable workload got an activity discount")
	}
}

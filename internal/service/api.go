// Package service turns the simulator into a long-running
// simulation-as-a-service daemon: a stdlib-only JSON HTTP API that accepts
// single-run and figure-panel jobs, executes them on a bounded scheduler over
// the parallel sweep engine, caches results content-addressed by a canonical
// request hash, streams per-point progress as NDJSON, and exposes operational
// metrics. cmd/quarcd wraps it in a process; cmd/quarcload drives it under
// load.
//
// This file defines the wire schema. The same encoding types are used by the
// CLIs' -json output, so a result printed by quarcsim and a result returned
// by quarcd are byte-compatible.
package service

import (
	"fmt"
	"math"
	"strings"

	"quarc/internal/analytic"
	"quarc/internal/experiments"
	"quarc/internal/model"
	"quarc/internal/traffic"
)

// Request guardrails: a serving daemon must bound the work a single request
// can demand. The caps are generous for the paper's configurations (N <= 64,
// tens of thousands of cycles) while keeping one request from monopolising
// the process.
const (
	MaxNodes      = 4096
	MaxMsgLen     = 4096
	MaxReplicates = 256
	MaxWorkers    = 256
	MaxRatePoints = 256
	// MaxTotalCycles bounds warmup+measure+drain of one configuration.
	MaxTotalCycles = 500_000_000
	// MaxJobCycles bounds a whole job's simulated work — design points times
	// per-point cycles — so maxed-out individual knobs cannot be combined
	// into a request that wedges an executor for weeks.
	MaxJobCycles = 4_000_000_000
)

// ParseModel validates a wire-format model name against the registry ("",
// the default, means quarc) and returns its canonical lower-case form. The
// model vocabulary is owned by internal/model: anything registered there is
// a valid wire name, with no list to maintain here.
func ParseModel(name string) (string, error) {
	if name == "" {
		return "quarc", nil
	}
	name = strings.ToLower(name)
	if _, ok := model.Lookup(name); !ok {
		return "", fmt.Errorf("unknown model %q (available: %s)",
			name, strings.Join(model.Names(), ", "))
	}
	return name, nil
}

// ParseTopology is the legacy-enum shim over ParseModel: it resolves the
// six original wire names to their Topology members. Callers that should
// accept any registered model use ParseModel instead.
func ParseTopology(name string) (experiments.Topology, error) {
	canonical, err := ParseModel(name)
	if err != nil {
		return 0, err
	}
	t, ok := experiments.TopologyByName(canonical)
	if !ok {
		return 0, fmt.Errorf("model %q has no legacy topology enum; use the model name directly", canonical)
	}
	return t, nil
}

// ModelJSON is one entry of GET /v1/models (and quarcsim -list-models).
type ModelJSON struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	ExampleN    int    `json:"example_n"`
}

// Models lists the registered models in wire form, sorted by name.
func Models() []ModelJSON {
	all := model.All()
	out := make([]ModelJSON, 0, len(all))
	for _, m := range all {
		out = append(out, ModelJSON{Name: m.Name, Description: m.Description, ExampleN: m.ExampleN})
	}
	return out
}

// patternTable is the source of truth for wire-format pattern names. It is a
// slice, not a map: PatternName walks it in declaration order, so the name a
// pattern reports is deterministic (quarcvet's determinism analyzer caught
// the previous map-iteration version, which could flip between aliases).
var patternTable = []struct {
	name string
	p    traffic.Pattern
}{
	{"uniform", traffic.Uniform},
	{"hotspot", traffic.Hotspot},
	{"antipodal", traffic.Antipodal},
	{"neighbor", traffic.NearestNeighbor},
	{"bitreverse", traffic.BitReverse},
}

var patternNames = func() map[string]traffic.Pattern {
	m := make(map[string]traffic.Pattern, len(patternTable))
	for _, e := range patternTable {
		m[e.name] = e.p
	}
	return m
}()

// ParsePattern resolves a wire-format traffic-pattern name ("" means
// uniform).
func ParsePattern(name string) (traffic.Pattern, error) {
	if name == "" {
		return traffic.Uniform, nil
	}
	if p, ok := patternNames[strings.ToLower(name)]; ok {
		return p, nil
	}
	return 0, fmt.Errorf("unknown pattern %q", name)
}

// PatternName is the wire name of a pattern, resolved through patternTable
// in declaration order so the answer never depends on map iteration.
func PatternName(p traffic.Pattern) string {
	for _, e := range patternTable {
		if e.p == p {
			return e.name
		}
	}
	return fmt.Sprintf("pattern(%d)", int(p))
}

// RunRequest is the body of POST /v1/runs: one simulation configuration,
// optionally replicated. Zero fields take the simulator's defaults.
//
// quarcvet's cachekeypurity analyzer cross-checks every field here against
// the canonical key: add a field and the build fails until you either hash
// it (RunKey) or mark it `//quarc:execonly`.
//
//quarc:wirekey RunKey
type RunRequest struct {
	// Topo is the model's wire name: any name registered with
	// internal/model is accepted (GET /v1/models enumerates them).
	Topo        string  `json:"topo,omitempty"`
	N           int     `json:"n"`
	MsgLen      int     `json:"msglen,omitempty"`
	Beta        float64 `json:"beta,omitempty"`
	Rate        float64 `json:"rate"`
	Pattern     string  `json:"pattern,omitempty"`
	HotspotBias float64 `json:"hotspot_bias,omitempty"`
	// BurstMeanOn/BurstMeanOff switch the workload to the two-state bursty
	// source: mean burst and silence lengths in cycles (both together).
	// Rate stays the long-run mean offered load.
	BurstMeanOn  float64 `json:"burst_mean_on,omitempty"`
	BurstMeanOff float64 `json:"burst_mean_off,omitempty"`
	// McastFrac sends that fraction of the non-broadcast messages as
	// McastSize-target multicasts (both together; see the simulator docs).
	McastFrac  float64 `json:"mcast_frac,omitempty"`
	McastSize  int     `json:"mcast_size,omitempty"`
	Depth      int     `json:"depth,omitempty"`
	Warmup     int64   `json:"warmup,omitempty"`
	Measure    int64   `json:"measure,omitempty"`
	Drain      int64   `json:"drain,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	Replicates int     `json:"replicates,omitempty"`
	// Workers sizes the replicate pool; wall-clock only, never the result.
	//
	//quarc:execonly
	Workers int `json:"workers,omitempty"`
	// StepWorkers sizes the intra-point fabric worker pool (0 = automatic;
	// 1 = serial). Like workers it only changes wall-clock time, never the
	// result, and stays out of the canonical cache key.
	//
	//quarc:execonly
	StepWorkers int `json:"step_workers,omitempty"`
	// DeadlineMs bounds the whole request, queueing included, in
	// milliseconds (0 = none). On expiry an analyzable run is answered
	// instantly from the closed-form analytic model with `degraded: true`
	// and the validation suite's error band instead of an error. Like
	// workers it stays out of the canonical cache key.
	//
	//quarc:execonly
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// Config validates the request and converts it to a normalised simulator
// configuration.
func (r RunRequest) Config() (experiments.Config, error) {
	name, err := ParseModel(r.Topo)
	if err != nil {
		return experiments.Config{}, err
	}
	pat, err := ParsePattern(r.Pattern)
	if err != nil {
		return experiments.Config{}, err
	}
	if r.N <= 0 {
		return experiments.Config{}, fmt.Errorf("n must be positive")
	}
	if r.HotspotBias < 0 || r.HotspotBias > 1 {
		return experiments.Config{}, fmt.Errorf("hotspot_bias %v outside [0,1]", r.HotspotBias)
	}
	cfg := experiments.Config{
		Model: name, N: r.N, MsgLen: r.MsgLen, Beta: r.Beta, Rate: r.Rate,
		Pattern: pat, HotspotBias: r.HotspotBias,
		BurstMeanOn: r.BurstMeanOn, BurstMeanOff: r.BurstMeanOff,
		McastFrac: r.McastFrac, McastSize: r.McastSize, Depth: r.Depth,
		Warmup: r.Warmup, Measure: r.Measure, Drain: r.Drain, Seed: r.Seed,
		StepWorkers: r.StepWorkers,
	}.WithDefaults()
	if err := model.CheckSize(name, cfg.N); err != nil {
		return experiments.Config{}, err
	}
	if err := cfg.ValidateWorkload(); err != nil {
		return experiments.Config{}, err
	}
	switch {
	case cfg.N > MaxNodes:
		return experiments.Config{}, fmt.Errorf("n %d exceeds the limit %d", cfg.N, MaxNodes)
	case cfg.MsgLen > MaxMsgLen:
		return experiments.Config{}, fmt.Errorf("msglen %d exceeds the limit %d", cfg.MsgLen, MaxMsgLen)
	case cfg.Warmup < 0 || cfg.Measure < 0 || cfg.Drain < 0:
		return experiments.Config{}, fmt.Errorf("cycle budgets must be non-negative")
	case cfg.Warmup+cfg.Measure+cfg.Drain > MaxTotalCycles:
		return experiments.Config{}, fmt.Errorf("warmup+measure+drain exceeds the limit %d", MaxTotalCycles)
	case r.Replicates < 0 || r.Replicates > MaxReplicates:
		return experiments.Config{}, fmt.Errorf("replicates %d outside [0,%d]", r.Replicates, MaxReplicates)
	case r.Workers < 0 || r.Workers > MaxWorkers:
		return experiments.Config{}, fmt.Errorf("workers %d outside [0,%d]", r.Workers, MaxWorkers)
	case r.StepWorkers < 0 || r.StepWorkers > MaxWorkers:
		return experiments.Config{}, fmt.Errorf("step_workers %d outside [0,%d]", r.StepWorkers, MaxWorkers)
	case int64(r.replicates())*(cfg.Warmup+cfg.Measure+cfg.Drain) > MaxJobCycles:
		return experiments.Config{}, fmt.Errorf("replicates x cycles exceeds the job limit %d", int64(MaxJobCycles))
	}
	return cfg, nil
}

// replicates returns the effective replicate count.
func (r RunRequest) replicates() int {
	if r.Replicates < 1 {
		return 1
	}
	return r.Replicates
}

// SweepOpts is the wire form of experiments.RunOpts (minus the worker count's
// effect on results: workers only changes wall-clock time). It nests inside
// both PanelRequest and ExploreRequest, so its field directives must satisfy
// the cachekeypurity check against PanelKey and ExploreKey alike.
type SweepOpts struct {
	Warmup  int64 `json:"warmup,omitempty"`
	Measure int64 `json:"measure,omitempty"`
	Drain   int64 `json:"drain,omitempty"`
	// Depth is hashed under its own name by PanelKey and folded into the
	// normalised Depths axis by ExploreKey.
	//
	//quarc:keyfield Depths
	Depth int    `json:"depth,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`
	// Points sizes the implicit rate grid of a panel sweep; explore rejects
	// it at the wire boundary (rates are an explicit axis there), so it is
	// rightly absent from ExploreKey.
	//quarc:allow cachekeypurity: explore rejects opts.points before any work runs, so it cannot reach that key
	Points     int `json:"points,omitempty"`
	Replicates int `json:"replicates,omitempty"`
	//quarc:execonly
	Workers int `json:"workers,omitempty"`
	//quarc:execonly
	StepWorkers int `json:"step_workers,omitempty"`
}

// MaxPanelModels bounds the architectures one panel request may sweep.
const MaxPanelModels = 16

// PanelRequest is the body of POST /v1/panels: one figure panel (a rate
// sweep over a set of architectures), as in the paper's Figs 9-11. An empty
// Models list sweeps the paper's fixed quarc/spidergon pair under its
// pre-existing cache keys.
//
//quarc:wirekey PanelKey
type PanelRequest struct {
	Figure      string    `json:"figure,omitempty"`
	Name        string    `json:"name,omitempty"`
	N           int       `json:"n"`
	MsgLen      int       `json:"msglen,omitempty"`
	Beta        float64   `json:"beta,omitempty"`
	Models      []string  `json:"models,omitempty"`
	Pattern     string    `json:"pattern,omitempty"`
	HotspotBias float64   `json:"hotspot_bias,omitempty"`
	McastFrac   float64   `json:"mcast_frac,omitempty"`
	McastSize   int       `json:"mcast_size,omitempty"`
	Rates       []float64 `json:"rates,omitempty"`
	Opts        SweepOpts `json:"opts,omitempty"`
	// DeadlineMs bounds the whole request in milliseconds (0 = none). Panels
	// have no analytic fallback, so expiry fails the job with "deadline
	// exceeded" rather than degrading.
	//
	//quarc:execonly
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// SpecOpts validates the request and converts it to the sweep engine's
// (PanelSpec, RunOpts) pair. Zero option fields take DefaultOpts values.
func (p PanelRequest) SpecOpts() (experiments.PanelSpec, experiments.RunOpts, error) {
	if p.N <= 0 {
		return experiments.PanelSpec{}, experiments.RunOpts{}, fmt.Errorf("n must be positive")
	}
	pat, err := ParsePattern(p.Pattern)
	if err != nil {
		return experiments.PanelSpec{}, experiments.RunOpts{}, err
	}
	if p.HotspotBias < 0 || p.HotspotBias > 1 {
		return experiments.PanelSpec{}, experiments.RunOpts{}, fmt.Errorf("hotspot_bias %v outside [0,1]", p.HotspotBias)
	}
	if p.N > MaxNodes {
		return experiments.PanelSpec{}, experiments.RunOpts{}, fmt.Errorf("n %d exceeds the limit %d", p.N, MaxNodes)
	}
	if p.MsgLen > MaxMsgLen {
		return experiments.PanelSpec{}, experiments.RunOpts{}, fmt.Errorf("msglen %d exceeds the limit %d", p.MsgLen, MaxMsgLen)
	}
	if len(p.Rates) > MaxRatePoints {
		return experiments.PanelSpec{}, experiments.RunOpts{}, fmt.Errorf("%d rates exceed the limit %d", len(p.Rates), MaxRatePoints)
	}
	if len(p.Models) > MaxPanelModels {
		return experiments.PanelSpec{}, experiments.RunOpts{}, fmt.Errorf("%d models exceed the limit %d", len(p.Models), MaxPanelModels)
	}
	var models []string
	seen := map[string]bool{}
	for _, m := range p.Models {
		name, err := ParseModel(m)
		if err != nil {
			return experiments.PanelSpec{}, experiments.RunOpts{}, err
		}
		if seen[name] {
			return experiments.PanelSpec{}, experiments.RunOpts{}, fmt.Errorf("duplicate model %q", name)
		}
		seen[name] = true
		if err := model.CheckSize(name, p.N); err != nil {
			return experiments.PanelSpec{}, experiments.RunOpts{}, err
		}
		models = append(models, name)
	}
	spec := experiments.PanelSpec{
		Figure: p.Figure, Name: p.Name,
		N: p.N, MsgLen: p.MsgLen, Beta: p.Beta, Models: models,
		Pattern: pat, HotspotBias: p.HotspotBias,
		McastFrac: p.McastFrac, McastSize: p.McastSize,
		Rates: append([]float64(nil), p.Rates...),
	}
	if spec.MsgLen == 0 {
		spec.MsgLen = 16
	}
	switch {
	case spec.McastFrac < 0 || spec.McastFrac > 1:
		return experiments.PanelSpec{}, experiments.RunOpts{}, fmt.Errorf("mcast_frac %v outside [0,1]", spec.McastFrac)
	case spec.McastFrac == 0 && spec.McastSize != 0:
		return experiments.PanelSpec{}, experiments.RunOpts{}, fmt.Errorf("mcast_size %d without mcast_frac", spec.McastSize)
	case spec.McastFrac > 0 && (spec.McastSize < 2 || spec.McastSize > spec.N-1):
		return experiments.PanelSpec{}, experiments.RunOpts{}, fmt.Errorf("mcast_size %d outside [2,%d]", spec.McastSize, spec.N-1)
	}
	def := experiments.DefaultOpts()
	o := p.Opts
	opts := experiments.RunOpts{
		Warmup: o.Warmup, Measure: o.Measure, Drain: o.Drain,
		Depth: o.Depth, Seed: o.Seed, Points: o.Points,
		Replicates: o.Replicates, Workers: o.Workers,
		StepWorkers: o.StepWorkers,
	}
	if opts.Warmup == 0 {
		opts.Warmup = def.Warmup
	}
	if opts.Measure == 0 {
		opts.Measure = def.Measure
	}
	if opts.Drain == 0 {
		opts.Drain = def.Drain
	}
	if opts.Depth == 0 {
		opts.Depth = def.Depth
	}
	if opts.Seed == 0 {
		opts.Seed = def.Seed
	}
	if opts.Points == 0 {
		opts.Points = def.Points
	}
	if opts.Replicates < 1 {
		opts.Replicates = 1
	}
	switch {
	case opts.Warmup < 0 || opts.Measure < 0 || opts.Drain < 0:
		return experiments.PanelSpec{}, experiments.RunOpts{}, fmt.Errorf("cycle budgets must be non-negative")
	case opts.Warmup+opts.Measure+opts.Drain > MaxTotalCycles:
		return experiments.PanelSpec{}, experiments.RunOpts{}, fmt.Errorf("warmup+measure+drain exceeds the limit %d", MaxTotalCycles)
	case opts.Points < 0 || opts.Points > MaxRatePoints:
		return experiments.PanelSpec{}, experiments.RunOpts{}, fmt.Errorf("points %d outside [0,%d]", opts.Points, MaxRatePoints)
	case opts.Replicates > MaxReplicates:
		return experiments.PanelSpec{}, experiments.RunOpts{}, fmt.Errorf("replicates %d exceeds the limit %d", opts.Replicates, MaxReplicates)
	case opts.Workers < 0 || opts.Workers > MaxWorkers:
		return experiments.PanelSpec{}, experiments.RunOpts{}, fmt.Errorf("workers %d outside [0,%d]", opts.Workers, MaxWorkers)
	case opts.StepWorkers < 0 || opts.StepWorkers > MaxWorkers:
		return experiments.PanelSpec{}, experiments.RunOpts{}, fmt.Errorf("step_workers %d outside [0,%d]", opts.StepWorkers, MaxWorkers)
	}
	rates := len(spec.Rates)
	if rates == 0 {
		rates = opts.Points
	}
	if points := int64(len(spec.SweptModels())) * int64(rates) * int64(opts.Replicates); points*(opts.Warmup+opts.Measure+opts.Drain) > MaxJobCycles {
		return experiments.PanelSpec{}, experiments.RunOpts{}, fmt.Errorf("points x replicates x cycles exceeds the job limit %d", int64(MaxJobCycles))
	}
	return spec, opts, nil
}

// ResultJSON is the wire form of one simulation result. Field values are
// pure functions of the configuration and seed, so identical requests
// marshal to identical bytes — the property the result cache relies on.
type ResultJSON struct {
	Topo          string  `json:"topo"`
	N             int     `json:"n"`
	MsgLen        int     `json:"msglen"`
	Beta          float64 `json:"beta"`
	Rate          float64 `json:"rate"`
	Pattern       string  `json:"pattern"`
	BurstMeanOn   float64 `json:"burst_mean_on,omitempty"`
	BurstMeanOff  float64 `json:"burst_mean_off,omitempty"`
	McastFrac     float64 `json:"mcast_frac,omitempty"`
	McastSize     int     `json:"mcast_size,omitempty"`
	Seed          uint64  `json:"seed"`
	UnicastMean   float64 `json:"unicast_mean"`
	UnicastCI     float64 `json:"unicast_ci95"`
	UnicastP50    float64 `json:"unicast_p50"`
	UnicastP95    float64 `json:"unicast_p95"`
	UnicastP99    float64 `json:"unicast_p99"`
	UnicastCount  int64   `json:"unicast_count"`
	BcastMean     float64 `json:"bcast_mean"`
	BcastCI       float64 `json:"bcast_ci95"`
	BcastP50      float64 `json:"bcast_p50"`
	BcastP95      float64 `json:"bcast_p95"`
	BcastP99      float64 `json:"bcast_p99"`
	BcastDelivery float64 `json:"bcast_delivery"`
	BcastCount    int64   `json:"bcast_count"`
	McastCount    int64   `json:"mcast_count,omitempty"`
	Throughput    float64 `json:"throughput"`
	Saturated     bool    `json:"saturated"`
	Leftover      int     `json:"leftover"`
	Duplicates    uint64  `json:"duplicates"`
	Cycles        int64   `json:"cycles"`
}

// EncodeResult converts a measured result to its wire form.
func EncodeResult(r experiments.Result) ResultJSON {
	return ResultJSON{
		Topo:          r.Cfg.ModelName(),
		N:             r.Cfg.N,
		MsgLen:        r.Cfg.MsgLen,
		Beta:          r.Cfg.Beta,
		Rate:          r.Cfg.Rate,
		Pattern:       PatternName(r.Cfg.Pattern),
		BurstMeanOn:   r.Cfg.BurstMeanOn,
		BurstMeanOff:  r.Cfg.BurstMeanOff,
		McastFrac:     r.Cfg.McastFrac,
		McastSize:     r.Cfg.McastSize,
		Seed:          r.Cfg.Seed,
		UnicastMean:   r.UnicastMean,
		UnicastCI:     r.UnicastCI,
		UnicastP50:    r.UnicastP50,
		UnicastP95:    r.UnicastP95,
		UnicastP99:    r.UnicastP99,
		UnicastCount:  r.UnicastCount,
		BcastMean:     r.BcastMean,
		BcastCI:       r.BcastCI,
		BcastP50:      r.BcastP50,
		BcastP95:      r.BcastP95,
		BcastP99:      r.BcastP99,
		BcastDelivery: r.BcastDelivery,
		BcastCount:    r.BcastCount,
		McastCount:    r.McastCount,
		Throughput:    r.Throughput,
		Saturated:     r.Saturated,
		Leftover:      r.Leftover,
		Duplicates:    r.Duplicates,
		Cycles:        r.Cycles,
	}
}

// RunResult is the payload of a completed run job (and of quarcsim -json):
// the replicate aggregate plus, when replicated, the per-replicate results.
//
// Degraded marks the payload as an instant closed-form analytic estimate
// served because the request's deadline expired or the queue shed load:
// Result then carries the model's mean-latency prediction (latency
// percentile, broadcast and count fields are zero — the analytic model does
// not predict them) and ErrorBand quotes the validation suite's measured
// envelope against the simulator. Degraded payloads are never cached, so a
// later identical request gets the exact simulated answer. All three fields
// are omitted on normal payloads, keeping every pre-existing result
// byte-identical.
type RunResult struct {
	Result         ResultJSON   `json:"result"`
	Replicates     []ResultJSON `json:"replicates,omitempty"`
	Degraded       bool         `json:"degraded,omitempty"`
	DegradedReason string       `json:"degraded_reason,omitempty"`
	ErrorBand      float64      `json:"error_band,omitempty"`
}

// EncodeRun converts a replicated run to its wire form — the single encoding
// shared by the daemon's job payloads and quarcsim -json, so both surfaces
// stay byte-compatible by construction.
func EncodeRun(agg experiments.Result, reps []experiments.Result) RunResult {
	out := RunResult{Result: EncodeResult(agg)}
	if len(reps) > 1 {
		for _, r := range reps {
			out.Replicates = append(out.Replicates, EncodeResult(r))
		}
	}
	return out
}

// EncodeDegradedRun builds the degraded analytic answer for a run whose
// exact result can no longer be produced in time: the closed-form model's
// mean-latency prediction in the normal RunResult shape, flagged degraded
// with the stated reason and internal/analytic's validated error band. ok is
// false when the workload sits outside the analytic models' validated domain
// (non-uniform patterns, bursty sources, multicast) or the model is not
// covered — such requests fail instead of answering with an unquantified
// guess. Offered loads past the saturation bound report Saturated with the
// saturation rate as throughput (the M/D/1 mean diverges there).
func EncodeDegradedRun(cfg experiments.Config, reason string) (RunResult, bool) {
	if !analyzableWorkload(cfg) {
		return RunResult{}, false
	}
	pred, ok := analytic.ForModel(cfg.ModelName(), cfg.N, cfg.MsgLen, cfg.Rate)
	if !ok {
		return RunResult{}, false
	}
	res := ResultJSON{
		Topo: cfg.ModelName(), N: cfg.N, MsgLen: cfg.MsgLen, Beta: cfg.Beta,
		Rate: cfg.Rate, Pattern: PatternName(cfg.Pattern), Seed: cfg.Seed,
	}
	if pred.MaxChannelUtil >= 1 || math.IsInf(pred.MeanLatency, 0) || math.IsNaN(pred.MeanLatency) {
		res.Saturated = true
		res.Throughput = pred.SaturationRate
	} else {
		res.UnicastMean = pred.MeanLatency
		res.Throughput = cfg.Rate
	}
	return RunResult{
		Result:         res,
		Degraded:       true,
		DegradedReason: reason,
		ErrorBand:      analytic.ErrorBand,
	}, true
}

// PanelResultJSON is the payload of a completed panel job (and of
// quarcbench -json): the replicate-aggregated sweep of the panel's model
// set. Legacy requests (no models field) keep the exact pre-N-way payload:
// quarc/spidergon arrays and no models/curves keys. N-way requests carry
// the swept model list in curve order plus one curve per model, with the
// quarc/spidergon arrays still populated when those models are in the set
// so pre-N-way consumers keep working.
type PanelResultJSON struct {
	Figure string  `json:"figure,omitempty"`
	Name   string  `json:"name,omitempty"`
	N      int     `json:"n"`
	MsgLen int     `json:"msglen"`
	Beta   float64 `json:"beta"`
	// Pattern is omitted for the paper's uniform workload, keeping
	// pre-existing panel payloads byte-identical.
	Pattern     string                  `json:"pattern,omitempty"`
	HotspotBias float64                 `json:"hotspot_bias,omitempty"`
	McastFrac   float64                 `json:"mcast_frac,omitempty"`
	McastSize   int                     `json:"mcast_size,omitempty"`
	Models      []string                `json:"models,omitempty"`
	Rates       []float64               `json:"rates"`
	Replicates  int                     `json:"replicates"`
	Quarc       []ResultJSON            `json:"quarc,omitempty"`
	Spidergon   []ResultJSON            `json:"spidergon,omitempty"`
	Curves      map[string][]ResultJSON `json:"curves,omitempty"`
}

// EncodePanel converts a measured panel to its wire form.
func EncodePanel(pr experiments.PanelResult) PanelResultJSON {
	out := PanelResultJSON{
		Figure: pr.Spec.Figure, Name: pr.Spec.Name,
		N: pr.Spec.N, MsgLen: pr.Spec.MsgLen, Beta: pr.Spec.Beta,
		McastFrac: pr.Spec.McastFrac, McastSize: pr.Spec.McastSize,
		Rates:      append([]float64(nil), pr.RatesSwept...),
		Replicates: pr.Replicates,
	}
	if pr.Spec.Pattern != traffic.Uniform || pr.Spec.HotspotBias != 0 {
		out.Pattern = PatternName(pr.Spec.Pattern)
		out.HotspotBias = pr.Spec.HotspotBias
	}
	encode := func(name string) []ResultJSON {
		var rs []ResultJSON
		for _, r := range pr.Results[name] {
			rs = append(rs, EncodeResult(r))
		}
		return rs
	}
	out.Quarc = encode("quarc")
	out.Spidergon = encode("spidergon")
	if len(pr.Spec.Models) > 0 {
		out.Models = append([]string(nil), pr.Models...)
		out.Curves = make(map[string][]ResultJSON, len(pr.Models))
		for _, name := range pr.Models {
			switch name {
			case "quarc":
				out.Curves[name] = out.Quarc
			case "spidergon":
				out.Curves[name] = out.Spidergon
			default:
				out.Curves[name] = encode(name)
			}
		}
	}
	return out
}

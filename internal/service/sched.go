package service

import (
	"errors"
	"fmt"
	"sync"

	"quarc/internal/analytic"
	"quarc/internal/experiments"
	"quarc/internal/traffic"
)

// Class is a job's scheduling class. Interactive jobs (cheap single runs)
// jump ahead of batch jobs (panels, explores, and any run whose estimated
// work is batch-sized), so a dashboard query is never stuck behind an
// hour-long sweep in the old single FIFO.
type Class int

const (
	ClassInteractive Class = iota
	ClassBatch
	numClasses
)

// String names the class for logs and metrics.
func (c Class) String() string {
	if c == ClassInteractive {
		return "interactive"
	}
	return "batch"
}

// interactiveWeight is the number of consecutive interactive dequeues
// allowed while batch work waits. After that many, the next dequeue is
// forced to take from the batch queue, guaranteeing batch at least
// 1/(interactiveWeight+1) of the executor dequeues under a saturating
// interactive load — priority without starvation.
const interactiveWeight = 3

// Enqueue failure causes, distinguishable with errors.Is so the HTTP layer
// can map backpressure to 503 + Retry-After.
var (
	ErrQueueFull   = errors.New("job queue full")
	ErrSchedClosed = errors.New("scheduler is shutting down")
)

// Scheduler executes jobs on a fixed pool of executor goroutines fed by two
// bounded FIFO queues, one per scheduling class. Executors prefer the
// interactive queue but are forced to the batch queue after
// interactiveWeight consecutive interactive picks made while batch work
// waited (weighted fair pick), so a burst of submissions queues up instead
// of spawning unbounded concurrent simulations, cheap jobs overtake
// long-running sweeps, and sweeps still make progress under any load.
type Scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	closed  bool
	cap     int
	queues  [numClasses][]*Job
	streak  int // consecutive interactive picks while batch waited
	running int
	wg      sync.WaitGroup
}

// NewScheduler starts workers executor goroutines over queues holding at
// most queueCap jobs in total; exec runs one job to a terminal state.
func NewScheduler(workers, queueCap int, exec func(*Job)) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	s := &Scheduler{cap: queueCap}
	s.cond = sync.NewCond(&s.mu)
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				s.mu.Lock()
				for !s.closed && s.queuedLocked() == 0 {
					s.cond.Wait()
				}
				if s.queuedLocked() == 0 {
					s.mu.Unlock()
					return // closed and drained
				}
				j := s.pickLocked()
				s.running++
				s.mu.Unlock()
				exec(j)
				s.mu.Lock()
				s.running--
				s.mu.Unlock()
			}
		}()
	}
	return s
}

func (s *Scheduler) queuedLocked() int {
	return len(s.queues[ClassInteractive]) + len(s.queues[ClassBatch])
}

// pickLocked dequeues the next job under the weighted-fair policy:
// interactive first, except that batch work waiting through
// interactiveWeight consecutive interactive picks forces a batch pick.
func (s *Scheduler) pickLocked() *Job {
	c := ClassInteractive
	switch {
	case len(s.queues[ClassBatch]) > 0 &&
		(len(s.queues[ClassInteractive]) == 0 || s.streak >= interactiveWeight):
		c = ClassBatch
		s.streak = 0
	case len(s.queues[ClassBatch]) > 0:
		s.streak++
	default:
		s.streak = 0
	}
	q := s.queues[c]
	j := q[0]
	q[0] = nil // release the reference for GC; the backing array is reused
	s.queues[c] = q[1:]
	return j
}

// Enqueue submits a job to its class queue; it fails with ErrQueueFull when
// the queues are full (backpressure) and ErrSchedClosed when the scheduler
// is draining.
func (s *Scheduler) Enqueue(j *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSchedClosed
	}
	if s.queuedLocked() >= s.cap {
		return fmt.Errorf("%w (%d pending)", ErrQueueFull, s.cap)
	}
	s.queues[j.class] = append(s.queues[j.class], j)
	s.cond.Signal()
	return nil
}

// Depth returns the number of queued (not yet executing) jobs.
func (s *Scheduler) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queuedLocked()
}

// DepthClass returns the queued jobs of one class.
func (s *Scheduler) DepthClass(c Class) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queues[c])
}

// Running returns the number of jobs currently executing.
func (s *Scheduler) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// Close stops intake and, once the already-queued jobs have drained, stops
// the executors. It blocks until they exit; bound it by cancelling the jobs'
// contexts first if a deadline matters.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// interactiveMaxCost is the weighted router-cycle budget (cycles x nodes x
// estimated active fraction) under which a run job is admitted to the
// interactive class — roughly a second of simulation. The paper-default
// run (N=16, 55k cycles) lands far below it even fully saturated; a
// 400M-cycle soak lands far above.
const interactiveMaxCost = 100e6

// runCost estimates a run job's simulated work in weighted router-cycles.
// The activity-driven stepper only steps routers with buffered work, so at
// low load most of the fabric sleeps; the closed-form models in
// internal/analytic predict how close the offered load sits to the busiest
// channel's saturation point, which bounds that active fraction. Workloads
// the analytic models do not cover (non-uniform patterns, bursty sources,
// multicast) conservatively count the whole fabric active.
func runCost(cfg experiments.Config, replicates int) float64 {
	if replicates < 1 {
		replicates = 1
	}
	cycles := float64(cfg.Warmup + cfg.Measure + cfg.Drain)
	activity := 1.0
	if analyzableWorkload(cfg) {
		if pred, ok := analytic.ForModel(cfg.ModelName(), cfg.N, cfg.MsgLen, cfg.Rate); ok && pred.SaturationRate > 0 {
			u := cfg.Rate / pred.SaturationRate
			switch {
			case u < 0.05:
				u = 0.05 // warmup/drain keep a floor of activity
			case u > 1:
				u = 1
			}
			activity = u
		}
	}
	return float64(replicates) * cycles * float64(cfg.N) * activity
}

// analyzableWorkload reports whether a configuration sits inside the domain
// the closed-form models in internal/analytic are validated for: uniform
// Bernoulli traffic with no hotspot bias, bursty source or multicast. Both
// the admission cost estimator and the degraded-answer path key off it — a
// workload the analytic model has never been checked against must not be
// served as an "estimate with a 10% band".
func analyzableWorkload(cfg experiments.Config) bool {
	return cfg.Pattern == traffic.Uniform && cfg.HotspotBias == 0 &&
		cfg.BurstMeanOn == 0 && cfg.McastFrac == 0
}

// classifyRun assigns a run job its scheduling class from the analytic cost
// estimate. Panels and explores are always batch (they sweep many points by
// construction); single runs are interactive unless their estimated work is
// batch-sized.
func classifyRun(cfg experiments.Config, replicates int) Class {
	if runCost(cfg, replicates) <= interactiveMaxCost {
		return ClassInteractive
	}
	return ClassBatch
}

package service

import (
	"encoding/json"
	"fmt"
	"time"
)

// journalMagic identifies line 1 of a job journal; replay rejects files
// without it (foreign or future-format journals are skipped, not guessed
// at).
const journalMagic = "quarc-job-v1"

// journalHeader is the first NDJSON line of every job journal: enough to
// rebuild the job record — and, through Request, re-validate and re-enqueue
// the work itself — without any other source of truth.
type journalHeader struct {
	Journal string          `json:"journal"`
	ID      string          `json:"id"`
	Kind    string          `json:"kind"`
	Key     string          `json:"key"`
	Created string          `json:"created"`
	Request json.RawMessage `json:"request,omitempty"`
}

// journalEvent is the Job event sink: it mirrors every in-memory event to
// the job's on-disk journal, writing the header lazily before the first
// line. It runs with j.mu held, so journal order always equals the order
// streaming subscribers observe. Terminal events close the journal handle,
// bounding open files by the number of live jobs. Journal I/O errors are
// logged and otherwise ignored — durability degrades, serving does not.
func (s *Server) journalEvent(j *Job, e Event) {
	if s.journal == nil {
		return
	}
	if !j.journaled {
		j.journaled = true
		hdr := journalHeader{
			Journal: journalMagic, ID: j.ID, Kind: j.Kind, Key: j.Key,
			Created: j.created.UTC().Format(time.RFC3339Nano), Request: j.Request,
		}
		if b, err := json.Marshal(hdr); err == nil {
			if err := s.journal.Append(j.ID, b); err != nil {
				s.log.Printf("journal %s: %v", j.ID, err)
			}
		}
	}
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	if err := s.journal.Append(j.ID, b); err != nil {
		s.log.Printf("journal %s: %v", j.ID, err)
	}
	if e.Type == "state" && e.State.terminal() {
		s.journal.CloseJob(j.ID)
	}
}

// recoverJobs rebuilds the job store from the journals on disk, called once
// at boot before the server accepts traffic. Jobs whose journal ends in a
// terminal state come back as finished records (done jobs re-attach their
// result from the disk store, so GET /v1/jobs/{id} serves the original
// bytes); jobs that were queued or running when the daemon died are
// re-validated from their recorded request and re-enqueued, so a crash
// never silently loses accepted work. Unreadable or foreign journals are
// removed.
func (s *Server) recoverJobs() {
	if s.journal == nil {
		return
	}
	ids, err := s.journal.List()
	if err != nil {
		s.log.Printf("recovery: %v", err)
		return
	}
	for _, id := range ids {
		lines, err := s.journal.Replay(id)
		if err != nil {
			// A transient read failure (a flaky disk at boot) must not cost
			// the journal itself: skip it this boot, keep the file.
			s.log.Printf("recovery: journal %s unreadable, skipping: %v", id, err)
			continue
		}
		if len(lines) == 0 {
			s.journal.Remove(id)
			continue
		}
		var hdr journalHeader
		if json.Unmarshal(lines[0], &hdr) != nil || hdr.Journal != journalMagic || hdr.ID != id {
			s.journal.Remove(id)
			continue
		}
		var events []Event
		st := StateQueued
		var cached, degraded bool
		var errMsg string
		var done, total int
		for _, line := range lines[1:] {
			var e Event
			if json.Unmarshal(line, &e) != nil {
				break
			}
			events = append(events, e)
			switch e.Type {
			case "state":
				st, cached, degraded, errMsg = e.State, e.Cached, e.Degraded, e.Error
			case "point", "truncated":
				done, total = e.Done, e.Total
			}
		}
		created, _ := time.Parse(time.RFC3339Nano, hdr.Created)

		if st.terminal() {
			j := restoreJob(id, hdr.Kind, hdr.Key, hdr.Request, events, st,
				cached, degraded, errMsg, done, total, created, ClassBatch, nil, s.journalEvent)
			// Degraded payloads are analytic estimates that were deliberately
			// kept out of the store, so only exact results re-attach here; a
			// recovered degraded job keeps its flag but serves no payload.
			if st == StateDone && !degraded {
				if b, ok := s.disk.Get(hdr.Key); ok {
					j.result = b
				}
			}
			s.store.addRecovered(j)
			s.metrics.jobsRecovered.Add(1)
			continue
		}

		// The daemon died with this job queued or running. A re-run is safe:
		// execution is deterministic and the result only becomes visible via
		// the atomic cache/store write, so at-least-once here is exactly-once
		// to clients.
		work, class, werr := workFor(hdr.Kind, hdr.Request)
		if werr != nil {
			s.log.Printf("recovery: job %s unparseable, dropping: %v", id, werr)
			s.journal.Remove(id)
			continue
		}
		// Progress counters restart at zero: the re-run simulates from scratch
		// and its fresh point events count up from one again. Any deadline_ms
		// the request carried is deliberately not rearmed (restoreJob leaves
		// deadlineAt zero): the budget expired with the daemon that accepted
		// the job, and a correct late answer beats a degraded punctual one
		// for work the client already waited a restart for.
		j := restoreJob(id, hdr.Kind, hdr.Key, hdr.Request, events, StateQueued,
			false, false, "", 0, 0, created, class, s.countOutcome, s.journalEvent)
		j.work = work
		s.store.addRecovered(j)
		j.mu.Lock()
		j.appendEventLocked(Event{Type: "state", State: StateQueued})
		j.mu.Unlock()
		s.metrics.jobsRecovered.Add(1)
		if err := s.sched.Enqueue(j); err != nil {
			j.setState(StateFailed, err.Error())
			continue
		}
		s.log.Printf("recovery: job %s %s re-enqueued (%s)", id, hdr.Kind, class)
	}
}

// workFor re-validates a journaled request body into executable work — the
// same construction path the HTTP handlers use, so recovered jobs behave
// exactly like fresh submissions.
func workFor(kind string, raw json.RawMessage) (jobWork, Class, error) {
	switch kind {
	case "run":
		var req RunRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return jobWork{}, ClassBatch, err
		}
		_, work, class, err := buildRun(req)
		return work, class, err
	case "panel":
		var req PanelRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return jobWork{}, ClassBatch, err
		}
		_, work, class, err := buildPanel(req)
		return work, class, err
	default: // "explore"
		var req ExploreRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return jobWork{}, ClassBatch, err
		}
		_, work, class, err := buildExplore(req)
		return work, class, err
	}
}

// deadlineFor validates a deadline_ms field into the work deadline duration.
func deadlineFor(ms int64) (time.Duration, error) {
	if ms < 0 {
		return 0, fmt.Errorf("deadline_ms %d must be non-negative", ms)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// buildRun validates a run request into its canonical key, executable work
// and scheduling class (interactive unless the analytic cost estimate says
// the run is batch-sized). The deadline rides on the work, never the key:
// identical configurations share cache entries whatever their deadlines.
func buildRun(req RunRequest) (string, jobWork, Class, error) {
	cfg, err := req.Config()
	if err != nil {
		return "", jobWork{}, ClassBatch, err
	}
	deadline, err := deadlineFor(req.DeadlineMs)
	if err != nil {
		return "", jobWork{}, ClassBatch, err
	}
	work := jobWork{run: &runWork{cfg: cfg, replicates: req.replicates(), workers: req.Workers}, deadline: deadline}
	return RunKey(cfg, req.replicates()), work, classifyRun(cfg, req.replicates()), nil
}

// buildPanel validates a panel request; panels sweep many points by
// construction, so they are always batch class.
func buildPanel(req PanelRequest) (string, jobWork, Class, error) {
	spec, opts, err := req.SpecOpts()
	if err != nil {
		return "", jobWork{}, ClassBatch, err
	}
	deadline, err := deadlineFor(req.DeadlineMs)
	if err != nil {
		return "", jobWork{}, ClassBatch, err
	}
	work := jobWork{panel: &panelWork{spec: spec, opts: opts}, deadline: deadline}
	return PanelKey(spec, opts), work, ClassBatch, nil
}

// buildExplore validates an explore request; explores are always batch
// class.
func buildExplore(req ExploreRequest) (string, jobWork, Class, error) {
	spec, opts, exp, err := req.SpecOpts()
	if err != nil {
		return "", jobWork{}, ClassBatch, err
	}
	deadline, err := deadlineFor(req.DeadlineMs)
	if err != nil {
		return "", jobWork{}, ClassBatch, err
	}
	work := jobWork{explore: &exploreWork{spec: spec, opts: opts, points: len(exp.Points), deduped: exp.Deduped}, deadline: deadline}
	return ExploreKey(spec, opts), work, ClassBatch, nil
}

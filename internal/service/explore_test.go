package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// tinyExplore is an exploration small enough for unit tests: a 2-model
// lattice over an 8-node network, two rates, a few hundred cycles per point.
func tinyExplore() ExploreRequest {
	return ExploreRequest{
		Models: []string{"quarc", "spidergon"},
		Ns:     []int{8},
		Rates:  []float64{0.002, 0.004},
		MsgLen: 4,
		Opts:   SweepOpts{Warmup: 100, Measure: 400, Drain: 4000, Seed: 7, Replicates: 2},
	}
}

func decodeExplore(t *testing.T, job JobJSON) ExploreResultJSON {
	t.Helper()
	if job.State != StateDone {
		t.Fatalf("job state %s (error %q), want done", job.State, job.Error)
	}
	var out ExploreResultJSON
	if err := json.Unmarshal(job.Result, &out); err != nil {
		t.Fatalf("decode explore payload: %v\n%s", err, job.Result)
	}
	return out
}

func TestExploreEndpoint(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2})
	job := submitWait(t, ts, "/v1/explore", tinyExplore())
	out := decodeExplore(t, job)

	if out.LatticePoints != 4 || len(out.Points) != 4 {
		t.Fatalf("lattice has %d/%d points, want 4", out.LatticePoints, len(out.Points))
	}
	if len(out.Front) == 0 {
		t.Fatal("empty Pareto front")
	}
	onFront := map[int]bool{}
	for _, i := range out.Front {
		if i < 0 || i >= len(out.Points) {
			t.Fatalf("front index %d out of range", i)
		}
		onFront[i] = true
	}
	for i, p := range out.Points {
		if p.OnFront != onFront[i] {
			t.Errorf("point %d on_front=%v but front list says %v", i, p.OnFront, onFront[i])
		}
		if p.OnFront && p.DominatedBy != nil {
			t.Errorf("front point %d carries dominated_by %d", i, *p.DominatedBy)
		}
		if !p.OnFront {
			if p.DominatedBy == nil {
				t.Errorf("dominated point %d has no witness", i)
			} else if !onFront[*p.DominatedBy] {
				t.Errorf("point %d's witness %d is not on the front", i, *p.DominatedBy)
			}
		}
		// Both lattice models have calibrated switch models.
		if !p.CostKnown || p.CostSlices <= 0 {
			t.Errorf("point %d (%s): cost_known=%v slices=%d", i, p.Model, p.CostKnown, p.CostSlices)
		}
		if p.Result.N != 8 || p.Result.Topo != p.Model {
			t.Errorf("point %d embeds result for %s/%d, want %s/8", i, p.Result.Topo, p.Result.N, p.Model)
		}
	}
	if out.Replicates != 2 || out.CostWidth != 32 || out.MsgLen != 4 {
		t.Errorf("normalised echo wrong: %+v", out)
	}
	// The payload must never leak execution provenance.
	if bytes.Contains(job.Result, []byte(`"cached"`)) {
		t.Error("explore payload contains a cached flag; payloads must be pure functions of the request")
	}
	snap := svc.Snapshot()
	if snap.ExplorePointsExpanded != 4 {
		t.Errorf("ExplorePointsExpanded %d, want 4", snap.ExplorePointsExpanded)
	}
	if snap.PointsSimulated != 8 { // 4 points x 2 replicates
		t.Errorf("PointsSimulated %d, want 8", snap.PointsSimulated)
	}
}

// TestExploreRepeatServedFromCacheWithZeroSimulation is the acceptance
// criterion: an identical re-POST answers from the cache with zero points
// re-simulated, byte-identical to the first payload.
func TestExploreRepeatServedFromCacheWithZeroSimulation(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2})
	first := submitWait(t, ts, "/v1/explore", tinyExplore())
	decodeExplore(t, first)
	before := svc.Snapshot()

	second := submitWait(t, ts, "/v1/explore", tinyExplore())
	decodeExplore(t, second)
	if !second.Cached {
		t.Error("identical re-POST not served from cache")
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Error("cached explore payload differs from the original bytes")
	}
	after := svc.Snapshot()
	if after.PointsSimulated != before.PointsSimulated {
		t.Errorf("re-POST simulated %d points, want 0", after.PointsSimulated-before.PointsSimulated)
	}
	if after.CachedResponses != before.CachedResponses+1 {
		t.Errorf("CachedResponses went %d -> %d, want +1", before.CachedResponses, after.CachedResponses)
	}
}

// TestExploreOverlapHitsPerPointCache submits a second lattice overlapping
// the first on one rate: the shared points must be answered from the
// per-point cache (counted, and flagged in the progress events) while only
// the new points simulate.
func TestExploreOverlapHitsPerPointCache(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2})
	submitWait(t, ts, "/v1/explore", tinyExplore())
	before := svc.Snapshot()

	overlap := tinyExplore()
	overlap.Rates = []float64{0.004, 0.006} // 0.004 x 2 models already cached
	job := submitWait(t, ts, "/v1/explore", overlap)
	out := decodeExplore(t, job)
	if len(out.Points) != 4 {
		t.Fatalf("overlap lattice has %d points, want 4", len(out.Points))
	}
	after := svc.Snapshot()
	if got := after.ExplorePointsCacheHit - before.ExplorePointsCacheHit; got != 2 {
		t.Errorf("per-point cache hits %d, want 2", got)
	}
	if got := after.PointsSimulated - before.PointsSimulated; got != 4 { // 2 new points x 2 replicates
		t.Errorf("overlap simulated %d replicates, want 4", got)
	}

	// The cached points are flagged in the NDJSON progress stream.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	cached, points := 0, 0
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		if ev.Type == "point" {
			points++
			if ev.Cached {
				cached++
			}
		}
	}
	if points != 4 || cached != 2 {
		t.Errorf("event stream has %d point events (%d cached), want 4 and 2", points, cached)
	}
}

// TestExploreSharesCacheWithRuns asserts the per-point keys are the exact
// run keys: after an explore, an identical single-configuration POST
// /v1/runs answers from the cache without simulating.
func TestExploreSharesCacheWithRuns(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2})
	submitWait(t, ts, "/v1/explore", tinyExplore())
	before := svc.Snapshot()

	run := RunRequest{Topo: "spidergon", N: 8, MsgLen: 4, Rate: 0.004,
		Warmup: 100, Measure: 400, Drain: 4000, Seed: 7, Replicates: 2}
	job := submitWait(t, ts, "/v1/runs", run)
	if job.State != StateDone {
		t.Fatalf("run state %s: %s", job.State, job.Error)
	}
	if !job.Cached {
		t.Error("run identical to an explored point was not served from cache")
	}
	after := svc.Snapshot()
	if after.PointsSimulated != before.PointsSimulated {
		t.Error("run re-simulated a point the explore already computed")
	}
	var rr RunResult
	if err := json.Unmarshal(job.Result, &rr); err != nil {
		t.Fatalf("decode run payload: %v", err)
	}
	if rr.Result.Topo != "spidergon" || rr.Result.Rate != 0.004 || len(rr.Replicates) != 2 {
		t.Errorf("cached run payload wrong: %+v", rr.Result)
	}
}

func TestExploreValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		body any
		want string
	}{
		{"empty lattice", ExploreRequest{}, "empty lattice"},
		{"unknown model", ExploreRequest{Models: []string{"hypercube"}, Ns: []int{8}, Rates: []float64{0.01}}, "unknown model"},
		{"over the lattice cap", ExploreRequest{
			Models: []string{"quarc", "spidergon"}, Ns: []int{8, 12, 16, 20, 24, 28, 32, 36},
			Rates: make([]float64, 64), Depths: []int{2, 4, 8},
		}, "lattice expands to 3072 points, exceeding the limit 2048"},
		{"all sizes invalid", ExploreRequest{Models: []string{"quarc"}, Ns: []int{7}, Rates: []float64{0.01}}, "0 valid points"},
		{"points opt meaningless", ExploreRequest{Models: []string{"quarc"}, Ns: []int{8}, Rates: []float64{0.01},
			Opts: SweepOpts{Points: 5}}, "does not apply"},
		{"duplicate model", ExploreRequest{Models: []string{"quarc", "quarc"}, Ns: []int{8}, Rates: []float64{0.01}}, "duplicate model"},
		{"bad mcast", ExploreRequest{Models: []string{"quarc"}, Ns: []int{8}, Rates: []float64{0.01},
			Mcast: []McastJSON{{Frac: 0.2, Size: 1}}}, "at least 2"},
		{"unknown field", map[string]any{"models": []string{"quarc"}, "lattice": true}, "unknown field"},
	}
	for _, c := range cases {
		body := c.body
		if req, ok := body.(ExploreRequest); ok && len(req.Rates) == 64 {
			for i := range req.Rates {
				req.Rates[i] = 0.001 * float64(i+1)
			}
			body = req
		}
		resp, data := postJSON(t, ts.URL+"/v1/explore", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s, want 400 (%s)", c.name, resp.Status, data)
			continue
		}
		if !strings.Contains(string(data), c.want) {
			t.Errorf("%s: error %s does not mention %q", c.name, data, c.want)
		}
	}
}

func TestExploreCancellation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// Big enough that it cannot finish before the cancel lands.
	big := ExploreRequest{
		Models: []string{"quarc", "spidergon"},
		Ns:     []int{32, 64},
		Rates:  []float64{0.002, 0.004, 0.008, 0.016},
		Opts:   SweepOpts{Warmup: 5000, Measure: 100000, Drain: 200000, Seed: 7},
	}
	resp, data := postJSON(t, ts.URL+"/v1/explore", big)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, data)
	}
	var job JobJSON
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatal(err)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/jobs/"+job.ID+"/cancel", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %s", resp.Status)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, b := postJSONGet(t, ts.URL+"/v1/jobs/"+job.ID+"?wait=1")
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll: %s", r.Status)
		}
		if err := json.Unmarshal(b, &job); err != nil {
			t.Fatal(err)
		}
		if State(job.State).terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after cancel", job.State)
		}
	}
	if job.State != StateCancelled {
		t.Fatalf("job state %s, want cancelled", job.State)
	}
	if len(job.Result) != 0 {
		t.Error("cancelled explore carries a result payload")
	}
}

// postJSONGet is a GET that returns status and body (the poll loop above).
func postJSONGet(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

package service

import (
	"fmt"
	"time"
)

// watchdog cancels running jobs that have made no point progress for stall,
// attaching a diagnosis so the job fails loudly instead of wedging an
// executor forever (a stuck disk, a livelocked configuration, a bug). It
// runs until the server's base context is cancelled. Progress is the
// per-point callback heartbeat: single-replicate runs only beat at start and
// finish, so stall must comfortably exceed the longest legitimate point
// (quarcd defaults it to 10 minutes).
func (s *Server) watchdog(stall time.Duration) {
	tick := stall / 4
	if tick < time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
		}
		now := time.Now()
		for _, j := range s.store.List() {
			last, done, total, running := j.progressAt()
			if !running || now.Sub(last) < stall {
				continue
			}
			msg := fmt.Sprintf("watchdog: no point progress for %s (done %d/%d)",
				now.Sub(last).Round(time.Second), done, total)
			if j.kill(msg) {
				s.metrics.watchdogCancels.Add(1)
				s.log.Printf("job %s %s", j.ID, msg)
			}
		}
	}
}

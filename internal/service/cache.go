package service

import (
	"container/list"
	"sync"
)

// Cache is an LRU mapping canonical request keys to encoded result
// payloads, bounded by total payload bytes (not entries) so a handful of
// giant panel results cannot claim the memory budget a thousand small run
// results were sized for. It is the daemon's hot path: a repeated request
// costs one map lookup instead of a simulation, and because the stored
// bytes are the canonical encoding of a deterministic result, every hit is
// bit-identical to the original computation. When the server runs with a
// data directory, this cache is the read-through/write-through memory tier
// over the disk store in internal/store.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	hits     uint64
	misses   uint64
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache builds a cache bounded to maxBytes of payload (minimum 1).
func NewCache(maxBytes int64) *Cache {
	if maxBytes < 1 {
		maxBytes = 1
	}
	return &Cache{maxBytes: maxBytes, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the payload stored under key, marking it most recently used.
func (c *Cache) Get(key string) ([]byte, bool) { return c.get(key, true) }

// Probe is Get for internal re-checks (e.g. at job dequeue): a hit still
// counts — it saved a simulation — but an absence is not recorded as a miss,
// so the hit rate keeps measuring client-visible lookups only.
func (c *Cache) Probe(key string) ([]byte, bool) { return c.get(key, false) }

func (c *Cache) get(key string, countMiss bool) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		if countMiss {
			c.misses++
		}
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores the payload under key, evicting least recently used entries
// until the cache fits its byte budget again (the entry just stored is
// never evicted, even if it alone exceeds the budget). The caller must not
// mutate val afterwards.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
		c.bytes += int64(len(val))
	}
	for c.bytes > c.maxBytes && c.ll.Len() > 1 {
		oldest := c.ll.Back()
		e := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.val))
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the total payload bytes resident in the cache.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

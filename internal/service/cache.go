package service

import (
	"container/list"
	"sync"
)

// Cache is a bounded LRU mapping canonical request keys to encoded result
// payloads. It is the daemon's hot path: a repeated request costs one map
// lookup instead of a simulation, and because the stored bytes are the
// canonical encoding of a deterministic result, every hit is bit-identical
// to the original computation.
type Cache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache builds a cache bounded to capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the payload stored under key, marking it most recently used.
func (c *Cache) Get(key string) ([]byte, bool) { return c.get(key, true) }

// Probe is Get for internal re-checks (e.g. at job dequeue): a hit still
// counts — it saved a simulation — but an absence is not recorded as a miss,
// so the hit rate keeps measuring client-visible lookups only.
func (c *Cache) Probe(key string) ([]byte, bool) { return c.get(key, false) }

func (c *Cache) get(key string, countMiss bool) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		if countMiss {
			c.misses++
		}
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores the payload under key, evicting the least recently used entry
// when over capacity. The caller must not mutate val afterwards.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

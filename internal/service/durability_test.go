package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"quarc/internal/analytic"
)

// quickRun is a sub-second single-point run for durability tests.
func quickRun() RunRequest {
	return RunRequest{N: 8, MsgLen: 4, Rate: 0.002, Warmup: 100, Measure: 300, Drain: 3000, Seed: 77}
}

// A daemon restarted over the same data directory must serve the previous
// result byte-identically with zero points re-simulated — answered from the
// disk store through the read-through cache — recover the finished job
// record, and replay its full event stream.
func TestRestartServesByteIdenticalResultFromDisk(t *testing.T) {
	dir := t.TempDir()
	svc1, ts1 := newTestServer(t, Config{Workers: 1, DataDir: dir})
	first := submitWait(t, ts1, "/v1/runs", quickRun())
	if first.State != StateDone || first.Cached {
		t.Fatalf("first run: state=%s cached=%v (%s)", first.State, first.Cached, first.Error)
	}
	if svc1.Snapshot().PointsSimulated == 0 {
		t.Fatal("first run recorded no simulated points")
	}
	ts1.Close()
	svc1.Close()

	svc2, ts2 := newTestServer(t, Config{Workers: 1, DataDir: dir})
	if n := svc2.Snapshot().JobsRecovered; n != 1 {
		t.Fatalf("recovered %d jobs, want 1", n)
	}

	// The finished job record survived the restart, result included.
	rec := waitState(t, ts2, first.ID, StateDone, 5*time.Second)
	if !bytes.Equal(rec.Result, first.Result) {
		t.Fatalf("recovered job result differs:\nold: %s\nnew: %s", first.Result, rec.Result)
	}

	// Its event stream replays the full pre-crash prefix.
	events := collectEvents(t, ts2, first.ID)
	if len(events) == 0 || events[0].Type != "state" || events[0].State != StateQueued {
		t.Fatalf("replayed events start with %+v, want queued", events)
	}
	last := events[len(events)-1]
	if last.Type != "state" || last.State != StateDone {
		t.Fatalf("replayed events end with %+v, want done", last)
	}
	var points int
	for _, e := range events {
		if e.Type == "point" {
			points++
		}
	}
	if points != 1 {
		t.Fatalf("replayed %d point events, want 1", points)
	}

	// ?from=N resumes mid-stream for reconnecting clients.
	tail := collectEventsFrom(t, ts2, first.ID, 1)
	if len(tail) != len(events)-1 {
		t.Fatalf("from=1 replayed %d events, want %d", len(tail), len(events)-1)
	}
	if len(tail) > 0 && tail[len(tail)-1] != events[len(events)-1] {
		t.Fatal("from=1 tail diverges from the full stream")
	}

	// The same request is answered byte-identically from disk: no simulation.
	second := submitWait(t, ts2, "/v1/runs", quickRun())
	if second.State != StateDone || !second.Cached {
		t.Fatalf("post-restart run: state=%s cached=%v", second.State, second.Cached)
	}
	if !bytes.Equal(second.Result, first.Result) {
		t.Fatal("post-restart result not byte-identical")
	}
	snap := svc2.Snapshot()
	if snap.PointsSimulated != 0 {
		t.Fatalf("restart re-simulated %d points, want 0", snap.PointsSimulated)
	}
	if snap.StoreHits == 0 {
		t.Fatal("disk store recorded no read-through hits")
	}
	if snap.StoreEntries == 0 || snap.StoreBytes == 0 {
		t.Fatalf("disk store empty after restart: %+v", snap)
	}
}

// collectEventsFrom replays a finished job's NDJSON stream starting at
// event index n (the ?from=N reconnect path).
func collectEventsFrom(t *testing.T, ts *httptest.Server, id string, n int) []Event {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events?from=%d", ts.URL, id, n))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// A job whose journal ends queued or running (the daemon died mid-job) must
// be re-validated from its journaled request and re-enqueued at boot,
// running to completion as if resubmitted.
func TestCrashedJobReEnqueuedAtBoot(t *testing.T) {
	dir := t.TempDir()
	req := quickRun()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	hdr, err := json.Marshal(journalHeader{
		Journal: journalMagic, ID: "j000042", Kind: "run", Key: RunKey(cfg, 1),
		Created: time.Now().UTC().Format(time.RFC3339Nano), Request: raw,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The journal a SIGKILL mid-run leaves behind: header, queued, running —
	// and no terminal line.
	journalDir := filepath.Join(dir, "journal")
	if err := os.MkdirAll(journalDir, 0o755); err != nil {
		t.Fatal(err)
	}
	content := fmt.Sprintf("%s\n%s\n%s\n", hdr,
		`{"type":"state","state":"queued"}`, `{"type":"state","state":"running"}`)
	if err := os.WriteFile(filepath.Join(journalDir, "j000042.ndjson"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}

	svc, ts := newTestServer(t, Config{Workers: 1, DataDir: dir})
	done := waitState(t, ts, "j000042", StateDone, 15*time.Second)
	if len(done.Result) == 0 {
		t.Fatal("re-enqueued job finished without a result")
	}
	snap := svc.Snapshot()
	if snap.JobsRecovered != 1 {
		t.Fatalf("recovered %d jobs, want 1", snap.JobsRecovered)
	}
	if snap.PointsSimulated == 0 {
		t.Fatal("re-enqueued job simulated nothing")
	}
	// New submissions never collide with the recovered ID.
	fresh := submitWait(t, ts, "/v1/runs", RunRequest{
		N: 8, MsgLen: 4, Rate: 0.002, Warmup: 100, Measure: 300, Drain: 3000, Seed: 78,
	})
	if fresh.ID == "j000042" {
		t.Fatal("fresh job reused the recovered job's ID")
	}
	// The journal now carries the whole story: the pre-crash prefix plus the
	// re-run's events.
	events := collectEvents(t, ts, "j000042")
	var queued int
	for _, e := range events {
		if e.Type == "state" && e.State == StateQueued {
			queued++
		}
	}
	if queued != 2 {
		t.Fatalf("%d queued events after recovery, want 2 (pre-crash + re-enqueue)", queued)
	}
}

// An interactive run submitted behind a queued batch panel must overtake
// it on the single executor: priority scheduling bounds interactive latency
// under batch load, and the batch job still completes (no starvation).
func TestInteractiveOvertakesQueuedBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// A saturated panel occupies the executor for hundreds of milliseconds.
	slowPanel := func(name string) PanelRequest {
		return PanelRequest{
			Figure: "prio", Name: name, N: 16, MsgLen: 16, Beta: 0.05,
			Rates: []float64{0.2},
			Opts:  SweepOpts{Warmup: 100, Measure: 40000, Drain: 4000, Seed: 7},
		}
	}
	_, d1 := postJSON(t, ts.URL+"/v1/panels", slowPanel("p1"))
	var p1 JobJSON
	if err := json.Unmarshal(d1, &p1); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts, p1.ID, StateRunning, 10*time.Second)

	// While p1 runs: queue a second batch panel, then an interactive run.
	_, d2 := postJSON(t, ts.URL+"/v1/panels", slowPanel("p2"))
	var p2 JobJSON
	if err := json.Unmarshal(d2, &p2); err != nil {
		t.Fatal(err)
	}
	_, d3 := postJSON(t, ts.URL+"/v1/runs", quickRun())
	var run JobJSON
	if err := json.Unmarshal(d3, &run); err != nil {
		t.Fatal(err)
	}

	runDone := waitState(t, ts, run.ID, StateDone, 60*time.Second)
	p2Done := waitState(t, ts, p2.ID, StateDone, 120*time.Second) // no starvation
	runStart, err := time.Parse(time.RFC3339Nano, runDone.Started)
	if err != nil {
		t.Fatal(err)
	}
	p2Start, err := time.Parse(time.RFC3339Nano, p2Done.Started)
	if err != nil {
		t.Fatal(err)
	}
	if !runStart.Before(p2Start) {
		t.Fatalf("interactive run started %s, after batch panel %s: FIFO behaviour, not priority",
			runDone.Started, p2Done.Started)
	}
}

// Queue backpressure answers 503 with a Retry-After hint and counts the
// rejection.
func TestQueueFullShedsRunsDegradedAndPanels503(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	long := RunRequest{N: 8, MsgLen: 4, Rate: 0.002, Warmup: 100, Measure: 400_000_000, Seed: 50}
	_, d1 := postJSON(t, ts.URL+"/v1/runs", long)
	var running JobJSON
	if err := json.Unmarshal(d1, &running); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts, running.ID, StateRunning, 10*time.Second)

	long.Seed = 51 // distinct key: occupies the single queue slot
	if resp, body := postJSON(t, ts.URL+"/v1/runs", long); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queue-filling submission: %s: %s", resp.Status, body)
	}

	// An analyzable run turned away by the full queue is shed with an
	// instant degraded analytic answer, not a 503.
	long.Seed = 52 // distinct key: over capacity
	resp, body := postJSON(t, ts.URL+"/v1/runs", long)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("over-capacity run: %s: %s", resp.Status, body)
	}
	var shed JobJSON
	if err := json.Unmarshal(body, &shed); err != nil {
		t.Fatal(err)
	}
	if shed.State != StateDone || !shed.Degraded {
		t.Fatalf("shed run state=%s degraded=%v, want done degraded", shed.State, shed.Degraded)
	}
	var rr RunResult
	if err := json.Unmarshal(shed.Result, &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Degraded || rr.ErrorBand != analytic.ErrorBand || rr.DegradedReason == "" {
		t.Fatalf("shed payload degraded=%v band=%v reason=%q", rr.Degraded, rr.ErrorBand, rr.DegradedReason)
	}
	if n := svc.Snapshot().DegradedAnswers; n != 1 {
		t.Fatalf("degraded answers = %d, want 1", n)
	}

	// A panel has no analytic fallback: the full queue still answers 503
	// with Retry-After, and the rejection is counted.
	resp, body = postJSON(t, ts.URL+"/v1/panels", tinyPanel())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity panel: %s: %s", resp.Status, body)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Fatal("503 carries no Retry-After header")
	}
	if !bytes.Contains(body, []byte("queue full")) {
		t.Fatalf("503 body %s does not name the cause", body)
	}
	if n := svc.Snapshot().JobsRejected; n != 1 {
		t.Fatalf("jobs rejected = %d, want 1", n)
	}
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"quarc/internal/experiments"
	"quarc/internal/explore"
	"quarc/internal/faultinject"
	dstore "quarc/internal/store"
)

// Config sizes a Server.
type Config struct {
	// Workers is the number of jobs executing concurrently (each job may
	// additionally fan its sweep points across its own goroutines). 0 means 2.
	Workers int
	// QueueCap bounds the submission queue; over it, POSTs get 503. 0 means 256.
	QueueCap int
	// CacheBytes bounds the in-memory LRU result cache in payload bytes.
	// 0 means 64 MiB.
	CacheBytes int64
	// StoreEntries bounds retained job records. 0 means 4096.
	StoreEntries int
	// DataDir, when non-empty, enables durability: results persist to
	// DataDir/results (content-addressed, byte-bounded by StoreBytes) and
	// every job's event stream to DataDir/journal, so a restarted daemon
	// serves previous results byte-identically without re-simulating and
	// re-enqueues jobs that were queued or running when it died. Empty runs
	// fully in memory.
	DataDir string
	// StoreBytes bounds the on-disk result store in payload bytes. 0 means
	// 1 GiB.
	StoreBytes int64
	// Chaos, when non-nil, injects the plan's deterministic faults (I/O
	// errors, torn writes, latency spikes) into every disk-store and journal
	// filesystem operation — quarcd's -chaos flag. nil is a zero-cost
	// pass-through.
	Chaos *faultinject.Plan
	// WatchdogStall, when positive, cancels running jobs that make no point
	// progress for that long, failing them with a diagnosis. It must
	// comfortably exceed the longest legitimate single point: one-replicate
	// runs report no progress between start and finish.
	WatchdogStall time.Duration
	// BreakerThreshold is the consecutive disk-store failure count that
	// opens the circuit breaker (quarcd then serves memory-cache-only until
	// a backoff probe succeeds). 0 means 5.
	BreakerThreshold int
	// Log receives request and lifecycle lines; nil discards them.
	Log *log.Logger
}

// Breaker backoff bounds: the first open waits about breakerBaseBackoff
// before a half-open probe, doubling per consecutive open up to
// breakerMaxBackoff, both jittered ±50%.
const (
	breakerBaseBackoff = 250 * time.Millisecond
	breakerMaxBackoff  = 15 * time.Second
)

// Server is the simulation service: an http.Handler plus the scheduler,
// store, cache, durability layer and metrics behind it.
type Server struct {
	cfg     Config
	log     *log.Logger
	store   *Store
	cache   *Cache
	metrics *Metrics
	sched   *Scheduler
	mux     *http.ServeMux

	// disk and journal are the durability tier (nil without a DataDir): the
	// cache reads through to disk on memory misses and writes through on
	// fills, and every job event is mirrored to its journal. breaker guards
	// the result store: consecutive failures trip it and quarcd degrades to
	// memory-cache-only until a half-open probe succeeds.
	disk    *dstore.Store
	journal *dstore.Journal
	breaker *Breaker

	// inflight coalesces identical uncached submissions: the first live job
	// per canonical key is the primary (the one that simulates); later
	// identical submissions attach as followers and are settled from the
	// primary's outcome instead of simulating twice.
	coMu     sync.Mutex
	inflight map[string]*coalesceEntry

	baseCtx    context.Context
	baseCancel context.CancelFunc
}

type coalesceEntry struct {
	primary   *Job
	followers []*Job
}

// New assembles a server, recovers any journaled jobs from cfg.DataDir, and
// starts its executor pool.
func New(cfg Config) (*Server, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 2
	}
	if cfg.QueueCap < 1 {
		cfg.QueueCap = 256
	}
	if cfg.CacheBytes < 1 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.StoreEntries < 1 {
		cfg.StoreEntries = 4096
	}
	if cfg.StoreBytes < 1 {
		cfg.StoreBytes = 1 << 30
	}
	if cfg.BreakerThreshold < 1 {
		cfg.BreakerThreshold = 5
	}
	lg := cfg.Log
	if lg == nil {
		lg = log.New(io.Discard, "", 0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg: cfg, log: lg,
		cache:    NewCache(cfg.CacheBytes),
		metrics:  NewMetrics(),
		mux:      http.NewServeMux(),
		inflight: make(map[string]*coalesceEntry),
		breaker:  NewBreaker(cfg.BreakerThreshold, breakerBaseBackoff, breakerMaxBackoff),
		baseCtx:  ctx, baseCancel: cancel,
	}
	if cfg.DataDir != "" {
		fs := faultinject.FS(faultinject.OS{})
		if cfg.Chaos != nil {
			fs = cfg.Chaos.Wrap(fs)
			lg.Printf("CHAOS ENABLED: injecting store faults (%s)", cfg.Chaos.Spec())
		}
		var err error
		s.disk, err = dstore.OpenFS(filepath.Join(cfg.DataDir, "results"), cfg.StoreBytes, fs)
		if err != nil {
			cancel()
			return nil, err
		}
		s.journal, err = dstore.OpenJournalFS(filepath.Join(cfg.DataDir, "journal"), fs)
		if err != nil {
			cancel()
			return nil, err
		}
	}
	// Evicted job records take their journals with them, so journal files
	// track the set of retrievable jobs.
	s.store = NewStore(cfg.StoreEntries, func(j *Job) {
		if s.journal != nil {
			s.journal.Remove(j.ID)
		}
	})
	s.sched = NewScheduler(cfg.Workers, cfg.QueueCap, s.execute)
	s.recoverJobs()
	if cfg.WatchdogStall > 0 {
		go s.watchdog(cfg.WatchdogStall)
	}
	s.mux.HandleFunc("/v1/runs", s.handleRuns)
	s.mux.HandleFunc("/v1/panels", s.handlePanels)
	s.mux.HandleFunc("/v1/explore", s.handleExplore)
	s.mux.HandleFunc("/v1/models", s.handleModels)
	s.mux.HandleFunc("/v1/jobs", s.handleJobList)
	s.mux.HandleFunc("/v1/jobs/", s.handleJob)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s, nil
}

// Handler returns the HTTP surface of the server.
func (s *Server) Handler() http.Handler { return s.mux }

// cacheGet is the client-visible two-tier lookup: memory first, then the
// disk store (read-through — a disk hit refills the memory tier). Disk hits
// are what make a restarted daemon answer with zero points re-simulated.
func (s *Server) cacheGet(key string) ([]byte, bool) {
	if b, ok := s.cache.Get(key); ok {
		return b, true
	}
	return s.diskGet(key)
}

// cacheProbe is cacheGet for internal re-checks: a memory absence is not
// counted as a miss.
func (s *Server) cacheProbe(key string) ([]byte, bool) {
	if b, ok := s.cache.Probe(key); ok {
		return b, true
	}
	return s.diskGet(key)
}

// diskGet reads through the circuit breaker: while the breaker is open the
// disk is not consulted at all (quarcd serves memory-cache-only), and an I/O
// failure on a resident entry — as opposed to a plain miss — counts toward
// opening it. Store failures never surface to clients as errors, only as
// misses.
func (s *Server) diskGet(key string) ([]byte, bool) {
	if s.disk == nil || !s.breaker.Allow() {
		return nil, false
	}
	b, err := s.disk.GetE(key)
	switch {
	case err == nil:
		s.breaker.Success()
		s.metrics.storeHits.Add(1)
		s.cache.Put(key, b)
		return b, true
	case errors.Is(err, dstore.ErrNotFound):
		// Absence is not a fault — but an index miss performs no I/O either,
		// so it is no evidence of health: leave the failure count alone.
		s.breaker.Neutral()
		return nil, false
	default:
		s.breaker.Failure()
		s.metrics.storeFaults.Add(1)
		s.log.Printf("store: %v (breaker %s)", err, s.breaker.State())
		return nil, false
	}
}

// cachePut writes a finished result through both tiers. A disk write
// failure costs durability, not the response; while the breaker is open the
// disk tier is skipped entirely.
func (s *Server) cachePut(key string, val []byte) {
	s.cache.Put(key, val)
	if s.disk == nil || !s.breaker.Allow() {
		return
	}
	if err := s.disk.Put(key, val); err != nil {
		s.breaker.Failure()
		s.metrics.storeFaults.Add(1)
		s.log.Printf("store: %v (breaker %s)", err, s.breaker.State())
		return
	}
	s.breaker.Success()
}

// Snapshot returns the current operational counters.
func (s *Server) Snapshot() MetricsSnapshot {
	hits, misses := s.cache.Stats()
	m := MetricsSnapshot{
		UptimeSeconds:         time.Since(s.metrics.start).Seconds(),
		JobsAccepted:          s.metrics.jobsAccepted.Load(),
		JobsDone:              s.metrics.jobsDone.Load(),
		JobsFailed:            s.metrics.jobsFailed.Load(),
		JobsCancelled:         s.metrics.jobsCancelled.Load(),
		JobsRejected:          s.metrics.jobsRejected.Load(),
		JobsCoalesced:         s.metrics.jobsCoalesced.Load(),
		JobsRecovered:         s.metrics.jobsRecovered.Load(),
		CachedResponses:       s.metrics.cachedResponse.Load(),
		PointsSimulated:       s.metrics.pointsSim.Load(),
		CyclesSimulated:       s.metrics.cyclesSim.Load(),
		ExplorePointsExpanded: s.metrics.explorePointsExpanded.Load(),
		ExplorePointsDeduped:  s.metrics.explorePointsDeduped.Load(),
		ExplorePointsCacheHit: s.metrics.explorePointsCacheHit.Load(),
		CacheHits:             hits,
		CacheMisses:           misses,
		CacheEntries:          s.cache.Len(),
		CacheBytes:            s.cache.Bytes(),
		StoreHits:             s.metrics.storeHits.Load(),
		QueueDepth:            s.sched.Depth(),
		QueueInteractive:      s.sched.DepthClass(ClassInteractive),
		QueueBatch:            s.sched.DepthClass(ClassBatch),
		JobsRunning:           s.sched.Running(),
		DegradedAnswers:       s.metrics.degradedAnswers.Load(),
		WatchdogCancels:       s.metrics.watchdogCancels.Load(),
		PanicsRecovered:       s.metrics.panicsRecovered.Load(),
		StoreFaults:           s.metrics.storeFaults.Load(),
		BreakerState:          s.breaker.State(),
		BreakerOpens:          s.breaker.Opens(),
	}
	if s.disk != nil {
		_, _, ev := s.disk.Stats()
		m.StoreEntries = s.disk.Len()
		m.StoreBytes = s.disk.Bytes()
		m.StoreEvictions = ev
	}
	return m
}

// Drain gracefully shuts the service down: intake stops and the executors
// finish every queued and running job. When ctx expires first, the remaining
// jobs are cancelled and the drain completes with ctx's error. Either way
// the journals are flushed before returning.
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.sched.Close()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.baseCancel() // abort in-flight simulations
		<-done
		err = ctx.Err()
	}
	// The executors are gone either way; release the base context so the
	// watchdog (and any other lifetime-scoped goroutine) exits too.
	s.baseCancel()
	if s.journal != nil {
		s.journal.CloseAll()
	}
	return err
}

// Close force-stops the service: every live job is cancelled, the executors
// are waited out, and the journals are flushed.
func (s *Server) Close() {
	s.baseCancel()
	for _, j := range s.store.List() {
		j.Cancel()
	}
	s.sched.Close()
	if s.journal != nil {
		s.journal.CloseAll()
	}
}

// execute runs one job to a terminal state on an executor goroutine.
func (s *Server) execute(j *Job) {
	// Whatever way this job ends, settle any identical submissions that
	// coalesced onto it.
	defer s.settleCoalesced(j)
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	j.setCancel(cancel)
	// A cancellation that raced the dequeue leaves the job terminal; anything
	// later cancels ctx through setCancel's handoff.
	if j.State() != StateQueued {
		return
	}
	// Re-check the cache at dequeue time: an identical job may have finished
	// while this one sat in the queue (the back-to-back duplicate pattern a
	// burst of identical clients produces).
	if cached, ok := s.cacheProbe(j.Key); ok {
		if j.finish(cached, true) {
			s.metrics.cachedResponse.Add(1)
			s.log.Printf("job %s %s served from cache at dequeue", j.ID, j.Kind)
		}
		return
	}
	deadline, hasDeadline := j.deadlineTime()
	if hasDeadline {
		// The budget ran down while the job sat in the queue: answer now
		// without simulating a single cycle.
		if !time.Now().Before(deadline) {
			s.degradeOrFail(j, "deadline expired while queued")
			return
		}
		var cancelDl context.CancelFunc
		ctx, cancelDl = context.WithDeadline(ctx, deadline)
		defer cancelDl()
	}
	if !j.setState(StateRunning, "") {
		return // a cancellation won the race; ctx is (or will be) cancelled
	}
	s.log.Printf("job %s %s key=%.12s running", j.ID, j.Kind, j.Key)

	onPoint := func(pd experiments.PointDone) {
		j.pointDone(pd, false)
		s.metrics.pointsSim.Add(1)
		s.metrics.cyclesSim.Add(uint64(pd.Result.Cycles))
	}

	var payload any
	var err error
	// Panic isolation: a crash anywhere in the simulation stack fails this
	// job with a diagnosis instead of tearing down the daemon and every
	// other job with it.
	func() {
		defer func() {
			if r := recover(); r != nil {
				s.metrics.panicsRecovered.Add(1)
				s.log.Printf("job %s panicked: %v\n%s", j.ID, r, debug.Stack())
				err = fmt.Errorf("job panicked: %v", r)
			}
		}()
		switch {
		case j.work.run != nil:
			w := j.work.run
			j.setTotal(w.replicates)
			var agg experiments.Result
			var reps []experiments.Result
			agg, reps, err = experiments.RunReplicatedContext(ctx, w.cfg, w.replicates, w.workers, onPoint)
			if err == nil {
				payload = EncodeRun(agg, reps)
			}
		case j.work.panel != nil:
			w := j.work.panel
			opts := w.opts
			j.setTotal(experiments.PanelPointCount(w.spec, opts))
			opts.OnPointDone = onPoint
			var pr experiments.PanelResult
			pr, err = experiments.RunPanelContext(ctx, w.spec, opts)
			if err == nil {
				payload = EncodePanel(pr)
			}
		case j.work.explore != nil:
			w := j.work.explore
			j.setTotal(w.points)
			s.metrics.explorePointsExpanded.Add(uint64(w.points))
			s.metrics.explorePointsDeduped.Add(uint64(w.deduped))
			var oc explore.Outcome
			oc, err = explore.Run(ctx, w.spec, w.opts, w.opts.Workers, s.exploreEvaluator(w), func(i int, p explore.Point, res experiments.Result, cached bool) {
				j.pointDone(experiments.PointDone{Index: i, Total: w.points, Model: p.Model, Rate: p.Rate, Result: res}, cached)
			})
			if err == nil {
				payload = EncodeExplore(w.spec, w.opts, oc)
			}
		default:
			err = fmt.Errorf("job has no work")
		}
	}()

	switch {
	case err == nil:
		b, merr := json.Marshal(payload)
		if merr != nil {
			j.setState(StateFailed, merr.Error())
			return
		}
		s.cachePut(j.Key, b)
		j.finish(b, false)
		s.log.Printf("job %s done", j.ID)
	case errors.Is(err, context.DeadlineExceeded):
		s.degradeOrFail(j, "deadline exceeded")
	case errors.Is(err, context.Canceled):
		if msg := j.killReason(); msg != "" {
			j.setState(StateFailed, msg)
			s.log.Printf("job %s failed: %s", j.ID, msg)
		} else {
			j.setState(StateCancelled, "")
			s.log.Printf("job %s cancelled", j.ID)
		}
	default:
		j.setState(StateFailed, err.Error())
		s.log.Printf("job %s failed: %v", j.ID, err)
	}
}

// degradeOrFail settles a job whose exact answer can no longer be produced
// in time. Analyzable run jobs get an instant closed-form analytic estimate
// marked `degraded: true` — a useful answer in microseconds instead of an
// error — which is deliberately never cached; panels, explores and workloads
// outside the analytic models' validated domain fail with reason.
func (s *Server) degradeOrFail(j *Job, reason string) {
	if j.work.run != nil {
		if out, ok := EncodeDegradedRun(j.work.run.cfg, reason); ok {
			if b, err := json.Marshal(out); err == nil {
				if j.finishDegraded(b) {
					s.metrics.degradedAnswers.Add(1)
					s.log.Printf("job %s answered degraded: %s", j.ID, reason)
				}
				return
			}
		}
	}
	j.setState(StateFailed, reason)
	s.log.Printf("job %s failed: %s", j.ID, reason)
}

// exploreEvaluator builds the cache-through evaluator an explore job fans
// its lattice points through: each point is content-addressed under the
// exact run key POST /v1/runs would use for the same configuration, so
// explore points, single runs and overlapping explores all share cache
// entries — including durable ones from before a restart. A probe hit
// re-attaches the point's configuration to the cached bytes; a miss
// simulates and stores the run payload for the next request of either kind.
func (s *Server) exploreEvaluator(w *exploreWork) explore.Evaluator {
	return func(ctx context.Context, p explore.Point) (experiments.Result, bool, error) {
		key := RunKey(p.Cfg, w.opts.Replicates)
		if b, ok := s.cacheProbe(key); ok {
			if res, ok := decodeRunResult(b, p.Cfg); ok {
				s.metrics.explorePointsCacheHit.Add(1)
				return res, true, nil
			}
		}
		agg, reps, err := experiments.RunReplicatedContext(ctx, p.Cfg, w.opts.Replicates, 1, func(pd experiments.PointDone) {
			s.metrics.pointsSim.Add(1)
			s.metrics.cyclesSim.Add(uint64(pd.Result.Cycles))
		})
		if err != nil {
			return experiments.Result{}, false, err
		}
		if b, merr := json.Marshal(EncodeRun(agg, reps)); merr == nil {
			s.cachePut(key, b)
		}
		return agg, false, nil
	}
}

// countOutcome tallies each job's single terminal transition, keeping the
// invariant accepted == done + failed + cancelled once all jobs settle.
func (s *Server) countOutcome(st State) {
	switch st {
	case StateDone:
		s.metrics.jobsDone.Add(1)
	case StateFailed:
		s.metrics.jobsFailed.Add(1)
	case StateCancelled:
		s.metrics.jobsCancelled.Add(1)
	}
}

// submit registers and schedules (or answers from cache / an identical
// in-flight job) one parsed request.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, kind, key string, raw json.RawMessage, work jobWork, class Class) {
	j := s.store.Add(kind, key, raw, work, class, s.countOutcome, s.journalEvent)
	s.metrics.jobsAccepted.Add(1)
	if cached, ok := s.cacheGet(key); ok {
		j.finish(cached, true)
		s.metrics.cachedResponse.Add(1)
		writeJSON(w, http.StatusOK, j.Snapshot(true))
		return
	}
	// Coalesce with an identical uncached job that is already queued or
	// running: this job subscribes to that one's outcome instead of
	// simulating the same points twice.
	s.coMu.Lock()
	if e, ok := s.inflight[key]; ok {
		e.followers = append(e.followers, j)
		primaryID := e.primary.ID
		s.coMu.Unlock()
		s.metrics.jobsCoalesced.Add(1)
		s.log.Printf("job %s %s coalesced onto in-flight %s", j.ID, kind, primaryID)
		s.respondSubmitted(w, r, j)
		return
	}
	s.inflight[key] = &coalesceEntry{primary: j}
	s.coMu.Unlock()
	if err := s.sched.Enqueue(j); err != nil {
		// Shed with an answer where we can: an analyzable run turned away by
		// a full queue gets an instant degraded analytic estimate — 200 with
		// an honest error band beats a 503 for a client on a deadline.
		if errors.Is(err, ErrQueueFull) && s.shedDegrade(w, j) {
			return
		}
		s.failCoalesceChain(j, err)
		if errors.Is(err, ErrQueueFull) {
			// Backpressure is transient: tell well-behaved clients when to
			// come back instead of letting them hammer the queue.
			w.Header().Set("Retry-After", "1")
		}
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.respondSubmitted(w, r, j)
}

// shedDegrade answers a load-shed run job (and any followers that coalesced
// onto it in the enqueue window) with a degraded analytic estimate,
// reporting whether it could. Only analyzable runs qualify; everything else
// falls through to the 503 path.
func (s *Server) shedDegrade(w http.ResponseWriter, j *Job) bool {
	if j.work.run == nil {
		return false
	}
	out, ok := EncodeDegradedRun(j.work.run.cfg, "shed: queue full")
	if !ok {
		return false
	}
	b, err := json.Marshal(out)
	if err != nil {
		return false
	}
	s.coMu.Lock()
	var followers []*Job
	if e, ok := s.inflight[j.Key]; ok && e.primary == j {
		followers = e.followers
		delete(s.inflight, j.Key)
	}
	s.coMu.Unlock()
	if j.finishDegraded(b) {
		s.metrics.degradedAnswers.Add(1)
		s.log.Printf("job %s shed with a degraded answer (queue full)", j.ID)
	}
	for _, f := range followers {
		if f.finishDegraded(b) {
			s.metrics.degradedAnswers.Add(1)
		}
	}
	writeJSON(w, http.StatusOK, j.Snapshot(true))
	return true
}

// respondSubmitted answers a successfully registered submission, honouring
// ?wait=1. A wait cut short by the client's request context (deadline or
// disconnect) answers 202 with the job's current state — the honest "still
// running, poll the job" status — never 200 with a non-terminal snapshot
// that a caller could mistake for a completed job.
func (s *Server) respondSubmitted(w http.ResponseWriter, r *http.Request, j *Job) {
	if wantWait(r) {
		j.WaitTerminal(r.Context())
		if j.State().terminal() {
			writeJSON(w, http.StatusOK, j.Snapshot(true))
		} else {
			writeJSON(w, http.StatusAccepted, j.Snapshot(false))
		}
		return
	}
	writeJSON(w, http.StatusAccepted, j.Snapshot(false))
}

// settleCoalesced resolves the followers of a finished primary: a cached
// result settles them all without simulating; otherwise (the primary failed
// or was cancelled) the first still-live follower is promoted to primary
// and scheduled, so one client's cancellation never cancels another
// client's identical request.
func (s *Server) settleCoalesced(j *Job) {
	s.coMu.Lock()
	e, ok := s.inflight[j.Key]
	if !ok || e.primary != j {
		s.coMu.Unlock()
		return
	}
	if len(e.followers) == 0 {
		delete(s.inflight, j.Key)
		s.coMu.Unlock()
		return
	}
	// Settle from the primary's own payload, not a cache probe: the bounded
	// LRU may already have evicted the entry under churn, and a done primary
	// must never trigger a duplicate simulation. A degraded primary settles
	// its followers degraded too — the payload says so, the flag must agree.
	if payload, degraded, ok := j.resultPayload(); ok {
		delete(s.inflight, j.Key)
		followers := e.followers
		s.coMu.Unlock()
		for _, f := range followers {
			switch {
			case degraded:
				if f.finishDegraded(payload) {
					s.metrics.degradedAnswers.Add(1)
				}
			case f.finish(payload, true):
				s.metrics.cachedResponse.Add(1)
			}
		}
		return
	}
	var live []*Job
	for _, f := range e.followers {
		if !f.State().terminal() {
			live = append(live, f)
		}
	}
	if len(live) == 0 {
		delete(s.inflight, j.Key)
		s.coMu.Unlock()
		return
	}
	next := live[0]
	e.primary = next
	e.followers = live[1:]
	s.coMu.Unlock()
	s.log.Printf("job %s promoted to primary after %s ended without a result", next.ID, j.ID)
	if err := s.sched.Enqueue(next); err != nil {
		s.failCoalesceChain(next, err)
	}
}

// failCoalesceChain fails a primary that queue backpressure rejected,
// together with any followers attached to it, clears the in-flight entry,
// and counts every job in the chain as a backpressure rejection.
func (s *Server) failCoalesceChain(j *Job, cause error) {
	s.coMu.Lock()
	var followers []*Job
	if e, ok := s.inflight[j.Key]; ok && e.primary == j {
		followers = e.followers
		delete(s.inflight, j.Key)
	}
	s.coMu.Unlock()
	j.setState(StateFailed, cause.Error())
	s.metrics.jobsRejected.Add(1)
	for _, f := range followers {
		f.setState(StateFailed, cause.Error())
		s.metrics.jobsRejected.Add(1)
	}
}

// handleRuns accepts POST /v1/runs.
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	raw, req, ok := decodeBody[RunRequest](w, r)
	if !ok {
		return
	}
	key, work, class, err := buildRun(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.submit(w, r, "run", key, raw, work, class)
}

// handlePanels accepts POST /v1/panels.
func (s *Server) handlePanels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	raw, req, ok := decodeBody[PanelRequest](w, r)
	if !ok {
		return
	}
	key, work, class, err := buildPanel(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.submit(w, r, "panel", key, raw, work, class)
}

// handleExplore accepts POST /v1/explore: a design-space exploration over a
// parameter lattice, answered with the latency/throughput/cost Pareto front.
func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	raw, req, ok := decodeBody[ExploreRequest](w, r)
	if !ok {
		return
	}
	key, work, class, err := buildExplore(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.submit(w, r, "explore", key, raw, work, class)
}

// handleModels serves GET /v1/models: the registered network models, their
// descriptions and an example valid size — the service-side face of the
// model registry.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, Models())
}

// handleJobList serves GET /v1/jobs.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	jobs := s.store.List()
	out := make([]JobJSON, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Snapshot(false))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleJob serves GET /v1/jobs/{id}, GET /v1/jobs/{id}/events,
// POST /v1/jobs/{id}/cancel and DELETE /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	j, ok := s.store.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no job %q", id))
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		if wantWait(r) {
			j.WaitTerminal(r.Context())
		}
		writeJSON(w, http.StatusOK, j.Snapshot(true))
	case sub == "" && r.Method == http.MethodDelete,
		sub == "cancel" && r.Method == http.MethodPost:
		j.Cancel()
		writeJSON(w, http.StatusOK, j.Snapshot(false))
	case sub == "events" && r.Method == http.MethodGet:
		s.streamEvents(w, r, j)
	default:
		httpError(w, http.StatusNotFound, fmt.Sprintf("no route %s /v1/jobs/%s/%s", r.Method, id, sub))
	}
}

// streamEvents replays a job's progress events as NDJSON and follows until
// the job is terminal or the client goes away. ?from=N skips the first N
// events, so a reconnecting client resumes exactly where its last stream
// broke instead of re-reading (or missing) the prefix.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	n := 0
	if v := r.URL.Query().Get("from"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("invalid from=%q", v))
			return
		}
		n = parsed
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		evs, terminal := j.EventsSince(n)
		for _, e := range evs {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		n += len(evs)
		if len(evs) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal {
			// Drain any events appended between EventsSince and here.
			if evs, _ := j.EventsSince(n); len(evs) == 0 {
				return
			}
			continue
		}
		j.WaitChange(r.Context(), n)
		if r.Context().Err() != nil {
			return
		}
	}
}

// handleMetrics serves GET /metrics in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.Snapshot().writeProm(w)
}

// handleHealth serves GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// wantWait reports whether the request asked to block until the job is
// terminal (?wait=1).
func wantWait(r *http.Request) bool {
	v := r.URL.Query().Get("wait")
	return v == "1" || v == "true"
}

// maxBodyBytes bounds request bodies.
const maxBodyBytes = 1 << 20

// decodeBody reads and decodes a JSON body, reporting HTTP errors itself.
func decodeBody[T any](w http.ResponseWriter, r *http.Request) (json.RawMessage, T, bool) {
	var req T
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: "+err.Error())
		return nil, req, false
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode body: "+err.Error())
		return nil, req, false
	}
	if dec.More() {
		httpError(w, http.StatusBadRequest, "decode body: trailing data after the request object")
		return nil, req, false
	}
	return raw, req, true
}

// writeJSON writes a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

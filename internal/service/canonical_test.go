package service

import (
	"fmt"
	"testing"

	"quarc/internal/experiments"
)

func TestRunKeyNormalisesDefaults(t *testing.T) {
	sparse := experiments.Config{Topo: experiments.TopoQuarc, N: 16, Rate: 0.01, Seed: 1}
	explicit := sparse
	explicit.MsgLen, explicit.Depth = 16, 4
	explicit.Warmup, explicit.Measure, explicit.Drain = 2000, 10000, 20000
	if RunKey(sparse, 1) != RunKey(explicit, 1) {
		t.Fatal("spelling out the defaults changed the cache key")
	}
	// Like the sweep worker count, the intra-point step-worker count only
	// changes wall-clock time, so it must share the cache entry.
	stepped := sparse
	stepped.StepWorkers = 8
	if RunKey(sparse, 1) != RunKey(stepped, 1) {
		t.Fatal("step-worker count changed the run cache key")
	}
}

func TestRunKeySeparatesInputs(t *testing.T) {
	base := experiments.Config{Topo: experiments.TopoQuarc, N: 16, Rate: 0.01, Seed: 1}
	keys := map[string]string{"base": RunKey(base, 1)}
	add := func(name string, cfg experiments.Config, reps int) {
		k := RunKey(cfg, reps)
		for prev, pk := range keys {
			if pk == k {
				t.Fatalf("%s collides with %s", name, prev)
			}
		}
		keys[name] = k
	}
	seed := base
	seed.Seed = 2
	add("seed", seed, 1)
	rate := base
	rate.Rate = 0.02
	add("rate", rate, 1)
	topo := base
	topo.Topo = experiments.TopoSpidergon
	add("topo", topo, 1)
	add("replicates", base, 3)
	if RunKey(base, 0) != RunKey(base, 1) {
		t.Fatal("replicates 0 and 1 must share a key (both mean one run)")
	}
}

func TestPanelKeyIgnoresExecutionKnobs(t *testing.T) {
	spec := experiments.PanelSpec{N: 16, MsgLen: 16, Beta: 0.05}
	opts := experiments.RunOpts{Warmup: 100, Measure: 400, Drain: 4000, Depth: 4, Seed: 9, Points: 5}
	workers := opts
	workers.Workers = 7
	withCb := opts
	withCb.OnPointDone = func(experiments.PointDone) {}
	if PanelKey(spec, opts) != PanelKey(spec, workers) {
		t.Fatal("worker count changed the panel key")
	}
	if PanelKey(spec, opts) != PanelKey(spec, withCb) {
		t.Fatal("progress callback changed the panel key")
	}
	stepped := opts
	stepped.StepWorkers = 8
	if PanelKey(spec, opts) != PanelKey(spec, stepped) {
		t.Fatal("step-worker count changed the panel key")
	}
	// Labels are echoed in the payload, so they must change the key: a
	// request must never receive bytes carrying another request's labels.
	labelled := spec
	labelled.Figure, labelled.Name = "fig9", "panel A"
	if PanelKey(spec, opts) == PanelKey(labelled, opts) {
		t.Fatal("labels must change the panel key")
	}
	seeded := opts
	seeded.Seed = 10
	if PanelKey(spec, opts) == PanelKey(spec, seeded) {
		t.Fatal("seed must change the panel key")
	}
	// With explicit rates the Points grid size is ignored by the sweep, so
	// it must not split the cache either.
	explicit := spec
	explicit.Rates = []float64{0.002, 0.004}
	repointed := opts
	repointed.Points = 99
	if PanelKey(explicit, opts) != PanelKey(explicit, repointed) {
		t.Fatal("Points changed the key despite explicit rates")
	}
	if PanelKey(spec, opts) == PanelKey(spec, repointed) {
		t.Fatal("Points must change the key when rates are derived")
	}
}

func TestCacheLRU(t *testing.T) {
	c := NewCache(2) // two one-byte payloads fit, a third evicts
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	if _, ok := c.Get("a"); !ok { // a is now most recently used
		t.Fatal("a missing")
	}
	c.Put("c", []byte("3")) // over budget: evicts b, not a
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("a = %q, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || string(v) != "3" {
		t.Fatalf("c = %q, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("len %d", c.Len())
	}
	if c.Bytes() != 2 {
		t.Fatalf("bytes %d, want 2", c.Bytes())
	}
	hits, misses := c.Stats()
	if hits != 3 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	c.Put("c", []byte("3b")) // update in place; a (LRU) pays for the growth
	if v, _ := c.Get("c"); string(v) != "3b" {
		t.Fatalf("update lost: %q", v)
	}
	if _, ok := c.Probe("a"); ok {
		t.Fatal("a should have been evicted to fit c's growth")
	}
	if c.Bytes() != 2 || c.Len() != 1 {
		t.Fatalf("bytes=%d len=%d after growth, want 2 and 1", c.Bytes(), c.Len())
	}
}

func TestStoreEvictsTerminalJobs(t *testing.T) {
	var evicted []string
	s := NewStore(2, func(j *Job) { evicted = append(evicted, j.ID) })
	a := s.Add("run", "k1", nil, jobWork{}, ClassInteractive, nil, nil)
	a.setState(StateDone, "")
	b := s.Add("run", "k2", nil, jobWork{}, ClassInteractive, nil, nil)
	_ = b // still queued (live)
	s.Add("run", "k3", nil, jobWork{}, ClassInteractive, nil, nil)
	if _, ok := s.Get(a.ID); ok {
		t.Fatal("terminal job should have been evicted")
	}
	if _, ok := s.Get(b.ID); !ok {
		t.Fatal("live job must never be evicted")
	}
	if got := len(s.List()); got != 2 {
		t.Fatalf("store holds %d jobs, want 2", got)
	}
	if len(evicted) != 1 || evicted[0] != a.ID {
		t.Fatalf("onEvict saw %v, want [%s]", evicted, a.ID)
	}
}

func TestParseRoundTrips(t *testing.T) {
	// The six legacy names must keep resolving through the enum shim and
	// round-tripping via Topology.String.
	for _, name := range []string{"quarc", "spidergon", "quarc-chainbcast",
		"quarc-1queue", "mesh", "torus"} {
		topo, err := ParseTopology(name)
		if err != nil {
			t.Fatal(err)
		}
		if topo.String() != name {
			t.Fatalf("topology %q round-trips to %q", name, topo.String())
		}
	}
	// Every registered model resolves through ParseModel and is listed.
	listed := map[string]bool{}
	for _, m := range Models() {
		listed[m.Name] = true
		got, err := ParseModel(m.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got != m.Name {
			t.Fatalf("model %q canonicalises to %q", m.Name, got)
		}
	}
	if !listed["ring"] {
		t.Fatal("registry-only model missing from Models()")
	}
	if _, err := ParseModel("bogus"); err == nil {
		t.Fatal("bogus model accepted")
	}
	for name, p := range patternNames {
		got, err := ParsePattern(name)
		if err != nil {
			t.Fatal(err)
		}
		if got != p || PatternName(got) != name {
			t.Fatalf("pattern %q round-trips to %q", name, PatternName(got))
		}
	}
	if _, err := ParseTopology("bogus"); err == nil {
		t.Fatal("bogus topology accepted")
	}
	if _, err := ParsePattern("bogus"); err == nil {
		t.Fatal("bogus pattern accepted")
	}
	var _ fmt.Stringer = experiments.TopoQuarc // round-trip relies on Stringer
}

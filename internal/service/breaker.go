package service

import (
	"math/rand"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position. The numeric values are the
// wire contract of the quarcd_store_breaker_state gauge.
type BreakerState int

const (
	BreakerClosed   BreakerState = 0 // dependency healthy, traffic flows
	BreakerOpen     BreakerState = 1 // dependency failing, traffic blocked
	BreakerHalfOpen BreakerState = 2 // backoff elapsed, one probe in flight
)

// String names the state for logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// Breaker is a consecutive-failure circuit breaker guarding the disk store.
// threshold consecutive failures open it; while open, every Allow is refused
// (the server falls back to memory-cache-only) until a jittered exponential
// backoff elapses, at which point exactly one caller is admitted as a
// half-open probe. A successful probe closes the breaker; a failed probe
// reopens it with a doubled backoff. Safe for concurrent use.
type Breaker struct {
	threshold int
	base      time.Duration
	max       time.Duration

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive failures while closed
	streak   int       // consecutive opens without an intervening success
	until    time.Time // earliest half-open probe while open
	opens    uint64
}

// NewBreaker builds a breaker opening after threshold consecutive failures,
// probing after a backoff starting at base and capped at max.
func NewBreaker(threshold int, base, max time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max < base {
		max = base
	}
	return &Breaker{threshold: threshold, base: base, max: max}
}

// Allow reports whether the caller may use the guarded dependency. While
// open it refuses until the backoff elapses, then admits a single probe
// (transitioning to half-open); further callers are refused until that probe
// reports Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		return false // a probe is already in flight
	default: // open
		if time.Now().Before(b.until) {
			return false
		}
		b.state = BreakerHalfOpen
		return true
	}
}

// Success reports a healthy operation: it resets the failure count and, from
// half-open, closes the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.streak = 0
	b.state = BreakerClosed
}

// Neutral reports an operation that touched the dependency without proving
// it healthy or broken — a pure index miss that performed no I/O. Closed
// stays closed with the failure count intact (a miss is not evidence the
// disk recovered); a half-open probe that lands on one releases the probe
// slot back to open with the backoff already elapsed, so the next caller
// probes again immediately instead of wedging the breaker half-open.
func (b *Breaker) Neutral() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.state = BreakerOpen
	}
}

// Failure reports a failed operation: from closed it counts toward the
// threshold; the threshold crossing — and any failed half-open probe —
// (re)opens the breaker with a jittered exponential backoff that doubles per
// consecutive open.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		return // already open; concurrent stragglers don't extend the backoff
	case BreakerClosed:
		b.failures++
		if b.failures < b.threshold {
			return
		}
	}
	// threshold crossed, or a half-open probe failed: (re)open.
	b.state = BreakerOpen
	b.failures = 0
	b.opens++
	backoff := b.base << b.streak
	if backoff > b.max || backoff <= 0 {
		backoff = b.max
	}
	if b.streak < 30 {
		b.streak++
	}
	// Jitter in [0.5, 1.5)x so probes from restarted replicas don't align.
	jittered := time.Duration(float64(backoff) * (0.5 + rand.Float64()))
	b.until = time.Now().Add(jittered)
}

// State returns the breaker's current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns the cumulative closed->open (and half-open->open)
// transitions.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

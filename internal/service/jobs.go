package service

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"quarc/internal/experiments"
	"quarc/internal/explore"
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// terminal reports whether a job in this state will never change again.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event is one NDJSON progress line of GET /v1/jobs/{id}/events. Type is
// "state" for lifecycle transitions and "point" for sweep-point completions
// (rep is omitted for replicate 0). Topo carries the canonical registry
// name of the point's model — including registry-only models with no legacy
// enum member. The same encoding is appended line-by-line to the job's
// on-disk journal, so a replay after a daemon restart is byte-compatible
// with the live stream.
type Event struct {
	Type        string  `json:"type"`
	State       State   `json:"state,omitempty"`
	Done        int     `json:"done,omitempty"`
	Total       int     `json:"total,omitempty"`
	Topo        string  `json:"topo,omitempty"`
	Rate        float64 `json:"rate,omitempty"`
	Rep         int     `json:"rep,omitempty"`
	UnicastMean float64 `json:"unicast_mean,omitempty"`
	Cached      bool    `json:"cached,omitempty"`
	// Degraded marks a terminal state whose result is an analytic estimate
	// served under deadline pressure or load shedding, not a simulation.
	Degraded bool   `json:"degraded,omitempty"`
	Error    string `json:"error,omitempty"`
}

// jobWork is the parsed, validated request a job executes — exactly one of
// the fields is set.
type jobWork struct {
	run     *runWork
	panel   *panelWork
	explore *exploreWork
	// deadline is the request's deadline_ms budget, measured from submission
	// (queueing time counts — the client asked for an answer within the
	// budget, not a simulation started within it). 0 means none. It never
	// enters the canonical cache key: identical configurations share results
	// whatever their deadlines.
	deadline time.Duration
}

type runWork struct {
	cfg        experiments.Config
	replicates int
	workers    int
}

type panelWork struct {
	spec experiments.PanelSpec
	opts experiments.RunOpts
}

type exploreWork struct {
	spec explore.Spec
	opts experiments.RunOpts
	// points and deduped are the validation-time expansion's lattice size and
	// duplicate count (the expansion is deterministic, so execution re-derives
	// the identical lattice).
	points  int
	deduped int
}

// Job is one submitted request and its lifecycle. All mutable fields are
// guarded by mu; changed is closed and replaced on every mutation so
// streaming subscribers can wait without polling.
type Job struct {
	ID      string          `json:"id"`
	Kind    string          `json:"kind"` // "run" | "panel" | "explore"
	Key     string          `json:"key"`  // canonical cache key
	Request json.RawMessage `json:"-"`

	work  jobWork
	class Class
	// onTerminal, set at creation, observes the single transition into a
	// terminal state (for the server's job-outcome counters).
	onTerminal func(State)
	// sink, when set, receives every event appended to the in-memory list
	// (the server's journal hook). It is called with mu held, so events
	// reach the journal in exactly the order subscribers observe them.
	sink func(*Job, Event)

	mu        sync.Mutex
	cancel    context.CancelFunc
	cancelReq bool
	changed   chan struct{}
	state     State
	cached    bool
	degraded  bool
	errMsg    string
	result    []byte
	events    []Event
	done      int
	total     int
	created   time.Time
	started   time.Time
	finished  time.Time
	// deadlineAt is the absolute deadline derived from work.deadline at
	// submission (zero = none). Recovered jobs never carry one: their budget
	// expired with the daemon that accepted them, and failing them for it
	// after a restart would punish the client for our crash.
	deadlineAt time.Time
	// progress is the watchdog's heartbeat: the last time the job entered
	// running or completed a sweep point.
	progress time.Time
	// killMsg records the watchdog's diagnosis when it cancelled the job, so
	// the executor reports a diagnosed failure instead of a silent
	// cancellation.
	killMsg string
	// journaled marks the job's journal header as written (maintained by
	// the server's sink, guarded by mu like the rest).
	journaled bool
}

func newJob(id, kind, key string, req json.RawMessage, work jobWork, class Class, onTerminal func(State), sink func(*Job, Event)) *Job {
	j := &Job{
		ID: id, Kind: kind, Key: key, Request: req,
		work: work, class: class, onTerminal: onTerminal, sink: sink,
		changed: make(chan struct{}),
		state:   StateQueued, created: time.Now(),
	}
	if work.deadline > 0 {
		j.deadlineAt = j.created.Add(work.deadline)
	}
	j.appendEventLocked(Event{Type: "state", State: StateQueued})
	return j
}

// restoreJob rebuilds a job recovered from its journal: the replayed event
// prefix, the last journaled state, and progress counters. The caller
// registers it with Store.addRecovered and, for non-terminal states,
// re-enqueues it.
func restoreJob(id, kind, key string, req json.RawMessage, events []Event, st State,
	cached, degraded bool, errMsg string, done, total int, created time.Time,
	class Class, onTerminal func(State), sink func(*Job, Event)) *Job {
	if created.IsZero() {
		created = time.Now()
	}
	return &Job{
		ID: id, Kind: kind, Key: key, Request: req,
		class: class, onTerminal: onTerminal, sink: sink,
		changed: make(chan struct{}),
		state:   st, cached: cached, degraded: degraded, errMsg: errMsg,
		events: events, done: done, total: total,
		created: created, journaled: true,
	}
}

// appendEventLocked records an event in the in-memory list and forwards it
// to the sink (journal); callers hold mu (or own the job exclusively).
func (j *Job) appendEventLocked(e Event) {
	j.events = append(j.events, e)
	if j.sink != nil {
		j.sink(j, e)
	}
}

// notifyLocked wakes every waiter; callers hold mu.
func (j *Job) notifyLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// State returns the current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// setState transitions the job, appending the matching event, and reports
// whether the transition took effect. Transitions out of a terminal state
// are ignored (e.g. an executor observing a job that was cancelled while
// queued).
func (j *Job) setState(s State, errMsg string) bool {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = s
	switch s {
	case StateRunning:
		j.started = time.Now()
		j.progress = j.started
	case StateDone, StateFailed, StateCancelled:
		j.finished = time.Now()
	}
	j.errMsg = errMsg
	j.appendEventLocked(Event{Type: "state", State: s, Cached: j.cached, Degraded: j.degraded, Error: errMsg})
	j.notifyLocked()
	terminal := s.terminal()
	hook := j.onTerminal
	j.mu.Unlock()
	if terminal && hook != nil {
		hook(s)
	}
	return true
}

// setTotal records the number of design points the job will simulate.
func (j *Job) setTotal(total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.total = total
	j.notifyLocked()
}

// maxJobEvents caps the retained per-point events of one job so a
// limit-sized sweep (tens of thousands of points) cannot pin unbounded
// memory in the store. Beyond the cap a single "truncated" marker is
// emitted; progress stays observable through the job snapshot's done/total.
// The journal truncates identically, keeping stream and replay in lockstep.
const maxJobEvents = 4096

// pointDone appends a sweep-point progress event; cached marks points an
// explore evaluator answered from the result cache instead of simulating
// (execution provenance lives only in the event stream and metrics, never in
// the canonical payload). Called concurrently from the sweep engine's worker
// goroutines.
func (j *Job) pointDone(pd experiments.PointDone, cached bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done++
	j.progress = time.Now()
	if pd.Total > j.total {
		j.total = pd.Total
	}
	switch {
	case len(j.events) < maxJobEvents:
		j.appendEventLocked(Event{
			Type: "point", Done: j.done, Total: j.total,
			Topo: pd.Model, Rate: pd.Rate, Rep: pd.Replicate,
			UnicastMean: pd.Result.UnicastMean, Cached: cached,
		})
	case len(j.events) == maxJobEvents:
		j.appendEventLocked(Event{Type: "truncated", Done: j.done, Total: j.total})
	}
	j.notifyLocked()
}

// finish marks the job done with its canonical result payload, reporting
// whether the transition took effect (false if the job was already
// terminal, e.g. cancelled).
func (j *Job) finish(result []byte, cached bool) bool {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return false
	}
	j.result = result
	j.cached = cached
	j.mu.Unlock()
	return j.setState(StateDone, "")
}

// finishDegraded marks the job done with an analytic degraded payload,
// reporting whether the transition took effect. The payload is never routed
// to the result cache — a later identical request deserves the exact answer.
func (j *Job) finishDegraded(result []byte) bool {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return false
	}
	j.result = result
	j.degraded = true
	j.mu.Unlock()
	return j.setState(StateDone, "")
}

// resultPayload returns the result bytes of a finished job and whether they
// are a degraded analytic estimate. ok is false while the job is live or if
// it ended any other way.
func (j *Job) resultPayload() (payload []byte, degraded, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, false, false
	}
	return j.result, j.degraded, true
}

// IsDegraded reports whether the job finished with a degraded analytic
// answer.
func (j *Job) IsDegraded() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degraded
}

// deadlineTime returns the job's absolute deadline, if it has one.
func (j *Job) deadlineTime() (time.Time, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.deadlineAt, !j.deadlineAt.IsZero()
}

// progressAt reports the watchdog heartbeat: the last progress time, the
// point counters, and whether the job is currently running.
func (j *Job) progressAt() (last time.Time, done, total int, running bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.progress, j.done, j.total, j.state == StateRunning
}

// kill cancels a running job on the watchdog's behalf, recording msg as the
// diagnosis the executor will fail it with. Queued and terminal jobs are
// left alone (a queued job has made exactly the progress it should have).
func (j *Job) kill(msg string) bool {
	j.mu.Lock()
	if j.state != StateRunning || j.killMsg != "" {
		j.mu.Unlock()
		return false
	}
	j.killMsg = msg
	cancel := j.cancel
	j.mu.Unlock()
	if cancel == nil {
		return false
	}
	cancel()
	return true
}

// killReason returns the watchdog diagnosis, if the job was killed.
func (j *Job) killReason() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.killMsg
}

// setCancel hands the job its execution context's cancel function. The
// executor calls it before marking the job running, so a running job always
// has a live cancel hook; a cancellation that arrived first (when the hook
// was still nil) is replayed here so the context can never outlive it.
func (j *Job) setCancel(cancel context.CancelFunc) {
	j.mu.Lock()
	j.cancel = cancel
	requested := j.cancelReq
	j.mu.Unlock()
	if requested {
		cancel()
	}
}

// Cancel requests cancellation: queued jobs transition immediately, running
// jobs get their context cancelled and transition when the simulation
// notices. Terminal jobs are unaffected. It reports whether the job was
// still live.
func (j *Job) Cancel() bool {
	j.mu.Lock()
	live := !j.state.terminal()
	queued := j.state == StateQueued
	j.cancelReq = true
	cancel := j.cancel
	j.mu.Unlock()
	if !live {
		return false
	}
	if queued {
		j.setState(StateCancelled, "")
	}
	if cancel != nil {
		cancel()
	}
	return true
}

// EventsSince returns the events at index >= n and whether the job is
// terminal.
func (j *Job) EventsSince(n int) ([]Event, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n > len(j.events) {
		n = len(j.events)
	}
	evs := append([]Event(nil), j.events[n:]...)
	return evs, j.state.terminal()
}

// WaitChange blocks until the job changes after the caller observed
// sequence n, the job is terminal, or ctx is done.
func (j *Job) WaitChange(ctx context.Context, n int) {
	for {
		j.mu.Lock()
		if len(j.events) > n || j.state.terminal() {
			j.mu.Unlock()
			return
		}
		ch := j.changed
		j.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return
		}
	}
}

// WaitTerminal blocks until the job reaches a terminal state or ctx is done.
func (j *Job) WaitTerminal(ctx context.Context) {
	for {
		j.mu.Lock()
		if j.state.terminal() {
			j.mu.Unlock()
			return
		}
		ch := j.changed
		j.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return
		}
	}
}

// JobJSON is the wire form of a job. Result is the canonical payload bytes,
// so two jobs served from the same cache line embed byte-identical results;
// Request echoes the submitted body for auditability.
type JobJSON struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	State  State  `json:"state"`
	Cached bool   `json:"cached"`
	// Degraded marks a job answered with an instant analytic estimate (see
	// RunResult.Degraded) instead of a simulation; pre-deadline-era payloads
	// are unchanged because the field is omitted when false.
	Degraded bool            `json:"degraded,omitempty"`
	Done     int             `json:"done"`
	Total    int             `json:"total"`
	Error    string          `json:"error,omitempty"`
	Created  string          `json:"created,omitempty"`
	Started  string          `json:"started,omitempty"`
	Finished string          `json:"finished,omitempty"`
	Request  json.RawMessage `json:"request,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// Snapshot renders the job's current wire form. withResult=false omits the
// payload (for listings).
func (j *Job) Snapshot(withResult bool) JobJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	t := func(ts time.Time) string {
		if ts.IsZero() {
			return ""
		}
		return ts.UTC().Format(time.RFC3339Nano)
	}
	out := JobJSON{
		ID: j.ID, Kind: j.Kind, State: j.state, Cached: j.cached, Degraded: j.degraded,
		Done: j.done, Total: j.total, Error: j.errMsg,
		Created: t(j.created), Started: t(j.started), Finished: t(j.finished),
	}
	if withResult {
		out.Request = j.Request
		if j.state == StateDone {
			out.Result = json.RawMessage(j.result)
		}
	}
	return out
}

// Store holds jobs by ID, bounded by evicting the oldest terminal jobs.
type Store struct {
	mu    sync.Mutex
	cap   int
	seq   int
	jobs  map[string]*Job
	order []string // creation order
	// onEvict, when set, observes each eviction (the server uses it to
	// delete the evicted job's journal so journal files track job records).
	onEvict func(*Job)
}

// NewStore builds a store retaining at most capacity jobs; onEvict (may be
// nil) fires for each evicted job.
func NewStore(capacity int, onEvict func(*Job)) *Store {
	if capacity < 1 {
		capacity = 1
	}
	return &Store{cap: capacity, jobs: make(map[string]*Job), onEvict: onEvict}
}

// Add registers a new job under a fresh ID. onTerminal, if non-nil, fires
// once when the job reaches a terminal state; sink, if non-nil, receives
// every event the job appends (the journal hook).
func (s *Store) Add(kind, key string, req json.RawMessage, work jobWork, class Class,
	onTerminal func(State), sink func(*Job, Event)) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := newJob(fmt.Sprintf("j%06d", s.seq), kind, key, req, work, class, onTerminal, sink)
	s.registerLocked(j)
	return j
}

// addRecovered registers a job rebuilt from its journal under its original
// ID, advancing the ID sequence past it so new jobs never collide.
func (s *Store) addRecovered(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int
	if _, err := fmt.Sscanf(j.ID, "j%d", &n); err == nil && n > s.seq {
		s.seq = n
	}
	s.registerLocked(j)
}

// registerLocked inserts the job and evicts oldest terminal jobs beyond
// capacity; live jobs are never dropped, so the store can transiently
// exceed cap under heavy load. Callers hold mu.
func (s *Store) registerLocked(j *Job) {
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	for len(s.jobs) > s.cap {
		evicted := false
		for i, id := range s.order {
			if old, ok := s.jobs[id]; ok && old.State().terminal() {
				delete(s.jobs, id)
				s.order = append(s.order[:i:i], s.order[i+1:]...)
				if s.onEvict != nil {
					s.onEvict(old)
				}
				evicted = true
				break
			}
		}
		if !evicted {
			break
		}
	}
}

// Get returns the job with the given ID.
func (s *Store) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List returns the retained jobs in creation order.
func (s *Store) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

package service

import (
	"encoding/json"
	"fmt"
	"math"

	"quarc/internal/experiments"
	"quarc/internal/explore"
	"quarc/internal/traffic"
)

// MaxLatticePoints bounds the axis cross product one explore request may
// demand, before dedup and skipping: design-space searches are the daemon's
// heaviest cacheable traffic, and the cap keeps one request from expanding
// into weeks of simulation.
const MaxLatticePoints = 2048

// McastJSON is one multicast preset of an explore lattice.
type McastJSON struct {
	Frac float64 `json:"frac"`
	Size int     `json:"size"`
}

// ExploreRequest is the body of POST /v1/explore: a design-space search
// over the cross product of the axis lists, swept under shared workload
// knobs. The response is the latency/throughput/cost Pareto front over
// every expanded point, with dominated-point provenance.
//
//quarc:wirekey ExploreKey
type ExploreRequest struct {
	Models []string    `json:"models"`
	Ns     []int       `json:"ns"`
	Rates  []float64   `json:"rates"`
	Depths []int       `json:"depths,omitempty"`
	Mcast  []McastJSON `json:"mcast,omitempty"`

	MsgLen      int     `json:"msglen,omitempty"`
	Beta        float64 `json:"beta,omitempty"`
	Pattern     string  `json:"pattern,omitempty"`
	HotspotBias float64 `json:"hotspot_bias,omitempty"`
	// CostWidth is the payload width (bits) the silicon-cost axis is
	// evaluated at; 0 means the paper's 32-bit reference.
	CostWidth int `json:"cost_width,omitempty"`

	Opts SweepOpts `json:"opts,omitempty"`
	// DeadlineMs bounds the whole request in milliseconds (0 = none).
	// Explores have no analytic fallback, so expiry fails the job with
	// "deadline exceeded" rather than degrading.
	//
	//quarc:execonly
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// SpecOpts validates the request, normalises it into the exploration
// engine's spec and run options, and pre-expands the lattice (the expansion
// is deterministic; execution repeats it). Every returned error is a client
// error.
func (e ExploreRequest) SpecOpts() (explore.Spec, experiments.RunOpts, explore.Expansion, error) {
	fail := func(err error) (explore.Spec, experiments.RunOpts, explore.Expansion, error) {
		return explore.Spec{}, experiments.RunOpts{}, explore.Expansion{}, err
	}
	pat, err := ParsePattern(e.Pattern)
	if err != nil {
		return fail(err)
	}
	if e.HotspotBias < 0 || e.HotspotBias > 1 {
		return fail(fmt.Errorf("hotspot_bias %v outside [0,1]", e.HotspotBias))
	}
	if e.MsgLen > MaxMsgLen {
		return fail(fmt.Errorf("msglen %d exceeds the limit %d", e.MsgLen, MaxMsgLen))
	}
	if e.CostWidth < 0 {
		return fail(fmt.Errorf("cost_width %d must be non-negative", e.CostWidth))
	}
	models := make([]string, 0, len(e.Models))
	seen := map[string]bool{}
	for _, m := range e.Models {
		name, err := ParseModel(m)
		if err != nil {
			return fail(err)
		}
		if seen[name] {
			return fail(fmt.Errorf("duplicate model %q", name))
		}
		seen[name] = true
		models = append(models, name)
	}
	for _, n := range e.Ns {
		if n > MaxNodes {
			return fail(fmt.Errorf("n %d exceeds the limit %d", n, MaxNodes))
		}
	}

	spec := explore.Spec{
		Models: models,
		Ns:     append([]int(nil), e.Ns...),
		Rates:  append([]float64(nil), e.Rates...),
		Depths: append([]int(nil), e.Depths...),
		MsgLen: e.MsgLen, Beta: e.Beta,
		Pattern: pat, HotspotBias: e.HotspotBias,
		CostWidth: e.CostWidth,
	}
	for _, k := range e.Mcast {
		spec.Mcast = append(spec.Mcast, explore.McastKnob{Frac: k.Frac, Size: k.Size})
	}
	if spec.Beta < 0 || spec.Beta > 1 {
		return fail(fmt.Errorf("beta %v outside [0,1]", spec.Beta))
	}

	def := experiments.DefaultOpts()
	o := e.Opts
	opts := experiments.RunOpts{
		Warmup: o.Warmup, Measure: o.Measure, Drain: o.Drain,
		Depth: o.Depth, Seed: o.Seed,
		Replicates: o.Replicates, Workers: o.Workers,
	}
	if o.Points != 0 {
		return fail(fmt.Errorf("opts.points does not apply to explore: rates are an explicit axis"))
	}
	if opts.Warmup == 0 {
		opts.Warmup = def.Warmup
	}
	if opts.Measure == 0 {
		opts.Measure = def.Measure
	}
	if opts.Drain == 0 {
		opts.Drain = def.Drain
	}
	if opts.Depth == 0 {
		opts.Depth = def.Depth
	}
	if opts.Seed == 0 {
		opts.Seed = def.Seed
	}
	if opts.Replicates < 1 {
		opts.Replicates = 1
	}
	switch {
	case opts.Warmup < 0 || opts.Measure < 0 || opts.Drain < 0:
		return fail(fmt.Errorf("cycle budgets must be non-negative"))
	case opts.Warmup+opts.Measure+opts.Drain > MaxTotalCycles:
		return fail(fmt.Errorf("warmup+measure+drain exceeds the limit %d", MaxTotalCycles))
	case opts.Replicates > MaxReplicates:
		return fail(fmt.Errorf("replicates %d exceeds the limit %d", opts.Replicates, MaxReplicates))
	case opts.Workers < 0 || opts.Workers > MaxWorkers:
		return fail(fmt.Errorf("workers %d outside [0,%d]", opts.Workers, MaxWorkers))
	}

	raw := spec.RawPoints()
	if raw > MaxLatticePoints {
		return fail(fmt.Errorf("lattice expands to %d points, exceeding the limit %d", raw, MaxLatticePoints))
	}
	perPoint := opts.Warmup + opts.Measure + opts.Drain
	if int64(raw)*int64(opts.Replicates)*perPoint > MaxJobCycles {
		return fail(fmt.Errorf("%d lattice points x %d replicates x %d cycles exceeds the job limit %d",
			raw, opts.Replicates, perPoint, int64(MaxJobCycles)))
	}

	exp, err := spec.Expand(opts)
	if err != nil {
		return fail(err)
	}
	return spec, opts, exp, nil
}

// ExploreKey returns the canonical cache key of an exploration. The spec is
// normalised the same way execution normalises it — canonical model names,
// the effective depth axis (the run-options depth for an empty axis, the
// simulator default 4 for a zero entry), the default message length, cost
// width and multicast axis — so requests spelling out the defaults share a
// key with requests omitting them. Workers and progress callbacks are
// excluded: they never change a payload bit.
func ExploreKey(spec explore.Spec, opts experiments.RunOpts) string {
	if opts.Replicates < 1 {
		opts.Replicates = 1
	}
	depth := opts.Depth
	if depth == 0 {
		depth = 4
	}
	depths := spec.Depths
	if len(depths) == 0 {
		depths = []int{depth}
	}
	normDepths := make([]int, len(depths))
	for i, d := range depths {
		if d == 0 {
			d = depth
		}
		normDepths[i] = d
	}
	mcast := spec.Mcast
	if len(mcast) == 0 {
		mcast = []explore.McastKnob{{}}
	}
	msgLen := spec.MsgLen
	if msgLen == 0 {
		msgLen = 16
	}
	width := spec.CostWidth
	if width == 0 {
		width = 32
	}
	return hashKey(struct {
		Kind                   string
		Models                 []string
		Ns                     []int
		Rates                  []float64
		Depths                 []int
		Mcast                  []explore.McastKnob
		MsgLen                 int
		Beta                   float64 `json:",omitempty"`
		Pattern                int     `json:",omitempty"`
		HotspotBias            float64 `json:",omitempty"`
		CostWidth              int
		Warmup, Measure, Drain int64
		Seed                   uint64
		Replicates             int
	}{
		Kind: "explore", Models: spec.Models, Ns: spec.Ns, Rates: spec.Rates,
		Depths: normDepths, Mcast: mcast, MsgLen: msgLen, Beta: spec.Beta,
		Pattern: int(spec.Pattern), HotspotBias: spec.HotspotBias,
		CostWidth: width,
		Warmup:    opts.Warmup, Measure: opts.Measure, Drain: opts.Drain,
		Seed: opts.Seed, Replicates: opts.Replicates,
	})
}

// SkipJSON is one skipped lattice combination.
type SkipJSON struct {
	Model  string `json:"model"`
	N      int    `json:"n"`
	Reason string `json:"reason"`
}

// ExplorePointJSON is one evaluated lattice point of an explore payload.
// Latency is the objective latency (0 when the point measured nothing —
// consult the embedded result's counts); cost_slices is present only for
// models with a calibrated cost model, and cost_known tells the two apart.
// Nothing here depends on how the point was computed (cache or simulation):
// the payload stays a pure function of the request, the property the result
// cache relies on.
type ExplorePointJSON struct {
	Model           string     `json:"model"`
	N               int        `json:"n"`
	Rate            float64    `json:"rate"`
	Depth           int        `json:"depth"`
	McastFrac       float64    `json:"mcast_frac,omitempty"`
	McastSize       int        `json:"mcast_size,omitempty"`
	Latency         float64    `json:"latency,omitempty"`
	Throughput      float64    `json:"throughput"`
	Saturated       bool       `json:"saturated,omitempty"`
	CostSlices      int        `json:"cost_slices,omitempty"`
	CostKnown       bool       `json:"cost_known"`
	AnalyticLatency *float64   `json:"analytic_latency,omitempty"`
	AnalyticErrPc   *float64   `json:"analytic_err_pc,omitempty"`
	OnFront         bool       `json:"on_front"`
	DominatedBy     *int       `json:"dominated_by,omitempty"`
	Result          ResultJSON `json:"result"`
}

// ExploreResultJSON is the payload of a completed explore job: the
// normalised request echo, every lattice point in deterministic lattice
// order, and the Pareto front as sorted point indices.
type ExploreResultJSON struct {
	Models        []string           `json:"models"`
	Ns            []int              `json:"ns"`
	Rates         []float64          `json:"rates"`
	Depths        []int              `json:"depths,omitempty"`
	Mcast         []McastJSON        `json:"mcast,omitempty"`
	MsgLen        int                `json:"msglen"`
	Beta          float64            `json:"beta,omitempty"`
	Pattern       string             `json:"pattern,omitempty"`
	HotspotBias   float64            `json:"hotspot_bias,omitempty"`
	CostWidth     int                `json:"cost_width"`
	Replicates    int                `json:"replicates"`
	LatticePoints int                `json:"lattice_points"`
	Deduped       int                `json:"deduped,omitempty"`
	Skipped       []SkipJSON         `json:"skipped,omitempty"`
	Points        []ExplorePointJSON `json:"points"`
	Front         []int              `json:"front"`
}

// EncodeExplore converts a completed exploration to its wire form.
func EncodeExplore(spec explore.Spec, opts experiments.RunOpts, oc explore.Outcome) ExploreResultJSON {
	out := ExploreResultJSON{
		Models: spec.Models, Ns: spec.Ns, Rates: spec.Rates, Depths: spec.Depths,
		MsgLen: spec.MsgLen, Beta: spec.Beta, HotspotBias: spec.HotspotBias,
		CostWidth:     spec.CostWidth,
		Replicates:    opts.Replicates,
		LatticePoints: len(oc.Points),
		Deduped:       oc.Deduped,
		Front:         oc.Front,
	}
	if out.MsgLen == 0 {
		out.MsgLen = 16
	}
	if out.CostWidth == 0 {
		out.CostWidth = 32
	}
	if out.Replicates < 1 {
		out.Replicates = 1
	}
	if spec.Pattern != traffic.Uniform {
		out.Pattern = PatternName(spec.Pattern)
	}
	for _, k := range spec.Mcast {
		out.Mcast = append(out.Mcast, McastJSON{Frac: k.Frac, Size: k.Size})
	}
	for _, sk := range oc.Skipped {
		out.Skipped = append(out.Skipped, SkipJSON{Model: sk.Model, N: sk.N, Reason: sk.Reason})
	}
	out.Points = make([]ExplorePointJSON, len(oc.Points))
	for i, p := range oc.Points {
		pj := ExplorePointJSON{
			Model: p.Model, N: p.N, Rate: p.Rate, Depth: p.Depth,
			McastFrac: p.McastFrac, McastSize: p.McastSize,
			Throughput: p.Throughput, Saturated: p.Result.Saturated,
			CostSlices: p.CostSlices, CostKnown: p.CostKnown,
			OnFront: oc.DominatedBy[i] == -1,
			Result:  EncodeResult(p.Result),
		}
		if !math.IsInf(p.Latency, 1) {
			pj.Latency = p.Latency
		}
		if p.AnalyticOK && !math.IsInf(p.AnalyticLatency, 1) {
			v := p.AnalyticLatency
			pj.AnalyticLatency = &v
		}
		if p.AnalyticErrOK {
			v := p.AnalyticErrPc
			pj.AnalyticErrPc = &v
		}
		if d := oc.DominatedBy[i]; d >= 0 {
			dd := d
			pj.DominatedBy = &dd
		}
		out.Points[i] = pj
	}
	return out
}

// decodeRunResult reconstructs a simulation result from a cached run
// payload (the wire bytes POST /v1/runs and the explore evaluator both
// store), re-attaching the caller's configuration. ok is false when the
// bytes do not parse — the evaluator then falls back to simulating.
func decodeRunResult(b []byte, cfg experiments.Config) (experiments.Result, bool) {
	var rr RunResult
	if err := json.Unmarshal(b, &rr); err != nil {
		return experiments.Result{}, false
	}
	j := rr.Result
	return experiments.Result{
		Cfg:         cfg,
		UnicastMean: j.UnicastMean, UnicastCI: j.UnicastCI,
		UnicastP50: j.UnicastP50, UnicastP95: j.UnicastP95, UnicastP99: j.UnicastP99,
		UnicastCount: j.UnicastCount,
		BcastMean:    j.BcastMean, BcastCI: j.BcastCI,
		BcastP50: j.BcastP50, BcastP95: j.BcastP95, BcastP99: j.BcastP99,
		BcastDelivery: j.BcastDelivery, BcastCount: j.BcastCount,
		McastCount: j.McastCount,
		Throughput: j.Throughput, Saturated: j.Saturated,
		Leftover: j.Leftover, Duplicates: j.Duplicates, Cycles: j.Cycles,
	}, true
}

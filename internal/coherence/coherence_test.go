package coherence

import (
	"testing"

	"quarc/internal/network"
	"quarc/internal/quarc"
	"quarc/internal/spidergon"
	"quarc/internal/traffic"
)

func quarcNoC(t testing.TB, n int) (*FabricNoC, *network.Fabric) {
	t.Helper()
	fab, ts, err := quarc.Build(quarc.Config{N: n, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	senders := make([]traffic.Sender, n)
	for i, tr := range ts {
		senders[i] = tr
	}
	noc, err := NewFabricNoC(fab, senders)
	if err != nil {
		t.Fatal(err)
	}
	return noc, fab
}

func spiderNoC(t testing.TB, n int) (*FabricNoC, *network.Fabric) {
	t.Helper()
	fab, as, err := spidergon.Build(spidergon.Config{N: n, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	senders := make([]traffic.Sender, n)
	for i, a := range as {
		senders[i] = a
	}
	noc, err := NewFabricNoC(fab, senders)
	if err != nil {
		t.Fatal(err)
	}
	return noc, fab
}

func newSys(t testing.TB, noc *FabricNoC, cores int) *System {
	t.Helper()
	sys, err := NewSystem(Config{
		Cores: cores, Lines: 32, FetchLen: 8, CtrlLen: 2, Seed: 5, WriteFrac: 0.2,
	}, noc)
	if err != nil {
		t.Fatal(err)
	}
	noc.Bind(sys)
	return sys
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Cores: 1, Lines: 4, FetchLen: 4, CtrlLen: 2},
		{Cores: 4, Lines: 0, FetchLen: 4, CtrlLen: 2},
		{Cores: 4, Lines: 4, FetchLen: 1, CtrlLen: 2},
		{Cores: 4, Lines: 4, FetchLen: 4, CtrlLen: 2, WriteFrac: 1.5},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestReadMissFetchesLine(t *testing.T) {
	noc, _ := quarcNoC(t, 8)
	sys := newSys(t, noc, 8)
	// Core 0 reads line 1 (home = node 1): miss -> fetch -> Shared.
	ok, err := sys.Issue(Op{Core: 0, Addr: 1, Write: false}, noc.Now())
	if err != nil || !ok {
		t.Fatalf("issue failed: %v %v", ok, err)
	}
	if !sys.Blocked(0) {
		t.Fatal("core not blocked on miss")
	}
	for i := 0; i < 10000 && noc.InFlight() > 0; i++ {
		noc.Step()
	}
	if sys.Blocked(0) {
		t.Fatal("core still blocked after drain")
	}
	if sys.State(0, 1) != Shared {
		t.Fatalf("line state %v, want S", sys.State(0, 1))
	}
	st := sys.Stats()
	if st.ReadMisses != 1 || st.MeanReadMissLatency() <= 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLocalHomeReadNeedsNoNetwork(t *testing.T) {
	noc, fab := quarcNoC(t, 8)
	sys := newSys(t, noc, 8)
	// Core 1 reads line 1 (home = node 1): local, immediate.
	ok, err := sys.Issue(Op{Core: 1, Addr: 1}, noc.Now())
	if err != nil || !ok {
		t.Fatal("local read failed")
	}
	if sys.Blocked(1) {
		t.Fatal("local read blocked the core")
	}
	if fab.FlitsForwarded() != 0 {
		t.Fatal("local read generated network traffic")
	}
	if sys.State(1, 1) != Shared {
		t.Fatal("line not cached")
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	noc, _ := quarcNoC(t, 8)
	sys := newSys(t, noc, 8)
	// Three cores read line 2 into S.
	for _, core := range []int{0, 1, 3} {
		sys.Issue(Op{Core: core, Addr: 2}, noc.Now())
		for i := 0; i < 10000 && noc.InFlight() > 0; i++ {
			noc.Step()
		}
	}
	// Core 5 writes line 2: everyone else must end Invalid, writer M.
	sys.Issue(Op{Core: 5, Addr: 2, Write: true}, noc.Now())
	for i := 0; i < 10000 && noc.InFlight() > 0; i++ {
		noc.Step()
	}
	if sys.State(5, 2) != Modified {
		t.Fatalf("writer state %v, want M", sys.State(5, 2))
	}
	for _, core := range []int{0, 1, 3} {
		if sys.State(core, 2) != Invalid {
			t.Fatalf("core %d state %v, want I", core, sys.State(core, 2))
		}
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Invalidations != 3 {
		t.Fatalf("invalidations = %d, want 3", st.Invalidations)
	}
	if st.MeanWriteVisibility() <= 0 {
		t.Fatal("no write visibility latency recorded")
	}
}

func TestWriteHitInModifiedIsSilent(t *testing.T) {
	noc, fab := quarcNoC(t, 8)
	sys := newSys(t, noc, 8)
	sys.Issue(Op{Core: 2, Addr: 7, Write: true}, noc.Now())
	for i := 0; i < 10000 && noc.InFlight() > 0; i++ {
		noc.Step()
	}
	before := fab.FlitsForwarded()
	ok, _ := sys.Issue(Op{Core: 2, Addr: 7, Write: true}, noc.Now())
	if !ok || sys.Blocked(2) {
		t.Fatal("M-hit write blocked")
	}
	if fab.FlitsForwarded() != before {
		t.Fatal("M-hit write generated traffic")
	}
	if sys.Stats().WriteHitsM != 1 {
		t.Fatal("write hit not counted")
	}
}

func TestDirtyCopyWritesBack(t *testing.T) {
	noc, _ := quarcNoC(t, 8)
	sys := newSys(t, noc, 8)
	// Core 0 writes line 3 -> M at core 0.
	sys.Issue(Op{Core: 0, Addr: 3, Write: true}, noc.Now())
	for i := 0; i < 10000 && noc.InFlight() > 0; i++ {
		noc.Step()
	}
	// Core 4 writes the same line: core 0's M copy must write back.
	sys.Issue(Op{Core: 4, Addr: 3, Write: true}, noc.Now())
	for i := 0; i < 20000 && noc.InFlight() > 0; i++ {
		noc.Step()
	}
	st := sys.Stats()
	if st.WriteBacks != 1 {
		t.Fatalf("writebacks = %d, want 1", st.WriteBacks)
	}
	if sys.State(0, 3) != Invalid || sys.State(4, 3) != Modified {
		t.Fatalf("states: core0=%v core4=%v", sys.State(0, 3), sys.State(4, 3))
	}
}

func TestBlockedCoreRejectsIssue(t *testing.T) {
	noc, _ := quarcNoC(t, 8)
	sys := newSys(t, noc, 8)
	sys.Issue(Op{Core: 0, Addr: 1}, noc.Now())
	ok, err := sys.Issue(Op{Core: 0, Addr: 2}, noc.Now())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("blocked core accepted a second op")
	}
	if _, err := sys.Issue(Op{Core: 99, Addr: 0}, 0); err == nil {
		t.Fatal("bad core accepted")
	}
}

func TestRandomWorkloadInvariants(t *testing.T) {
	for _, build := range []func(testing.TB, int) (*FabricNoC, *network.Fabric){
		quarcNoC, spiderNoC,
	} {
		noc, fab := build(t, 16)
		sys := newSys(t, noc, 16)
		stats, err := RunWorkload(sys, noc, 16, 3000, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Reads == 0 || stats.Writes == 0 {
			t.Fatalf("workload issued nothing: %+v", stats)
		}
		if fab.Tracker.Duplicates() != 0 {
			t.Fatal("duplicate deliveries under coherence workload")
		}
		if err := sys.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQuarcWriteVisibilityBeatsSpidergon(t *testing.T) {
	// The paper's core claim, at protocol level: identical coherence
	// workload, write visibility several times faster on the Quarc.
	run := func(build func(testing.TB, int) (*FabricNoC, *network.Fabric)) Stats {
		noc, _ := build(t, 16)
		sys := newSys(t, noc, 16)
		stats, err := RunWorkload(sys, noc, 16, 4000, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	q := run(quarcNoC)
	s := run(spiderNoC)
	if q.WriteUpgrades == 0 || s.WriteUpgrades == 0 {
		t.Fatal("no writes upgraded")
	}
	if q.MeanWriteVisibility()*2 >= s.MeanWriteVisibility() {
		t.Errorf("quarc write visibility %.1f not clearly below spidergon %.1f",
			q.MeanWriteVisibility(), s.MeanWriteVisibility())
	}
}

func TestLineStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Modified.String() != "M" {
		t.Fatal("state strings wrong")
	}
	if LineState(9).String() == "" {
		t.Fatal("unknown state must stringify")
	}
}

func TestNewFabricNoCMismatch(t *testing.T) {
	fab, _, err := quarc.Build(quarc.Config{N: 8, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFabricNoC(fab, make([]traffic.Sender, 3)); err == nil {
		t.Fatal("sender count mismatch accepted")
	}
}

func TestManySeedsInvariantRobustness(t *testing.T) {
	// The protocol races (stale fetches vs invalidations, M downgrades)
	// depend on message timing; sweep seeds on both fabrics to shake out
	// interleavings. Each run ends with a full drain and invariant check.
	for seed := uint64(1); seed <= 6; seed++ {
		for _, build := range []func(testing.TB, int) (*FabricNoC, *network.Fabric){
			quarcNoC, spiderNoC,
		} {
			noc, _ := build(t, 16)
			sys, err := NewSystem(Config{
				Cores: 16, Lines: 16, FetchLen: 6, CtrlLen: 2,
				Seed: seed, WriteFrac: 0.35,
			}, noc)
			if err != nil {
				t.Fatal(err)
			}
			noc.Bind(sys)
			if _, err := RunWorkload(sys, noc, 16, 1500, 0.08); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}

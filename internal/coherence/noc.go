package coherence

import (
	"fmt"

	"quarc/internal/network"
	"quarc/internal/traffic"
)

// FabricNoC adapts a simulated fabric (Quarc, Spidergon or mesh) to the
// protocol engine's NoC interface and wires message completions back into
// the protocol.
type FabricNoC struct {
	fab     *network.Fabric
	senders []traffic.Sender
}

// NewFabricNoC wraps a fabric and its per-node adapters. Install the
// returned value into a System and call Bind afterwards so completions flow
// back into the protocol.
func NewFabricNoC(fab *network.Fabric, senders []traffic.Sender) (*FabricNoC, error) {
	if fab.N != len(senders) {
		return nil, fmt.Errorf("coherence: %d senders for %d nodes", len(senders), fab.N)
	}
	return &FabricNoC{fab: fab, senders: senders}, nil
}

// Bind routes fabric message completions into the protocol engine. Any
// previously installed tracker callback is replaced.
func (n *FabricNoC) Bind(sys *System) {
	n.fab.Tracker.OnDone = func(r network.MessageRecord) {
		sys.MessageDone(r.MsgID, r.Last)
	}
}

// Unicast implements NoC.
func (n *FabricNoC) Unicast(src, dst, msgLen int, now int64) uint64 {
	return n.senders[src].SendUnicast(dst, msgLen, now)
}

// Broadcast implements NoC.
func (n *FabricNoC) Broadcast(src, msgLen int, now int64) uint64 {
	return n.senders[src].SendBroadcast(msgLen, now)
}

// Now implements NoC.
func (n *FabricNoC) Now() int64 { return n.fab.Now() }

// Step implements NoC.
func (n *FabricNoC) Step() { n.fab.Step() }

// InFlight implements NoC.
func (n *FabricNoC) InFlight() int { return n.fab.Tracker.InFlight() }

var _ NoC = (*FabricNoC)(nil)

// RunWorkload drives cores through a random read/write mix for the given
// number of issue slots: each cycle every unblocked core issues one
// operation with probability issueProb. It steps the fabric as it goes and
// drains at the end, returning the protocol statistics.
func RunWorkload(sys *System, noc NoC, cores int, cycles int64, issueProb float64) (Stats, error) {
	for c := int64(0); c < cycles; c++ {
		for core := 0; core < cores; core++ {
			if sys.Blocked(core) {
				continue
			}
			op := sys.RandomOp()
			op.Core = core
			if !sys.r.Bernoulli(issueProb) {
				continue
			}
			if _, err := sys.Issue(op, noc.Now()); err != nil {
				return Stats{}, err
			}
		}
		noc.Step()
	}
	for i := 0; i < 200000 && noc.InFlight() > 0; i++ {
		noc.Step()
	}
	if noc.InFlight() > 0 {
		return sys.Stats(), fmt.Errorf("coherence: %d messages undelivered", noc.InFlight())
	}
	if err := sys.CheckInvariants(); err != nil {
		return sys.Stats(), err
	}
	return sys.Stats(), nil
}

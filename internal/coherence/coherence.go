// Package coherence implements a write-invalidate MSI cache-coherence
// protocol on top of the simulated NoC.
//
// The paper motivates the Quarc almost entirely through this workload:
// "Broadcast traffic in NoCs is particularly important in MPSoC as it is the
// key mechanism for keeping caches in sync" (§1) and "As the number of cores
// in MPSoCs grows, cache synchronization will become a bottleneck in
// NoC-based MPSoCs unless the NoC has an efficient broadcast mechanism"
// (§2.2). This package makes that workload concrete: each node hosts a
// private cache over a shared address space with snooping-style,
// broadcast-based invalidation — the design point that NoCs without hardware
// broadcast make expensive.
//
// Protocol (broadcast write-invalidate MSI, no directory):
//
//   - Read hit (S or M): local, no traffic.
//   - Read miss: unicast fetch request to the line's home node (address
//     interleaved); the home unicasts the line back; the line enters S.
//   - Write hit in M: local.
//   - Write (miss or hit in S): the writer broadcasts an invalidation. Every
//     other core invalidates its copy on receipt. The write completes
//     (globally visible) when the LAST core has received the invalidation —
//     the broadcast completion latency of the fabric. The line enters M.
//   - An incoming invalidation for a line a core holds in M demotes it; the
//     dirty data write-back is modelled as a unicast to the home node.
//
// The protocol engine is deliberately event-count exact but data-value
// abstract: it tracks line states, message causality and completion times,
// not byte contents. That is precisely the granularity at which the NoC
// comparison is meaningful.
package coherence

import (
	"fmt"

	"quarc/internal/rng"
)

// LineState is the MSI state of a cache line in one cache.
type LineState uint8

const (
	Invalid LineState = iota
	Shared
	Modified
)

func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("LineState(%d)", uint8(s))
}

// NoC is the fabric interface the protocol drives. Both message kinds report
// completion through the tracker callback installed by the System.
type NoC interface {
	// Unicast sends a msgLen-flit message to dst; returns the message id.
	Unicast(src, dst, msgLen int, now int64) uint64
	// Broadcast sends a msgLen-flit message to everyone; returns the id.
	Broadcast(src, msgLen int, now int64) uint64
	// Now returns the current fabric cycle.
	Now() int64
	// Step advances one cycle.
	Step()
	// InFlight returns the number of incomplete messages.
	InFlight() int
}

// Op is one memory operation issued by a core.
type Op struct {
	Core  int
	Addr  uint32
	Write bool
}

// Config sizes the coherence system.
type Config struct {
	Cores     int
	Lines     int // distinct cache lines in the shared working set
	FetchLen  int // flits per line fetch reply (data message)
	CtrlLen   int // flits per control message (requests, invalidations)
	Seed      uint64
	WriteFrac float64 // fraction of accesses that are writes
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Cores < 2:
		return fmt.Errorf("coherence: %d cores", c.Cores)
	case c.Lines < 1:
		return fmt.Errorf("coherence: %d lines", c.Lines)
	case c.FetchLen < 2 || c.CtrlLen < 2:
		return fmt.Errorf("coherence: message lengths must be >= 2 flits")
	case c.WriteFrac < 0 || c.WriteFrac > 1:
		return fmt.Errorf("coherence: write fraction %v", c.WriteFrac)
	}
	return nil
}

// Stats aggregates protocol-level results.
type Stats struct {
	Reads           int64
	Writes          int64
	ReadHits        int64
	ReadMisses      int64
	WriteUpgrades   int64 // writes that needed an invalidation broadcast
	WriteHitsM      int64 // silent writes (already Modified)
	Invalidations   int64 // line copies invalidated at remote cores
	WriteBacks      int64
	SumWriteVisible int64 // total cycles from write issue to global visibility
	SumReadLatency  int64 // total cycles from read miss to line arrival
}

// MeanWriteVisibility returns the average cycles for a write to become
// globally visible (invalidation broadcast completion).
func (s Stats) MeanWriteVisibility() float64 {
	if s.WriteUpgrades == 0 {
		return 0
	}
	return float64(s.SumWriteVisible) / float64(s.WriteUpgrades)
}

// MeanReadMissLatency returns the average read miss service time.
func (s Stats) MeanReadMissLatency() float64 {
	if s.ReadMisses == 0 {
		return 0
	}
	return float64(s.SumReadLatency) / float64(s.ReadMisses)
}

// System is the protocol engine.
type System struct {
	cfg   Config
	noc   NoC
	state [][]LineState // [core][line]
	stats Stats

	// pending maps in-flight NoC message ids to completion actions.
	pending map[uint64]pendingOp
	// blocked cores wait for an outstanding miss/upgrade to finish.
	blocked []bool
	// epoch serialises writes against in-flight fetches: each completed
	// invalidation bumps the line's epoch, and a data reply issued under an
	// older epoch is stale and must not install a Shared copy (the core
	// retries on its next access). This is the race a directory would
	// serialise in a real implementation.
	epoch []uint64
	r     *rng.Stream
}

type pendingKind uint8

const (
	pendingFetch pendingKind = iota // read miss: request leg
	pendingReply                    // read miss: data leg
	pendingInval                    // write upgrade broadcast
	pendingWB                       // write-back (fire and forget)
)

type pendingOp struct {
	kind   pendingKind
	core   int
	line   int
	issued int64
	epoch  uint64 // line epoch at issue time (fetch staleness check)
}

// NewSystem builds a coherence system over the given fabric.
func NewSystem(cfg Config, noc NoC) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st := make([][]LineState, cfg.Cores)
	for i := range st {
		st[i] = make([]LineState, cfg.Lines)
	}
	return &System{
		cfg:     cfg,
		noc:     noc,
		state:   st,
		pending: make(map[uint64]pendingOp),
		blocked: make([]bool, cfg.Cores),
		epoch:   make([]uint64, cfg.Lines),
		r:       rng.New(cfg.Seed, 0xC0DE),
	}, nil
}

// Stats returns the accumulated protocol statistics.
func (s *System) Stats() Stats { return s.stats }

// State returns the MSI state of a line in a core's cache (test hook).
func (s *System) State(core, line int) LineState { return s.state[core][line] }

// Blocked reports whether a core has an outstanding miss.
func (s *System) Blocked(core int) bool { return s.blocked[core] }

// home returns the line's home node (address-interleaved).
func (s *System) home(line int) int { return line % s.cfg.Cores }

// Issue submits one memory operation. It returns false if the core is
// blocked on an outstanding miss (the caller retries later), and an error
// for invalid operations.
func (s *System) Issue(op Op, now int64) (bool, error) {
	if op.Core < 0 || op.Core >= s.cfg.Cores {
		return false, fmt.Errorf("coherence: no such core %d", op.Core)
	}
	line := int(op.Addr) % s.cfg.Lines
	if s.blocked[op.Core] {
		return false, nil
	}
	st := s.state[op.Core][line]
	if op.Write {
		s.stats.Writes++
		if st == Modified {
			s.stats.WriteHitsM++
			return true, nil
		}
		// Upgrade: broadcast the invalidation; the write is visible when
		// the last core has seen it.
		s.stats.WriteUpgrades++
		id := s.noc.Broadcast(op.Core, s.cfg.CtrlLen, now)
		s.pending[id] = pendingOp{kind: pendingInval, core: op.Core, line: line, issued: now}
		s.blocked[op.Core] = true
		return true, nil
	}
	s.stats.Reads++
	if st != Invalid {
		s.stats.ReadHits++
		return true, nil
	}
	s.stats.ReadMisses++
	home := s.home(line)
	if home == op.Core {
		// Local home: the request leg needs no network traffic, but the
		// home still serialises the access: a Modified holder elsewhere is
		// downgraded and writes its dirty copy back before the local read
		// completes.
		for c := 0; c < s.cfg.Cores; c++ {
			if s.state[c][line] != Modified {
				continue
			}
			s.state[c][line] = Shared
			s.stats.WriteBacks++
			if c != home {
				id := s.noc.Unicast(c, home, s.cfg.FetchLen, now)
				s.pending[id] = pendingOp{kind: pendingWB, core: c, line: line, issued: now}
			}
		}
		s.state[op.Core][line] = Shared
		return true, nil
	}
	id := s.noc.Unicast(op.Core, home, s.cfg.CtrlLen, now)
	s.pending[id] = pendingOp{kind: pendingFetch, core: op.Core, line: line,
		issued: now, epoch: s.epoch[line]}
	s.blocked[op.Core] = true
	return true, nil
}

// MessageDone must be called when a NoC message completes (wired to the
// fabric tracker by the harness). Unknown ids are ignored: the workload may
// share the fabric with other traffic.
func (s *System) MessageDone(msgID uint64, completed int64) {
	p, ok := s.pending[msgID]
	if !ok {
		return
	}
	delete(s.pending, msgID)
	switch p.kind {
	case pendingFetch:
		// Request arrived at the home, which serialises accesses to the
		// line: a Modified holder is downgraded to Shared (its dirty data
		// written back) before the data is returned.
		for c := 0; c < s.cfg.Cores; c++ {
			if s.state[c][p.line] != Modified {
				continue
			}
			s.state[c][p.line] = Shared
			s.stats.WriteBacks++
			if home := s.home(p.line); home != c {
				id := s.noc.Unicast(c, home, s.cfg.FetchLen, completed)
				s.pending[id] = pendingOp{kind: pendingWB, core: c, line: p.line, issued: completed}
			}
		}
		// The reply carries the line as of this serialisation point; an
		// invalidation completing while it is in flight makes it stale.
		id := s.noc.Unicast(s.home(p.line), p.core, s.cfg.FetchLen, completed)
		s.pending[id] = pendingOp{kind: pendingReply, core: p.core, line: p.line,
			issued: p.issued, epoch: s.epoch[p.line]}
	case pendingReply:
		if s.epoch[p.line] == p.epoch {
			s.state[p.core][p.line] = Shared
		}
		// A stale reply (an invalidation completed meanwhile) unblocks the
		// core without installing the line; its next access misses again.
		s.stats.SumReadLatency += completed - p.issued
		s.blocked[p.core] = false
	case pendingInval:
		// Every other core drops its copy; cores holding M write back.
		for c := 0; c < s.cfg.Cores; c++ {
			if c == p.core {
				continue
			}
			switch s.state[c][p.line] {
			case Modified:
				s.stats.WriteBacks++
				home := s.home(p.line)
				if home != c {
					id := s.noc.Unicast(c, home, s.cfg.FetchLen, completed)
					s.pending[id] = pendingOp{kind: pendingWB, core: c, line: p.line, issued: completed}
				}
				s.state[c][p.line] = Invalid
				s.stats.Invalidations++
			case Shared:
				s.state[c][p.line] = Invalid
				s.stats.Invalidations++
			}
		}
		s.state[p.core][p.line] = Modified
		s.epoch[p.line]++
		s.stats.SumWriteVisible += completed - p.issued
		s.blocked[p.core] = false
	case pendingWB:
		// Fire and forget.
	}
}

// CheckInvariants verifies single-writer/multiple-reader: at most one core
// holds a line in M, and if any core holds M no other core holds S. It is
// called by tests after every drain.
func (s *System) CheckInvariants() error {
	for line := 0; line < s.cfg.Lines; line++ {
		mHolders, sHolders := 0, 0
		for c := 0; c < s.cfg.Cores; c++ {
			switch s.state[c][line] {
			case Modified:
				mHolders++
			case Shared:
				sHolders++
			}
		}
		if mHolders > 1 {
			return fmt.Errorf("coherence: line %d modified in %d caches", line, mHolders)
		}
		if mHolders == 1 && sHolders > 0 {
			return fmt.Errorf("coherence: line %d M with %d sharers", line, sHolders)
		}
	}
	return nil
}

// RandomOp draws a random operation according to the configured write
// fraction and a uniformly random core and line.
func (s *System) RandomOp() Op {
	return Op{
		Core:  s.r.Intn(s.cfg.Cores),
		Addr:  uint32(s.r.Intn(s.cfg.Lines)),
		Write: s.r.Bernoulli(s.cfg.WriteFrac),
	}
}

package topology

import "fmt"

// Mesh describes a W x H 2D mesh (or torus) with nodes numbered row-major:
// node = y*W + x. Meshes are used to verify the simulator against analytical
// models (paper §3.2) and for the future-work comparison the conclusion
// announces.
type Mesh struct {
	W, H  int
	Torus bool // wraparound links in both dimensions
}

// NewMesh validates and returns a mesh geometry.
func NewMesh(w, h int, torus bool) (Mesh, error) {
	if w < 2 || h < 2 {
		return Mesh{}, fmt.Errorf("topology: mesh %dx%d too small", w, h)
	}
	if w*h > 1024 {
		return Mesh{}, fmt.Errorf("topology: mesh %dx%d too large", w, h)
	}
	return Mesh{W: w, H: h, Torus: torus}, nil
}

// N returns the node count.
func (m Mesh) N() int { return m.W * m.H }

// XY returns the coordinates of node id.
func (m Mesh) XY(id int) (x, y int) { return id % m.W, id / m.W }

// ID returns the node at coordinates (x, y).
func (m Mesh) ID(x, y int) int { return y*m.W + x }

// MeshDir is a mesh output direction under dimension-order (XY) routing.
type MeshDir int

const (
	MEast MeshDir = iota
	MWest
	MNorth // +y
	MSouth // -y
	MLocal
)

func (d MeshDir) String() string {
	switch d {
	case MEast:
		return "east"
	case MWest:
		return "west"
	case MNorth:
		return "north"
	case MSouth:
		return "south"
	case MLocal:
		return "local"
	}
	return fmt.Sprintf("MeshDir(%d)", int(d))
}

// Step returns the next direction under XY routing from cur toward dst, and
// the neighbouring node in that direction. Returns MLocal when cur == dst.
// On a torus it takes the shorter way around each dimension, preferring the
// positive direction on ties (deterministic).
func (m Mesh) Step(cur, dst int) (MeshDir, int) {
	if cur == dst {
		return MLocal, cur
	}
	cx, cy := m.XY(cur)
	dx, dy := m.XY(dst)
	if cx != dx {
		if m.Torus {
			fwd := Mod(dx-cx, m.W)
			if fwd <= m.W-fwd {
				return MEast, m.ID(Mod(cx+1, m.W), cy)
			}
			return MWest, m.ID(Mod(cx-1, m.W), cy)
		}
		if dx > cx {
			return MEast, m.ID(cx+1, cy)
		}
		return MWest, m.ID(cx-1, cy)
	}
	if m.Torus {
		fwd := Mod(dy-cy, m.H)
		if fwd <= m.H-fwd {
			return MNorth, m.ID(cx, Mod(cy+1, m.H))
		}
		return MSouth, m.ID(cx, Mod(cy-1, m.H))
	}
	if dy > cy {
		return MNorth, m.ID(cx, cy+1)
	}
	return MSouth, m.ID(cx, cy-1)
}

// Hops returns the XY-routed hop count between two nodes.
func (m Mesh) Hops(src, dst int) int {
	h := 0
	cur := src
	for cur != dst {
		_, cur = m.Step(cur, dst)
		h++
		if h > m.N() {
			panic("topology: mesh routing did not terminate")
		}
	}
	return h
}

// Diameter returns the max XY hop count over all pairs.
func (m Mesh) Diameter() int {
	max := 0
	for s := 0; s < m.N(); s++ {
		for d := 0; d < m.N(); d++ {
			if h := m.Hops(s, d); h > max {
				max = h
			}
		}
	}
	return max
}

// AvgHops returns the exact mean hop count over ordered pairs.
func (m Mesh) AvgHops() float64 {
	sum, cnt := 0, 0
	for s := 0; s < m.N(); s++ {
		for d := 0; d < m.N(); d++ {
			if s == d {
				continue
			}
			sum += m.Hops(s, d)
			cnt++
		}
	}
	return float64(sum) / float64(cnt)
}

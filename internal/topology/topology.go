// Package topology implements the graph-level mathematics of the Quarc,
// Spidergon, mesh and torus topologies: quadrant calculation, deterministic
// shortest-path routing, hop counts, diameters and average distances.
//
// Everything here is pure arithmetic over node identifiers, shared by the
// cycle-level switch models (internal/quarc, internal/spidergon,
// internal/mesh), the analytical models (internal/analytic) and the
// experiment harness. Keeping it separate lets the routing discipline be
// tested exhaustively against the paper's stated properties (diameter N/4,
// edge symmetry, the Fig 6 broadcast example) without running the simulator.
package topology

import "fmt"

// Ring direction constants used by both Quarc and Spidergon.
type Direction int

const (
	CW  Direction = iota // clockwise: node i -> i+1 mod N
	CCW                  // counter-clockwise: node i -> i-1 mod N
)

func (d Direction) String() string {
	if d == CW {
		return "cw"
	}
	return "ccw"
}

// ValidateRingSize checks the constraints shared by Quarc and Spidergon:
// an even number of nodes, at least 8, divisible by 4 (quadrants), and at
// most 64 (single-flit header addressing, paper §2.6).
func ValidateRingSize(n int) error {
	switch {
	case n < 8:
		return fmt.Errorf("topology: %d nodes, need at least 8", n)
	case n%4 != 0:
		return fmt.Errorf("topology: %d nodes, need a multiple of 4 for quadrants", n)
	case n > 64:
		return fmt.Errorf("topology: %d nodes exceeds the 64-node header format", n)
	}
	return nil
}

// Mod returns x mod n in [0, n).
func Mod(x, n int) int {
	m := x % n
	if m < 0 {
		m += n
	}
	return m
}

// Offset returns the clockwise offset (dst - src) mod n; 0 means src == dst.
func Offset(n, src, dst int) int { return Mod(dst-src, n) }

// NextCW and NextCCW return ring neighbours.
func NextCW(n, i int) int  { return Mod(i+1, n) }
func NextCCW(n, i int) int { return Mod(i-1, n) }

// Antipode returns the node reached by the cross link.
func Antipode(n, i int) int { return Mod(i+n/2, n) }

package topology

import "testing"

func TestSpidergonRouteBoundaries(t *testing.T) {
	// n = 16: offsets 1..4 CW, 5..11 cross, 12..15 CCW.
	want := map[int]SpidergonFirst{
		1: SpiCW, 4: SpiCW,
		5: SpiCross, 8: SpiCross, 11: SpiCross,
		12: SpiCCW, 15: SpiCCW,
	}
	for o, f := range want {
		if got := SpidergonRoute(16, 0, o); got != f {
			t.Errorf("SpidergonRoute(16,0,%d) = %v, want %v", o, got, f)
		}
	}
}

func TestSpidergonRoutePanicsOnSelf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for src == dst")
		}
	}()
	SpidergonRoute(16, 2, 2)
}

func TestSpidergonHopsMatchPaths(t *testing.T) {
	for _, n := range ringSizes {
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				p := SpidergonPath(n, s, d)
				if len(p)-1 != SpidergonHops(n, s, d) {
					t.Fatalf("n=%d %d->%d: path %v vs hops %d", n, s, d, p, SpidergonHops(n, s, d))
				}
				if p[0] != s || p[len(p)-1] != d {
					t.Fatalf("n=%d %d->%d: endpoints wrong: %v", n, s, d, p)
				}
				for i := 0; i+1 < len(p); i++ {
					a, b := p[i], p[i+1]
					rim := b == NextCW(n, a) || b == NextCCW(n, a)
					cross := i == 0 && b == Antipode(n, a)
					if !rim && !cross {
						t.Fatalf("n=%d %d->%d: illegal step %d->%d", n, s, d, a, b)
					}
				}
			}
		}
	}
}

func TestSpidergonDiameter(t *testing.T) {
	// Across-first: worst case is an offset just past n/4 or just before
	// 3n/4: cross plus (n/4 - 1) rim hops = n/4 on even quarters.
	for _, n := range ringSizes {
		want := 0
		for o := 1; o < n; o++ {
			h := SpidergonHops(n, 0, o)
			if h > want {
				want = h
			}
		}
		if d := SpidergonDiameter(n); d != want {
			t.Errorf("SpidergonDiameter(%d) = %d, want %d", n, d, want)
		}
	}
	if SpidergonDiameter(16) != 4 {
		t.Errorf("SpidergonDiameter(16) = %d, want 4", SpidergonDiameter(16))
	}
}

func TestSpidergonVsQuarcHops(t *testing.T) {
	// The Quarc routes are never longer than the Spidergon routes (the
	// doubled cross link can only help), and both have diameter n/4.
	for _, n := range ringSizes {
		for o := 1; o < n; o++ {
			q, s := QuarcHops(n, 0, o), SpidergonHops(n, 0, o)
			if q > s {
				t.Fatalf("n=%d o=%d: quarc %d > spidergon %d", n, o, q, s)
			}
		}
	}
}

func TestSpidergonBroadcastChains(t *testing.T) {
	for _, n := range ringSizes {
		for s := 0; s < n; s += 3 {
			chains := SpidergonBroadcastChains(n, s)
			seen := map[int]int{}
			total := 0
			for _, c := range chains {
				for i, node := range c.Nodes {
					seen[node]++
					total++
					// Chain nodes are consecutive rim neighbours.
					prev := s
					if i > 0 {
						prev = c.Nodes[i-1]
					}
					var want int
					if c.Dir == CW {
						want = NextCW(n, prev)
					} else {
						want = NextCCW(n, prev)
					}
					if node != want {
						t.Fatalf("n=%d s=%d: chain %v not consecutive at %d", n, s, c.Dir, i)
					}
				}
			}
			if total != n-1 {
				t.Fatalf("n=%d s=%d: chains cover %d nodes, want %d", n, s, total, n-1)
			}
			for d, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d s=%d: node %d covered %d times", n, s, d, c)
				}
			}
		}
	}
}

func TestSpidergonChainHopBudget(t *testing.T) {
	// Paper §2.1: broadcast requires traversing N-1 hops in total.
	for _, n := range ringSizes {
		hops := 0
		for _, c := range SpidergonBroadcastChains(n, 0) {
			hops += len(c.Nodes)
		}
		if hops != n-1 {
			t.Errorf("n=%d: chains traverse %d hops, want %d", n, hops, n-1)
		}
	}
}

func TestRimVCDateline(t *testing.T) {
	n := 16
	// CW: only the link leaving n-1 switches to VC1; afterwards it sticks.
	if RimVC(n, CW, 3, 0) != 0 {
		t.Fatal("CW non-dateline link should stay on VC0")
	}
	if RimVC(n, CW, n-1, 0) != 1 {
		t.Fatal("CW dateline link should switch to VC1")
	}
	if RimVC(n, CW, 3, 1) != 1 {
		t.Fatal("VC1 must be sticky")
	}
	// CCW: the link leaving node 0.
	if RimVC(n, CCW, 0, 0) != 1 || RimVC(n, CCW, 5, 0) != 0 {
		t.Fatal("CCW dateline wrong")
	}
}

func TestVCMonotoneAlongRoutes(t *testing.T) {
	// A packet's VC never decreases and switches at most once.
	for _, n := range []int{8, 16, 32, 64} {
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				for _, chs := range [][]Channel{
					QuarcRouteChannels(n, s, d),
					SpidergonRouteChannels(n, s, d),
				} {
					prev := 0
					switches := 0
					for _, ch := range chs {
						if ch.VC < prev {
							t.Fatalf("n=%d %d->%d: VC decreased along %v", n, s, d, chs)
						}
						if ch.VC > prev {
							switches++
						}
						prev = ch.VC
					}
					if switches > 1 {
						t.Fatalf("n=%d %d->%d: VC switched %d times", n, s, d, switches)
					}
				}
			}
		}
	}
}

func TestQuarcCDGAcyclic(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64} {
		ok, stuck := QuarcCDG(n).Acyclic()
		if !ok {
			t.Errorf("n=%d: Quarc channel dependency graph has a cycle through %v", n, stuck)
		}
	}
}

func TestSpidergonCDGAcyclic(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64} {
		ok, stuck := SpidergonCDG(n).Acyclic()
		if !ok {
			t.Errorf("n=%d: Spidergon channel dependency graph has a cycle through %v", n, stuck)
		}
	}
}

func TestCDGWithoutDatelineHasCycle(t *testing.T) {
	// Sanity check of the checker itself: a single-VC unidirectional ring
	// must be reported cyclic.
	g := NewCDG()
	n := 8
	for s := 0; s < n; s++ {
		var chs []Channel
		cur := s
		for i := 0; i < n/2; i++ { // routes long enough to chain all links
			chs = append(chs, Channel{ChRimCW, cur, 0})
			cur = NextCW(n, cur)
		}
		g.AddPath(chs)
	}
	if ok, _ := g.Acyclic(); ok {
		t.Fatal("single-VC ring CDG reported acyclic; checker is broken")
	}
}

func TestSpidergonAvgHopsSanity(t *testing.T) {
	// Average distance grows with n and sits between 1 and the diameter.
	prev := 0.0
	for _, n := range ringSizes {
		avg := SpidergonAvgHops(n)
		if avg <= 1 || avg > float64(SpidergonDiameter(n)) {
			t.Errorf("n=%d: implausible avg hops %v", n, avg)
		}
		if avg < prev {
			t.Errorf("avg hops not monotone in n at n=%d", n)
		}
		prev = avg
	}
}

package topology

import "fmt"

// SpidergonFirst identifies the first hop chosen by the Spidergon's
// deterministic "across-first" routing (paper §2.1, ref [5]): either a rim
// direction, or the single shared cross link followed by rim hops.
type SpidergonFirst int

const (
	SpiCW SpidergonFirst = iota
	SpiCCW
	SpiCross
)

func (s SpidergonFirst) String() string {
	switch s {
	case SpiCW:
		return "cw"
	case SpiCCW:
		return "ccw"
	case SpiCross:
		return "cross"
	}
	return fmt.Sprintf("SpidergonFirst(%d)", int(s))
}

// SpidergonRoute returns the first-hop decision for dst relative to src.
// With o = (dst-src) mod n: o <= n/4 goes clockwise, o >= 3n/4 goes
// counter-clockwise, anything else takes the cross link first and finishes
// on the rim at the antipode.
func SpidergonRoute(n, src, dst int) SpidergonFirst {
	o := Offset(n, src, dst)
	if o == 0 {
		panic(fmt.Sprintf("topology: SpidergonRoute with src == dst == %d", src))
	}
	switch {
	case o <= n/4:
		return SpiCW
	case o >= 3*n/4:
		return SpiCCW
	default:
		return SpiCross
	}
}

// SpidergonHops returns the across-first path length from src to dst.
func SpidergonHops(n, src, dst int) int {
	if src == dst {
		return 0
	}
	o := Offset(n, src, dst)
	switch SpidergonRoute(n, src, dst) {
	case SpiCW:
		return o
	case SpiCCW:
		return n - o
	default:
		// Cross to the antipode, then the shorter rim arc.
		rem := o - n/2
		if rem < 0 {
			rem = -rem
		}
		return 1 + rem
	}
}

// SpidergonPath returns the node sequence from src to dst inclusive.
func SpidergonPath(n, src, dst int) []int {
	path := []int{src}
	if src == dst {
		return path
	}
	cur := src
	first := SpidergonRoute(n, src, dst)
	if first == SpiCross {
		cur = Antipode(n, cur)
		path = append(path, cur)
		if cur == dst {
			return path
		}
	}
	// Remaining rim direction: shorter arc from cur to dst.
	dir := CW
	if o := Offset(n, cur, dst); o > n/2 || first == SpiCCW {
		dir = CCW
	}
	for cur != dst {
		if dir == CW {
			cur = NextCW(n, cur)
		} else {
			cur = NextCCW(n, cur)
		}
		path = append(path, cur)
		if len(path) > n+1 {
			panic("topology: SpidergonPath did not terminate")
		}
	}
	return path
}

// SpidergonDiameter returns the across-first routed diameter: the worst
// destination needs the cross link plus n/4 - 1 rim hops... computed exactly
// by enumeration to avoid off-by-one disputes.
func SpidergonDiameter(n int) int {
	max := 0
	for o := 1; o < n; o++ {
		if h := SpidergonHops(n, 0, o); h > max {
			max = h
		}
	}
	return max
}

// SpidergonAvgHops returns the exact mean across-first hop count over all
// ordered pairs.
func SpidergonAvgHops(n int) float64 {
	sum := 0
	for o := 1; o < n; o++ {
		sum += SpidergonHops(n, 0, o)
	}
	return float64(sum) / float64(n-1)
}

// SpidergonChain describes one of the two broadcast-by-unicast chains
// (paper §2.1/§2.2: deadlock-free broadcast in the Spidergon is achieved by
// consecutive unicast transmissions along the rim, N-1 hop traversals in
// total). Nodes lists the receivers in chain order.
type SpidergonChain struct {
	Dir   Direction
	Nodes []int
}

// SpidergonBroadcastChains splits the n-1 receivers into a clockwise chain
// of ceil((n-1)/2) nodes and a counter-clockwise chain with the rest.
func SpidergonBroadcastChains(n, src int) []SpidergonChain {
	cwLen := (n - 1 + 1) / 2 // ceil((n-1)/2)
	var cw, ccw []int
	for i := 1; i <= cwLen; i++ {
		cw = append(cw, Mod(src+i, n))
	}
	for i := 1; i <= n-1-cwLen; i++ {
		ccw = append(ccw, Mod(src-i, n))
	}
	chains := []SpidergonChain{{Dir: CW, Nodes: cw}}
	if len(ccw) > 0 {
		chains = append(chains, SpidergonChain{Dir: CCW, Nodes: ccw})
	}
	return chains
}

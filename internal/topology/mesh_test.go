package topology

import (
	"testing"
	"testing/quick"
)

func TestNewMeshValidation(t *testing.T) {
	if _, err := NewMesh(1, 4, false); err == nil {
		t.Error("accepted 1-wide mesh")
	}
	if _, err := NewMesh(4, 1, false); err == nil {
		t.Error("accepted 1-high mesh")
	}
	if _, err := NewMesh(64, 64, false); err == nil {
		t.Error("accepted oversized mesh")
	}
	if _, err := NewMesh(4, 4, true); err != nil {
		t.Errorf("rejected 4x4 torus: %v", err)
	}
}

func TestMeshCoordinates(t *testing.T) {
	m, _ := NewMesh(4, 3, false)
	if m.N() != 12 {
		t.Fatalf("N = %d", m.N())
	}
	for id := 0; id < m.N(); id++ {
		x, y := m.XY(id)
		if m.ID(x, y) != id {
			t.Fatalf("XY/ID mismatch at %d", id)
		}
	}
	if x, y := m.XY(7); x != 3 || y != 1 {
		t.Fatalf("XY(7) = (%d,%d)", x, y)
	}
}

func TestMeshHopsAreManhattan(t *testing.T) {
	m, _ := NewMesh(5, 4, false)
	for s := 0; s < m.N(); s++ {
		for d := 0; d < m.N(); d++ {
			sx, sy := m.XY(s)
			dx, dy := m.XY(d)
			want := abs(sx-dx) + abs(sy-dy)
			if got := m.Hops(s, d); got != want {
				t.Fatalf("Hops(%d,%d) = %d, want manhattan %d", s, d, got, want)
			}
		}
	}
}

func TestMeshXYOrder(t *testing.T) {
	// XY routing resolves the X dimension completely before Y.
	m, _ := NewMesh(4, 4, false)
	src, dst := m.ID(0, 0), m.ID(3, 3)
	cur := src
	sawY := false
	for cur != dst {
		dir, next := m.Step(cur, dst)
		switch dir {
		case MEast, MWest:
			if sawY {
				t.Fatal("X move after Y move: not XY routing")
			}
		case MNorth, MSouth:
			sawY = true
		}
		cur = next
	}
}

func TestTorusTakesShorterWay(t *testing.T) {
	m, _ := NewMesh(8, 8, true)
	// From (0,0) to (7,0): one west hop on a torus.
	if got := m.Hops(m.ID(0, 0), m.ID(7, 0)); got != 1 {
		t.Fatalf("torus wrap hops = %d, want 1", got)
	}
	// From (0,0) to (4,0): tie, should still be 4.
	if got := m.Hops(m.ID(0, 0), m.ID(4, 0)); got != 4 {
		t.Fatalf("torus half-way hops = %d, want 4", got)
	}
}

func TestMeshDiameter(t *testing.T) {
	m, _ := NewMesh(4, 4, false)
	if d := m.Diameter(); d != 6 {
		t.Fatalf("4x4 mesh diameter = %d, want 6", d)
	}
	tor, _ := NewMesh(4, 4, true)
	if d := tor.Diameter(); d != 4 {
		t.Fatalf("4x4 torus diameter = %d, want 4", d)
	}
}

func TestMeshVsQuarcDiameterClaim(t *testing.T) {
	// Paper §2.6 motivates capping the Quarc at 64 nodes because its n/4
	// diameter eventually exceeds the mesh's 2(sqrt(n)-1). Check the small
	// sizes where the ring still wins or ties, and that the crossover has
	// happened by n = 64 (16 vs 14), which is why larger Quarcs are not
	// worthwhile.
	for _, n := range []int{16, 36} {
		side := 1
		for side*side < n {
			side++
		}
		m, _ := NewMesh(side, side, false)
		if QuarcDiameter(n) > m.Diameter() {
			t.Errorf("n=%d: quarc diameter %d > mesh diameter %d",
				n, QuarcDiameter(n), m.Diameter())
		}
	}
	m8, _ := NewMesh(8, 8, false)
	if QuarcDiameter(64) <= m8.Diameter() {
		t.Errorf("n=64: expected the mesh to have caught up (quarc %d vs mesh %d)",
			QuarcDiameter(64), m8.Diameter())
	}
}

func TestMeshStepTerminatesProperty(t *testing.T) {
	check := func(w, h uint8, s, d uint16, torus bool) bool {
		mw, mh := int(w%6)+2, int(h%6)+2
		m, err := NewMesh(mw, mh, torus)
		if err != nil {
			return false
		}
		src := int(s) % m.N()
		dst := int(d) % m.N()
		cur := src
		for steps := 0; cur != dst; steps++ {
			if steps > m.N() {
				return false
			}
			_, cur = m.Step(cur, dst)
		}
		dir, next := m.Step(dst, dst)
		return dir == MLocal && next == dst
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMeshAvgHops(t *testing.T) {
	// Known closed form for a k x k mesh under XY: 2/3 * (k - 1/k) ... use
	// the 2x2 case where the exact average is easy: pairs at distance 1 (8)
	// and 2 (4): 16/12.
	m, _ := NewMesh(2, 2, false)
	want := 16.0 / 12.0
	if got := m.AvgHops(); got < want-1e-12 || got > want+1e-12 {
		t.Fatalf("2x2 AvgHops = %v, want %v", got, want)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

package topology

import "fmt"

// Quadrant identifies which of the four ports of the all-port Quarc router a
// message is injected into (paper §2.4: the transceiver's quadrant
// calculator). The names follow the direction the packet travels on the rim;
// the two cross quadrants use the doubled cross link first.
type Quadrant int

const (
	QRight    Quadrant = iota // rim, clockwise
	QLeft                     // rim, counter-clockwise
	QCrossCW                  // cross link, then rim clockwise
	QCrossCCW                 // cross link, then rim counter-clockwise
)

const NumQuadrants = 4

func (q Quadrant) String() string {
	switch q {
	case QRight:
		return "right"
	case QLeft:
		return "left"
	case QCrossCW:
		return "cross-cw"
	case QCrossCCW:
		return "cross-ccw"
	}
	return fmt.Sprintf("Quadrant(%d)", int(q))
}

// QuadrantOf computes the quadrant of dst relative to src in an n-node Quarc
// (the transceiver's quadrant calculator, §2.4/§2.5.1). src == dst is
// invalid.
//
// With o = (dst-src) mod n:
//
//	1      <= o <= n/4    right      (rim CW, o hops)
//	n/4+1  <= o <= n/2    cross-ccw  (cross then rim CCW, 1 + n/2 - o hops)
//	n/2+1  <= o <= 3n/4-1 cross-cw   (cross then rim CW, 1 + o - n/2 hops)
//	3n/4   <= o <= n-1    left       (rim CCW, n - o hops)
func QuadrantOf(n, src, dst int) Quadrant {
	o := Offset(n, src, dst)
	if o == 0 {
		panic(fmt.Sprintf("topology: QuadrantOf with src == dst == %d", src))
	}
	switch {
	case o <= n/4:
		return QRight
	case o <= n/2:
		return QCrossCCW
	case o < 3*n/4:
		return QCrossCW
	default:
		return QLeft
	}
}

// QuarcHops returns the deterministic shortest-path hop count from src to
// dst (0 when equal).
func QuarcHops(n, src, dst int) int {
	if src == dst {
		return 0
	}
	o := Offset(n, src, dst)
	switch QuadrantOf(n, src, dst) {
	case QRight:
		return o
	case QCrossCCW:
		return 1 + n/2 - o
	case QCrossCW:
		return 1 + o - n/2
	default: // QLeft
		return n - o
	}
}

// QuarcPath returns the node sequence visited from src to dst, inclusive of
// both endpoints, following the deterministic route.
func QuarcPath(n, src, dst int) []int {
	path := []int{src}
	if src == dst {
		return path
	}
	cur := src
	q := QuadrantOf(n, src, dst)
	if q == QCrossCW || q == QCrossCCW {
		cur = Antipode(n, cur)
		path = append(path, cur)
	}
	dir := CW
	if q == QLeft || q == QCrossCCW {
		dir = CCW
	}
	for cur != dst {
		if dir == CW {
			cur = NextCW(n, cur)
		} else {
			cur = NextCCW(n, cur)
		}
		path = append(path, cur)
		if len(path) > n+1 {
			panic("topology: QuarcPath did not terminate")
		}
	}
	return path
}

// QuarcDiameter returns the network diameter, n/4 (paper §2.6).
func QuarcDiameter(n int) int { return n / 4 }

// QuarcAvgHops returns the exact mean shortest-path hop count over all
// ordered src != dst pairs.
func QuarcAvgHops(n int) float64 {
	sum := 0
	for o := 1; o < n; o++ {
		sum += QuarcHops(n, 0, Mod(o, n))
	}
	return float64(sum) / float64(n-1)
}

// BroadcastBranch describes one of the (up to) four BRCP branch packets a
// Quarc transceiver emits for a broadcast or multicast (paper §2.5.2):
// inject into quadrant Q with header destination Last (the final node the
// stream visits); the stream is absorbed by every visited node except that a
// cross-cw stream does not absorb at the antipode (the minimal crossbar has
// no eject path from that input), which is what makes coverage exact.
type BroadcastBranch struct {
	Q    Quadrant
	Last int   // header destination: last node visited
	Path []int // nodes that receive a copy, in visit order
}

// QuarcBroadcastBranches returns the four branches for a broadcast from src.
// For n = 16, src = 0 this reproduces the paper's Fig 6: last nodes 4
// (right), 5 (cross-ccw), 11 (cross-cw) and 12 (left).
func QuarcBroadcastBranches(n, src int) []BroadcastBranch {
	mk := func(q Quadrant, last int, nodes []int) BroadcastBranch {
		return BroadcastBranch{Q: q, Last: last, Path: nodes}
	}
	var right, left, ccw, cw []int
	for o := 1; o <= n/4; o++ {
		right = append(right, Mod(src+o, n))
	}
	for o := n / 2; o >= n/4+1; o-- { // cross-ccw visits antipode first, then backwards
		ccw = append(ccw, Mod(src+o, n))
	}
	for o := n/2 + 1; o <= 3*n/4-1; o++ { // cross-cw skips the antipode
		cw = append(cw, Mod(src+o, n))
	}
	for o := n - 1; o >= 3*n/4; o-- {
		left = append(left, Mod(src+o, n))
	}
	return []BroadcastBranch{
		mk(QRight, Mod(src+n/4, n), right),
		mk(QCrossCCW, Mod(src+n/4+1, n), ccw),
		mk(QCrossCW, Mod(src+3*n/4-1, n), cw),
		mk(QLeft, Mod(src+3*n/4, n), left),
	}
}

// QuarcMulticastBranches restricts broadcast branches to an explicit target
// set, returning only branches with at least one target, the trimmed header
// destination (furthest target on the branch) and the BRCP bitstring whose
// bit i marks the node at hop distance i+1 along the branch as a receiver
// (paper §2.5.3).
type MulticastBranch struct {
	Q    Quadrant
	Last int
	Bits uint64 // bit i: the (i+1)-th node of the stream is a target
}

// QuarcMulticastBranches computes the branch set for a multicast from src to
// targets. Targets equal to src are ignored.
func QuarcMulticastBranches(n, src int, targets []int) []MulticastBranch {
	want := make(map[int]bool, len(targets))
	for _, t := range targets {
		if t != src {
			want[Mod(t, n)] = true
		}
	}
	var out []MulticastBranch
	for _, b := range QuarcBroadcastBranches(n, src) {
		var bits uint64
		last := -1
		// Bit i marks the node at hop distance i+1 along the stream. On the
		// cross-cw branch hop 1 is the antipode, which never absorbs there
		// (it belongs to the cross-ccw quadrant), so its receivers start at
		// hop 2 (bit 1).
		firstHop := 1
		if b.Q == QCrossCW {
			firstHop = 2
		}
		for i, node := range b.Path {
			if want[node] {
				bits |= 1 << uint(firstHop-1+i)
				last = node
			}
		}
		if last < 0 {
			continue
		}
		out = append(out, MulticastBranch{Q: b.Q, Last: last, Bits: bits})
	}
	return out
}

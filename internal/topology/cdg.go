package topology

import "fmt"

// Virtual-channel discipline. Both rim rings are cycles in the channel
// dependency graph, so wormhole routing needs two virtual channels with a
// dateline (paper §2.1: "Each physical link is shared by two virtual
// channels in order to avoid deadlock"; §2.3.1: two lanes per input port).
// Packets travel on VC 0 until they traverse the dateline link of their rim
// ring (CW: the link n-1 -> 0; CCW: the link 0 -> n-1), from which point
// they use VC 1. Cross links carry packets only on their first hop, so they
// cannot close a cycle and always use VC 0.

// RimVC returns the virtual channel a packet uses on the rim link leaving
// node from in direction dir, given the VC it used on its previous hop (use
// 0 when entering the rim).
func RimVC(n int, dir Direction, from, cur int) int {
	if cur == 1 {
		return 1
	}
	if dir == CW && from == n-1 {
		return 1
	}
	if dir == CCW && from == 0 {
		return 1
	}
	return 0
}

// ChannelKind distinguishes the physical link classes of the ring
// topologies.
type ChannelKind int

const (
	ChRimCW ChannelKind = iota
	ChRimCCW
	ChCrossCW  // Quarc: the cross channel whose packets continue clockwise
	ChCrossCCW // Quarc: the cross channel whose packets continue counter-clockwise
	ChCross    // Spidergon: the single shared cross channel
)

// Channel is a (physical link, virtual channel) pair: a vertex of the
// channel dependency graph. From is the node the link leaves.
type Channel struct {
	Kind ChannelKind
	From int
	VC   int
}

// CDG is a channel dependency graph: an edge u->v means a packet can hold u
// while requesting v.
type CDG struct {
	edges map[Channel]map[Channel]bool
}

// NewCDG returns an empty graph.
func NewCDG() *CDG { return &CDG{edges: make(map[Channel]map[Channel]bool)} }

// AddPath records the dependencies of a route expressed as a channel
// sequence.
func (g *CDG) AddPath(chs []Channel) {
	for i := 0; i+1 < len(chs); i++ {
		u, v := chs[i], chs[i+1]
		if g.edges[u] == nil {
			g.edges[u] = make(map[Channel]bool)
		}
		g.edges[u][v] = true
		if g.edges[v] == nil {
			g.edges[v] = make(map[Channel]bool)
		}
	}
}

// Acyclic reports whether the graph has no directed cycle (Kahn's
// algorithm). An acyclic CDG is sufficient for deadlock freedom of
// deterministic wormhole routing (Dally & Seitz).
func (g *CDG) Acyclic() (bool, []Channel) {
	indeg := make(map[Channel]int, len(g.edges))
	for u := range g.edges {
		indeg[u] += 0
		for v := range g.edges[u] {
			indeg[v]++
		}
	}
	var queue []Channel
	for u, d := range indeg {
		if d == 0 {
			queue = append(queue, u)
		}
	}
	removed := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		removed++
		for v := range g.edges[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if removed == len(indeg) {
		return true, nil
	}
	var stuck []Channel
	for u, d := range indeg {
		if d > 0 {
			stuck = append(stuck, u)
		}
	}
	return false, stuck
}

// QuarcRouteChannels returns the channel sequence of the deterministic Quarc
// route from src to dst (excluding injection/ejection, which cannot
// participate in cycles).
func QuarcRouteChannels(n, src, dst int) []Channel {
	if src == dst {
		return nil
	}
	var chs []Channel
	q := QuadrantOf(n, src, dst)
	cur := src
	vc := 0
	dir := CW
	switch q {
	case QCrossCW:
		chs = append(chs, Channel{ChCrossCW, src, 0})
		cur = Antipode(n, src)
	case QCrossCCW:
		chs = append(chs, Channel{ChCrossCCW, src, 0})
		cur = Antipode(n, src)
		dir = CCW
	case QLeft:
		dir = CCW
	}
	kind := ChRimCW
	if dir == CCW {
		kind = ChRimCCW
	}
	for cur != dst {
		vc = RimVC(n, dir, cur, vc)
		chs = append(chs, Channel{kind, cur, vc})
		if dir == CW {
			cur = NextCW(n, cur)
		} else {
			cur = NextCCW(n, cur)
		}
		if len(chs) > n+2 {
			panic(fmt.Sprintf("topology: quarc route %d->%d did not terminate", src, dst))
		}
	}
	return chs
}

// SpidergonRouteChannels returns the channel sequence of the across-first
// route from src to dst.
func SpidergonRouteChannels(n, src, dst int) []Channel {
	if src == dst {
		return nil
	}
	var chs []Channel
	cur := src
	first := SpidergonRoute(n, src, dst)
	dir := CW
	switch first {
	case SpiCross:
		chs = append(chs, Channel{ChCross, src, 0})
		cur = Antipode(n, src)
		if cur == dst {
			return chs
		}
		if Offset(n, cur, dst) > n/2 {
			dir = CCW
		}
	case SpiCCW:
		dir = CCW
	}
	kind := ChRimCW
	if dir == CCW {
		kind = ChRimCCW
	}
	vc := 0
	for cur != dst {
		vc = RimVC(n, dir, cur, vc)
		chs = append(chs, Channel{kind, cur, vc})
		if dir == CW {
			cur = NextCW(n, cur)
		} else {
			cur = NextCCW(n, cur)
		}
		if len(chs) > n+2 {
			panic(fmt.Sprintf("topology: spidergon route %d->%d did not terminate", src, dst))
		}
	}
	return chs
}

// QuarcCDG builds the full channel dependency graph over all unicast routes
// and all broadcast branch streams of an n-node Quarc.
func QuarcCDG(n int) *CDG {
	g := NewCDG()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				g.AddPath(QuarcRouteChannels(n, s, d))
			}
		}
		// Broadcast branches follow base-routing conformed paths, so they
		// add the same channel sequences as the unicast to each branch's
		// last node; add them anyway (BRCP property is itself under test).
		for _, b := range QuarcBroadcastBranches(n, s) {
			g.AddPath(QuarcRouteChannels(n, s, b.Last))
		}
	}
	return g
}

// SpidergonCDG builds the dependency graph over all across-first routes.
func SpidergonCDG(n int) *CDG {
	g := NewCDG()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				g.AddPath(SpidergonRouteChannels(n, s, d))
			}
		}
	}
	return g
}

package topology

import (
	"testing"
	"testing/quick"
)

var ringSizes = []int{8, 12, 16, 20, 24, 32, 36, 48, 64}

func TestValidateRingSize(t *testing.T) {
	for _, n := range ringSizes {
		if err := ValidateRingSize(n); err != nil {
			t.Errorf("ValidateRingSize(%d): %v", n, err)
		}
	}
	for _, n := range []int{0, 4, 6, 10, 14, 68, 128} {
		if err := ValidateRingSize(n); err == nil {
			t.Errorf("ValidateRingSize(%d) accepted invalid size", n)
		}
	}
}

func TestModAndOffset(t *testing.T) {
	if Mod(-1, 16) != 15 || Mod(16, 16) != 0 || Mod(17, 16) != 1 {
		t.Fatal("Mod wrong")
	}
	if Offset(16, 15, 0) != 1 || Offset(16, 0, 15) != 15 || Offset(16, 5, 5) != 0 {
		t.Fatal("Offset wrong")
	}
	if NextCW(16, 15) != 0 || NextCCW(16, 0) != 15 || Antipode(16, 3) != 11 {
		t.Fatal("neighbour helpers wrong")
	}
}

func TestQuadrantBoundaries(t *testing.T) {
	// n = 16: offsets 1..4 right, 5..8 cross-ccw, 9..11 cross-cw, 12..15 left.
	want := map[int]Quadrant{
		1: QRight, 4: QRight,
		5: QCrossCCW, 8: QCrossCCW,
		9: QCrossCW, 11: QCrossCW,
		12: QLeft, 15: QLeft,
	}
	for o, q := range want {
		if got := QuadrantOf(16, 0, o); got != q {
			t.Errorf("QuadrantOf(16, 0, %d) = %v, want %v", o, got, q)
		}
	}
}

func TestQuadrantOfPanicsOnSelf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("QuadrantOf(src == dst) did not panic")
		}
	}()
	QuadrantOf(16, 3, 3)
}

func TestQuadrantVertexSymmetry(t *testing.T) {
	// The quadrant must depend only on the offset (vertex symmetry).
	for _, n := range ringSizes {
		for o := 1; o < n; o++ {
			base := QuadrantOf(n, 0, o)
			for s := 1; s < n; s += 3 {
				if q := QuadrantOf(n, s, Mod(s+o, n)); q != base {
					t.Fatalf("n=%d offset=%d: quadrant differs between sources", n, o)
				}
			}
		}
	}
}

func TestQuarcDiameterIsNOver4(t *testing.T) {
	for _, n := range ringSizes {
		max := 0
		for o := 1; o < n; o++ {
			if h := QuarcHops(n, 0, o); h > max {
				max = h
			}
		}
		if max != n/4 {
			t.Errorf("n=%d: measured diameter %d, want n/4 = %d", n, max, n/4)
		}
		if QuarcDiameter(n) != n/4 {
			t.Errorf("QuarcDiameter(%d) = %d", n, QuarcDiameter(n))
		}
	}
}

func TestQuarcHopsMatchesPathLength(t *testing.T) {
	for _, n := range ringSizes {
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				p := QuarcPath(n, s, d)
				if len(p)-1 != QuarcHops(n, s, d) {
					t.Fatalf("n=%d %d->%d: path %v vs hops %d", n, s, d, p, QuarcHops(n, s, d))
				}
				if p[0] != s || p[len(p)-1] != d {
					t.Fatalf("n=%d %d->%d: bad endpoints %v", n, s, d, p)
				}
				// Each step is a rim neighbour, except a cross first hop.
				for i := 0; i+1 < len(p); i++ {
					a, b := p[i], p[i+1]
					rim := b == NextCW(n, a) || b == NextCCW(n, a)
					cross := i == 0 && b == Antipode(n, a)
					if !rim && !cross {
						t.Fatalf("n=%d %d->%d: illegal step %d->%d in %v", n, s, d, a, b, p)
					}
				}
			}
		}
	}
}

func TestQuarcHopsZeroForSelf(t *testing.T) {
	if QuarcHops(16, 5, 5) != 0 {
		t.Fatal("QuarcHops(self) != 0")
	}
	if p := QuarcPath(16, 5, 5); len(p) != 1 || p[0] != 5 {
		t.Fatalf("QuarcPath(self) = %v", p)
	}
}

func TestQuarcAvgHops(t *testing.T) {
	// Exact closed-form check for n=16: offsets 1..4 cost 1..4 (sum 10),
	// 5..8 cost 1+8-o (4,3,2,1; sum 10), 9..11 cost 1+o-8 (2,3,4; sum 9),
	// 12..15 cost 16-o (4,3,2,1; sum 10). Total 39 over 15 pairs.
	want := 39.0 / 15.0
	if got := QuarcAvgHops(16); got != want {
		t.Fatalf("QuarcAvgHops(16) = %v, want %v", got, want)
	}
}

func TestFig6BroadcastExample(t *testing.T) {
	// Paper Fig 6: node 0 broadcasts in a 16-node Quarc; the four branch
	// destinations are 4, 5, 11 and 12.
	br := QuarcBroadcastBranches(16, 0)
	got := map[Quadrant]int{}
	for _, b := range br {
		got[b.Q] = b.Last
	}
	want := map[Quadrant]int{QRight: 4, QCrossCCW: 5, QCrossCW: 11, QLeft: 12}
	for q, last := range want {
		if got[q] != last {
			t.Errorf("branch %v last = %d, want %d", q, got[q], last)
		}
	}
}

func TestBroadcastBranchesCoverExactlyOnce(t *testing.T) {
	for _, n := range ringSizes {
		for s := 0; s < n; s++ {
			seen := make(map[int]int)
			for _, b := range QuarcBroadcastBranches(n, s) {
				if len(b.Path) == 0 {
					t.Fatalf("n=%d s=%d: empty branch %v", n, s, b.Q)
				}
				if b.Path[len(b.Path)-1] != b.Last {
					t.Fatalf("n=%d s=%d %v: last path node %d != Last %d",
						n, s, b.Q, b.Path[len(b.Path)-1], b.Last)
				}
				for _, node := range b.Path {
					seen[node]++
				}
				// Branch depth must not exceed the diameter.
				if h := QuarcHops(n, s, b.Last); h > n/4 {
					t.Fatalf("n=%d s=%d %v: branch deeper than diameter", n, s, b.Q)
				}
			}
			if seen[s] != 0 {
				t.Fatalf("n=%d s=%d: source receives its own broadcast", n, s)
			}
			for d := 0; d < n; d++ {
				if d == s {
					continue
				}
				if seen[d] != 1 {
					t.Fatalf("n=%d s=%d: node %d covered %d times", n, s, d, seen[d])
				}
			}
		}
	}
}

func TestBroadcastBranchesFollowBaseRouting(t *testing.T) {
	// BRCP: a branch stream traverses exactly the unicast path to its Last
	// node (paper §2.5.2).
	for _, n := range []int{8, 16, 32, 64} {
		for s := 0; s < n; s += 5 {
			for _, b := range QuarcBroadcastBranches(n, s) {
				unicast := QuarcPath(n, s, b.Last)
				// The receivers are the path nodes after the source, except
				// that the cross-cw branch does not absorb at the antipode.
				var expect []int
				for i, node := range unicast[1:] {
					if b.Q == QCrossCW && i == 0 {
						continue
					}
					expect = append(expect, node)
				}
				if len(expect) != len(b.Path) {
					t.Fatalf("n=%d s=%d %v: path %v vs unicast %v", n, s, b.Q, b.Path, unicast)
				}
				for i := range expect {
					if expect[i] != b.Path[i] {
						t.Fatalf("n=%d s=%d %v: path %v vs unicast %v", n, s, b.Q, b.Path, unicast)
					}
				}
			}
		}
	}
}

func TestMulticastBranches(t *testing.T) {
	n := 16
	targets := []int{2, 5, 8, 11, 14}
	brs := QuarcMulticastBranches(n, 0, targets)
	covered := map[int]bool{}
	for _, b := range brs {
		full := quadBranch(n, 0, b.Q)
		firstHop := 1
		if b.Q == QCrossCW {
			firstHop = 2
		}
		for i, node := range full.Path {
			bit := b.Bits & (1 << uint(firstHop-1+i))
			isTarget := contains(targets, node)
			if (bit != 0) != isTarget {
				t.Errorf("branch %v node %d: bit=%v targeted=%v", b.Q, node, bit != 0, isTarget)
			}
			if bit != 0 {
				covered[node] = true
			}
		}
		if !contains(targets, b.Last) {
			t.Errorf("branch %v Last=%d is not a target", b.Q, b.Last)
		}
	}
	for _, want := range targets {
		if !covered[want] {
			t.Errorf("target %d not covered by any branch", want)
		}
	}
}

func TestMulticastSkipsEmptyBranches(t *testing.T) {
	// Targets only in the right quadrant: one branch expected.
	brs := QuarcMulticastBranches(16, 0, []int{1, 3})
	if len(brs) != 1 || brs[0].Q != QRight || brs[0].Last != 3 {
		t.Fatalf("branches = %+v, want single right branch ending at 3", brs)
	}
	if brs[0].Bits != 0b101 {
		t.Fatalf("bits = %b, want 101", brs[0].Bits)
	}
}

func TestMulticastIgnoresSelf(t *testing.T) {
	if brs := QuarcMulticastBranches(16, 0, []int{0}); len(brs) != 0 {
		t.Fatalf("multicast to self produced branches: %+v", brs)
	}
}

func TestMulticastOfEveryoneEqualsBroadcast(t *testing.T) {
	n := 16
	all := make([]int, 0, n-1)
	for d := 1; d < n; d++ {
		all = append(all, d)
	}
	mbrs := QuarcMulticastBranches(n, 0, all)
	bbrs := QuarcBroadcastBranches(n, 0)
	if len(mbrs) != len(bbrs) {
		t.Fatalf("multicast-all has %d branches, broadcast %d", len(mbrs), len(bbrs))
	}
	for i := range mbrs {
		if mbrs[i].Last != bbrs[i].Last || mbrs[i].Q != bbrs[i].Q {
			t.Fatalf("branch %d: %+v vs %+v", i, mbrs[i], bbrs[i])
		}
	}
}

// Property: for arbitrary target sets the union of branch-covered nodes is
// exactly the requested target set minus the source.
func TestMulticastCoverageProperty(t *testing.T) {
	check := func(rawTargets []uint8, srcRaw uint8) bool {
		n := 32
		src := int(srcRaw) % n
		targets := make([]int, len(rawTargets))
		wantSet := map[int]bool{}
		for i, r := range rawTargets {
			targets[i] = int(r) % n
			if targets[i] != src {
				wantSet[targets[i]] = true
			}
		}
		covered := map[int]bool{}
		for _, b := range QuarcMulticastBranches(n, src, targets) {
			full := quadBranch(n, src, b.Q)
			firstHop := 1
			if b.Q == QCrossCW {
				firstHop = 2
			}
			for i, node := range full.Path {
				if b.Bits&(1<<uint(firstHop-1+i)) != 0 {
					if covered[node] {
						return false // double delivery
					}
					covered[node] = true
				}
			}
		}
		if len(covered) != len(wantSet) {
			return false
		}
		for nnode := range wantSet {
			if !covered[nnode] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func quadBranch(n, src int, q Quadrant) BroadcastBranch {
	for _, b := range QuarcBroadcastBranches(n, src) {
		if b.Q == q {
			return b
		}
	}
	panic("no such quadrant branch")
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

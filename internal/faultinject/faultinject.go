// Package faultinject provides deterministic, seed-driven fault injection
// at the filesystem boundary of quarcd's durability layer. A Plan is a
// reproducible schedule of injected I/O errors, torn writes and latency
// spikes: every operation consults the plan's seeded generator in a fixed
// order, so the same Spec produces the same fault schedule on every run —
// chaos tests are property tests, not flaky dice rolls.
//
// The package also defines FS, the narrow filesystem surface internal/store
// performs its I/O through. Production code passes OS{}, a zero-cost
// pass-through to the os package; chaos tests and quarcd's -chaos flag pass
// Plan.Wrap(OS{}), which injects faults according to the plan. Boot-path
// operations (MkdirAll, ReadDir) are never injected: a fault plan exists to
// exercise the serving defenses, which requires the daemon to come up first.
package faultinject

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the sentinel every injected failure wraps; defenses and
// tests distinguish injected faults from real ones with errors.Is.
var ErrInjected = errors.New("injected I/O fault")

// File is the writable-file surface the store's atomic writes need.
type File interface {
	Write(p []byte) (n int, err error)
	Sync() error
	Close() error
}

// FS is the filesystem boundary of internal/store: everything the result
// store and the job journal touch on disk goes through one of these.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(path string) ([]os.DirEntry, error)
	ReadFile(path string) ([]byte, error)
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	Chtimes(path string, atime, mtime time.Time) error
	// SyncDir fsyncs a directory, making a preceding rename in it durable
	// against power loss (fsyncing the file alone persists its blocks, not
	// the directory entry that names them).
	SyncDir(path string) error
}

// OS is the pass-through FS over the os package — the production default.
type OS struct{}

func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) ReadDir(path string) ([]os.DirEntry, error)   { return os.ReadDir(path) }
func (OS) ReadFile(path string) ([]byte, error)         { return os.ReadFile(path) }
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(path string) error                     { return os.Remove(path) }
func (OS) Chtimes(p string, a, m time.Time) error       { return os.Chtimes(p, a, m) }
func (OS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Spec parameterises a fault plan. All rates are probabilities in [0,1],
// drawn independently per filesystem operation.
type Spec struct {
	// Seed drives the deterministic schedule; two plans with the same Spec
	// inject exactly the same faults at the same operations.
	Seed uint64
	// ErrRate is the probability an operation fails with ErrInjected.
	ErrRate float64
	// TornRate is the probability a file write persists only a prefix of
	// its buffer and then fails — the on-disk shape a power loss mid-write
	// leaves behind.
	TornRate float64
	// DelayRate is the probability an operation sleeps Delay first (a
	// latency spike on a healthy disk).
	DelayRate float64
	// Delay is the injected latency per DelayRate hit.
	Delay time.Duration
	// MaxOps, when positive, quiets the plan after that many operations:
	// faults stop and everything passes through — the "failure ends, system
	// recovers" half of a chaos schedule.
	MaxOps int
}

// ParseSpec parses the flag/env form of a Spec: comma-separated key=value
// pairs, e.g. "seed=42,err=0.1,torn=0.05,slow=0.02,delay=5ms,ops=4000".
// Keys: seed, err, torn, slow, delay, ops.
func ParseSpec(s string) (Spec, error) {
	var sp Spec
	if strings.TrimSpace(s) == "" {
		return sp, fmt.Errorf("faultinject: empty spec")
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return sp, fmt.Errorf("faultinject: bad field %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "seed":
			sp.Seed, err = strconv.ParseUint(v, 0, 64)
		case "err":
			sp.ErrRate, err = parseRate(v)
		case "torn":
			sp.TornRate, err = parseRate(v)
		case "slow":
			sp.DelayRate, err = parseRate(v)
		case "delay":
			sp.Delay, err = time.ParseDuration(v)
		case "ops":
			sp.MaxOps, err = strconv.Atoi(v)
		default:
			return sp, fmt.Errorf("faultinject: unknown key %q", k)
		}
		if err != nil {
			return sp, fmt.Errorf("faultinject: %s=%q: %w", k, v, err)
		}
	}
	return sp, nil
}

func parseRate(v string) (float64, error) {
	r, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if r < 0 || r > 1 {
		return 0, fmt.Errorf("rate %v outside [0,1]", r)
	}
	return r, nil
}

// String renders the spec in its ParseSpec form.
func (s Spec) String() string {
	return fmt.Sprintf("seed=%d,err=%g,torn=%g,slow=%g,delay=%s,ops=%d",
		s.Seed, s.ErrRate, s.TornRate, s.DelayRate, s.Delay, s.MaxOps)
}

// Stats are a plan's cumulative injection counters.
type Stats struct {
	Ops    uint64 // operations that consulted the plan
	Errors uint64 // operations failed with ErrInjected
	Torn   uint64 // writes torn (prefix persisted, then failed)
	Delays uint64 // operations delayed by a latency spike
}

// Injected is the total faulted operations (errors + torn writes).
func (s Stats) Injected() uint64 { return s.Errors + s.Torn }

// Plan is one live fault schedule. Safe for concurrent use; concurrent
// operations serialise on the plan, each consuming a fixed number of draws,
// so the schedule depends only on the operation order.
type Plan struct {
	spec  Spec
	mu    sync.Mutex
	state uint64
	stats Stats
}

// New builds a plan from a spec.
func New(spec Spec) *Plan {
	return &Plan{spec: spec, state: spec.Seed}
}

// Spec returns the plan's parameters.
func (p *Plan) Spec() Spec { return p.spec }

// Stats returns the cumulative injection counters.
func (p *Plan) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Wrap returns fs with this plan's faults injected into its steady-state
// operations.
func (p *Plan) Wrap(fs FS) FS { return &injectFS{fs: fs, plan: p} }

// next advances the splitmix64 stream; callers hold mu.
func (p *Plan) next() uint64 {
	p.state += 0x9E3779B97F4A7C15
	z := p.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// chance draws one uniform variate; callers hold mu.
func (p *Plan) chance(rate float64) bool {
	u := float64(p.next()>>11) / (1 << 53)
	return rate > 0 && u < rate
}

type verdict int

const (
	vOK verdict = iota
	vErr
	vTorn
	vDelay
)

// verdict decides one operation's fate. Every call draws the same three
// variates in the same order regardless of rates or the write flag, so the
// schedule position of every later operation is independent of which faults
// fired before it.
func (p *Plan) verdict(write bool) (verdict, time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Ops++
	quiet := p.spec.MaxOps > 0 && p.stats.Ops > uint64(p.spec.MaxOps)
	delay := p.chance(p.spec.DelayRate)
	torn := p.chance(p.spec.TornRate) && write
	fail := p.chance(p.spec.ErrRate)
	if quiet {
		return vOK, 0
	}
	switch {
	case torn:
		p.stats.Torn++
		return vTorn, 0
	case fail:
		p.stats.Errors++
		return vErr, 0
	case delay:
		p.stats.Delays++
		return vDelay, p.spec.Delay
	}
	return vOK, 0
}

// injected wraps ErrInjected with the operation and path for diagnostics.
func injected(op, path string) error {
	return fmt.Errorf("%s %s: %w", op, path, ErrInjected)
}

// injectFS injects a plan's faults into a wrapped FS. Boot-path operations
// (MkdirAll, ReadDir) pass through untouched.
type injectFS struct {
	fs   FS
	plan *Plan
}

// op consults the plan for one non-write operation, sleeping out any
// injected latency itself.
func (i *injectFS) op(name, path string) error {
	v, d := i.plan.verdict(false)
	switch v {
	case vErr:
		return injected(name, path)
	case vDelay:
		time.Sleep(d)
	}
	return nil
}

func (i *injectFS) MkdirAll(path string, perm os.FileMode) error { return i.fs.MkdirAll(path, perm) }
func (i *injectFS) ReadDir(path string) ([]os.DirEntry, error)   { return i.fs.ReadDir(path) }

func (i *injectFS) ReadFile(path string) ([]byte, error) {
	if err := i.op("read", path); err != nil {
		return nil, err
	}
	return i.fs.ReadFile(path)
}

func (i *injectFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	if err := i.op("open", path); err != nil {
		return nil, err
	}
	f, err := i.fs.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injectFile{f: f, plan: i.plan, path: path}, nil
}

func (i *injectFS) Rename(oldpath, newpath string) error {
	if err := i.op("rename", newpath); err != nil {
		return err
	}
	return i.fs.Rename(oldpath, newpath)
}

func (i *injectFS) Remove(path string) error {
	if err := i.op("remove", path); err != nil {
		return err
	}
	return i.fs.Remove(path)
}

func (i *injectFS) Chtimes(path string, atime, mtime time.Time) error {
	if err := i.op("chtimes", path); err != nil {
		return err
	}
	return i.fs.Chtimes(path, atime, mtime)
}

func (i *injectFS) SyncDir(path string) error {
	if err := i.op("syncdir", path); err != nil {
		return err
	}
	return i.fs.SyncDir(path)
}

// injectFile injects write-path faults, including torn writes: a torn
// verdict persists half the buffer and then fails, leaving exactly the
// on-disk shape an interrupted write would.
type injectFile struct {
	f    File
	plan *Plan
	path string
}

func (fl *injectFile) Write(p []byte) (int, error) {
	v, d := fl.plan.verdict(true)
	switch v {
	case vErr:
		return 0, injected("write", fl.path)
	case vTorn:
		n := len(p) / 2
		if n > 0 {
			fl.f.Write(p[:n])
		}
		return n, injected("torn write", fl.path)
	case vDelay:
		time.Sleep(d)
	}
	return fl.f.Write(p)
}

func (fl *injectFile) Sync() error {
	v, d := fl.plan.verdict(false)
	switch v {
	case vErr:
		return injected("sync", fl.path)
	case vDelay:
		time.Sleep(d)
	}
	return fl.f.Sync()
}

func (fl *injectFile) Close() error {
	// Close always reaches the wrapped file: leaking descriptors would make
	// the chaos harness fail in ways no real disk does.
	return fl.f.Close()
}

package faultinject

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// The flag/env spec form must round-trip through ParseSpec/String: quarcd
// logs the active plan in String form, and operators paste that line back
// into -chaos to reproduce a schedule.
func TestParseSpecRoundTrip(t *testing.T) {
	in := "seed=42,err=0.1,torn=0.05,slow=0.02,delay=5ms,ops=4000"
	spec, err := ParseSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Seed: 42, ErrRate: 0.1, TornRate: 0.05, DelayRate: 0.02,
		Delay: 5 * time.Millisecond, MaxOps: 4000}
	if spec != want {
		t.Fatalf("ParseSpec(%q) = %+v, want %+v", in, spec, want)
	}
	again, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", spec.String(), err)
	}
	if again != spec {
		t.Fatalf("round trip: %+v != %+v", again, spec)
	}
}

func TestParseSpecRejectsBadInput(t *testing.T) {
	for _, bad := range []string{
		"",             // empty
		"err",          // no value
		"err=1.5",      // rate outside [0,1]
		"torn=-0.1",    // negative rate
		"bogus=1",      // unknown key
		"delay=fast",   // unparseable duration
		"seed=notanum", // unparseable seed
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", bad)
		}
	}
}

// Two plans with the same spec must issue the identical verdict sequence —
// chaos tests are property tests only if the schedule is a pure function of
// the spec.
func TestPlanDeterminism(t *testing.T) {
	spec := Spec{Seed: 7, ErrRate: 0.3, TornRate: 0.2, DelayRate: 0.1}
	a, b := New(spec), New(spec)
	for i := 0; i < 2000; i++ {
		write := i%3 == 0
		va, _ := a.verdict(write)
		vb, _ := b.verdict(write)
		if va != vb {
			t.Fatalf("op %d: verdicts diverge (%v vs %v)", i, va, vb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().Injected() == 0 {
		t.Fatal("plan with 50% combined fault rate injected nothing in 2000 ops")
	}
}

// The schedule position of an operation must not depend on which faults
// fired before it: a plan with rates zeroed must leave later draws where a
// faulting plan leaves them. This is what makes "same seed, different rates"
// schedules comparable.
func TestVerdictDrawsFixedVariatesPerOp(t *testing.T) {
	// Plan A faults often; plan B never faults. After the same number of ops
	// their PRNG states must be identical, which we observe by switching B to
	// A's rates and checking the tails agree with a third plan fast-forwarded
	// the same way.
	specFaulty := Spec{Seed: 99, ErrRate: 0.5, TornRate: 0.3, DelayRate: 0.1}
	specQuiet := Spec{Seed: 99}
	a, b := New(specFaulty), New(specQuiet)
	const warm = 500
	for i := 0; i < warm; i++ {
		a.verdict(true)
		b.verdict(true)
	}
	if a.state != b.state {
		t.Fatalf("PRNG states diverge after %d ops: %#x vs %#x", warm, a.state, b.state)
	}
}

// MaxOps quiets the plan: after the budget, every operation passes through,
// modelling a fault episode that ends so recovery can be asserted.
func TestMaxOpsQuietsPlan(t *testing.T) {
	p := New(Spec{Seed: 1, ErrRate: 1, MaxOps: 10})
	for i := 0; i < 10; i++ {
		if v, _ := p.verdict(false); v != vErr {
			t.Fatalf("op %d: verdict %v, want error while budget lasts", i, v)
		}
	}
	for i := 0; i < 100; i++ {
		if v, _ := p.verdict(false); v != vOK {
			t.Fatalf("op %d past budget: verdict %v, want pass-through", 10+i, v)
		}
	}
	st := p.Stats()
	if st.Errors != 10 || st.Ops != 110 {
		t.Fatalf("stats %+v, want 10 errors over 110 ops", st)
	}
}

// A torn write persists exactly the first half of the buffer and fails with
// ErrInjected — the on-disk shape of a power loss mid-write.
func TestTornWritePersistsPrefix(t *testing.T) {
	dir := t.TempDir()
	p := New(Spec{Seed: 5, TornRate: 1})
	fs := p.Wrap(OS{})
	path := filepath.Join(dir, "victim")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		// OpenFile consults the plan too; with torn=1 and err=0 opens pass.
		t.Fatal(err)
	}
	payload := []byte("0123456789abcdef")
	n, werr := f.Write(payload)
	if !errors.Is(werr, ErrInjected) {
		t.Fatalf("write error = %v, want ErrInjected", werr)
	}
	if n != len(payload)/2 {
		t.Fatalf("write reported %d bytes, want %d", n, len(payload)/2)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close (never injected): %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload[:len(payload)/2]) {
		t.Fatalf("on disk %q, want prefix %q", got, payload[:len(payload)/2])
	}
}

// Boot-path operations are never injected, whatever the rates: a fault plan
// must not stop the daemon from coming up.
func TestBootPathNeverInjected(t *testing.T) {
	dir := t.TempDir()
	p := New(Spec{Seed: 3, ErrRate: 1})
	fs := p.Wrap(OS{})
	sub := filepath.Join(dir, "a", "b")
	if err := fs.MkdirAll(sub, 0o755); err != nil {
		t.Fatalf("MkdirAll injected: %v", err)
	}
	if _, err := fs.ReadDir(dir); err != nil {
		t.Fatalf("ReadDir injected: %v", err)
	}
	if st := p.Stats(); st.Ops != 0 {
		t.Fatalf("boot-path ops consumed %d plan draws, want 0", st.Ops)
	}
}

// The OS pass-through must behave like the os package, including SyncDir on
// a real directory.
func TestOSPassThrough(t *testing.T) {
	dir := t.TempDir()
	var fs FS = OS{}
	path := filepath.Join(dir, "f")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	b, err := fs.ReadFile(path)
	if err != nil || string(b) != "hi" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
}

package buffer

import (
	"testing"
	"testing/quick"

	"quarc/internal/flit"
)

func mk(seq int) flit.Flit { return flit.Flit{Seq: seq, PktID: 1} }

func TestNewPanicsOnBadDepth(t *testing.T) {
	for _, d := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", d)
				}
			}()
			New(d)
		}()
	}
}

func TestFIFOOrder(t *testing.T) {
	q := New(4)
	for i := 0; i < 4; i++ {
		if !q.Push(mk(i)) {
			t.Fatalf("push %d rejected", i)
		}
	}
	for i := 0; i < 4; i++ {
		f, ok := q.Pop()
		if !ok || f.Seq != i {
			t.Fatalf("pop %d = (%v, %v)", i, f.Seq, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty FIFO succeeded")
	}
}

func TestFullAndEmptySignals(t *testing.T) {
	q := New(2)
	if !q.Empty() || q.Full() {
		t.Fatal("fresh FIFO signals wrong")
	}
	q.Push(mk(0))
	if q.Empty() || q.Full() {
		t.Fatal("half-full FIFO signals wrong")
	}
	q.Push(mk(1))
	if !q.Full() || q.Empty() {
		t.Fatal("full FIFO signals wrong")
	}
	if q.Push(mk(2)) {
		t.Fatal("push into full FIFO accepted")
	}
	if q.Len() != 2 || q.Free() != 0 || q.Cap() != 2 {
		t.Fatalf("Len/Free/Cap = %d/%d/%d", q.Len(), q.Free(), q.Cap())
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	q := New(2)
	q.Push(mk(7))
	for i := 0; i < 3; i++ {
		f, ok := q.Peek()
		if !ok || f.Seq != 7 {
			t.Fatalf("peek %d = (%v,%v)", i, f.Seq, ok)
		}
	}
	if q.Len() != 1 {
		t.Fatal("peek consumed the flit")
	}
	if _, ok := New(1).Peek(); ok {
		t.Fatal("peek on empty FIFO reported ok")
	}
}

func TestWrapAround(t *testing.T) {
	q := New(3)
	seq := 0
	// Push/pop many times so head wraps repeatedly.
	for round := 0; round < 50; round++ {
		for q.Push(mk(seq)) {
			seq++
		}
		f, ok := q.Pop()
		if !ok {
			t.Fatal("pop failed on non-empty FIFO")
		}
		want := seq - q.Len() - 1
		if f.Seq != want {
			t.Fatalf("round %d: popped %d, want %d", round, f.Seq, want)
		}
	}
}

func TestReset(t *testing.T) {
	q := New(4)
	q.Push(mk(1))
	q.Push(mk(2))
	q.Reset()
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("Reset did not empty the FIFO")
	}
	if !q.Push(mk(3)) {
		t.Fatal("push after Reset failed")
	}
	if f, _ := q.Pop(); f.Seq != 3 {
		t.Fatal("wrong flit after Reset")
	}
}

// Property: a FIFO behaves exactly like a bounded slice queue under any
// sequence of push/pop operations.
func TestFIFOModelEquivalence(t *testing.T) {
	check := func(ops []bool, depth uint8) bool {
		d := int(depth%8) + 1
		q := New(d)
		var model []flit.Flit
		seq := 0
		for _, push := range ops {
			if push {
				f := mk(seq)
				seq++
				got := q.Push(f)
				want := len(model) < d
				if got != want {
					return false
				}
				if want {
					model = append(model, f)
				}
			} else {
				got, ok := q.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if got.Seq != model[0].Seq {
						return false
					}
					model = model[1:]
				}
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	q := New(8)
	f := mk(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(f)
		q.Pop()
	}
}

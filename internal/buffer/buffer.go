// Package buffer implements the parameterised flit FIFOs used as the input
// lanes of the switch (paper §2.3.1: "The buffers in the design are
// parametrized in width and depth", two lanes per input port).
//
// The FIFO exposes the same observable signals the hardware buffer drives:
// Full (used to build the CH_STATUS_N channel-status signal sent back to the
// upstream node) and Empty (which activates the VC arbiter). It is a plain
// ring buffer storing flits by value to keep the simulator allocation-free on
// the hot path.
package buffer

import (
	"fmt"

	"quarc/internal/flit"
)

// FIFO is a fixed-capacity flit queue. Construct with New.
type FIFO struct {
	buf  []flit.Flit
	head int
	size int
}

// New returns a FIFO with the given capacity (depth in flits). Depth must be
// positive.
func New(depth int) *FIFO {
	if depth <= 0 {
		panic(fmt.Sprintf("buffer: non-positive depth %d", depth))
	}
	return &FIFO{buf: make([]flit.Flit, depth)}
}

// Cap returns the capacity in flits.
func (q *FIFO) Cap() int { return len(q.buf) }

// Len returns the number of buffered flits.
func (q *FIFO) Len() int { return q.size }

// Free returns the remaining capacity.
func (q *FIFO) Free() int { return len(q.buf) - q.size }

// Empty mirrors the hardware empty signal.
func (q *FIFO) Empty() bool { return q.size == 0 }

// Full mirrors the hardware full signal.
func (q *FIFO) Full() bool { return q.size == len(q.buf) }

// Push appends a flit. It reports false (and stores nothing) when full; the
// hardware equivalent is a write-enable gated by the full signal.
func (q *FIFO) Push(f flit.Flit) bool {
	if q.Full() {
		return false
	}
	q.buf[(q.head+q.size)%len(q.buf)] = f
	q.size++
	return true
}

// Peek returns the head flit without removing it. ok is false when empty.
func (q *FIFO) Peek() (f flit.Flit, ok bool) {
	if q.size == 0 {
		return flit.Flit{}, false
	}
	return q.buf[q.head], true
}

// Pop removes and returns the head flit. ok is false when empty.
func (q *FIFO) Pop() (f flit.Flit, ok bool) {
	if q.size == 0 {
		return flit.Flit{}, false
	}
	f = q.buf[q.head]
	q.buf[q.head] = flit.Flit{}
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return f, true
}

// Snapshot returns a copy of the buffered flits in queue order (head
// first). It is an inspection hook for invariant checkers and tests and
// does not disturb the queue.
func (q *FIFO) Snapshot() []flit.Flit {
	out := make([]flit.Flit, q.size)
	for i := 0; i < q.size; i++ {
		out[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	return out
}

// Reset discards all contents (reset_fsm_w in the paper's write controller).
func (q *FIFO) Reset() {
	for i := range q.buf {
		q.buf[i] = flit.Flit{}
	}
	q.head, q.size = 0, 0
}

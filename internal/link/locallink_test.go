package link

import (
	"testing"

	"quarc/internal/flit"
)

func packet(n int) []flit.Flit {
	return flit.Packet(flit.Flit{Src: 1, Dst: 2, Traffic: flit.Unicast, PktID: 7}, n)
}

func TestTransferWholePacket(t *testing.T) {
	s := &Sender{}
	r := NewReceiver(16)
	p := packet(8)
	s.StartFrame(p, 0)
	cycles, err := Transfer(s, r, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 8 {
		t.Fatalf("transfer took %d cycles, want 8 (one word per cycle)", cycles)
	}
	if r.Lanes[0].Len() != 8 {
		t.Fatalf("lane 0 holds %d flits, want 8", r.Lanes[0].Len())
	}
	for i := 0; i < 8; i++ {
		f, _ := r.Lanes[0].Pop()
		if f.Seq != i {
			t.Fatalf("flit %d out of order (seq %d)", i, f.Seq)
		}
	}
	if r.Lanes[1].Len() != 0 {
		t.Fatal("lane 1 received spurious flits")
	}
}

func TestBackPressureStallsSender(t *testing.T) {
	s := &Sender{}
	r := NewReceiver(2) // tiny buffer
	p := packet(6)
	s.StartFrame(p, 1)
	// Drain one flit every third cycle: the sender must stall on full.
	received := 0
	cycles, err := Transfer(s, r, 1000, func(c int) {
		if c%3 == 2 {
			if _, ok := r.Lanes[1].Pop(); ok {
				received++
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if cycles <= 6 {
		t.Fatalf("transfer with back-pressure took %d cycles; expected stalls", cycles)
	}
	received += r.Lanes[1].Len()
	if received != 6 {
		t.Fatalf("received %d flits, want 6", received)
	}
	if r.Err() != nil {
		t.Fatalf("protocol violation under back-pressure: %v", r.Err())
	}
}

func TestChannelSelection(t *testing.T) {
	// Two frames on different lanes end up in different buffers.
	r := NewReceiver(8)
	for lane := 0; lane < NumVC; lane++ {
		s := &Sender{}
		s.StartFrame(packet(3), lane)
		if _, err := Transfer(s, r, 100, nil); err != nil {
			t.Fatal(err)
		}
	}
	if r.Lanes[0].Len() != 3 || r.Lanes[1].Len() != 3 {
		t.Fatalf("lane lengths %d/%d, want 3/3", r.Lanes[0].Len(), r.Lanes[1].Len())
	}
}

func TestReceiverRejectsDataOutsideFrame(t *testing.T) {
	r := NewReceiver(4)
	sig := Signals{SrcRdy: true, SOF: false, ChToStore: 0}
	if r.Clock(sig, flit.Flit{}) {
		t.Fatal("accepted data with no SOF")
	}
	if r.Err() == nil {
		t.Fatal("no protocol error recorded")
	}
}

func TestReceiverRejectsSOFInsideFrame(t *testing.T) {
	r := NewReceiver(4)
	if !r.Clock(Signals{SrcRdy: true, SOF: true, ChToStore: 0}, flit.Flit{Kind: flit.Header}) {
		t.Fatal("first SOF rejected")
	}
	if r.Clock(Signals{SrcRdy: true, SOF: true, ChToStore: 0}, flit.Flit{}) {
		t.Fatal("accepted nested SOF")
	}
}

func TestReceiverRejectsLaneChangeMidFrame(t *testing.T) {
	r := NewReceiver(4)
	r.Clock(Signals{SrcRdy: true, SOF: true, ChToStore: 0}, flit.Flit{Kind: flit.Header})
	if r.Clock(Signals{SrcRdy: true, ChToStore: 1}, flit.Flit{}) {
		t.Fatal("accepted lane change mid-frame")
	}
}

func TestReceiverRejectsBadLane(t *testing.T) {
	r := NewReceiver(4)
	if r.Clock(Signals{SrcRdy: true, SOF: true, ChToStore: 5}, flit.Flit{}) {
		t.Fatal("accepted out-of-range lane")
	}
}

func TestSenderIdleWithoutFrame(t *testing.T) {
	s := &Sender{}
	status := [NumVC]bool{true, true}
	if _, _, ok := s.Drive(status, true); ok {
		t.Fatal("idle sender drove the bus")
	}
	if s.Busy() {
		t.Fatal("idle sender claims busy")
	}
}

func TestStartFrameWhileBusyPanics(t *testing.T) {
	s := &Sender{}
	s.StartFrame(packet(2), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("StartFrame while busy did not panic")
		}
	}()
	s.StartFrame(packet(2), 0)
}

func TestFiveStepHandshakeOrder(t *testing.T) {
	// §2.7: the transfer begins only once the destination advertises lane
	// space (CH_STATUS) and readiness (DST_RDY).
	s := &Sender{}
	s.StartFrame(packet(2), 0)
	var none [NumVC]bool
	if _, _, ok := s.Drive(none, true); ok {
		t.Fatal("sender transferred with CH_STATUS_N deasserted")
	}
	ready := [NumVC]bool{true, false}
	if _, _, ok := s.Drive(ready, false); ok {
		t.Fatal("sender transferred with DST_RDY_N deasserted")
	}
	sig, _, ok := s.Drive(ready, true)
	if !ok || !sig.SOF || !sig.SrcRdy {
		t.Fatalf("first word signals wrong: %+v", sig)
	}
}

func TestWireWordsCarriedOnData(t *testing.T) {
	s := &Sender{}
	r := NewReceiver(8)
	p := packet(2)
	s.StartFrame(p, 0)
	status, dstRdy := r.Drive()
	sig, _, ok := s.Drive(status, dstRdy)
	if !ok {
		t.Fatal("no transfer")
	}
	w, err := flit.EncodeWire(p[0])
	if err != nil {
		t.Fatal(err)
	}
	if sig.Data != w {
		t.Fatalf("data bus %#x, want encoded header %#x", sig.Data, w)
	}
	dec, err := flit.DecodeWire(sig.Data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Dst != p[0].Dst || dec.Kind != flit.Header {
		t.Fatalf("decoded %+v does not match header", dec)
	}
}

// Equivalence: the signal-level transfer delivers exactly the flit sequence
// a credit-based model would (one flit per cycle when space is available).
func TestSignalModelMatchesCreditModel(t *testing.T) {
	for _, depth := range []int{1, 2, 4, 8} {
		for _, plen := range []int{2, 5, 16} {
			// Credit model: send whenever the downstream queue has space,
			// drain one flit every second cycle.
			qlen := 0
			var creditTrace []int
			sent := 0
			for c := 0; sent < plen && c < 10000; c++ {
				if qlen < depth {
					qlen++
					sent++
					creditTrace = append(creditTrace, c)
				}
				if c%2 == 1 && qlen > 0 {
					qlen--
				}
			}

			// Signal model with the same drain pattern.
			s := &Sender{}
			r := NewReceiver(depth)
			s.StartFrame(packet(plen), 0)
			var sigTrace []int
			got := 0
			cyc := 0
			for s.Busy() && cyc < 10000 {
				status, dstRdy := r.Drive()
				sig, f, ok := s.Drive(status, dstRdy)
				if ok && r.Clock(sig, f) {
					s.Advance()
					sigTrace = append(sigTrace, cyc)
				}
				if cyc%2 == 1 {
					if _, popped := r.Lanes[0].Pop(); popped {
						got++
					}
				}
				cyc++
			}
			if len(sigTrace) != plen {
				t.Fatalf("depth=%d plen=%d: signal model sent %d flits", depth, plen, len(sigTrace))
			}
			if r.Err() != nil {
				t.Fatalf("depth=%d plen=%d: %v", depth, plen, r.Err())
			}
			// Same number of transfer opportunities used in both models.
			if len(creditTrace) != len(sigTrace) {
				t.Fatalf("depth=%d plen=%d: credit model %v vs signal model %v",
					depth, plen, creditTrace, sigTrace)
			}
			for i := range creditTrace {
				if creditTrace[i] != sigTrace[i] {
					t.Fatalf("depth=%d plen=%d: cycle traces differ: %v vs %v",
						depth, plen, creditTrace, sigTrace)
				}
			}
		}
	}
}

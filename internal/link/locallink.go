// Package link models the link-layer interface of the Quarc NoC, which
// adopts the signals and handshaking of Xilinx's LocalLink protocol
// (paper §2.7, Fig 8).
//
// Signals are active-low, as in the spec; the Go model stores them as booleans
// with the meaning "asserted" (so SOF means SOF_N is driven low). A
// two-virtual-channel link is modelled: CH_STATUS_N[1:0] advertises which
// destination lanes can accept a frame, CH_TO_STORE selects the lane a
// transferred word belongs to.
//
// The cycle-accurate fabric (internal/network) uses an equivalent
// credit/occupancy fast path for speed; the tests in this package show the
// signal-level model and the fast path deliver identical flit streams, so
// the simulator's shortcut is sound.
package link

import (
	"fmt"

	"quarc/internal/buffer"
	"quarc/internal/flit"
)

// NumVC is the number of virtual channels per physical link (paper §2.3.1:
// two lanes of input buffers).
const NumVC = 2

// Signals is the wire state of one LocalLink cycle, sender to receiver
// (plus the receiver-driven status lines).
type Signals struct {
	// Receiver-driven.
	ChStatus [NumVC]bool // true = lane can accept at least one flit (CH_STATUS_N low)
	DstRdy   bool        // DST_RDY_N asserted

	// Sender-driven.
	SrcRdy    bool // SRC_RDY_N asserted
	SOF       bool // start of frame
	EOF       bool // end of frame
	ChToStore int  // lane the current word targets
	Data      uint64
}

// Receiver is the receive side: per-lane input buffers plus the write
// controller of the paper's IPC (§2.3.1), which demultiplexes flits into the
// lane selected by CH_TO_STORE. The write controller FSM is idle until SOF,
// writes while the frame lasts, and returns to idle on EOF.
type Receiver struct {
	Lanes   [NumVC]*buffer.FIFO
	writing bool
	lane    int
	err     error
}

// NewReceiver returns a receiver with the given per-lane buffer depth.
func NewReceiver(depth int) *Receiver {
	r := &Receiver{}
	for i := range r.Lanes {
		r.Lanes[i] = buffer.New(depth)
	}
	return r
}

// Drive returns the receiver-driven signals for this cycle.
func (r *Receiver) Drive() (status [NumVC]bool, dstRdy bool) {
	for i, l := range r.Lanes {
		status[i] = !l.Full()
	}
	return status, true
}

// Clock consumes the sender-driven half of the signals. It returns true if a
// word was accepted this cycle.
func (r *Receiver) Clock(s Signals, f flit.Flit) bool {
	if !s.SrcRdy {
		return false
	}
	if s.ChToStore < 0 || s.ChToStore >= NumVC {
		r.err = fmt.Errorf("link: CH_TO_STORE %d out of range", s.ChToStore)
		return false
	}
	if s.SOF {
		if r.writing {
			r.err = fmt.Errorf("link: SOF inside a frame")
			return false
		}
		r.writing = true
		r.lane = s.ChToStore
	}
	if !r.writing {
		r.err = fmt.Errorf("link: data outside a frame")
		return false
	}
	if s.ChToStore != r.lane {
		// The paper's write controller keeps ch_to_store stable per frame;
		// flits of different VCs interleave only at frame granularity here.
		r.err = fmt.Errorf("link: lane changed mid-frame")
		return false
	}
	if !r.Lanes[r.lane].Push(f) {
		r.err = fmt.Errorf("link: write into full lane %d", r.lane)
		return false
	}
	if s.EOF {
		r.writing = false
	}
	return true
}

// Err returns the first protocol violation observed, if any.
func (r *Receiver) Err() error { return r.err }

// Sender implements the five-step channelised frame transfer of §2.7:
// wait for CH_STATUS, assert SRC_RDY_N, wait for DST_RDY_N, drive SOF and
// data with the channel number on CH_TO_STORE, end with EOF.
type Sender struct {
	frame   []flit.Flit
	pos     int
	lane    int
	started bool
}

// StartFrame arms the sender with a frame for the given lane. It panics if a
// frame is already in flight (hardware would never do this).
func (s *Sender) StartFrame(frame []flit.Flit, lane int) {
	if s.Busy() {
		panic("link: StartFrame while busy")
	}
	if len(frame) == 0 {
		panic("link: empty frame")
	}
	s.frame, s.pos, s.lane, s.started = frame, 0, lane, false
}

// Busy reports whether a frame transfer is in progress.
func (s *Sender) Busy() bool { return s.frame != nil }

// Drive produces the sender-driven signals for this cycle, honouring the
// receiver's status lines: the transfer only begins when the selected lane
// advertises space, and each word waits for space (back-pressure).
func (s *Sender) Drive(status [NumVC]bool, dstRdy bool) (Signals, flit.Flit, bool) {
	var sig Signals
	if s.frame == nil || !dstRdy || !status[s.lane] {
		return sig, flit.Flit{}, false
	}
	f := s.frame[s.pos]
	sig.SrcRdy = true
	sig.SOF = s.pos == 0
	sig.EOF = s.pos == len(s.frame)-1
	sig.ChToStore = s.lane
	if w, err := flit.EncodeWire(f); err == nil {
		sig.Data = w
	}
	return sig, f, true
}

// Advance moves to the next word after a successful transfer.
func (s *Sender) Advance() {
	s.pos++
	s.started = true
	if s.pos == len(s.frame) {
		s.frame = nil
	}
}

// Transfer runs sender and receiver to completion over a perfect wire and
// returns the number of cycles taken. drain, if non-nil, is called every
// cycle and may pop flits from the receiver lanes (modelling the downstream
// switch); this exercises back-pressure.
func Transfer(s *Sender, r *Receiver, maxCycles int, drain func(cycle int)) (int, error) {
	for c := 0; c < maxCycles; c++ {
		status, dstRdy := r.Drive()
		sig, f, ok := s.Drive(status, dstRdy)
		if ok {
			if !r.Clock(sig, f) {
				if r.err != nil {
					return c, r.err
				}
			} else {
				s.Advance()
			}
		}
		if drain != nil {
			drain(c)
		}
		if !s.Busy() {
			return c + 1, r.Err()
		}
	}
	return maxCycles, fmt.Errorf("link: transfer did not finish in %d cycles", maxCycles)
}

// Package prof wires the CLIs' -cpuprofile/-memprofile flags to
// runtime/pprof, so `make profile` (and ad-hoc runs) can feed
// `go tool pprof` without any per-command boilerplate.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpu is a non-empty path and returns a stop
// function that finishes the CPU profile and writes a heap profile to mem
// (when non-empty). Call the stop function exactly once, before process exit;
// with both paths empty it is a no-op.
func Start(cpu, mem string) (stop func() error, err error) {
	var cpuF *os.File
	if cpu != "" {
		cpuF, err = os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return err
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialise final heap statistics
			return pprof.WriteHeapProfile(f)
		}
		return nil
	}, nil
}

// Package models links the built-in network models into the binary. Each
// model package registers itself with internal/model from an init function
// (the database/sql driver pattern); importing this package for side
// effects is what makes the registrations run. The experiment harness
// imports it so that experiments.Run resolves every built-in model without
// naming any topology package, and a new model becomes available everywhere
// by adding one blank import here.
package models

import (
	_ "quarc/internal/mesh"
	_ "quarc/internal/quarc"
	_ "quarc/internal/ring"
	_ "quarc/internal/spidergon"
)

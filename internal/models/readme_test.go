package models_test

import (
	"os"
	"regexp"
	"sort"
	"testing"

	"quarc/internal/service"

	_ "quarc/internal/models" // link every model registration
)

// TestReadmeModelList pins the README's "The registered models are ..."
// sentence to the live registry (the same set GET /v1/models serves), so
// adding or renaming a model without updating the docs fails the build. It
// lives here rather than in internal/service because this package's test
// binary links exactly the production registrations — service tests add
// fixture models (panictest) to theirs.
func TestReadmeModelList(t *testing.T) {
	raw, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	m := regexp.MustCompile(`(?s)The registered models are (.*?)(?:—|\.)`).FindSubmatch(raw)
	if m == nil {
		t.Fatal("README.md has no 'The registered models are ...' sentence")
	}
	var documented []string
	for _, name := range regexp.MustCompile("`([^`]+)`").FindAllSubmatch(m[1], -1) {
		documented = append(documented, string(name[1]))
	}
	sort.Strings(documented)

	var registered []string
	for _, mj := range service.Models() {
		registered = append(registered, mj.Name)
	}
	sort.Strings(registered)

	if len(documented) != len(registered) {
		t.Fatalf("README lists %v; the registry serves %v", documented, registered)
	}
	for i := range registered {
		if documented[i] != registered[i] {
			t.Fatalf("README lists %v; the registry serves %v", documented, registered)
		}
	}
}

package spidergon

import (
	"testing"
	"testing/quick"

	"quarc/internal/network"
	"quarc/internal/rng"
	"quarc/internal/topology"
)

func build(t testing.TB, n int) (*network.Fabric, []*Adapter) {
	t.Helper()
	fab, as, err := Build(Config{N: n, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	return fab, as
}

func drain(t testing.TB, fab *network.Fabric, budget int) {
	t.Helper()
	for i := 0; i < budget; i++ {
		if fab.Tracker.InFlight() == 0 {
			return
		}
		fab.Step()
	}
	if fab.Tracker.InFlight() != 0 {
		t.Fatalf("network did not drain: %d messages stuck after %d cycles",
			fab.Tracker.InFlight(), budget)
	}
}

func TestUnicastZeroLoadLatency(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64} {
		for dst := 1; dst < n; dst++ {
			fab, as := build(t, n)
			var rec *network.MessageRecord
			fab.Tracker.OnDone = func(r network.MessageRecord) { rec = &r }
			m := 8
			as[0].SendUnicast(dst, m, fab.Now())
			drain(t, fab, 1000)
			if rec == nil {
				t.Fatalf("n=%d dst=%d: no completion", n, dst)
			}
			want := int64(topology.SpidergonHops(n, 0, dst) + m)
			if lat := rec.Last - rec.Gen; lat != want {
				t.Errorf("n=%d dst=%d: latency %d, want hops+M = %d", n, dst, lat, want)
			}
		}
	}
}

func TestBroadcastByUnicastCoverage(t *testing.T) {
	for _, n := range []int{8, 16, 32} {
		fab, as := build(t, n)
		var rec *network.MessageRecord
		fab.Tracker.OnDone = func(r network.MessageRecord) { rec = &r }
		m := 8
		as[0].SendBroadcast(m, fab.Now())
		drain(t, fab, 100000)
		if rec == nil {
			t.Fatalf("n=%d: broadcast incomplete", n)
		}
		if rec.Delivered != n-1 {
			t.Errorf("n=%d: delivered %d, want %d", n, rec.Delivered, n-1)
		}
		if fab.Tracker.Duplicates() != 0 {
			t.Errorf("n=%d: duplicates", n)
		}
	}
}

func TestBroadcastChainLatencyIsStoreAndForward(t *testing.T) {
	// The longest chain covers ceil((n-1)/2) nodes sequentially; each link
	// is a full store-and-forward packet time (m flits + 1 hop + 1 eject
	// cycle). Completion must be roughly (n/2)(m+2): dramatically worse
	// than the Quarc's n/4+m.
	n, m := 16, 16
	fab, as := build(t, n)
	var rec *network.MessageRecord
	fab.Tracker.OnDone = func(r network.MessageRecord) { rec = &r }
	as[0].SendBroadcast(m, fab.Now())
	drain(t, fab, 100000)
	lat := rec.Last - rec.Gen
	chainLen := (n - 1 + 1) / 2        // 8
	lower := int64(chainLen * m)       // can't beat m cycles per store-and-forward stage
	upper := int64(chainLen*(m+4) + n) // generous overhead bound
	if lat < lower || lat > upper {
		t.Errorf("chain broadcast latency %d outside [%d, %d]", lat, lower, upper)
	}
}

func TestConcurrentBroadcasts(t *testing.T) {
	n, m := 16, 4
	fab, as := build(t, n)
	done := 0
	fab.Tracker.OnDone = func(network.MessageRecord) { done++ }
	for s := 0; s < n; s++ {
		as[s].SendBroadcast(m, fab.Now())
	}
	drain(t, fab, 200000)
	if done != n {
		t.Fatalf("completed %d broadcasts, want %d", done, n)
	}
	if fab.Tracker.Duplicates() != 0 {
		t.Fatal("duplicate deliveries")
	}
}

func TestRandomTrafficConservation(t *testing.T) {
	n, m := 16, 4
	fab, as := build(t, n)
	r := rng.New(5, 0)
	completed, sent := 0, 0
	fab.Tracker.OnDone = func(network.MessageRecord) { completed++ }
	for cyc := 0; cyc < 2000; cyc++ {
		for s := 0; s < n; s++ {
			if r.Bernoulli(0.01) {
				if r.Bernoulli(0.1) {
					as[s].SendBroadcast(m, fab.Now())
				} else {
					d := r.Intn(n - 1)
					if d >= s {
						d++
					}
					as[s].SendUnicast(d, m, fab.Now())
				}
				sent++
			}
		}
		fab.Step()
	}
	drain(t, fab, 500000)
	if completed != sent {
		t.Fatalf("completed %d of %d", completed, sent)
	}
	if fab.Tracker.Duplicates() != 0 {
		t.Fatal("duplicates")
	}
}

func TestCrossLinkCarriesHalfTheFlows(t *testing.T) {
	// Paper §2.1: a node's two rim links serve half of the destinations
	// (n/4 each) while the single cross link serves all the rest, so almost
	// half of every node's flows squeeze through one first-hop channel.
	// Under all-pairs traffic with m=2 flits that is exactly (n/2 - 1)
	// packets = 14 flits on each cross link for n=16, which the Quarc
	// splits over two physical channels (8 + 6). The per-node loads must
	// also be uniform (vertex symmetry).
	n, m := 16, 2
	fab, as := build(t, n)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				as[s].SendUnicast(d, m, fab.Now())
			}
		}
	}
	drain(t, fab, 100000)
	loads := fab.LinkLoad()
	wantCross := uint64((n/2 - 1) * m) // 7 packets * 2 flits
	if loads[0][CrossOut] != wantCross {
		t.Errorf("cross link load %d, want %d", loads[0][CrossOut], wantCross)
	}
	// First-hop flow counts: cross serves n/2-1 = 7 flows per node, each
	// rim direction only n/4 = 4 of the node's own flows; the cross channel
	// is the injection bottleneck the Quarc removes by doubling it.
	crossFlows := n/2 - 1
	rimOwnFlows := n / 4
	if crossFlows < 2*rimOwnFlows-1 {
		t.Fatalf("flow arithmetic wrong: cross %d vs rim %d", crossFlows, rimOwnFlows)
	}
	for node := 1; node < n; node++ {
		for out := 0; out < 3; out++ {
			if loads[node][out] != loads[0][out] {
				t.Fatalf("output %d load differs between nodes %d and 0", out, node)
			}
		}
	}
}

func TestHeadOfLineBlocking(t *testing.T) {
	// A message to a hot destination at the queue head delays an unrelated
	// message behind it (one-port router). Construct: node 0 sends to dst A
	// whose path is congested, then to B on a free path; B's completion
	// must wait for A to clear the injection channel.
	n, m := 16, 8
	fab, as := build(t, n)
	var times []int64
	fab.Tracker.OnDone = func(r network.MessageRecord) { times = append(times, r.Last) }
	// Congest the CW rim out of node 0 by having node 15 stream through it.
	as[15].SendUnicast(4, 4*m, fab.Now())
	fab.Step()
	fab.Step()
	as[0].SendUnicast(1, m, fab.Now())  // CW: blocked behind 15's stream
	as[0].SendUnicast(15, m, fab.Now()) // CCW: free, but queued second
	drain(t, fab, 100000)
	if len(times) != 3 {
		t.Fatalf("expected 3 completions, got %d", len(times))
	}
	// The CCW message (node 15, free path) must still finish after the
	// blocked CW message entered the network — i.e. its latency exceeds the
	// zero-load value because of HOL blocking.
	zeroLoad := int64(topology.SpidergonHops(n, 0, 15) + m)
	last := times[len(times)-1]
	if last <= zeroLoad+2 {
		t.Errorf("no head-of-line blocking observed: last completion %d vs zero-load %d",
			last, zeroLoad)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, _, err := Build(Config{N: 10, Depth: 4}); err == nil {
		t.Error("accepted n=10")
	}
	if _, _, err := Build(Config{N: 16, Depth: 0}); err == nil {
		t.Error("accepted zero depth")
	}
}

func TestUnicastToSelfPanics(t *testing.T) {
	_, as := build(t, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("unicast to self accepted")
		}
	}()
	as[0].SendUnicast(0, 4, 0)
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		n, m := 16, 4
		fab, as := build(t, n)
		r := rng.New(31, 2)
		for cyc := 0; cyc < 400; cyc++ {
			for s := 0; s < n; s++ {
				if r.Bernoulli(0.02) {
					d := r.Intn(n - 1)
					if d >= s {
						d++
					}
					as[s].SendUnicast(d, m, fab.Now())
				}
			}
			fab.Step()
		}
		return fab.FlitsForwarded(), fab.FlitsDelivered()
	}
	f1, d1 := run()
	f2, d2 := run()
	if f1 != f2 || d1 != d2 {
		t.Fatalf("not deterministic: (%d,%d) vs (%d,%d)", f1, d1, f2, d2)
	}
}

// Property: spidergon conservation under random mixed traffic for any ring
// size, including the chain re-injection machinery.
func TestConservationProperty(t *testing.T) {
	check := func(sizeSel, seed uint8, nMsgs uint8) bool {
		sizes := []int{8, 12, 16, 24}
		n := sizes[int(sizeSel)%len(sizes)]
		fab, as, err := Build(Config{N: n, Depth: 2})
		if err != nil {
			return false
		}
		r := rng.New(uint64(seed)+1, 56)
		m := 2 + r.Intn(4)
		want := uint64(0)
		msgs := int(nMsgs)%12 + 1
		for i := 0; i < msgs; i++ {
			s := r.Intn(n)
			if r.Bernoulli(0.3) {
				as[s].SendBroadcast(m, fab.Now())
				want += uint64((n - 1) * m)
			} else {
				d := r.Intn(n - 1)
				if d >= s {
					d++
				}
				as[s].SendUnicast(d, m, fab.Now())
				want += uint64(m)
			}
			for c := 0; c < r.Intn(4); c++ {
				fab.Step()
			}
		}
		for i := 0; i < 300000 && fab.Tracker.InFlight() > 0; i++ {
			fab.Step()
		}
		return fab.Tracker.InFlight() == 0 &&
			fab.Tracker.Duplicates() == 0 &&
			fab.FlitsDelivered() == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Package spidergon implements the baseline the paper compares against: the
// STMicroelectronics Spidergon NoC (paper §2.1, ref [5]) with a one-port
// router, a single shared cross link, deterministic across-first routing,
// two dateline virtual channels per physical link, and broadcast by
// consecutive unicast chains.
//
// Port layout of the 4x4 switch (paper Fig 3(a)):
//
//	inputs  0 RimCWIn   flits flowing clockwise, from node i-1
//	        1 RimCCWIn  flits flowing counter-clockwise, from node i+1
//	        2 CrossIn   cross-link arrivals
//	        3 Inj       the single local injection channel
//	outputs 0 RimCWOut  to node i+1
//	        1 RimCCWOut to node i-1
//	        2 CrossOut  to the antipode
//	        3 Eject     the single local ejection channel (shared, arbitrated)
//
// The structural differences from the Quarc switch are exactly the paper's
// points (i)-(iii): one cross channel instead of two, one injection queue
// (head-of-line blocking at the source), one arbitrated ejection port, and
// no absorb-and-forward cloning, so a broadcast is a chain of store-and-
// forward unicasts whose headers the receiving switch must rewrite.
package spidergon

import (
	"fmt"

	"quarc/internal/flit"
	"quarc/internal/network"
	"quarc/internal/router"
	"quarc/internal/topology"
)

// Input port indices.
const (
	RimCWIn = iota
	RimCCWIn
	CrossIn
	Inj
	numInputs
)

// Output port indices.
const (
	RimCWOut = iota
	RimCCWOut
	CrossOut
	Eject
	numOutputs
)

// NumNetworkInputs is the index of the first injection port.
const NumNetworkInputs = 3

const link2VCs = 2

// Route implements deterministic across-first routing (§2.1): the cross
// link is used only as the first hop; rim arrivals either eject or continue
// in their direction; cross arrivals choose the shorter remaining rim arc.
func Route(n int) router.RouteFunc {
	return func(node, in int, f flit.Flit) router.Decision {
		if f.Dst == node {
			return router.Decision{Out: Eject, Eject: true}
		}
		switch in {
		case RimCWIn:
			return router.Decision{Out: RimCWOut}
		case RimCCWIn:
			return router.Decision{Out: RimCCWOut}
		case CrossIn:
			if topology.Offset(n, node, f.Dst) <= n/2 {
				return router.Decision{Out: RimCWOut}
			}
			return router.Decision{Out: RimCCWOut}
		case Inj:
			switch topology.SpidergonRoute(n, node, f.Dst) {
			case topology.SpiCW:
				return router.Decision{Out: RimCWOut}
			case topology.SpiCCW:
				return router.Decision{Out: RimCCWOut}
			default:
				return router.Decision{Out: CrossOut}
			}
		}
		panic(fmt.Sprintf("spidergon: no such input port %d", in))
	}
}

// VCNext applies the dateline discipline on the rim rings and VC 0 on the
// cross link; the ejection port allocates adaptively inside the router.
func VCNext(n int) router.VCFunc {
	return func(node, out, in, cur int, f flit.Flit) int {
		switch out {
		case RimCWOut:
			return topology.RimVC(n, topology.CW, node, cur)
		case RimCCWOut:
			return topology.RimVC(n, topology.CCW, node, cur)
		default:
			return 0
		}
	}
}

// Reach is the minimal crossbar for across-first routing.
func Reach() [][]int {
	return [][]int{
		RimCWOut:  {RimCWIn, CrossIn, Inj},
		RimCCWOut: {RimCCWIn, CrossIn, Inj},
		CrossOut:  {Inj},
		Eject:     {RimCWIn, RimCCWIn, CrossIn},
	}
}

// Config describes a Spidergon network build.
type Config struct {
	N     int
	Depth int
}

// Build assembles an n-node Spidergon network and its adapters.
func Build(cfg Config) (*network.Fabric, []*Adapter, error) {
	if err := topology.ValidateRingSize(cfg.N); err != nil {
		return nil, nil, err
	}
	if cfg.Depth < 1 {
		return nil, nil, fmt.Errorf("spidergon: buffer depth %d", cfg.Depth)
	}
	n := cfg.N
	routers := make([]*router.Router, n)
	wires := make([][]network.OutputWire, n)
	injStart := make([]int, n)
	inLanes := []int{link2VCs, link2VCs, link2VCs, 1}
	for node := 0; node < n; node++ {
		routers[node] = router.New(router.Config{
			Node:      node,
			VCs:       link2VCs,
			Depth:     cfg.Depth,
			InLanes:   inLanes,
			NOut:      numOutputs,
			EjectPort: Eject,
			Route:     Route(n),
			VCNext:    VCNext(n),
			Reach:     Reach(),
		})
		wires[node] = []network.OutputWire{
			RimCWOut:  {Dst: network.PortRef{Node: topology.NextCW(n, node), Port: RimCWIn}},
			RimCCWOut: {Dst: network.PortRef{Node: topology.NextCCW(n, node), Port: RimCCWIn}},
			CrossOut:  {Dst: network.PortRef{Node: topology.Antipode(n, node), Port: CrossIn}},
			Eject:     {Sink: true},
		}
		injStart[node] = NumNetworkInputs
	}
	fab := network.New(routers, wires, injStart)
	as := make([]*Adapter, n)
	for node := 0; node < n; node++ {
		as[node] = newAdapter(fab, routers[node], node, n)
		fab.SetAdapter(node, as[node])
	}
	return fab, as, nil
}

// Adapter is the one-port Spidergon network interface: a single source
// queue feeding the single injection channel, and the packet-creation logic
// for broadcast-by-unicast chains (§2.2: "The NoC switches must contain the
// logic to create the required packets on receipt of a broadcast-by-unicast
// packet").
type Adapter struct {
	network.BaseAdapter
	n   int
	fab *network.Fabric
}

func newAdapter(fab *network.Fabric, r *router.Router, node, n int) *Adapter {
	a := &Adapter{n: n, fab: fab}
	a.Node = node
	a.R = r
	a.Queues = make([]network.PacketQueue, 1)
	a.InjPorts = []int{Inj}
	a.OnTail = func(f flit.Flit, now int64) { a.onTail(f, now) }
	return a
}

// SendUnicast queues a unicast message of msgLen flits for dst.
func (a *Adapter) SendUnicast(dst, msgLen int, now int64) uint64 {
	if dst == a.Node {
		panic("spidergon: unicast to self")
	}
	msgID := a.fab.NextMsgID()
	h := flit.Flit{
		Traffic: flit.Unicast, Src: a.Node, Dst: dst,
		PktID: a.fab.NextPktID(), MsgID: msgID, Gen: now,
	}
	a.fab.Tracker.Register(msgID, network.ClassUnicast, a.Node, now, 1)
	a.Enqueue(0, h, msgLen)
	return msgID
}

// SendBroadcast queues the two broadcast-by-unicast chains. Each receiving
// node's switch delivers the packet locally, rewrites the header for the
// next node and retransmits after the tail arrives (store-and-forward),
// which is what costs the Spidergon its broadcast performance.
func (a *Adapter) SendBroadcast(msgLen int, now int64) uint64 {
	msgID := a.fab.NextMsgID()
	a.fab.Tracker.Register(msgID, network.ClassBroadcast, a.Node, now, a.n-1)
	for _, c := range topology.SpidergonBroadcastChains(a.n, a.Node) {
		h := flit.Flit{
			Traffic: flit.BcastChain, Src: a.Node, Dst: c.Nodes[0],
			Remain: len(c.Nodes) - 1, ChainCCW: c.Dir == topology.CCW,
			PktID: a.fab.NextPktID(), MsgID: msgID, Gen: now,
		}
		a.Enqueue(0, h, msgLen)
	}
	return msgID
}

// SendMulticast emulates the collective in software — one independent
// unicast per distinct remote target through the single injection queue (the
// Spidergon has no absorb-and-forward hardware, so a multicast costs it k
// full unicasts where the Quarc pays per quadrant).
func (a *Adapter) SendMulticast(targets []int, msgLen int, now int64) uint64 {
	return a.SendMulticastFanout(a.fab, 0, targets, msgLen, now)
}

func (a *Adapter) onTail(f flit.Flit, now int64) {
	a.fab.Tracker.Delivered(f.MsgID, a.Node, now)
	if f.Traffic == flit.BcastChain && f.Remain > 0 {
		var next int
		if f.ChainCCW {
			next = topology.NextCCW(a.n, a.Node)
		} else {
			next = topology.NextCW(a.n, a.Node)
		}
		h := flit.Flit{
			Traffic: flit.BcastChain, Src: a.Node, Dst: next,
			Remain: f.Remain - 1, ChainCCW: f.ChainCCW,
			PktID: a.fab.NextPktID(), MsgID: f.MsgID, Gen: f.Gen,
		}
		// The switch-created packet takes precedence over PE traffic on the
		// single injection channel.
		a.EnqueueFront(0, h, f.PktLen)
	}
}

var _ network.Adapter = (*Adapter)(nil)

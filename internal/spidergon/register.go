package spidergon

import (
	"quarc/internal/model"
	"quarc/internal/network"
	"quarc/internal/topology"
)

func init() {
	model.Register(model.Model{
		Name:        "spidergon",
		Description: "Spidergon baseline: one-port router, single shared cross link, broadcast by unicast chains",
		CheckN:      topology.ValidateRingSize,
		ExampleN:    16,
		Build: func(bc model.BuildConfig) (*network.Fabric, []model.Node, error) {
			fab, as, err := Build(Config{N: bc.N, Depth: bc.Depth})
			if err != nil {
				return nil, nil, err
			}
			nodes := make([]model.Node, len(as))
			for i, a := range as {
				nodes[i] = a
			}
			return fab, nodes, nil
		},
	})
}

// Package trace records flit-level event traces from the fabric: injection,
// per-hop forwarding, local delivery. Traces are the debugging substrate for
// a flit-level simulator — the equivalent of OMNeT++'s event log in the
// paper's toolchain — and are used by the integration tests to assert
// path-level properties (a packet's trace must equal its deterministic
// route) and by quarcsim's -trace flag.
//
// The buffer is a fixed-capacity ring so that always-on tracing of long runs
// keeps the most recent window without unbounded memory.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Kind classifies an event.
type Kind uint8

const (
	Inject  Kind = iota // flit left a source queue into the injection port
	Forward             // flit crossed a link (router output -> downstream input)
	Deliver             // flit delivered to a PE
)

func (k Kind) String() string {
	switch k {
	case Inject:
		return "inject"
	case Forward:
		return "forward"
	case Deliver:
		return "deliver"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one trace record.
type Event struct {
	Cycle int64
	Kind  Kind
	Node  int // router where the event happened
	Out   int // output port (Forward) or -1
	VC    int // virtual channel (Forward) or -1
	PktID uint64
	MsgID uint64
	Seq   int // flit index within the packet
}

func (e Event) String() string {
	switch e.Kind {
	case Forward:
		return fmt.Sprintf("[%6d] %-7s node=%-2d out=%d vc=%d pkt=%d msg=%d flit=%d",
			e.Cycle, e.Kind, e.Node, e.Out, e.VC, e.PktID, e.MsgID, e.Seq)
	default:
		return fmt.Sprintf("[%6d] %-7s node=%-2d           pkt=%d msg=%d flit=%d",
			e.Cycle, e.Kind, e.Node, e.PktID, e.MsgID, e.Seq)
	}
}

// Buffer is a fixed-capacity event ring. The zero value is unusable; use
// NewBuffer.
type Buffer struct {
	ring    []Event
	next    int
	total   uint64
	wrapped bool
}

// NewBuffer returns a ring holding the most recent cap events.
func NewBuffer(capacity int) *Buffer {
	if capacity < 1 {
		panic("trace: non-positive capacity")
	}
	return &Buffer{ring: make([]Event, capacity)}
}

// Record appends an event, evicting the oldest when full.
func (b *Buffer) Record(e Event) {
	b.ring[b.next] = e
	b.next++
	b.total++
	if b.next == len(b.ring) {
		b.next = 0
		b.wrapped = true
	}
}

// Total returns how many events were ever recorded.
func (b *Buffer) Total() uint64 { return b.total }

// Len returns how many events are currently retained.
func (b *Buffer) Len() int {
	if b.wrapped {
		return len(b.ring)
	}
	return b.next
}

// Events returns retained events oldest-first.
func (b *Buffer) Events() []Event {
	if !b.wrapped {
		out := make([]Event, b.next)
		copy(out, b.ring[:b.next])
		return out
	}
	out := make([]Event, 0, len(b.ring))
	out = append(out, b.ring[b.next:]...)
	out = append(out, b.ring[:b.next]...)
	return out
}

// Filter returns retained events matching pred, oldest-first.
func (b *Buffer) Filter(pred func(Event) bool) []Event {
	var out []Event
	for _, e := range b.Events() {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// PacketPath returns the node sequence a packet's header flit visited
// (Inject node followed by each Forward hop's destination is not recorded
// directly, so the path is reported as the sequence of routers that
// forwarded or delivered flit 0).
func (b *Buffer) PacketPath(pktID uint64) []int {
	var nodes []int
	for _, e := range b.Events() {
		if e.PktID != pktID || e.Seq != 0 {
			continue
		}
		nodes = append(nodes, e.Node)
	}
	return nodes
}

// Dump writes retained events to w, one per line.
func (b *Buffer) Dump(w io.Writer) error {
	for _, e := range b.Events() {
		if _, err := io.WriteString(w, e.String()+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// String renders the retained events.
func (b *Buffer) String() string {
	var sb strings.Builder
	_ = b.Dump(&sb)
	return sb.String()
}

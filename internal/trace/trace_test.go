package trace

import (
	"strings"
	"testing"
)

func ev(cycle int64, k Kind, node int, pkt uint64, seq int) Event {
	return Event{Cycle: cycle, Kind: k, Node: node, Out: -1, VC: -1, PktID: pkt, Seq: seq}
}

func TestRingRetainsMostRecent(t *testing.T) {
	b := NewBuffer(3)
	for i := int64(0); i < 5; i++ {
		b.Record(ev(i, Forward, int(i), 1, 0))
	}
	if b.Total() != 5 || b.Len() != 3 {
		t.Fatalf("total/len = %d/%d", b.Total(), b.Len())
	}
	got := b.Events()
	if len(got) != 3 || got[0].Cycle != 2 || got[2].Cycle != 4 {
		t.Fatalf("events = %+v", got)
	}
}

func TestEventsBeforeWrap(t *testing.T) {
	b := NewBuffer(8)
	b.Record(ev(1, Inject, 0, 1, 0))
	b.Record(ev(2, Deliver, 1, 1, 0))
	got := b.Events()
	if len(got) != 2 || got[0].Kind != Inject || got[1].Kind != Deliver {
		t.Fatalf("events = %+v", got)
	}
}

func TestFilter(t *testing.T) {
	b := NewBuffer(16)
	for i := 0; i < 10; i++ {
		b.Record(ev(int64(i), Forward, i%3, uint64(i%2), 0))
	}
	odd := b.Filter(func(e Event) bool { return e.PktID == 1 })
	if len(odd) != 5 {
		t.Fatalf("filtered %d events, want 5", len(odd))
	}
}

func TestPacketPath(t *testing.T) {
	b := NewBuffer(16)
	b.Record(ev(1, Forward, 0, 7, 0))
	b.Record(ev(1, Forward, 3, 8, 0)) // other packet
	b.Record(ev(2, Forward, 1, 7, 0))
	b.Record(ev(2, Forward, 1, 7, 1)) // body flit: not part of the header path
	b.Record(ev(3, Deliver, 2, 7, 0))
	path := b.PacketPath(7)
	want := []int{0, 1, 2}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestDumpAndString(t *testing.T) {
	b := NewBuffer(4)
	b.Record(ev(1, Inject, 0, 1, 0))
	b.Record(Event{Cycle: 2, Kind: Forward, Node: 1, Out: 2, VC: 1, PktID: 1, Seq: 0})
	s := b.String()
	if !strings.Contains(s, "inject") || !strings.Contains(s, "forward") {
		t.Fatalf("dump = %q", s)
	}
	if !strings.Contains(s, "out=2 vc=1") {
		t.Fatalf("forward line lacks port/vc: %q", s)
	}
}

func TestKindString(t *testing.T) {
	if Inject.String() != "inject" || Forward.String() != "forward" ||
		Deliver.String() != "deliver" || Kind(9).String() == "" {
		t.Fatal("kind strings wrong")
	}
}

func TestNewBufferValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	NewBuffer(0)
}

func BenchmarkRecord(b *testing.B) {
	buf := NewBuffer(1024)
	e := ev(1, Forward, 0, 1, 0)
	for i := 0; i < b.N; i++ {
		buf.Record(e)
	}
}

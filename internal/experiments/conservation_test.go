package experiments

import (
	"testing"

	"quarc/internal/model"
	"quarc/internal/network"
	"quarc/internal/sim"
	"quarc/internal/traffic"
)

// TestMessageConservationAcrossModels drives every registered model with
// live traffic and checks conservation at the tracker: every injected
// message is either delivered (completed) or still in flight, at every
// sampled cycle, and after the drain nothing is in flight, nothing is lost
// and nothing is delivered twice. The model list comes from the registry,
// so a newly registered model inherits the property with no edits here; the
// subtests run in parallel, so under -race this also shakes out cross-run
// sharing bugs in the models.
func TestMessageConservationAcrossModels(t *testing.T) {
	for _, name := range model.Names() {
		name := name
		m, _ := model.Lookup(name)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := Config{Model: name, N: m.ExampleN, MsgLen: 4, Beta: 0.1, Rate: 0.008,
				McastFrac: 0.15, McastSize: 3,
				Depth: 4, Warmup: 200, Measure: 1500, Drain: 20000, Seed: 11}
			fab, nodes, err := build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var mcasts int
			fab.Tracker.OnDone = func(r network.MessageRecord) {
				if r.Class == network.ClassMulticast {
					mcasts++
				}
			}
			horizon := cfg.Warmup + cfg.Measure

			var k sim.Kernel
			senders := make([]traffic.Sender, len(nodes))
			for i, nd := range nodes {
				senders[i] = nd
			}
			sources, err := traffic.Install(&k, traffic.Config{
				N: cfg.N, Rate: cfg.Rate, Beta: cfg.Beta, MsgLen: cfg.MsgLen,
				McastFrac: cfg.McastFrac, McastSize: cfg.McastSize,
				Seed: cfg.Seed, Until: horizon,
			}, senders)
			if err != nil {
				t.Fatal(err)
			}

			check := func(now int64) {
				sent := traffic.TotalSent(sources)
				acct := int64(fab.Tracker.Completed()) + int64(fab.Tracker.InFlight())
				if acct != sent {
					t.Fatalf("cycle %d: %d messages sent but %d accounted for "+
						"(completed %d + in flight %d)", now, sent, acct,
						fab.Tracker.Completed(), fab.Tracker.InFlight())
				}
			}
			k.Ticker(0, 1, sim.PriFabric, func(now sim.Time) bool {
				fab.Step()
				if now%50 == 0 {
					check(now)
				}
				return true
			})
			k.Run(horizon)

			for i := int64(0); i < cfg.Drain && fab.Tracker.InFlight() > 0; i++ {
				fab.Step()
			}
			check(horizon + cfg.Drain)
			if left := fab.Tracker.InFlight(); left != 0 {
				t.Errorf("%d messages still in flight after the drain budget", left)
			}
			if dup := fab.Tracker.Duplicates(); dup != 0 {
				t.Errorf("%d duplicate deliveries", dup)
			}
			if sent := traffic.TotalSent(sources); sent == 0 {
				t.Error("workload generated no messages; the property is vacuous")
			}
			if mcasts == 0 {
				t.Error("workload completed no multicasts; the multicast leg is vacuous")
			}
		})
	}
}

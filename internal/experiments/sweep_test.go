package experiments

import (
	"math"
	"reflect"
	"testing"
)

// sweepSpec is a small panel that still exercises both architectures,
// broadcasts and several rates.
func sweepSpec() PanelSpec {
	return PanelSpec{Figure: "t", Name: "sweep", N: 8, MsgLen: 4, Beta: 0.1,
		Rates: []float64{0.004, 0.01, 0.016}}
}

// TestRunPanelParallelMatchesSerial is the engine's core guarantee: for a
// fixed seed the worker-pool sweep must be bit-identical to the sequential
// one — same aggregates, same raw replicates, same series.
func TestRunPanelParallelMatchesSerial(t *testing.T) {
	for _, replicates := range []int{1, 3} {
		opts := tinyOpts()
		opts.Replicates = replicates
		opts.Workers = 4
		par, err := RunPanel(sweepSpec(), opts)
		if err != nil {
			t.Fatal(err)
		}
		ser, err := RunPanelSerial(sweepSpec(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par, ser) {
			t.Fatalf("replicates=%d: parallel and serial panels differ:\n%+v\nvs\n%+v",
				replicates, par, ser)
		}
	}
}

// TestRunPanelWorkerCountInvariant: the worker count must only affect
// wall-clock time, never the result.
func TestRunPanelWorkerCountInvariant(t *testing.T) {
	opts := tinyOpts()
	opts.Replicates = 2
	var prev *PanelResult
	for _, workers := range []int{1, 3, 8} {
		opts.Workers = workers
		pr, err := RunPanel(sweepSpec(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !reflect.DeepEqual(*prev, pr) {
			t.Fatalf("workers=%d changed the panel result", workers)
		}
		prev = &pr
	}
}

// TestRunSameSeedIsDeterministic: two Run calls with the same Config must
// produce identical Results.
func TestRunSameSeedIsDeterministic(t *testing.T) {
	cfg := Config{Topo: TopoQuarc, N: 8, MsgLen: 4, Beta: 0.1, Rate: 0.01,
		Warmup: 300, Measure: 1500, Drain: 8000, Seed: 99}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed runs differ:\n%+v\nvs\n%+v", a, b)
	}
}

// TestPointSeedIndependence: distinct design points must draw distinct
// seeds, and the derivation must not depend on anything but the triple.
func TestPointSeedIndependence(t *testing.T) {
	seen := map[uint64]string{}
	for _, topo := range []Topology{TopoQuarc, TopoSpidergon, TopoMesh} {
		for ri := 0; ri < 10; ri++ {
			for rep := 0; rep < 5; rep++ {
				s := PointSeed(7, topo, ri, rep)
				if s != PointSeed(7, topo, ri, rep) {
					t.Fatal("PointSeed is not a pure function")
				}
				key := topo.String()
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision between %s and %s/%d/%d", prev, key, ri, rep)
				}
				seen[s] = key
			}
		}
	}
	if PointSeed(7, TopoQuarc, 0, 0) == PointSeed(8, TopoQuarc, 0, 0) {
		t.Fatal("base seed does not propagate into point seeds")
	}
}

// TestAggregateReplicates covers the Replicates=3 aggregation: means of the
// replicate point estimates, across-replicate CI, summed counts, and the
// any-replicate saturation rule.
func TestAggregateReplicates(t *testing.T) {
	reps := []Result{
		{UnicastMean: 10, BcastMean: 40, UnicastP95: 20, Throughput: 0.10,
			UnicastCount: 100, BcastCount: 10, Leftover: 1},
		{UnicastMean: 12, BcastMean: 44, UnicastP95: 22, Throughput: 0.12,
			UnicastCount: 110, BcastCount: 11, Saturated: true},
		{UnicastMean: 14, BcastMean: 48, UnicastP95: 24, Throughput: 0.14,
			UnicastCount: 120, BcastCount: 12, Duplicates: 2},
	}
	agg := aggregateReplicates(reps)
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }
	if !approx(agg.UnicastMean, 12) || !approx(agg.BcastMean, 44) {
		t.Fatalf("wrong replicate means: %+v", agg)
	}
	// CI95 of {10,12,14}: sd = 2, 1.96*2/sqrt(3).
	wantCI := 1.96 * 2 / math.Sqrt(3)
	if !approx(agg.UnicastCI, wantCI) {
		t.Fatalf("unicast CI %v, want %v", agg.UnicastCI, wantCI)
	}
	if !approx(agg.UnicastP95, 22) || !approx(agg.Throughput, 0.12) {
		t.Fatalf("percentile/throughput not averaged: %+v", agg)
	}
	if agg.UnicastCount != 330 || agg.BcastCount != 33 {
		t.Fatalf("counts not summed: %+v", agg)
	}
	if !agg.Saturated || agg.Leftover != 1 || agg.Duplicates != 2 {
		t.Fatalf("flags not folded: %+v", agg)
	}

	// A single replicate aggregates to itself, bit for bit.
	if got := aggregateReplicates(reps[:1]); !reflect.DeepEqual(got, reps[0]) {
		t.Fatalf("single-replicate aggregation is not the identity: %+v", got)
	}
}

// TestAggregateReplicatesSkipsEmptyCounts: a replicate that measured no
// messages of a class contributes no latency sample — its 0.0 mean is
// absence of data and must not drag the aggregate toward zero.
func TestAggregateReplicatesSkipsEmptyCounts(t *testing.T) {
	reps := []Result{
		{BcastMean: 0, BcastP95: 0, BcastCount: 0}, // no broadcasts landed
		{BcastMean: 180, BcastP95: 200, BcastCount: 9},
		{BcastMean: 200, BcastP95: 230, BcastCount: 11},
	}
	agg := aggregateReplicates(reps)
	if math.Abs(agg.BcastMean-190) > 1e-9 || math.Abs(agg.BcastP95-215) > 1e-9 {
		t.Fatalf("zero-count replicate biased the aggregate: %+v", agg)
	}
	if agg.BcastCount != 20 {
		t.Fatalf("counts not summed: %+v", agg)
	}
	// All replicates empty: the aggregate must look like "no data" (count 0,
	// zero mean), which Render prints as '-'.
	empty := aggregateReplicates([]Result{{}, {}, {}})
	if empty.BcastCount != 0 || empty.BcastMean != 0 || empty.UnicastMean != 0 {
		t.Fatalf("all-empty aggregation invented data: %+v", empty)
	}
}

// TestRunPanelReplicatesShape: a replicated panel carries the raw replicate
// results and coherent aggregates.
func TestRunPanelReplicatesShape(t *testing.T) {
	opts := tinyOpts()
	opts.Replicates = 3
	spec := sweepSpec()
	pr, err := RunPanel(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Replicates != 3 {
		t.Fatalf("Replicates = %d, want 3", pr.Replicates)
	}
	if !reflect.DeepEqual(pr.Models, legacyPanelModels) {
		t.Fatalf("legacy panel swept %v, want %v", pr.Models, legacyPanelModels)
	}
	for _, name := range pr.Models {
		if len(pr.Raw[name]) != len(spec.Rates) {
			t.Fatalf("%s: %d raw rate groups, want %d", name, len(pr.Raw[name]), len(spec.Rates))
		}
		for ri, reps := range pr.Raw[name] {
			if len(reps) != 3 {
				t.Fatalf("%s rate %d: %d replicates, want 3", name, ri, len(reps))
			}
			seeds := map[uint64]bool{}
			for _, r := range reps {
				seeds[r.Cfg.Seed] = true
			}
			if len(seeds) != 3 {
				t.Fatalf("%s rate %d: replicates share seeds", name, ri)
			}
			agg := pr.Results[name][ri]
			want := aggregateReplicates(reps)
			want.Cfg.Seed = opts.Seed // panels echo the sweep-level seed
			if !reflect.DeepEqual(agg, want) {
				t.Fatalf("%s rate %d: stored aggregate mismatches recomputation", name, ri)
			}
		}
	}
	if len(pr.UnicastSeries("quarc").X) != len(spec.Rates) ||
		len(pr.CollectiveSeries("spidergon").X) != len(spec.Rates) {
		t.Fatal("series incomplete under replication")
	}
}

// TestRunReplicated covers the single-config replication used by quarcsim.
func TestRunReplicated(t *testing.T) {
	cfg := Config{Topo: TopoQuarc, N: 8, MsgLen: 4, Beta: 0.1, Rate: 0.01,
		Warmup: 300, Measure: 1500, Drain: 8000, Seed: 7}

	// One replicate is exactly Run.
	agg, reps, err := RunReplicated(cfg, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || !reflect.DeepEqual(agg, direct) {
		t.Fatal("RunReplicated(cfg, 1) is not Run(cfg)")
	}

	// Three replicates: distinct seeds, deterministic across worker counts.
	agg3a, reps3, err := RunReplicated(cfg, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps3) != 3 {
		t.Fatalf("%d replicates, want 3", len(reps3))
	}
	seeds := map[uint64]bool{}
	for _, r := range reps3 {
		seeds[r.Cfg.Seed] = true
	}
	if len(seeds) != 3 {
		t.Fatal("replicates share seeds")
	}
	agg3b, _, err := RunReplicated(cfg, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(agg3a, agg3b) {
		t.Fatal("worker count changed the replicated aggregate")
	}
	if agg3a.UnicastCount != reps3[0].UnicastCount+reps3[1].UnicastCount+reps3[2].UnicastCount {
		t.Fatal("aggregate does not sum replicate counts")
	}
}

// TestSweepRunPropagatesError: a failing point must surface its error.
func TestSweepRunPropagatesError(t *testing.T) {
	opts := tinyOpts()
	opts.Workers = 4
	bad := PanelSpec{Figure: "t", Name: "bad", N: 7, MsgLen: 4, Beta: 0,
		Rates: []float64{0.01}} // 7 nodes: invalid for the ring topologies
	if _, err := RunPanel(bad, opts); err == nil {
		t.Fatal("parallel sweep swallowed the build error")
	}
	if _, err := RunPanelSerial(bad, opts); err == nil {
		t.Fatal("serial sweep swallowed the build error")
	}
}

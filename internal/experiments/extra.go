package experiments

import (
	"fmt"
	"math"
	"strings"

	"quarc/internal/analytic"
	"quarc/internal/cost"
	"quarc/internal/plot"
)

// VerifyRow compares the simulator with the analytical model at one
// configuration (the §3.2 verification methodology).
type VerifyRow struct {
	Topo      Topology
	N         int
	MsgLen    int
	Rate      float64
	Simulated float64
	Predicted float64
	ErrorPc   float64
}

// Verify runs low-load unicast sweeps on the Spidergon, mesh and Quarc and
// compares mean latency against the analytical predictions.
func Verify(opts RunOpts) ([]VerifyRow, error) {
	var rows []VerifyRow
	type vc struct {
		topo   Topology
		n, m   int
		points []float64
	}
	cases := []vc{
		{TopoSpidergon, 16, 8, nil},
		{TopoSpidergon, 32, 16, nil},
		{TopoMesh, 16, 8, nil},
		{TopoQuarc, 16, 8, nil},
		{TopoQuarc, 32, 16, nil},
	}
	for _, c := range cases {
		var satRate float64
		switch c.topo {
		case TopoSpidergon:
			satRate = analytic.SpidergonUniform(c.n, c.m, 0).SaturationRate
		case TopoMesh:
			side := int(math.Sqrt(float64(c.n)))
			satRate = analytic.MeshUniform(side, side, c.m, 0, false).SaturationRate
		default:
			satRate = analytic.QuarcUniform(c.n, c.m, 0).SaturationRate
		}
		// Analytical wormhole models are accurate well below saturation;
		// wormhole blocking chains (which no M/D/1 channel model captures)
		// dominate beyond ~30% of raw channel capacity, so verification
		// stays below that, exactly as low-load model validations do.
		for _, frac := range []float64{0.08, 0.15, 0.25} {
			rate := satRate * frac
			res, err := Run(Config{
				Topo: c.topo, N: c.n, MsgLen: c.m, Rate: rate,
				Warmup: opts.Warmup, Measure: opts.Measure, Drain: opts.Drain,
				Depth: opts.Depth, Seed: opts.Seed,
			})
			if err != nil {
				return nil, err
			}
			var pred float64
			switch c.topo {
			case TopoSpidergon:
				pred = analytic.SpidergonUniform(c.n, c.m, rate).MeanLatency
			case TopoMesh:
				side := int(math.Sqrt(float64(c.n)))
				pred = analytic.MeshUniform(side, side, c.m, rate, false).MeanLatency
			default:
				pred = analytic.QuarcUniform(c.n, c.m, rate).MeanLatency
			}
			rows = append(rows, VerifyRow{
				Topo: c.topo, N: c.n, MsgLen: c.m, Rate: rate,
				Simulated: res.UnicastMean, Predicted: pred,
				ErrorPc: 100 * (res.UnicastMean - pred) / pred,
			})
		}
	}
	return rows, nil
}

// RenderVerify formats the verification table.
func RenderVerify(rows []VerifyRow) string {
	header := []string{"topology", "N", "M", "rate", "simulated", "model", "err %"}
	var tr [][]string
	for _, r := range rows {
		tr = append(tr, []string{
			r.Topo.String(), fmt.Sprint(r.N), fmt.Sprint(r.MsgLen),
			fmt.Sprintf("%.5f", r.Rate),
			fmt.Sprintf("%.2f", r.Simulated),
			fmt.Sprintf("%.2f", r.Predicted),
			fmt.Sprintf("%+.1f", r.ErrorPc),
		})
	}
	return "== simulator vs analytical model (paper §3.2 verification) ==\n" +
		plot.Table(header, tr)
}

// AblationRow isolates the contribution of each Quarc modification.
type AblationRow struct {
	Variant   Topology
	BcastMean float64
	UniMean   float64
	Saturated bool
}

// Ablation runs the modification ladder at a fixed moderate load:
// full Quarc, Quarc minus true broadcast (chain), Quarc minus all-port
// queues (single queue), and the Spidergon baseline.
func Ablation(n, msgLen int, beta, rate float64, opts RunOpts) ([]AblationRow, error) {
	var rows []AblationRow
	for _, topo := range []Topology{TopoQuarc, TopoQuarcChainBcast, TopoQuarcSingleQueue, TopoSpidergon} {
		res, err := Run(Config{
			Topo: topo, N: n, MsgLen: msgLen, Beta: beta, Rate: rate,
			Warmup: opts.Warmup, Measure: opts.Measure, Drain: opts.Drain,
			Depth: opts.Depth, Seed: opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Variant: topo, BcastMean: res.BcastMean, UniMean: res.UnicastMean,
			Saturated: res.Saturated,
		})
	}
	return rows, nil
}

// RenderAblation formats the ablation table.
func RenderAblation(rows []AblationRow, n, msgLen int, beta, rate float64) string {
	header := []string{"variant", "bcast latency", "unicast latency", "saturated"}
	var tr [][]string
	for _, r := range rows {
		tr = append(tr, []string{
			r.Variant.String(),
			fmt.Sprintf("%.1f", r.BcastMean),
			fmt.Sprintf("%.1f", r.UniMean),
			fmt.Sprint(r.Saturated),
		})
	}
	return fmt.Sprintf("== ablation of the Quarc modifications (N=%d M=%d beta=%.0f%% rate=%.4f) ==\n",
		n, msgLen, beta*100, rate) + plot.Table(header, tr)
}

// MeshComparison runs the future-work comparison (paper §4): Quarc versus
// mesh and torus at equal node count under uniform traffic with broadcasts.
func MeshComparison(n, msgLen int, beta float64, opts RunOpts) (string, error) {
	side := int(math.Round(math.Sqrt(float64(n))))
	if side*side != n {
		return "", fmt.Errorf("experiments: %d is not square", n)
	}
	base := analytic.QuarcUniform(n, msgLen, 0).SaturationRate
	derate := 1 + beta*float64(n)/4
	rates := []float64{0.15 * base / derate, 0.35 * base / derate, 0.55 * base / derate}
	header := []string{"topology", "rate", "unicast", "bcast", "throughput", "saturated"}
	var rows [][]string
	for _, topo := range []Topology{TopoQuarc, TopoMesh, TopoTorus} {
		for _, rate := range rates {
			res, err := Run(Config{
				Topo: topo, N: n, MsgLen: msgLen, Beta: beta, Rate: rate,
				Warmup: opts.Warmup, Measure: opts.Measure, Drain: opts.Drain,
				Depth: opts.Depth, Seed: opts.Seed,
			})
			if err != nil {
				return "", err
			}
			bc := "-"
			if res.BcastCount > 0 {
				bc = fmt.Sprintf("%.1f", res.BcastMean)
			}
			rows = append(rows, []string{
				topo.String(), fmt.Sprintf("%.5f", rate),
				fmt.Sprintf("%.1f", res.UnicastMean), bc,
				fmt.Sprintf("%.3f", res.Throughput), fmt.Sprint(res.Saturated),
			})
		}
	}
	return fmt.Sprintf("== quarc vs mesh/torus (N=%d M=%d beta=%.0f%%) ==\n", n, msgLen, beta*100) +
		plot.Table(header, rows), nil
}

// RenderCost formats Table 1 and Fig 12 from the structural area model.
func RenderCost() string {
	var b strings.Builder
	b.WriteString("== Table 1: module-wise cost of the 32-bit Quarc switch (slices) ==\n")
	var rows [][]string
	total := 0
	for _, r := range cost.Table1() {
		rows = append(rows, []string{r.Module, fmt.Sprint(r.Slices)})
		total += r.Slices
	}
	rows = append(rows, []string{"TOTAL", fmt.Sprint(total)})
	b.WriteString(plot.Table([]string{"module", "slices"}, rows))
	b.WriteString("\n== Fig 12: cost comparison between Quarc and Spidergon switches ==\n")
	var labels []string
	var values []float64
	for _, r := range cost.Fig12() {
		labels = append(labels,
			fmt.Sprintf("quarc-%d", r.Width), fmt.Sprintf("spidergon-%d", r.Width))
		values = append(values, float64(r.QuarcSlices), float64(r.SpidergonSlices))
	}
	b.WriteString(plot.Bars("occupied slices", labels, values, 48))
	hdr := []string{"width", "quarc", "spidergon", "quarc saves"}
	var frows [][]string
	for _, r := range cost.Fig12() {
		frows = append(frows, []string{
			fmt.Sprintf("%d-bit", r.Width),
			fmt.Sprint(r.QuarcSlices), fmt.Sprint(r.SpidergonSlices),
			fmt.Sprintf("%.1f%%", r.QuarcAdvantagePc),
		})
	}
	b.WriteString(plot.Table(hdr, frows))
	return b.String()
}

// LinkLoadBalance measures the per-link flit counts of both architectures
// under the same uniform workload, quantifying the paper's §2.1 claim that
// Spidergon traffic is unbalanced across link classes while the Quarc is
// edge-symmetric.
func LinkLoadBalance(n, msgLen int, rate float64, opts RunOpts) (string, error) {
	var b strings.Builder
	b.WriteString("== link load balance under uniform traffic ==\n")
	for _, topo := range []Topology{TopoQuarc, TopoSpidergon} {
		cfg := Config{Topo: topo, N: n, MsgLen: msgLen, Rate: rate,
			Warmup: opts.Warmup, Measure: opts.Measure, Drain: opts.Drain,
			Depth: opts.Depth, Seed: opts.Seed}.withDefaults()
		fab, nodes, err := build(cfg)
		if err != nil {
			return "", err
		}
		// Drive with a simple deterministic all-pairs workload.
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s != d {
					nodes[s].SendUnicast(d, msgLen, 0)
				}
			}
		}
		for i := 0; i < 200000 && fab.Tracker.InFlight() > 0; i++ {
			fab.Step()
		}
		loads := fab.LinkLoad()
		classes := map[string][]float64{}
		var names []string
		for out := range loads[0] {
			name := fmt.Sprintf("out%d", out)
			names = append(names, name)
			for node := 0; node < n; node++ {
				classes[name] = append(classes[name], float64(loads[node][out]))
			}
		}
		fmt.Fprintf(&b, "-- %s (all-pairs, M=%d) --\n", topo, msgLen)
		hdr := []string{"link class", "mean flits", "min", "max"}
		var rows [][]string
		for _, name := range names {
			vals := classes[name]
			mean, min, max := 0.0, math.Inf(1), math.Inf(-1)
			for _, v := range vals {
				mean += v
				min = math.Min(min, v)
				max = math.Max(max, v)
			}
			mean /= float64(len(vals))
			rows = append(rows, []string{name,
				fmt.Sprintf("%.1f", mean), fmt.Sprintf("%.0f", min), fmt.Sprintf("%.0f", max)})
		}
		b.WriteString(plot.Table(hdr, rows))
	}
	return b.String(), nil
}

package experiments

import (
	"math"
	"strings"
	"testing"
)

// tinyOpts keeps unit-test runtime small.
func tinyOpts() RunOpts {
	return RunOpts{Warmup: 300, Measure: 1500, Drain: 8000, Depth: 4, Seed: 42, Points: 4}
}

func TestRunAllTopologies(t *testing.T) {
	for _, topo := range []Topology{
		TopoQuarc, TopoSpidergon, TopoQuarcChainBcast, TopoQuarcSingleQueue, TopoMesh, TopoTorus,
	} {
		res, err := Run(Config{
			Topo: topo, N: 16, MsgLen: 8, Beta: 0.05, Rate: 0.004,
			Warmup: 200, Measure: 1000, Drain: 8000, Seed: 1,
		})
		if err != nil {
			t.Fatalf("%v: %v", topo, err)
		}
		if res.UnicastCount == 0 {
			t.Errorf("%v: no unicast samples", topo)
		}
		if res.UnicastMean <= float64(8) {
			t.Errorf("%v: unicast latency %v below message length", topo, res.UnicastMean)
		}
		if res.Duplicates != 0 {
			t.Errorf("%v: %d duplicate deliveries", topo, res.Duplicates)
		}
		if res.Saturated {
			t.Errorf("%v: saturated at a trivial load", topo)
		}
		if res.Leftover != 0 {
			t.Errorf("%v: %d messages stuck", topo, res.Leftover)
		}
		if res.Throughput <= 0 {
			t.Errorf("%v: throughput %v", topo, res.Throughput)
		}
	}
}

func TestRunRejectsBadConfigs(t *testing.T) {
	if _, err := Run(Config{Topo: TopoMesh, N: 15, MsgLen: 8, Rate: 0.01}); err == nil {
		t.Error("non-square mesh accepted")
	}
	if _, err := Run(Config{Topo: Topology(99), N: 16, MsgLen: 8, Rate: 0.01}); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, err := Run(Config{Topo: TopoQuarc, N: 13, MsgLen: 8, Rate: 0.01}); err == nil {
		t.Error("bad ring size accepted")
	}
}

func TestPaperHeadlineShape(t *testing.T) {
	// The core claims of Figs 9-11 at a stable load:
	//  (1) Quarc unicast latency below Spidergon;
	//  (2) Quarc broadcast completion several times lower;
	//  (3) identical workload, so the comparison is paired.
	opts := tinyOpts()
	load := 0.010
	q, err := Run(Config{Topo: TopoQuarc, N: 16, MsgLen: 16, Beta: 0.05, Rate: load,
		Warmup: opts.Warmup, Measure: opts.Measure, Drain: opts.Drain, Seed: opts.Seed})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Run(Config{Topo: TopoSpidergon, N: 16, MsgLen: 16, Beta: 0.05, Rate: load,
		Warmup: opts.Warmup, Measure: opts.Measure, Drain: opts.Drain, Seed: opts.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if q.UnicastMean >= s.UnicastMean {
		t.Errorf("quarc unicast %v not below spidergon %v", q.UnicastMean, s.UnicastMean)
	}
	if q.BcastMean*3 >= s.BcastMean {
		t.Errorf("quarc broadcast %v not dramatically below spidergon %v",
			q.BcastMean, s.BcastMean)
	}
}

func TestPanelSpecs(t *testing.T) {
	if len(Fig9Panels()) != 3 || len(Fig10Panels()) != 3 || len(Fig11Panels()) != 3 {
		t.Fatal("each figure has three panels in the paper")
	}
	for _, p := range Fig9Panels() {
		if p.N != 16 || p.Beta != 0.05 {
			t.Errorf("fig9 panel %+v", p)
		}
	}
	for _, p := range Fig10Panels() {
		if p.MsgLen != 16 || p.Beta != 0.10 {
			t.Errorf("fig10 panel %+v", p)
		}
	}
	for _, p := range Fig11Panels() {
		if p.N != 64 || p.MsgLen != 16 {
			t.Errorf("fig11 panel %+v", p)
		}
	}
}

func TestRateGridIsSane(t *testing.T) {
	for _, spec := range append(append(Fig9Panels(), Fig10Panels()...), Fig11Panels()...) {
		grid := rateGrid(spec, 10)
		if len(grid) != 10 {
			t.Fatalf("grid size %d", len(grid))
		}
		prev := 0.0
		for _, r := range grid {
			if r <= prev || r > 0.2 {
				t.Fatalf("%s: implausible grid %v", spec.Name, grid)
			}
			prev = r
		}
	}
}

func TestRunPanelProducesSeries(t *testing.T) {
	spec := PanelSpec{Figure: "t", Name: "tiny", N: 8, MsgLen: 4, Beta: 0.1,
		Rates: []float64{0.004, 0.012}}
	pr, err := RunPanel(spec, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.UnicastSeries("quarc").X) != 2 || len(pr.UnicastSeries("spidergon").X) != 2 {
		t.Fatal("unicast series incomplete")
	}
	if len(pr.CollectiveSeries("quarc").X) != 2 || len(pr.CollectiveSeries("spidergon").X) != 2 {
		t.Fatal("broadcast series incomplete")
	}
	out := pr.Render()
	for _, want := range []string{"tiny", "quarc unicast", "spidergon broadcast", "rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q", want)
		}
	}
}

func TestVerifyAgainstAnalyticModels(t *testing.T) {
	// The §3.2 methodology: at low load the simulator must agree with the
	// analytical models. Tolerance is generous at the 40% point where the
	// M/D/1 approximation starts drifting.
	rows, err := Verify(RunOpts{Warmup: 500, Measure: 4000, Drain: 15000, Depth: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no verification rows")
	}
	for _, r := range rows {
		if r.Simulated <= 0 || r.Predicted <= 0 {
			t.Errorf("%+v: non-positive latency", r)
		}
		if math.Abs(r.ErrorPc) > 25 {
			t.Errorf("%v N=%d M=%d rate=%.4f: model error %.1f%% too large (sim %.1f vs model %.1f)",
				r.Topo, r.N, r.MsgLen, r.Rate, r.ErrorPc, r.Simulated, r.Predicted)
		}
	}
	if s := RenderVerify(rows); !strings.Contains(s, "model") {
		t.Error("verification render broken")
	}
}

func TestAblationLadder(t *testing.T) {
	rows, err := Ablation(16, 16, 0.05, 0.008, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d ablation rows", len(rows))
	}
	byTopo := map[Topology]AblationRow{}
	for _, r := range rows {
		byTopo[r.Variant] = r
	}
	// True broadcast is the dominant factor: disabling it (chain variant)
	// must blow up broadcast latency toward the Spidergon level.
	if byTopo[TopoQuarc].BcastMean*2 >= byTopo[TopoQuarcChainBcast].BcastMean {
		t.Errorf("chain ablation did not degrade broadcast: %v vs %v",
			byTopo[TopoQuarc].BcastMean, byTopo[TopoQuarcChainBcast].BcastMean)
	}
	// The full Quarc must be the best broadcast performer of the ladder.
	for topo, r := range byTopo {
		if topo == TopoQuarc {
			continue
		}
		if byTopo[TopoQuarc].BcastMean > r.BcastMean {
			t.Errorf("full quarc broadcast %v worse than %v's %v",
				byTopo[TopoQuarc].BcastMean, topo, r.BcastMean)
		}
	}
	if s := RenderAblation(rows, 16, 16, 0.05, 0.008); !strings.Contains(s, "variant") {
		t.Error("ablation render broken")
	}
}

func TestMeshComparisonRuns(t *testing.T) {
	out, err := MeshComparison(16, 8, 0.05, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"quarc", "mesh", "torus"} {
		if !strings.Contains(out, want) {
			t.Errorf("mesh comparison lacks %q", want)
		}
	}
	if _, err := MeshComparison(24, 8, 0.05, tinyOpts()); err == nil {
		t.Error("non-square comparison accepted")
	}
}

func TestRenderCostMatchesPaper(t *testing.T) {
	out := RenderCost()
	for _, want := range []string{"1453", "1700", "Input Buffers", "735", "Fig 12"} {
		if !strings.Contains(out, want) {
			t.Errorf("cost render lacks %q", want)
		}
	}
}

func TestLinkLoadBalanceReport(t *testing.T) {
	out, err := LinkLoadBalance(16, 2, 0.01, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "quarc") || !strings.Contains(out, "spidergon") {
		t.Error("link load report incomplete")
	}
}

func TestTopologyString(t *testing.T) {
	for _, topo := range []Topology{TopoQuarc, TopoSpidergon, TopoQuarcChainBcast,
		TopoQuarcSingleQueue, TopoMesh, TopoTorus, Topology(42)} {
		if topo.String() == "" {
			t.Errorf("empty string for %d", int(topo))
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := Config{Topo: TopoQuarc, N: 16, Rate: 0.001}.withDefaults()
	if c.Depth != 4 || c.MsgLen != 16 || c.Warmup == 0 || c.Measure == 0 || c.Drain == 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
}

func TestRunIsBitExactlyReproducible(t *testing.T) {
	cfg := Config{Topo: TopoQuarc, N: 16, MsgLen: 8, Beta: 0.1, Rate: 0.01,
		Warmup: 300, Measure: 1500, Drain: 8000, Seed: 77}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("Run not reproducible:\n%+v\n%+v", a, b)
	}
}

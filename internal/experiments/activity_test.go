package experiments

import (
	"context"
	"testing"

	"quarc/internal/model"
	"quarc/internal/network"
	"quarc/internal/router"
	"quarc/internal/traffic"
)

// The activity-driven scheduler's contract: skipping quiescent routers and
// idle cycles must be invisible — every registered model, under every
// workload shape, at both ends of the load axis, must produce the same
// Result, the same tracker counters and the same per-router statistics as
// the dense reference that steps all N routers every cycle. New models
// inherit the proof with no edits here.

// fabricProbe is everything observable about a finished fabric.
type fabricProbe struct {
	cycle      int64
	delivered  uint64
	forwarded  uint64
	completed  uint64
	duplicates uint64
	inflight   int
	stepped    uint64
	routers    []router.Stats
}

func probeRun(t *testing.T, cfg Config) (Result, fabricProbe) {
	t.Helper()
	var p fabricProbe
	ctx := withFabricObserver(context.Background(), func(fab *network.Fabric) {
		fab.SyncStats()
		p.cycle = fab.Now()
		p.delivered = fab.FlitsDelivered()
		p.forwarded = fab.FlitsForwarded()
		p.completed = fab.Tracker.Completed()
		p.duplicates = fab.Tracker.Duplicates()
		p.inflight = fab.Tracker.InFlight()
		p.stepped = fab.SteppedRouters()
		for _, r := range fab.Routers {
			p.routers = append(p.routers, r.Stats())
		}
	})
	res, err := RunContext(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, p
}

// activityWorkloads are the workload shapes of the equivalence matrix.
func activityWorkloads(rate float64) map[string]Config {
	base := Config{N: 0, MsgLen: 8, Rate: rate, Depth: 4,
		Warmup: 150, Measure: 600, Drain: 3000, Seed: 99}
	unicast := base
	bcast := base
	bcast.Beta = 0.3
	hotspot := base
	hotspot.Pattern = traffic.Hotspot
	hotspot.HotspotBias = 0.4
	bursty := base
	bursty.BurstMeanOn, bursty.BurstMeanOff = 30, 90
	mcast := base
	mcast.McastFrac, mcast.McastSize = 0.3, 3
	return map[string]Config{
		"unicast":   unicast,
		"broadcast": bcast,
		"hotspot":   hotspot,
		"bursty":    bursty,
		"multicast": mcast,
	}
}

func TestActivityDrivenBitIdenticalToDense(t *testing.T) {
	rates := map[string]float64{
		"lowload":   0.002,
		"saturated": 0.15,
	}
	for _, name := range model.Names() {
		name := name
		m, _ := model.Lookup(name)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for rateName, rate := range rates {
				for wlName, cfg := range activityWorkloads(rate) {
					cfg.Model = name
					cfg.N = m.ExampleN
					dense := cfg
					dense.denseStep = true

					aRes, aProbe := probeRun(t, cfg)
					dRes, dProbe := probeRun(t, dense)

					// The stepping mode is the only intended difference;
					// erase it before comparing the full Result.
					dRes.Cfg.denseStep = false
					if aRes != dRes {
						t.Errorf("%s/%s: Result diverged:\nactivity %+v\ndense    %+v",
							rateName, wlName, aRes, dRes)
					}

					ap, dp := aProbe, dProbe
					if ap.cycle != dp.cycle || ap.delivered != dp.delivered ||
						ap.forwarded != dp.forwarded {
						t.Errorf("%s/%s: fabric counters diverged: activity {cyc %d del %d fwd %d} dense {cyc %d del %d fwd %d}",
							rateName, wlName, ap.cycle, ap.delivered, ap.forwarded,
							dp.cycle, dp.delivered, dp.forwarded)
					}
					if ap.completed != dp.completed || ap.duplicates != dp.duplicates ||
						ap.inflight != dp.inflight {
						t.Errorf("%s/%s: tracker counters diverged: activity {done %d dup %d inflight %d} dense {done %d dup %d inflight %d}",
							rateName, wlName, ap.completed, ap.duplicates, ap.inflight,
							dp.completed, dp.duplicates, dp.inflight)
					}
					if len(ap.routers) != len(dp.routers) {
						t.Fatalf("%s/%s: router count mismatch", rateName, wlName)
					}
					for node := range ap.routers {
						if ap.routers[node] != dp.routers[node] {
							t.Errorf("%s/%s: router %d stats diverged:\nactivity %+v\ndense    %+v",
								rateName, wlName, node, ap.routers[node], dp.routers[node])
						}
					}

					// Guard against a vacuous pass: at low load the scheduler
					// must actually have skipped work, and in dense mode the
					// step count must be exactly N per cycle.
					if dp.stepped != uint64(cfg.N)*uint64(dp.cycle) {
						t.Errorf("%s/%s: dense stepped %d router-steps over %d cycles, want %d",
							rateName, wlName, dp.stepped, dp.cycle, uint64(cfg.N)*uint64(dp.cycle))
					}
					if rateName == "lowload" && ap.stepped*2 > dp.stepped {
						t.Errorf("%s/%s: activity stepping did not engage: %d of %d router-steps",
							rateName, wlName, ap.stepped, dp.stepped)
					}
					if t.Failed() {
						return
					}
				}
			}
		})
	}
}

// TestActivitySchedulerSkipsIdleCycles pins the layer-2 mechanism directly:
// at a rate where arrivals are dozens of cycles apart on a small network,
// the activity run must execute a small fraction of the dense run's
// router-steps — bounded here, so a regression that silently falls back to
// dense stepping fails loudly rather than just slowing down.
func TestActivitySchedulerSkipsIdleCycles(t *testing.T) {
	cfg := Config{Topo: TopoQuarc, N: 16, MsgLen: 4, Rate: 0.0005,
		Depth: 4, Warmup: 500, Measure: 4000, Drain: 8000, Seed: 3}
	_, ap := probeRun(t, cfg)
	dense := cfg
	dense.denseStep = true
	_, dp := probeRun(t, dense)
	if ap.stepped*4 > dp.stepped {
		t.Fatalf("activity executed %d router-steps vs dense %d; want < 25%%",
			ap.stepped, dp.stepped)
	}
}

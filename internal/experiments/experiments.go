// Package experiments is the reproduction harness: it assembles a network,
// drives it with the paper's workloads and measures the quantities plotted
// in the evaluation section — average unicast latency, average broadcast
// completion latency and sustainable load versus offered message rate, for
// every configuration of Figs 9, 10 and 11 — plus the cost tables (Table 1,
// Fig 12), the analytical-model verification of §3.2, the mesh/torus
// comparison announced in the conclusion, and the ablation of the paper's
// three architectural modifications.
package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"quarc/internal/model"
	// The built-in model packages register themselves with internal/model
	// from init functions; this blank import is what links them in. The
	// harness itself resolves models purely by name.
	_ "quarc/internal/models"
	"quarc/internal/network"
	"quarc/internal/sim"
	"quarc/internal/stats"
	"quarc/internal/traffic"
)

// Topology is a compatibility shim over the model registry: the original
// harness selected models through this enum, and the public API, the wire
// format and the canonical cache keys still speak it for the six original
// models. New models have no enum member — select them with Config.Model.
type Topology int

const (
	TopoQuarc Topology = iota
	TopoSpidergon
	// Ablations of the paper's modifications (§2.2 i-iii), built on the
	// Quarc topology:
	TopoQuarcChainBcast  // true broadcast disabled (modification iii off)
	TopoQuarcSingleQueue // all-port source queues disabled (modification ii off)
	// Future-work comparisons (paper §4):
	TopoMesh
	TopoTorus
)

// String returns the registry (and wire) name of the enum member.
func (t Topology) String() string {
	switch t {
	case TopoQuarc:
		return "quarc"
	case TopoSpidergon:
		return "spidergon"
	case TopoQuarcChainBcast:
		return "quarc-chainbcast"
	case TopoQuarcSingleQueue:
		return "quarc-1queue"
	case TopoMesh:
		return "mesh"
	case TopoTorus:
		return "torus"
	}
	return fmt.Sprintf("Topology(%d)", int(t))
}

// legacyTopologies maps the six original model names to their enum members
// (the inverse of Topology.String). Configs selecting one of these by name
// canonicalise to the enum so their cache keys match pre-registry requests.
var legacyTopologies = map[string]Topology{
	"quarc":            TopoQuarc,
	"spidergon":        TopoSpidergon,
	"quarc-chainbcast": TopoQuarcChainBcast,
	"quarc-1queue":     TopoQuarcSingleQueue,
	"mesh":             TopoMesh,
	"torus":            TopoTorus,
}

// TopologyByName resolves one of the six original model names to its enum
// member. Models registered later have no Topology value; use Config.Model.
func TopologyByName(name string) (Topology, bool) {
	t, ok := legacyTopologies[strings.ToLower(name)]
	return t, ok
}

// Config is a single simulation run.
type Config struct {
	// Topo selects one of the six original models. Ignored when Model is
	// set.
	Topo Topology
	// Model selects the network model by registry name; it is how models
	// without a Topology enum member are requested. WithDefaults
	// canonicalises legacy names back onto Topo, so the field stays empty
	// (and the canonical encoding unchanged) for the original six.
	Model   string  `json:",omitempty"`
	N       int     // nodes (square number for mesh/torus)
	MsgLen  int     // M, flits per message
	Beta    float64 // broadcast fraction
	Rate    float64 // offered messages/node/cycle
	Pattern traffic.Pattern
	// HotspotBias is the probability a Hotspot-pattern unicast targets node
	// 0 (ignored for other patterns).
	HotspotBias float64
	Depth       int // VC buffer depth (default 4)
	Warmup      int64
	Measure     int64
	Drain       int64
	Seed        uint64
	// BurstMeanOn/BurstMeanOff switch the workload from the Bernoulli
	// source to the two-state MMBP bursty source of internal/traffic: mean
	// burst and silence lengths in cycles (both must be set together).
	// Rate keeps its meaning as the long-run mean offered load; the ON-state
	// rate is Rate*(MeanOn+MeanOff)/MeanOn. Bursty runs use the Uniform
	// pattern only.
	BurstMeanOn  float64 `json:",omitempty"`
	BurstMeanOff float64 `json:",omitempty"`
	// McastFrac sends that fraction of the non-broadcast messages as
	// McastSize-target multicasts (distinct uniform targets). The Quarc
	// routes them natively along BRCP branches; the other models emulate
	// them by unicast fan-out — the paper's core comparison as a sweep
	// axis. Both knobs must be set together; both sources honour them.
	// omitempty keeps the canonical cache keys of multicast-free requests
	// exactly what they were before the knobs existed.
	McastFrac float64 `json:",omitempty"`
	McastSize int     `json:",omitempty"`

	// StepWorkers sizes the intra-point worker pool that shards each fabric
	// cycle across goroutines: 0 auto-sizes (GOMAXPROCS clamped to N/16, so
	// small fabrics stay serial), 1 forces serial stepping, higher values
	// pin the count. Results are byte-identical at any value, so — exactly
	// like the sweep engine's Workers knob — the field is excluded from the
	// wire payload and the canonical cache keys (json:"-").
	StepWorkers int `json:"-"`

	// denseStep forces the reference dense behaviour: every router stepped
	// every cycle and no idle-cycle skipping. The activity-equivalence suite
	// sets it to prove the activity-driven scheduler bit-identical; it is
	// unexported on purpose — not part of the wire schema or cache keys.
	denseStep bool

	// stepGrain overrides the fabric's pool-engagement threshold (minimum
	// active nodes before parallel stepping pays). Test hook: the
	// worker-invariance suite sets it to 1 so registry-sized fabrics
	// exercise the parallel path. Unexported: not wire-visible.
	stepGrain int
}

// fabricObserverKey carries a func(*network.Fabric) in a context: RunContext
// invokes it on the finished fabric (post-drain, pre-Result). The
// activity-equivalence suite uses it to compare tracker counters and
// per-router statistics across stepping modes; a plain value lookup, so an
// un-instrumented run is unperturbed.
type fabricObserverKey struct{}

func withFabricObserver(ctx context.Context, fn func(*network.Fabric)) context.Context {
	return context.WithValue(ctx, fabricObserverKey{}, fn)
}

// ModelName returns the registry name of the model this configuration
// selects.
func (c Config) ModelName() string {
	if c.Model != "" {
		return strings.ToLower(c.Model)
	}
	return c.Topo.String()
}

// Bursty reports whether the configuration requests the MMBP source. Any
// non-zero value engages it (and must then pass validation), so malformed
// negative knobs are rejected instead of silently simulating the smooth
// source under a distinct cache key.
func (c Config) Bursty() bool { return c.BurstMeanOn != 0 || c.BurstMeanOff != 0 }

// ValidateWorkload checks the cross-field workload constraints that the
// build step cannot (it sees only N and Depth).
func (c Config) ValidateWorkload() error {
	if c.Bursty() {
		if c.BurstMeanOn < 1 || c.BurstMeanOff < 1 {
			return fmt.Errorf("experiments: burst mean on/off must both be >= 1 cycle")
		}
		if c.Pattern != traffic.Uniform {
			return fmt.Errorf("experiments: bursty traffic supports the uniform pattern only")
		}
		if on := c.burstOnRate(); on > 1 {
			return fmt.Errorf("experiments: bursty on-rate %.4f exceeds 1 msg/node/cycle "+
				"(rate too high for this on/off duty cycle)", on)
		}
	}
	if c.StepWorkers < 0 {
		return fmt.Errorf("experiments: negative step workers %d", c.StepWorkers)
	}
	switch {
	case c.McastFrac < 0 || c.McastFrac > 1:
		return fmt.Errorf("experiments: multicast fraction %v outside [0,1]", c.McastFrac)
	case c.McastFrac == 0 && c.McastSize != 0:
		return fmt.Errorf("experiments: multicast size %d without a multicast fraction", c.McastSize)
	case c.McastFrac > 0 && (c.McastSize < 2 || c.McastSize > c.N-1):
		return fmt.Errorf("experiments: multicast size %d outside [2,%d]", c.McastSize, c.N-1)
	}
	return nil
}

// burstOnRate is the ON-state arrival rate that yields mean offered load
// Rate under the configured duty cycle.
func (c Config) burstOnRate() float64 {
	return c.Rate * (c.BurstMeanOn + c.BurstMeanOff) / c.BurstMeanOn
}

// withDefaults fills unset fields and canonicalises the model selector:
// a Model naming one of the six original topologies collapses onto the Topo
// enum, keeping the canonical encoding (and therefore the service cache
// keys) of those models exactly what it was before the registry existed.
func (c Config) withDefaults() Config {
	if c.Model != "" {
		c.Model = strings.ToLower(c.Model)
		if t, ok := TopologyByName(c.Model); ok {
			c.Topo, c.Model = t, ""
		}
	}
	if c.Depth == 0 {
		c.Depth = 4
	}
	if c.Warmup == 0 {
		c.Warmup = 2000
	}
	if c.Measure == 0 {
		c.Measure = 10000
	}
	if c.Drain == 0 {
		c.Drain = 20000
	}
	if c.MsgLen == 0 {
		c.MsgLen = 16
	}
	return c
}

// Result summarises one run. The latency quantiles (P50/P95/P99 per traffic
// class) are histogram upper bounds at one-cycle resolution, computed with
// stats.Histogram.Quantile over the measured latencies.
type Result struct {
	Cfg           Config
	UnicastMean   float64 // mean tail latency, cycles
	UnicastCI     float64
	UnicastP50    float64 // median unicast latency
	UnicastP95    float64 // 95th percentile unicast latency
	UnicastP99    float64
	UnicastCount  int64
	BcastMean     float64 // mean completion (last destination) latency
	BcastCI       float64
	BcastP50      float64
	BcastP95      float64
	BcastP99      float64
	BcastDelivery float64 // mean per-destination delivery latency
	BcastCount    int64
	// McastCount is the subset of BcastCount that were multicasts (the
	// collective accumulators fold broadcast and multicast completions
	// together; this exposes the split).
	McastCount int64
	Throughput float64 // delivered flits/node/cycle in the window
	Saturated  bool
	Leftover   int // messages still in flight after the drain budget
	Duplicates uint64
	Cycles     int64 // fabric cycles actually stepped (warmup+measure+drain used)
}

// node is the adapter surface the harness needs.
type node = model.Node

// build assembles the requested network by registry lookup. The harness
// carries no topology-specific knowledge: every model (including the Quarc
// ablation presets) is a registration.
func build(cfg Config) (*network.Fabric, []node, error) {
	name := cfg.ModelName()
	m, ok := model.Lookup(name)
	if !ok {
		return nil, nil, fmt.Errorf("experiments: unknown model %q (registered: %s)",
			name, strings.Join(model.Names(), ", "))
	}
	return m.Build(model.BuildConfig{N: cfg.N, Depth: cfg.Depth})
}

// WithDefaults returns the configuration with unset fields replaced by their
// defaults — exactly what Run simulates. The service layer canonicalises
// requests through it so equivalent configurations share one cache key.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// ctxCheckPeriod is how often (in cycles) a cancellable run polls its
// context: rarely enough to stay off the hot path, often enough that
// cancellation lands within microseconds of wall time.
const ctxCheckPeriod = 512

// maxQuantileBuckets bounds the latency-histogram memory per run. Latencies
// beyond the bucket range land in the overflow bucket and clamp the reported
// quantile to the observed maximum.
const maxQuantileBuckets = 1 << 16

// Run executes one configuration and returns its measurements.
func Run(cfg Config) (Result, error) { return RunContext(context.Background(), cfg) }

// RunContext is Run with cooperative cancellation: it returns ctx.Err()
// promptly (within ctxCheckPeriod simulated cycles) once ctx is cancelled,
// discarding the partial measurements. For a ctx that is never cancelled the
// result is bit-identical to Run — the context poller observes the kernel
// without perturbing it.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.ValidateWorkload(); err != nil {
		return Result{}, err
	}
	fab, nodes, err := build(cfg)
	if err != nil {
		return Result{}, err
	}
	stepWorkers := cfg.StepWorkers
	if stepWorkers == 0 {
		stepWorkers = network.DefaultStepWorkers(cfg.N)
	}
	fab.SetStepWorkers(stepWorkers)
	defer fab.Close()
	if cfg.stepGrain > 0 {
		fab.SetStepGrain(cfg.stepGrain)
	}
	// The execution knobs are spent: clear them so the Cfg embedded in the
	// Result (and anything derived from it) is a pure function of the
	// workload, identical no matter how the point was stepped.
	cfg.StepWorkers, cfg.stepGrain = 0, 0

	var uni, bc, bcDeliv stats.Accumulator
	var mcastCount int64
	nb := cfg.Measure + cfg.Drain + 2
	if nb > maxQuantileBuckets {
		nb = maxQuantileBuckets
	}
	uniHist := stats.NewHistogram(int(nb), 1)
	bcHist := stats.NewHistogram(int(nb), 1)
	measureEnd := cfg.Warmup + cfg.Measure
	fab.Tracker.OnDone = func(r network.MessageRecord) {
		if r.Gen < cfg.Warmup || r.Gen >= measureEnd {
			return
		}
		switch r.Class {
		case network.ClassUnicast:
			uni.Add(float64(r.Last - r.Gen))
			uniHist.Add(float64(r.Last - r.Gen))
		case network.ClassBroadcast, network.ClassMulticast:
			bc.Add(float64(r.Last - r.Gen))
			bcHist.Add(float64(r.Last - r.Gen))
			bcDeliv.Add(float64(r.DeliSum)/float64(r.Delivered) - float64(r.Gen))
			if r.Class == network.ClassMulticast {
				mcastCount++
			}
		}
	}

	var k sim.Kernel
	senders := make([]traffic.Sender, len(nodes))
	for i, nd := range nodes {
		senders[i] = nd
	}
	if cfg.Bursty() {
		_, err = traffic.InstallBursty(&k, traffic.BurstyConfig{
			N: cfg.N, OnRate: cfg.burstOnRate(),
			MeanOn: cfg.BurstMeanOn, MeanOff: cfg.BurstMeanOff,
			Beta: cfg.Beta, MsgLen: cfg.MsgLen,
			McastFrac: cfg.McastFrac, McastSize: cfg.McastSize,
			Seed: cfg.Seed, Until: measureEnd,
		}, senders)
	} else {
		_, err = traffic.Install(&k, traffic.Config{
			N: cfg.N, Rate: cfg.Rate, Beta: cfg.Beta, MsgLen: cfg.MsgLen,
			Pattern: cfg.Pattern, HotspotBias: cfg.HotspotBias,
			McastFrac: cfg.McastFrac, McastSize: cfg.McastSize,
			Seed: cfg.Seed, Until: measureEnd,
		}, senders)
	}
	if err != nil {
		return Result{}, err
	}

	if cfg.denseStep {
		fab.SetDense(true)
	}
	// The fabric ticks every cycle after traffic arrivals. When the network
	// is completely idle (no buffered flit anywhere, no source backlog), the
	// ticker fast-forwards to the calendar's next event — the earliest
	// instant anything can change — instead of simulating the empty cycles;
	// AdvanceIdle reconciles the fabric clock on the next firing. The
	// skipped cycles are exactly those a dense fabric would spend proving
	// every router has nothing to do, so results are bit-identical.
	var fabTick *sim.Event
	fabTick = k.Ticker(0, 1, sim.PriFabric, func(now sim.Time) bool {
		if lag := now - fab.Now(); lag > 0 {
			fab.AdvanceIdle(lag)
		}
		fab.Step()
		if !cfg.denseStep && fab.Idle() {
			if next, ok := k.NextEventTime(); ok && next > now+1 {
				fabTick.SkipTo(next)
			}
		}
		return true
	})

	// Saturation sampling: total source backlog every sampleEvery cycles
	// during the measurement window.
	var det stats.SaturationDetector
	sampleEvery := cfg.Measure / 30
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	k.Ticker(cfg.Warmup, sampleEvery, sim.PriStats, func(now sim.Time) bool {
		total := 0
		for _, nd := range nodes {
			total += nd.Backlog()
		}
		det.Sample(float64(total))
		return now < measureEnd
	})

	// Throughput window bounds.
	var deliveredAtWarmup, deliveredAtEnd uint64
	k.Schedule(cfg.Warmup, sim.PriStats, func(sim.Time) { deliveredAtWarmup = fab.FlitsDelivered() })
	k.Schedule(measureEnd, sim.PriStats, func(sim.Time) { deliveredAtEnd = fab.FlitsDelivered() })

	// Cancellation poller: a pure observer at stats priority, registered only
	// for cancellable contexts so a background-context run schedules exactly
	// the events it always did.
	cancellable := ctx.Done() != nil
	if cancellable {
		k.Ticker(0, ctxCheckPeriod, sim.PriStats, func(now sim.Time) bool {
			if ctx.Err() != nil {
				k.Stop()
				return false
			}
			return true
		})
	}

	k.Run(measureEnd)
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	// Defensive clock catch-up. Today this is unreachable: the throughput
	// latch scheduled at measureEnd pins NextEventTime, so the fabric ticker
	// always fires (and steps) at measureEnd itself, leaving fab.Now() ==
	// measureEnd+1 exactly as dense stepping would. If that anchoring event
	// ever moves, the skip could park the ticker past the window; this
	// restores the dense clock before the drain loop rather than silently
	// mis-timing it.
	if lag := measureEnd + 1 - fab.Now(); lag > 0 {
		fab.AdvanceIdle(lag)
	}
	// Drain: no more traffic; step the fabric until everything lands or the
	// budget runs out. No kernel events can fire in the drain window, so the
	// cycles run as StepBatch batches — the worker pool amortises dispatch
	// over saturated spans — with the in-flight check evaluated between
	// cycles, exactly where the per-cycle loop evaluated it.
	var drained int64
	drainStop := func() bool { return fab.Tracker.InFlight() == 0 }
	for drained < cfg.Drain && fab.Tracker.InFlight() > 0 {
		if cancellable {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		if fab.Idle() {
			// Nothing buffered and no backlog, yet messages in flight: a
			// conservation bug no amount of stepping would drain. Dense
			// stepping would spin the remaining budget proving it; skip the
			// spin — Leftover reports the loss either way.
			break
		}
		chunk := cfg.Drain - drained
		if cancellable && chunk > ctxCheckPeriod {
			chunk = ctxCheckPeriod
		}
		drained += fab.StepBatch(chunk, drainStop)
	}
	if fn, ok := ctx.Value(fabricObserverKey{}).(func(*network.Fabric)); ok {
		fn(fab)
	}

	// Latencies are integer cycle counts in width-1 buckets, so bucket i
	// holds only the value i and Quantile's upper bound (i+1) overshoots by
	// exactly one: subtracting the width recovers the exact order statistic.
	// A quantile landing in the overflow bucket clamps to the observed max.
	quant := func(h *stats.Histogram, a *stats.Accumulator, q float64) float64 {
		if a.Count() == 0 {
			return 0
		}
		v := h.Quantile(q)
		if math.IsInf(v, 1) {
			return a.Max()
		}
		return v - 1
	}
	res := Result{
		Cfg:           cfg,
		UnicastMean:   uni.Mean(),
		UnicastCI:     uni.CI95(),
		UnicastP50:    quant(uniHist, &uni, 0.50),
		UnicastP95:    quant(uniHist, &uni, 0.95),
		UnicastP99:    quant(uniHist, &uni, 0.99),
		UnicastCount:  uni.Count(),
		BcastMean:     bc.Mean(),
		BcastCI:       bc.CI95(),
		BcastP50:      quant(bcHist, &bc, 0.50),
		BcastP95:      quant(bcHist, &bc, 0.95),
		BcastP99:      quant(bcHist, &bc, 0.99),
		BcastDelivery: bcDeliv.Mean(),
		BcastCount:    bc.Count(),
		McastCount:    mcastCount,
		Throughput:    float64(deliveredAtEnd-deliveredAtWarmup) / float64(cfg.N) / float64(cfg.Measure),
		Leftover:      fab.Tracker.InFlight(),
		Duplicates:    fab.Tracker.Duplicates(),
		Cycles:        measureEnd + drained,
	}
	res.Saturated = det.Saturated() || res.Leftover > 0
	return res, nil
}

// Package experiments is the reproduction harness: it assembles a network,
// drives it with the paper's workloads and measures the quantities plotted
// in the evaluation section — average unicast latency, average broadcast
// completion latency and sustainable load versus offered message rate, for
// every configuration of Figs 9, 10 and 11 — plus the cost tables (Table 1,
// Fig 12), the analytical-model verification of §3.2, the mesh/torus
// comparison announced in the conclusion, and the ablation of the paper's
// three architectural modifications.
package experiments

import (
	"fmt"
	"math"

	"quarc/internal/mesh"
	"quarc/internal/network"
	"quarc/internal/quarc"
	"quarc/internal/sim"
	"quarc/internal/spidergon"
	"quarc/internal/stats"
	"quarc/internal/traffic"
)

// Topology selects the network model under test.
type Topology int

const (
	TopoQuarc Topology = iota
	TopoSpidergon
	// Ablations of the paper's modifications (§2.2 i-iii), built on the
	// Quarc topology:
	TopoQuarcChainBcast  // true broadcast disabled (modification iii off)
	TopoQuarcSingleQueue // all-port source queues disabled (modification ii off)
	// Future-work comparisons (paper §4):
	TopoMesh
	TopoTorus
)

func (t Topology) String() string {
	switch t {
	case TopoQuarc:
		return "quarc"
	case TopoSpidergon:
		return "spidergon"
	case TopoQuarcChainBcast:
		return "quarc-chainbcast"
	case TopoQuarcSingleQueue:
		return "quarc-1queue"
	case TopoMesh:
		return "mesh"
	case TopoTorus:
		return "torus"
	}
	return fmt.Sprintf("Topology(%d)", int(t))
}

// Config is a single simulation run.
type Config struct {
	Topo    Topology
	N       int     // nodes (square number for mesh/torus)
	MsgLen  int     // M, flits per message
	Beta    float64 // broadcast fraction
	Rate    float64 // offered messages/node/cycle
	Pattern traffic.Pattern
	// HotspotBias is the probability a Hotspot-pattern unicast targets node
	// 0 (ignored for other patterns).
	HotspotBias float64
	Depth       int // VC buffer depth (default 4)
	Warmup      int64
	Measure     int64
	Drain       int64
	Seed        uint64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Depth == 0 {
		c.Depth = 4
	}
	if c.Warmup == 0 {
		c.Warmup = 2000
	}
	if c.Measure == 0 {
		c.Measure = 10000
	}
	if c.Drain == 0 {
		c.Drain = 20000
	}
	if c.MsgLen == 0 {
		c.MsgLen = 16
	}
	return c
}

// Result summarises one run.
type Result struct {
	Cfg           Config
	UnicastMean   float64 // mean tail latency, cycles
	UnicastCI     float64
	UnicastP95    float64 // 95th percentile unicast latency
	UnicastP99    float64
	UnicastCount  int64
	BcastMean     float64 // mean completion (last destination) latency
	BcastCI       float64
	BcastP95      float64
	BcastDelivery float64 // mean per-destination delivery latency
	BcastCount    int64
	Throughput    float64 // delivered flits/node/cycle in the window
	Saturated     bool
	Leftover      int // messages still in flight after the drain budget
	Duplicates    uint64
}

// node is the adapter surface the harness needs.
type node interface {
	traffic.Sender
	Backlog() int
}

// build assembles the requested network.
func build(cfg Config) (*network.Fabric, []node, error) {
	switch cfg.Topo {
	case TopoQuarc, TopoQuarcChainBcast, TopoQuarcSingleQueue:
		qc := quarc.Config{
			N: cfg.N, Depth: cfg.Depth,
			ChainBroadcast: cfg.Topo == TopoQuarcChainBcast,
			SingleQueue:    cfg.Topo == TopoQuarcSingleQueue,
		}
		fab, ts, err := quarc.Build(qc)
		if err != nil {
			return nil, nil, err
		}
		nodes := make([]node, len(ts))
		for i, t := range ts {
			nodes[i] = t
		}
		return fab, nodes, nil
	case TopoSpidergon:
		fab, as, err := spidergon.Build(spidergon.Config{N: cfg.N, Depth: cfg.Depth})
		if err != nil {
			return nil, nil, err
		}
		nodes := make([]node, len(as))
		for i, a := range as {
			nodes[i] = a
		}
		return fab, nodes, nil
	case TopoMesh, TopoTorus:
		side := int(math.Round(math.Sqrt(float64(cfg.N))))
		if side*side != cfg.N {
			return nil, nil, fmt.Errorf("experiments: mesh size %d is not square", cfg.N)
		}
		fab, as, err := mesh.Build(mesh.Config{
			W: side, H: side, Torus: cfg.Topo == TopoTorus, Depth: cfg.Depth,
		})
		if err != nil {
			return nil, nil, err
		}
		nodes := make([]node, len(as))
		for i, a := range as {
			nodes[i] = a
		}
		return fab, nodes, nil
	}
	return nil, nil, fmt.Errorf("experiments: unknown topology %v", cfg.Topo)
}

// Run executes one configuration and returns its measurements.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	fab, nodes, err := build(cfg)
	if err != nil {
		return Result{}, err
	}

	var uni, bc, bcDeliv stats.Accumulator
	var uniLats, bcLats []float64
	measureEnd := cfg.Warmup + cfg.Measure
	fab.Tracker.OnDone = func(r network.MessageRecord) {
		if r.Gen < cfg.Warmup || r.Gen >= measureEnd {
			return
		}
		switch r.Class {
		case network.ClassUnicast:
			uni.Add(float64(r.Last - r.Gen))
			uniLats = append(uniLats, float64(r.Last-r.Gen))
		case network.ClassBroadcast, network.ClassMulticast:
			bc.Add(float64(r.Last - r.Gen))
			bcLats = append(bcLats, float64(r.Last-r.Gen))
			bcDeliv.Add(float64(r.DeliSum)/float64(r.Delivered) - float64(r.Gen))
		}
	}

	var k sim.Kernel
	senders := make([]traffic.Sender, len(nodes))
	for i, nd := range nodes {
		senders[i] = nd
	}
	_, err = traffic.Install(&k, traffic.Config{
		N: cfg.N, Rate: cfg.Rate, Beta: cfg.Beta, MsgLen: cfg.MsgLen,
		Pattern: cfg.Pattern, HotspotBias: cfg.HotspotBias,
		Seed: cfg.Seed, Until: measureEnd,
	}, senders)
	if err != nil {
		return Result{}, err
	}

	// The fabric ticks every cycle after traffic arrivals.
	k.Ticker(0, 1, sim.PriFabric, func(now sim.Time) bool {
		fab.Step()
		return true
	})

	// Saturation sampling: total source backlog every sampleEvery cycles
	// during the measurement window.
	var det stats.SaturationDetector
	sampleEvery := cfg.Measure / 30
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	k.Ticker(cfg.Warmup, sampleEvery, sim.PriStats, func(now sim.Time) bool {
		total := 0
		for _, nd := range nodes {
			total += nd.Backlog()
		}
		det.Sample(float64(total))
		return now < measureEnd
	})

	// Throughput window bounds.
	var deliveredAtWarmup, deliveredAtEnd uint64
	k.Schedule(cfg.Warmup, sim.PriStats, func(sim.Time) { deliveredAtWarmup = fab.FlitsDelivered() })
	k.Schedule(measureEnd, sim.PriStats, func(sim.Time) { deliveredAtEnd = fab.FlitsDelivered() })

	k.Run(measureEnd)
	// Drain: no more traffic; step the fabric until everything lands or the
	// budget runs out.
	for i := int64(0); i < cfg.Drain && fab.Tracker.InFlight() > 0; i++ {
		fab.Step()
	}

	res := Result{
		Cfg:           cfg,
		UnicastMean:   uni.Mean(),
		UnicastCI:     uni.CI95(),
		UnicastP95:    stats.Percentile(uniLats, 95),
		UnicastP99:    stats.Percentile(uniLats, 99),
		UnicastCount:  uni.Count(),
		BcastMean:     bc.Mean(),
		BcastCI:       bc.CI95(),
		BcastP95:      stats.Percentile(bcLats, 95),
		BcastDelivery: bcDeliv.Mean(),
		BcastCount:    bc.Count(),
		Throughput:    float64(deliveredAtEnd-deliveredAtWarmup) / float64(cfg.N) / float64(cfg.Measure),
		Leftover:      fab.Tracker.InFlight(),
		Duplicates:    fab.Tracker.Duplicates(),
	}
	res.Saturated = det.Saturated() || res.Leftover > 0
	return res, nil
}

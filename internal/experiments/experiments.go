// Package experiments is the reproduction harness: it assembles a network,
// drives it with the paper's workloads and measures the quantities plotted
// in the evaluation section — average unicast latency, average broadcast
// completion latency and sustainable load versus offered message rate, for
// every configuration of Figs 9, 10 and 11 — plus the cost tables (Table 1,
// Fig 12), the analytical-model verification of §3.2, the mesh/torus
// comparison announced in the conclusion, and the ablation of the paper's
// three architectural modifications.
package experiments

import (
	"context"
	"fmt"
	"math"

	"quarc/internal/mesh"
	"quarc/internal/network"
	"quarc/internal/quarc"
	"quarc/internal/sim"
	"quarc/internal/spidergon"
	"quarc/internal/stats"
	"quarc/internal/traffic"
)

// Topology selects the network model under test.
type Topology int

const (
	TopoQuarc Topology = iota
	TopoSpidergon
	// Ablations of the paper's modifications (§2.2 i-iii), built on the
	// Quarc topology:
	TopoQuarcChainBcast  // true broadcast disabled (modification iii off)
	TopoQuarcSingleQueue // all-port source queues disabled (modification ii off)
	// Future-work comparisons (paper §4):
	TopoMesh
	TopoTorus
)

func (t Topology) String() string {
	switch t {
	case TopoQuarc:
		return "quarc"
	case TopoSpidergon:
		return "spidergon"
	case TopoQuarcChainBcast:
		return "quarc-chainbcast"
	case TopoQuarcSingleQueue:
		return "quarc-1queue"
	case TopoMesh:
		return "mesh"
	case TopoTorus:
		return "torus"
	}
	return fmt.Sprintf("Topology(%d)", int(t))
}

// Config is a single simulation run.
type Config struct {
	Topo    Topology
	N       int     // nodes (square number for mesh/torus)
	MsgLen  int     // M, flits per message
	Beta    float64 // broadcast fraction
	Rate    float64 // offered messages/node/cycle
	Pattern traffic.Pattern
	// HotspotBias is the probability a Hotspot-pattern unicast targets node
	// 0 (ignored for other patterns).
	HotspotBias float64
	Depth       int // VC buffer depth (default 4)
	Warmup      int64
	Measure     int64
	Drain       int64
	Seed        uint64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Depth == 0 {
		c.Depth = 4
	}
	if c.Warmup == 0 {
		c.Warmup = 2000
	}
	if c.Measure == 0 {
		c.Measure = 10000
	}
	if c.Drain == 0 {
		c.Drain = 20000
	}
	if c.MsgLen == 0 {
		c.MsgLen = 16
	}
	return c
}

// Result summarises one run. The latency quantiles (P50/P95/P99 per traffic
// class) are histogram upper bounds at one-cycle resolution, computed with
// stats.Histogram.Quantile over the measured latencies.
type Result struct {
	Cfg           Config
	UnicastMean   float64 // mean tail latency, cycles
	UnicastCI     float64
	UnicastP50    float64 // median unicast latency
	UnicastP95    float64 // 95th percentile unicast latency
	UnicastP99    float64
	UnicastCount  int64
	BcastMean     float64 // mean completion (last destination) latency
	BcastCI       float64
	BcastP50      float64
	BcastP95      float64
	BcastP99      float64
	BcastDelivery float64 // mean per-destination delivery latency
	BcastCount    int64
	Throughput    float64 // delivered flits/node/cycle in the window
	Saturated     bool
	Leftover      int // messages still in flight after the drain budget
	Duplicates    uint64
	Cycles        int64 // fabric cycles actually stepped (warmup+measure+drain used)
}

// node is the adapter surface the harness needs.
type node interface {
	traffic.Sender
	Backlog() int
}

// build assembles the requested network.
func build(cfg Config) (*network.Fabric, []node, error) {
	switch cfg.Topo {
	case TopoQuarc, TopoQuarcChainBcast, TopoQuarcSingleQueue:
		qc := quarc.Config{
			N: cfg.N, Depth: cfg.Depth,
			ChainBroadcast: cfg.Topo == TopoQuarcChainBcast,
			SingleQueue:    cfg.Topo == TopoQuarcSingleQueue,
		}
		fab, ts, err := quarc.Build(qc)
		if err != nil {
			return nil, nil, err
		}
		nodes := make([]node, len(ts))
		for i, t := range ts {
			nodes[i] = t
		}
		return fab, nodes, nil
	case TopoSpidergon:
		fab, as, err := spidergon.Build(spidergon.Config{N: cfg.N, Depth: cfg.Depth})
		if err != nil {
			return nil, nil, err
		}
		nodes := make([]node, len(as))
		for i, a := range as {
			nodes[i] = a
		}
		return fab, nodes, nil
	case TopoMesh, TopoTorus:
		side := int(math.Round(math.Sqrt(float64(cfg.N))))
		if side*side != cfg.N {
			return nil, nil, fmt.Errorf("experiments: mesh size %d is not square", cfg.N)
		}
		fab, as, err := mesh.Build(mesh.Config{
			W: side, H: side, Torus: cfg.Topo == TopoTorus, Depth: cfg.Depth,
		})
		if err != nil {
			return nil, nil, err
		}
		nodes := make([]node, len(as))
		for i, a := range as {
			nodes[i] = a
		}
		return fab, nodes, nil
	}
	return nil, nil, fmt.Errorf("experiments: unknown topology %v", cfg.Topo)
}

// WithDefaults returns the configuration with unset fields replaced by their
// defaults — exactly what Run simulates. The service layer canonicalises
// requests through it so equivalent configurations share one cache key.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// ctxCheckPeriod is how often (in cycles) a cancellable run polls its
// context: rarely enough to stay off the hot path, often enough that
// cancellation lands within microseconds of wall time.
const ctxCheckPeriod = 512

// maxQuantileBuckets bounds the latency-histogram memory per run. Latencies
// beyond the bucket range land in the overflow bucket and clamp the reported
// quantile to the observed maximum.
const maxQuantileBuckets = 1 << 16

// Run executes one configuration and returns its measurements.
func Run(cfg Config) (Result, error) { return RunContext(context.Background(), cfg) }

// RunContext is Run with cooperative cancellation: it returns ctx.Err()
// promptly (within ctxCheckPeriod simulated cycles) once ctx is cancelled,
// discarding the partial measurements. For a ctx that is never cancelled the
// result is bit-identical to Run — the context poller observes the kernel
// without perturbing it.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	fab, nodes, err := build(cfg)
	if err != nil {
		return Result{}, err
	}

	var uni, bc, bcDeliv stats.Accumulator
	nb := cfg.Measure + cfg.Drain + 2
	if nb > maxQuantileBuckets {
		nb = maxQuantileBuckets
	}
	uniHist := stats.NewHistogram(int(nb), 1)
	bcHist := stats.NewHistogram(int(nb), 1)
	measureEnd := cfg.Warmup + cfg.Measure
	fab.Tracker.OnDone = func(r network.MessageRecord) {
		if r.Gen < cfg.Warmup || r.Gen >= measureEnd {
			return
		}
		switch r.Class {
		case network.ClassUnicast:
			uni.Add(float64(r.Last - r.Gen))
			uniHist.Add(float64(r.Last - r.Gen))
		case network.ClassBroadcast, network.ClassMulticast:
			bc.Add(float64(r.Last - r.Gen))
			bcHist.Add(float64(r.Last - r.Gen))
			bcDeliv.Add(float64(r.DeliSum)/float64(r.Delivered) - float64(r.Gen))
		}
	}

	var k sim.Kernel
	senders := make([]traffic.Sender, len(nodes))
	for i, nd := range nodes {
		senders[i] = nd
	}
	_, err = traffic.Install(&k, traffic.Config{
		N: cfg.N, Rate: cfg.Rate, Beta: cfg.Beta, MsgLen: cfg.MsgLen,
		Pattern: cfg.Pattern, HotspotBias: cfg.HotspotBias,
		Seed: cfg.Seed, Until: measureEnd,
	}, senders)
	if err != nil {
		return Result{}, err
	}

	// The fabric ticks every cycle after traffic arrivals.
	k.Ticker(0, 1, sim.PriFabric, func(now sim.Time) bool {
		fab.Step()
		return true
	})

	// Saturation sampling: total source backlog every sampleEvery cycles
	// during the measurement window.
	var det stats.SaturationDetector
	sampleEvery := cfg.Measure / 30
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	k.Ticker(cfg.Warmup, sampleEvery, sim.PriStats, func(now sim.Time) bool {
		total := 0
		for _, nd := range nodes {
			total += nd.Backlog()
		}
		det.Sample(float64(total))
		return now < measureEnd
	})

	// Throughput window bounds.
	var deliveredAtWarmup, deliveredAtEnd uint64
	k.Schedule(cfg.Warmup, sim.PriStats, func(sim.Time) { deliveredAtWarmup = fab.FlitsDelivered() })
	k.Schedule(measureEnd, sim.PriStats, func(sim.Time) { deliveredAtEnd = fab.FlitsDelivered() })

	// Cancellation poller: a pure observer at stats priority, registered only
	// for cancellable contexts so a background-context run schedules exactly
	// the events it always did.
	cancellable := ctx.Done() != nil
	if cancellable {
		k.Ticker(0, ctxCheckPeriod, sim.PriStats, func(now sim.Time) bool {
			if ctx.Err() != nil {
				k.Stop()
				return false
			}
			return true
		})
	}

	k.Run(measureEnd)
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	// Drain: no more traffic; step the fabric until everything lands or the
	// budget runs out.
	var drained int64
	for i := int64(0); i < cfg.Drain && fab.Tracker.InFlight() > 0; i++ {
		if cancellable && i%ctxCheckPeriod == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		fab.Step()
		drained++
	}

	// Latencies are integer cycle counts in width-1 buckets, so bucket i
	// holds only the value i and Quantile's upper bound (i+1) overshoots by
	// exactly one: subtracting the width recovers the exact order statistic.
	// A quantile landing in the overflow bucket clamps to the observed max.
	quant := func(h *stats.Histogram, a *stats.Accumulator, q float64) float64 {
		if a.Count() == 0 {
			return 0
		}
		v := h.Quantile(q)
		if math.IsInf(v, 1) {
			return a.Max()
		}
		return v - 1
	}
	res := Result{
		Cfg:           cfg,
		UnicastMean:   uni.Mean(),
		UnicastCI:     uni.CI95(),
		UnicastP50:    quant(uniHist, &uni, 0.50),
		UnicastP95:    quant(uniHist, &uni, 0.95),
		UnicastP99:    quant(uniHist, &uni, 0.99),
		UnicastCount:  uni.Count(),
		BcastMean:     bc.Mean(),
		BcastCI:       bc.CI95(),
		BcastP50:      quant(bcHist, &bc, 0.50),
		BcastP95:      quant(bcHist, &bc, 0.95),
		BcastP99:      quant(bcHist, &bc, 0.99),
		BcastDelivery: bcDeliv.Mean(),
		BcastCount:    bc.Count(),
		Throughput:    float64(deliveredAtEnd-deliveredAtWarmup) / float64(cfg.N) / float64(cfg.Measure),
		Leftover:      fab.Tracker.InFlight(),
		Duplicates:    fab.Tracker.Duplicates(),
		Cycles:        measureEnd + drained,
	}
	res.Saturated = det.Saturated() || res.Leftover > 0
	return res, nil
}

package experiments

import (
	"reflect"
	"testing"

	"quarc/internal/model"
)

// registryCfg is the shared invariant-suite configuration for one model:
// small enough to run for every registered model, live enough to exercise
// broadcasts, multicasts and contention.
func registryCfg(name string, exampleN int) Config {
	return Config{Model: name, N: exampleN, MsgLen: 8, Beta: 0.05, Rate: 0.006,
		McastFrac: 0.1, McastSize: 3,
		Depth: 4, Warmup: 200, Measure: 1200, Drain: 20000, Seed: 77}
}

// TestRegistryModelsDeterministic runs every registered model through the
// replicated sweep engine and asserts the two determinism contracts the
// service relies on: the same seed gives bit-identical results, and the
// worker count never changes a single output bit (parallel == serial).
// Models registered later inherit the suite with no edits here.
func TestRegistryModelsDeterministic(t *testing.T) {
	for _, name := range model.Names() {
		name := name
		m, _ := model.Lookup(name)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := registryCfg(name, m.ExampleN)

			serialAgg, serialReps, err := RunReplicated(cfg, 3, 1)
			if err != nil {
				t.Fatal(err)
			}
			parAgg, parReps, err := RunReplicated(cfg, 3, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serialAgg, parAgg) {
				t.Errorf("parallel aggregate differs from serial:\nserial %+v\nparallel %+v",
					serialAgg, parAgg)
			}
			if !reflect.DeepEqual(serialReps, parReps) {
				t.Error("parallel replicate results differ from serial")
			}

			again, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			once, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(once, again) {
				t.Errorf("same seed, different results:\n%+v\n%+v", once, again)
			}
			if once.UnicastCount == 0 {
				t.Error("no unicast samples; the determinism check is vacuous")
			}
			if once.McastCount == 0 {
				t.Error("no multicast samples; the multicast leg of the check is vacuous")
			}
		})
	}
}

// TestRegistryModelSelection checks the compat contract between the enum
// shim and the registry: a Config naming a legacy model canonicalises onto
// its Topology member (so cache keys are unchanged), while new models keep
// the name.
func TestRegistryModelSelection(t *testing.T) {
	c := Config{Model: "Spidergon", N: 8}.WithDefaults()
	if c.Model != "" || c.Topo != TopoSpidergon {
		t.Fatalf("legacy name did not collapse onto the enum: %+v", c)
	}
	c = Config{Model: "ring", N: 8}.WithDefaults()
	if c.Model != "ring" {
		t.Fatalf("registry-only model lost its name: %+v", c)
	}
	if got := c.ModelName(); got != "ring" {
		t.Fatalf("ModelName() = %q, want ring", got)
	}
	if got := (Config{Topo: TopoTorus}).ModelName(); got != "torus" {
		t.Fatalf("ModelName() = %q, want torus", got)
	}
	if _, _, err := build(Config{Model: "no-such-model", N: 16, Depth: 4}); err == nil {
		t.Fatal("build accepted an unknown model")
	}
}

// TestBurstyConfigRuns checks the end-to-end bursty knobs: a bursty run
// completes, is deterministic, and differs from the smooth run at the same
// mean load; invalid combinations are rejected.
func TestBurstyConfigRuns(t *testing.T) {
	base := Config{Topo: TopoQuarc, N: 16, MsgLen: 8, Rate: 0.01,
		Depth: 4, Warmup: 200, Measure: 2000, Drain: 20000, Seed: 5}
	smooth, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	bcfg := base
	bcfg.BurstMeanOn, bcfg.BurstMeanOff = 40, 120
	burst, err := Run(bcfg)
	if err != nil {
		t.Fatal(err)
	}
	burst2, err := Run(bcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(burst, burst2) {
		t.Error("bursty run is not deterministic")
	}
	if burst.UnicastCount == 0 {
		t.Fatal("bursty run measured no unicasts")
	}
	if burst.UnicastMean == smooth.UnicastMean {
		t.Error("bursty and smooth runs are identical; the knobs did nothing")
	}

	bad := bcfg
	bad.Pattern = 1 // hotspot
	if _, err := Run(bad); err == nil {
		t.Error("bursty + non-uniform pattern accepted")
	}
	bad = bcfg
	bad.BurstMeanOff = 0
	if _, err := Run(bad); err == nil {
		t.Error("bursty with only one knob set accepted")
	}
	bad = bcfg
	bad.BurstMeanOn, bad.BurstMeanOff = -40, -120
	if _, err := Run(bad); err == nil {
		t.Error("negative burst knobs accepted")
	}
	bad = bcfg
	bad.Rate = 0.9 // on-rate would exceed 1
	if _, err := Run(bad); err == nil {
		t.Error("bursty with infeasible on-rate accepted")
	}
}

// Parallel sweep engine: the paper's evaluation grids (Figs 9-11) are sets
// of independent simulation points — (topology, offered rate, replicate)
// triples — so regenerating a panel is embarrassingly parallel. The engine
// fans the points across a bounded worker pool while keeping the output
// bit-for-bit identical to a serial sweep: every point derives its own seed
// from the experiment seed alone (never from scheduling order), results land
// in a slot indexed by point position, and replicate aggregation folds them
// in a fixed order. RunPanelSerial preserves the plain sequential path so
// tests can assert the equivalence.
//
//quarc:poolfile bounded sweep worker pool; order-independence proven by TestSweepMatchesSerial
package experiments

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"

	"quarc/internal/rng"
	"quarc/internal/stats"
)

// PointDone describes one completed design point of a sweep. It is delivered
// to RunOpts.OnPointDone as each point finishes, so long sweeps can stream
// progress (the quarcd daemon turns these into NDJSON events).
type PointDone struct {
	Index int // position in the sweep's deterministic point order
	Total int // total points in the sweep
	// Model is the canonical registry name of the simulated model — for
	// every model, not just the six with a legacy Topology member.
	Model     string
	RateIndex int
	Replicate int
	Rate      float64
	Result    Result
}

// legacyPanelModels is the architecture pair a panel sweeps when
// PanelSpec.Models is empty — the paper's fixed quarc/spidergon comparison.
var legacyPanelModels = []string{"quarc", "spidergon"}

// sweepPoint is one independent design point of a sweep.
type sweepPoint struct {
	Cfg       Config
	Model     string // canonical registry name
	RateIndex int
	Replicate int
}

// PointSeed derives the deterministic seed of a design point from the
// experiment-level base seed. Distinct (topology, rate index, replicate)
// triples get statistically independent seeds, and the value depends only on
// the triple — never on worker scheduling — so parallel and serial sweeps
// simulate exactly the same systems.
func PointSeed(base uint64, topo Topology, rateIndex, replicate int) uint64 {
	return rng.Derive(base, uint64(topo), uint64(rateIndex), uint64(replicate))
}

// PointSeedNamed is PointSeed for registry-only models: the model's registry
// name is folded in by FNV-1a instead of the enum value. The six original
// models keep the enum derivation, so legacy sweeps simulate bit-identical
// systems; pointSeedFor routes between the two.
func PointSeedNamed(base uint64, model string, rateIndex, replicate int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(model))
	return rng.Derive(base, h.Sum64(), uint64(rateIndex), uint64(replicate))
}

// pointSeedFor derives the seed of a design point from its canonical model
// name: enum-based for the original six, name-keyed for registry-only models.
func pointSeedFor(base uint64, model string, rateIndex, replicate int) uint64 {
	if t, ok := TopologyByName(model); ok {
		return PointSeed(base, t, rateIndex, replicate)
	}
	return PointSeedNamed(base, model, rateIndex, replicate)
}

// normalized fills the sweep-level defaults.
func (o RunOpts) normalized() RunOpts {
	if o.Replicates < 1 {
		o.Replicates = 1
	}
	if o.Workers < 1 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// pointStepWorkers resolves the intra-point fabric parallelism sweeps give
// their points. An explicit RunOpts.StepWorkers passes through; otherwise a
// sweep that fans points across multiple workers pins points serial (outer
// parallelism already fills the machine, and inner pools would oversubscribe
// it), while a single-worker sweep defers to the fabric's auto sizing. Called
// after normalized(), so Workers is resolved. Applied identically by the
// parallel and serial panel paths, keeping their results comparable.
func (o RunOpts) pointStepWorkers() int {
	if o.StepWorkers != 0 {
		return o.StepWorkers
	}
	if o.Workers > 1 {
		return 1
	}
	return 0
}

// sweepRun executes every point on a pool of workers goroutines. Results are
// written into a slot per point, so the returned order is the input order
// regardless of which worker finished when. A cancelled context stops the
// workers from picking up further points and aborts the points in flight;
// otherwise the first error (in point order) is returned after all workers
// stop. onDone, if non-nil, is called with (point index, result) as each
// point completes — concurrently, from the worker goroutines.
func sweepRun(ctx context.Context, points []sweepPoint, workers int, onDone func(int, Result)) ([]Result, error) {
	results := make([]Result, len(points))
	errs := make([]error, len(points))
	if workers > len(points) {
		workers = len(points)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(points) {
					return
				}
				results[i], errs[i] = runPointGuarded(ctx, points[i].Cfg)
				if errs[i] == nil && onDone != nil {
					onDone(i, results[i])
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return results, err
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// runPointGuarded isolates one design point: a panic anywhere in the
// simulator fails that point with an error instead of unwinding through the
// sweep's worker goroutine and killing the whole process, so one poisoned
// configuration costs its own job, never its neighbours (or, under quarcd,
// the daemon). RunPanelSerial stays unguarded on purpose — it is the
// debugging reference, where a raw panic with its full stack is the feature.
func runPointGuarded(ctx context.Context, cfg Config) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("point panicked: %v", r)
		}
	}()
	return RunContext(ctx, cfg)
}

// pointNotifier adapts a PointDone callback to sweepRun's (index, result)
// signature, filling in the point identity from the expanded point list.
func pointNotifier(onDone func(PointDone), points []sweepPoint) func(int, Result) {
	if onDone == nil {
		return nil
	}
	total := len(points)
	return func(i int, res Result) {
		p := points[i]
		onDone(PointDone{
			Index: i, Total: total,
			Model: p.Model, RateIndex: p.RateIndex, Replicate: p.Replicate,
			Rate: p.Cfg.Rate, Result: res,
		})
	}
}

// panelPoints expands a panel spec into its design points, ordered model-
// major, then rate, then replicate. assemblePanel relies on this layout.
func panelPoints(spec PanelSpec, opts RunOpts) ([]sweepPoint, []float64) {
	rates := spec.Rates
	if rates == nil {
		rates = rateGrid(spec, opts.Points)
	}
	models := spec.SweptModels()
	points := make([]sweepPoint, 0, len(models)*len(rates)*opts.Replicates)
	for _, name := range models {
		base := Config{
			N: spec.N, MsgLen: spec.MsgLen, Beta: spec.Beta,
			Pattern: spec.Pattern, HotspotBias: spec.HotspotBias,
			McastFrac: spec.McastFrac, McastSize: spec.McastSize,
			Depth:  opts.Depth,
			Warmup: opts.Warmup, Measure: opts.Measure, Drain: opts.Drain,
			StepWorkers: opts.pointStepWorkers(),
		}
		// Legacy models select through the enum (keeping their pre-registry
		// configs, seeds and cache keys); registry-only models by name.
		if t, ok := TopologyByName(name); ok {
			base.Topo = t
		} else {
			base.Model = name
		}
		for ri, rate := range rates {
			for rep := 0; rep < opts.Replicates; rep++ {
				cfg := base
				cfg.Rate = rate
				cfg.Seed = pointSeedFor(opts.Seed, name, ri, rep)
				points = append(points, sweepPoint{
					Model: name, RateIndex: ri, Replicate: rep, Cfg: cfg,
				})
			}
		}
	}
	return points, rates
}

// aggregateReplicates folds the replicate results of one (topology, rate)
// point into a single Result. With one replicate it is the identity. With
// more, the latency means become across-replicate means and the CI fields
// become the 95% confidence half-width of those replicate means (the
// standard independent-replications estimator); percentile and throughput
// fields are averaged, counts are summed, and the point counts as saturated
// if any replicate saturated. Cfg is replicate 0's configuration; callers
// that know the experiment-level seed overwrite Cfg.Seed with it, so an
// aggregate echoes the seed that was requested, not a derived one.
func aggregateReplicates(reps []Result) Result {
	if len(reps) == 0 {
		return Result{}
	}
	if len(reps) == 1 {
		return reps[0]
	}
	// Latency metrics only exist in replicates that measured at least one
	// message of that class: a zero-count replicate's 0.0 mean is absence of
	// data, not data, and folding it in would bias the aggregate toward zero
	// (the single-run path renders such points as "-").
	collect := func(ok func(Result) bool, get func(Result) float64) []float64 {
		xs := make([]float64, 0, len(reps))
		for _, r := range reps {
			if ok(r) {
				xs = append(xs, get(r))
			}
		}
		return xs
	}
	avg := func(ok func(Result) bool, get func(Result) float64) float64 {
		m, _ := stats.MeanCI95(collect(ok, get))
		return m
	}
	hasUni := func(r Result) bool { return r.UnicastCount > 0 }
	hasBc := func(r Result) bool { return r.BcastCount > 0 }
	always := func(Result) bool { return true }
	agg := reps[0]
	agg.UnicastMean, agg.UnicastCI = stats.MeanCI95(collect(hasUni, func(r Result) float64 { return r.UnicastMean }))
	agg.BcastMean, agg.BcastCI = stats.MeanCI95(collect(hasBc, func(r Result) float64 { return r.BcastMean }))
	agg.UnicastP50 = avg(hasUni, func(r Result) float64 { return r.UnicastP50 })
	agg.UnicastP95 = avg(hasUni, func(r Result) float64 { return r.UnicastP95 })
	agg.UnicastP99 = avg(hasUni, func(r Result) float64 { return r.UnicastP99 })
	agg.BcastP50 = avg(hasBc, func(r Result) float64 { return r.BcastP50 })
	agg.BcastP95 = avg(hasBc, func(r Result) float64 { return r.BcastP95 })
	agg.BcastP99 = avg(hasBc, func(r Result) float64 { return r.BcastP99 })
	agg.BcastDelivery = avg(hasBc, func(r Result) float64 { return r.BcastDelivery })
	agg.Throughput = avg(always, func(r Result) float64 { return r.Throughput })
	agg.UnicastCount, agg.BcastCount, agg.McastCount = 0, 0, 0
	agg.Leftover, agg.Duplicates, agg.Saturated, agg.Cycles = 0, 0, false, 0
	for _, r := range reps {
		agg.UnicastCount += r.UnicastCount
		agg.BcastCount += r.BcastCount
		agg.McastCount += r.McastCount
		agg.Leftover += r.Leftover
		agg.Duplicates += r.Duplicates
		agg.Saturated = agg.Saturated || r.Saturated
		agg.Cycles += r.Cycles
	}
	return agg
}

// assemblePanel groups point results back into the panel structure. The
// grouping is pure index arithmetic over panelPoints's layout, so it is
// independent of how the points were executed — and of the order the models
// were listed in, since every model's points carry model-keyed seeds.
func assemblePanel(spec PanelSpec, opts RunOpts, rates []float64, results []Result) PanelResult {
	pr := PanelResult{
		Spec:       spec,
		Models:     spec.SweptModels(),
		RatesSwept: rates,
		Results:    map[string][]Result{},
		Raw:        map[string][][]Result{},
		Replicates: opts.Replicates,
	}
	for mi, name := range pr.Models {
		for ri := range rates {
			base := (mi*len(rates) + ri) * opts.Replicates
			reps := append([]Result(nil), results[base:base+opts.Replicates]...)
			pr.Raw[name] = append(pr.Raw[name], reps)
			res := aggregateReplicates(reps)
			// Aggregated rows echo the sweep-level seed the caller chose;
			// the per-replicate derived seeds stay visible in Raw.
			res.Cfg.Seed = opts.Seed
			pr.Results[name] = append(pr.Results[name], res)
		}
	}
	return pr
}

// RunPanel sweeps one panel for every model in PanelSpec.Models (the legacy
// quarc/spidergon pair when empty), fanning the independent (model, rate,
// replicate) points across RunOpts.Workers goroutines. For a fixed
// RunOpts.Seed the result is bit-identical to RunPanelSerial.
func RunPanel(spec PanelSpec, opts RunOpts) (PanelResult, error) {
	return RunPanelContext(context.Background(), spec, opts)
}

// RunPanelContext is RunPanel with cooperative cancellation: once ctx is
// cancelled no further points start, points in flight abort promptly, and
// ctx.Err() is returned. Neither the context nor RunOpts.OnPointDone ever
// changes the results.
func RunPanelContext(ctx context.Context, spec PanelSpec, opts RunOpts) (PanelResult, error) {
	opts = opts.normalized()
	points, rates := panelPoints(spec, opts)
	results, err := sweepRun(ctx, points, opts.Workers, pointNotifier(opts.OnPointDone, points))
	if err != nil {
		return PanelResult{Spec: spec, RatesSwept: rates}, err
	}
	return assemblePanel(spec, opts, rates, results), nil
}

// PanelPointCount returns the number of design points RunPanel will execute
// for this spec and options — what a sweep's progress is measured against.
func PanelPointCount(spec PanelSpec, opts RunOpts) int {
	opts = opts.normalized()
	points, _ := panelPoints(spec, opts)
	return len(points)
}

// RunPanelSerial is RunPanel without the worker pool: the same points in the
// same order on the calling goroutine. It exists so tests (and debugging
// sessions) can compare the parallel engine against a plainly sequential
// execution. RunOpts.OnPointDone fires here too, in point order.
func RunPanelSerial(spec PanelSpec, opts RunOpts) (PanelResult, error) {
	opts = opts.normalized()
	points, rates := panelPoints(spec, opts)
	notify := pointNotifier(opts.OnPointDone, points)
	results := make([]Result, len(points))
	for i, p := range points {
		res, err := Run(p.Cfg)
		if err != nil {
			return PanelResult{Spec: spec, RatesSwept: rates}, err
		}
		results[i] = res
		if notify != nil {
			notify(i, res)
		}
	}
	return assemblePanel(spec, opts, rates, results), nil
}

// RunReplicated executes one configuration replicates times with independent
// derived seeds, in parallel across workers (0 means GOMAXPROCS), and
// returns the aggregate alongside the per-replicate results. With one
// replicate it is exactly Run(cfg): the seed is used as given.
func RunReplicated(cfg Config, replicates, workers int) (Result, []Result, error) {
	return RunReplicatedContext(context.Background(), cfg, replicates, workers, nil)
}

// RunReplicatedContext is RunReplicated with cooperative cancellation and an
// optional per-replicate completion callback (concurrent, like a sweep's).
func RunReplicatedContext(ctx context.Context, cfg Config, replicates, workers int, onDone func(PointDone)) (Result, []Result, error) {
	if replicates < 1 {
		replicates = 1
	}
	// The canonical model name labels every progress event: deriving it from
	// cfg.Topo alone would report registry-only models (zero-value enum) as
	// "quarc".
	name := cfg.ModelName()
	if replicates == 1 {
		res, err := runPointGuarded(ctx, cfg)
		if err == nil && onDone != nil {
			onDone(PointDone{Index: 0, Total: 1, Model: name, Rate: cfg.Rate, Result: res})
		}
		return res, []Result{res}, err
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cfg.StepWorkers == 0 && workers > 1 {
		// Replicates fan out across workers: pin the per-replicate fabrics
		// serial (same rule as pointStepWorkers) instead of letting each
		// auto-size a pool on an already busy machine.
		cfg.StepWorkers = 1
	}
	points := make([]sweepPoint, replicates)
	for rep := range points {
		c := cfg
		c.Seed = pointSeedFor(cfg.Seed, name, 0, rep)
		points[rep] = sweepPoint{Cfg: c, Model: name, Replicate: rep}
	}
	results, err := sweepRun(ctx, points, workers, pointNotifier(onDone, points))
	if err != nil {
		return Result{}, nil, err
	}
	agg := aggregateReplicates(results)
	agg.Cfg.Seed = cfg.Seed // echo the requested seed, not replicate 0's derived one
	return agg, results, nil
}

// String renders a sweep point compactly for diagnostics.
func (p sweepPoint) String() string {
	return fmt.Sprintf("%s rate[%d]=%.5f rep=%d seed=%#x",
		p.Model, p.RateIndex, p.Cfg.Rate, p.Replicate, p.Cfg.Seed)
}

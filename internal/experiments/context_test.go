package experiments

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func ctxTestConfig() Config {
	return Config{
		Topo: TopoQuarc, N: 8, MsgLen: 4, Beta: 0.05, Rate: 0.004,
		Warmup: 200, Measure: 1000, Drain: 5000, Seed: 99,
	}
}

// A cancellable-but-never-cancelled context must not perturb the simulation:
// the result is bit-identical to the background-context path.
func TestRunContextMatchesRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	withCtx, err := RunContext(ctx, ctxTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(ctxTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(withCtx, plain) {
		t.Fatalf("cancellable-context result diverged:\n%+v\n%+v", withCtx, plain)
	}
}

func TestRunContextCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, ctxTestConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	cfg := ctxTestConfig()
	cfg.Measure = 200_000_000 // hours of simulation if cancellation fails
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunContext(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; want prompt return", elapsed)
	}
}

func TestRunPanelContextCancelStopsSweep(t *testing.T) {
	spec := PanelSpec{N: 8, MsgLen: 4, Beta: 0.05, Rates: []float64{0.002, 0.004}}
	opts := RunOpts{Warmup: 100, Measure: 200_000_000, Drain: 1000, Seed: 5, Workers: 2}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunPanelContext(ctx, spec, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("sweep cancellation took %v; want prompt return", elapsed)
	}
}

// OnPointDone must fire once per design point, with indexes covering the
// deterministic point order, on both the parallel and serial paths — and
// must not change the results.
func TestOnPointDoneCoversSweep(t *testing.T) {
	spec := PanelSpec{N: 8, MsgLen: 4, Beta: 0.05, Rates: []float64{0.002, 0.004}}
	base := RunOpts{Warmup: 100, Measure: 400, Drain: 4000, Seed: 5, Replicates: 2, Workers: 3}
	want := PanelPointCount(spec, base)
	if want != 2*2*2 { // topologies x rates x replicates
		t.Fatalf("PanelPointCount = %d, want 8", want)
	}

	runWith := func(runner func(PanelSpec, RunOpts) (PanelResult, error)) (PanelResult, map[int]int) {
		var mu sync.Mutex
		seen := map[int]int{}
		opts := base
		opts.OnPointDone = func(pd PointDone) {
			mu.Lock()
			defer mu.Unlock()
			seen[pd.Index]++
			if pd.Total != want {
				t.Errorf("PointDone.Total = %d, want %d", pd.Total, want)
			}
			if pd.Result.Cycles == 0 {
				t.Error("PointDone.Result missing cycle count")
			}
		}
		pr, err := runner(spec, opts)
		if err != nil {
			t.Fatal(err)
		}
		return pr, seen
	}

	parallel, seenPar := runWith(RunPanel)
	serial, seenSer := runWith(RunPanelSerial)
	for name, seen := range map[string]map[int]int{"parallel": seenPar, "serial": seenSer} {
		if len(seen) != want {
			t.Fatalf("%s: %d distinct point callbacks, want %d", name, len(seen), want)
		}
		for i := 0; i < want; i++ {
			if seen[i] != 1 {
				t.Fatalf("%s: point %d completed %d times", name, i, seen[i])
			}
		}
	}
	if !reflect.DeepEqual(parallel, serial) {
		t.Fatal("OnPointDone changed sweep results between parallel and serial")
	}
}

func TestRunReplicatedContextCallback(t *testing.T) {
	var count atomic.Int64
	agg, reps, err := RunReplicatedContext(context.Background(), ctxTestConfig(), 3, 2,
		func(pd PointDone) { count.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 || count.Load() != 3 {
		t.Fatalf("3 replicates: got %d results, %d callbacks", len(reps), count.Load())
	}
	if agg.Cfg.Seed != ctxTestConfig().Seed {
		t.Fatalf("aggregate echoes derived seed %#x, want the requested %#x",
			agg.Cfg.Seed, ctxTestConfig().Seed)
	}
	aggNoCb, _, err := RunReplicated(ctxTestConfig(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(agg, aggNoCb) {
		t.Fatal("callback changed RunReplicated aggregate")
	}
}

// The histogram-backed quantiles must be ordered and bracket the mean.
func TestResultQuantiles(t *testing.T) {
	res, err := Run(ctxTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.UnicastCount == 0 {
		t.Fatal("no unicast messages measured")
	}
	if !(res.UnicastP50 <= res.UnicastP95 && res.UnicastP95 <= res.UnicastP99) {
		t.Fatalf("unordered unicast quantiles: p50=%v p95=%v p99=%v",
			res.UnicastP50, res.UnicastP95, res.UnicastP99)
	}
	if res.UnicastP99 < res.UnicastMean {
		t.Fatalf("p99 %v below mean %v", res.UnicastP99, res.UnicastMean)
	}
	if res.Cycles < res.Cfg.Warmup+res.Cfg.Measure {
		t.Fatalf("Cycles %d below warmup+measure", res.Cycles)
	}
}

package experiments

import (
	"fmt"
	"strings"

	"quarc/internal/analytic"
	"quarc/internal/plot"
	"quarc/internal/router"
	"quarc/internal/sim"
	"quarc/internal/traffic"
)

// Contention reports the microarchitectural stall breakdown (no-credit /
// vc-busy / arbitration-lost) and mean buffer occupancy for the Quarc and
// the Spidergon under the same uniform workload. It explains *where* the
// Spidergon loses: its shared cross link and single ejection port turn into
// arbitration and credit stalls well before the rim channels saturate.
func Contention(n, msgLen int, beta, rate float64, opts RunOpts) (string, error) {
	var b strings.Builder
	b.WriteString("== stall breakdown under identical load ==\n")
	header := []string{"topology", "grants", "no-credit", "vc-busy", "arb-lost",
		"stall/grant", "mean buf occupancy"}
	var rows [][]string
	for _, topo := range []Topology{TopoQuarc, TopoSpidergon} {
		cfg := Config{Topo: topo, N: n, MsgLen: msgLen, Beta: beta, Rate: rate,
			Warmup: opts.Warmup, Measure: opts.Measure, Drain: opts.Drain,
			Depth: opts.Depth, Seed: opts.Seed}.withDefaults()
		fab, nodes, err := build(cfg)
		if err != nil {
			return "", err
		}
		var k sim.Kernel
		senders := make([]traffic.Sender, len(nodes))
		for i, nd := range nodes {
			senders[i] = nd
		}
		if _, err := traffic.Install(&k, traffic.Config{
			N: cfg.N, Rate: cfg.Rate, Beta: cfg.Beta, MsgLen: cfg.MsgLen,
			Seed: cfg.Seed, Until: cfg.Warmup + cfg.Measure,
		}, senders); err != nil {
			return "", err
		}
		k.Ticker(0, 1, sim.PriFabric, func(sim.Time) bool { fab.Step(); return true })
		k.Run(cfg.Warmup + cfg.Measure)
		for i := int64(0); i < cfg.Drain && fab.Tracker.InFlight() > 0; i++ {
			fab.Step()
		}
		st := fab.RouterStats()
		ratio := 0.0
		if st.Grants > 0 {
			ratio = float64(st.TotalStalls()) / float64(st.Grants)
		}
		rows = append(rows, []string{
			topo.String(),
			fmt.Sprint(st.Grants),
			fmt.Sprint(st.Stalls[router.StallNoCredit]),
			fmt.Sprint(st.Stalls[router.StallVCBusy]),
			fmt.Sprint(st.Stalls[router.StallArbLost]),
			fmt.Sprintf("%.3f", ratio),
			fmt.Sprintf("%.2f", st.MeanOccupancy()/float64(cfg.N)),
		})
	}
	b.WriteString(plot.Table(header, rows))
	return b.String(), nil
}

// DepthRow is one point of the buffer-depth ablation.
type DepthRow struct {
	Depth     int
	UniMean   float64
	BcastMean float64
	Saturated bool
}

// DepthSweep isolates the one free microarchitectural parameter the paper
// leaves open ("The buffers in the design are parametrized in width and
// depth", §2.3.1): latency versus VC buffer depth at a fixed load.
func DepthSweep(topo Topology, n, msgLen int, beta, rate float64, opts RunOpts) ([]DepthRow, error) {
	var rows []DepthRow
	for _, depth := range []int{1, 2, 4, 8, 16} {
		res, err := Run(Config{
			Topo: topo, N: n, MsgLen: msgLen, Beta: beta, Rate: rate,
			Warmup: opts.Warmup, Measure: opts.Measure, Drain: opts.Drain,
			Depth: depth, Seed: opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, DepthRow{
			Depth: depth, UniMean: res.UnicastMean, BcastMean: res.BcastMean,
			Saturated: res.Saturated,
		})
	}
	return rows, nil
}

// RenderDepthSweep formats the depth ablation.
func RenderDepthSweep(topo Topology, rows []DepthRow) string {
	header := []string{"buffer depth", "unicast", "broadcast", "saturated"}
	var tr [][]string
	for _, r := range rows {
		tr = append(tr, []string{
			fmt.Sprint(r.Depth),
			fmt.Sprintf("%.1f", r.UniMean),
			fmt.Sprintf("%.1f", r.BcastMean),
			fmt.Sprint(r.Saturated),
		})
	}
	return fmt.Sprintf("== buffer depth ablation (%s) ==\n", topo) + plot.Table(header, tr)
}

// Bursty compares both architectures under ON/OFF bursty traffic at the
// same mean offered load as a uniform baseline (the paper's §1 point that
// burstiness "exacerbates" the Spidergon's imbalance).
func Bursty(n, msgLen int, beta float64, opts RunOpts) (string, error) {
	base := analytic.QuarcUniform(n, msgLen, 0).SaturationRate
	meanRate := 0.25 * base / (1 + 7*beta)
	var b strings.Builder
	fmt.Fprintf(&b, "== bursty vs smooth traffic at equal mean load (%.5f msgs/node/cycle) ==\n", meanRate)
	header := []string{"topology", "smooth uni", "bursty uni", "smooth bc", "bursty bc", "bursty penalty"}
	var rows [][]string
	for _, topo := range []Topology{TopoQuarc, TopoSpidergon} {
		smooth, err := Run(Config{
			Topo: topo, N: n, MsgLen: msgLen, Beta: beta, Rate: meanRate,
			Warmup: opts.Warmup, Measure: opts.Measure, Drain: opts.Drain,
			Depth: opts.Depth, Seed: opts.Seed,
		})
		if err != nil {
			return "", err
		}
		burst, err := runBursty(topo, n, msgLen, beta, meanRate, opts)
		if err != nil {
			return "", err
		}
		rows = append(rows, []string{
			topo.String(),
			fmt.Sprintf("%.1f", smooth.UnicastMean),
			fmt.Sprintf("%.1f", burst.UnicastMean),
			fmt.Sprintf("%.1f", smooth.BcastMean),
			fmt.Sprintf("%.1f", burst.BcastMean),
			fmt.Sprintf("%.2fx", burst.UnicastMean/smooth.UnicastMean),
		})
	}
	b.WriteString(plot.Table(header, rows))
	return b.String(), nil
}

// runBursty is Run with the ON/OFF source instead of the Bernoulli source:
// bursts of ~40 cycles at 4x concentration (off 120), the same mean load.
// It rides the Config.BurstMeanOn/BurstMeanOff path, so the CLI's bursty
// report and a wire-API bursty run exercise identical code.
func runBursty(topo Topology, n, msgLen int, beta, meanRate float64, opts RunOpts) (Result, error) {
	return Run(Config{Topo: topo, N: n, MsgLen: msgLen, Beta: beta, Rate: meanRate,
		BurstMeanOn: 40, BurstMeanOff: 120,
		Warmup: opts.Warmup, Measure: opts.Measure, Drain: opts.Drain,
		Depth: opts.Depth, Seed: opts.Seed})
}

// HotspotComparison stresses both architectures with a hotspot pattern: a
// bias fraction of all unicasts target one node. The Quarc's four dedicated
// ejection paths and balanced links degrade more gracefully than the
// Spidergon's single arbitrated ejection port.
func HotspotComparison(n, msgLen int, bias float64, opts RunOpts) (string, error) {
	base := analytic.QuarcUniform(n, msgLen, 0).SaturationRate
	rates := []float64{0.15 * base, 0.3 * base}
	var b strings.Builder
	fmt.Fprintf(&b, "== hotspot traffic (bias %.0f%% to node 0) ==\n", bias*100)
	header := []string{"topology", "rate", "uniform uni", "hotspot uni", "hotspot penalty", "saturated"}
	var rows [][]string
	for _, topo := range []Topology{TopoQuarc, TopoSpidergon} {
		for _, rate := range rates {
			uniform, err := Run(Config{
				Topo: topo, N: n, MsgLen: msgLen, Rate: rate,
				Warmup: opts.Warmup, Measure: opts.Measure, Drain: opts.Drain,
				Depth: opts.Depth, Seed: opts.Seed,
			})
			if err != nil {
				return "", err
			}
			hot, err := Run(Config{
				Topo: topo, N: n, MsgLen: msgLen, Rate: rate,
				Pattern: traffic.Hotspot, HotspotBias: bias,
				Warmup: opts.Warmup, Measure: opts.Measure, Drain: opts.Drain,
				Depth: opts.Depth, Seed: opts.Seed,
			})
			if err != nil {
				return "", err
			}
			rows = append(rows, []string{
				topo.String(), fmt.Sprintf("%.5f", rate),
				fmt.Sprintf("%.1f", uniform.UnicastMean),
				fmt.Sprintf("%.1f", hot.UnicastMean),
				fmt.Sprintf("%.2fx", hot.UnicastMean/uniform.UnicastMean),
				fmt.Sprint(hot.Saturated),
			})
		}
	}
	b.WriteString(plot.Table(header, rows))
	return b.String(), nil
}

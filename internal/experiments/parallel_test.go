package experiments

import (
	"context"
	"runtime"
	"testing"

	"quarc/internal/model"
	"quarc/internal/network"
	"quarc/internal/traffic"
)

// The parallel stepper's contract mirrors the activity scheduler's: sharding
// a cycle's phases across any number of workers must be invisible. Every
// registered model, under every workload shape, at both ends of the load
// axis, must produce the same Result, tracker counters and per-router
// statistics at any worker count as the serial path. The suite runs under
// -race in CI, so it doubles as the data-race proof for the phase protocol.

// parallelWorkloads is the workload axis of the invariance matrix.
func parallelWorkloads(rate float64) map[string]Config {
	base := Config{MsgLen: 8, Rate: rate, Depth: 4,
		Warmup: 150, Measure: 600, Drain: 3000, Seed: 99}
	unicast := base
	bcast := base
	bcast.Beta = 0.3
	hotspot := base
	hotspot.Pattern = traffic.Hotspot
	hotspot.HotspotBias = 0.4
	mcast := base
	mcast.McastFrac, mcast.McastSize = 0.3, 3
	return map[string]Config{
		"unicast":   unicast,
		"broadcast": bcast,
		"multicast": mcast,
		"hotspot":   hotspot,
	}
}

// stepWorkerCounts is the worker axis: an even split, a count that leaves a
// remainder shard, and whatever the machine really has.
func stepWorkerCounts() []int {
	counts := []int{2, 7}
	if p := runtime.GOMAXPROCS(0); p > 1 && p != 2 && p != 7 {
		counts = append(counts, p)
	}
	return counts
}

func TestStepWorkerInvariance(t *testing.T) {
	rates := map[string]float64{
		"lowload":   0.002,
		"saturated": 0.15,
	}
	for _, name := range model.Names() {
		name := name
		m, _ := model.Lookup(name)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for rateName, rate := range rates {
				for wlName, cfg := range parallelWorkloads(rate) {
					cfg.Model = name
					cfg.N = m.ExampleN
					// The pool only engages once the active set reaches the
					// dispatch grain; at registry example sizes that would
					// leave every phase on the serial path, so drop the grain
					// to exercise the pool on every stepped cycle.
					cfg.stepGrain = 1

					serial := cfg
					serial.StepWorkers = 1
					sRes, sProbe := probeRun(t, serial)

					for _, w := range stepWorkerCounts() {
						par := cfg
						par.StepWorkers = w
						pRes, pProbe := probeRun(t, par)

						if pRes != sRes {
							t.Errorf("%s/%s: %d workers changed the Result:\nparallel %+v\nserial   %+v",
								rateName, wlName, w, pRes, sRes)
						}
						sp, pp := sProbe, pProbe
						if pp.cycle != sp.cycle || pp.delivered != sp.delivered ||
							pp.forwarded != sp.forwarded || pp.stepped != sp.stepped {
							t.Errorf("%s/%s: %d workers changed fabric counters: parallel {cyc %d del %d fwd %d step %d} serial {cyc %d del %d fwd %d step %d}",
								rateName, wlName, w,
								pp.cycle, pp.delivered, pp.forwarded, pp.stepped,
								sp.cycle, sp.delivered, sp.forwarded, sp.stepped)
						}
						if pp.completed != sp.completed || pp.duplicates != sp.duplicates ||
							pp.inflight != sp.inflight {
							t.Errorf("%s/%s: %d workers changed tracker counters: parallel {done %d dup %d inflight %d} serial {done %d dup %d inflight %d}",
								rateName, wlName, w,
								pp.completed, pp.duplicates, pp.inflight,
								sp.completed, sp.duplicates, sp.inflight)
						}
						for node := range sp.routers {
							if pp.routers[node] != sp.routers[node] {
								t.Errorf("%s/%s: %d workers changed router %d stats:\nparallel %+v\nserial   %+v",
									rateName, wlName, w, node, pp.routers[node], sp.routers[node])
							}
						}
						if t.Failed() {
							return
						}
					}
				}
			}
		})
	}
}

// TestBlockedSleepEngagesWhenSaturated guards the dependency wake graph
// against a silent fallback: at a saturated load, routers that are wedged
// behind exhausted credits must actually take the blocked-sleep path (the
// bit-identity of the replay is proven by the dense-equivalence and
// worker-invariance suites; this pins that the mechanism fires at all).
func TestBlockedSleepEngagesWhenSaturated(t *testing.T) {
	cfg := Config{Model: "quarc", N: 16, MsgLen: 8, Rate: 0.15, Depth: 4,
		Pattern: traffic.Hotspot, HotspotBias: 0.4,
		Warmup: 150, Measure: 600, Drain: 3000, Seed: 99}
	var blocked uint64
	ctx := withFabricObserver(context.Background(), func(fab *network.Fabric) {
		blocked = fab.BlockedSleeps()
	})
	if _, err := RunContext(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	if blocked == 0 {
		t.Fatal("saturated hotspot run never blocked-slept a router")
	}
}

// TestDrainConservation pins the drain loop's early exits (the stop hook
// firing on an empty tracker, the idle-fabric break) against flit loss: the
// dense reference, the serial activity path and the parallel path must drain
// the network completely and deliver exactly the same flits.
func TestDrainConservation(t *testing.T) {
	// A load high enough to queue real backlog but below saturation, so the
	// drain budget suffices and "fully drained" is the correct expectation.
	base := Config{Model: "quarc", N: 16, MsgLen: 8, Rate: 0.03, Beta: 0.3,
		Depth: 4, Warmup: 150, Measure: 600, Drain: 5000, Seed: 7}

	dense := base
	dense.denseStep = true
	serial := base
	serial.StepWorkers = 1
	par := base
	par.StepWorkers = 4
	par.stepGrain = 1

	dRes, dP := probeRun(t, dense)
	sRes, sP := probeRun(t, serial)
	pRes, pP := probeRun(t, par)

	for mode, p := range map[string]fabricProbe{"dense": dP, "serial": sP, "parallel": pP} {
		if p.inflight != 0 {
			t.Errorf("%s: %d messages still in flight after drain", mode, p.inflight)
		}
	}
	if sP.delivered != dP.delivered || pP.delivered != dP.delivered {
		t.Errorf("drained flit counts diverged: dense %d serial %d parallel %d",
			dP.delivered, sP.delivered, pP.delivered)
	}
	dRes.Cfg.denseStep = false
	if sRes != dRes {
		t.Errorf("serial drain result diverged from dense:\nserial %+v\ndense  %+v", sRes, dRes)
	}
	if pRes != sRes {
		t.Errorf("parallel drain result diverged from serial:\nparallel %+v\nserial   %+v", pRes, sRes)
	}
}

package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits a panel's sweep as machine-readable CSV with one row per
// (rate, model) pair, suitable for replotting the paper's figures with
// external tools. The topology column carries the registry model name.
func (pr PanelResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"figure", "panel", "n", "msglen", "beta", "topology", "rate",
		"unicast_mean", "unicast_ci95", "unicast_n",
		"bcast_mean", "bcast_ci95", "bcast_n",
		"throughput_flits_node_cycle", "saturated"}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for _, name := range pr.Models {
		results := pr.Results[name]
		for i, rate := range pr.RatesSwept {
			if i >= len(results) {
				return fmt.Errorf("experiments: incomplete sweep for %s", name)
			}
			r := results[i]
			row := []string{
				pr.Spec.Figure, pr.Spec.Name,
				strconv.Itoa(pr.Spec.N), strconv.Itoa(pr.Spec.MsgLen), f(pr.Spec.Beta),
				name, f(rate),
				f(r.UnicastMean), f(r.UnicastCI), strconv.FormatInt(r.UnicastCount, 10),
				f(r.BcastMean), f(r.BcastCI), strconv.FormatInt(r.BcastCount, 10),
				f(r.Throughput), strconv.FormatBool(r.Saturated),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

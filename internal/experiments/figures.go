package experiments

import (
	"fmt"
	"strings"

	"quarc/internal/analytic"
	"quarc/internal/plot"
	"quarc/internal/stats"
	"quarc/internal/traffic"
)

// PanelSpec is one panel of Figs 9-11: a (N, M, beta) configuration swept
// over offered message rates.
type PanelSpec struct {
	Figure string
	Name   string
	N      int
	MsgLen int
	Beta   float64
	Rates  []float64 // offered loads; if nil, a grid is derived from the
	// analytic channel-capacity bound

	// Pattern and HotspotBias shape the unicast traffic of every point in
	// the sweep; the zero values are the paper's uniform workload.
	Pattern     traffic.Pattern
	HotspotBias float64
}

// RunOpts scales the simulation effort and the sweep execution.
type RunOpts struct {
	Warmup  int64
	Measure int64
	Drain   int64
	Depth   int
	Seed    uint64
	Points  int // rate-grid points when PanelSpec.Rates is nil
	// Replicates is the number of independent simulations per design point
	// (distinct derived seeds, aggregated as mean ± 95% CI). 0 means 1.
	Replicates int
	// Workers bounds the sweep goroutines; 0 means GOMAXPROCS. The result
	// does not depend on it.
	Workers int
	// OnPointDone, if non-nil, is invoked as each design point of a sweep
	// completes — possibly concurrently from several worker goroutines. It
	// observes progress only; the sweep's results never depend on it.
	OnPointDone func(PointDone) `json:"-"`
}

// DefaultOpts is the full-fidelity configuration used by cmd/quarcbench.
func DefaultOpts() RunOpts {
	return RunOpts{Warmup: 3000, Measure: 12000, Drain: 40000, Depth: 4, Seed: 20090523, Points: 10}
}

// FastOpts is a reduced configuration for tests and -fast runs.
func FastOpts() RunOpts {
	return RunOpts{Warmup: 500, Measure: 2500, Drain: 10000, Depth: 4, Seed: 20090523, Points: 5}
}

// rateGrid derives offered loads from the analytic capacity bound of the
// Quarc under the panel's message length, spanning from deep stability to
// just past the Quarc's empirical saturation (the Spidergon saturates
// earlier, mid-grid, exactly as in the paper's figures).
//
// Two corrections scale the channel-capacity bound to the empirical knee:
// wormhole switching with two VCs and shallow buffers sustains roughly half
// of raw channel capacity (blocking chains), and each broadcast multiplies
// rim-link occupancy: a BRCP branch set occupies about half the rim links
// for M cycles, giving a (1-beta) + beta*N/2 / (N/16) = 1 + 7*beta load
// multiplier relative to unicast-only traffic.
func rateGrid(spec PanelSpec, points int) []float64 {
	base := analytic.QuarcUniform(spec.N, spec.MsgLen, 0).SaturationRate
	derate := 1 + 7*spec.Beta
	top := 0.6 * base / derate
	grid := make([]float64, points)
	for i := range grid {
		grid[i] = top * float64(i+1) / float64(points)
	}
	return grid
}

// Fig9Panels: N = 16, beta = 5%, M in {8, 16, 32} (paper Fig 9).
func Fig9Panels() []PanelSpec {
	var out []PanelSpec
	for _, m := range []int{8, 16, 32} {
		out = append(out, PanelSpec{
			Figure: "fig9", Name: fmt.Sprintf("N=16 beta=5%% M=%d", m),
			N: 16, MsgLen: m, Beta: 0.05,
		})
	}
	return out
}

// Fig10Panels: M = 16, beta = 10%, N in {16, 32, 64} (paper Fig 10).
func Fig10Panels() []PanelSpec {
	var out []PanelSpec
	for _, n := range []int{16, 32, 64} {
		out = append(out, PanelSpec{
			Figure: "fig10", Name: fmt.Sprintf("N=%d beta=10%% M=16", n),
			N: n, MsgLen: 16, Beta: 0.10,
		})
	}
	return out
}

// Fig11Panels: N = 64, M = 16, beta in {0, 5, 10}% (paper Fig 11).
func Fig11Panels() []PanelSpec {
	var out []PanelSpec
	for _, beta := range []float64{0, 0.05, 0.10} {
		out = append(out, PanelSpec{
			Figure: "fig11", Name: fmt.Sprintf("N=64 beta=%.0f%% M=16", beta*100),
			N: 64, MsgLen: 16, Beta: beta,
		})
	}
	return out
}

// PanelResult is the measured panel: four curves as in the paper's figures
// (unicast and broadcast latency for Quarc and Spidergon). Results holds the
// replicate-aggregated measurement per swept rate; Raw keeps the individual
// replicate results ([rate index][replicate]). RunPanel and RunPanelSerial
// in sweep.go produce it.
type PanelResult struct {
	Spec       PanelSpec
	QuarcUni   stats.Series
	QuarcBc    stats.Series
	SpiderUni  stats.Series
	SpiderBc   stats.Series
	Results    map[Topology][]Result
	Raw        map[Topology][][]Result
	RatesSwept []float64
	Replicates int
}

// Render formats the panel as the paper-style rows plus an ASCII chart.
func (pr PanelResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", pr.Spec.Figure, pr.Spec.Name)
	header := []string{"rate", "quarc uni", "quarc bc", "spider uni", "spider bc", "q sat", "s sat"}
	var rows [][]string
	qs, ss := pr.Results[TopoQuarc], pr.Results[TopoSpidergon]
	for i, rate := range pr.RatesSwept {
		row := []string{fmt.Sprintf("%.5f", rate)}
		cell := func(v, ci float64, n int64) string {
			if n == 0 {
				return "-"
			}
			// ci == 0 under replication means the interval is undefined
			// (fewer than two replicates measured this class); don't dress
			// a single-sample estimate up as a zero-width CI.
			if pr.Replicates > 1 && ci > 0 {
				return fmt.Sprintf("%.1f±%.1f", v, ci)
			}
			return fmt.Sprintf("%.1f", v)
		}
		row = append(row,
			cell(qs[i].UnicastMean, qs[i].UnicastCI, qs[i].UnicastCount),
			cell(qs[i].BcastMean, qs[i].BcastCI, qs[i].BcastCount),
			cell(ss[i].UnicastMean, ss[i].UnicastCI, ss[i].UnicastCount),
			cell(ss[i].BcastMean, ss[i].BcastCI, ss[i].BcastCount),
			fmt.Sprintf("%v", qs[i].Saturated),
			fmt.Sprintf("%v", ss[i].Saturated),
		)
		rows = append(rows, row)
	}
	b.WriteString(plot.Table(header, rows))
	// With replicates, the across-replicate 95% CIs become chart whiskers.
	ciOf := func(rs []Result, bc bool) []float64 {
		if pr.Replicates < 2 {
			return nil
		}
		out := make([]float64, len(rs))
		for i, r := range rs {
			if bc {
				out[i] = r.BcastCI
			} else {
				out[i] = r.UnicastCI
			}
		}
		return out
	}
	curves := []plot.Curve{
		{Name: pr.QuarcUni.Name, X: pr.QuarcUni.X, Y: pr.QuarcUni.Y, Err: ciOf(qs, false), Marker: 'q'},
		{Name: pr.SpiderUni.Name, X: pr.SpiderUni.X, Y: pr.SpiderUni.Y, Err: ciOf(ss, false), Marker: 's'},
	}
	if pr.Spec.Beta > 0 {
		curves = append(curves,
			plot.Curve{Name: pr.QuarcBc.Name, X: pr.QuarcBc.X, Y: pr.QuarcBc.Y, Err: ciOf(qs, true), Marker: 'Q'},
			plot.Curve{Name: pr.SpiderBc.Name, X: pr.SpiderBc.X, Y: pr.SpiderBc.Y, Err: ciOf(ss, true), Marker: 'S'},
		)
	}
	b.WriteString(plot.Chart("latency (cycles) vs offered rate (msgs/node/cycle)", curves, 60, 14))
	return b.String()
}

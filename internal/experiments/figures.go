package experiments

import (
	"fmt"
	"strings"

	"quarc/internal/analytic"
	"quarc/internal/plot"
	"quarc/internal/stats"
	"quarc/internal/traffic"
)

// PanelSpec is one panel of Figs 9-11: a (N, M, beta) configuration swept
// over offered message rates.
type PanelSpec struct {
	Figure string
	Name   string
	N      int
	MsgLen int
	Beta   float64
	Rates  []float64 // offered loads; if nil, a grid is derived from the
	// analytic channel-capacity bound

	// Models lists the registry names of the architectures to sweep, in
	// curve order. Empty means the paper's fixed quarc/spidergon pair —
	// with the exact canonical cache keys and bit-identical results such
	// panels had before the field existed.
	Models []string

	// Pattern and HotspotBias shape the unicast traffic of every point in
	// the sweep; the zero values are the paper's uniform workload.
	Pattern     traffic.Pattern
	HotspotBias float64

	// McastFrac/McastSize send that fraction of non-broadcast messages as
	// k-target multicasts at every point (see Config).
	McastFrac float64
	McastSize int
}

// SweptModels returns the canonical (lower-case) model list this panel
// sweeps: the Models field, or the legacy quarc/spidergon pair when empty.
// Duplicate names collapse onto their first occurrence — results are keyed
// by model name, so a repeated entry could only corrupt the panel layout,
// never add information.
func (spec PanelSpec) SweptModels() []string {
	if len(spec.Models) == 0 {
		return legacyPanelModels
	}
	out := make([]string, 0, len(spec.Models))
	seen := make(map[string]bool, len(spec.Models))
	for _, m := range spec.Models {
		name := strings.ToLower(m)
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}

// Collectives reports whether the panel's workload generates collective
// (broadcast or multicast) traffic, i.e. whether collective latency curves
// exist to plot.
func (spec PanelSpec) Collectives() bool { return spec.Beta > 0 || spec.McastFrac > 0 }

// RunOpts scales the simulation effort and the sweep execution.
type RunOpts struct {
	Warmup  int64
	Measure int64
	Drain   int64
	Depth   int
	Seed    uint64
	Points  int // rate-grid points when PanelSpec.Rates is nil
	// Replicates is the number of independent simulations per design point
	// (distinct derived seeds, aggregated as mean ± 95% CI). 0 means 1.
	Replicates int
	// Workers bounds the sweep goroutines; 0 means GOMAXPROCS. The result
	// does not depend on it.
	Workers int
	// StepWorkers sizes each point's intra-fabric worker pool (see
	// Config.StepWorkers). 0 picks automatically: serial points under a
	// multi-worker sweep (outer parallelism wins for many small points),
	// fabric auto-sizing for single-worker sweeps (inner parallelism wins
	// for few large ones). The result does not depend on it, and like
	// Workers it stays out of canonical cache keys.
	StepWorkers int `json:"-"`
	// OnPointDone, if non-nil, is invoked as each design point of a sweep
	// completes — possibly concurrently from several worker goroutines. It
	// observes progress only; the sweep's results never depend on it.
	OnPointDone func(PointDone) `json:"-"`
}

// DefaultOpts is the full-fidelity configuration used by cmd/quarcbench.
func DefaultOpts() RunOpts {
	return RunOpts{Warmup: 3000, Measure: 12000, Drain: 40000, Depth: 4, Seed: 20090523, Points: 10}
}

// FastOpts is a reduced configuration for tests and -fast runs.
func FastOpts() RunOpts {
	return RunOpts{Warmup: 500, Measure: 2500, Drain: 10000, Depth: 4, Seed: 20090523, Points: 5}
}

// rateGrid derives offered loads from the analytic capacity bound of the
// Quarc under the panel's message length, spanning from deep stability to
// just past the Quarc's empirical saturation (the Spidergon saturates
// earlier, mid-grid, exactly as in the paper's figures).
//
// Two corrections scale the channel-capacity bound to the empirical knee:
// wormhole switching with two VCs and shallow buffers sustains roughly half
// of raw channel capacity (blocking chains), and each broadcast multiplies
// rim-link occupancy: a BRCP branch set occupies about half the rim links
// for M cycles, giving a (1-beta) + beta*N/2 / (N/16) = 1 + 7*beta load
// multiplier relative to unicast-only traffic.
func rateGrid(spec PanelSpec, points int) []float64 {
	base := analytic.QuarcUniform(spec.N, spec.MsgLen, 0).SaturationRate
	derate := 1 + 7*spec.Beta
	top := 0.6 * base / derate
	grid := make([]float64, points)
	for i := range grid {
		grid[i] = top * float64(i+1) / float64(points)
	}
	return grid
}

// Fig9Panels: N = 16, beta = 5%, M in {8, 16, 32} (paper Fig 9).
func Fig9Panels() []PanelSpec {
	var out []PanelSpec
	for _, m := range []int{8, 16, 32} {
		out = append(out, PanelSpec{
			Figure: "fig9", Name: fmt.Sprintf("N=16 beta=5%% M=%d", m),
			N: 16, MsgLen: m, Beta: 0.05,
		})
	}
	return out
}

// Fig10Panels: M = 16, beta = 10%, N in {16, 32, 64} (paper Fig 10).
func Fig10Panels() []PanelSpec {
	var out []PanelSpec
	for _, n := range []int{16, 32, 64} {
		out = append(out, PanelSpec{
			Figure: "fig10", Name: fmt.Sprintf("N=%d beta=10%% M=16", n),
			N: n, MsgLen: 16, Beta: 0.10,
		})
	}
	return out
}

// Fig11Panels: N = 64, M = 16, beta in {0, 5, 10}% (paper Fig 11).
func Fig11Panels() []PanelSpec {
	var out []PanelSpec
	for _, beta := range []float64{0, 0.05, 0.10} {
		out = append(out, PanelSpec{
			Figure: "fig11", Name: fmt.Sprintf("N=64 beta=%.0f%% M=16", beta*100),
			N: 64, MsgLen: 16, Beta: beta,
		})
	}
	return out
}

// PanelResult is the measured panel: one unicast (and, with collective
// traffic, one collective-completion) latency curve per swept model, keyed
// by canonical model name. Results holds the replicate-aggregated
// measurement per swept rate; Raw keeps the individual replicate results
// ([rate index][replicate]). RunPanel and RunPanelSerial in sweep.go produce
// it.
type PanelResult struct {
	Spec       PanelSpec
	Models     []string // canonical model names, in sweep (and curve) order
	Results    map[string][]Result
	Raw        map[string][][]Result
	RatesSwept []float64
	Replicates int
}

// UnicastSeries returns the mean unicast latency curve of one swept model.
func (pr PanelResult) UnicastSeries(model string) stats.Series {
	return pr.series(model, " unicast", func(r Result) float64 { return r.UnicastMean })
}

// CollectiveSeries returns the collective (broadcast/multicast) completion
// latency curve of one swept model.
func (pr PanelResult) CollectiveSeries(model string) stats.Series {
	return pr.series(model, " broadcast", func(r Result) float64 { return r.BcastMean })
}

func (pr PanelResult) series(model, suffix string, get func(Result) float64) stats.Series {
	s := stats.Series{Name: model + suffix}
	for i, r := range pr.Results[model] {
		s.Append(pr.RatesSwept[i], get(r), r.Saturated)
	}
	return s
}

// curveMarkers assigns each model a distinct single-character marker (its
// unicast curve; the upper-case form marks the collective curve). It prefers
// the first letter not already taken, falling back to digits.
func curveMarkers(models []string) []byte {
	marks := make([]byte, len(models))
	taken := map[byte]bool{}
	for i, m := range models {
		var mark byte
		for j := 0; j < len(m); j++ {
			c := m[j]
			if c >= 'a' && c <= 'z' && !taken[c] {
				mark = c
				break
			}
		}
		for d := byte('0'); mark == 0 && d <= '9'; d++ {
			if !taken[d] {
				mark = d
			}
		}
		if mark == 0 {
			mark = '*'
		}
		taken[mark] = true
		marks[i] = mark
	}
	return marks
}

// collectiveMarker is the marker of a model's collective curve: the
// upper-case twin of its unicast marker when that is a letter.
func collectiveMarker(mark byte) byte {
	if mark >= 'a' && mark <= 'z' {
		return mark &^ 0x20
	}
	return mark
}

// Render formats the panel as the paper-style rows plus an ASCII chart, one
// latency curve (with CI whiskers under replication) per swept model.
func (pr PanelResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", pr.Spec.Figure, pr.Spec.Name)
	header := []string{"rate"}
	for _, m := range pr.Models {
		header = append(header, m+" uni", m+" bc")
	}
	for _, m := range pr.Models {
		header = append(header, m+" sat")
	}
	var rows [][]string
	for i, rate := range pr.RatesSwept {
		row := []string{fmt.Sprintf("%.5f", rate)}
		cell := func(v, ci float64, n int64) string {
			if n == 0 {
				return "-"
			}
			// ci == 0 under replication means the interval is undefined
			// (fewer than two replicates measured this class); don't dress
			// a single-sample estimate up as a zero-width CI.
			if pr.Replicates > 1 && ci > 0 {
				return fmt.Sprintf("%.1f±%.1f", v, ci)
			}
			return fmt.Sprintf("%.1f", v)
		}
		for _, m := range pr.Models {
			r := pr.Results[m][i]
			row = append(row,
				cell(r.UnicastMean, r.UnicastCI, r.UnicastCount),
				cell(r.BcastMean, r.BcastCI, r.BcastCount))
		}
		for _, m := range pr.Models {
			row = append(row, fmt.Sprintf("%v", pr.Results[m][i].Saturated))
		}
		rows = append(rows, row)
	}
	b.WriteString(plot.Table(header, rows))
	// With replicates, the across-replicate 95% CIs become chart whiskers.
	ciOf := func(rs []Result, bc bool) []float64 {
		if pr.Replicates < 2 {
			return nil
		}
		out := make([]float64, len(rs))
		for i, r := range rs {
			if bc {
				out[i] = r.BcastCI
			} else {
				out[i] = r.UnicastCI
			}
		}
		return out
	}
	marks := curveMarkers(pr.Models)
	var curves []plot.Curve
	for i, m := range pr.Models {
		s := pr.UnicastSeries(m)
		curves = append(curves, plot.Curve{
			Name: s.Name, X: s.X, Y: s.Y, Err: ciOf(pr.Results[m], false), Marker: marks[i]})
	}
	if pr.Spec.Collectives() {
		for i, m := range pr.Models {
			s := pr.CollectiveSeries(m)
			curves = append(curves, plot.Curve{
				Name: s.Name, X: s.X, Y: s.Y, Err: ciOf(pr.Results[m], true),
				Marker: collectiveMarker(marks[i])})
		}
	}
	b.WriteString(plot.Chart("latency (cycles) vs offered rate (msgs/node/cycle)", curves, 60, 14))
	return b.String()
}

package experiments

import (
	"reflect"
	"testing"

	"quarc/internal/model"
	"quarc/internal/network"
)

// threeModelSpec is the N-way panel of the acceptance criterion: the legacy
// pair plus the registry-only ring, with multicast traffic in the mix.
func threeModelSpec() PanelSpec {
	return PanelSpec{Figure: "t", Name: "nway", N: 8, MsgLen: 4, Beta: 0.1,
		Models:    []string{"quarc", "spidergon", "ring"},
		McastFrac: 0.2, McastSize: 3,
		Rates: []float64{0.004, 0.01}}
}

// TestPanelNWayParallelMatchesSerial extends the engine's core guarantee to
// arbitrary model sets with multicast traffic: the worker-pool sweep must be
// bit-identical to the sequential one.
func TestPanelNWayParallelMatchesSerial(t *testing.T) {
	for _, replicates := range []int{1, 2} {
		opts := tinyOpts()
		opts.Replicates = replicates
		opts.Workers = 4
		par, err := RunPanel(threeModelSpec(), opts)
		if err != nil {
			t.Fatal(err)
		}
		ser, err := RunPanelSerial(threeModelSpec(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par, ser) {
			t.Fatalf("replicates=%d: parallel and serial N-way panels differ", replicates)
		}
		for _, name := range par.Models {
			for _, r := range par.Results[name] {
				if r.McastCount == 0 {
					t.Fatalf("%s: no multicasts completed; the sweep axis is vacuous", name)
				}
			}
		}
	}
}

// TestPanelModelOrderInvariance: each model's curve depends only on its own
// model-keyed seeds, so listing the models in a different order must leave
// every per-model result bit-identical.
func TestPanelModelOrderInvariance(t *testing.T) {
	opts := tinyOpts()
	opts.Replicates = 2
	fwd, err := RunPanel(threeModelSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	rev := threeModelSpec()
	rev.Models = []string{"ring", "spidergon", "quarc"}
	bwd, err := RunPanel(rev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fwd.Results, bwd.Results) || !reflect.DeepEqual(fwd.Raw, bwd.Raw) {
		t.Fatal("model order changed per-model panel results")
	}
}

// TestPanelLegacyPairMatchesExplicitPair pins the compatibility contract: an
// explicit ["quarc","spidergon"] list simulates exactly the systems the
// legacy empty-Models panel does (same enum-derived seeds, same results) —
// only the spec label and cache key differ.
func TestPanelLegacyPairMatchesExplicitPair(t *testing.T) {
	opts := tinyOpts()
	legacy, err := RunPanel(sweepSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	explicit := sweepSpec()
	explicit.Models = []string{"quarc", "spidergon"}
	named, err := RunPanel(explicit, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.Results, named.Results) || !reflect.DeepEqual(legacy.Raw, named.Raw) {
		t.Fatal("explicit quarc/spidergon pair diverged from the legacy panel")
	}
	if !reflect.DeepEqual(legacy.Models, named.Models) {
		t.Fatalf("model lists differ: %v vs %v", legacy.Models, named.Models)
	}
}

// TestPointSeedNamedDistinct: the name-keyed derivation must not collide
// with the enum derivation of the original six (or itself across names).
func TestPointSeedNamedDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for _, topo := range []Topology{TopoQuarc, TopoSpidergon, TopoMesh, TopoTorus} {
		seen[PointSeed(7, topo, 0, 0)] = topo.String()
	}
	for _, name := range []string{"ring", "ring2", "hypercube"} {
		s := PointSeedNamed(7, name, 0, 0)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between %q and %q", prev, name)
		}
		seen[s] = name
	}
	if pointSeedFor(7, "spidergon", 2, 1) != PointSeed(7, TopoSpidergon, 2, 1) {
		t.Fatal("legacy name lost its enum-based seed derivation")
	}
	if pointSeedFor(7, "ring", 2, 1) != PointSeedNamed(7, "ring", 2, 1) {
		t.Fatal("registry-only name not routed to the name-keyed derivation")
	}
}

// TestMulticastDeliveredCounts drives one explicit multicast through every
// registered model and checks the tracker accounting both the native (Quarc
// BRCP) and the fan-out emulation paths must satisfy: expected = distinct
// remote targets (duplicates and self ignored), exactly that many
// deliveries, no duplicate deliveries, nothing left in flight.
func TestMulticastDeliveredCounts(t *testing.T) {
	for _, name := range model.Names() {
		name := name
		m, _ := model.Lookup(name)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			fab, nodes, err := m.Build(model.BuildConfig{N: m.ExampleN, Depth: 4})
			if err != nil {
				t.Fatal(err)
			}
			var recs []network.MessageRecord
			fab.Tracker.OnDone = func(r network.MessageRecord) { recs = append(recs, r) }
			// Targets spread across quadrants, with a duplicate and the
			// sender itself thrown in: 4 distinct remote targets.
			targets := []int{1, 3, m.ExampleN / 2, m.ExampleN - 1, 3, 0}
			nodes[0].SendMulticast(targets, 4, fab.Now())
			for i := 0; i < 20000 && fab.Tracker.InFlight() > 0; i++ {
				fab.Step()
			}
			if got := fab.Tracker.InFlight(); got != 0 {
				t.Fatalf("%d messages still in flight", got)
			}
			if len(recs) != 1 {
				t.Fatalf("completed %d messages, want 1", len(recs))
			}
			r := recs[0]
			if r.Class != network.ClassMulticast {
				t.Errorf("record class %v, want multicast", r.Class)
			}
			if r.Expected != 4 || r.Delivered != 4 {
				t.Errorf("expected/delivered = %d/%d, want 4/4", r.Expected, r.Delivered)
			}
			if dup := fab.Tracker.Duplicates(); dup != 0 {
				t.Errorf("%d duplicate deliveries", dup)
			}
		})
	}
}

package experiments

import (
	"strings"
	"testing"

	"quarc/internal/rng"
)

func TestContentionReport(t *testing.T) {
	out, err := Contention(16, 8, 0.05, 0.01, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"quarc", "spidergon", "no-credit", "vc-busy", "arb-lost"} {
		if !strings.Contains(out, want) {
			t.Errorf("contention report lacks %q", want)
		}
	}
}

func TestDepthSweepMonotoneAtLowDepth(t *testing.T) {
	rows, err := DepthSweep(TopoQuarc, 16, 8, 0.05, 0.008, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	// Depth 1 must be clearly worse than depth 4 (single-flit buffers
	// serialise every hop); beyond depth 4 returns diminish.
	if rows[0].UniMean <= rows[2].UniMean {
		t.Errorf("depth 1 latency %.1f not above depth 4 latency %.1f",
			rows[0].UniMean, rows[2].UniMean)
	}
	for _, r := range rows {
		if r.UniMean <= 0 {
			t.Errorf("depth %d: no unicast samples", r.Depth)
		}
	}
	if s := RenderDepthSweep(TopoQuarc, rows); !strings.Contains(s, "buffer depth") {
		t.Error("render broken")
	}
}

func TestBurstyComparison(t *testing.T) {
	out, err := Bursty(16, 8, 0.05, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "bursty penalty") {
		t.Fatalf("bursty report incomplete:\n%s", out)
	}
}

func TestStallRatioQuarcBelowSpidergon(t *testing.T) {
	// The structural claim behind the curves: under the same moderate load
	// the Spidergon stalls more per granted flit (shared cross link, shared
	// ejection, one-port injection).
	measure := func(topo Topology) float64 {
		cfg := Config{Topo: topo, N: 16, MsgLen: 16, Beta: 0.05, Rate: 0.015,
			Warmup: 300, Measure: 2500, Drain: 20000, Seed: 3}.withDefaults()
		fab, nodes, err := build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(3, 0)
		for cyc := int64(0); cyc < cfg.Warmup+cfg.Measure; cyc++ {
			for s := range nodes {
				if r.Bernoulli(cfg.Rate) {
					if r.Bernoulli(cfg.Beta) {
						nodes[s].SendBroadcast(cfg.MsgLen, fab.Now())
					} else {
						d := r.Intn(cfg.N - 1)
						if d >= s {
							d++
						}
						nodes[s].SendUnicast(d, cfg.MsgLen, fab.Now())
					}
				}
			}
			fab.Step()
		}
		for i := int64(0); i < cfg.Drain && fab.Tracker.InFlight() > 0; i++ {
			fab.Step()
		}
		st := fab.RouterStats()
		if st.Grants == 0 {
			t.Fatal("no grants")
		}
		return float64(st.TotalStalls()) / float64(st.Grants)
	}
	q := measure(TopoQuarc)
	s := measure(TopoSpidergon)
	if q >= s {
		t.Errorf("quarc stall ratio %.3f not below spidergon %.3f", q, s)
	}
}

func TestWriteCSV(t *testing.T) {
	spec := PanelSpec{Figure: "fig9", Name: "csv", N: 8, MsgLen: 4, Beta: 0.1,
		Rates: []float64{0.004, 0.01}}
	pr, err := RunPanel(spec, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := pr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// header + 2 rates x 2 topologies
	if len(lines) != 5 {
		t.Fatalf("CSV has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "figure,panel,n,msglen,beta,topology,rate") {
		t.Fatalf("header = %q", lines[0])
	}
	for _, want := range []string{"quarc", "spidergon", "fig9"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV lacks %q", want)
		}
	}
}

func TestHotspotComparison(t *testing.T) {
	out, err := HotspotComparison(16, 8, 0.3, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "hotspot penalty") {
		t.Fatalf("hotspot report incomplete:\n%s", out)
	}
}

func TestPercentilesReported(t *testing.T) {
	res, err := Run(Config{Topo: TopoQuarc, N: 16, MsgLen: 8, Beta: 0.1, Rate: 0.008,
		Warmup: 300, Measure: 2000, Drain: 10000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.UnicastP95 < res.UnicastMean {
		t.Errorf("p95 %.1f below mean %.1f", res.UnicastP95, res.UnicastMean)
	}
	if res.UnicastP99 < res.UnicastP95 {
		t.Errorf("p99 %.1f below p95 %.1f", res.UnicastP99, res.UnicastP95)
	}
	if res.BcastP95 < res.BcastMean*0.5 {
		t.Errorf("bcast p95 %.1f implausible vs mean %.1f", res.BcastP95, res.BcastMean)
	}
}

// Package cost models the FPGA area of the Quarc and Spidergon switches in
// Xilinx Virtex-II Pro slices (paper §3.1, Table 1 and Fig 12).
//
// We cannot synthesise Verilog here, so the model is structural: each switch
// is a list of modules with a control part (FSMs, arbiters — independent of
// the flit width) and a datapath part (buffers, multiplexers, comparators —
// scaling linearly with the wire width, which is the payload width plus the
// 2 flit-type bits). The datapath coefficients are calibrated so the 32-bit
// Quarc switch reproduces the paper's Table 1 exactly (735 buffer slices, 7
// write controller, 186 crossbar & mux, 30 VC arbiter, 64 FCU, 431 OPC;
// 1,453 total) and the 32-bit Spidergon totals the paper's 1,700 slices.
// The 16- and 64-bit versions then follow structurally (Fig 12), preserving
// the claims under test: the Quarc switch is smaller at every width even
// though it has more ports, because its crossbar is nearly mux-free and its
// switch does not need broadcast header-rewrite logic.
package cost

import (
	"fmt"
	"math"
)

// RefWireBits is the wire width the calibration refers to: 32 payload bits
// plus 2 flit-type bits.
const RefWireBits = 34

// Module is one switch component.
type Module struct {
	Name     string
	Control  float64 // slices independent of width (at any width)
	Datapath float64 // slices at the 32-bit reference width
}

// Slices returns the module's slice count at the given payload width.
func (m Module) Slices(width int) int {
	wire := float64(width + 2)
	return int(math.Round(m.Control + m.Datapath*wire/RefWireBits))
}

// Switch is a named module list.
type Switch struct {
	Name    string
	Modules []Module
}

// Slices returns the total slice count at the given payload width.
func (s Switch) Slices(width int) int {
	total := 0
	for _, m := range s.Modules {
		total += m.Slices(width)
	}
	return total
}

// ModuleCost is one row of a module-wise cost table.
type ModuleCost struct {
	Module string
	Slices int
}

// ModuleSlices returns the module-wise breakdown at the given width.
func (s Switch) ModuleSlices(width int) []ModuleCost {
	out := make([]ModuleCost, len(s.Modules))
	for i, m := range s.Modules {
		out[i] = ModuleCost{Module: m.Name, Slices: m.Slices(width)}
	}
	return out
}

// QuarcSwitch returns the calibrated Quarc switch model. Structure (per the
// paper §2.3): four buffered network inputs with two VC lanes each; a write
// controller; a nearly trivial crossbar (two 3:1 muxes for the rim outputs,
// straight wires for the cross outputs); a VC arbiter per input; an FCU
// holding the switching table; OPCs with master/slave FSMs and VC
// allocation tables but no output buffers.
func QuarcSwitch() Switch {
	return Switch{
		Name: "Quarc",
		Modules: []Module{
			{Name: "Input Buffers", Control: 0, Datapath: 735},
			{Name: "Write Controller", Control: 7, Datapath: 0},
			{Name: "Crossbar & Mux", Control: 20, Datapath: 166},
			{Name: "VC Arbiter", Control: 30, Datapath: 0},
			{Name: "Flow Control Unit (FCU)", Control: 32, Datapath: 32},
			{Name: "Output Port Controller (OPC)", Control: 260, Datapath: 171},
		},
	}
}

// SpidergonSwitch returns the calibrated Spidergon switch model. Same
// buffer complement (3 network inputs + 1 injection channel, 2 VCs each),
// but a denser crossbar (rim outputs fed by three sources each plus a
// shared arbitrated ejection mux), explicit routing logic at the inputs
// (address comparison for across-first routing), a header-rewrite unit for
// broadcast-by-unicast packet creation, and a heavier OPC that schedules
// the shared ejection port.
func SpidergonSwitch() Switch {
	return Switch{
		Name: "Spidergon",
		Modules: []Module{
			{Name: "Input Buffers", Control: 0, Datapath: 735},
			{Name: "Write Controller", Control: 7, Datapath: 0},
			{Name: "Crossbar & Mux", Control: 30, Datapath: 249},
			{Name: "Routing Logic", Control: 40, Datapath: 24},
			{Name: "VC Arbiter", Control: 30, Datapath: 0},
			{Name: "Flow Control Unit (FCU)", Control: 32, Datapath: 32},
			{Name: "Header Rewrite Unit", Control: 30, Datapath: 32},
			{Name: "Output Port Controller (OPC)", Control: 290, Datapath: 169},
		},
	}
}

// Widths are the switch versions implemented in the paper (§3.1).
var Widths = []int{16, 32, 64}

// Table1 returns the module-wise cost of the 32-bit Quarc switch, matching
// the paper's Table 1 exactly.
func Table1() []ModuleCost {
	return QuarcSwitch().ModuleSlices(32)
}

// Fig12Row is one group of Fig 12's bar chart.
type Fig12Row struct {
	Width            int
	QuarcSlices      int
	SpidergonSlices  int
	QuarcAdvantagePc float64 // percent area saved by the Quarc switch
}

// Fig12 returns the cost comparison across the 16/32/64-bit versions.
func Fig12() []Fig12Row {
	q, s := QuarcSwitch(), SpidergonSwitch()
	rows := make([]Fig12Row, len(Widths))
	for i, w := range Widths {
		qs, ss := q.Slices(w), s.Slices(w)
		rows[i] = Fig12Row{
			Width: w, QuarcSlices: qs, SpidergonSlices: ss,
			QuarcAdvantagePc: 100 * float64(ss-qs) / float64(ss),
		}
	}
	return rows
}

// PEQueueOverhead quantifies the paper's §3.1 argument about the processing
// element: the Quarc PE keeps four address queues whose occupancy variance
// is sigma each, versus one combined queue with sigma/sqrt(4), so the four
// queues together need about twice the address slots of the single queue to
// reach the same overflow probability. Packet memory is identical. The
// returned values are address-queue bits for a queue sized meanDepth +
// 3*sigma per port, with addrBits-wide entries.
func PEQueueOverhead(meanDepth, sigma float64, addrBits int) (quarcBits, spiderBits float64, err error) {
	if meanDepth <= 0 || sigma < 0 || addrBits <= 0 {
		return 0, 0, fmt.Errorf("cost: bad queue parameters")
	}
	perPort := meanDepth/4 + 3*sigma
	quarcBits = 4 * perPort * float64(addrBits)
	spiderBits = (meanDepth + 3*sigma/math.Sqrt(4)) * float64(addrBits)
	return quarcBits, spiderBits, nil
}

// switchModels maps registry model names to their calibrated switch models.
// The Quarc ablation presets reuse the Quarc switch: they change queueing
// discipline and broadcast routing, not the synthesised switch structure
// this model is calibrated against, so their silicon cost is the Quarc's.
// Models absent here (ring, mesh, torus) have no calibrated cost model:
// SwitchFor reports !ok and the exploration layer marks them cost-unknown.
var switchModels = map[string]func() Switch{
	"quarc":            QuarcSwitch,
	"quarc-chainbcast": QuarcSwitch,
	"quarc-1queue":     QuarcSwitch,
	"spidergon":        SpidergonSwitch,
}

// SwitchFor resolves a registry model name to its calibrated switch model.
func SwitchFor(model string) (Switch, bool) {
	f, ok := switchModels[model]
	if !ok {
		return Switch{}, false
	}
	return f(), true
}

// NetworkSlices is the silicon-cost axis of a design point: the total switch
// slice count of an n-node network of the named model at the given payload
// width. ok is false — and the slice count zero — for models without a
// calibrated switch model or for non-positive n/width, so callers can keep
// such points in a search without inventing a cost for them.
func NetworkSlices(model string, n, width int) (slices int, ok bool) {
	if n <= 0 || width <= 0 {
		return 0, false
	}
	sw, ok := SwitchFor(model)
	if !ok {
		return 0, false
	}
	return n * sw.Slices(width), true
}

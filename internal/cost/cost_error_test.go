package cost

import "testing"

// TestPEQueueOverheadInvalidInputs walks every rejection branch: each bad
// parameter must error and report zero bit counts, never a silent partial
// answer.
func TestPEQueueOverheadInvalidInputs(t *testing.T) {
	cases := []struct {
		name      string
		meanDepth float64
		sigma     float64
		addrBits  int
	}{
		{"zero mean depth", 0, 2, 6},
		{"negative mean depth", -4, 2, 6},
		{"negative sigma", 16, -0.5, 6},
		{"zero addr bits", 16, 2, 0},
		{"negative addr bits", 16, 2, -8},
	}
	for _, c := range cases {
		q, s, err := PEQueueOverhead(c.meanDepth, c.sigma, c.addrBits)
		if err == nil {
			t.Errorf("%s: accepted (%v, %v)", c.name, q, s)
			continue
		}
		if q != 0 || s != 0 {
			t.Errorf("%s: non-zero bits (%v, %v) alongside the error", c.name, q, s)
		}
	}
	// Sigma zero is a valid degenerate case (no occupancy variance).
	if _, _, err := PEQueueOverhead(16, 0, 6); err != nil {
		t.Errorf("sigma=0 rejected: %v", err)
	}
}

// TestSlicesEdgeWidths pins the structural model at the extremes of the wire
// width: width 0 still costs the 2 flit-type bits of datapath, and huge
// widths scale linearly without overflow surprises.
func TestSlicesEdgeWidths(t *testing.T) {
	m := Module{Name: "buf", Control: 10, Datapath: 34}
	// Wire width is payload+2, so width 0 keeps 2/34 of the datapath.
	if got := m.Slices(0); got != 12 {
		t.Errorf("width 0: %d slices, want 12 (control 10 + datapath 2/34*34)", got)
	}
	// Exactly the reference width: control + full datapath.
	if got := m.Slices(32); got != 44 {
		t.Errorf("width 32: %d slices, want 44", got)
	}
	// Linear scaling: doubling the wire width (34 -> 68 means width 66)
	// doubles the datapath share.
	if got := m.Slices(66); got != 78 {
		t.Errorf("width 66: %d slices, want 78 (control 10 + 2x datapath)", got)
	}
	// Whole switches stay positive and ordered at a degenerate width.
	q, s := QuarcSwitch().Slices(0), SpidergonSwitch().Slices(0)
	if q <= 0 || s <= 0 || q >= s {
		t.Errorf("width 0 totals: quarc %d, spidergon %d; want 0 < quarc < spidergon", q, s)
	}
}

// TestSwitchFor covers the registry-name resolution including the ablation
// presets' aliasing onto the Quarc switch.
func TestSwitchFor(t *testing.T) {
	for _, name := range []string{"quarc", "quarc-chainbcast", "quarc-1queue"} {
		sw, ok := SwitchFor(name)
		if !ok || sw.Name != "Quarc" {
			t.Errorf("SwitchFor(%q) = %q, %v; want the Quarc switch", name, sw.Name, ok)
		}
	}
	if sw, ok := SwitchFor("spidergon"); !ok || sw.Name != "Spidergon" {
		t.Errorf("SwitchFor(spidergon) = %q, %v", sw.Name, ok)
	}
	for _, name := range []string{"ring", "mesh", "torus", "", "nonsense"} {
		if _, ok := SwitchFor(name); ok {
			t.Errorf("SwitchFor(%q) resolved; models without a calibrated switch must report !ok", name)
		}
	}
}

// TestNetworkSlices covers the cost-axis entry point's error paths and its
// arithmetic.
func TestNetworkSlices(t *testing.T) {
	if got, ok := NetworkSlices("quarc", 16, 32); !ok || got != 16*1453 {
		t.Errorf("quarc n=16 w=32: %d, %v; want %d", got, ok, 16*1453)
	}
	if got, ok := NetworkSlices("spidergon", 16, 32); !ok || got != 16*1700 {
		t.Errorf("spidergon n=16 w=32: %d, %v; want %d", got, ok, 16*1700)
	}
	bad := []struct {
		name  string
		model string
		n, w  int
	}{
		{"unknown model", "mesh", 16, 32},
		{"zero n", "quarc", 0, 32},
		{"negative n", "quarc", -16, 32},
		{"zero width", "quarc", 16, 0},
		{"negative width", "quarc", 16, -32},
	}
	for _, c := range bad {
		if got, ok := NetworkSlices(c.model, c.n, c.w); ok || got != 0 {
			t.Errorf("%s: NetworkSlices = %d, %v; want 0, false", c.name, got, ok)
		}
	}
}

package cost

import "testing"

// paperTable1 is Table 1 of the paper: module-wise slice counts of the
// 32-bit Quarc switch.
var paperTable1 = map[string]int{
	"Input Buffers":                735,
	"Write Controller":             7,
	"Crossbar & Mux":               186,
	"VC Arbiter":                   30,
	"Flow Control Unit (FCU)":      64,
	"Output Port Controller (OPC)": 431,
}

func TestTable1MatchesPaperExactly(t *testing.T) {
	got := Table1()
	if len(got) != len(paperTable1) {
		t.Fatalf("Table1 has %d modules, want %d", len(got), len(paperTable1))
	}
	total := 0
	for _, row := range got {
		want, ok := paperTable1[row.Module]
		if !ok {
			t.Errorf("unexpected module %q", row.Module)
			continue
		}
		if row.Slices != want {
			t.Errorf("%s: %d slices, paper says %d", row.Module, row.Slices, want)
		}
		total += row.Slices
	}
	if total != 1453 {
		t.Errorf("32-bit Quarc total %d slices, paper says 1453", total)
	}
}

func TestQuarc32BitTotal(t *testing.T) {
	if got := QuarcSwitch().Slices(32); got != 1453 {
		t.Fatalf("Quarc 32-bit = %d slices, paper says 1453", got)
	}
}

func TestSpidergon32BitTotal(t *testing.T) {
	if got := SpidergonSwitch().Slices(32); got != 1700 {
		t.Fatalf("Spidergon 32-bit = %d slices, paper says 1700", got)
	}
}

func TestQuarcSmallerAtEveryWidth(t *testing.T) {
	// The paper's headline cost claim: better performance at no extra (in
	// fact lower) hardware cost, across the 16/32/64-bit versions.
	q, s := QuarcSwitch(), SpidergonSwitch()
	for _, w := range Widths {
		if q.Slices(w) >= s.Slices(w) {
			t.Errorf("width %d: quarc %d slices not below spidergon %d",
				w, q.Slices(w), s.Slices(w))
		}
	}
}

func TestSlicesMonotoneInWidth(t *testing.T) {
	for _, sw := range []Switch{QuarcSwitch(), SpidergonSwitch()} {
		prev := 0
		for _, w := range Widths {
			got := sw.Slices(w)
			if got <= prev {
				t.Errorf("%s: slices not monotone at width %d (%d <= %d)",
					sw.Name, w, got, prev)
			}
			prev = got
		}
	}
}

func TestBuffersDominateArea(t *testing.T) {
	// Table 1's structural observation: the buffers are by far the largest
	// module and the crossbar+FCU are small ("the amount of area occupied
	// by the crossbar and FCU are very minimal").
	for _, w := range Widths {
		rows := QuarcSwitch().ModuleSlices(w)
		byName := map[string]int{}
		total := 0
		for _, r := range rows {
			byName[r.Module] = r.Slices
			total += r.Slices
		}
		for name, slices := range byName {
			if name != "Input Buffers" && slices >= byName["Input Buffers"] {
				t.Errorf("width %d: module %s (%d) not below buffers (%d)",
					w, name, slices, byName["Input Buffers"])
			}
		}
		if w >= 32 && byName["Input Buffers"]*2 < total {
			t.Errorf("width %d: buffers are not the dominant module", w)
		}
		if byName["Crossbar & Mux"]+byName["Flow Control Unit (FCU)"] > total/4 {
			t.Errorf("width %d: crossbar+FCU not minimal (%d of %d)",
				w, byName["Crossbar & Mux"]+byName["Flow Control Unit (FCU)"], total)
		}
	}
}

func TestFig12Rows(t *testing.T) {
	rows := Fig12()
	if len(rows) != 3 {
		t.Fatalf("Fig12 has %d rows", len(rows))
	}
	for i, r := range rows {
		if r.Width != Widths[i] {
			t.Errorf("row %d width %d", i, r.Width)
		}
		if r.QuarcAdvantagePc <= 0 {
			t.Errorf("width %d: no area advantage (%v%%)", r.Width, r.QuarcAdvantagePc)
		}
	}
	// The 32-bit row must reproduce the published totals.
	if rows[1].QuarcSlices != 1453 || rows[1].SpidergonSlices != 1700 {
		t.Fatalf("32-bit row = %+v", rows[1])
	}
}

func TestControlAreaIsWidthInvariant(t *testing.T) {
	// Modules with no datapath must cost the same at every width.
	m := Module{Name: "fsm", Control: 30}
	if m.Slices(16) != 30 || m.Slices(64) != 30 {
		t.Fatal("control-only module scaled with width")
	}
	// Pure datapath scales linearly with the wire width.
	d := Module{Name: "buf", Datapath: 34}
	if d.Slices(32) != 34 {
		t.Fatalf("reference width slices = %d", d.Slices(32))
	}
	if d.Slices(16) != 18 || d.Slices(64) != 66 {
		t.Fatalf("datapath scaling wrong: %d / %d", d.Slices(16), d.Slices(64))
	}
}

func TestPEQueueOverhead(t *testing.T) {
	q, s, err := PEQueueOverhead(16, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	// The paper: the four Quarc queues must be about twice as deep in total
	// as the single Spidergon queue (variance argument), but both are small
	// (addresses, not packets).
	if q <= s {
		t.Fatalf("quarc queue bits %v not above spidergon %v", q, s)
	}
	if q > 3*s {
		t.Fatalf("quarc queue bits %v implausibly above spidergon %v", q, s)
	}
	if _, _, err := PEQueueOverhead(0, 1, 6); err == nil {
		t.Fatal("bad parameters accepted")
	}
}

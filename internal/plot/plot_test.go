package plot

import (
	"math"
	"strings"
	"testing"
)

func TestChartContainsMarkersAndLegend(t *testing.T) {
	out := Chart("latency", []Curve{
		{Name: "quarc", X: []float64{0.01, 0.02, 0.03}, Y: []float64{20, 25, 40}, Marker: 'q'},
		{Name: "spidergon", X: []float64{0.01, 0.02, 0.03}, Y: []float64{30, 60, 120}, Marker: 's'},
	}, 40, 10)
	if !strings.Contains(out, "latency") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "q = quarc") || !strings.Contains(out, "s = spidergon") {
		t.Fatal("legend missing")
	}
	if !strings.ContainsRune(out, 'q') || !strings.ContainsRune(out, 's') {
		t.Fatal("markers missing")
	}
}

func TestChartClipsInfinity(t *testing.T) {
	out := Chart("sat", []Curve{
		{Name: "c", X: []float64{1, 2}, Y: []float64{10, math.Inf(1)}},
	}, 30, 8)
	if !strings.Contains(out, "* = c") {
		t.Fatal("legend missing")
	}
	// Must not panic and must still render the finite point.
	if !strings.ContainsRune(out, '*') {
		t.Fatal("no marker rendered")
	}
}

func TestChartAllInfinite(t *testing.T) {
	out := Chart("empty", []Curve{
		{Name: "c", X: []float64{1}, Y: []float64{math.Inf(1)}},
	}, 30, 8)
	if !strings.Contains(out, "no finite data") {
		t.Fatalf("expected empty-data notice, got %q", out)
	}
}

func TestChartMinimumDimensions(t *testing.T) {
	out := Chart("t", []Curve{{Name: "c", X: []float64{0, 1}, Y: []float64{1, 2}}}, 1, 1)
	if len(out) == 0 {
		t.Fatal("degenerate dimensions broke the chart")
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"module", "slices"}, [][]string{
		{"Input Buffers", "735"},
		{"OPC", "431"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Fatal("separator length mismatch")
	}
	if !strings.HasPrefix(lines[2], "Input Buffers") {
		t.Fatalf("row mangled: %q", lines[2])
	}
}

func TestBars(t *testing.T) {
	out := Bars("cost", []string{"quarc", "spidergon"}, []float64{1453, 1700}, 40)
	if !strings.Contains(out, "1453") || !strings.Contains(out, "1700") {
		t.Fatal("values missing")
	}
	qline, sline := "", ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "quarc") {
			qline = l
		}
		if strings.HasPrefix(l, "spidergon") {
			sline = l
		}
	}
	if strings.Count(qline, "#") >= strings.Count(sline, "#") {
		t.Fatal("bar lengths do not reflect values")
	}
}

func TestBarsZeroValues(t *testing.T) {
	out := Bars("z", []string{"a"}, []float64{0}, 10)
	if !strings.Contains(out, "a") {
		t.Fatal("label missing")
	}
}

// Package plot renders simple ASCII line charts and tables for the CLI
// tools and examples: latency-versus-load curves in the style of the
// paper's Figs 9-11, and bar charts for the cost comparison of Fig 12.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Curve is one plotted series. Err, when non-nil, holds a symmetric error
// half-width per point (e.g. a 95% confidence interval across replicates)
// rendered as vertical whiskers around the marker.
type Curve struct {
	Name   string
	X, Y   []float64
	Err    []float64
	Marker byte
}

// Chart renders curves on a width x height character grid with axis labels.
// Non-finite Y values (saturated points) are clipped to the top row.
func Chart(title string, curves []Curve, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1)
	any := false
	for _, c := range curves {
		for i := range c.X {
			if math.IsInf(c.Y[i], 0) || math.IsNaN(c.Y[i]) {
				continue
			}
			any = true
			minX = math.Min(minX, c.X[i])
			maxX = math.Max(maxX, c.X[i])
			top := c.Y[i]
			if i < len(c.Err) && c.Err[i] > 0 {
				top += c.Err[i] // leave room for the upper whisker
			}
			maxY = math.Max(maxY, top)
		}
	}
	if !any {
		return title + "\n(no finite data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	rowOf := func(y float64) int {
		if math.IsInf(y, 1) || math.IsNaN(y) || y > maxY {
			return 0 // clip to top: saturated
		}
		return int(math.Round((maxY - y) / (maxY - minY) * float64(height-1)))
	}
	colOf := func(x float64) int {
		return int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
	}
	// Whiskers first so markers overwrite them where they coincide.
	for _, c := range curves {
		for i := range c.X {
			if i >= len(c.Err) || c.Err[i] <= 0 ||
				math.IsInf(c.Y[i], 0) || math.IsNaN(c.Y[i]) {
				continue
			}
			col := colOf(c.X[i])
			if col < 0 || col >= width {
				continue
			}
			lo, hi := rowOf(c.Y[i]+c.Err[i]), rowOf(c.Y[i]-c.Err[i])
			for r := lo; r <= hi; r++ {
				if r >= 0 && r < height && grid[r][col] == ' ' {
					grid[r][col] = '|'
				}
			}
		}
	}
	for _, c := range curves {
		mark := c.Marker
		if mark == 0 {
			mark = '*'
		}
		for i := range c.X {
			row := rowOf(c.Y[i])
			col := colOf(c.X[i])
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = mark
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r, row := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%7.1f ", maxY)
		} else if r == height-1 {
			label = fmt.Sprintf("%7.1f ", minY)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "        +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "        %-12.4g%*.4g\n", minX, width-11, maxX)
	for _, c := range curves {
		mark := c.Marker
		if mark == 0 {
			mark = '*'
		}
		fmt.Fprintf(&b, "        %c = %s\n", mark, c.Name)
	}
	return b.String()
}

// Table renders rows with aligned columns.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// Bars renders a horizontal bar chart of labelled values.
func Bars(title string, labels []string, values []float64, width int) string {
	if width < 10 {
		width = 10
	}
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	lw := 0
	for _, l := range labels {
		if len(l) > lw {
			lw = len(l)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i, v := range values {
		n := int(math.Round(v / max * float64(width)))
		fmt.Fprintf(&b, "%-*s |%s %.0f\n", lw, labels[i], strings.Repeat("#", n), v)
	}
	return b.String()
}

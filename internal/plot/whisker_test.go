package plot

import (
	"strings"
	"testing"
)

func TestChartDrawsWhiskers(t *testing.T) {
	c := Curve{
		Name:   "latency",
		X:      []float64{0, 1, 2},
		Y:      []float64{10, 50, 90},
		Err:    []float64{0, 30, 0},
		Marker: 'q',
	}
	out := Chart("t", []Curve{c}, 40, 20)
	if !strings.Contains(out, "|") {
		t.Fatalf("no whisker drawn:\n%s", out)
	}
	// The whisker column must hold the marker with '|' above and below it.
	lines := strings.Split(out, "\n")
	col := -1
	markerRow := -1
	for r, line := range lines {
		if i := strings.IndexByte(line, 'q'); i >= 0 && strings.Count(line, "q") == 1 &&
			r > 0 && r < len(lines)-1 {
			// Middle point's column: find the 'q' with whiskers around it.
			above := lines[r-1]
			below := lines[r+1]
			if i < len(above) && above[i] == '|' && i < len(below) && below[i] == '|' {
				col, markerRow = i, r
				break
			}
		}
	}
	if col < 0 || markerRow < 0 {
		t.Fatalf("no marker flanked by whiskers:\n%s", out)
	}
}

func TestChartNoErrNoWhiskers(t *testing.T) {
	c := Curve{Name: "latency", X: []float64{0, 1}, Y: []float64{10, 20}, Marker: 'q'}
	out := Chart("t", []Curve{c}, 40, 10)
	// The axis uses '|' as the left border; strip it before checking.
	for _, line := range strings.Split(out, "\n") {
		if i := strings.IndexByte(line, '|'); i >= 0 {
			if strings.ContainsRune(line[i+1:], '|') {
				t.Fatalf("whisker drawn without Err:\n%s", out)
			}
		}
	}
}

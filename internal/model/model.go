// Package model is the string-keyed registry of network models the
// simulator can build. Every topology package registers its models (and
// option presets such as the Quarc ablations) from an init function; the
// experiment harness, the service layer and the CLIs resolve models by name
// instead of switching over a hard-coded enum, so adding a network
// architecture is a registration, not a cross-cutting edit.
//
// A model name is also its wire name: the string accepted by the quarcd
// JSON API's "topo" field and the CLIs' -topo flag, and echoed back in
// result payloads.
package model

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"quarc/internal/network"
	"quarc/internal/traffic"
)

// Node is the per-node surface the experiment harness drives: the send side
// of the network adapter plus the source-backlog probe used for saturation
// detection. Every registered model's Build returns one Node per network
// node.
type Node interface {
	traffic.Sender
	// Backlog returns the flits waiting in this node's source queues.
	Backlog() int
}

// BuildConfig carries the topology-independent build parameters. Everything
// else (routing discipline, port counts, ablation switches) is baked into
// the registered builder.
type BuildConfig struct {
	N     int // network size in nodes
	Depth int // flits per virtual-channel lane buffer
}

// Model is one registered network architecture (or option preset of one).
type Model struct {
	// Name is the registry key and wire name, lower-case.
	Name string
	// Description is a one-line summary for listings (-list-models,
	// GET /v1/models).
	Description string
	// CheckN validates a node count without building; nil defers entirely
	// to Build. Registered models should supply it so the service layer can
	// reject invalid sizes at submission time.
	CheckN func(n int) error
	// ExampleN is a small node count valid for this model, used by generic
	// test suites (invariant properties run over every registered model).
	ExampleN int
	// Build assembles the network fabric and its per-node adapters.
	Build func(cfg BuildConfig) (*network.Fabric, []Node, error)
}

var (
	mu       sync.RWMutex
	registry = map[string]Model{}
)

// Register adds a model to the registry. It panics on an empty or duplicate
// name, a missing builder, or a missing ExampleN — registration happens at
// init time, so a bad registration is a programming error, not a runtime
// condition.
func Register(m Model) {
	if m.Name == "" || m.Name != strings.ToLower(m.Name) {
		panic(fmt.Sprintf("model: invalid name %q (must be non-empty lower-case)", m.Name))
	}
	if m.Build == nil {
		panic(fmt.Sprintf("model: %q registered without a builder", m.Name))
	}
	if m.ExampleN <= 0 {
		panic(fmt.Sprintf("model: %q registered without an ExampleN", m.Name))
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[m.Name]; dup {
		panic(fmt.Sprintf("model: duplicate registration of %q", m.Name))
	}
	registry[m.Name] = m
}

// Lookup resolves a model by name (case-insensitive).
func Lookup(name string) (Model, bool) {
	mu.RLock()
	defer mu.RUnlock()
	m, ok := registry[strings.ToLower(name)]
	return m, ok
}

// Names returns the registered model names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// All returns the registered models sorted by name.
func All() []Model {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Model, 0, len(registry))
	for _, m := range registry {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CheckSize validates n against the named model's CheckN, if any. Unknown
// names return an error listing what is registered.
func CheckSize(name string, n int) error {
	m, ok := Lookup(name)
	if !ok {
		return fmt.Errorf("model: unknown model %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	if m.CheckN != nil {
		return m.CheckN(n)
	}
	return nil
}

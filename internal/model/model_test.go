package model

import (
	"fmt"
	"sort"
	"testing"

	"quarc/internal/network"
)

func stub(name string) Model {
	return Model{
		Name: name, Description: "test stub", ExampleN: 4,
		CheckN: func(n int) error {
			if n != 4 {
				return fmt.Errorf("want 4")
			}
			return nil
		},
		Build: func(BuildConfig) (*network.Fabric, []Node, error) {
			return nil, nil, fmt.Errorf("stub build")
		},
	}
}

func TestRegisterLookupNames(t *testing.T) {
	Register(stub("zz-stub-a"))
	Register(stub("zz-stub-b"))
	if _, ok := Lookup("ZZ-Stub-A"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	if err := CheckSize("zz-stub-a", 5); err == nil {
		t.Fatal("CheckSize accepted an invalid size")
	}
	if err := CheckSize("zz-stub-a", 4); err != nil {
		t.Fatalf("CheckSize rejected a valid size: %v", err)
	}
	if err := CheckSize("no-such-model", 4); err == nil {
		t.Fatal("CheckSize accepted an unknown model")
	}
}

func TestRegisterRejectsBadModels(t *testing.T) {
	expectPanic := func(name string, m Model) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Register did not panic", name)
			}
		}()
		Register(m)
	}
	expectPanic("empty name", Model{Name: "", ExampleN: 4, Build: stub("x").Build})
	expectPanic("upper-case name", Model{Name: "Mixed", ExampleN: 4, Build: stub("x").Build})
	expectPanic("no builder", Model{Name: "zz-stub-nobuild", ExampleN: 4})
	expectPanic("no example size", Model{Name: "zz-stub-noex", Build: stub("x").Build})
	Register(stub("zz-stub-dup"))
	expectPanic("duplicate", stub("zz-stub-dup"))
}

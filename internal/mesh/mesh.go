// Package mesh implements 2D mesh and torus NoCs with dimension-order (XY)
// routing on the same switch microarchitecture as the ring networks.
//
// The paper uses the mesh in two ways: the flit-level simulator was
// "verified extensively against analytical models for the Spidergon and mesh
// topologies" (§3.2), and the conclusion names mesh/torus as the next
// comparison targets. This package supports both: the verification tests in
// internal/analytic and the extension experiment in the harness.
//
// Port layout: inputs 0-3 arrive from the East/West/North/South neighbours,
// input 4 is the single injection channel; outputs 0-3 lead to the
// neighbours, output 4 is the shared ejection port. Meshes have no hardware
// collective support, so a broadcast is n-1 independent unicasts from the
// source (the software baseline a cache-coherent MPSoC on a mesh would use).
package mesh

import (
	"fmt"

	"quarc/internal/flit"
	"quarc/internal/network"
	"quarc/internal/router"
	"quarc/internal/topology"
)

// Port indices. Inputs are "from direction"; outputs are "toward direction".
const (
	East = iota
	West
	North
	South
	Inj          // input 4
	Eject    = 4 // output 4
	numPorts = 5
)

// NumNetworkInputs is the index of the injection port.
const NumNetworkInputs = 4

const link2VCs = 2

func outFor(d topology.MeshDir) int {
	switch d {
	case topology.MEast:
		return East
	case topology.MWest:
		return West
	case topology.MNorth:
		return North
	case topology.MSouth:
		return South
	default:
		return Eject
	}
}

// Route computes XY routing decisions using the geometry in
// internal/topology.
func Route(m topology.Mesh) router.RouteFunc {
	return func(node, in int, f flit.Flit) router.Decision {
		if f.Dst == node {
			return router.Decision{Out: Eject, Eject: true}
		}
		d, _ := m.Step(node, f.Dst)
		return router.Decision{Out: outFor(d)}
	}
}

// VCNext: plain meshes are acyclic under XY routing and always use VC 0; a
// torus applies a per-dimension dateline, resetting to VC 0 when the packet
// turns from the X ring into the Y ring.
func VCNext(m topology.Mesh) router.VCFunc {
	return func(node, out, in, cur int, f flit.Flit) int {
		if !m.Torus {
			return 0
		}
		// Dimension change or injection: fresh VC.
		if in == Inj || dimOf(in) != dimOf(out) {
			cur = 0
		}
		if cur == 1 {
			return 1
		}
		x, y := m.XY(node)
		switch out {
		case East:
			if x == m.W-1 {
				return 1
			}
		case West:
			if x == 0 {
				return 1
			}
		case North:
			if y == m.H-1 {
				return 1
			}
		case South:
			if y == 0 {
				return 1
			}
		}
		return 0
	}
}

func dimOf(port int) int {
	if port == East || port == West {
		return 0
	}
	return 1
}

// Config describes a mesh network build.
type Config struct {
	W, H  int
	Torus bool
	Depth int
}

// Build assembles the mesh fabric and its adapters.
func Build(cfg Config) (*network.Fabric, []*Adapter, error) {
	m, err := topology.NewMesh(cfg.W, cfg.H, cfg.Torus)
	if err != nil {
		return nil, nil, err
	}
	if cfg.Depth < 1 {
		return nil, nil, fmt.Errorf("mesh: buffer depth %d", cfg.Depth)
	}
	n := m.N()
	routers := make([]*router.Router, n)
	wires := make([][]network.OutputWire, n)
	injStart := make([]int, n)
	inLanes := []int{link2VCs, link2VCs, link2VCs, link2VCs, 1}
	for node := 0; node < n; node++ {
		routers[node] = router.New(router.Config{
			Node:      node,
			VCs:       link2VCs,
			Depth:     cfg.Depth,
			InLanes:   inLanes,
			NOut:      numPorts,
			EjectPort: Eject,
			Route:     Route(m),
			VCNext:    VCNext(m),
			// XY turns make most input-output pairs legal; keep the crossbar
			// full and rely on the routing function (U-turns never happen
			// under XY, which the tests assert via link loads).
			Reach: nil,
		})
		x, y := m.XY(node)
		w := make([]network.OutputWire, numPorts)
		w[Eject] = network.OutputWire{Sink: true}
		// A border output on a plain mesh is wired back to the local sink
		// slot but must never be used; mark it as a sink so misrouting
		// panics in the tracker rather than corrupting a neighbour.
		set := func(out int, ok bool, nx, ny int) {
			if !ok {
				w[out] = network.OutputWire{Sink: true}
				return
			}
			var port int
			switch out {
			case East:
				port = West // arriving at the east neighbour from its west side
			case West:
				port = East
			case North:
				port = South
			case South:
				port = North
			}
			w[out] = network.OutputWire{Dst: network.PortRef{Node: m.ID(nx, ny), Port: port}}
		}
		if cfg.Torus {
			set(East, true, topology.Mod(x+1, m.W), y)
			set(West, true, topology.Mod(x-1, m.W), y)
			set(North, true, x, topology.Mod(y+1, m.H))
			set(South, true, x, topology.Mod(y-1, m.H))
		} else {
			set(East, x+1 < m.W, x+1, y)
			set(West, x-1 >= 0, x-1, y)
			set(North, y+1 < m.H, x, y+1)
			set(South, y-1 >= 0, x, y-1)
		}
		wires[node] = w
		injStart[node] = NumNetworkInputs
	}
	fab := network.New(routers, wires, injStart)
	as := make([]*Adapter, n)
	for node := 0; node < n; node++ {
		as[node] = newAdapter(fab, routers[node], node, n)
		fab.SetAdapter(node, as[node])
	}
	return fab, as, nil
}

// Adapter is the one-port mesh network interface.
type Adapter struct {
	network.BaseAdapter
	n   int
	fab *network.Fabric
}

func newAdapter(fab *network.Fabric, r *router.Router, node, n int) *Adapter {
	a := &Adapter{n: n, fab: fab}
	a.Node = node
	a.R = r
	a.Queues = make([]network.PacketQueue, 1)
	a.InjPorts = []int{Inj}
	a.OnTail = func(f flit.Flit, now int64) {
		a.fab.Tracker.Delivered(f.MsgID, a.Node, now)
	}
	return a
}

// SendUnicast queues a unicast message of msgLen flits for dst.
func (a *Adapter) SendUnicast(dst, msgLen int, now int64) uint64 {
	if dst == a.Node {
		panic("mesh: unicast to self")
	}
	msgID := a.fab.NextMsgID()
	h := flit.Flit{
		Traffic: flit.Unicast, Src: a.Node, Dst: dst,
		PktID: a.fab.NextPktID(), MsgID: msgID, Gen: now,
	}
	a.fab.Tracker.Register(msgID, network.ClassUnicast, a.Node, now, 1)
	a.Enqueue(0, h, msgLen)
	return msgID
}

// SendBroadcast emits n-1 unicasts (no hardware collectives on a mesh).
func (a *Adapter) SendBroadcast(msgLen int, now int64) uint64 {
	msgID := a.fab.NextMsgID()
	a.fab.Tracker.Register(msgID, network.ClassBroadcast, a.Node, now, a.n-1)
	for d := 0; d < a.n; d++ {
		if d == a.Node {
			continue
		}
		h := flit.Flit{
			Traffic: flit.Unicast, Src: a.Node, Dst: d,
			PktID: a.fab.NextPktID(), MsgID: msgID, Gen: now,
		}
		a.Enqueue(0, h, msgLen)
	}
	return msgID
}

// SendMulticast emits one unicast per distinct remote target (software
// multicast, like the broadcast).
func (a *Adapter) SendMulticast(targets []int, msgLen int, now int64) uint64 {
	return a.SendMulticastFanout(a.fab, 0, targets, msgLen, now)
}

var _ network.Adapter = (*Adapter)(nil)

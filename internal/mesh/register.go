package mesh

import (
	"fmt"
	"math"

	"quarc/internal/model"
	"quarc/internal/network"
)

// checkSquare validates a node count for the square mesh/torus builds the
// registry exposes (the package itself also supports rectangles via Config).
// Unlike the ring models — pinned at 64 nodes by the paper's single-flit
// header format — the mesh scales with the tracker's multi-word delivery
// mask; the cap only bounds memory per simulated point.
func checkSquare(n int) error {
	side := int(math.Round(math.Sqrt(float64(n))))
	if n < 4 || side*side != n {
		return fmt.Errorf("mesh: size %d is not a square of at least 4 nodes", n)
	}
	if n > 4096 {
		return fmt.Errorf("mesh: size %d exceeds the 4096-node cap", n)
	}
	return nil
}

func init() {
	register := func(name, desc string, torus bool) {
		model.Register(model.Model{
			Name:        name,
			Description: desc,
			CheckN:      checkSquare,
			ExampleN:    16,
			Build: func(bc model.BuildConfig) (*network.Fabric, []model.Node, error) {
				if err := checkSquare(bc.N); err != nil {
					return nil, nil, err
				}
				side := int(math.Round(math.Sqrt(float64(bc.N))))
				fab, as, err := Build(Config{W: side, H: side, Torus: torus, Depth: bc.Depth})
				if err != nil {
					return nil, nil, err
				}
				nodes := make([]model.Node, len(as))
				for i, a := range as {
					nodes[i] = a
				}
				return fab, nodes, nil
			},
		})
	}
	register("mesh", "2D mesh with XY routing, software broadcast (n-1 unicasts)", false)
	register("torus", "2D torus with XY routing and per-dimension dateline VCs", true)
}

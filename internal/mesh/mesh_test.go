package mesh

import (
	"testing"

	"quarc/internal/network"
	"quarc/internal/rng"
	"quarc/internal/topology"
)

func build(t testing.TB, w, h int, torus bool) (*network.Fabric, []*Adapter, topology.Mesh) {
	t.Helper()
	fab, as, err := Build(Config{W: w, H: h, Torus: torus, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := topology.NewMesh(w, h, torus)
	return fab, as, m
}

func drain(t testing.TB, fab *network.Fabric, budget int) {
	t.Helper()
	for i := 0; i < budget; i++ {
		if fab.Tracker.InFlight() == 0 {
			return
		}
		fab.Step()
	}
	if fab.Tracker.InFlight() != 0 {
		t.Fatalf("mesh did not drain: %d messages stuck", fab.Tracker.InFlight())
	}
}

func TestMeshUnicastZeroLoadLatency(t *testing.T) {
	for _, torus := range []bool{false, true} {
		fab, as, geo := build(t, 4, 4, torus)
		mlen := 8
		for src := 0; src < geo.N(); src++ {
			for dst := 0; dst < geo.N(); dst++ {
				if src == dst {
					continue
				}
				fab, as, geo = build(t, 4, 4, torus)
				var rec *network.MessageRecord
				fab.Tracker.OnDone = func(r network.MessageRecord) { rec = &r }
				as[src].SendUnicast(dst, mlen, fab.Now())
				drain(t, fab, 1000)
				want := int64(geo.Hops(src, dst) + mlen)
				if lat := rec.Last - rec.Gen; lat != want {
					t.Fatalf("torus=%v %d->%d: latency %d, want %d", torus, src, dst, lat, want)
				}
			}
		}
		_ = as
	}
}

func TestMeshBroadcastAsUnicasts(t *testing.T) {
	fab, as, geo := build(t, 4, 4, false)
	var rec *network.MessageRecord
	fab.Tracker.OnDone = func(r network.MessageRecord) { rec = &r }
	as[0].SendBroadcast(4, fab.Now())
	drain(t, fab, 100000)
	if rec == nil || rec.Delivered != geo.N()-1 {
		t.Fatalf("broadcast delivered %v", rec)
	}
	if fab.Tracker.Duplicates() != 0 {
		t.Fatal("duplicates")
	}
}

func TestMeshRandomTrafficConservation(t *testing.T) {
	for _, torus := range []bool{false, true} {
		fab, as, geo := build(t, 4, 4, torus)
		r := rng.New(11, 3)
		sent, completed := 0, 0
		fab.Tracker.OnDone = func(network.MessageRecord) { completed++ }
		n := geo.N()
		for cyc := 0; cyc < 1500; cyc++ {
			for s := 0; s < n; s++ {
				if r.Bernoulli(0.02) {
					d := r.Intn(n - 1)
					if d >= s {
						d++
					}
					as[s].SendUnicast(d, 4, fab.Now())
					sent++
				}
			}
			fab.Step()
		}
		drain(t, fab, 300000)
		if completed != sent {
			t.Fatalf("torus=%v: completed %d of %d", torus, completed, sent)
		}
	}
}

func TestMeshBorderLinksUnused(t *testing.T) {
	// Under XY routing on a plain mesh, border outputs must carry nothing
	// (they are wired as sinks; any use would silently drop flits, which
	// conservation tests would catch — here we check the counters directly).
	fab, as, geo := build(t, 3, 3, false)
	for s := 0; s < geo.N(); s++ {
		for d := 0; d < geo.N(); d++ {
			if s != d {
				as[s].SendUnicast(d, 2, fab.Now())
			}
		}
	}
	drain(t, fab, 100000)
	loads := fab.LinkLoad()
	for node := 0; node < geo.N(); node++ {
		x, y := geo.XY(node)
		if x == geo.W-1 && loads[node][East] != 0 {
			t.Errorf("node %d used its east border link", node)
		}
		if x == 0 && loads[node][West] != 0 {
			t.Errorf("node %d used its west border link", node)
		}
		if y == geo.H-1 && loads[node][North] != 0 {
			t.Errorf("node %d used its north border link", node)
		}
		if y == 0 && loads[node][South] != 0 {
			t.Errorf("node %d used its south border link", node)
		}
	}
}

func TestTorusDatelineDeadlockFreedom(t *testing.T) {
	// Saturate a small torus with ring-wrapping traffic; everything must
	// still drain (the dateline VCs break the wraparound cycles).
	fab, as, geo := build(t, 4, 4, true)
	n := geo.N()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				as[s].SendUnicast(d, 8, fab.Now())
			}
		}
	}
	drain(t, fab, 500000)
}

func TestMeshBuildValidation(t *testing.T) {
	if _, _, err := Build(Config{W: 1, H: 4, Depth: 4}); err == nil {
		t.Error("accepted 1-wide mesh")
	}
	if _, _, err := Build(Config{W: 4, H: 4, Depth: 0}); err == nil {
		t.Error("accepted zero depth")
	}
}

package stats

import (
	"math"
	"testing"
)

func TestMeanCI95(t *testing.T) {
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-12 }

	mean, ci := MeanCI95(nil)
	if mean != 0 || ci != 0 {
		t.Fatalf("empty: got %v ± %v", mean, ci)
	}
	mean, ci = MeanCI95([]float64{3})
	if !approx(mean, 3) || ci != 0 {
		t.Fatalf("singleton: got %v ± %v", mean, ci)
	}
	// {10, 12, 14}: mean 12, sd 2, half-width 1.96*2/sqrt(3).
	mean, ci = MeanCI95([]float64{10, 12, 14})
	if !approx(mean, 12) || !approx(ci, 1.96*2/math.Sqrt(3)) {
		t.Fatalf("got %v ± %v", mean, ci)
	}
}

func TestMeanCI95MatchesAccumulator(t *testing.T) {
	xs := []float64{1.5, 2.25, -3, 8, 0.125}
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	mean, ci := MeanCI95(xs)
	if mean != a.Mean() || ci != a.CI95() {
		t.Fatalf("MeanCI95 diverges from Accumulator: %v ± %v vs %v ± %v",
			mean, ci, a.Mean(), a.CI95())
	}
}

// Package stats collects and summarises simulation measurements: latency
// accumulators per traffic class, histograms, warmup/measurement windows and
// saturation detection, matching the methodology of the paper's §3.2
// evaluation (average latency per class versus offered message rate).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator keeps streaming mean/variance (Welford) plus extremes.
type Accumulator struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records a sample.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// Count returns the number of samples.
func (a *Accumulator) Count() int64 { return a.n }

// Mean returns the sample mean (0 with no samples).
func (a *Accumulator) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance.
func (a *Accumulator) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the sample standard deviation.
func (a *Accumulator) Std() float64 { return math.Sqrt(a.Var()) }

// Min and Max return the extremes (0 with no samples).
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return 0
	}
	return a.min
}
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return 0
	}
	return a.max
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// under a normal approximation.
func (a *Accumulator) CI95() float64 {
	if a.n < 2 {
		return 0
	}
	return 1.96 * a.Std() / math.Sqrt(float64(a.n))
}

// Histogram is a fixed-bucket latency histogram with an overflow bucket.
type Histogram struct {
	width   float64
	buckets []int64
	over    int64
	total   int64
}

// NewHistogram builds a histogram with nb buckets of the given width.
func NewHistogram(nb int, width float64) *Histogram {
	if nb < 1 || width <= 0 {
		panic("stats: bad histogram shape")
	}
	return &Histogram{width: width, buckets: make([]int64, nb)}
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	h.total++
	if x < 0 {
		x = 0
	}
	i := int(x / h.width)
	if i >= len(h.buckets) {
		h.over++
		return
	}
	h.buckets[i]++
}

// Total returns the sample count.
func (h *Histogram) Total() int64 { return h.total }

// Quantile returns an upper bound for the q-quantile (q in [0,1]); samples
// in the overflow bucket return +Inf.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return float64(i+1) * h.width
		}
	}
	return math.Inf(1)
}

// Series is one measured curve: latency (or any metric) versus offered load.
type Series struct {
	Name string
	X    []float64 // offered load (messages/node/cycle)
	Y    []float64 // metric (cycles)
	Sat  []bool    // saturation flag per point
}

// Append adds a point.
func (s *Series) Append(x, y float64, sat bool) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
	s.Sat = append(s.Sat, sat)
}

// SaturationPoint returns the smallest load at which the series saturates,
// or +Inf if it never does.
func (s *Series) SaturationPoint() float64 {
	for i, sat := range s.Sat {
		if sat {
			return s.X[i]
		}
	}
	return math.Inf(1)
}

// MeanCI95 returns the sample mean of xs and the half-width of its 95%
// confidence interval under a normal approximation. It is the replicate
// aggregator of the sweep engine: each x is the point estimate of one
// independent replicate, and the CI quantifies across-replicate spread.
// Fewer than two samples yield a zero half-width.
func MeanCI95(xs []float64) (mean, ci95 float64) {
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	return a.Mean(), a.CI95()
}

// SaturationDetector decides whether an open-loop run is beyond saturation
// by watching the total source backlog: in a stable system the backlog is
// ergodic, while past saturation it grows without bound. The detector
// samples the backlog in batches and reports saturation when the batch means
// keep growing and the final backlog is large relative to the traffic.
type SaturationDetector struct {
	samples []float64
}

// Sample records the instantaneous total backlog (flits).
func (d *SaturationDetector) Sample(backlog float64) {
	d.samples = append(d.samples, backlog)
}

// Saturated reports whether the backlog trend indicates instability: the
// batch means of three consecutive windows grow monotonically by a clear
// margin and end at a non-trivial level. A stable (ergodic) backlog
// fluctuates around its mean instead.
func (d *SaturationDetector) Saturated() bool {
	n := len(d.samples)
	if n < 9 {
		return false
	}
	third := n / 3
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	first := mean(d.samples[:third])
	mid := mean(d.samples[third : 2*third])
	last := mean(d.samples[2*third:])
	return last > 1.25*mid+1 && mid > 1.25*first+1 && last > 10
}

// Summary is a compact human-readable digest of an accumulator.
func Summary(name string, a *Accumulator) string {
	return fmt.Sprintf("%s: n=%d mean=%.2f ±%.2f (min %.0f, max %.0f)",
		name, a.Count(), a.Mean(), a.CI95(), a.Min(), a.Max())
}

// Percentile computes the p-th percentile (0-100) of a slice by sorting a
// copy (convenience for small result sets).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{1, 2, 3, 4, 5} {
		a.Add(x)
	}
	if a.Count() != 5 || a.Mean() != 3 {
		t.Fatalf("count/mean = %d/%v", a.Count(), a.Mean())
	}
	if math.Abs(a.Var()-2.5) > 1e-12 {
		t.Fatalf("var = %v, want 2.5", a.Var())
	}
	if a.Min() != 1 || a.Max() != 5 {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
	if a.CI95() <= 0 {
		t.Fatal("CI95 must be positive with variance")
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Var() != 0 || a.Min() != 0 || a.Max() != 0 || a.CI95() != 0 {
		t.Fatal("empty accumulator must return zeros")
	}
}

// Property: Welford mean/variance match the two-pass formulas.
func TestAccumulatorMatchesTwoPass(t *testing.T) {
	check := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		var a Accumulator
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r % 1000)
			a.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		v := ss / float64(len(xs)-1)
		return math.Abs(a.Mean()-mean) < 1e-9*(1+math.Abs(mean)) &&
			math.Abs(a.Var()-v) < 1e-6*(1+v)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(100, 1)
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.Total() != 100 {
		t.Fatalf("total = %d", h.Total())
	}
	if q := h.Quantile(0.5); q < 50 || q > 52 {
		t.Fatalf("median = %v", q)
	}
	if q := h.Quantile(0.99); q < 99 || q > 101 {
		t.Fatalf("p99 = %v", q)
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram(10, 1)
	h.Add(5)
	h.Add(1e9)
	if !math.IsInf(h.Quantile(0.99), 1) {
		t.Fatal("overflow sample must push high quantiles to +Inf")
	}
	if h.Quantile(0.25) > 6 {
		t.Fatalf("low quantile affected by overflow: %v", h.Quantile(0.25))
	}
}

func TestHistogramShapeValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 1) },
		func() { NewHistogram(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad histogram accepted")
				}
			}()
			f()
		}()
	}
}

func TestSeriesSaturationPoint(t *testing.T) {
	var s Series
	s.Append(0.01, 20, false)
	s.Append(0.02, 25, false)
	s.Append(0.03, 90, true)
	if got := s.SaturationPoint(); got != 0.03 {
		t.Fatalf("saturation point = %v", got)
	}
	var never Series
	never.Append(0.01, 20, false)
	if !math.IsInf(never.SaturationPoint(), 1) {
		t.Fatal("unsaturated series must report +Inf")
	}
}

func TestSaturationDetectorStable(t *testing.T) {
	var d SaturationDetector
	for i := 0; i < 30; i++ {
		d.Sample(5) // steady small backlog
	}
	if d.Saturated() {
		t.Fatal("stable backlog flagged as saturated")
	}
}

func TestSaturationDetectorGrowth(t *testing.T) {
	var d SaturationDetector
	for i := 0; i < 30; i++ {
		d.Sample(float64(i * 20)) // unbounded growth
	}
	if !d.Saturated() {
		t.Fatal("growing backlog not flagged")
	}
}

func TestSaturationDetectorTooFewSamples(t *testing.T) {
	var d SaturationDetector
	d.Sample(1e9)
	if d.Saturated() {
		t.Fatal("saturation decided on too few samples")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("extremes wrong")
	}
	if p := Percentile(xs, 50); p != 3 {
		t.Fatalf("median = %v", p)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile must be 0")
	}
	// Original slice untouched.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestSummaryFormat(t *testing.T) {
	var a Accumulator
	a.Add(10)
	a.Add(20)
	s := Summary("lat", &a)
	if s == "" || len(s) < 10 {
		t.Fatalf("summary = %q", s)
	}
}

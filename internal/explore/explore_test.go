package explore

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"quarc/internal/experiments"
	"quarc/internal/traffic"
)

func testOpts() experiments.RunOpts {
	return experiments.RunOpts{Warmup: 100, Measure: 400, Drain: 2000, Depth: 4, Seed: 7, Replicates: 1}
}

func TestExpandErrors(t *testing.T) {
	opts := testOpts()
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"empty lattice", Spec{}, "empty lattice"},
		{"no rates", Spec{Models: []string{"quarc"}, Ns: []int{16}}, "empty lattice"},
		{"unknown model", Spec{Models: []string{"hypercube"}, Ns: []int{16}, Rates: []float64{0.01}}, `unknown model "hypercube"`},
		{"bad n", Spec{Models: []string{"quarc"}, Ns: []int{0}, Rates: []float64{0.01}}, "must be positive"},
		{"bad rate", Spec{Models: []string{"quarc"}, Ns: []int{16}, Rates: []float64{-1}}, "positive finite"},
		{"nan rate", Spec{Models: []string{"quarc"}, Ns: []int{16}, Rates: []float64{math.NaN()}}, "positive finite"},
		{"bad depth", Spec{Models: []string{"quarc"}, Ns: []int{16}, Rates: []float64{0.01}, Depths: []int{-2}}, "non-negative"},
		{"mcast frac out of range", Spec{Models: []string{"quarc"}, Ns: []int{16}, Rates: []float64{0.01}, Mcast: []McastKnob{{Frac: 1.5, Size: 4}}}, "outside [0,1]"},
		{"mcast size without frac", Spec{Models: []string{"quarc"}, Ns: []int{16}, Rates: []float64{0.01}, Mcast: []McastKnob{{Size: 4}}}, "without a fraction"},
		{"mcast size too small", Spec{Models: []string{"quarc"}, Ns: []int{16}, Rates: []float64{0.01}, Mcast: []McastKnob{{Frac: 0.2, Size: 1}}}, "at least 2"},
		// Every combination invalid: all sizes skip for every model.
		{"all skipped", Spec{Models: []string{"quarc"}, Ns: []int{7}, Rates: []float64{0.01}}, "0 valid points"},
	}
	for _, c := range cases {
		_, err := c.spec.Expand(opts)
		if err == nil {
			t.Errorf("%s: Expand accepted the spec", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestExpandSkipsDedupsAndOrders(t *testing.T) {
	opts := testOpts()
	spec := Spec{
		Models: []string{"quarc", "mesh"},
		// 9 is square-only (mesh yes, quarc no); 16 suits both; 12 is a valid
		// ring size but no square.
		Ns: []int{9, 16, 12},
		// The duplicate rate must collapse per (model, n, depth, mcast).
		Rates:  []float64{0.01, 0.01},
		MsgLen: 4,
	}
	exp, err := spec.Expand(opts)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	// Valid combinations: quarc{16,12} + mesh{9,16}, one point each after
	// the duplicate rate collapses.
	if len(exp.Points) != 4 {
		t.Fatalf("got %d points, want 4: %+v", len(exp.Points), exp.Points)
	}
	if exp.Deduped != 4 {
		t.Errorf("deduped %d duplicate points, want 4", exp.Deduped)
	}
	if len(exp.Skipped) != 2 {
		t.Fatalf("got %d skips, want 2: %+v", len(exp.Skipped), exp.Skipped)
	}
	for _, sk := range exp.Skipped {
		if sk.Reason == "" {
			t.Errorf("skip %s/%d has no reason", sk.Model, sk.N)
		}
	}
	// Lattice order is model-major, then N in the given axis order.
	var got []string
	for _, p := range exp.Points {
		got = append(got, fmt.Sprintf("%s/%d", p.Model, p.N))
	}
	want := []string{"quarc/16", "quarc/12", "mesh/9", "mesh/16"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lattice order %v, want %v", got, want)
		}
	}
	// The default depth was applied.
	for _, p := range exp.Points {
		if p.Depth != 4 {
			t.Errorf("point %s/%d depth %d, want the default 4", p.Model, p.N, p.Depth)
		}
	}
	// Identical specs expand identically (the service layer relies on the
	// expansion being a pure function of the spec).
	again, err := spec.Expand(opts)
	if err != nil {
		t.Fatalf("re-Expand: %v", err)
	}
	for i := range exp.Points {
		if exp.Points[i] != again.Points[i] {
			t.Fatalf("expansion is not deterministic at point %d", i)
		}
	}
}

func TestEvalOrderPrefersPredictedFastPoints(t *testing.T) {
	opts := testOpts()
	spec := Spec{
		Models: []string{"quarc", "ring"},
		Ns:     []int{16},
		// Near saturation the analytic wait explodes; the low rate must be
		// evaluated first despite sitting later in the axis order.
		Rates:  []float64{0.03, 0.002},
		MsgLen: 16,
	}
	exp, err := spec.Expand(opts)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	order := evalOrder(exp.Points)
	if len(order) != len(exp.Points) {
		t.Fatalf("order has %d entries for %d points", len(order), len(exp.Points))
	}
	first := exp.Points[order[0]]
	if first.Model != "quarc" || first.Rate != 0.002 {
		t.Errorf("first evaluated point is %s rate=%g, want the low-load quarc point", first.Model, first.Rate)
	}
	// Ring has no analytical model: both its points must trail every quarc
	// point (unknown predictions sort last, in lattice order).
	for i, oi := range order {
		if exp.Points[oi].Model == "ring" && i < 2 {
			t.Errorf("cost-unknown ring point evaluated at position %d, before the predicted points", i)
		}
	}
}

// TestRunWithSyntheticEvaluator drives Run end to end without a simulator:
// the evaluator fabricates measurements, and the outcome must carry the
// cost axis, the front and the per-point provenance.
func TestRunWithSyntheticEvaluator(t *testing.T) {
	opts := testOpts()
	spec := Spec{
		Models: []string{"quarc", "spidergon", "ring"},
		Ns:     []int{16},
		Rates:  []float64{0.01},
		MsgLen: 16,
	}
	var mu sync.Mutex
	calls := 0
	eval := func(ctx context.Context, p Point) (experiments.Result, bool, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		res := experiments.Result{Cfg: p.Cfg, UnicastCount: 100, Throughput: 0.1}
		switch p.Model {
		case "quarc":
			res.UnicastMean = 20
		case "spidergon":
			res.UnicastMean = 30
		case "ring":
			res.UnicastMean = 10 // best latency, but cost-unknown
		}
		return res, p.Model == "spidergon", nil
	}
	seen := make(map[int]bool)
	oc, err := Run(context.Background(), spec, opts, 2, eval, func(i int, p Point, res experiments.Result, cached bool) {
		mu.Lock()
		defer mu.Unlock()
		if seen[i] {
			t.Errorf("point %d reported twice", i)
		}
		seen[i] = true
		if (p.Model == "spidergon") != cached {
			t.Errorf("point %s cached=%v, want the evaluator's flag", p.Model, cached)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls != 3 || len(oc.Points) != 3 {
		t.Fatalf("evaluated %d points, outcome has %d, want 3", calls, len(oc.Points))
	}
	byModel := map[string]PointOutcome{}
	for _, p := range oc.Points {
		byModel[p.Model] = p
	}
	if !byModel["quarc"].CostKnown || !byModel["spidergon"].CostKnown {
		t.Error("quarc/spidergon must carry a known cost axis")
	}
	if byModel["ring"].CostKnown {
		t.Error("ring has no calibrated cost model but reports one")
	}
	if q, s := byModel["quarc"].CostSlices, byModel["spidergon"].CostSlices; q <= 0 || s <= q {
		t.Errorf("cost axis %d (quarc) vs %d (spidergon): want 0 < quarc < spidergon", q, s)
	}
	// Front: ring wins latency (cost unknown), quarc wins cost; spidergon is
	// dominated by quarc (worse latency, worse cost, equal throughput).
	onFront := map[string]bool{}
	for _, i := range oc.Front {
		onFront[oc.Points[i].Model] = true
	}
	if !onFront["ring"] || !onFront["quarc"] || onFront["spidergon"] {
		t.Errorf("front models %v, want ring+quarc only", onFront)
	}
	for i, p := range oc.Points {
		if p.Model == "spidergon" {
			w := oc.DominatedBy[i]
			if w < 0 || oc.Points[w].Model != "quarc" {
				t.Errorf("spidergon's witness is %d, want the quarc point", w)
			}
		}
	}
	// Analytic annotations: quarc/spidergon have closed-form models.
	if !byModel["quarc"].AnalyticOK || !byModel["spidergon"].AnalyticOK {
		t.Error("quarc/spidergon should carry analytic predictions")
	}
	if byModel["ring"].AnalyticOK {
		t.Error("ring has no analytical model but reports a prediction")
	}
	if !byModel["quarc"].AnalyticErrOK {
		t.Error("quarc's analytic-vs-simulated error missing for a pure-unicast measured point")
	}
}

func TestRunPropagatesEvaluatorError(t *testing.T) {
	opts := testOpts()
	spec := Spec{Models: []string{"quarc"}, Ns: []int{16}, Rates: []float64{0.01}}
	boom := fmt.Errorf("boom")
	_, err := Run(context.Background(), spec, opts, 1, func(context.Context, Point) (experiments.Result, bool, error) {
		return experiments.Result{}, false, boom
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Run error %v, want the evaluator's", err)
	}
}

func TestRunCancelled(t *testing.T) {
	opts := testOpts()
	spec := Spec{Models: []string{"quarc"}, Ns: []int{16}, Rates: []float64{0.01, 0.02}}
	ctx, cancel := context.WithCancel(context.Background())
	_, err := Run(ctx, spec, opts, 1, func(ctx context.Context, p Point) (experiments.Result, bool, error) {
		cancel() // cancel mid-flight, from inside the first evaluation
		return experiments.Result{Cfg: p.Cfg, UnicastCount: 1, UnicastMean: 1}, false, nil
	}, nil)
	if err != context.Canceled {
		t.Fatalf("Run error %v, want context.Canceled", err)
	}
}

// TestRunMulticastAxis exercises the mcast knob end to end at the expansion
// level: the knob lands in the config and distinct knobs stay distinct
// points.
func TestRunMulticastAxis(t *testing.T) {
	opts := testOpts()
	spec := Spec{
		Models: []string{"quarc"}, Ns: []int{16}, Rates: []float64{0.01},
		Mcast: []McastKnob{{}, {Frac: 0.2, Size: 4}},
	}
	exp, err := spec.Expand(opts)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(exp.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(exp.Points))
	}
	if exp.Points[0].Cfg.McastFrac != 0 || exp.Points[1].Cfg.McastFrac != 0.2 || exp.Points[1].Cfg.McastSize != 4 {
		t.Errorf("mcast knobs not threaded into configs: %+v", exp.Points)
	}
	if exp.Points[0].Cfg.Pattern != traffic.Uniform {
		t.Errorf("default pattern %v, want uniform", exp.Points[0].Cfg.Pattern)
	}
}

package explore

import (
	"math"
	"math/rand"
	"testing"
)

// TestDominates pins the dominance relation, including the cost-unknown
// (+Inf) encoding and exact ties.
func TestDominates(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name string
		a, b Objectives
		want bool
	}{
		{"strictly better everywhere", Objectives{1, 2, 3}, Objectives{2, 1, 4}, true},
		{"better on one, equal elsewhere", Objectives{1, 1, 1}, Objectives{2, 1, 1}, true},
		{"identical points tie", Objectives{1, 1, 1}, Objectives{1, 1, 1}, false},
		{"worse on one axis blocks", Objectives{1, 1, 5}, Objectives{2, 1, 4}, false},
		{"known cost beats unknown, others equal", Objectives{1, 1, 9}, Objectives{1, 1, inf}, true},
		{"unknown cost never beats known", Objectives{1, 1, inf}, Objectives{1, 1, 9}, false},
		{"two unknown costs tie on cost", Objectives{1, 1, inf}, Objectives{2, 1, inf}, true},
		{"unmeasured latency loses", Objectives{inf, 1, 1}, Objectives{1, 1, 1}, false},
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("%s: Dominates(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
	// Transitivity spot-check across the unknown-cost encoding: a dom b and
	// b dom c must imply a dom c even when b's cost is unknown.
	a := Objectives{1, 3, 100}
	b := Objectives{2, 3, inf}
	if !Dominates(a, b) {
		t.Fatal("a should dominate b")
	}
	c := Objectives{3, 3, inf}
	if Dominates(b, c) && !Dominates(a, c) {
		t.Error("dominance is not transitive through an unknown-cost point")
	}
}

// checkFrontInvariants asserts the three Pareto properties on one cloud:
// no front member is dominated, every excluded point is dominated by its
// recorded front witness, and the front set is invariant to input order.
func checkFrontInvariants(t *testing.T, objs []Objectives, rng *rand.Rand) {
	t.Helper()
	front, domBy := Front(objs)
	if len(domBy) != len(objs) {
		t.Fatalf("dominatedBy has %d entries for %d points", len(domBy), len(objs))
	}
	onFront := make(map[int]bool, len(front))
	prev := -1
	for _, f := range front {
		if f <= prev {
			t.Fatalf("front indices not sorted ascending: %v", front)
		}
		prev = f
		onFront[f] = true
	}
	for i := range objs {
		if onFront[i] {
			if domBy[i] != -1 {
				t.Errorf("front point %d has dominatedBy %d, want -1", i, domBy[i])
			}
			for j := range objs {
				if j != i && Dominates(objs[j], objs[i]) {
					t.Errorf("front point %d (%v) is dominated by %d (%v)", i, objs[i], j, objs[j])
				}
			}
			continue
		}
		w := domBy[i]
		if w < 0 || w >= len(objs) {
			t.Fatalf("excluded point %d has no front witness (dominatedBy %d)", i, w)
		}
		if !onFront[w] {
			t.Errorf("point %d's witness %d is not on the front", i, w)
		}
		if !Dominates(objs[w], objs[i]) {
			t.Errorf("witness %d (%v) does not dominate point %d (%v)", w, objs[w], i, objs[i])
		}
	}

	// Order invariance: permute, recompute, map back.
	perm := rng.Perm(len(objs))
	shuffled := make([]Objectives, len(objs))
	for newIdx, oldIdx := range perm {
		shuffled[newIdx] = objs[oldIdx]
	}
	permFront, _ := Front(shuffled)
	back := make(map[int]bool, len(permFront))
	for _, f := range permFront {
		back[perm[f]] = true
	}
	if len(back) != len(onFront) {
		t.Fatalf("permuted front has %d points, original %d", len(back), len(onFront))
	}
	for f := range onFront {
		if !back[f] {
			t.Errorf("front point %d missing from the permuted front", f)
		}
	}
}

// randomCloud draws a point cloud with deliberate degeneracies: quantised
// coordinates (so exact ties and duplicates occur) and a slice of
// cost-unknown (+Inf) points.
func randomCloud(rng *rand.Rand, n int) []Objectives {
	objs := make([]Objectives, n)
	for i := range objs {
		objs[i] = Objectives{
			Latency:    float64(rng.Intn(8)) * 2.5,
			Throughput: float64(rng.Intn(8)) * 0.05,
			Cost:       float64(1000 + 500*rng.Intn(6)),
		}
		if rng.Intn(4) == 0 {
			objs[i].Cost = math.Inf(1)
		}
		if rng.Intn(16) == 0 {
			objs[i].Latency = math.Inf(1)
		}
	}
	return objs
}

// TestFrontProperties is the seeded property test: many random clouds, all
// three invariants on each.
func TestFrontProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(20090523))
	for round := 0; round < 200; round++ {
		n := 1 + rng.Intn(60)
		checkFrontInvariants(t, randomCloud(rng, n), rng)
	}
}

// TestFrontEdgeCases covers the degenerate shapes the property loop may not
// emphasise.
func TestFrontEdgeCases(t *testing.T) {
	if f, d := Front(nil); len(f) != 0 || len(d) != 0 {
		t.Errorf("empty input: front %v dominatedBy %v", f, d)
	}
	one := []Objectives{{1, 1, 1}}
	if f, d := Front(one); len(f) != 1 || f[0] != 0 || d[0] != -1 {
		t.Errorf("single point: front %v dominatedBy %v", f, d)
	}
	// All-identical points: everyone ties, everyone is on the front.
	same := []Objectives{{2, 1, 5}, {2, 1, 5}, {2, 1, 5}}
	if f, _ := Front(same); len(f) != 3 {
		t.Errorf("identical points: front %v, want all three", f)
	}
	// A chain: only the best survives, and all witnesses point at it.
	chain := []Objectives{{3, 1, 3}, {2, 1, 2}, {1, 1, 1}}
	f, d := Front(chain)
	if len(f) != 1 || f[0] != 2 {
		t.Fatalf("chain: front %v, want [2]", f)
	}
	if d[0] != 2 || d[1] != 2 || d[2] != -1 {
		t.Errorf("chain: dominatedBy %v, want [2 2 -1]", d)
	}
}

// FuzzFront fuzzes the property invariants: the seed corpus covers the
// interesting shapes and the fuzzer explores the (seed, size) space.
func FuzzFront(f *testing.F) {
	f.Add(int64(1), uint8(3))
	f.Add(int64(20090523), uint8(40))
	f.Add(int64(-9), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		rng := rand.New(rand.NewSource(seed))
		objs := randomCloud(rng, int(n)%64+1)
		checkFrontInvariants(t, objs, rng)
	})
}

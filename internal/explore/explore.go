//quarc:poolfile bounded explore worker pool; deterministic slot-indexed results regardless of schedule
package explore

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"quarc/internal/analytic"
	"quarc/internal/cost"
	"quarc/internal/experiments"
	"quarc/internal/model"
	"quarc/internal/traffic"
)

// McastKnob is one multicast preset of the lattice: Frac of the
// non-broadcast messages become Size-target multicasts. The zero value is
// the unicast/broadcast-only workload.
type McastKnob struct {
	Frac float64
	Size int
}

// Spec is a design-space exploration request: the cross product of the axis
// slices, sharing the scalar workload knobs. Empty Depths means the single
// simulator-default depth; empty Mcast means the single multicast-free
// workload.
type Spec struct {
	Models []string
	Ns     []int
	Rates  []float64
	Depths []int
	Mcast  []McastKnob

	MsgLen      int
	Beta        float64
	Pattern     traffic.Pattern
	HotspotBias float64

	// CostWidth is the payload width (bits) the silicon-cost axis is
	// evaluated at; 0 means the paper's 32-bit reference.
	CostWidth int
}

// costWidth returns the effective cost-axis payload width.
func (s Spec) costWidth() int {
	if s.CostWidth == 0 {
		return 32
	}
	return s.CostWidth
}

// RawPoints is the axis cross product before validation, dedup and
// skipping — the number a size cap should be checked against, computable
// without expanding anything.
func (s Spec) RawPoints() int {
	depths, mcast := len(s.Depths), len(s.Mcast)
	if depths == 0 {
		depths = 1
	}
	if mcast == 0 {
		mcast = 1
	}
	return len(s.Models) * len(s.Ns) * len(s.Rates) * depths * mcast
}

// Point is one lattice point: the axis coordinates plus the normalised
// simulator configuration they expand to.
type Point struct {
	Model     string
	N         int
	Rate      float64
	Depth     int // effective buffer depth (default applied)
	McastFrac float64
	McastSize int
	Cfg       experiments.Config
}

// Skip records a (model, axis-combination) the expansion dropped with the
// reason — an invalid size for the model, or a multicast knob the size
// cannot honour. Skips are part of the deterministic outcome, not errors: a
// cross-product lattice legitimately pairs square-only meshes with ring
// sizes.
type Skip struct {
	Model  string
	N      int
	Reason string
}

// Expansion is the deterministic result of expanding a Spec: the valid
// points in lattice order (model-major, then N, rate, depth, mcast), the
// skipped combinations, and how many duplicate points collapsed.
type Expansion struct {
	Points  []Point
	Skipped []Skip
	Deduped int
}

// Expand validates the axes and expands the lattice. Axis values that make
// the whole request nonsensical (unknown model, non-positive N or rate,
// negative depth, malformed multicast knob) are errors; combinations that
// are invalid only for a particular model or size are skipped with a
// recorded reason. opts supplies the per-point cycle budgets and seed.
func (s Spec) Expand(opts experiments.RunOpts) (Expansion, error) {
	if len(s.Models) == 0 || len(s.Ns) == 0 || len(s.Rates) == 0 {
		return Expansion{}, fmt.Errorf("explore: empty lattice (0 points): models, ns and rates must each have at least one value")
	}
	for _, m := range s.Models {
		if _, ok := model.Lookup(m); !ok {
			return Expansion{}, fmt.Errorf("explore: unknown model %q", m)
		}
	}
	for _, n := range s.Ns {
		if n <= 0 {
			return Expansion{}, fmt.Errorf("explore: n %d must be positive", n)
		}
	}
	for _, r := range s.Rates {
		if r <= 0 || math.IsInf(r, 0) || math.IsNaN(r) {
			return Expansion{}, fmt.Errorf("explore: rate %v must be a positive finite offered load", r)
		}
	}
	for _, d := range s.Depths {
		if d < 0 {
			return Expansion{}, fmt.Errorf("explore: depth %d must be non-negative", d)
		}
	}
	for _, k := range s.Mcast {
		if k.Frac < 0 || k.Frac > 1 {
			return Expansion{}, fmt.Errorf("explore: mcast frac %v outside [0,1]", k.Frac)
		}
		if k.Frac == 0 && k.Size != 0 {
			return Expansion{}, fmt.Errorf("explore: mcast size %d without a fraction", k.Size)
		}
		if k.Frac > 0 && k.Size < 2 {
			return Expansion{}, fmt.Errorf("explore: mcast size %d must be at least 2", k.Size)
		}
	}
	depths := s.Depths
	if len(depths) == 0 {
		depths = []int{opts.Depth}
	}
	mcast := s.Mcast
	if len(mcast) == 0 {
		mcast = []McastKnob{{}}
	}

	var exp Expansion
	seen := make(map[experiments.Config]bool)
	skipSeen := make(map[Skip]bool)
	skip := func(m string, n int, reason string) {
		k := Skip{Model: m, N: n, Reason: reason}
		if !skipSeen[k] {
			skipSeen[k] = true
			exp.Skipped = append(exp.Skipped, k)
		}
	}
	for _, m := range s.Models {
		for _, n := range s.Ns {
			if err := model.CheckSize(m, n); err != nil {
				skip(m, n, err.Error())
				continue
			}
			for _, rate := range s.Rates {
				for _, depth := range depths {
					for _, k := range mcast {
						cfg := experiments.Config{
							Model: m, N: n, MsgLen: s.MsgLen, Beta: s.Beta,
							Rate: rate, Pattern: s.Pattern, HotspotBias: s.HotspotBias,
							McastFrac: k.Frac, McastSize: k.Size, Depth: depth,
							Warmup: opts.Warmup, Measure: opts.Measure, Drain: opts.Drain,
							Seed: opts.Seed,
						}.WithDefaults()
						if err := cfg.ValidateWorkload(); err != nil {
							skip(m, n, err.Error())
							continue
						}
						if seen[cfg] {
							exp.Deduped++
							continue
						}
						seen[cfg] = true
						exp.Points = append(exp.Points, Point{
							Model: cfg.ModelName(), N: n, Rate: rate, Depth: cfg.Depth,
							McastFrac: k.Frac, McastSize: k.Size, Cfg: cfg,
						})
					}
				}
			}
		}
	}
	if len(exp.Points) == 0 {
		return Expansion{}, fmt.Errorf("explore: empty lattice (0 valid points after %d skips)", len(exp.Skipped))
	}
	return exp, nil
}

// pureUnicast reports whether the point's workload is the one the
// analytical model describes: uniform unicast traffic with no collectives.
func (p Point) pureUnicast() bool {
	return p.Cfg.Pattern == traffic.Uniform && p.Cfg.Beta == 0 &&
		p.Cfg.McastFrac == 0 && p.Cfg.HotspotBias == 0
}

// PointOutcome is one evaluated lattice point: the measurement, the
// objective coordinates, the silicon-cost axis, and the analytic prediction
// where the closed-form model applies.
type PointOutcome struct {
	Point
	Result experiments.Result
	// Cached reports whether the evaluator answered from a cache instead of
	// simulating. It is execution provenance, not part of the point's value:
	// canonical result payloads must never encode it.
	Cached bool

	// Latency is the point's objective latency: the mean unicast latency
	// when unicasts were measured, else the mean collective completion
	// latency, else +Inf (nothing measured).
	Latency    float64
	Throughput float64

	// CostSlices is the silicon cost of the whole network (per-switch slices
	// x N) at the spec's cost width. CostKnown is false for models without a
	// calibrated switch model; such points carry Cost = +Inf in objective
	// space — excluded from the cost axis, not dropped.
	CostSlices int
	CostKnown  bool

	// AnalyticLatency is the closed-form mean-latency prediction for this
	// (model, N, rate) under uniform unicast traffic; AnalyticOK reports
	// whether the model covers this network at all. AnalyticErrPc is the
	// signed analytic-vs-simulated error in percent, reported only when the
	// prediction is finite, the workload is pure uniform unicast, and the
	// simulation measured unicast latencies.
	AnalyticLatency float64
	AnalyticOK      bool
	AnalyticErrPc   float64
	AnalyticErrOK   bool
}

// Outcome is a completed exploration: every point in lattice order, the
// Pareto front (sorted point indices) and the dominated-point provenance.
type Outcome struct {
	Points []PointOutcome
	// Front lists the indices (into Points) of the latency/throughput/cost
	// Pareto-optimal points, sorted ascending.
	Front []int
	// DominatedBy[i] is the smallest front index dominating point i, or -1
	// for front members.
	DominatedBy []int
	Skipped     []Skip
	Deduped     int
}

// Evaluator produces the measurement of one lattice point, reporting
// whether it came from a cache. The service layer injects its
// content-addressed result cache here; cmd/quarcexplore simulates directly.
type Evaluator func(ctx context.Context, p Point) (experiments.Result, bool, error)

// OnPoint observes one completed point evaluation: its index in the
// expansion's lattice order, the point, the result and whether it was
// cached. Called concurrently from evaluation workers.
type OnPoint func(i int, p Point, res experiments.Result, cached bool)

// objectives derives a point's objective coordinates from its measurement
// and cost axis.
func objectives(o PointOutcome) Objectives {
	lat := math.Inf(1)
	switch {
	case o.Result.UnicastCount > 0:
		lat = o.Result.UnicastMean
	case o.Result.BcastCount > 0:
		lat = o.Result.BcastMean
	}
	c := math.Inf(1)
	if o.CostKnown {
		c = float64(o.CostSlices)
	}
	return Objectives{Latency: lat, Throughput: o.Result.Throughput, Cost: c}
}

// evalOrder returns the point indices sorted most-promising-first: ascending
// analytic mean-latency prediction (unknown and saturated predictions last),
// ties broken by lattice order. Cancelling an exploration mid-flight
// therefore still leaves the likely front members evaluated.
func evalOrder(points []Point) []int {
	rank := make([]float64, len(points))
	for i, p := range points {
		rank[i] = math.Inf(1)
		if pred, ok := analytic.ForModel(p.Model, p.N, p.Cfg.MsgLen, p.Rate); ok {
			rank[i] = pred.MeanLatency
		}
	}
	order := make([]int, len(points))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := rank[order[a]], rank[order[b]]
		if ra != rb {
			// A NaN-free total order: +Inf ties fall through to lattice order.
			return ra < rb
		}
		return order[a] < order[b]
	})
	return order
}

// Run expands the spec and evaluates every point through eval, fanning the
// evaluations across workers goroutines (min 1) in analytic-promise order,
// then assembles the Pareto front. A cancelled ctx stops scheduling new
// points and returns ctx.Err(); the deterministic Outcome is only returned
// on full completion, so cached payloads are always pure functions of the
// spec.
func Run(ctx context.Context, spec Spec, opts experiments.RunOpts, workers int, eval Evaluator, onPoint OnPoint) (Outcome, error) {
	exp, err := spec.Expand(opts)
	if err != nil {
		return Outcome{}, err
	}
	out := Outcome{Skipped: exp.Skipped, Deduped: exp.Deduped}
	out.Points = make([]PointOutcome, len(exp.Points))

	order := evalOrder(exp.Points)
	if workers < 1 {
		workers = 1
	}
	if workers > len(order) {
		workers = len(order)
	}
	errs := make([]error, len(exp.Points))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				oi := int(next.Add(1)) - 1
				if oi >= len(order) {
					return
				}
				i := order[oi]
				p := exp.Points[i]
				res, cached, err := eval(ctx, p)
				if err != nil {
					errs[i] = err
					continue
				}
				out.Points[i] = PointOutcome{Point: p, Result: res, Cached: cached}
				if onPoint != nil {
					onPoint(i, p, res, cached)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return Outcome{}, err
	}
	for _, e := range errs {
		if e != nil {
			return Outcome{}, e
		}
	}

	width := spec.costWidth()
	objs := make([]Objectives, len(out.Points))
	for i := range out.Points {
		o := &out.Points[i]
		o.CostSlices, o.CostKnown = cost.NetworkSlices(o.Model, o.N, width)
		if pred, ok := analytic.ForModel(o.Model, o.N, o.Cfg.MsgLen, o.Rate); ok {
			o.AnalyticOK = true
			o.AnalyticLatency = pred.MeanLatency
			if !math.IsInf(pred.MeanLatency, 1) && o.pureUnicast() && o.Result.UnicastCount > 0 && o.Result.UnicastMean > 0 {
				o.AnalyticErrPc = 100 * (pred.MeanLatency - o.Result.UnicastMean) / o.Result.UnicastMean
				o.AnalyticErrOK = true
			}
		}
		lat := objectives(*o)
		o.Latency, o.Throughput = lat.Latency, lat.Throughput
		objs[i] = lat
	}
	out.Front, out.DominatedBy = Front(objs)
	return out, nil
}

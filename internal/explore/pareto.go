// Package explore is the design-space exploration engine: it expands a
// parameter lattice (model set x network size x offered rate x buffer depth
// x multicast knobs) into concrete simulation configurations, evaluates
// every point through a pluggable evaluator (the service layer injects its
// result cache; the CLI simulates directly), orders the evaluation by the
// analytical latency model so the most promising points complete first, and
// returns the latency/throughput/cost Pareto front with full dominated-point
// provenance.
//
// The paper's central claim is itself a design-space argument — the Quarc
// beats the Spidergon on collective latency at comparable silicon cost
// (Table 1, Fig 12) — and this package turns that one-off comparison into a
// searchable surface: POST /v1/explore serves it, cmd/quarcexplore drives it
// locally.
package explore

// Objectives is one candidate's position in the explored objective space.
// Latency and Cost are minimised, Throughput is maximised. A point whose
// silicon cost is unknown (its model has no calibrated switch model) carries
// Cost = +Inf: it can never win a comparison on the cost axis, but it still
// competes — and can sit on the front — through latency and throughput
// alone. Using +Inf rather than treating cost as incomparable keeps
// dominance a strict partial order (componentwise comparison over the
// extended reals is transitive), which is what guarantees every excluded
// point is dominated by a member of the returned front.
type Objectives struct {
	Latency    float64 // cycles; minimise (+Inf when the point measured nothing)
	Throughput float64 // delivered flits/node/cycle; maximise
	Cost       float64 // switch slices for the whole network; minimise (+Inf when unknown)
}

// Dominates reports whether a is at least as good as b in every objective
// and strictly better in at least one. Two points with identical objectives
// (including two cost-unknown points tied on +Inf) do not dominate each
// other, so exact ties coexist on the front.
func Dominates(a, b Objectives) bool {
	if a.Latency > b.Latency || a.Throughput < b.Throughput || a.Cost > b.Cost {
		return false
	}
	return a.Latency < b.Latency || a.Throughput > b.Throughput || a.Cost < b.Cost
}

// Front computes the Pareto-optimal subset of objs. It returns the front as
// sorted input indices, plus per-point provenance: dominatedBy[i] is the
// smallest front index that dominates point i, or -1 for front members.
// Because dominance is transitive, every dominated point has such a front
// witness; and because both outputs are defined purely by pairwise
// comparisons and input positions, the front set is invariant to input
// order (a permuted input yields the same set under the permutation).
func Front(objs []Objectives) (front []int, dominatedBy []int) {
	n := len(objs)
	dominatedBy = make([]int, n)
	onFront := make([]bool, n)
	for i := range objs {
		dominatedBy[i] = -1
		onFront[i] = true
		for j := range objs {
			if j != i && Dominates(objs[j], objs[i]) {
				onFront[i] = false
				break
			}
		}
	}
	front = make([]int, 0, n)
	for i, ok := range onFront {
		if ok {
			front = append(front, i)
		}
	}
	for i := range objs {
		if onFront[i] {
			continue
		}
		for _, f := range front {
			if Dominates(objs[f], objs[i]) {
				dominatedBy[i] = f
				break
			}
		}
	}
	return front, dominatedBy
}

package flit

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPacketStructure(t *testing.T) {
	h := Flit{Src: 3, Dst: 9, Traffic: Unicast, PktID: 42, MsgID: 7, Gen: 100}
	for _, n := range []int{2, 3, 8, 16, 32} {
		p := Packet(h, n)
		if len(p) != n {
			t.Fatalf("Packet length %d, want %d", len(p), n)
		}
		if err := Validate(p); err != nil {
			t.Fatalf("Validate(%d flits): %v", n, err)
		}
		if p[0].Kind != Header || p[n-1].Kind != Tail {
			t.Fatalf("packet ends are %v/%v", p[0].Kind, p[n-1].Kind)
		}
		for i := 1; i < n-1; i++ {
			if p[i].Kind != Body {
				t.Fatalf("flit %d is %v, want body", i, p[i].Kind)
			}
		}
		for i, f := range p {
			if f.Gen != 100 || f.MsgID != 7 || f.PktID != 42 {
				t.Fatalf("flit %d lost metadata: %+v", i, f)
			}
		}
	}
}

func TestPacketTooShortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Packet(h, 1) did not panic")
		}
	}()
	Packet(Flit{}, 1)
}

func TestValidateRejectsCorruption(t *testing.T) {
	base := func() []Flit { return Packet(Flit{Src: 1, Dst: 2, PktID: 5}, 4) }

	cases := []struct {
		name   string
		mutate func(p []Flit)
		want   string
	}{
		{"header not first", func(p []Flit) { p[0].Kind = Body }, "want header"},
		{"tail missing", func(p []Flit) { p[3].Kind = Body }, "want tail"},
		{"body wrong kind", func(p []Flit) { p[1].Kind = Tail }, "want body"},
		{"bad seq", func(p []Flit) { p[2].Seq = 9 }, "Seq"},
		{"pktid mismatch", func(p []Flit) { p[1].PktID = 99 }, "PktID"},
		{"bad len", func(p []Flit) { p[0].PktLen = 3 }, "PktLen"},
	}
	for _, tc := range cases {
		p := base()
		tc.mutate(p)
		err := Validate(p)
		if err == nil {
			t.Errorf("%s: Validate accepted corrupted packet", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestKindAndTrafficStrings(t *testing.T) {
	if Header.String() != "header" || Body.String() != "body" || Tail.String() != "tail" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(9).String() == "" || Traffic(7).String() == "" {
		t.Fatal("unknown values must still produce a string")
	}
	for tr, want := range map[Traffic]string{
		Unicast: "unicast", Multicast: "multicast",
		Broadcast: "broadcast", BcastChain: "bcast-chain",
	} {
		if tr.String() != want {
			t.Fatalf("Traffic(%d).String() = %q, want %q", tr, tr, want)
		}
	}
}

func TestWireRoundTripHeader(t *testing.T) {
	f := Flit{Kind: Header, Traffic: Broadcast, Src: 13, Dst: 62, PktLen: 17, Remain: 31}
	w, err := EncodeWire(f)
	if err != nil {
		t.Fatal(err)
	}
	if w&^WireMask != 0 {
		t.Fatalf("encoded word %#x exceeds 34 bits", w)
	}
	g, err := DecodeWire(w)
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind != f.Kind || g.Traffic != f.Traffic || g.Src != f.Src ||
		g.Dst != f.Dst || g.PktLen != f.PktLen || g.Remain != f.Remain {
		t.Fatalf("round trip mismatch: %+v vs %+v", f, g)
	}
}

func TestWireRoundTripBody(t *testing.T) {
	f := Flit{Kind: Body, Payload: 0xDEADBEEF}
	w, err := EncodeWire(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := DecodeWire(w)
	if err != nil {
		t.Fatal(err)
	}
	if g.Payload != f.Payload || g.Kind != Body {
		t.Fatalf("round trip mismatch: %+v vs %+v", f, g)
	}
}

func TestWireHeaderFieldRanges(t *testing.T) {
	bad := []Flit{
		{Kind: Header, Dst: 64, PktLen: 4},
		{Kind: Header, Dst: -1, PktLen: 4},
		{Kind: Header, Src: 64, PktLen: 4},
		{Kind: Header, PktLen: 1},
		{Kind: Header, PktLen: 64},
		{Kind: Header, PktLen: 4, Remain: 256},
	}
	for i, f := range bad {
		if _, err := EncodeWire(f); err == nil {
			t.Errorf("case %d: EncodeWire accepted out-of-range flit %+v", i, f)
		}
	}
}

func TestDecodeWireRejectsWideWord(t *testing.T) {
	if _, err := DecodeWire(uint64(1) << 34); err == nil {
		t.Fatal("DecodeWire accepted a 35-bit word")
	}
}

func TestDecodeWireRejectsBadType(t *testing.T) {
	if _, err := DecodeWire(3); err == nil { // type bits 0b11 are reserved
		t.Fatal("DecodeWire accepted reserved flit type")
	}
}

// Property: every header flit with in-range fields round-trips exactly.
func TestWireRoundTripProperty(t *testing.T) {
	check := func(src, dst, plen, remain uint8, tr uint8) bool {
		f := Flit{
			Kind:    Header,
			Traffic: Traffic(tr % 4),
			Src:     int(src % MaxNodes),
			Dst:     int(dst % MaxNodes),
			PktLen:  int(plen%(MaxPktLen-1)) + 2,
			Remain:  int(remain),
		}
		w, err := EncodeWire(f)
		if err != nil {
			return false
		}
		g, err := DecodeWire(w)
		if err != nil {
			return false
		}
		return g.Kind == f.Kind && g.Traffic == f.Traffic && g.Src == f.Src &&
			g.Dst == f.Dst && g.PktLen == f.PktLen && g.Remain == f.Remain
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: every body payload round-trips exactly.
func TestWireBodyPayloadProperty(t *testing.T) {
	check := func(payload uint32, tail bool) bool {
		k := Body
		if tail {
			k = Tail
		}
		w, err := EncodeWire(Flit{Kind: k, Payload: payload})
		if err != nil {
			return false
		}
		g, err := DecodeWire(w)
		if err != nil {
			return false
		}
		return g.Payload == payload && g.Kind == k
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodePacketMulticastBitstring(t *testing.T) {
	h := Flit{Src: 0, Dst: 15, Traffic: Multicast, Bits: 0xABCD_EF01_2345_6789, PktID: 1}
	p := Packet(h, 8)
	words, err := EncodePacket(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 8 {
		t.Fatalf("encoded %d words, want 8", len(words))
	}
	q, err := DecodePacket(words)
	if err != nil {
		t.Fatal(err)
	}
	if q[0].Bits != h.Bits {
		t.Fatalf("bitstring lost: %#x, want %#x", q[0].Bits, h.Bits)
	}
	if q[0].Traffic != Multicast || q[0].Src != 0 || q[0].Dst != 15 {
		t.Fatalf("header fields lost: %+v", q[0])
	}
}

func TestEncodePacketUnicastRoundTrip(t *testing.T) {
	h := Flit{Src: 5, Dst: 10, Traffic: Unicast, PktID: 9}
	p := Packet(h, 4)
	words, err := EncodePacket(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := DecodePacket(words)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(q); err != nil {
		t.Fatalf("decoded packet invalid: %v", err)
	}
	for i := range q {
		if q[i].Kind != p[i].Kind {
			t.Fatalf("flit %d kind %v, want %v", i, q[i].Kind, p[i].Kind)
		}
	}
}

func TestDecodePacketErrors(t *testing.T) {
	if _, err := DecodePacket([]uint64{1}); err == nil {
		t.Fatal("accepted one-word packet")
	}
	// Body flit first.
	bw, _ := EncodeWire(Flit{Kind: Body, Payload: 1})
	if _, err := DecodePacket([]uint64{bw, bw}); err == nil {
		t.Fatal("accepted packet starting with body flit")
	}
	// Header with wrong length field.
	hw, _ := EncodeWire(Flit{Kind: Header, PktLen: 5, Traffic: Unicast})
	tw, _ := EncodeWire(Flit{Kind: Tail})
	if _, err := DecodePacket([]uint64{hw, tw}); err == nil {
		t.Fatal("accepted packet with wrong PktLen")
	}
}

func BenchmarkEncodeWire(b *testing.B) {
	f := Flit{Kind: Header, Traffic: Broadcast, Src: 1, Dst: 2, PktLen: 16}
	for i := 0; i < b.N; i++ {
		if _, err := EncodeWire(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPacketAssembly(b *testing.B) {
	h := Flit{Src: 3, Dst: 9, Traffic: Unicast}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Packet(h, 16)
	}
}

package flit

import (
	"encoding/binary"
	"testing"
)

// FuzzEncodeDecodeWire holds the 34-bit codec to an exact round trip: any
// word the decoder accepts must re-encode to the identical word, and any
// word it rejects must produce an error, never a panic.
func FuzzEncodeDecodeWire(f *testing.F) {
	seed := []Flit{
		{Kind: Header, Traffic: Unicast, Src: 3, Dst: 9, PktLen: 4},
		{Kind: Header, Traffic: Broadcast, Src: 13, Dst: 62, PktLen: 17, Remain: 31},
		{Kind: Header, Traffic: BcastChain, Src: 1, Dst: 2, PktLen: 2, Remain: 255, ChainCCW: true},
		{Kind: Header, Traffic: Multicast, Src: 0, Dst: 15, PktLen: 8},
		{Kind: Body, Payload: 0xDEADBEEF},
		{Kind: Tail, Payload: 0xFFFFFFFF},
	}
	for _, fl := range seed {
		w, err := EncodeWire(fl)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(w)
	}
	f.Add(uint64(3))                 // reserved flit type
	f.Add(uint64(1) << 34)           // too wide
	f.Add(uint64(1) | uint64(1)<<29) // reserved header bit
	f.Fuzz(func(t *testing.T, w uint64) {
		fl, err := DecodeWire(w)
		if err != nil {
			return // rejected without panicking: fine
		}
		w2, err := EncodeWire(fl)
		if err != nil {
			t.Fatalf("decoded %#x to %+v but cannot re-encode: %v", w, fl, err)
		}
		if w2 != w {
			t.Fatalf("round trip %#x -> %+v -> %#x", w, fl, w2)
		}
	})
}

// wordsOf reassembles the fuzzer's byte soup into wire words (8 bytes each,
// little-endian; a trailing partial word is dropped).
func wordsOf(data []byte) []uint64 {
	words := make([]uint64, 0, len(data)/8)
	for len(data) >= 8 {
		words = append(words, binary.LittleEndian.Uint64(data[:8]))
		data = data[8:]
	}
	return words
}

func bytesOf(words []uint64) []byte {
	out := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(out[8*i:], w)
	}
	return out
}

// FuzzDecodePacket drives the packet decoder with arbitrary word sequences:
// malformed packets must be rejected without panics, and any packet that
// decodes must pass Validate, carry a reassembled multicast bitstring, and
// re-encode to exactly the input words.
func FuzzDecodePacket(f *testing.F) {
	for _, p := range [][]Flit{
		Packet(Flit{Src: 5, Dst: 10, Traffic: Unicast}, 4),
		Packet(Flit{Src: 0, Dst: 15, Traffic: Multicast, Bits: 0xABCD_EF01_2345_6789}, 8),
		Packet(Flit{Src: 0, Dst: 1, Traffic: Multicast, Bits: 0x5}, 2),
		Packet(Flit{Src: 7, Dst: 0, Traffic: Broadcast}, 16),
		Packet(Flit{Src: 2, Dst: 3, Traffic: BcastChain, Remain: 9, ChainCCW: true}, 3),
	} {
		words, err := EncodePacket(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(bytesOf(words))
	}
	f.Add([]byte{1, 2, 3}) // partial word
	f.Fuzz(func(t *testing.T, data []byte) {
		words := wordsOf(data)
		p, err := DecodePacket(words)
		if err != nil {
			return // rejected without panicking: fine
		}
		if err := Validate(p); err != nil {
			t.Fatalf("decoded packet fails Validate: %v", err)
		}
		words2, err := EncodePacket(p)
		if err != nil {
			t.Fatalf("decoded packet cannot re-encode: %v", err)
		}
		if len(words2) != len(words) {
			t.Fatalf("re-encoded %d words, want %d", len(words2), len(words))
		}
		for i := range words {
			if words[i] != words2[i] {
				t.Fatalf("word %d: round trip %#x -> %#x", i, words[i], words2[i])
			}
		}
	})
}

package flit

import "fmt"

// Wire encoding of the 34-bit flit (paper Fig 7), packed into the low 34
// bits of a uint64.
//
//	bits [1:0]   flit type (Body=0, Header=1, Tail=2)
//	body/tail:
//	bits [33:2]  32-bit payload
//	header:
//	bits [7:2]   destination node (6 bits; the paper assumes N <= 64, §2.6)
//	bits [13:8]  source node
//	bits [19:14] packet length in flits (up to 63)
//	bits [27:20] chain remaining-count (BcastChain) or low PktID bits
//	bit  [28]    chain direction (BcastChain: 1 = counter-clockwise)
//	bits [30:29] reserved
//	bits [33:31] traffic type (unicast/multicast/broadcast/bcast-chain)
//
// Multicast packets carry their bitstring in the payloads of the first one
// or two body flits ("multi flit headers", §2.6): flit 1 carries bits 0..31,
// flit 2 (present when N > 32) carries bits 32..63.
const (
	WireBits = 34
	WireMask = (uint64(1) << WireBits) - 1

	// MaxNodes is the largest network the single-flit header can address.
	MaxNodes = 64
	// MaxPktLen is the largest packet length the header length field holds.
	MaxPktLen = 63
)

// EncodeWire packs a flit into its 34-bit wire representation.
func EncodeWire(f Flit) (uint64, error) {
	w := uint64(f.Kind) & 0x3
	if f.Kind == Header {
		if f.Dst < 0 || f.Dst >= MaxNodes {
			return 0, fmt.Errorf("flit: destination %d does not fit 6 bits", f.Dst)
		}
		if f.Src < 0 || f.Src >= MaxNodes {
			return 0, fmt.Errorf("flit: source %d does not fit 6 bits", f.Src)
		}
		if f.PktLen < 2 || f.PktLen > MaxPktLen {
			return 0, fmt.Errorf("flit: packet length %d does not fit", f.PktLen)
		}
		if f.Remain < 0 || f.Remain > 255 {
			return 0, fmt.Errorf("flit: chain count %d does not fit 8 bits", f.Remain)
		}
		if f.Traffic > BcastChain {
			return 0, fmt.Errorf("flit: invalid traffic type %d", f.Traffic)
		}
		w |= uint64(f.Dst) << 2
		w |= uint64(f.Src) << 8
		w |= uint64(f.PktLen) << 14
		w |= uint64(f.Remain) << 20
		if f.ChainCCW {
			w |= 1 << 28
		}
		w |= uint64(f.Traffic) << 31
	} else {
		w |= uint64(f.Payload) << 2
	}
	return w & WireMask, nil
}

// DecodeWire unpacks a 34-bit wire word. Only wire-visible fields are
// populated; simulator metadata (MsgID, Gen, ...) is zero.
//
// The decoder accepts exactly the words EncodeWire can produce: malformed
// words — wider than 34 bits, reserved flit type, reserved header bits set,
// out-of-range traffic type or a packet length the format forbids — are
// rejected with an error, never a panic, so DecodeWire(w) == f implies
// EncodeWire(f) == w (the fuzz harness holds the codec to this).
func DecodeWire(w uint64) (Flit, error) {
	if w&^WireMask != 0 {
		return Flit{}, fmt.Errorf("flit: word %#x wider than 34 bits", w)
	}
	var f Flit
	k := Kind(w & 0x3)
	if k != Body && k != Header && k != Tail {
		return Flit{}, fmt.Errorf("flit: invalid flit type %d", k)
	}
	f.Kind = k
	if k == Header {
		if w>>29&0x3 != 0 {
			return Flit{}, fmt.Errorf("flit: reserved header bits set in %#x", w)
		}
		f.Dst = int(w >> 2 & 0x3F)
		f.Src = int(w >> 8 & 0x3F)
		f.PktLen = int(w >> 14 & 0x3F)
		if f.PktLen < 2 {
			return Flit{}, fmt.Errorf("flit: header packet length %d < 2", f.PktLen)
		}
		f.Remain = int(w >> 20 & 0xFF)
		f.ChainCCW = w>>28&1 != 0
		f.Traffic = Traffic(w >> 31 & 0x7)
		if f.Traffic > BcastChain {
			return Flit{}, fmt.Errorf("flit: invalid traffic type %d", f.Traffic)
		}
	} else {
		f.Payload = uint32(w >> 2)
	}
	return f, nil
}

// EncodePacket encodes a whole packet to wire words, embedding the multicast
// bitstring into the first body flits as described above.
func EncodePacket(p []Flit) ([]uint64, error) {
	if err := Validate(p); err != nil {
		return nil, err
	}
	out := make([]uint64, len(p))
	for i, f := range p {
		if p[0].Traffic == Multicast {
			switch i {
			case 1:
				f.Payload = uint32(p[0].Bits)
			case 2:
				f.Payload = uint32(p[0].Bits >> 32)
			}
		}
		w, err := EncodeWire(f)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}

// DecodePacket reverses EncodePacket, reassembling the multicast bitstring.
// Packets shorter than 3 flits can carry at most 32 bitstring bits.
//
// Beyond per-word validity it enforces the packet structure of §2.6 — a
// header first, a tail last, bodies in between, and a header length field
// matching the word count — so a successful decode always yields a packet
// that Validate accepts and EncodePacket turns back into the same words.
func DecodePacket(words []uint64) ([]Flit, error) {
	if len(words) < 2 {
		return nil, fmt.Errorf("flit: packet of %d words, need at least 2", len(words))
	}
	p := make([]Flit, len(words))
	for i, w := range words {
		f, err := DecodeWire(w)
		if err != nil {
			return nil, err
		}
		f.Seq = i
		p[i] = f
	}
	h := &p[0]
	if h.Kind != Header {
		return nil, fmt.Errorf("flit: first word is %v, want header", p[0].Kind)
	}
	if h.PktLen != len(words) {
		return nil, fmt.Errorf("flit: header PktLen %d != %d words", h.PktLen, len(words))
	}
	for i := 1; i < len(p); i++ {
		switch {
		case i == len(p)-1:
			if p[i].Kind != Tail {
				return nil, fmt.Errorf("flit: last word is %v, want tail", p[i].Kind)
			}
		default:
			if p[i].Kind != Body {
				return nil, fmt.Errorf("flit: word %d is %v, want body", i, p[i].Kind)
			}
		}
	}
	if h.Traffic == Multicast {
		h.Bits = uint64(p[1].Payload)
		if len(p) > 2 {
			h.Bits |= uint64(p[2].Payload) << 32
		}
	}
	for i := 1; i < len(p); i++ {
		p[i].Src, p[i].Dst = h.Src, h.Dst
		p[i].Traffic = h.Traffic
		p[i].PktLen = h.PktLen
	}
	return p, nil
}

// Package flit defines the flit and packet formats of the Quarc NoC
// (paper §2.6, Fig 7) and the in-simulator representation used by the
// fabric.
//
// A wormhole packet is a sequence of flits: one header, zero or more body
// flits, and one tail. On the wire a flit is 34 bits: a 32-bit payload plus
// the 2-bit flit type added by the transceiver's write controller (§2.4).
// Header flits carry the traffic type in their top 3 bits. The simulator
// moves Flit structs (which carry bookkeeping such as generation timestamps)
// but the 34-bit wire encoding is implemented and tested so that the format
// is a faithful, executable specification.
package flit

import "fmt"

// Kind is the 2-bit flit type in bits [1:0] of the wire format.
type Kind uint8

const (
	Body   Kind = 0 // payload flit following its header
	Header Kind = 1 // first flit; carries route and traffic type
	Tail   Kind = 2 // last flit; releases switch state along the path
)

func (k Kind) String() string {
	switch k {
	case Body:
		return "body"
	case Header:
		return "header"
	case Tail:
		return "tail"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Traffic is the 3-bit traffic type carried in the top bits of a header flit
// (paper Fig 7: unicast, multicast, broadcast). BcastChain is the
// broadcast-by-unicast packet used by the Spidergon baseline: a unicast whose
// receiving switch must deliver it locally, rewrite the header and retransmit
// it to the next node (paper §2.2).
type Traffic uint8

const (
	Unicast    Traffic = 0
	Multicast  Traffic = 1
	Broadcast  Traffic = 2
	BcastChain Traffic = 3
)

func (t Traffic) String() string {
	switch t {
	case Unicast:
		return "unicast"
	case Multicast:
		return "multicast"
	case Broadcast:
		return "broadcast"
	case BcastChain:
		return "bcast-chain"
	}
	return fmt.Sprintf("Traffic(%d)", uint8(t))
}

// Flit is the unit moved by the fabric. Fields beyond the wire format
// (MsgID, timestamps, chain bookkeeping) are simulator-side metadata the
// hardware would keep in per-packet state or derive from the payload.
type Flit struct {
	Kind    Kind
	Traffic Traffic // valid on header flits
	Src     int     // source node (header)
	Dst     int     // destination node: for broadcast/multicast branches this
	// is the *last* node of the branch per BRCP routing (§2.5.2)
	Seq      int    // flit index within the packet; 0 is the header
	PktLen   int    // total flits in the packet (header carries it)
	PktID    uint64 // unique per packet (per broadcast branch)
	MsgID    uint64 // unique per message (shared by branches of a broadcast)
	Bits     uint64 // multicast bitstring: bit i = node at hop distance i+1 is a target
	Payload  uint32 // data word (body/tail)
	Remain   int    // BcastChain: how many nodes are still to be served after this one
	ChainCCW bool   // BcastChain: chain travels counter-clockwise
	Gen      int64  // cycle the message was generated (for latency stats)
}

// IsLast reports whether this flit terminates its packet.
func (f Flit) IsLast() bool { return f.Kind == Tail }

// Packet assembles the flits of a packet. A packet always has a header and a
// tail (paper §2.6: "Each packet must have the header and tail flits"), so
// the minimum length is 2. The returned slice aliases no shared state.
func Packet(h Flit, length int) []Flit {
	return AppendPacket(nil, h, length)
}

// AppendPacket assembles a packet into dst (which must be empty but may
// carry reusable capacity) and returns the extended slice. Every element is
// fully overwritten, so recycled storage never leaks state between packets;
// the source-queue free lists in internal/network use it to keep message
// injection allocation-free in steady state.
func AppendPacket(dst []Flit, h Flit, length int) []Flit {
	if length < 2 {
		panic("flit: packet length must be at least 2 (header + tail)")
	}
	h.Kind = Header
	h.Seq = 0
	h.PktLen = length
	dst = append(dst, h)
	for i := 1; i < length; i++ {
		f := h
		f.Kind = Body
		f.Seq = i
		f.Payload = uint32(i)
		if i == length-1 {
			f.Kind = Tail
		}
		dst = append(dst, f)
	}
	return dst
}

// Validate checks the structural invariants of a packet: header first, tail
// last, bodies in between, consistent identity fields and sequence numbers.
func Validate(p []Flit) error {
	if len(p) < 2 {
		return fmt.Errorf("flit: packet of %d flits, need at least 2", len(p))
	}
	h := p[0]
	if h.Kind != Header {
		return fmt.Errorf("flit: first flit is %v, want header", h.Kind)
	}
	if h.PktLen != len(p) {
		return fmt.Errorf("flit: header PktLen %d != packet length %d", h.PktLen, len(p))
	}
	for i, f := range p {
		if f.Seq != i {
			return fmt.Errorf("flit: flit %d has Seq %d", i, f.Seq)
		}
		if f.PktID != h.PktID {
			return fmt.Errorf("flit: flit %d PktID mismatch", i)
		}
		switch {
		case i == 0:
			// already checked
		case i == len(p)-1:
			if f.Kind != Tail {
				return fmt.Errorf("flit: last flit is %v, want tail", f.Kind)
			}
		default:
			if f.Kind != Body {
				return fmt.Errorf("flit: flit %d is %v, want body", i, f.Kind)
			}
		}
	}
	return nil
}

// Validation of the analytical latency models against the flit-level
// simulator, reproducing the paper's §3.2 methodology ("verified
// extensively against analytical models for the Spidergon and mesh
// topologies employing wormhole routing"). The suite lives in package
// analytic_test because it drives the simulator through
// internal/experiments, which itself imports this package.
package analytic_test

import (
	"context"
	"math"
	"testing"

	"quarc/internal/analytic"
	"quarc/internal/experiments"
)

// TestAnalyticMatchesSimulationAtLowLoad runs each closed-form model's
// topology at a low uniform-unicast load and requires the predicted mean
// latency to agree with the simulated mean.
//
// Measured error bound (N=16, M=16 flits, lambda=0.005 msgs/node/cycle,
// warmup 1000 / measure 8000 / drain 20000, seed 20090523, 2 replicates):
// quarc +2.3%, spidergon +0.1%, mesh +6.0%, torus +2.5% — the M/D/1
// channel model is mildly pessimistic everywhere (it ignores the wormhole
// pipeline's partial overlap of waiting and transmission), with the mesh
// worst because XY routing concentrates its centre channels. The asserted
// tolerance is 10% — looser than the measured errors so seed jitter cannot
// flake the suite, but tight enough that a routing or queueing regression
// in either the simulator or the model trips it.
func TestAnalyticMatchesSimulationAtLowLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("simulating four panels is not short")
	}
	const (
		n         = 16
		msgLen    = 16
		lambda    = 0.005
		tolerance = 10.0 // percent
	)
	for _, model := range []string{"quarc", "spidergon", "mesh", "torus"} {
		model := model
		t.Run(model, func(t *testing.T) {
			t.Parallel()
			pred, ok := analytic.ForModel(model, n, msgLen, lambda)
			if !ok {
				t.Fatalf("no analytical model for %s at n=%d", model, n)
			}
			if math.IsInf(pred.MeanLatency, 1) {
				t.Fatalf("%s predicted saturated at lambda=%g (max util %.3f)", model, lambda, pred.MaxChannelUtil)
			}
			cfg := experiments.Config{
				Model: model, N: n, MsgLen: msgLen, Rate: lambda,
				Warmup: 1000, Measure: 8000, Drain: 20000, Seed: 20090523,
			}.WithDefaults()
			sim, _, err := experiments.RunReplicatedContext(context.Background(), cfg, 2, 1, nil)
			if err != nil {
				t.Fatalf("simulate: %v", err)
			}
			if sim.UnicastCount == 0 {
				t.Fatal("simulation measured no unicasts")
			}
			errPc := 100 * (pred.MeanLatency - sim.UnicastMean) / sim.UnicastMean
			t.Logf("%s: analytic %.2f vs simulated %.2f cycles (%+.1f%%, zero-load %.2f, avg hops %.2f)",
				model, pred.MeanLatency, sim.UnicastMean, errPc, pred.ZeroLoadLatency, pred.AvgHops)
			if math.Abs(errPc) > tolerance {
				t.Errorf("%s: analytic-vs-simulated error %+.1f%% exceeds the %.0f%% bound",
					model, errPc, tolerance)
			}
			// The prediction can never undercut its own zero-load floor, and at
			// this load the network must be far from the capacity bound.
			if pred.MeanLatency < pred.ZeroLoadLatency {
				t.Errorf("%s: mean latency %.2f below the zero-load floor %.2f", model, pred.MeanLatency, pred.ZeroLoadLatency)
			}
			if lambda > 0.5*pred.SaturationRate {
				t.Errorf("%s: lambda %g is not low load (saturation %g)", model, lambda, pred.SaturationRate)
			}
		})
	}
}

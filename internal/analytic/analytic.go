// Package analytic implements analytical latency models for wormhole-routed
// Quarc, Spidergon and mesh networks under uniform traffic.
//
// The paper verified its OMNeT++ simulator "extensively against analytical
// models for the Spidergon and mesh topologies employing wormhole routing"
// (§3.2, ref [8]). This package provides the same cross-check for this
// repository's simulator:
//
//   - exact average hop counts and zero-load latency (avg hops + M) from
//     full path enumeration;
//   - per-channel arrival rates from routing-aware path enumeration, giving
//     channel utilisations, an M/D/1 waiting-time approximation per channel
//     and a mean latency prediction valid at low to moderate load;
//   - the channel-capacity saturation bound (the offered load at which the
//     busiest channel reaches unit utilisation);
//   - closed-form broadcast completion estimates: pipelined BRCP broadcast
//     for the Quarc (diameter + M) versus the store-and-forward unicast
//     chain of the Spidergon (about (N/2)(M + c)).
//
// The integration tests in this package run the flit-level simulator at low
// load and require agreement with these models, reproducing the paper's
// verification methodology.
package analytic

import (
	"fmt"
	"math"

	"quarc/internal/topology"
)

// ErrorBand is the relative error envelope of these closed-form predictions
// against the flit-level simulator, as pinned by this package's validation
// suite: every covered topology agrees within 10% at low load (measured
// +0.1%..+6.0%). Degraded serving answers quote it so clients know how far
// an analytic estimate may sit from the simulated truth.
const ErrorBand = 0.10

// Prediction is the analytical summary for a topology/workload pair.
type Prediction struct {
	N               int
	MsgLen          int
	Lambda          float64 // offered messages/node/cycle
	AvgHops         float64
	ZeroLoadLatency float64 // avg hops + M
	MeanLatency     float64 // with M/D/1 channel waiting
	MaxChannelUtil  float64
	SaturationRate  float64 // lambda at which the busiest channel saturates
}

// pathFunc enumerates the channel ids used by the route s -> d.
type pathFunc func(s, d int) []int

// endpoints describes the adapter-side channels: how many injection queues
// share the node's offered load, and whether ejection is a shared arbitrated
// port (Spidergon, mesh) or dedicated per input (Quarc all-port).
type endpoints struct {
	injChannels int
	sharedEject bool
}

// analyze runs the generic channel-level model.
func analyze(n, msgLen int, lambda float64, numChannels int, paths pathFunc, ep endpoints) Prediction {
	if msgLen < 2 {
		panic("analytic: message length must be at least 2")
	}
	count := make([]float64, numChannels) // pair traversals per channel
	totHops := 0
	pairs := 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			p := paths(s, d)
			totHops += len(p)
			pairs++
			for _, ch := range p {
				count[ch]++
			}
		}
	}
	avgHops := float64(totHops) / float64(pairs)

	// Channel message rate: each node offers lambda msgs/cycle uniformly
	// over n-1 destinations.
	svc := float64(msgLen) // flit-cycles a message occupies a channel
	rho := make([]float64, numChannels)
	wait := make([]float64, numChannels)
	maxUtil, maxTraversal := 0.0, 0.0
	for ch := range count {
		rate := lambda * count[ch] / float64(n-1)
		rho[ch] = rate * svc
		if rho[ch] > maxUtil {
			maxUtil = rho[ch]
		}
		if count[ch] > maxTraversal {
			maxTraversal = count[ch]
		}
		if rho[ch] < 1 {
			// M/D/1 mean waiting time: rho * S / (2 (1 - rho)).
			wait[ch] = rho[ch] * svc / (2 * (1 - rho[ch]))
		} else {
			wait[ch] = math.Inf(1)
		}
	}

	// Endpoint waiting: the injection queue(s) see the node's own offered
	// load; with uniform traffic each node also receives lambda messages per
	// cycle, so a shared ejection port is an M/D/1 server at the same rate.
	md1 := func(rate float64) float64 {
		r := rate * svc
		if r >= 1 {
			return math.Inf(1)
		}
		return r * svc / (2 * (1 - r))
	}
	endpointWait := md1(lambda / float64(ep.injChannels))
	if ep.sharedEject {
		endpointWait += md1(lambda)
	}

	// Mean latency over pairs: endpoint waiting + hops + M + per-channel
	// waiting along the path.
	var latSum float64
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			p := paths(s, d)
			l := endpointWait + float64(len(p)) + float64(msgLen)
			for _, ch := range p {
				l += wait[ch]
			}
			latSum += l
		}
	}

	sat := math.Inf(1)
	if maxTraversal > 0 {
		sat = float64(n-1) / (maxTraversal * svc)
	}
	return Prediction{
		N: n, MsgLen: msgLen, Lambda: lambda,
		AvgHops:         avgHops,
		ZeroLoadLatency: avgHops + float64(msgLen),
		MeanLatency:     latSum / float64(pairs),
		MaxChannelUtil:  maxUtil,
		SaturationRate:  sat,
	}
}

// channel id packing for the ring topologies: kind*N + from.
func ringChannelID(n int, ch topology.Channel) int {
	return int(ch.Kind)*n + ch.From
}

// QuarcUniform predicts uniform-traffic unicast behaviour of an n-node
// Quarc.
func QuarcUniform(n, msgLen int, lambda float64) Prediction {
	if err := topology.ValidateRingSize(n); err != nil {
		panic(fmt.Sprintf("analytic: %v", err))
	}
	return analyze(n, msgLen, lambda, 5*n, func(s, d int) []int {
		chs := topology.QuarcRouteChannels(n, s, d)
		ids := make([]int, len(chs))
		for i, c := range chs {
			ids[i] = ringChannelID(n, c)
		}
		return ids
	}, endpoints{injChannels: 4, sharedEject: false})
}

// SpidergonUniform predicts uniform-traffic unicast behaviour of an n-node
// Spidergon.
func SpidergonUniform(n, msgLen int, lambda float64) Prediction {
	if err := topology.ValidateRingSize(n); err != nil {
		panic(fmt.Sprintf("analytic: %v", err))
	}
	return analyze(n, msgLen, lambda, 5*n, func(s, d int) []int {
		chs := topology.SpidergonRouteChannels(n, s, d)
		ids := make([]int, len(chs))
		for i, c := range chs {
			ids[i] = ringChannelID(n, c)
		}
		return ids
	}, endpoints{injChannels: 1, sharedEject: true})
}

// MeshUniform predicts uniform-traffic unicast behaviour of a w x h mesh
// (or torus) under XY routing.
func MeshUniform(w, h, msgLen int, lambda float64, torus bool) Prediction {
	m, err := topology.NewMesh(w, h, torus)
	if err != nil {
		panic(fmt.Sprintf("analytic: %v", err))
	}
	n := m.N()
	// Channel id: direction(4) * n + from-node.
	return analyze(n, msgLen, lambda, 4*n, func(s, d int) []int {
		var ids []int
		cur := s
		for cur != d {
			dir, next := m.Step(cur, d)
			ids = append(ids, int(dir)*n+cur)
			cur = next
		}
		return ids
	}, endpoints{injChannels: 1, sharedEject: true})
}

// ForModel dispatches to the closed-form uniform-unicast model of a
// registry model by name, validating the size instead of panicking: ok is
// false for models with no analytical model (ring, and anything registered
// later) and for sizes the model cannot describe. The Quarc ablation
// presets map onto the Quarc model — they share its topology and routing,
// so the channel-level analysis is identical; only the endpoint queueing
// differs, a second-order effect at the low loads where the model is valid.
// Mesh and torus sizes must be squares (the registry's builds are square).
func ForModel(model string, n, msgLen int, lambda float64) (Prediction, bool) {
	if msgLen < 2 || lambda < 0 {
		return Prediction{}, false
	}
	switch model {
	case "quarc", "quarc-chainbcast", "quarc-1queue":
		if topology.ValidateRingSize(n) != nil {
			return Prediction{}, false
		}
		return QuarcUniform(n, msgLen, lambda), true
	case "spidergon":
		if topology.ValidateRingSize(n) != nil {
			return Prediction{}, false
		}
		return SpidergonUniform(n, msgLen, lambda), true
	case "mesh", "torus":
		side := int(math.Round(math.Sqrt(float64(n))))
		if n < 4 || side*side != n {
			return Prediction{}, false
		}
		return MeshUniform(side, side, msgLen, lambda, model == "torus"), true
	}
	return Prediction{}, false
}

// QuarcBroadcastCompletion is the zero-load completion latency of a true
// BRCP broadcast: the deepest branch has diameter n/4 hops and the tail
// follows msgLen-1 flits behind the header.
func QuarcBroadcastCompletion(n, msgLen int) float64 {
	return float64(n/4 + msgLen)
}

// SpidergonBroadcastCompletion is the zero-load completion latency of the
// broadcast-by-unicast chain: ceil((n-1)/2) sequential store-and-forward
// stages, each taking one hop plus msgLen flit cycles plus perHopOverhead
// cycles of ejection/re-injection handling.
func SpidergonBroadcastCompletion(n, msgLen int, perHopOverhead float64) float64 {
	stages := float64((n) / 2) // ceil((n-1)/2)
	return stages * (float64(msgLen) + 1 + perHopOverhead)
}

// BroadcastAdvantage is the predicted Quarc-vs-Spidergon broadcast speedup.
func BroadcastAdvantage(n, msgLen int) float64 {
	return SpidergonBroadcastCompletion(n, msgLen, 1) / QuarcBroadcastCompletion(n, msgLen)
}

package analytic

import (
	"math"
	"testing"

	"quarc/internal/topology"
)

func TestAvgHopsMatchesTopology(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64} {
		p := QuarcUniform(n, 8, 0)
		if math.Abs(p.AvgHops-topology.QuarcAvgHops(n)) > 1e-9 {
			t.Errorf("quarc n=%d: analytic hops %v vs topology %v",
				n, p.AvgHops, topology.QuarcAvgHops(n))
		}
		s := SpidergonUniform(n, 8, 0)
		if math.Abs(s.AvgHops-topology.SpidergonAvgHops(n)) > 1e-9 {
			t.Errorf("spidergon n=%d: analytic hops %v vs topology %v",
				n, s.AvgHops, topology.SpidergonAvgHops(n))
		}
	}
}

func TestMeshAvgHopsMatchesTopology(t *testing.T) {
	for _, wh := range [][2]int{{4, 4}, {3, 5}, {8, 8}} {
		m, _ := topology.NewMesh(wh[0], wh[1], false)
		p := MeshUniform(wh[0], wh[1], 8, 0, false)
		if math.Abs(p.AvgHops-m.AvgHops()) > 1e-9 {
			t.Errorf("mesh %dx%d: analytic %v vs topology %v",
				wh[0], wh[1], p.AvgHops, m.AvgHops())
		}
	}
}

func TestZeroLoadLatency(t *testing.T) {
	p := QuarcUniform(16, 16, 0)
	want := topology.QuarcAvgHops(16) + 16
	if math.Abs(p.ZeroLoadLatency-want) > 1e-9 {
		t.Fatalf("zero-load latency %v, want %v", p.ZeroLoadLatency, want)
	}
	if math.Abs(p.MeanLatency-p.ZeroLoadLatency) > 1e-9 {
		t.Fatal("at lambda=0 the mean latency must equal the zero-load latency")
	}
	if p.MaxChannelUtil != 0 {
		t.Fatal("at lambda=0 utilisation must be zero")
	}
}

func TestLatencyMonotoneInLoad(t *testing.T) {
	prev := 0.0
	for i, lam := range []float64{0, 0.005, 0.01, 0.02, 0.03} {
		p := QuarcUniform(16, 16, lam)
		if p.MeanLatency < prev {
			t.Fatalf("latency decreased at step %d: %v < %v", i, p.MeanLatency, prev)
		}
		prev = p.MeanLatency
	}
}

func TestLatencyDivergesNearSaturation(t *testing.T) {
	p0 := QuarcUniform(16, 16, 0)
	sat := p0.SaturationRate
	if math.IsInf(sat, 1) || sat <= 0 {
		t.Fatalf("implausible saturation rate %v", sat)
	}
	pHigh := QuarcUniform(16, 16, sat*0.98)
	if pHigh.MeanLatency < 3*p0.MeanLatency {
		t.Errorf("latency near saturation %v not much larger than zero-load %v",
			pHigh.MeanLatency, p0.MeanLatency)
	}
	pOver := QuarcUniform(16, 16, sat*1.05)
	if !math.IsInf(pOver.MeanLatency, 1) {
		t.Errorf("latency beyond saturation should be +Inf, got %v", pOver.MeanLatency)
	}
}

func TestUtilisationScalesLinearly(t *testing.T) {
	a := QuarcUniform(16, 16, 0.01)
	b := QuarcUniform(16, 16, 0.02)
	if math.Abs(b.MaxChannelUtil-2*a.MaxChannelUtil) > 1e-9 {
		t.Fatalf("utilisation not linear: %v vs %v", a.MaxChannelUtil, b.MaxChannelUtil)
	}
}

func TestSpidergonCrossUtilisationHigherThanQuarcCross(t *testing.T) {
	// The shared Spidergon cross channel carries the flows the Quarc splits
	// over two channels, so for the same load its utilisation contribution
	// is the sum of the two Quarc cross channels. Verified indirectly: the
	// Quarc saturation rate is never below the Spidergon one.
	for _, n := range []int{8, 16, 32, 64} {
		q := QuarcUniform(n, 16, 0)
		s := SpidergonUniform(n, 16, 0)
		if q.SaturationRate < s.SaturationRate-1e-12 {
			t.Errorf("n=%d: quarc saturation %v below spidergon %v",
				n, q.SaturationRate, s.SaturationRate)
		}
	}
}

func TestBroadcastAdvantageGrowsWithN(t *testing.T) {
	prev := 0.0
	for _, n := range []int{8, 16, 32, 64} {
		adv := BroadcastAdvantage(n, 16)
		if adv <= prev {
			t.Fatalf("advantage not growing: n=%d adv=%v prev=%v", n, adv, prev)
		}
		prev = adv
	}
	// Paper: "almost an order of magnitude improvement" for the evaluated
	// configurations.
	if adv := BroadcastAdvantage(64, 16); adv < 5 {
		t.Errorf("n=64 broadcast advantage %v, expected >= 5x", adv)
	}
}

func TestBroadcastCompletionFormulas(t *testing.T) {
	if QuarcBroadcastCompletion(16, 16) != 20 {
		t.Fatalf("quarc completion = %v", QuarcBroadcastCompletion(16, 16))
	}
	s := SpidergonBroadcastCompletion(16, 16, 1)
	if s < 100 || s > 200 {
		t.Fatalf("spidergon completion = %v, expected ~(n/2)(m+2)", s)
	}
}

func TestBadInputsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { QuarcUniform(10, 8, 0) },
		func() { SpidergonUniform(6, 8, 0) },
		func() { MeshUniform(1, 4, 8, 0, false) },
		func() { QuarcUniform(16, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad input accepted")
				}
			}()
			f()
		}()
	}
}

// Package quarc implements the paper's primary contribution: the Quarc
// NoC switch and transceiver (network adapter).
//
// The Quarc improves on the Spidergon by (i) doubling the cross link so the
// cross-clockwise and cross-counter-clockwise quadrants have separate
// physical channels, (ii) replacing the one-port router with an all-port
// router fed by four per-quadrant injection queues in the transceiver, and
// (iii) letting routers absorb-and-forward flits simultaneously, which turns
// broadcast into a true wormhole broadcast along base-routing conformed
// paths (paper §2.2).
//
// Port layout of the switch (paper Fig 3(b), minimal deterministic-routing
// crossbar):
//
//	inputs  0 RimCWIn     flits flowing clockwise, from node i-1
//	        1 RimCCWIn    flits flowing counter-clockwise, from node i+1
//	        2 CrossCWIn   cross-link arrivals that continue clockwise
//	        3 CrossCCWIn  cross-link arrivals that continue counter-clockwise
//	        4 InjRight    transceiver queue for the right quadrant
//	        5 InjLeft     transceiver queue for the left quadrant
//	        6 InjCrossCW  transceiver queue for the cross-cw quadrant
//	        7 InjCrossCCW transceiver queue for the cross-ccw quadrant
//	outputs 0 RimCWOut    to node i+1
//	        1 RimCCWOut   to node i-1
//	        2 CrossCWOut  to the antipode's CrossCWIn
//	        3 CrossCCWOut to the antipode's CrossCCWIn
//
// Output 0 is reachable from inputs {0, 2, 4}, output 1 from {1, 3, 5}, and
// the cross outputs only from their injection queues ({6} and {7}): the
// paper's observation that "left, right and one of the cross input port may
// require to send flits in maximum two possible destinations" while "the
// remaining input ports only have one possible destination" is this
// reachability matrix plus the local eject paths from inputs 0, 1 and 3
// (input 2, the cross-cw arrival, never ejects — which is exactly why the
// broadcast covers every node exactly once).
package quarc

import (
	"fmt"

	"quarc/internal/flit"
	"quarc/internal/network"
	"quarc/internal/router"
	"quarc/internal/topology"
)

// Input port indices.
const (
	RimCWIn = iota
	RimCCWIn
	CrossCWIn
	CrossCCWIn
	InjRight
	InjLeft
	InjCrossCW
	InjCrossCCW
	numInputs
)

// Output port indices.
const (
	RimCWOut = iota
	RimCCWOut
	CrossCWOut
	CrossCCWOut
	numOutputs
)

// NumNetworkInputs is the index of the first injection port.
const NumNetworkInputs = 4

// injPortFor maps a quadrant to its injection input port.
func injPortFor(q topology.Quadrant) int {
	switch q {
	case topology.QRight:
		return InjRight
	case topology.QLeft:
		return InjLeft
	case topology.QCrossCW:
		return InjCrossCW
	default:
		return InjCrossCCW
	}
}

// Route is the Quarc routing function. It is nearly trivial (paper §2.5.1:
// "there is no routing required by the switch"): a flit is either destined
// for the local port or forwarded in the same direction on the rim; the
// injected port fully determines the route.
func Route(n int) router.RouteFunc {
	return func(node, in int, f flit.Flit) router.Decision {
		switch in {
		case RimCWIn, RimCCWIn:
			out := RimCWOut
			if in == RimCCWIn {
				out = RimCCWOut
			}
			return rimDecision(node, out, f)
		case CrossCWIn:
			// Minimal crossbar: no eject path. Unicast never terminates
			// here (offsets strictly beyond n/2) and broadcast streams skip
			// the antipode on this branch.
			if f.Dst == node {
				panic(fmt.Sprintf("quarc: packet to %d arrived on the cross-cw input", node))
			}
			return router.Decision{Out: RimCWOut}
		case CrossCCWIn:
			return rimDecision(node, RimCCWOut, f)
		case InjRight:
			return router.Decision{Out: RimCWOut}
		case InjLeft:
			return router.Decision{Out: RimCCWOut}
		case InjCrossCW:
			return router.Decision{Out: CrossCWOut}
		case InjCrossCCW:
			return router.Decision{Out: CrossCCWOut}
		}
		panic(fmt.Sprintf("quarc: no such input port %d", in))
	}
}

// rimDecision implements the absorb-and-forward ingress multiplexer for
// ports with an eject path.
func rimDecision(node, out int, f flit.Flit) router.Decision {
	if f.Dst == node {
		// Last node of the stream: absorb, do not forward.
		return router.Decision{Out: router.NoOutput, Eject: true}
	}
	switch f.Traffic {
	case flit.Broadcast:
		// True broadcast: the ingress multiplexer clones the flit (§2.5.2).
		return router.Decision{Out: out, Eject: true, Clone: true}
	case flit.Multicast:
		// Bit 0 of the hop-aligned bitstring says whether this node is a
		// target (§2.5.3).
		if f.Bits&1 != 0 {
			return router.Decision{Out: out, Eject: true, Clone: true}
		}
		return router.Decision{Out: out}
	default:
		return router.Decision{Out: out}
	}
}

// VCNext is the Quarc virtual-channel discipline: dateline VCs on the two
// rim rings, VC 0 on the acyclic cross channels.
func VCNext(n int) router.VCFunc {
	return func(node, out, in, cur int, f flit.Flit) int {
		switch out {
		case RimCWOut:
			return topology.RimVC(n, topology.CW, node, cur)
		case RimCCWOut:
			return topology.RimVC(n, topology.CCW, node, cur)
		default:
			return 0
		}
	}
}

// Reach is the minimal crossbar reachability of the Quarc switch.
func Reach() [][]int {
	return [][]int{
		RimCWOut:    {RimCWIn, CrossCWIn, InjRight},
		RimCCWOut:   {RimCCWIn, CrossCCWIn, InjLeft},
		CrossCWOut:  {InjCrossCW},
		CrossCCWOut: {InjCrossCCW},
	}
}

// Config describes a Quarc network build.
type Config struct {
	N     int // nodes; multiple of 4 in [8, 64]
	Depth int // flits per VC lane buffer
	// ChainBroadcast disables the true broadcast and sends Spidergon-style
	// broadcast-by-unicast chains instead (ablation of modification iii).
	ChainBroadcast bool
	// SingleQueue funnels all traffic through one source queue feeding the
	// four ports, reintroducing the Spidergon's head-of-line blocking at the
	// source (ablation of modification ii).
	SingleQueue bool
}

// Build assembles an n-node Quarc network and its transceivers.
func Build(cfg Config) (*network.Fabric, []*Transceiver, error) {
	if err := topology.ValidateRingSize(cfg.N); err != nil {
		return nil, nil, err
	}
	if cfg.Depth < 1 {
		return nil, nil, fmt.Errorf("quarc: buffer depth %d", cfg.Depth)
	}
	n := cfg.N
	routers := make([]*router.Router, n)
	wires := make([][]network.OutputWire, n)
	injStart := make([]int, n)
	inLanes := make([]int, numInputs)
	for i := range inLanes {
		if i < NumNetworkInputs {
			inLanes[i] = link2VCs
		} else {
			inLanes[i] = 1
		}
	}
	for node := 0; node < n; node++ {
		routers[node] = router.New(router.Config{
			Node:      node,
			VCs:       link2VCs,
			Depth:     cfg.Depth,
			InLanes:   inLanes,
			NOut:      numOutputs,
			EjectPort: router.NoOutput, // all-port: dedicated per-input ejection
			Route:     Route(n),
			VCNext:    VCNext(n),
			Reach:     Reach(),
		})
		wires[node] = []network.OutputWire{
			RimCWOut:    {Dst: network.PortRef{Node: topology.NextCW(n, node), Port: RimCWIn}},
			RimCCWOut:   {Dst: network.PortRef{Node: topology.NextCCW(n, node), Port: RimCCWIn}},
			CrossCWOut:  {Dst: network.PortRef{Node: topology.Antipode(n, node), Port: CrossCWIn}},
			CrossCCWOut: {Dst: network.PortRef{Node: topology.Antipode(n, node), Port: CrossCCWIn}},
		}
		injStart[node] = NumNetworkInputs
	}
	fab := network.New(routers, wires, injStart)
	ts := make([]*Transceiver, n)
	for node := 0; node < n; node++ {
		ts[node] = newTransceiver(fab, routers[node], node, cfg)
		fab.SetAdapter(node, ts[node])
	}
	return fab, ts, nil
}

// link2VCs is the number of virtual channels per physical link (paper
// §2.3.1: the switch supports two virtual channels in parallel).
const link2VCs = 2

package quarc

import (
	"fmt"

	"quarc/internal/flit"
	"quarc/internal/network"
	"quarc/internal/router"
	"quarc/internal/topology"
)

// Transceiver is the Quarc network adapter (paper §2.4, Fig 5). On the send
// side it divides messages into flits, tags flit types, computes the
// destination quadrant and stores the packet into the per-quadrant buffer
// whose FCU feeds the matching all-port router ingress; effectively the PE
// "makes the routing decision by queueing the address" (§3.1). On the
// receive side it reassembles delivered flits and reports message
// completions to the fabric tracker.
type Transceiver struct {
	network.BaseAdapter
	n   int
	fab *network.Fabric
	cfg Config

	// Single-queue ablation state: one queue, the front packet streams to
	// the injection port of its quadrant.
	single PacketPortQueue
}

// PacketPortQueue is a single source queue whose packets each carry the
// injection port they must use; it reintroduces head-of-line blocking for
// the one-port ablation. Like network.PacketQueue it keeps a running flit
// counter so the backlog probe is O(1).
type PacketPortQueue struct {
	items   []portPkt
	pos     int // next flit of the front packet
	pending int // flits still to inject
	free    [][]flit.Flit
}

type portPkt struct {
	pkt  []flit.Flit
	port int
}

// newPacket assembles a packet, reusing storage from a previously streamed
// one when available (same recycling discipline as network.PacketQueue).
func (p *PacketPortQueue) newPacket(h flit.Flit, length int) []flit.Flit {
	if n := len(p.free); n > 0 {
		buf := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return flit.AppendPacket(buf[:0], h, length)
	}
	return flit.Packet(h, length)
}

func (p *PacketPortQueue) push(pkt []flit.Flit, port int) {
	p.items = append(p.items, portPkt{pkt, port})
	p.pending += len(pkt)
}

// pushFront inserts a packet to be sent next, without disturbing a front
// packet that has already started streaming.
func (p *PacketPortQueue) pushFront(pkt []flit.Flit, port int) {
	at := 0
	if p.pos > 0 && len(p.items) > 0 {
		at = 1
	}
	p.items = append(p.items, portPkt{})
	copy(p.items[at+1:], p.items[at:])
	p.items[at] = portPkt{pkt, port}
	p.pending += len(pkt)
}

func (p *PacketPortQueue) next() (flit.Flit, int, bool) {
	if len(p.items) == 0 {
		return flit.Flit{}, 0, false
	}
	return p.items[0].pkt[p.pos], p.items[0].port, true
}

func (p *PacketPortQueue) advance() {
	p.pos++
	p.pending--
	if p.pos == len(p.items[0].pkt) {
		if len(p.free) < network.MaxFreePackets {
			p.free = append(p.free, p.items[0].pkt)
		}
		p.items[0] = portPkt{}
		p.items = p.items[1:]
		p.pos = 0
	}
}

func (p *PacketPortQueue) backlog() int { return p.pending }

func newTransceiver(fab *network.Fabric, r *router.Router, node int, cfg Config) *Transceiver {
	t := &Transceiver{n: cfg.N, fab: fab, cfg: cfg}
	t.Node = node
	t.R = r
	t.Queues = make([]network.PacketQueue, topology.NumQuadrants)
	t.InjPorts = []int{
		topology.QRight:    InjRight,
		topology.QLeft:     InjLeft,
		topology.QCrossCW:  InjCrossCW,
		topology.QCrossCCW: InjCrossCCW,
	}
	t.OnTail = func(f flit.Flit, now int64) {
		t.onTail(f, now)
	}
	return t
}

// Feed honours the single-queue ablation; otherwise the embedded
// four-queue feeding applies.
func (t *Transceiver) Feed(now int64) {
	if !t.cfg.SingleQueue {
		t.BaseAdapter.Feed(now)
		return
	}
	f, port, ok := t.single.next()
	if !ok {
		return
	}
	if t.R.Push(port, 0, f) {
		t.single.advance()
	}
}

// FeedBlocked mirrors Feed's single-queue discipline: in the ablation the
// front packet's injection lane being full blocks the whole queue
// (head-of-line), so one probe decides.
func (t *Transceiver) FeedBlocked() bool {
	if !t.cfg.SingleQueue {
		return t.BaseAdapter.FeedBlocked()
	}
	_, port, ok := t.single.next()
	if !ok {
		return true
	}
	return t.R.LaneFree(port, 0) == 0
}

// Backlog includes the ablation queue.
func (t *Transceiver) Backlog() int {
	if t.cfg.SingleQueue {
		return t.single.backlog()
	}
	return t.BaseAdapter.Backlog()
}

// enqueue assembles a packet of length flits headed by h in the quadrant's
// source queue, reusing that queue's recycled storage. Every enqueue wakes
// the node: a quiescent router must re-enter the fabric's step set to feed
// the new packet.
func (t *Transceiver) enqueue(h flit.Flit, length int, q topology.Quadrant) {
	if t.cfg.SingleQueue {
		t.single.push(t.single.newPacket(h, length), injPortFor(q))
		t.Wake()
		return
	}
	t.Enqueue(int(q), h, length)
}

func (t *Transceiver) enqueueFront(h flit.Flit, length int, q topology.Quadrant) {
	if t.cfg.SingleQueue {
		// Chain retransmissions bypass PE traffic even in the ablation.
		t.single.pushFront(t.single.newPacket(h, length), injPortFor(q))
		t.Wake()
		return
	}
	t.EnqueueFront(int(q), h, length)
}

// SendUnicast queues a unicast message of msgLen flits for dst.
func (t *Transceiver) SendUnicast(dst, msgLen int, now int64) uint64 {
	if dst == t.Node {
		panic("quarc: unicast to self")
	}
	msgID := t.fab.NextMsgID()
	h := flit.Flit{
		Traffic: flit.Unicast, Src: t.Node, Dst: dst,
		PktID: t.fab.NextPktID(), MsgID: msgID, Gen: now,
	}
	t.fab.Tracker.Register(msgID, network.ClassUnicast, t.Node, now, 1)
	t.enqueue(h, msgLen, topology.QuadrantOf(t.n, t.Node, dst))
	return msgID
}

// SendBroadcast queues a broadcast of msgLen flits per branch: four packets,
// one per quadrant, each addressed to the last node of its base-routing
// conformed path (paper §2.5.2 and Fig 6). With the ChainBroadcast ablation
// it instead emits Spidergon-style consecutive-unicast chains.
func (t *Transceiver) SendBroadcast(msgLen int, now int64) uint64 {
	msgID := t.fab.NextMsgID()
	t.fab.Tracker.Register(msgID, network.ClassBroadcast, t.Node, now, t.n-1)
	if t.cfg.ChainBroadcast {
		t.sendChains(msgID, msgLen, now)
		return msgID
	}
	for _, b := range topology.QuarcBroadcastBranches(t.n, t.Node) {
		h := flit.Flit{
			Traffic: flit.Broadcast, Src: t.Node, Dst: b.Last,
			PktID: t.fab.NextPktID(), MsgID: msgID, Gen: now,
		}
		t.enqueue(h, msgLen, b.Q)
	}
	return msgID
}

// SendMulticast queues a multicast to the given targets (self is ignored);
// only quadrants containing targets emit a branch packet, with the
// hop-indexed bitstring in the header (paper §2.5.3).
func (t *Transceiver) SendMulticast(targets []int, msgLen int, now int64) uint64 {
	brs := topology.QuarcMulticastBranches(t.n, t.Node, targets)
	if len(brs) == 0 {
		panic("quarc: multicast with no remote targets")
	}
	expected := network.CountRemoteTargets(targets, t.Node)
	msgID := t.fab.NextMsgID()
	t.fab.Tracker.Register(msgID, network.ClassMulticast, t.Node, now, expected)
	for _, b := range brs {
		h := flit.Flit{
			Traffic: flit.Multicast, Src: t.Node, Dst: b.Last, Bits: b.Bits,
			PktID: t.fab.NextPktID(), MsgID: msgID, Gen: now,
		}
		t.enqueue(h, msgLen, b.Q)
	}
	return msgID
}

// sendChains emits the broadcast-by-unicast chains (ablation iii / the
// Spidergon's only deadlock-free broadcast).
func (t *Transceiver) sendChains(msgID uint64, msgLen int, now int64) {
	for _, c := range topology.SpidergonBroadcastChains(t.n, t.Node) {
		first := c.Nodes[0]
		h := flit.Flit{
			Traffic: flit.BcastChain, Src: t.Node, Dst: first,
			Remain: len(c.Nodes) - 1, ChainCCW: c.Dir == topology.CCW,
			PktID: t.fab.NextPktID(), MsgID: msgID, Gen: now,
		}
		t.enqueue(h, msgLen, topology.QuadrantOf(t.n, t.Node, first))
	}
}

// onTail handles a completed packet delivery at this node.
func (t *Transceiver) onTail(f flit.Flit, now int64) {
	t.fab.Tracker.Delivered(f.MsgID, t.Node, now)
	if f.Traffic == flit.BcastChain && f.Remain > 0 {
		// Store-and-forward retransmission: rewrite the header for the next
		// node in the chain and inject with switch priority.
		var next int
		if f.ChainCCW {
			next = topology.NextCCW(t.n, t.Node)
		} else {
			next = topology.NextCW(t.n, t.Node)
		}
		h := flit.Flit{
			Traffic: flit.BcastChain, Src: t.Node, Dst: next,
			Remain: f.Remain - 1, ChainCCW: f.ChainCCW,
			PktID: t.fab.NextPktID(), MsgID: f.MsgID, Gen: f.Gen,
		}
		t.enqueueFront(h, f.PktLen, topology.QuadrantOf(t.n, t.Node, next))
	}
}

var _ network.Adapter = (*Transceiver)(nil)

func init() {
	// Compile-time-ish sanity: port tables must agree.
	if len(Reach()) != numOutputs {
		panic(fmt.Sprintf("quarc: reach table has %d outputs", len(Reach())))
	}
}

package quarc

import (
	"testing"
	"testing/quick"

	"quarc/internal/network"
	"quarc/internal/rng"
	"quarc/internal/topology"
	"quarc/internal/trace"
)

func build(t testing.TB, n int) (*network.Fabric, []*Transceiver) {
	t.Helper()
	fab, ts, err := Build(Config{N: n, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	return fab, ts
}

// drain steps until all messages complete or the budget runs out.
func drain(t testing.TB, fab *network.Fabric, budget int) {
	t.Helper()
	for i := 0; i < budget; i++ {
		if fab.Tracker.InFlight() == 0 {
			return
		}
		fab.Step()
	}
	if fab.Tracker.InFlight() != 0 {
		t.Fatalf("network did not drain: %d messages stuck after %d cycles",
			fab.Tracker.InFlight(), budget)
	}
}

func TestUnicastZeroLoadLatency(t *testing.T) {
	// At zero load, tail delivery happens exactly hops+M cycles after
	// generation: one cycle per link (pipelined), one flit injected per
	// cycle, ejection the cycle after arrival.
	for _, n := range []int{8, 16, 32, 64} {
		for dst := 1; dst < n; dst++ {
			fab, ts := build(t, n)
			var got *network.MessageRecord
			fab.Tracker.OnDone = func(r network.MessageRecord) { got = &r }
			m := 8
			ts[0].SendUnicast(dst, m, fab.Now())
			drain(t, fab, 1000)
			if got == nil {
				t.Fatalf("n=%d dst=%d: no completion", n, dst)
			}
			want := int64(topology.QuarcHops(n, 0, dst) + m)
			if lat := got.Last - got.Gen; lat != want {
				t.Errorf("n=%d dst=%d: latency %d, want hops+M = %d", n, dst, lat, want)
			}
		}
	}
}

func TestBroadcastReachesAllExactlyOnce(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64} {
		fab, ts := build(t, n)
		var got *network.MessageRecord
		fab.Tracker.OnDone = func(r network.MessageRecord) { got = &r }
		m := 8
		ts[3%n].SendBroadcast(m, fab.Now())
		drain(t, fab, 5000)
		if got == nil {
			t.Fatalf("n=%d: broadcast incomplete", n)
		}
		if got.Delivered != n-1 {
			t.Errorf("n=%d: delivered to %d nodes, want %d", n, got.Delivered, n-1)
		}
		if d := fab.Tracker.Duplicates(); d != 0 {
			t.Errorf("n=%d: %d duplicate deliveries", n, d)
		}
		// True wormhole broadcast completes in diameter + M cycles.
		want := int64(n/4 + m)
		if lat := got.Last - got.Gen; lat != want {
			t.Errorf("n=%d: broadcast completion latency %d, want %d", n, lat, want)
		}
	}
}

func TestBroadcastCompletionMatchesFig6(t *testing.T) {
	// 16 nodes, source 0: branch last nodes 4, 5, 11, 12 (paper Fig 6).
	// Every node must get the tail at exactly hops(node)+M.
	n, m := 16, 4
	fab, ts := build(t, n)
	var rec *network.MessageRecord
	fab.Tracker.OnDone = func(r network.MessageRecord) { rec = &r }
	ts[0].SendBroadcast(m, fab.Now())
	drain(t, fab, 1000)
	if rec == nil {
		t.Fatal("no completion")
	}
	// Expected delivery cycle of node d is quarcHops(0,d)+m; completion is
	// the max (= n/4+m); the mean delivery time must match the exact mean of
	// hops+m over all destinations.
	sum := int64(0)
	for d := 1; d < n; d++ {
		sum += int64(topology.QuarcHops(n, 0, d) + m)
	}
	if rec.DeliSum != sum {
		t.Errorf("sum of delivery cycles = %d, want %d", rec.DeliSum, sum)
	}
	if rec.First != int64(1+m) {
		t.Errorf("first delivery at %d, want %d", rec.First, 1+m)
	}
}

func TestMulticastDeliversOnlyToTargets(t *testing.T) {
	n, m := 16, 4
	fab, ts := build(t, n)
	targets := []int{2, 5, 8, 11, 14}
	var rec *network.MessageRecord
	fab.Tracker.OnDone = func(r network.MessageRecord) { rec = &r }
	ts[0].SendMulticast(targets, m, fab.Now())
	drain(t, fab, 1000)
	if rec == nil {
		t.Fatal("multicast incomplete")
	}
	if rec.Delivered != len(targets) {
		t.Errorf("delivered %d, want %d", rec.Delivered, len(targets))
	}
	if fab.Tracker.Duplicates() != 0 {
		t.Error("duplicate multicast delivery")
	}
	if fab.FlitsDelivered() != uint64(len(targets)*m) {
		t.Errorf("PEs received %d flits, want %d", fab.FlitsDelivered(), len(targets)*m)
	}
}

func TestMulticastSingleTargetBehavesLikeUnicast(t *testing.T) {
	n, m := 16, 6
	fab, ts := build(t, n)
	var rec *network.MessageRecord
	fab.Tracker.OnDone = func(r network.MessageRecord) { rec = &r }
	ts[0].SendMulticast([]int{7}, m, fab.Now())
	drain(t, fab, 1000)
	want := int64(topology.QuarcHops(n, 0, 7) + m)
	if rec == nil || rec.Last-rec.Gen != want {
		t.Fatalf("latency = %v, want %d", rec, want)
	}
}

func TestConcurrentBroadcastsAllComplete(t *testing.T) {
	// Every node broadcasts simultaneously: the BRCP discipline must stay
	// deadlock-free and deliver (n-1) copies per message.
	n, m := 16, 8
	fab, ts := build(t, n)
	done := 0
	fab.Tracker.OnDone = func(r network.MessageRecord) { done++ }
	for s := 0; s < n; s++ {
		ts[s].SendBroadcast(m, fab.Now())
	}
	drain(t, fab, 20000)
	if done != n {
		t.Fatalf("completed %d broadcasts, want %d", done, n)
	}
	if fab.Tracker.Duplicates() != 0 {
		t.Fatal("duplicate deliveries under concurrent broadcast")
	}
}

func TestRandomTrafficConservation(t *testing.T) {
	// Mixed random unicast/broadcast load: every message completes, nothing
	// is duplicated or lost, flits delivered match exactly.
	n, m := 16, 4
	fab, ts := build(t, n)
	r := rng.New(7, 0)
	completed := 0
	fab.Tracker.OnDone = func(network.MessageRecord) { completed++ }
	sent := 0
	wantFlits := uint64(0)
	for cyc := 0; cyc < 2000; cyc++ {
		for s := 0; s < n; s++ {
			if r.Bernoulli(0.02) {
				if r.Bernoulli(0.2) {
					ts[s].SendBroadcast(m, fab.Now())
					wantFlits += uint64((n - 1) * m)
				} else {
					d := r.Intn(n - 1)
					if d >= s {
						d++
					}
					ts[s].SendUnicast(d, m, fab.Now())
					wantFlits += uint64(m)
				}
				sent++
			}
		}
		fab.Step()
	}
	drain(t, fab, 200000)
	if completed != sent {
		t.Fatalf("completed %d of %d messages", completed, sent)
	}
	if fab.Tracker.Duplicates() != 0 {
		t.Fatalf("%d duplicate deliveries", fab.Tracker.Duplicates())
	}
	if fab.FlitsDelivered() != wantFlits {
		t.Fatalf("delivered %d flits, want %d", fab.FlitsDelivered(), wantFlits)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64, int64) {
		n, m := 16, 4
		fab, ts := build(t, n)
		r := rng.New(99, 1)
		var lastDone int64
		fab.Tracker.OnDone = func(rec network.MessageRecord) { lastDone = rec.Last }
		for cyc := 0; cyc < 500; cyc++ {
			for s := 0; s < n; s++ {
				if r.Bernoulli(0.03) {
					d := r.Intn(n - 1)
					if d >= s {
						d++
					}
					ts[s].SendUnicast(d, m, fab.Now())
				}
			}
			fab.Step()
		}
		return fab.FlitsForwarded(), fab.FlitsDelivered(), lastDone
	}
	f1, d1, l1 := run()
	f2, d2, l2 := run()
	if f1 != f2 || d1 != d2 || l1 != l2 {
		t.Fatalf("simulation not deterministic: (%d,%d,%d) vs (%d,%d,%d)", f1, d1, l1, f2, d2, l2)
	}
}

func TestEdgeSymmetricLinkLoads(t *testing.T) {
	// Uniform traffic must load all rim links equally and all cross links
	// equally (the Quarc's edge symmetry, §2.2). Send one unicast from every
	// node to every destination and compare link counters.
	n, m := 16, 2
	fab, ts := build(t, n)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				ts[s].SendUnicast(d, m, fab.Now())
			}
		}
	}
	drain(t, fab, 100000)
	loads := fab.LinkLoad()
	for _, out := range []int{RimCWOut, RimCCWOut, CrossCWOut, CrossCCWOut} {
		for node := 1; node < n; node++ {
			if loads[node][out] != loads[0][out] {
				t.Fatalf("output %d load differs: node %d has %d, node 0 has %d",
					out, node, loads[node][out], loads[0][out])
			}
		}
	}
	// Rim links carry the quarter-arc traffic in both directions equally.
	if loads[0][RimCWOut] != loads[0][RimCCWOut] {
		t.Errorf("rim CW load %d != rim CCW load %d", loads[0][RimCWOut], loads[0][RimCCWOut])
	}
	if loads[0][CrossCWOut] != loads[0][CrossCCWOut]+1 {
		// Cross-CCW serves n/4 destinations, cross-CW n/4-1; with m flits
		// per packet the difference is exactly m... check both are within
		// one packet of each other instead of exact equality.
		diff := int64(loads[0][CrossCWOut]) - int64(loads[0][CrossCCWOut])
		if diff > int64(m) || diff < -int64(m) {
			t.Errorf("cross loads unbalanced: %d vs %d", loads[0][CrossCWOut], loads[0][CrossCCWOut])
		}
	}
}

func TestChainBroadcastAblation(t *testing.T) {
	// With ChainBroadcast the completion latency collapses to the
	// Spidergon-style store-and-forward chain: about (n/2)*(m+hops).
	n, m := 16, 8
	fab, ts, err := Build(Config{N: n, Depth: 4, ChainBroadcast: true})
	if err != nil {
		t.Fatal(err)
	}
	var rec *network.MessageRecord
	fab.Tracker.OnDone = func(r network.MessageRecord) { rec = &r }
	ts[0].SendBroadcast(m, fab.Now())
	for i := 0; i < 100000 && fab.Tracker.InFlight() > 0; i++ {
		fab.Step()
	}
	if rec == nil {
		t.Fatal("chain broadcast incomplete")
	}
	if rec.Delivered != n-1 {
		t.Fatalf("delivered %d, want %d", rec.Delivered, n-1)
	}
	chainLat := rec.Last - rec.Gen
	trueLat := int64(n/4 + m)
	if chainLat < 4*trueLat {
		t.Errorf("chain broadcast latency %d not dramatically worse than true broadcast %d",
			chainLat, trueLat)
	}
}

func TestSingleQueueAblationStillCorrect(t *testing.T) {
	n, m := 16, 4
	fab, ts, err := Build(Config{N: n, Depth: 4, SingleQueue: true})
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	fab.Tracker.OnDone = func(network.MessageRecord) { completed++ }
	for d := 1; d < n; d++ {
		ts[0].SendUnicast(d, m, fab.Now())
	}
	ts[0].SendBroadcast(m, fab.Now())
	for i := 0; i < 100000 && fab.Tracker.InFlight() > 0; i++ {
		fab.Step()
	}
	if completed != n {
		t.Fatalf("completed %d messages, want %d", completed, n)
	}
	if fab.Tracker.Duplicates() != 0 {
		t.Fatal("duplicates under single-queue ablation")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, _, err := Build(Config{N: 10, Depth: 4}); err == nil {
		t.Error("accepted n=10")
	}
	if _, _, err := Build(Config{N: 16, Depth: 0}); err == nil {
		t.Error("accepted zero depth")
	}
	if _, _, err := Build(Config{N: 128, Depth: 4}); err == nil {
		t.Error("accepted n=128")
	}
}

func TestUnicastToSelfPanics(t *testing.T) {
	_, ts := build(t, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("unicast to self accepted")
		}
	}()
	ts[0].SendUnicast(0, 4, 0)
}

func TestTraceMatchesDeterministicRoute(t *testing.T) {
	// The flit-level trace of a unicast header must visit exactly the nodes
	// of the deterministic route (paper §2.5.1: the route is completely
	// determined by the injection port).
	n := 16
	fab, ts := build(t, n)
	fab.Trace = trace.NewBuffer(4096)
	for _, dst := range []int{1, 4, 5, 8, 11, 12, 15} {
		ts[0].SendUnicast(dst, 4, fab.Now())
	}
	drain(t, fab, 10000)
	events := fab.Trace.Events()
	if len(events) == 0 {
		t.Fatal("no trace recorded")
	}
	// Group header paths per packet and compare with topology.QuarcPath.
	byPkt := map[uint64][]int{}
	dstOf := map[uint64]int{}
	for _, e := range events {
		if e.Seq != 0 {
			continue
		}
		byPkt[e.PktID] = append(byPkt[e.PktID], e.Node)
		if e.Kind == trace.Deliver {
			dstOf[e.PktID] = e.Node
		}
	}
	if len(byPkt) != 7 {
		t.Fatalf("traced %d packets, want 7", len(byPkt))
	}
	for pkt, path := range byPkt {
		dst := dstOf[pkt]
		want := topology.QuarcPath(n, 0, dst)
		if len(path) != len(want) {
			t.Fatalf("pkt %d to %d: traced path %v, want %v", pkt, dst, path, want)
		}
		for i := range want {
			if path[i] != want[i] {
				t.Fatalf("pkt %d to %d: traced path %v, want %v", pkt, dst, path, want)
			}
		}
	}
}

func TestLargeNetworkMulticast(t *testing.T) {
	// N=64 is the largest network the single-flit header supports (§2.6).
	// A scattered multicast across all four quadrants must deliver exactly
	// once per target with branch bitstrings up to 16 hops deep.
	n, m := 64, 8
	fab, ts := build(t, n)
	targets := []int{1, 15, 16, 17, 31, 32, 33, 47, 48, 63}
	var rec *network.MessageRecord
	fab.Tracker.OnDone = func(r network.MessageRecord) { rec = &r }
	ts[0].SendMulticast(targets, m, fab.Now())
	drain(t, fab, 10000)
	if rec == nil || rec.Delivered != len(targets) {
		t.Fatalf("delivered %+v, want %d targets", rec, len(targets))
	}
	if fab.Tracker.Duplicates() != 0 {
		t.Fatal("duplicates on 64-node multicast")
	}
	// Completion = max over targets of hops+m.
	want := int64(0)
	for _, d := range targets {
		if h := int64(topology.QuarcHops(n, 0, d) + m); h > want {
			want = h
		}
	}
	if lat := rec.Last - rec.Gen; lat != want {
		t.Errorf("completion latency %d, want %d", lat, want)
	}
}

func TestInjectionRateIsOneFlitPerPortPerCycle(t *testing.T) {
	// The transceiver feeds at most one flit per injection port per cycle,
	// so four branch packets launch in parallel but each serialises at M
	// cycles (visible as FlitsForwarded growth of at most 4 per cycle from
	// a single node).
	n, m := 16, 8
	fab, ts := build(t, n)
	ts[0].SendBroadcast(m, fab.Now())
	// For a single broadcast from node 0, node 0's four output links carry
	// only its own injected flits (no branch re-crosses its source), so the
	// per-cycle growth of node 0's link counters is exactly the injection
	// rate: at most one flit per port per cycle.
	prev := make([]uint64, 4)
	for i := 0; i < 60 && fab.Tracker.InFlight() > 0; i++ {
		fab.Step()
		loads := fab.LinkLoad()
		for out := 0; out < 4; out++ {
			delta := loads[0][out] - prev[out]
			prev[out] = loads[0][out]
			if delta > 1 {
				t.Fatalf("cycle %d: output %d sent %d flits in one cycle", i, out, delta)
			}
		}
	}
	// And the whole broadcast still finishes, i.e. the four ports really do
	// inject in parallel.
	if fab.Tracker.InFlight() != 0 {
		t.Fatal("broadcast did not finish")
	}
}

// Property: for any ring size and any random message set, every message
// completes, flit conservation holds, and no duplicates occur.
func TestConservationProperty(t *testing.T) {
	check := func(sizeSel, seed uint8, nMsgs uint8) bool {
		sizes := []int{8, 12, 16, 24, 32}
		n := sizes[int(sizeSel)%len(sizes)]
		fab, ts, err := Build(Config{N: n, Depth: 2})
		if err != nil {
			return false
		}
		r := rng.New(uint64(seed)+1, 55)
		m := 2 + r.Intn(6)
		want := uint64(0)
		msgs := int(nMsgs)%20 + 1
		for i := 0; i < msgs; i++ {
			s := r.Intn(n)
			if r.Bernoulli(0.3) {
				ts[s].SendBroadcast(m, fab.Now())
				want += uint64((n - 1) * m)
			} else {
				d := r.Intn(n - 1)
				if d >= s {
					d++
				}
				ts[s].SendUnicast(d, m, fab.Now())
				want += uint64(m)
			}
			// Interleave some cycles so injections overlap.
			for c := 0; c < r.Intn(4); c++ {
				fab.Step()
			}
		}
		for i := 0; i < 100000 && fab.Tracker.InFlight() > 0; i++ {
			fab.Step()
		}
		return fab.Tracker.InFlight() == 0 &&
			fab.Tracker.Duplicates() == 0 &&
			fab.FlitsDelivered() == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

package quarc

import (
	"quarc/internal/model"
	"quarc/internal/network"
	"quarc/internal/topology"
)

// The Quarc registers itself and its two ablation presets (paper §2.2
// modifications ii and iii switched off) with the model registry; the
// presets are ordinary registry entries, not enum members, so the harness
// and service treat them exactly like any other model.
func init() {
	register := func(name, desc string, preset Config) {
		model.Register(model.Model{
			Name:        name,
			Description: desc,
			CheckN:      topology.ValidateRingSize,
			ExampleN:    16,
			Build: func(bc model.BuildConfig) (*network.Fabric, []model.Node, error) {
				cfg := preset
				cfg.N, cfg.Depth = bc.N, bc.Depth
				fab, ts, err := Build(cfg)
				if err != nil {
					return nil, nil, err
				}
				nodes := make([]model.Node, len(ts))
				for i, t := range ts {
					nodes[i] = t
				}
				return fab, nodes, nil
			},
		})
	}
	register("quarc",
		"Quarc NoC: all-port switch, doubled cross links, true hardware broadcast (the paper's architecture)",
		Config{})
	register("quarc-chainbcast",
		"Quarc ablation: true broadcast off, Spidergon-style broadcast-by-unicast chains (modification iii off)",
		Config{ChainBroadcast: true})
	register("quarc-1queue",
		"Quarc ablation: single source queue feeding all four ports (modification ii off)",
		Config{SingleQueue: true})
}

package traffic

import (
	"math"
	"testing"

	"quarc/internal/sim"
)

func runBursty(t *testing.T, cfg BurstyConfig, cycles int64) ([]*recorder, []*BurstySource) {
	t.Helper()
	var k sim.Kernel
	recs := make([]*recorder, cfg.N)
	senders := make([]Sender, cfg.N)
	for i := range recs {
		recs[i] = &recorder{}
		senders[i] = recs[i]
	}
	sources, err := InstallBursty(&k, cfg, senders)
	if err != nil {
		t.Fatal(err)
	}
	k.Run(cycles)
	return recs, sources
}

func TestBurstyValidate(t *testing.T) {
	bad := []BurstyConfig{
		{N: 1, OnRate: 0.5, MeanOn: 10, MeanOff: 10, MsgLen: 4},
		{N: 8, OnRate: 0, MeanOn: 10, MeanOff: 10, MsgLen: 4},
		{N: 8, OnRate: 0.5, MeanOn: 0.5, MeanOff: 10, MsgLen: 4},
		{N: 8, OnRate: 0.5, MeanOn: 10, MeanOff: 10, MsgLen: 1},
		{N: 8, OnRate: 0.5, MeanOn: 10, MeanOff: 10, MsgLen: 4, Beta: 2},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestBurstyMeanRate(t *testing.T) {
	cfg := BurstyConfig{N: 4, OnRate: 0.4, MeanOn: 20, MeanOff: 60, MsgLen: 4, Seed: 9}
	want := cfg.MeanRate() // 0.4 * 20/80 = 0.1
	if math.Abs(want-0.1) > 1e-12 {
		t.Fatalf("MeanRate = %v, want 0.1", want)
	}
	const cycles = 200000
	_, sources := runBursty(t, cfg, cycles)
	var total int64
	for _, s := range sources {
		total += s.Sent()
	}
	got := float64(total) / float64(cfg.N) / cycles
	if math.Abs(got-want) > 0.015 {
		t.Errorf("empirical rate %v, want about %v", got, want)
	}
}

func TestBurstyIsActuallyBursty(t *testing.T) {
	// Compare the index of dispersion (variance/mean of per-window counts)
	// against a Bernoulli source at the same mean rate: the bursty source
	// must be clearly over-dispersed.
	const cycles = 100000
	const window = 50
	cfg := BurstyConfig{N: 2, OnRate: 0.5, MeanOn: 30, MeanOff: 120, MsgLen: 4, Seed: 3}
	recs, _ := runBursty(t, cfg, cycles)
	disp := func(times []int64) float64 {
		counts := make([]float64, cycles/window+1)
		for _, at := range times {
			counts[at/window]++
		}
		mean, m2 := 0.0, 0.0
		for _, c := range counts {
			mean += c
		}
		mean /= float64(len(counts))
		for _, c := range counts {
			m2 += (c - mean) * (c - mean)
		}
		if mean == 0 {
			return 0
		}
		return m2 / float64(len(counts)) / mean
	}
	burstyDisp := disp(recs[0].times)

	uniCfg := Config{N: 2, Rate: cfg.MeanRate(), MsgLen: 4, Seed: 3}
	var k sim.Kernel
	urec := []*recorder{{}, {}}
	_, err := Install(&k, uniCfg, []Sender{urec[0], urec[1]})
	if err != nil {
		t.Fatal(err)
	}
	k.Run(cycles)
	uniDisp := disp(urec[0].times)

	if burstyDisp < 2*uniDisp {
		t.Errorf("bursty dispersion %.2f not clearly above Bernoulli %.2f", burstyDisp, uniDisp)
	}
}

func TestBurstyRespectsUntil(t *testing.T) {
	cfg := BurstyConfig{N: 2, OnRate: 0.5, MeanOn: 10, MeanOff: 10, MsgLen: 4, Seed: 1, Until: 200}
	recs, _ := runBursty(t, cfg, 10000)
	for _, r := range recs {
		for _, at := range r.times {
			if at >= 200 {
				t.Fatalf("message at %d, after Until", at)
			}
		}
	}
}

func TestBurstyBroadcastMix(t *testing.T) {
	cfg := BurstyConfig{N: 4, OnRate: 0.5, MeanOn: 50, MeanOff: 50, Beta: 0.3, MsgLen: 4, Seed: 8}
	recs, sources := runBursty(t, cfg, 50000)
	var bcasts, total int64
	for i, r := range recs {
		bcasts += int64(r.broadcasts)
		total += sources[i].Sent()
	}
	frac := float64(bcasts) / float64(total)
	if math.Abs(frac-0.3) > 0.03 {
		t.Errorf("broadcast fraction %v, want about 0.3", frac)
	}
}

func TestBurstyDeterminism(t *testing.T) {
	cfg := BurstyConfig{N: 4, OnRate: 0.5, MeanOn: 20, MeanOff: 20, MsgLen: 4, Seed: 12}
	a, _ := runBursty(t, cfg, 5000)
	b, _ := runBursty(t, cfg, 5000)
	for i := range a {
		if len(a[i].times) != len(b[i].times) {
			t.Fatal("bursty traffic not deterministic")
		}
	}
}

// Package traffic generates the synthetic workloads of the paper's
// evaluation: open-loop message arrivals per node (a discretised Poisson
// process), uniformly random destinations, a configurable broadcast fraction
// β and fixed message length M (§3.2: "changing the network size, message
// length and the rate of broadcast traffic").
//
// Additional spatial patterns (hotspot, antipodal, nearest-neighbour,
// bit-reverse) support the stress and ablation experiments.
package traffic

import (
	"fmt"

	"quarc/internal/rng"
	"quarc/internal/sim"
)

// Sender is the send-side surface every network adapter exposes. Adapters
// with hardware collective support (the Quarc transceiver) route a multicast
// natively; the others emulate it by unicast fan-out — which is exactly the
// comparison the paper's evaluation turns on.
type Sender interface {
	SendUnicast(dst, msgLen int, now int64) uint64
	SendBroadcast(msgLen int, now int64) uint64
	SendMulticast(targets []int, msgLen int, now int64) uint64
}

// Pattern selects the spatial distribution of unicast destinations.
type Pattern int

const (
	Uniform Pattern = iota
	Hotspot
	Antipodal
	NearestNeighbor
	BitReverse
)

func (p Pattern) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case Hotspot:
		return "hotspot"
	case Antipodal:
		return "antipodal"
	case NearestNeighbor:
		return "neighbor"
	case BitReverse:
		return "bitreverse"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// Config parameterises a workload.
type Config struct {
	N           int     // nodes
	Rate        float64 // messages per node per cycle (the x-axis of Figs 9-11)
	Beta        float64 // fraction of messages that are broadcasts (β)
	MsgLen      int     // flits per message (M)
	Pattern     Pattern
	HotspotNode int
	HotspotBias float64 // probability a unicast targets the hotspot
	// McastFrac is the fraction of the non-broadcast messages sent as
	// McastSize-target multicasts (distinct uniform targets, never self).
	// The multicast draw happens after the broadcast draw, so a zero
	// McastFrac leaves the random streams of existing workloads untouched.
	McastFrac float64
	McastSize int // targets per multicast; 2..N-1, required with McastFrac
	Seed      uint64
	Until     int64 // stop generating at this cycle (0 = forever)
}

// Validate checks the workload parameters.
func (c Config) Validate() error {
	switch {
	case c.N < 2:
		return fmt.Errorf("traffic: %d nodes", c.N)
	case c.Rate < 0 || c.Rate > 1:
		return fmt.Errorf("traffic: rate %v outside [0,1]", c.Rate)
	case c.Beta < 0 || c.Beta > 1:
		return fmt.Errorf("traffic: beta %v outside [0,1]", c.Beta)
	case c.MsgLen < 2:
		return fmt.Errorf("traffic: message length %d (need >= 2 flits)", c.MsgLen)
	case c.HotspotBias < 0 || c.HotspotBias > 1:
		return fmt.Errorf("traffic: hotspot bias %v", c.HotspotBias)
	}
	return validateMulticast(c.McastFrac, c.McastSize, c.N)
}

// validateMulticast checks the multicast knobs shared by the Bernoulli and
// bursty sources: both set or both zero, and a size that names a genuine
// multi-target collective smaller than a broadcast.
func validateMulticast(frac float64, size, n int) error {
	switch {
	case frac < 0 || frac > 1:
		return fmt.Errorf("traffic: multicast fraction %v outside [0,1]", frac)
	case frac == 0 && size != 0:
		return fmt.Errorf("traffic: multicast size %d without a multicast fraction", size)
	case frac > 0 && (size < 2 || size > n-1):
		return fmt.Errorf("traffic: multicast size %d outside [2,%d]", size, n-1)
	}
	return nil
}

// Source is the per-node generator process.
type Source struct {
	node   int
	cfg    Config
	r      *rng.Stream
	sender Sender
	sent   int64
	pool   []int // reused multicast target scratch
}

// Sent returns how many messages this source generated.
func (s *Source) Sent() int64 { return s.sent }

// destination draws a unicast destination for this source.
func (s *Source) destination() int {
	n := s.cfg.N
	switch s.cfg.Pattern {
	case Hotspot:
		if s.node != s.cfg.HotspotNode && s.r.Bernoulli(s.cfg.HotspotBias) {
			return s.cfg.HotspotNode
		}
	case Antipodal:
		return (s.node + n/2) % n
	case NearestNeighbor:
		return (s.node + 1) % n
	case BitReverse:
		d := bitReverse(s.node, n)
		if d != s.node {
			return d
		}
	}
	d := s.r.Intn(n - 1)
	if d >= s.node {
		d++
	}
	return d
}

func bitReverse(x, n int) int {
	bits := 0
	for 1<<bits < n {
		bits++
	}
	out := 0
	for i := 0; i < bits; i++ {
		if x&(1<<i) != 0 {
			out |= 1 << (bits - 1 - i)
		}
	}
	return out % n
}

// fire generates one message at the given cycle.
func (s *Source) fire(now int64) {
	switch {
	case s.cfg.Beta > 0 && s.r.Bernoulli(s.cfg.Beta):
		s.sender.SendBroadcast(s.cfg.MsgLen, now)
	case s.cfg.McastFrac > 0 && s.r.Bernoulli(s.cfg.McastFrac):
		s.pool = multicastTargets(s.pool, s.r, s.cfg.N, s.node, s.cfg.McastSize)
		s.sender.SendMulticast(s.pool[:s.cfg.McastSize], s.cfg.MsgLen, now)
	default:
		s.sender.SendUnicast(s.destination(), s.cfg.MsgLen, now)
	}
	s.sent++
}

// multicastTargets draws k distinct destinations for a multicast from self —
// a partial Fisher-Yates over the other n-1 nodes, so every k-subset is
// equally likely and the draw costs exactly k Intn calls. The pool slice is
// reused across calls; the first k entries are the targets.
func multicastTargets(pool []int, r *rng.Stream, n, self, k int) []int {
	pool = pool[:0]
	for d := 0; d < n; d++ {
		if d != self {
			pool = append(pool, d)
		}
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	return pool
}

// Install creates one source per node and schedules their arrival processes
// on the kernel. Arrivals are a Bernoulli process per node: geometric gaps
// with mean 1/rate, the discrete analogue of Poisson arrivals. It returns
// the sources for inspection.
func Install(k *sim.Kernel, cfg Config, senders []Sender) ([]*Source, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(senders) != cfg.N {
		return nil, fmt.Errorf("traffic: %d senders for %d nodes", len(senders), cfg.N)
	}
	sources := make([]*Source, cfg.N)
	for node := 0; node < cfg.N; node++ {
		src := &Source{
			node:   node,
			cfg:    cfg,
			r:      rng.New(cfg.Seed, uint64(node)+1),
			sender: senders[node],
		}
		sources[node] = src
		if cfg.Rate <= 0 {
			continue
		}
		var arrive func(now sim.Time)
		arrive = func(now sim.Time) {
			if cfg.Until > 0 && now >= cfg.Until {
				return
			}
			src.fire(now)
			gap := src.r.Geometric(cfg.Rate) + 1
			k.Schedule(now+gap, sim.PriTraffic, arrive)
		}
		first := src.r.Geometric(cfg.Rate)
		k.Schedule(first, sim.PriTraffic, arrive)
	}
	return sources, nil
}

// TotalSent sums the messages generated by all sources.
func TotalSent(sources []*Source) int64 {
	var total int64
	for _, s := range sources {
		total += s.Sent()
	}
	return total
}

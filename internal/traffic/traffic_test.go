package traffic

import (
	"math"
	"testing"

	"quarc/internal/sim"
)

// recorder counts messages instead of injecting them into a fabric.
type recorder struct {
	unicasts   []int
	broadcasts int
	multicasts [][]int
	times      []int64
}

func (r *recorder) SendUnicast(dst, msgLen int, now int64) uint64 {
	r.unicasts = append(r.unicasts, dst)
	r.times = append(r.times, now)
	return 0
}

func (r *recorder) SendBroadcast(msgLen int, now int64) uint64 {
	r.broadcasts++
	r.times = append(r.times, now)
	return 0
}

func (r *recorder) SendMulticast(targets []int, msgLen int, now int64) uint64 {
	r.multicasts = append(r.multicasts, append([]int(nil), targets...))
	r.times = append(r.times, now)
	return 0
}

func run(t *testing.T, cfg Config, cycles int64) ([]*recorder, []*Source) {
	t.Helper()
	var k sim.Kernel
	recs := make([]*recorder, cfg.N)
	senders := make([]Sender, cfg.N)
	for i := range recs {
		recs[i] = &recorder{}
		senders[i] = recs[i]
	}
	sources, err := Install(&k, cfg, senders)
	if err != nil {
		t.Fatal(err)
	}
	k.Run(cycles)
	return recs, sources
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{N: 1, Rate: 0.1, MsgLen: 4},
		{N: 8, Rate: -0.1, MsgLen: 4},
		{N: 8, Rate: 1.5, MsgLen: 4},
		{N: 8, Rate: 0.1, Beta: 2, MsgLen: 4},
		{N: 8, Rate: 0.1, MsgLen: 1},
		{N: 8, Rate: 0.1, MsgLen: 4, HotspotBias: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: bad config validated", i)
		}
	}
	good := Config{N: 8, Rate: 0.1, Beta: 0.05, MsgLen: 8}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestArrivalRate(t *testing.T) {
	const cycles = 200000
	cfg := Config{N: 4, Rate: 0.05, MsgLen: 4, Seed: 1}
	_, sources := run(t, cfg, cycles)
	for _, s := range sources {
		got := float64(s.Sent()) / cycles
		if math.Abs(got-cfg.Rate) > 0.005 {
			t.Errorf("node rate = %v, want about %v", got, cfg.Rate)
		}
	}
}

func TestBroadcastFraction(t *testing.T) {
	cfg := Config{N: 4, Rate: 0.2, Beta: 0.1, MsgLen: 4, Seed: 2}
	recs, sources := run(t, cfg, 100000)
	total := TotalSent(sources)
	var bcasts int
	for _, r := range recs {
		bcasts += r.broadcasts
	}
	frac := float64(bcasts) / float64(total)
	if math.Abs(frac-cfg.Beta) > 0.01 {
		t.Errorf("broadcast fraction = %v, want about %v", frac, cfg.Beta)
	}
}

func TestUniformDestinations(t *testing.T) {
	cfg := Config{N: 8, Rate: 0.2, MsgLen: 4, Seed: 3}
	recs, _ := run(t, cfg, 50000)
	counts := make([]int, cfg.N)
	total := 0
	for node, r := range recs {
		for _, d := range r.unicasts {
			if d == node {
				t.Fatal("self-addressed message")
			}
			counts[d]++
			total++
		}
	}
	want := float64(total) / float64(cfg.N)
	for d, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("destination %d count %d deviates from uniform %f", d, c, want)
		}
	}
}

func TestAntipodalPattern(t *testing.T) {
	cfg := Config{N: 8, Rate: 0.2, MsgLen: 4, Pattern: Antipodal, Seed: 4}
	recs, _ := run(t, cfg, 2000)
	for node, r := range recs {
		for _, d := range r.unicasts {
			if d != (node+4)%8 {
				t.Fatalf("node %d sent to %d, want antipode", node, d)
			}
		}
	}
}

func TestNearestNeighborPattern(t *testing.T) {
	cfg := Config{N: 8, Rate: 0.2, MsgLen: 4, Pattern: NearestNeighbor, Seed: 5}
	recs, _ := run(t, cfg, 2000)
	for node, r := range recs {
		for _, d := range r.unicasts {
			if d != (node+1)%8 {
				t.Fatalf("node %d sent to %d, want neighbour", node, d)
			}
		}
	}
}

func TestHotspotPattern(t *testing.T) {
	cfg := Config{N: 8, Rate: 0.2, MsgLen: 4, Pattern: Hotspot,
		HotspotNode: 3, HotspotBias: 0.5, Seed: 6}
	recs, _ := run(t, cfg, 50000)
	hot, total := 0, 0
	for node, r := range recs {
		if node == 3 {
			continue
		}
		for _, d := range r.unicasts {
			if d == 3 {
				hot++
			}
			total++
		}
	}
	frac := float64(hot) / float64(total)
	// bias + residual uniform probability of hitting the hotspot
	want := 0.5 + 0.5/7.0
	if math.Abs(frac-want) > 0.02 {
		t.Errorf("hotspot fraction = %v, want about %v", frac, want)
	}
}

func TestBitReversePattern(t *testing.T) {
	if bitReverse(1, 8) != 4 || bitReverse(3, 8) != 6 || bitReverse(0, 8) != 0 {
		t.Fatal("bitReverse wrong")
	}
	cfg := Config{N: 8, Rate: 0.2, MsgLen: 4, Pattern: BitReverse, Seed: 7}
	recs, _ := run(t, cfg, 2000)
	for node, r := range recs {
		want := bitReverse(node, 8)
		for _, d := range r.unicasts {
			if want != node && d != want {
				t.Fatalf("node %d sent to %d, want %d", node, d, want)
			}
			if d == node {
				t.Fatal("self-addressed message")
			}
		}
	}
}

func TestMulticastValidation(t *testing.T) {
	bad := []Config{
		{N: 8, Rate: 0.1, MsgLen: 4, McastFrac: -0.1},
		{N: 8, Rate: 0.1, MsgLen: 4, McastFrac: 1.5, McastSize: 3},
		{N: 8, Rate: 0.1, MsgLen: 4, McastFrac: 0.2},               // frac without size
		{N: 8, Rate: 0.1, MsgLen: 4, McastSize: 3},                 // size without frac
		{N: 8, Rate: 0.1, MsgLen: 4, McastFrac: 0.2, McastSize: 1}, // a unicast
		{N: 8, Rate: 0.1, MsgLen: 4, McastFrac: 0.2, McastSize: 8}, // broader than broadcast
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: bad multicast config validated", i)
		}
	}
	good := Config{N: 8, Rate: 0.1, MsgLen: 4, McastFrac: 0.2, McastSize: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("good multicast config rejected: %v", err)
	}
}

func TestMulticastFractionAndTargets(t *testing.T) {
	cfg := Config{N: 8, Rate: 0.2, Beta: 0.1, MsgLen: 4,
		McastFrac: 0.25, McastSize: 3, Seed: 11}
	recs, sources := run(t, cfg, 100000)
	total := TotalSent(sources)
	var mcasts int
	for node, r := range recs {
		mcasts += len(r.multicasts)
		for _, targets := range r.multicasts {
			if len(targets) != cfg.McastSize {
				t.Fatalf("node %d multicast has %d targets, want %d", node, len(targets), cfg.McastSize)
			}
			seen := map[int]bool{}
			for _, d := range targets {
				if d == node {
					t.Fatalf("node %d multicast targets itself", node)
				}
				if seen[d] {
					t.Fatalf("node %d multicast repeats target %d", node, d)
				}
				seen[d] = true
			}
		}
	}
	// McastFrac applies to the non-broadcast share of the traffic.
	want := (1 - cfg.Beta) * cfg.McastFrac
	frac := float64(mcasts) / float64(total)
	if math.Abs(frac-want) > 0.01 {
		t.Errorf("multicast fraction = %v, want about %v", frac, want)
	}
}

func TestUntilStopsGeneration(t *testing.T) {
	cfg := Config{N: 2, Rate: 0.5, MsgLen: 4, Seed: 8, Until: 100}
	recs, _ := run(t, cfg, 10000)
	for _, r := range recs {
		for _, at := range r.times {
			if at >= 100 {
				t.Fatalf("message generated at %d, after Until", at)
			}
		}
	}
}

func TestZeroRateGeneratesNothing(t *testing.T) {
	cfg := Config{N: 2, Rate: 0, MsgLen: 4, Seed: 9}
	_, sources := run(t, cfg, 1000)
	if TotalSent(sources) != 0 {
		t.Fatal("zero rate generated messages")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := Config{N: 4, Rate: 0.1, Beta: 0.2, MsgLen: 4, Seed: 10}
	a, _ := run(t, cfg, 5000)
	b, _ := run(t, cfg, 5000)
	for i := range a {
		if len(a[i].unicasts) != len(b[i].unicasts) || a[i].broadcasts != b[i].broadcasts {
			t.Fatal("traffic not deterministic")
		}
		for j := range a[i].unicasts {
			if a[i].unicasts[j] != b[i].unicasts[j] {
				t.Fatal("destination sequence differs")
			}
		}
	}
}

func TestInstallSenderCountMismatch(t *testing.T) {
	var k sim.Kernel
	cfg := Config{N: 4, Rate: 0.1, MsgLen: 4}
	if _, err := Install(&k, cfg, make([]Sender, 2)); err == nil {
		t.Fatal("mismatched sender count accepted")
	}
}

func TestPatternStrings(t *testing.T) {
	for _, p := range []Pattern{Uniform, Hotspot, Antipodal, NearestNeighbor, BitReverse, Pattern(9)} {
		if p.String() == "" {
			t.Fatalf("empty string for pattern %d", int(p))
		}
	}
}

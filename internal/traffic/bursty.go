package traffic

import (
	"fmt"

	"quarc/internal/rng"
	"quarc/internal/sim"
)

// Bursty traffic: the paper singles out burstiness as the Spidergon's worst
// case ("This situation is even exacerbated when the network is under bursty
// traffic as a result of some operations such as broadcast", §1). This
// source is a two-state Markov-modulated Bernoulli process: in the ON state
// a node generates messages at onRate per cycle; in the OFF state it is
// silent. Mean burst and gap lengths are geometric.
type BurstyConfig struct {
	N       int
	OnRate  float64 // messages/node/cycle while ON
	MeanOn  float64 // mean burst length in cycles
	MeanOff float64 // mean silence length in cycles
	Beta    float64 // broadcast fraction
	// McastFrac/McastSize mirror Config: the fraction of non-broadcast
	// messages sent as McastSize-target multicasts, drawn after the
	// broadcast draw so zero knobs leave existing streams untouched.
	McastFrac float64
	McastSize int
	MsgLen    int
	Seed      uint64
	Until     int64
}

// Validate checks the parameters.
func (c BurstyConfig) Validate() error {
	switch {
	case c.N < 2:
		return fmt.Errorf("traffic: %d nodes", c.N)
	case c.OnRate <= 0 || c.OnRate > 1:
		return fmt.Errorf("traffic: on-rate %v", c.OnRate)
	case c.MeanOn < 1 || c.MeanOff < 1:
		return fmt.Errorf("traffic: burst/gap means must be >= 1 cycle")
	case c.Beta < 0 || c.Beta > 1:
		return fmt.Errorf("traffic: beta %v", c.Beta)
	case c.MsgLen < 2:
		return fmt.Errorf("traffic: message length %d", c.MsgLen)
	}
	return validateMulticast(c.McastFrac, c.McastSize, c.N)
}

// MeanRate returns the long-run average offered load of the process.
func (c BurstyConfig) MeanRate() float64 {
	return c.OnRate * c.MeanOn / (c.MeanOn + c.MeanOff)
}

// BurstySource is one node's ON/OFF process.
type BurstySource struct {
	node   int
	cfg    BurstyConfig
	r      *rng.Stream
	sender Sender
	sent   int64
	on     bool
	pool   []int // reused multicast target scratch
}

// Sent returns how many messages this source generated.
func (s *BurstySource) Sent() int64 { return s.sent }

// InstallBursty creates one ON/OFF source per node on the kernel.
func InstallBursty(k *sim.Kernel, cfg BurstyConfig, senders []Sender) ([]*BurstySource, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(senders) != cfg.N {
		return nil, fmt.Errorf("traffic: %d senders for %d nodes", len(senders), cfg.N)
	}
	sources := make([]*BurstySource, cfg.N)
	for node := 0; node < cfg.N; node++ {
		src := &BurstySource{
			node:   node,
			cfg:    cfg,
			r:      rng.New(cfg.Seed, 0xB0B0+uint64(node)),
			sender: senders[node],
		}
		sources[node] = src
		// Each source alternates ON/OFF phases; inside an ON phase it
		// behaves like a Bernoulli source at OnRate.
		var phase func(now sim.Time)
		phase = func(now sim.Time) {
			if cfg.Until > 0 && now >= cfg.Until {
				return
			}
			src.on = !src.on
			var length int64
			if src.on {
				length = 1 + src.r.Geometric(1/cfg.MeanOn)
				// Schedule the burst's arrivals.
				for t := now; t < now+length; t++ {
					if cfg.Until > 0 && t >= cfg.Until {
						break
					}
					if src.r.Bernoulli(cfg.OnRate) {
						t := t
						k.Schedule(t, sim.PriTraffic, func(fire sim.Time) {
							src.fire(fire)
						})
					}
				}
			} else {
				length = 1 + src.r.Geometric(1/cfg.MeanOff)
			}
			k.Schedule(now+length, sim.PriTraffic, phase)
		}
		start := src.r.Geometric(0.5)
		k.Schedule(start, sim.PriTraffic, phase)
	}
	return sources, nil
}

func (s *BurstySource) fire(now int64) {
	switch {
	case s.cfg.Beta > 0 && s.r.Bernoulli(s.cfg.Beta):
		s.sender.SendBroadcast(s.cfg.MsgLen, now)
	case s.cfg.McastFrac > 0 && s.r.Bernoulli(s.cfg.McastFrac):
		s.pool = multicastTargets(s.pool, s.r, s.cfg.N, s.node, s.cfg.McastSize)
		s.sender.SendMulticast(s.pool[:s.cfg.McastSize], s.cfg.MsgLen, now)
	default:
		n := s.cfg.N
		d := s.r.Intn(n - 1)
		if d >= s.node {
			d++
		}
		s.sender.SendUnicast(d, s.cfg.MsgLen, now)
	}
	s.sent++
}

package router

import (
	"testing"

	"quarc/internal/flit"
)

func TestGrantAndOccupancyCounters(t *testing.T) {
	a, b := twoNodeLine(4)
	p := pkt(1, 4, 1)
	for _, f := range p {
		a.Push(0, 0, f)
	}
	for cyc := 0; cyc < 12; cyc++ {
		step(a, b)
	}
	as, bs := a.Stats(), b.Stats()
	if as.Grants != 4 {
		t.Fatalf("A granted %d flits, want 4", as.Grants)
	}
	if bs.Grants != 4 { // 4 ejections at B
		t.Fatalf("B granted %d flits, want 4", bs.Grants)
	}
	if as.Cycles == 0 || as.MeanOccupancy() <= 0 {
		t.Fatalf("occupancy integral missing: %+v", as)
	}
	if as.TotalStalls() != 0 {
		t.Fatalf("unexpected stalls on an empty line: %+v", as.Stalls)
	}
}

func TestNoCreditStallCounted(t *testing.T) {
	a, b := twoNodeLine(2)
	// Fill B's lane 0 so A has no credit.
	blocker := pkt(9, 2, 1)
	b.Push(0, 0, blocker[0])
	b.Push(0, 0, blocker[1])
	for _, f := range pkt(1, 3, 1) {
		a.Push(0, 0, f)
	}
	a.Snapshot()
	b.Snapshot()
	a.Commit(a.Arbitrate([]Downstream{creditOf{b, 0}}, nil))
	st := a.Stats()
	if st.Stalls[StallNoCredit] == 0 {
		t.Fatalf("no-credit stall not recorded: %+v", st.Stalls)
	}
}

func TestArbLostStallCounted(t *testing.T) {
	// Two inputs race for one output; the loser must record arb-lost.
	route := func(node, in int, f flit.Flit) Decision { return Decision{Out: 0} }
	vcf := func(node, out, in, cur int, f flit.Flit) int { return in % 2 }
	a := New(Config{Node: 0, VCs: 2, Depth: 8, InLanes: []int{1, 1}, NOut: 1,
		EjectPort: NoOutput, Route: route, VCNext: vcf})
	sink := New(Config{Node: 1, VCs: 2, Depth: 64, InLanes: []int{2}, NOut: 1,
		EjectPort: NoOutput,
		Route:     func(node, in int, f flit.Flit) Decision { return Decision{Out: NoOutput, Eject: true} },
		VCNext:    vcf})
	for _, f := range pkt(1, 4, 9) {
		a.Push(0, 0, f)
	}
	for _, f := range pkt(2, 4, 9) {
		a.Push(1, 0, f)
	}
	a.Snapshot()
	sink.Snapshot()
	moves := a.Arbitrate([]Downstream{creditOf{sink, 0}}, nil)
	a.Commit(moves)
	if len(moves) != 1 {
		t.Fatalf("granted %d moves, want 1 (single output)", len(moves))
	}
	if a.Stats().Stalls[StallArbLost] != 1 {
		t.Fatalf("arb-lost not recorded: %+v", a.Stats().Stalls)
	}
}

func TestVCBusyStallCounted(t *testing.T) {
	// Packet A holds downstream VC 0; packet B in the other lane also needs
	// VC 0 (same VCNext) and must stall with vc-busy.
	route := func(node, in int, f flit.Flit) Decision {
		if node == 1 {
			return Decision{Out: NoOutput, Eject: true}
		}
		return Decision{Out: 0}
	}
	vcf := func(node, out, in, cur int, f flit.Flit) int { return 0 } // everyone wants VC 0
	mk := func(id int) *Router {
		return New(Config{Node: id, VCs: 2, Depth: 8, InLanes: []int{2}, NOut: 1,
			EjectPort: NoOutput, Route: route, VCNext: vcf})
	}
	a, b := mk(0), mk(1)
	// Only the header of packet 1: it allocates VC 0 and then its lane runs
	// dry (upstream starvation), so the arbiter switches to lane 1, whose
	// header finds VC 0 held by the unfinished packet.
	a.Push(0, 0, pkt(1, 6, 1)[0])
	for _, f := range pkt(2, 6, 1) {
		a.Push(0, 1, f)
	}
	sawVCBusy := false
	for cyc := 0; cyc < 20; cyc++ {
		a.Snapshot()
		b.Snapshot()
		am := a.Arbitrate([]Downstream{creditOf{b, 0}}, nil)
		a.Commit(am)
		for _, m := range am {
			if m.Out == 0 {
				b.Push(0, m.OutVC, m.Flit)
			}
		}
		bm := b.Arbitrate([]Downstream{nil}, nil)
		b.Commit(bm)
		if a.Stats().Stalls[StallVCBusy] > 0 {
			sawVCBusy = true
		}
	}
	if !sawVCBusy {
		t.Fatal("vc-busy stall never recorded")
	}
}

func TestStallCauseStrings(t *testing.T) {
	if StallNoCredit.String() != "no-credit" || StallVCBusy.String() != "vc-busy" ||
		StallArbLost.String() != "arb-lost" || StallCause(9).String() == "" {
		t.Fatal("stall cause strings wrong")
	}
}

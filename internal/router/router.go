// Package router implements a cycle-level wormhole switch parameterised by
// topology-specific wiring and routing, mirroring the module decomposition of
// the paper's switch (Fig 4):
//
//   - Input Port Controller (IPC): two virtual-channel lanes of parametrised
//     flit buffers per input port, with a write controller that demultiplexes
//     incoming flits into lanes (§2.3.1). Injection ports from the network
//     adapter are modelled as additional input ports with a single lane.
//   - VC arbiter: per input port, selects which lane presents a flit to the
//     crossbar each cycle. The paper's timer FSM gives blocked lanes "equal
//     opportunity"; at cycle granularity this is a switch-on-block policy
//     (the arbiter moves to the other lane when the chosen one fails to
//     advance), which is deterministic and fair.
//   - Flow Control Unit (FCU): per lane, remembers the output binding from
//     header until tail (the switching-information table of §2.3.2).
//   - Output Port Controller (OPC): per output port, a master FSM that
//     round-robins over the (at most three, for Quarc) requesting IPCs, and a
//     slave FSM that allocates a downstream virtual channel per packet and
//     holds it until the tail passes (the VC allocation table of §2.3.3).
//     There are no output buffers, exactly as in the paper.
//
// The switch is driven by a two-phase network step: Bid/Grant compute moves
// against a start-of-cycle occupancy snapshot, then Commit applies them, so
// the global simulation is order-independent and a flit advances at most one
// hop per cycle.
package router

import (
	"fmt"

	"quarc/internal/buffer"
	"quarc/internal/flit"
)

// Decision is the routing verdict for a header flit at an input port.
type Decision struct {
	Out   int  // output port to forward to; NoOutput for pure local delivery
	Eject bool // deliver to the local PE
	Clone bool // deliver AND forward simultaneously (Quarc absorb-and-forward)
}

// NoOutput marks a decision with no forwarding component.
const NoOutput = -1

// RouteFunc computes the decision for a header flit f arriving at input
// port in of the given node. It must be a pure function (deterministic
// routing, §2.5.1).
type RouteFunc func(node, in int, f flit.Flit) Decision

// VCFunc returns the virtual channel to request on output port out for a
// packet arriving on input port in with current virtual channel cur (0 at
// injection). This implements the dateline discipline of internal/topology;
// the torus model additionally resets the VC when a packet changes
// dimension.
type VCFunc func(node, out, in, cur int, f flit.Flit) int

// Config describes a switch instance.
type Config struct {
	Node      int
	VCs       int   // lanes per network input port (the paper's switch has 2)
	Depth     int   // flits per lane buffer
	InLanes   []int // lanes per input port; len(InLanes) = number of inputs
	NOut      int   // number of output ports
	EjectPort int   // output port index acting as the shared ejection port, or NoOutput for dedicated per-input ejection (Quarc)
	Route     RouteFunc
	VCNext    VCFunc
	// Reach[o] lists the input ports wired to output o in the minimal
	// crossbar. nil means fully connected. Used to catch routing bugs and to
	// drive the cost model.
	Reach [][]int
}

type lane struct {
	q      *buffer.FIFO
	active bool // between header grant and tail departure
	dec    Decision
	outVC  int
	// Cached routing verdict for the packet whose header waits at this
	// lane's head: Route is pure, so a header blocked for many cycles needs
	// it computed (and validated) once, not once per cycle.
	pendDec Decision
	pendPkt uint64
	pendOK  bool
	// Blocked-sleep recording (FrozenBlocked): whether this lane held a
	// flit when the switch froze, and the stall cause the dense arbiter
	// would charge it each slept cycle.
	frozen      bool
	frozenCause StallCause
}

type inputPort struct {
	lanes []lane
	rr    int // VC arbiter pointer
	snap  []int
}

const noOwner = -1

type outputPort struct {
	owner []int // per downstream VC: packed (in*16+lane) of the holder, or noOwner
	rr    int   // OPC master FSM round-robin pointer over inputs
	reach []int // allowed input ports (nil = all)
	sent  uint64
}

// Move is a committed flit transfer, reported to the network for delivery
// and link accounting.
type Move struct {
	In, Lane int
	Out      int // NoOutput for pure ejection
	OutVC    int
	Deliver  bool // a copy reaches the local PE
	Flit     flit.Flit
}

// Router is one switch instance.
type Router struct {
	cfg      Config
	in       []inputPort
	out      []outputPort
	bids     []bid  // reused each cycle
	granted  []bool // reused each cycle: per input, action taken
	buffered int    // flits across all input lanes (O(1) quiescence report)
	// frozenOcc is the buffered-flit count recorded by FrozenBlocked, the
	// per-cycle occupancy integrand replayed for blocked-slept cycles.
	frozenOcc uint64
	stats     Stats
}

type bid struct {
	in, lane int
	dec      Decision
	head     flit.Flit
	valid    bool
}

// New constructs a switch from its configuration.
func New(cfg Config) *Router {
	if cfg.VCs < 1 || cfg.VCs > 8 {
		//quarc:allow hotpath: invariant-violation panic path, unreachable in a correct build
		panic(fmt.Sprintf("router: unsupported VC count %d", cfg.VCs))
	}
	if cfg.Depth < 1 {
		panic("router: non-positive buffer depth")
	}
	if len(cfg.InLanes) == 0 || cfg.NOut < 1 {
		panic("router: switch needs inputs and outputs")
	}
	r := &Router{cfg: cfg}
	r.in = make([]inputPort, len(cfg.InLanes))
	for i, nl := range cfg.InLanes {
		if nl < 1 {
			panic("router: input port with no lanes")
		}
		p := &r.in[i]
		p.lanes = make([]lane, nl)
		p.snap = make([]int, nl)
		for l := range p.lanes {
			p.lanes[l].q = buffer.New(cfg.Depth)
			p.lanes[l].outVC = -1
		}
	}
	r.out = make([]outputPort, cfg.NOut)
	for o := range r.out {
		r.out[o].owner = make([]int, cfg.VCs)
		for v := range r.out[o].owner {
			r.out[o].owner[v] = noOwner
		}
		if cfg.Reach != nil {
			r.out[o].reach = cfg.Reach[o]
		}
	}
	r.bids = make([]bid, len(cfg.InLanes))
	r.granted = make([]bool, len(cfg.InLanes))
	return r
}

// Node returns the node identifier.
func (r *Router) Node() int { return r.cfg.Node }

// NumInputs returns the number of input ports (network + injection).
func (r *Router) NumInputs() int { return len(r.in) }

// LaneFree returns the free space of the given input lane; the network uses
// it as the upstream credit count.
func (r *Router) LaneFree(in, ln int) int { return r.in[in].lanes[ln].q.Free() }

// LaneLen returns the occupancy of the given input lane.
func (r *Router) LaneLen(in, ln int) int { return r.in[in].lanes[ln].q.Len() }

// Push inserts a flit into an input lane (used by the upstream link and by
// the network adapter for injection ports). It reports false when the lane
// is full; callers must respect the credit/handshake and treat false as a
// protocol violation.
//
//quarc:hotpath
func (r *Router) Push(in, ln int, f flit.Flit) bool {
	if !r.in[in].lanes[ln].q.Push(f) {
		return false
	}
	r.buffered++
	return true
}

// Quiescent reports whether the switch holds no flits at all. A quiescent
// router's cycle is a no-op apart from statistics accounting: it produces no
// bids, commits no moves and its credit view cannot change until a flit is
// pushed in, so the network may skip stepping it entirely. Held output VCs
// (a lane mid-packet whose buffered flits all departed) do not block
// quiescence: they only matter once the next flit arrives, which wakes the
// router.
func (r *Router) Quiescent() bool { return r.buffered == 0 }

// RefreshSnapshot re-latches the per-lane credit snapshots from the live
// lane occupancy without accounting a cycle. The network calls it when it
// puts a drained router to sleep: upstream routers keep reading the sleeping
// router's snapshot as their credit view, so it must reflect the drained
// state rather than whatever the last stepped cycle latched.
func (r *Router) RefreshSnapshot() {
	for i := range r.in {
		p := &r.in[i]
		for l := range p.lanes {
			p.snap[l] = p.lanes[l].q.Free()
		}
	}
}

// AddIdleCycles accounts n cycles the network skipped stepping this router
// in bulk: the occupancy integral gains nothing (a skipped router holds no
// flits) and the cycle count gains n, so MeanOccupancy and every per-cycle
// rate stay bit-identical to dense stepping.
func (r *Router) AddIdleCycles(n uint64) {
	r.stats.Cycles += n
}

// FrozenBlocked reports whether the switch is stably blocked: it holds flits,
// but no head flit of any lane can move this cycle or any later one until
// external state changes — every candidate move is stopped by a downstream
// credit that only a downstream pop can free, or by a local output-VC
// ownership that only a move of this switch itself could release. The check
// is evaluated against the live downstream occupancy (not the one-cycle
// snapshot): a frozen switch's credit view cannot change between the lagged
// and live values, and the live view is what stays valid for the whole sleep.
//
// On success it records, per nonempty lane, the stall cause the dense arbiter
// would charge every blocked cycle, plus the occupancy integrand;
// ReplayBlockedCycles consumes the recording when the switch wakes. A false
// return leaves the recording undefined.
func (r *Router) FrozenBlocked(live []Downstream) bool {
	r.frozenOcc = uint64(r.buffered)
	for i := range r.in {
		p := &r.in[i]
		for l := range p.lanes {
			ln := &p.lanes[l]
			head, ok := ln.q.Peek()
			if !ok {
				ln.frozen = false
				continue
			}
			dec := r.laneDecision(i, l, head)
			if dec.Out == NoOutput {
				// Dedicated ejection always succeeds: not blocked.
				return false
			}
			b := bid{in: i, lane: l, dec: dec, head: head, valid: true}
			ok, _, cause := r.trySend(dec.Out, &b, live[dec.Out])
			if ok {
				return false
			}
			ln.frozen = true
			ln.frozenCause = cause
		}
	}
	return true
}

// ReplayBlockedCycles accounts k cycles the network skipped stepping this
// switch while it slept blocked (FrozenBlocked held when it was put to
// sleep): the occupancy integral grows by the frozen occupancy each cycle,
// and each input port's VC arbiter replays its selection rotation over the
// recorded nonempty lanes — charging each selected lane's recorded stall
// cause and leaving the round-robin pointer exactly where dense stepping
// would have. Incremental: replaying k then k' cycles equals replaying k+k'.
func (r *Router) ReplayBlockedCycles(k uint64) {
	if k == 0 {
		return
	}
	r.stats.Cycles += k
	r.stats.OccupancySum += k * r.frozenOcc
	for i := range r.in {
		p := &r.in[i]
		n := len(p.lanes)
		var sbuf [8]int
		s := sbuf[:0]
		if n > len(sbuf) {
			s = make([]int, 0, n)
		}
		for l := range p.lanes {
			if p.lanes[l].frozen {
				s = append(s, l)
			}
		}
		if len(s) == 0 {
			continue
		}
		// Each cycle the arbiter selects the first frozen lane at or after
		// rr (cyclically), charges its stall, and advances rr past it — so
		// successive selections walk s cyclically from the first member >= rr.
		start := 0
		for j, l := range s {
			if l >= p.rr {
				start = j
				break
			}
		}
		per := k / uint64(len(s))
		rem := k % uint64(len(s))
		for j := range s {
			cnt := per
			if uint64(j) < rem {
				cnt++
			}
			if cnt == 0 {
				continue
			}
			l := s[(start+j)%len(s)]
			r.stats.Stalls[p.lanes[l].frozenCause] += cnt
		}
		if n > 1 {
			last := s[(start+int((k-1)%uint64(len(s))))%len(s)]
			p.rr = (last + 1) % n
		}
	}
}

// Sent returns the number of flits the given output port has transmitted
// (link-load accounting for the edge-symmetry analysis).
func (r *Router) Sent(out int) uint64 { return r.out[out].sent }

// Snapshot latches per-lane occupancy at the start of the cycle. Grant
// decisions observe only the snapshot, giving registered (one-cycle lagged)
// credit semantics.
//
//quarc:hotpath
func (r *Router) Snapshot() {
	occ := 0
	for i := range r.in {
		p := &r.in[i]
		for l := range p.lanes {
			q := p.lanes[l].q
			n := q.Len()
			p.snap[l] = q.Cap() - n
			occ += n
		}
	}
	r.stats.OccupancySum += uint64(occ)
	r.stats.Cycles++
}

// SnapFree returns the snapshotted free space of an input lane, used by the
// upstream router's OPC as its credit view.
func (r *Router) SnapFree(in, ln int) int { return r.in[in].snap[ln] }

func (r *Router) reachable(o, in int) bool {
	reach := r.out[o].reach
	if reach == nil {
		return true
	}
	for _, x := range reach {
		if x == in {
			return true
		}
	}
	return false
}

// bidFor runs the VC arbiter of one input port: select the lane presented to
// the crossbar this cycle, filling b in place. An invalid bid leaves the
// other fields stale — every reader gates on b.valid, and writing only the
// flag keeps the empty-port case (the common one at low load) free of the
// struct zeroing a by-value return would pay.
//
//quarc:hotpath
func (r *Router) bidFor(i int, b *bid) {
	p := &r.in[i]
	n := len(p.lanes)
	for k := 0; k < n; k++ {
		l := (p.rr + k) % n
		ln := &p.lanes[l]
		head, ok := ln.q.Peek()
		if !ok {
			continue
		}
		b.in, b.lane, b.head, b.valid = i, l, head, true
		b.dec = r.laneDecision(i, l, head)
		return
	}
	b.valid = false
}

// laneDecision returns the routing decision governing the flit at the head of
// lane (i, l): the FCU's latched decision for an active packet, or the cached
// (validated) route of the waiting header.
//
//quarc:hotpath
func (r *Router) laneDecision(i, l int, head flit.Flit) Decision {
	ln := &r.in[i].lanes[l]
	if ln.active {
		return ln.dec
	}
	if head.Kind != flit.Header {
		//quarc:allow hotpath: invariant-violation panic path, unreachable in a correct build
		panic(fmt.Sprintf("router %d in %d lane %d: %v flit with no active packet",
			r.cfg.Node, i, l, head.Kind))
	}
	if !ln.pendOK || ln.pendPkt != head.PktID {
		dec := r.cfg.Route(r.cfg.Node, i, head)
		if dec.Out == NoOutput && !dec.Eject {
			//quarc:allow hotpath: invariant-violation panic path, unreachable in a correct build
			panic(fmt.Sprintf("router %d in %d: decision with no action for %+v",
				r.cfg.Node, i, head))
		}
		if dec.Out == NoOutput && r.cfg.EjectPort != NoOutput {
			//quarc:allow hotpath: invariant-violation panic path, unreachable in a correct build
			panic(fmt.Sprintf("router %d in %d: pure-local decision on a shared-eject switch",
				r.cfg.Node, i))
		}
		if dec.Out != NoOutput && !r.reachable(dec.Out, i) {
			//quarc:allow hotpath: invariant-violation panic path, unreachable in a correct build
			panic(fmt.Sprintf("router %d: route sends input %d to unreachable output %d",
				r.cfg.Node, i, dec.Out))
		}
		ln.pendDec, ln.pendPkt, ln.pendOK = dec, head.PktID, true
	}
	return ln.pendDec
}

// Downstream abstracts the credit view of whatever an output port feeds; the
// network wires each output to the downstream router's input port (or to a
// local sink with infinite acceptance for shared ejection ports).
type Downstream interface {
	// CreditFree returns the snapshotted free space of downstream lane vc.
	CreditFree(vc int) int
}

// Arbitrate computes this router's moves for the cycle. downstream maps each
// output port to its credit view; nil entries mean "always has space" (used
// for the shared ejection port, where the PE absorbs at link rate). The
// returned moves reference flits still in their source lanes; the network
// must call Commit exactly once with the same slice.
//
//quarc:hotpath
func (r *Router) Arbitrate(downstream []Downstream, moves []Move) []Move {
	// VC arbitration: one candidate lane per input port.
	nbids := 0
	for i := range r.in {
		r.bidFor(i, &r.bids[i])
		if r.bids[i].valid {
			nbids++
		}
	}
	if nbids == 0 {
		return moves // idle switch: nothing to arbitrate this cycle
	}

	granted := r.granted // per input: action taken this cycle
	for i := range granted {
		granted[i] = false
	}

	// Dedicated ejection (Quarc all-port absorb): decisions with no
	// forwarding component need no OPC and always succeed.
	if r.cfg.EjectPort == NoOutput {
		for i := range r.bids {
			b := &r.bids[i]
			if b.valid && b.dec.Out == NoOutput && b.dec.Eject {
				moves = append(moves, Move{In: b.in, Lane: b.lane, Out: NoOutput,
					Deliver: true, Flit: b.head})
				granted[b.in] = true
				r.stats.Grants++
			}
		}
	}

	// OPC arbitration per output port.
	for o := range r.out {
		op := &r.out[o]
		nIn := len(r.in)
		for k := 0; k < nIn; k++ {
			i := (op.rr + k) % nIn
			b := &r.bids[i]
			if !b.valid || granted[i] || b.dec.Out != o {
				continue
			}
			ok, outVC, _ := r.trySend(o, b, downstream[o])
			if !ok {
				continue
			}
			moves = append(moves, Move{In: b.in, Lane: b.lane, Out: o, OutVC: outVC,
				Deliver: b.dec.Clone || (o == r.cfg.EjectPort && b.dec.Eject), Flit: b.head})
			granted[i] = true
			r.stats.Grants++
			op.rr = (i + 1) % nIn // master FSM moves on after serving a request
			break
		}
	}

	// VC arbiter pointers: a lane that bid and failed yields to its sibling
	// (the paper's times_up timeout). Failed bids are classified for the
	// contention statistics: a bid that would have been sendable lost
	// output arbitration; otherwise trySend names the blocking resource.
	for i := range r.bids {
		b := &r.bids[i]
		if !b.valid || granted[i] {
			continue
		}
		if b.dec.Out != NoOutput {
			if ok, _, cause := r.trySend(b.dec.Out, b, downstream[b.dec.Out]); ok {
				r.stats.Stalls[StallArbLost]++
			} else {
				r.stats.Stalls[cause]++
			}
		}
		if len(r.in[i].lanes) > 1 {
			r.in[i].rr = (b.lane + 1) % len(r.in[i].lanes)
		}
	}
	return moves
}

// trySend checks credit and VC allocation for a bid on output o. On
// failure it reports the blocking resource.
//
//quarc:hotpath
func (r *Router) trySend(o int, b *bid, down Downstream) (bool, int, StallCause) {
	op := &r.out[o]
	packed := b.in*16 + b.lane
	ln := &r.in[b.in].lanes[b.lane]
	if ln.active {
		// Body or tail: use the allocated VC; need one credit.
		vc := ln.outVC
		if op.owner[vc] != packed {
			//quarc:allow hotpath: invariant-violation panic path, unreachable in a correct build
			panic(fmt.Sprintf("router %d out %d: lane %d.%d lost VC %d ownership",
				r.cfg.Node, o, b.in, b.lane, vc))
		}
		if down != nil && down.CreditFree(vc) < 1 {
			return false, 0, StallNoCredit
		}
		return true, vc, 0
	}
	// Header: the slave FSM allocates a downstream VC.
	vc := 0
	if o == r.cfg.EjectPort {
		// The PE-side buffers have no dateline constraint: first free VC.
		vc = -1
		for v := range op.owner {
			if op.owner[v] == noOwner {
				vc = v
				break
			}
		}
		if vc < 0 {
			return false, 0, StallVCBusy
		}
	} else {
		// The lane a flit sits in is the VC it used on its incoming link
		// (the network pushes forwarded flits into lane[outVC]); injection
		// ports have a single lane 0, matching the VC-0 start of the
		// dateline discipline.
		vc = r.cfg.VCNext(r.cfg.Node, o, b.in, b.lane, b.head)
		if vc < 0 || vc >= r.cfg.VCs {
			//quarc:allow hotpath: invariant-violation panic path, unreachable in a correct build
			panic(fmt.Sprintf("router %d: VCNext returned %d", r.cfg.Node, vc))
		}
		if op.owner[vc] != noOwner {
			return false, 0, StallVCBusy
		}
	}
	if down != nil && down.CreditFree(vc) < 1 {
		return false, 0, StallNoCredit
	}
	return true, vc, 0
}

// Commit applies previously computed moves: pops flits from their lanes,
// updates FCU/OPC state, and returns the flits to forward. The network is
// responsible for pushing forwarded flits into the downstream input lanes
// and for delivering ejected copies.
//
//quarc:hotpath
func (r *Router) Commit(moves []Move) {
	for mi := range moves {
		m := &moves[mi]
		ln := &r.in[m.In].lanes[m.Lane]
		f, ok := ln.q.Pop()
		if !ok || f.PktID != m.Flit.PktID || f.Seq != m.Flit.Seq {
			//quarc:allow hotpath: invariant-violation panic path, unreachable in a correct build
			panic(fmt.Sprintf("router %d: commit desync at in %d lane %d", r.cfg.Node, m.In, m.Lane))
		}
		r.buffered--
		// FCU bookkeeping: the lane remembers its packet's decision from
		// header to tail, whether the packet is being forwarded or absorbed
		// locally.
		if f.Kind == flit.Header {
			ln.active = true
			if ln.pendOK && ln.pendPkt == f.PktID {
				ln.dec = ln.pendDec
			} else {
				ln.dec = r.cfg.Route(r.cfg.Node, m.In, f)
			}
			ln.pendOK = false
			ln.outVC = m.OutVC
		}
		if f.Kind == flit.Tail {
			ln.active = false
			ln.outVC = -1
		}
		// OPC bookkeeping only applies to granted outputs.
		if m.Out != NoOutput {
			op := &r.out[m.Out]
			op.sent++
			packed := m.In*16 + m.Lane
			if f.Kind == flit.Header {
				op.owner[m.OutVC] = packed
			}
			if f.Kind == flit.Tail {
				if op.owner[m.OutVC] != packed {
					//quarc:allow hotpath: invariant-violation panic path, unreachable in a correct build
					panic(fmt.Sprintf("router %d: tail releasing foreign VC", r.cfg.Node))
				}
				op.owner[m.OutVC] = noOwner
			}
		}
	}
}

// LaneContents returns a copy of the flits buffered in the given input lane
// (head first). ok is false when the lane index is out of range; callers can
// iterate lanes until it turns false. Inspection hook for the invariant
// checker.
func (r *Router) LaneContents(in, lane int) (flits []flit.Flit, ok bool) {
	if in < 0 || in >= len(r.in) {
		return nil, false
	}
	if lane < 0 || lane >= len(r.in[in].lanes) {
		return nil, false
	}
	return r.in[in].lanes[lane].q.Snapshot(), true
}

// VCOwner reports whether output o's downstream VC vc is currently held
// (test hook for wormhole invariants).
func (r *Router) VCOwner(o, vc int) (in, laneIdx int, held bool) {
	w := r.out[o].owner[vc]
	if w == noOwner {
		return 0, 0, false
	}
	return w / 16, w % 16, true
}

package router

import (
	"testing"

	"quarc/internal/flit"
)

// twoNodeLine builds two routers A -> B connected by one link: A input 0 is
// fed by the test, A output 0 leads to B input 0, B output 0 is unused, and
// the route function ejects at B (node 1) via dedicated ejection.
func twoNodeLine(depth int) (*Router, *Router) {
	route := func(node, in int, f flit.Flit) Decision {
		if node == 1 {
			return Decision{Out: NoOutput, Eject: true}
		}
		return Decision{Out: 0}
	}
	vc := func(node, out, in, cur int, f flit.Flit) int { return cur }
	mk := func(id int) *Router {
		return New(Config{
			Node: id, VCs: 2, Depth: depth,
			InLanes: []int{2}, NOut: 1, EjectPort: NoOutput,
			Route: route, VCNext: vc,
		})
	}
	return mk(0), mk(1)
}

type creditOf struct {
	r    *Router
	port int
}

func (c creditOf) CreditFree(vc int) int { return c.r.SnapFree(c.port, vc) }

// step runs one two-phase cycle over the two-node line and returns B's
// delivered flits.
func step(a, b *Router) []flit.Flit {
	a.Snapshot()
	b.Snapshot()
	am := a.Arbitrate([]Downstream{creditOf{b, 0}}, nil)
	bm := b.Arbitrate([]Downstream{nil}, nil)
	a.Commit(am)
	b.Commit(bm)
	var delivered []flit.Flit
	for _, m := range am {
		if m.Out == 0 {
			if !b.Push(0, m.OutVC, m.Flit) {
				panic("push failed")
			}
		}
	}
	for _, m := range bm {
		if m.Deliver {
			delivered = append(delivered, m.Flit)
		}
	}
	return delivered
}

func pkt(id uint64, n, dst int) []flit.Flit {
	return flit.Packet(flit.Flit{Src: 0, Dst: dst, PktID: id, MsgID: id}, n)
}

func TestSingleHopPipeline(t *testing.T) {
	a, b := twoNodeLine(4)
	p := pkt(1, 4, 1)
	for _, f := range p {
		if !a.Push(0, 0, f) {
			t.Fatal("push rejected")
		}
	}
	var got []flit.Flit
	for cyc := 0; cyc < 20 && len(got) < 4; cyc++ {
		got = append(got, step(a, b)...)
	}
	if len(got) != 4 {
		t.Fatalf("delivered %d flits, want 4", len(got))
	}
	for i, f := range got {
		if f.Seq != i {
			t.Fatalf("flit %d has seq %d (out of order)", i, f.Seq)
		}
	}
}

func TestBackPressureLimitsOccupancy(t *testing.T) {
	// With depth 2 at B and nothing draining B (eject happens though...),
	// use a route that never ejects to create a hard block.
	blockRoute := func(node, in int, f flit.Flit) Decision {
		if node == 1 {
			return Decision{Out: 0} // forward into the void: B out 0 has no credit view -> nil means infinite, so use a full lane instead
		}
		return Decision{Out: 0}
	}
	_ = blockRoute
	// Simpler: fill B's lane manually and check A cannot send.
	a, b := twoNodeLine(2)
	// Occupy B's input lane 0 completely with an unrelated packet that
	// cannot move (its head is a header that routes to eject — but we never
	// step B, so it just sits there).
	blocker := pkt(9, 2, 1)
	b.Push(0, 0, blocker[0])
	b.Push(0, 0, blocker[1])

	p := pkt(1, 3, 1)
	for _, f := range p {
		a.Push(0, 0, f)
	}
	a.Snapshot()
	b.Snapshot()
	moves := a.Arbitrate([]Downstream{creditOf{b, 0}}, nil)
	for _, m := range moves {
		if m.Out == 0 && m.OutVC == 0 {
			t.Fatal("A sent into a full downstream lane")
		}
	}
}

func TestHeaderAllocatesVCBodyFollowsTailReleases(t *testing.T) {
	a, b := twoNodeLine(4)
	p := pkt(1, 3, 1)
	for _, f := range p {
		a.Push(0, 0, f)
	}
	// Cycle 1: header moves, VC 0 owned by input 0 lane 0.
	step(a, b)
	if _, _, held := a.VCOwner(0, 0); !held {
		t.Fatal("header did not allocate the downstream VC")
	}
	step(a, b) // body
	if _, _, held := a.VCOwner(0, 0); !held {
		t.Fatal("VC released before tail")
	}
	step(a, b) // tail
	if _, _, held := a.VCOwner(0, 0); held {
		t.Fatal("tail did not release the VC")
	}
}

func TestTwoPacketsInterleaveAcrossVCs(t *testing.T) {
	// Packets in different lanes of the same input share the physical link
	// by alternating (VC arbiter), each on its own downstream VC.
	a, b := twoNodeLine(8)
	p0, p1 := pkt(1, 4, 1), pkt(2, 4, 1)
	for _, f := range p0 {
		a.Push(0, 0, f)
	}
	for _, f := range p1 {
		a.Push(0, 1, f)
	}
	var got []uint64
	for cyc := 0; cyc < 40 && len(got) < 8; cyc++ {
		for _, f := range step(a, b) {
			if f.Kind == flit.Tail {
				got = append(got, f.PktID)
			}
		}
	}
	if len(got) != 2 {
		t.Fatalf("delivered %d tails, want 2", len(got))
	}
}

func TestVCArbiterSwitchesOnBlock(t *testing.T) {
	// Lane 0 holds a packet that cannot advance (downstream VC 0 lane full);
	// lane 1 holds a packet for the free VC 1. The arbiter must let lane 1
	// proceed rather than spinning on lane 0.
	route := func(node, in int, f flit.Flit) Decision {
		if node == 1 {
			return Decision{Out: NoOutput, Eject: true}
		}
		return Decision{Out: 0}
	}
	// Force lane-indexed VCs downstream so lane 0 -> VC 0, lane 1 -> VC 1.
	vcf := func(node, out, in, cur int, f flit.Flit) int { return cur }
	mk := func(id int) *Router {
		return New(Config{Node: id, VCs: 2, Depth: 2, InLanes: []int{2}, NOut: 1,
			EjectPort: NoOutput, Route: route, VCNext: vcf})
	}
	a, b := mk(0), mk(1)
	// Fill B lane 0 so VC 0 has no credit.
	blocker := pkt(9, 2, 1)
	b.Push(0, 0, blocker[0])
	b.Push(0, 0, blocker[1])

	p0, p1 := pkt(1, 3, 1), pkt(2, 3, 1)
	for _, f := range p0 {
		a.Push(0, 0, f)
	}
	for _, f := range p1 {
		a.Push(0, 1, f)
	}
	moved := false
	for cyc := 0; cyc < 6; cyc++ {
		a.Snapshot()
		b.Snapshot()
		am := a.Arbitrate([]Downstream{creditOf{b, 0}}, nil)
		a.Commit(am)
		for _, m := range am {
			if m.Out == 0 {
				if m.Flit.PktID == 1 {
					t.Fatal("blocked packet moved")
				}
				moved = true
				b.Push(0, m.OutVC, m.Flit)
			}
		}
	}
	if !moved {
		t.Fatal("VC arbiter never switched to the unblocked lane")
	}
}

func TestOutputArbitrationIsFair(t *testing.T) {
	// Two inputs compete for one output; round-robin must alternate grants.
	route := func(node, in int, f flit.Flit) Decision { return Decision{Out: 0} }
	vcf := func(node, out, in, cur int, f flit.Flit) int {
		return in % 2 // input 0 -> VC 0, input 1 -> VC 1, so both can hold VCs
	}
	a := New(Config{Node: 0, VCs: 2, Depth: 8, InLanes: []int{1, 1}, NOut: 1,
		EjectPort: NoOutput, Route: route, VCNext: vcf})
	sink := New(Config{Node: 1, VCs: 2, Depth: 64, InLanes: []int{2}, NOut: 1,
		EjectPort: NoOutput,
		Route:     func(node, in int, f flit.Flit) Decision { return Decision{Out: NoOutput, Eject: true} },
		VCNext:    vcf})
	for _, f := range pkt(1, 6, 9) {
		a.Push(0, 0, f)
	}
	for _, f := range pkt(2, 6, 9) {
		a.Push(1, 0, f)
	}
	var order []uint64
	for cyc := 0; cyc < 30 && len(order) < 12; cyc++ {
		a.Snapshot()
		sink.Snapshot()
		am := a.Arbitrate([]Downstream{creditOf{sink, 0}}, nil)
		a.Commit(am)
		for _, m := range am {
			if m.Out == 0 {
				order = append(order, m.Flit.PktID)
				sink.Push(0, m.OutVC, m.Flit)
			}
		}
		sm := sink.Arbitrate([]Downstream{nil}, nil)
		sink.Commit(sm)
	}
	if len(order) != 12 {
		t.Fatalf("forwarded %d flits, want 12", len(order))
	}
	// Both packets progress concurrently: within the first 6 grants there
	// must be flits of both.
	seen := map[uint64]bool{}
	for _, id := range order[:6] {
		seen[id] = true
	}
	if len(seen) != 2 {
		t.Fatalf("output arbitration starved a packet: first grants %v", order[:6])
	}
}

func TestReachabilityViolationPanics(t *testing.T) {
	route := func(node, in int, f flit.Flit) Decision { return Decision{Out: 0} }
	vcf := func(node, out, in, cur int, f flit.Flit) int { return 0 }
	r := New(Config{Node: 0, VCs: 2, Depth: 2, InLanes: []int{1}, NOut: 1,
		EjectPort: NoOutput, Route: route, VCNext: vcf,
		Reach: [][]int{{}}, // output 0 reachable from nothing
	})
	r.Push(0, 0, pkt(1, 2, 5)[0])
	r.Snapshot()
	defer func() {
		if recover() == nil {
			t.Fatal("unreachable route did not panic")
		}
	}()
	r.Arbitrate([]Downstream{nil}, nil)
}

func TestConfigValidationPanics(t *testing.T) {
	cases := []Config{
		{VCs: 0, Depth: 1, InLanes: []int{1}, NOut: 1},
		{VCs: 2, Depth: 0, InLanes: []int{1}, NOut: 1},
		{VCs: 2, Depth: 1, InLanes: nil, NOut: 1},
		{VCs: 2, Depth: 1, InLanes: []int{0}, NOut: 1},
		{VCs: 2, Depth: 1, InLanes: []int{1}, NOut: 0},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: bad config accepted", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestCloneDeliversAndForwards(t *testing.T) {
	// A clone decision delivers a copy and forwards the flit in one cycle.
	route := func(node, in int, f flit.Flit) Decision {
		if node == 0 {
			return Decision{Out: 0, Eject: true, Clone: true}
		}
		return Decision{Out: NoOutput, Eject: true}
	}
	vcf := func(node, out, in, cur int, f flit.Flit) int { return 0 }
	a := New(Config{Node: 0, VCs: 2, Depth: 4, InLanes: []int{2}, NOut: 1,
		EjectPort: NoOutput, Route: route, VCNext: vcf})
	b := New(Config{Node: 1, VCs: 2, Depth: 4, InLanes: []int{2}, NOut: 1,
		EjectPort: NoOutput, Route: route, VCNext: vcf})
	p := pkt(1, 3, 9)
	for _, f := range p {
		a.Push(0, 0, f)
	}
	deliveredAtA := 0
	arrivedAtB := 0
	for cyc := 0; cyc < 10; cyc++ {
		a.Snapshot()
		b.Snapshot()
		am := a.Arbitrate([]Downstream{creditOf{b, 0}}, nil)
		a.Commit(am)
		for _, m := range am {
			if m.Deliver {
				deliveredAtA++
			}
			if m.Out == 0 {
				arrivedAtB++
				b.Push(0, m.OutVC, m.Flit)
			}
		}
	}
	if deliveredAtA != 3 || arrivedAtB != 3 {
		t.Fatalf("clone delivered %d / forwarded %d, want 3/3", deliveredAtA, arrivedAtB)
	}
}

func BenchmarkTwoNodeForwarding(b *testing.B) {
	a, bb := twoNodeLine(8)
	p := pkt(1, 2, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p[0].PktID = uint64(i + 1)
		p[1].PktID = uint64(i + 1)
		a.Push(0, 0, p[0])
		a.Push(0, 0, p[1])
		for a.LaneLen(0, 0) > 0 || bb.LaneLen(0, 0) > 0 {
			step(a, bb)
		}
	}
}

package router

// Per-router microarchitectural counters. These answer the "why is it
// slow" questions behind the paper's curves: where flits stall (no credit,
// VC busy, lost output arbitration) and how full the input lanes run. The
// fabric aggregates them for the contention experiments; they cost a few
// increments per cycle and are always on.

// StallCause classifies why a bid failed to move in a cycle.
type StallCause int

const (
	StallNoCredit StallCause = iota // downstream lane full
	StallVCBusy                     // required downstream VC held by another packet
	StallArbLost                    // output granted to another input this cycle
	numStallCauses
)

func (s StallCause) String() string {
	switch s {
	case StallNoCredit:
		return "no-credit"
	case StallVCBusy:
		return "vc-busy"
	case StallArbLost:
		return "arb-lost"
	}
	return "unknown"
}

// Stats are the router's cumulative counters.
type Stats struct {
	Grants       uint64                 // flits moved through the crossbar or ejected
	Stalls       [numStallCauses]uint64 // failed bids by cause
	OccupancySum uint64                 // sum over cycles of buffered flits (integral)
	Cycles       uint64                 // snapshots taken
}

// MeanOccupancy returns the time-averaged number of buffered flits.
func (s Stats) MeanOccupancy() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.OccupancySum) / float64(s.Cycles)
}

// TotalStalls sums all stall causes.
func (s Stats) TotalStalls() uint64 {
	var t uint64
	for _, v := range s.Stalls {
		t += v
	}
	return t
}

// Stats returns a copy of the router's counters. The occupancy integral
// (OccupancySum/Cycles) is accumulated inside Snapshot, which runs exactly
// once per cycle.
func (r *Router) Stats() Stats { return r.stats }

package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestJournalAppendReplayRoundTrip(t *testing.T) {
	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{
		[]byte(`{"journal":"quarc-job-v1","id":"j000001","kind":"run"}`),
		[]byte(`{"type":"state","state":"queued"}`),
		[]byte(`{"type":"point","done":1,"total":2}`),
		[]byte(`{"type":"state","state":"done"}`),
	}
	for _, line := range want {
		if err := j.Append("j000001", line); err != nil {
			t.Fatal(err)
		}
	}
	j.CloseJob("j000001")
	got, err := j.Replay("j000001")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\ngot  %q\nwant %q", got, want)
	}

	ids, err := j.List()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"j000001"}) {
		t.Fatalf("List = %v", ids)
	}
	j.Remove("j000001")
	if lines, err := j.Replay("j000001"); err != nil || lines != nil {
		t.Fatalf("after Remove: %v %v", lines, err)
	}
}

func TestJournalRejectsBadInput(t *testing.T) {
	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("../evil", []byte(`{}`)); err == nil {
		t.Error("path-traversal id accepted")
	}
	if err := j.Append("ok", []byte("{}\n{}")); err == nil {
		t.Error("embedded newline accepted")
	}
}

// Crash-consistency property: truncating a journal at ANY byte offset must
// replay the longest prefix of complete lines — every replayed line equals
// the original at its index, and the count is exactly the number of fully
// written lines before the cut.
func TestJournalTruncationReplaysLongestValidPrefix(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20090523))
	var lines [][]byte
	for i := 0; i < 12; i++ {
		pad := bytes.Repeat([]byte("p"), rng.Intn(40))
		lines = append(lines, []byte(fmt.Sprintf(`{"type":"point","done":%d,"pad":%q}`, i, pad)))
	}
	for _, line := range lines {
		if err := j.Append("j000042", line); err != nil {
			t.Fatal(err)
		}
	}
	j.CloseAll()
	path := filepath.Join(dir, "j000042"+journalSuffix)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// lineEnds[k] = byte offset just past line k's newline.
	var lineEnds []int
	for i, b := range full {
		if b == '\n' {
			lineEnds = append(lineEnds, i+1)
		}
	}
	if len(lineEnds) != len(lines) {
		t.Fatalf("%d newlines for %d lines", len(lineEnds), len(lines))
	}

	for cut := 0; cut <= len(full); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantComplete := 0
		for _, end := range lineEnds {
			if end <= cut {
				wantComplete++
			}
		}
		got, err := j.Replay("j000042")
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) != wantComplete {
			t.Fatalf("cut %d: replayed %d lines, want %d", cut, len(got), wantComplete)
		}
		for k, line := range got {
			if !bytes.Equal(line, lines[k]) {
				t.Fatalf("cut %d: line %d = %q, want %q", cut, k, line, lines[k])
			}
		}
	}
}

// A corrupt line mid-journal ends the replayable prefix; nothing after it
// is trusted.
func TestJournalCorruptLineEndsPrefix(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "j000007"+journalSuffix)
	content := "{\"a\":1}\n{\"b\":2}\ngarbage-not-json\n{\"c\":3}\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := j.Replay("j000007")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte(`{"a":1}`), []byte(`{"b":2}`)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay = %q, want %q", got, want)
	}
}

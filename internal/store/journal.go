package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"

	"quarc/internal/faultinject"
)

// idPattern is the accepted journal id shape (the service's job ids).
var idPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

const journalSuffix = ".ndjson"

// Journal persists one append-only NDJSON file per job. Appends go straight
// to the kernel (no userspace buffering), so everything appended before a
// SIGKILL is on record; Replay tolerates a torn final line by returning the
// longest valid prefix. All methods are safe for concurrent use. I/O goes
// through a faultinject.FS like the result store's, so chaos plans cover the
// journal too.
type Journal struct {
	dir  string
	fs   faultinject.FS
	mu   sync.Mutex
	open map[string]faultinject.File
}

// OpenJournal is OpenJournalFS over the plain os filesystem.
func OpenJournal(dir string) (*Journal, error) {
	return OpenJournalFS(dir, faultinject.OS{})
}

// OpenJournalFS prepares the journal directory, performing all I/O through fs.
func OpenJournalFS(dir string, fs faultinject.FS) (*Journal, error) {
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: create %s: %w", dir, err)
	}
	return &Journal{dir: dir, fs: fs, open: make(map[string]faultinject.File)}, nil
}

func (j *Journal) path(id string) string { return filepath.Join(j.dir, id+journalSuffix) }

// Append writes one line (a JSON document without raw newlines) to the
// job's journal, opening it in append mode on first use and keeping the
// handle for subsequent lines.
func (j *Journal) Append(id string, line []byte) error {
	if !idPattern.MatchString(id) {
		return fmt.Errorf("journal: invalid id %q", id)
	}
	if bytes.IndexByte(line, '\n') >= 0 {
		return fmt.Errorf("journal: line for %q contains a newline", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	f, ok := j.open[id]
	if !ok {
		var err error
		f, err = j.fs.OpenFile(j.path(id), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("journal: open %q: %w", id, err)
		}
		j.open[id] = f
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("journal: append %q: %w", id, err)
	}
	return nil
}

// CloseJob syncs and releases the job's file handle, keeping the journal on
// disk. Called when a job reaches a terminal state so live handles stay
// bounded by the number of live jobs.
func (j *Journal) CloseJob(id string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if f, ok := j.open[id]; ok {
		f.Sync()
		f.Close()
		delete(j.open, id)
	}
}

// CloseAll syncs and releases every open handle (shutdown path).
func (j *Journal) CloseAll() {
	j.mu.Lock()
	defer j.mu.Unlock()
	for id, f := range j.open {
		f.Sync()
		f.Close()
		delete(j.open, id)
	}
}

// Remove deletes a job's journal from disk (and any open handle).
func (j *Journal) Remove(id string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if f, ok := j.open[id]; ok {
		f.Close()
		delete(j.open, id)
	}
	j.fs.Remove(j.path(id))
}

// List returns the ids with a journal on disk, sorted (the service's
// zero-padded job ids sort in creation order).
func (j *Journal) List() ([]string, error) {
	des, err := j.fs.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: scan %s: %w", j.dir, err)
	}
	var ids []string
	for _, de := range des {
		name := de.Name()
		if !de.Type().IsRegular() || !strings.HasSuffix(name, journalSuffix) {
			continue
		}
		id := strings.TrimSuffix(name, journalSuffix)
		if idPattern.MatchString(id) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Replay returns the longest valid prefix of the job's journal: complete,
// newline-terminated lines that parse as JSON, stopping at the first torn
// or corrupt line. A crash mid-append therefore costs at most the line
// being written, never the history before it.
func (j *Journal) Replay(id string) ([][]byte, error) {
	if !idPattern.MatchString(id) {
		return nil, fmt.Errorf("journal: invalid id %q", id)
	}
	data, err := j.fs.ReadFile(j.path(id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("journal: read %q: %w", id, err)
	}
	var lines [][]byte
	for len(data) > 0 {
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			break // torn tail: the append never completed
		}
		line := data[:i]
		if !json.Valid(line) {
			break // corruption: everything beyond it is untrustworthy
		}
		lines = append(lines, append([]byte(nil), line...))
		data = data[i+1:]
	}
	return lines, nil
}

// Package store provides quarcd's durability layer: a content-addressed,
// disk-backed result store bounded in bytes with LRU-by-access-time
// eviction, and an append-only NDJSON event journal per job. Both are
// crash-safe by construction — results become visible only through an
// atomic write-then-rename, and journal replay stops at the first
// incomplete or corrupt line — so a daemon killed at any instant reboots
// into a consistent state: every durable result is byte-identical to the
// original computation, and every journal replays the longest valid prefix
// of the events that were streamed before the crash.
package store

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"
)

// keyPattern is the only accepted result key shape: the lower-case hex
// SHA-256 the service layer content-addresses requests with. Anything else
// in the store directory is foreign and is left alone.
var keyPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

const (
	resultSuffix = ".json"
	tmpSuffix    = ".json.tmp"
)

// Store is the disk-backed result store. All methods are safe for
// concurrent use. Entries are plain files named <key>.json under a single
// directory; recency is tracked in memory and mirrored to the files'
// modification times (best effort) so the LRU order survives restarts.
type Store struct {
	dir      string
	maxBytes int64

	mu        sync.Mutex
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	bytes     int64
	hits      uint64
	misses    uint64
	evictions uint64
}

type entry struct {
	key  string
	size int64
}

// Open scans dir (creating it if needed) and builds the store over whatever
// valid entries it holds. The scan is corruption tolerant: half-written
// *.json.tmp leftovers of a crashed Put are deleted, files that do not look
// like result entries are ignored, and anything over the byte budget is
// evicted oldest-access-first before Open returns.
func Open(dir string, maxBytes int64) (*Store, error) {
	if maxBytes < 1 {
		maxBytes = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan %s: %w", dir, err)
	}
	type scanned struct {
		key   string
		size  int64
		mtime time.Time
	}
	var found []scanned
	for _, de := range des {
		name := de.Name()
		if !de.Type().IsRegular() {
			continue
		}
		if filepath.Ext(name) == ".tmp" {
			// A Put that crashed before its rename: the entry never became
			// visible, so the remnant is garbage by definition.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		key, ok := keyOf(name)
		if !ok {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		found = append(found, scanned{key: key, size: info.Size(), mtime: info.ModTime()})
	}
	// Oldest access first, so pushing to the list front leaves the most
	// recently used entry at the front and eviction starts at the back.
	sort.Slice(found, func(i, j int) bool { return found[i].mtime.Before(found[j].mtime) })
	for _, f := range found {
		s.items[f.key] = s.ll.PushFront(&entry{key: f.key, size: f.size})
		s.bytes += f.size
	}
	s.mu.Lock()
	s.evictOverBudgetLocked()
	s.mu.Unlock()
	return s, nil
}

// keyOf extracts the result key from a file name, rejecting anything that
// is not <64 hex chars>.json.
func keyOf(name string) (string, bool) {
	if len(name) != 64+len(resultSuffix) || name[64:] != resultSuffix {
		return "", false
	}
	key := name[:64]
	if !keyPattern.MatchString(key) {
		return "", false
	}
	return key, true
}

func (s *Store) path(key string) string { return filepath.Join(s.dir, key+resultSuffix) }

// Get returns the payload stored under key, marking it most recently used.
// A file that has gone missing or no longer holds valid JSON (external
// corruption) is dropped from the index and reported as a miss rather than
// served.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		s.misses++
		return nil, false
	}
	b, err := os.ReadFile(s.path(key))
	if err != nil || !json.Valid(b) {
		s.dropLocked(el)
		os.Remove(s.path(key))
		s.misses++
		return nil, false
	}
	s.hits++
	s.ll.MoveToFront(el)
	// Mirror recency to the file's mtime so the LRU order survives a
	// restart; purely best effort.
	now := time.Now()
	os.Chtimes(s.path(key), now, now)
	return b, true
}

// Put stores val under key with write-then-rename atomicity: a crash at any
// point leaves either the previous entry or the new one, never a torn file
// behind the key. Entries are evicted oldest-access-first until the store
// fits its byte budget again (the entry just written is never evicted, even
// if it alone exceeds the budget).
func (s *Store) Put(key string, val []byte) error {
	if !keyPattern.MatchString(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp := filepath.Join(s.dir, key+tmpSuffix)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: write %s: %w", key, err)
	}
	if _, err := f.Write(val); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: write %s: %w", key, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: sync %s: %w", key, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: close %s: %w", key, err)
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: commit %s: %w", key, err)
	}
	size := int64(len(val))
	if el, ok := s.items[key]; ok {
		s.bytes += size - el.Value.(*entry).size
		el.Value.(*entry).size = size
		s.ll.MoveToFront(el)
	} else {
		s.items[key] = s.ll.PushFront(&entry{key: key, size: size})
		s.bytes += size
	}
	s.evictOverBudgetLocked()
	return nil
}

// dropLocked removes an entry from the in-memory index only.
func (s *Store) dropLocked(el *list.Element) {
	e := el.Value.(*entry)
	s.ll.Remove(el)
	delete(s.items, e.key)
	s.bytes -= e.size
}

// evictOverBudgetLocked deletes least-recently-accessed entries until the
// store fits its byte budget, always sparing the most recent entry.
func (s *Store) evictOverBudgetLocked() {
	for s.bytes > s.maxBytes && s.ll.Len() > 1 {
		oldest := s.ll.Back()
		key := oldest.Value.(*entry).key
		s.dropLocked(oldest)
		os.Remove(s.path(key))
		s.evictions++
	}
}

// Len returns the number of resident entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Bytes returns the total payload bytes resident on disk.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats returns the cumulative hit, miss and eviction counts.
func (s *Store) Stats() (hits, misses, evictions uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.evictions
}

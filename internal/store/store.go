// Package store provides quarcd's durability layer: a content-addressed,
// disk-backed result store bounded in bytes with LRU-by-access-time
// eviction, and an append-only NDJSON event journal per job. Both are
// crash-safe by construction — results become visible only through an
// atomic write-then-rename (with the parent directory fsynced after the
// rename, so the commit survives power loss, not just process death), and
// journal replay stops at the first incomplete or corrupt line — so a
// daemon killed at any instant reboots into a consistent state: every
// durable result is byte-identical to the original computation, and every
// journal replays the longest valid prefix of the events that were streamed
// before the crash.
//
// All filesystem access goes through a faultinject.FS, so chaos tests and
// quarcd's -chaos flag can inject deterministic I/O errors, torn writes and
// latency spikes at exactly this boundary; production passes the zero-cost
// faultinject.OS pass-through.
package store

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"quarc/internal/faultinject"
)

// keyPattern is the only accepted result key shape: the lower-case hex
// SHA-256 the service layer content-addresses requests with. Anything else
// in the store directory is foreign and is left alone.
var keyPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

const (
	resultSuffix = ".json"
	tmpSuffix    = ".json.tmp"
)

// ErrNotFound reports a key with no resident entry — a miss, as opposed to
// an I/O failure reading an entry that exists. Callers running a circuit
// breaker over the store must treat only non-ErrNotFound errors as disk
// failures.
var ErrNotFound = errors.New("store: entry not found")

// Store is the disk-backed result store. All methods are safe for
// concurrent use. Entries are plain files named <key>.json under a single
// directory; recency is tracked in memory and mirrored to the files'
// modification times (best effort) so the LRU order survives restarts.
type Store struct {
	dir      string
	maxBytes int64
	fs       faultinject.FS

	mu        sync.Mutex
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	bytes     int64
	hits      uint64
	misses    uint64
	evictions uint64
}

type entry struct {
	key  string
	size int64
}

// Open is OpenFS over the plain os filesystem.
func Open(dir string, maxBytes int64) (*Store, error) {
	return OpenFS(dir, maxBytes, faultinject.OS{})
}

// OpenFS scans dir (creating it if needed) and builds the store over whatever
// valid entries it holds, performing all I/O through fs. The scan is
// corruption tolerant: half-written *.json.tmp leftovers of a crashed Put are
// deleted, files that do not look like result entries are ignored, and
// anything over the byte budget is evicted oldest-access-first before OpenFS
// returns.
func OpenFS(dir string, maxBytes int64, fs faultinject.FS) (*Store, error) {
	if maxBytes < 1 {
		maxBytes = 1
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		fs:       fs,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
	des, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan %s: %w", dir, err)
	}
	type scanned struct {
		key   string
		size  int64
		mtime time.Time
	}
	var found []scanned
	for _, de := range des {
		name := de.Name()
		if !de.Type().IsRegular() {
			continue
		}
		if filepath.Ext(name) == ".tmp" {
			// A Put that crashed before its rename: the entry never became
			// visible, so the remnant is garbage by definition.
			fs.Remove(filepath.Join(dir, name))
			continue
		}
		key, ok := keyOf(name)
		if !ok {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		found = append(found, scanned{key: key, size: info.Size(), mtime: info.ModTime()})
	}
	// Oldest access first, so pushing to the list front leaves the most
	// recently used entry at the front and eviction starts at the back.
	sort.Slice(found, func(i, j int) bool { return found[i].mtime.Before(found[j].mtime) })
	for _, f := range found {
		s.items[f.key] = s.ll.PushFront(&entry{key: f.key, size: f.size})
		s.bytes += f.size
	}
	s.mu.Lock()
	s.evictOverBudgetLocked()
	s.mu.Unlock()
	return s, nil
}

// keyOf extracts the result key from a file name, rejecting anything that
// is not <64 hex chars>.json.
func keyOf(name string) (string, bool) {
	if len(name) != 64+len(resultSuffix) || name[64:] != resultSuffix {
		return "", false
	}
	key := name[:64]
	if !keyPattern.MatchString(key) {
		return "", false
	}
	return key, true
}

func (s *Store) path(key string) string { return filepath.Join(s.dir, key+resultSuffix) }

// Get returns the payload stored under key, marking it most recently used.
// It is GetE without the miss/failure distinction.
func (s *Store) Get(key string) ([]byte, bool) {
	b, err := s.GetE(key)
	return b, err == nil
}

// GetE returns the payload stored under key, marking it most recently used.
// A missing key (or a file externally deleted or corrupted, which is dropped
// from the index rather than served) returns ErrNotFound; any other error is
// a disk I/O failure on an entry that still exists — the entry stays
// resident, so a transiently failing disk does not silently empty the store.
func (s *Store) GetE(key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		s.misses++
		return nil, ErrNotFound
	}
	b, err := s.fs.ReadFile(s.path(key))
	switch {
	case err != nil && os.IsNotExist(err):
		// The file vanished underneath the index (external deletion): drop
		// the entry and report a plain miss.
		s.dropLocked(el)
		s.misses++
		return nil, ErrNotFound
	case err != nil:
		s.misses++
		return nil, fmt.Errorf("store: read %s: %w", key, err)
	case !json.Valid(b):
		// External corruption: never serve it, and GC the file.
		s.dropLocked(el)
		s.fs.Remove(s.path(key))
		s.misses++
		return nil, ErrNotFound
	}
	s.hits++
	s.ll.MoveToFront(el)
	// Mirror recency to the file's mtime so the LRU order survives a
	// restart; purely best effort.
	now := time.Now()
	s.fs.Chtimes(s.path(key), now, now)
	return b, nil
}

// Put stores val under key with write-then-rename atomicity: a crash at any
// point leaves either the previous entry or the new one, never a torn file
// behind the key. After the rename the parent directory is fsynced, so the
// committed entry survives power loss, not just process death; a failure
// there is returned (durability is compromised) but the entry is already
// visible and stays indexed. Entries are evicted oldest-access-first until
// the store fits its byte budget again (the entry just written is never
// evicted, even if it alone exceeds the budget).
func (s *Store) Put(key string, val []byte) error {
	if !keyPattern.MatchString(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp := filepath.Join(s.dir, key+tmpSuffix)
	f, err := s.fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: write %s: %w", key, err)
	}
	if _, err := f.Write(val); err != nil {
		f.Close()
		s.fs.Remove(tmp)
		return fmt.Errorf("store: write %s: %w", key, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		s.fs.Remove(tmp)
		return fmt.Errorf("store: sync %s: %w", key, err)
	}
	if err := f.Close(); err != nil {
		s.fs.Remove(tmp)
		return fmt.Errorf("store: close %s: %w", key, err)
	}
	if err := s.fs.Rename(tmp, s.path(key)); err != nil {
		s.fs.Remove(tmp)
		return fmt.Errorf("store: commit %s: %w", key, err)
	}
	// The rename made the entry visible; fsyncing the directory makes it
	// durable. Account for the entry either way — it exists and will be
	// served — and surface the sync failure to the caller.
	var syncErr error
	if err := s.fs.SyncDir(s.dir); err != nil {
		syncErr = fmt.Errorf("store: sync dir after %s: %w", key, err)
	}
	size := int64(len(val))
	if el, ok := s.items[key]; ok {
		s.bytes += size - el.Value.(*entry).size
		el.Value.(*entry).size = size
		s.ll.MoveToFront(el)
	} else {
		s.items[key] = s.ll.PushFront(&entry{key: key, size: size})
		s.bytes += size
	}
	s.evictOverBudgetLocked()
	return syncErr
}

// dropLocked removes an entry from the in-memory index only.
func (s *Store) dropLocked(el *list.Element) {
	e := el.Value.(*entry)
	s.ll.Remove(el)
	delete(s.items, e.key)
	s.bytes -= e.size
}

// evictOverBudgetLocked deletes least-recently-accessed entries until the
// store fits its byte budget, always sparing the most recent entry.
func (s *Store) evictOverBudgetLocked() {
	for s.bytes > s.maxBytes && s.ll.Len() > 1 {
		oldest := s.ll.Back()
		key := oldest.Value.(*entry).key
		s.dropLocked(oldest)
		s.fs.Remove(s.path(key))
		s.evictions++
	}
}

// Len returns the number of resident entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Bytes returns the total payload bytes resident on disk.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats returns the cumulative hit, miss and eviction counts.
func (s *Store) Stats() (hits, misses, evictions uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.evictions
}

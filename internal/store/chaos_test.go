package store

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"quarc/internal/faultinject"
)

// Chaos property: under a deterministic 10% fault plan (errors, torn writes,
// no delays — sleeps would just slow the test), the store never serves
// corrupt bytes. Every successful Get must return exactly the last
// successfully-Put value for that key; a Put that reported failure may or
// may not have an older value visible, but never a torn one. After the
// faults stop and the store reopens over a clean filesystem — the restart
// half of the chaos schedule — every surviving entry is byte-identical to
// what Put reported committing.
func TestStoreChaosNeverServesCorruptBytes(t *testing.T) {
	dir := t.TempDir()
	plan := faultinject.New(faultinject.Spec{Seed: 0xC4A05, ErrRate: 0.1, TornRate: 0.1})
	s, err := OpenFS(dir, 1<<20, plan.Wrap(faultinject.OS{}))
	if err != nil {
		t.Fatal(err)
	}

	const keys = 32
	const rounds = 20
	// committed[k] is the last payload Put reported success for; a nil entry
	// means no Put for that key ever fully succeeded.
	committed := make(map[string][]byte)
	var putsOK, putsFailed, getsOK, getsFaulted int
	for r := 0; r < rounds; r++ {
		for i := 0; i < keys; i++ {
			k := testKey(i)
			val := payload(r*keys+i, 32)
			switch err := s.Put(k, val); {
			case err == nil:
				committed[k] = val
				putsOK++
			case strings.Contains(err.Error(), "sync dir"):
				// The rename committed before the directory fsync failed: the
				// entry is visible and survives a process restart (though not
				// necessarily power loss) — count it committed.
				committed[k] = val
				putsFailed++
			default:
				putsFailed++
			}
			got, gerr := s.GetE(k)
			switch {
			case gerr == nil:
				getsOK++
				// Served bytes must be exactly some value a Put fully
				// committed for this key — torn or interleaved bytes are the
				// failure this test exists to catch. Since Puts for a key are
				// sequential, a successful Get sees either the last committed
				// value or (after a failed overwrite) the one before it, both
				// of which were committed values at some point. Verify the
				// strongest cheap invariant: when the immediately preceding
				// Put succeeded, the bytes are that Put's bytes.
				if want := committed[k]; want != nil && bytes.Equal(val, want) && !bytes.Equal(got, want) {
					t.Fatalf("round %d key %d: served %q, want last committed %q", r, i, got, want)
				}
				if !bytes.HasPrefix(got, []byte(`{"i":`)) || !bytes.HasSuffix(got, []byte(`"}`)) {
					t.Fatalf("round %d key %d: served malformed payload %q", r, i, got)
				}
			case errors.Is(gerr, ErrNotFound):
				// A miss is acceptable under chaos (nothing committed yet, or
				// corruption was detected and dropped).
			default:
				// Injected read failure on a resident entry: acceptable, and
				// the entry must still be resident for a later retry.
				getsFaulted++
				if !errors.Is(gerr, faultinject.ErrInjected) {
					t.Fatalf("round %d key %d: non-injected I/O failure: %v", r, i, gerr)
				}
			}
		}
	}
	if putsFailed == 0 || getsFaulted == 0 {
		t.Fatalf("chaos plan too quiet to test anything: putsFailed=%d getsFaulted=%d (putsOK=%d getsOK=%d)",
			putsFailed, getsFaulted, putsOK, getsOK)
	}

	// The faults stop (clean FS) and the daemon restarts: every key with a
	// committed value must either serve those exact bytes or — only if a
	// later failed overwrite won the rename race before erroring, which the
	// write-then-rename protocol forbids — nothing. Assert byte-identity.
	s2, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var survived int
	for i := 0; i < keys; i++ {
		k := testKey(i)
		want := committed[k]
		got, ok := s2.Get(k)
		if want == nil {
			continue
		}
		if !ok {
			t.Fatalf("key %d: committed value lost across restart", i)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("key %d: restart serves %q, want committed %q", i, got, want)
		}
		survived++
	}
	if survived == 0 {
		t.Fatal("no committed entries to check after restart")
	}
	t.Logf("chaos: %d/%d puts failed, %d gets faulted, %d entries byte-identical after restart",
		putsFailed, putsFailed+putsOK, getsFaulted, survived)
}

// A journal under the same fault plan must never replay a line that was not
// fully appended: torn appends surface as a truncated tail, which Replay
// already clips to the longest valid prefix.
func TestJournalChaosAppendsAreAllOrNothing(t *testing.T) {
	dir := t.TempDir()
	plan := faultinject.New(faultinject.Spec{Seed: 77, ErrRate: 0.1, TornRate: 0.1})
	j, err := OpenJournalFS(dir, plan.Wrap(faultinject.OS{}))
	if err != nil {
		t.Fatal(err)
	}
	var acked [][]byte
	var failed int
	for i := 0; i < 200; i++ {
		line := []byte(payload(i, 16))
		if err := j.Append("j000001", line); err != nil {
			failed++
			continue
		}
		acked = append(acked, line)
	}
	j.CloseAll()
	if failed == 0 {
		t.Fatal("chaos plan injected no journal failures")
	}

	// Replay through a clean filesystem: every replayed line must be one of
	// the acknowledged lines, in order — a torn append may cost the tail
	// from its own line onward (the file ends mid-line), but must never
	// fabricate or reorder.
	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	lines, err := j2.Replay("j000001")
	if err != nil {
		t.Fatal(err)
	}
	ai := 0
	for li, line := range lines {
		for ai < len(acked) && !bytes.Equal(acked[ai], line) {
			ai++ // an acked line may be missing if a later torn append clipped it
		}
		if ai == len(acked) {
			t.Fatalf("replayed line %d %q matches no acknowledged append in order", li, line)
		}
		ai++
	}
	t.Logf("journal chaos: %d/%d appends failed, %d lines replayed", failed, 200, len(lines))
}

package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// testKey derives a distinct valid store key.
func testKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:])
}

func payload(i, size int) []byte {
	body := bytes.Repeat([]byte("x"), size)
	return []byte(fmt.Sprintf(`{"i":%d,"pad":%q}`, i, body))
}

func TestStoreRoundTripAndPersistence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(1)
	val := payload(1, 10)
	if err := s.Put(k, val); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if s.Bytes() != int64(len(val)) || s.Len() != 1 {
		t.Fatalf("bytes=%d len=%d", s.Bytes(), s.Len())
	}

	// A fresh Open over the same directory serves the identical bytes.
	s2, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	got2, ok := s2.Get(k)
	if !ok || !bytes.Equal(got2, val) {
		t.Fatalf("reopened Get = %q, %v", got2, ok)
	}
	if _, ok := s2.Get(testKey(2)); ok {
		t.Fatal("absent key reported present")
	}
}

func TestStoreInvalidKeyRejected(t *testing.T) {
	s, err := Open(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"", "abc", "../../etc/passwd", testKey(1) + "ff"} {
		if err := s.Put(k, []byte("{}")); err == nil {
			t.Errorf("Put(%q) accepted", k)
		}
	}
}

// Eviction is byte-bounded and least-recently-accessed-first, with access
// (not insertion) defining recency.
func TestStoreByteBoundedLRUEviction(t *testing.T) {
	dir := t.TempDir()
	a, b, c := testKey(1), testKey(2), testKey(3)
	va, vb, vc := payload(1, 20), payload(2, 20), payload(3, 20)
	budget := int64(len(va) + len(vb))
	s, err := Open(dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(a, va); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(b, vb); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(a); !ok { // a is now most recently used
		t.Fatal("a missing")
	}
	if err := s.Put(c, vc); err != nil { // over budget: evicts b, not a
		t.Fatal(err)
	}
	if _, ok := s.Get(b); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := s.Get(a); !ok {
		t.Fatal("a evicted despite being recently used")
	}
	if _, ok := s.Get(c); !ok {
		t.Fatal("c missing")
	}
	if s.Bytes() > budget {
		t.Fatalf("store over budget: %d > %d", s.Bytes(), budget)
	}
	if _, _, ev := s.Stats(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	if _, err := os.Stat(filepath.Join(dir, b+resultSuffix)); !os.IsNotExist(err) {
		t.Fatal("evicted entry still on disk")
	}
}

// Open must evict down to the budget when the directory holds more than the
// configured bytes (e.g. the budget was lowered between boots), oldest
// access first.
func TestStoreOpenEnforcesBudget(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	old, fresh := testKey(1), testKey(2)
	if err := s.Put(old, payload(1, 50)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(fresh, payload(2, 50)); err != nil {
		t.Fatal(err)
	}
	// Make the access-time gap robust to filesystem mtime granularity.
	past := time.Now().Add(-time.Hour)
	os.Chtimes(filepath.Join(dir, old+resultSuffix), past, past)

	s2, err := Open(dir, int64(len(payload(2, 50))))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(old); ok {
		t.Fatal("oldest entry survived a reopen under a smaller budget")
	}
	if _, ok := s2.Get(fresh); !ok {
		t.Fatal("newest entry evicted at reopen")
	}
}

// A half-written result file (a Put that never reached its rename) must be
// skipped and garbage collected by the startup scan — the crash-consistency
// contract of write-then-rename.
func TestStoreHalfWrittenFileGCdAtStartup(t *testing.T) {
	dir := t.TempDir()
	k := testKey(1)
	tmp := filepath.Join(dir, k+tmpSuffix)
	if err := os.WriteFile(tmp, []byte(`{"torn":`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("half-written entry served")
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("half-written entry indexed: len=%d bytes=%d", s.Len(), s.Bytes())
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("half-written file not garbage collected")
	}
}

// Foreign files in the store directory are ignored, and an entry whose
// contents were corrupted externally is dropped instead of served.
func TestStoreCorruptionTolerance(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a result"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("foreign file indexed: len=%d", s.Len())
	}

	k := testKey(1)
	if err := s.Put(k, payload(1, 10)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the entry behind the store's back.
	if err := os.WriteFile(filepath.Join(dir, k+resultSuffix), []byte(`{"torn`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("corrupt entry served")
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("corrupt entry resurrected")
	}
	if s.Len() != 0 {
		t.Fatalf("corrupt entry still indexed: len=%d", s.Len())
	}
}

func TestStoreOverwriteAdjustsBytes(t *testing.T) {
	s, err := Open(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(1)
	small, big := payload(1, 5), payload(1, 500)
	if err := s.Put(k, small); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k, big); err != nil {
		t.Fatal(err)
	}
	if s.Bytes() != int64(len(big)) || s.Len() != 1 {
		t.Fatalf("bytes=%d len=%d after overwrite, want %d and 1", s.Bytes(), s.Len(), len(big))
	}
	got, ok := s.Get(k)
	if !ok || !bytes.Equal(got, big) {
		t.Fatalf("overwrite lost: %q %v", got, ok)
	}
}

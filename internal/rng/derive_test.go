package rng

import "testing"

func TestDeriveIsPure(t *testing.T) {
	if Derive(1, 2, 3) != Derive(1, 2, 3) {
		t.Fatal("Derive is not deterministic")
	}
}

func TestDeriveSeparatesParts(t *testing.T) {
	seen := map[uint64][3]uint64{}
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 8; b++ {
			for c := uint64(0); c < 8; c++ {
				s := Derive(42, a, b, c)
				if prev, dup := seen[s]; dup {
					t.Fatalf("collision: %v and %v derive %#x", prev, [3]uint64{a, b, c}, s)
				}
				seen[s] = [3]uint64{a, b, c}
			}
		}
	}
}

func TestDeriveOrderMatters(t *testing.T) {
	if Derive(42, 1, 2) == Derive(42, 2, 1) {
		t.Fatal("Derive ignores part order")
	}
}

func TestDeriveDependsOnBaseSeed(t *testing.T) {
	if Derive(1, 5) == Derive(2, 5) {
		t.Fatal("Derive ignores the base seed")
	}
}

func TestDeriveSeedsUsableStreams(t *testing.T) {
	// Streams seeded from sibling derivations must not be correlated in the
	// crudest way: identical first outputs.
	a := New(Derive(7, 0), 1)
	b := New(Derive(7, 1), 1)
	if a.Uint64() == b.Uint64() {
		t.Fatal("sibling derived seeds produced identical streams")
	}
}

package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42, 7)
	b := New(42, 7)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %x vs %x", i, av, bv)
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	a := New(42, 1)
	b := New(42, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different ids coincide too often: %d/1000", same)
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1, 0)
	b := New(2, 0)
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("different seeds produced identical outputs")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3, 3)
	for _, n := range []int{1, 2, 3, 7, 64, 1000} {
		for i := 0; i < 2000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(0, 0).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99, 0)
	const n, trials = 8, 80000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d too far from expectation %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5, 5)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want about 0.5", mean)
	}
}

func TestBernoulliEdgeCases(t *testing.T) {
	r := New(1, 1)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(11, 0)
	const p, trials = 0.05, 200000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-p) > 0.005 {
		t.Errorf("Bernoulli(%v) empirical rate %v", p, got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(13, 0)
	const p, trials = 0.1, 100000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / trials
	want := (1 - p) / p
	if math.Abs(mean-want) > 0.3 {
		t.Errorf("Geometric(%v) mean = %v, want about %v", p, mean, want)
	}
}

func TestGeometricEdge(t *testing.T) {
	r := New(17, 0)
	if g := r.Geometric(1); g != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", g)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	r.Geometric(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23, 0)
	check := func(n uint8) bool {
		m := int(n%32) + 1
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs for seed 0 from the published SplitMix64 algorithm.
	state := uint64(0)
	want := []uint64{0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Fatalf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func BenchmarkUint32(b *testing.B) {
	r := New(1, 1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint32()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1, 1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(64)
	}
}

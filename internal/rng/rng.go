// Package rng provides small, fast, deterministic pseudo-random number
// generators for the simulator.
//
// The simulator must be bit-for-bit reproducible across runs and platforms,
// so it never touches math/rand's global state. Every stochastic component
// (one per traffic source, typically) owns its own Stream seeded from an
// experiment seed and a stream identifier, so adding or removing components
// does not perturb the random sequences seen by the others.
//
// The core generator is PCG32 (O'Neill, pcg-random.org, the PCG-XSH-RR
// variant) seeded through SplitMix64, both implemented here from the public
// specifications using only integer arithmetic.
package rng

import "math"

// SplitMix64 advances the given state and returns the next 64-bit output.
// It is used to derive well-distributed seeds from (seed, stream) pairs.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Derive folds a sequence of identifiers into an experiment seed and returns
// a well-distributed subordinate seed. It is the hierarchical analogue of
// New's (seed, stream) construction: Derive(seed, a, b, c) depends on every
// part and on their order, so a sweep can give each design point — e.g.
// (topology, rate index, replicate) — its own independent seed while staying
// bit-for-bit reproducible for a fixed base seed.
func Derive(seed uint64, parts ...uint64) uint64 {
	mix := seed
	out := SplitMix64(&mix)
	for _, p := range parts {
		mix ^= (p + 1) * 0xD1342543DE82EF95
		out = SplitMix64(&mix)
	}
	return out
}

// Stream is a PCG32 generator. The zero value is not usable; construct
// streams with New.
type Stream struct {
	state uint64
	inc   uint64 // stream selector; always odd
}

// New returns a Stream derived from an experiment-level seed and a stream
// identifier. Distinct (seed, stream) pairs yield statistically independent
// sequences.
func New(seed, stream uint64) *Stream {
	mix := seed
	s0 := SplitMix64(&mix)
	mix ^= stream * 0xD1342543DE82EF95
	s1 := SplitMix64(&mix)
	r := &Stream{inc: (s1 << 1) | 1}
	r.state = s0 + r.inc
	r.Uint32()
	return r
}

// Uint32 returns the next 32 bits from the stream.
func (r *Stream) Uint32() uint32 {
	old := r.state
	r.state = old*6364136223846793005 + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 bits from the stream.
func (r *Stream) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
// Lemire's nearly-divisionless rejection method keeps the result unbiased.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint32(n)
	// Multiply-shift with rejection of the biased low region.
	threshold := -bound % bound
	for {
		x := r.Uint32()
		m := uint64(x) * uint64(bound)
		if uint32(m) >= threshold {
			return int(m >> 32)
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1) with 53 bits of
// precision.
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability p.
func (r *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns the number of Bernoulli(p) failures before the first
// success; i.e. a sample from the geometric distribution on {0, 1, 2, ...}
// with mean (1-p)/p. It is the discrete analogue of the exponential
// inter-arrival time used by the paper's Poisson traffic sources. p must be
// in (0, 1].
func (r *Stream) Geometric(p float64) int64 {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric with non-positive p")
	}
	// Inversion: floor(ln(U) / ln(1-p)) with U in (0,1).
	u := 1.0 - r.Float64() // in (0, 1]
	g := math.Floor(math.Log(u) / math.Log(1.0-p))
	if g < 0 {
		return 0
	}
	if g > math.MaxInt64/2 {
		return math.MaxInt64 / 2
	}
	return int64(g)
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher-Yates.
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Package quarc is a flit-level simulation library reproducing "Design and
// implementation of the Quarc Network on-Chip" (Moadeli, Maji,
// Vanderbauwhede; IEEE IPDPS 2009).
//
// It provides cycle-accurate wormhole models of the Quarc NoC (an all-port,
// doubled-cross-link derivative of the Spidergon with true hardware
// broadcast/multicast along base-routing conformed paths), the Spidergon
// baseline, and mesh/torus substrates; synthetic traffic generation;
// analytical latency models; a structural FPGA area model calibrated to the
// paper's Virtex-II Pro results; and an experiment harness that regenerates
// every table and figure of the paper's evaluation.
//
// Quick start:
//
//	res, err := quarc.Run(quarc.Config{
//	    Topo: quarc.TopoQuarc, N: 16, MsgLen: 16, Beta: 0.05, Rate: 0.01,
//	})
//	fmt.Println(res.UnicastMean, res.BcastMean)
//
// For direct access to the fabric (custom workloads, cache-coherence style
// traffic), build a network and drive it cycle by cycle:
//
//	fab, nodes, _ := quarc.NewQuarc(quarc.QuarcConfig{N: 16, Depth: 4})
//	nodes[0].SendBroadcast(16, fab.Now())
//	for fab.Tracker.InFlight() > 0 {
//	    fab.Step()
//	}
package quarc

import (
	"context"

	"quarc/internal/cost"
	"quarc/internal/experiments"
	"quarc/internal/mesh"
	"quarc/internal/model"
	"quarc/internal/network"
	qswitch "quarc/internal/quarc"
	"quarc/internal/ring"
	"quarc/internal/spidergon"
	"quarc/internal/traffic"
)

// Topology is the legacy enum selecting one of the six original models; any
// registered model — including ones with no enum member, such as "ring" —
// can be selected by name through Config.Model.
type Topology = experiments.Topology

// Topology values.
const (
	TopoQuarc            = experiments.TopoQuarc
	TopoSpidergon        = experiments.TopoSpidergon
	TopoQuarcChainBcast  = experiments.TopoQuarcChainBcast
	TopoQuarcSingleQueue = experiments.TopoQuarcSingleQueue
	TopoMesh             = experiments.TopoMesh
	TopoTorus            = experiments.TopoTorus
)

// Config parameterises a measured simulation run; Result carries its
// measurements. See internal/experiments for field documentation.
type (
	Config = experiments.Config
	Result = experiments.Result
)

// Run executes one configuration: build the network, apply the workload for
// the warmup+measure window, drain, and report latency and throughput
// statistics.
func Run(cfg Config) (Result, error) { return experiments.Run(cfg) }

// RunContext is Run with cooperative cancellation: it returns ctx.Err()
// promptly once ctx is cancelled; for a never-cancelled ctx the result is
// bit-identical to Run. The quarcd daemon's job cancellation rides on it.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	return experiments.RunContext(ctx, cfg)
}

// PointDone describes one completed sweep design point, delivered to
// RunOpts.OnPointDone for progress streaming.
type PointDone = experiments.PointDone

// Sweep types for regenerating the paper's figures.
type (
	PanelSpec   = experiments.PanelSpec
	PanelResult = experiments.PanelResult
	RunOpts     = experiments.RunOpts
)

// Figure panel definitions (paper Figs 9, 10, 11).
func Fig9Panels() []PanelSpec  { return experiments.Fig9Panels() }
func Fig10Panels() []PanelSpec { return experiments.Fig10Panels() }
func Fig11Panels() []PanelSpec { return experiments.Fig11Panels() }

// DefaultOpts and FastOpts scale simulation effort.
func DefaultOpts() RunOpts { return experiments.DefaultOpts() }
func FastOpts() RunOpts    { return experiments.FastOpts() }

// RunPanel sweeps one figure panel over offered load for both the Quarc and
// the Spidergon, fanning the independent (topology, rate, replicate) points
// across RunOpts.Workers goroutines. RunOpts.Replicates runs each point
// several times with independent seeds and aggregates mean ± 95% CI. For a
// fixed RunOpts.Seed the result is bit-identical to RunPanelSerial.
func RunPanel(spec PanelSpec, opts RunOpts) (PanelResult, error) {
	return experiments.RunPanel(spec, opts)
}

// RunPanelContext is RunPanel with cooperative cancellation; RunOpts can
// also carry an OnPointDone callback to stream per-point progress.
func RunPanelContext(ctx context.Context, spec PanelSpec, opts RunOpts) (PanelResult, error) {
	return experiments.RunPanelContext(ctx, spec, opts)
}

// RunPanelSerial is RunPanel on a single goroutine — the reference execution
// the parallel engine is tested against.
func RunPanelSerial(spec PanelSpec, opts RunOpts) (PanelResult, error) {
	return experiments.RunPanelSerial(spec, opts)
}

// PanelPointCount returns the number of design points RunPanel will execute
// for a spec and options — the denominator of sweep progress.
func PanelPointCount(spec PanelSpec, opts RunOpts) int {
	return experiments.PanelPointCount(spec, opts)
}

// RunReplicated executes one configuration several times with independent
// derived seeds (in parallel across workers; 0 means GOMAXPROCS) and returns
// the mean ± CI aggregate alongside the per-replicate results.
func RunReplicated(cfg Config, replicates, workers int) (Result, []Result, error) {
	return experiments.RunReplicated(cfg, replicates, workers)
}

// RunReplicatedContext is RunReplicated with cooperative cancellation and an
// optional per-replicate completion callback.
func RunReplicatedContext(ctx context.Context, cfg Config, replicates, workers int, onDone func(PointDone)) (Result, []Result, error) {
	return experiments.RunReplicatedContext(ctx, cfg, replicates, workers, onDone)
}

// PointSeed derives the deterministic seed of a sweep design point from an
// experiment-level base seed.
func PointSeed(base uint64, topo Topology, rateIndex, replicate int) uint64 {
	return experiments.PointSeed(base, topo, rateIndex, replicate)
}

// Direct fabric access. Fabric is the assembled network; Step advances one
// cycle; Tracker follows message lifecycles.
type (
	Fabric        = network.Fabric
	MessageRecord = network.MessageRecord
	Tracker       = network.Tracker

	// Transceiver is the Quarc network adapter (quadrant calculator + four
	// injection queues + reassembly).
	Transceiver = qswitch.Transceiver
	// QuarcConfig configures a Quarc build (including the ablation knobs).
	QuarcConfig = qswitch.Config

	// SpidergonAdapter is the one-port baseline adapter.
	SpidergonAdapter = spidergon.Adapter
	// SpidergonConfig configures a Spidergon build.
	SpidergonConfig = spidergon.Config

	// MeshAdapter and MeshConfig expose the mesh/torus substrate.
	MeshAdapter = mesh.Adapter
	MeshConfig  = mesh.Config
)

// NewQuarc builds an n-node Quarc network and its transceivers.
func NewQuarc(cfg QuarcConfig) (*Fabric, []*Transceiver, error) { return qswitch.Build(cfg) }

// NewSpidergon builds the Spidergon baseline.
func NewSpidergon(cfg SpidergonConfig) (*Fabric, []*SpidergonAdapter, error) {
	return spidergon.Build(cfg)
}

// NewMesh builds a mesh or torus.
func NewMesh(cfg MeshConfig) (*Fabric, []*MeshAdapter, error) { return mesh.Build(cfg) }

// DefaultStepWorkers is the automatic intra-fabric worker-pool size for an
// n-node fabric: GOMAXPROCS, clamped so each worker keeps a useful shard
// (see Fabric.SetStepWorkers and Config.StepWorkers).
func DefaultStepWorkers(n int) int { return network.DefaultStepWorkers(n) }

// RingAdapter and RingConfig expose the bidirectional-ring lower bound.
type (
	RingAdapter = ring.Adapter
	RingConfig  = ring.Config
)

// NewRing builds a bidirectional ring.
func NewRing(cfg RingConfig) (*Fabric, []*RingAdapter, error) { return ring.Build(cfg) }

// Model registry: every network model the harness can simulate is a named
// registration. Model describes one entry (name, metadata, builder);
// ModelNode is the per-node surface a builder returns.
type (
	Model            = model.Model
	ModelNode        = model.Node
	ModelBuildConfig = model.BuildConfig
)

// RegisteredModels lists the registered models sorted by name.
func RegisteredModels() []Model { return model.All() }

// LookupModel resolves a model by its registry name.
func LookupModel(name string) (Model, bool) { return model.Lookup(name) }

// RegisterModel adds a model to the registry; Config.Model selects it by
// name and the experiment harness, service layer and CLIs pick it up with
// no further wiring. It panics on duplicate or malformed registrations.
func RegisterModel(m Model) { model.Register(m) }

// Traffic pattern selection for Config.Pattern.
type Pattern = traffic.Pattern

// Pattern values.
const (
	Uniform         = traffic.Uniform
	Hotspot         = traffic.Hotspot
	Antipodal       = traffic.Antipodal
	NearestNeighbor = traffic.NearestNeighbor
	BitReverse      = traffic.BitReverse
)

// Cost model (paper Table 1 and Fig 12).
type (
	SwitchCost = cost.Switch
	ModuleCost = cost.ModuleCost
	Fig12Row   = cost.Fig12Row
)

// QuarcSwitchCost and SpidergonSwitchCost return the calibrated structural
// area models.
func QuarcSwitchCost() SwitchCost     { return cost.QuarcSwitch() }
func SpidergonSwitchCost() SwitchCost { return cost.SpidergonSwitch() }

// Table1 returns the module-wise slice counts of the 32-bit Quarc switch.
func Table1() []ModuleCost { return cost.Table1() }

// Fig12 returns the 16/32/64-bit cost comparison.
func Fig12() []Fig12Row { return cost.Fig12() }

//go:build !race

package quarc_test

const raceEnabled = false

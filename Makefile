GO ?= go
FUZZTIME ?= 10s
BENCHTIME ?= 2s
SERVE_ADDR ?= :8080
LOAD_ADDR ?= 127.0.0.1:8091
LOAD_N ?= 200
LOAD_C ?= 8

.PHONY: all build test race fuzz-short bench bench-json profile fmt vet lint check serve loadtest

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run every fuzz target briefly (go test -fuzz takes one target at a time).
fuzz-short:
	$(GO) test -run=^$$ -fuzz=FuzzEncodeDecodeWire -fuzztime=$(FUZZTIME) ./internal/flit/
	$(GO) test -run=^$$ -fuzz=FuzzDecodePacket -fuzztime=$(FUZZTIME) ./internal/flit/

bench:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

# Benchmarks as data: run the tier-1 benchmarks with real bench time and
# write ns/op, allocs/op, simulated cycles/sec and per-benchmark speedups
# against the committed pre-parallel-stepping baseline to BENCH_PR8.json.
# The bench run goes to a file first so a failing run aborts the target
# instead of being masked by the pipe.
BENCHOUT ?= /tmp/quarc-bench.txt
bench-json:
	$(GO) test -run=^$$ -bench=. -benchmem -benchtime=$(BENCHTIME) . > $(BENCHOUT)
	$(GO) run ./cmd/benchjson -baseline BENCH_PR8_BASELINE.txt < $(BENCHOUT) > BENCH_PR8.json
	@echo "wrote BENCH_PR8.json"

# CPU + heap profile of one big saturated point (a 32x32 mesh), the workload
# the intra-fabric worker pool targets. Inspect with:
#   go tool pprof $(PROFDIR)/cpu.pprof
PROFDIR ?= /tmp/quarc-prof
profile: build
	@mkdir -p $(PROFDIR)
	$(GO) run ./cmd/quarcsim -topo mesh -n 1024 -m 16 -beta 0 -rate 0.02 \
		-warmup 200 -cycles 2000 -drain 20000 \
		-cpuprofile $(PROFDIR)/cpu.pprof -memprofile $(PROFDIR)/mem.pprof
	@echo "profiles in $(PROFDIR)"

# Run the simulation-as-a-service daemon in the foreground.
serve:
	$(GO) run ./cmd/quarcd -addr $(SERVE_ADDR)

# Closed-loop serving benchmark: start a throwaway daemon, hammer it with
# quarcload, and tear it down. Fails unless every request succeeds.
loadtest:
	@mkdir -p bin
	$(GO) build -o bin/quarcd ./cmd/quarcd
	$(GO) build -o bin/quarcload ./cmd/quarcload
	@./bin/quarcd -addr $(LOAD_ADDR) -quiet & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	./bin/quarcload -addr http://$(LOAD_ADDR) -n $(LOAD_N) -c $(LOAD_C)

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Static analysis. quarcvet (internal/lint) always runs — it is part of the
# module and enforces the repo-specific invariants (determinism, cache-key
# purity, hot-path allocation discipline, coordinator sections, metric
# registration). staticcheck and govulncheck run when installed: CI installs
# and caches them; a machine without them still gets the full quarcvet suite,
# but if they are present their findings fail the target.
lint:
	$(GO) run ./cmd/quarcvet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else echo "govulncheck not installed; skipping (CI runs it)"; fi

check: fmt vet lint build test

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race fuzz-short bench fmt vet check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run every fuzz target briefly (go test -fuzz takes one target at a time).
fuzz-short:
	$(GO) test -run=^$$ -fuzz=FuzzEncodeDecodeWire -fuzztime=$(FUZZTIME) ./internal/flit/
	$(GO) test -run=^$$ -fuzz=FuzzDecodePacket -fuzztime=$(FUZZTIME) ./internal/flit/

bench:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

check: fmt vet build test

module quarc

go 1.21

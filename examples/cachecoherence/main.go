// Cache-coherence scenario: the workload that motivates the Quarc.
//
// The paper (§1, §2.2) argues that broadcast is "the key mechanism for
// keeping caches in sync" in MPSoCs and that cache synchronisation becomes
// the bottleneck as core counts grow. This example runs an actual
// write-invalidate MSI protocol (internal/coherence) over the simulated
// fabrics: cores read and write a shared working set; writes broadcast
// invalidations and only complete when the last core has seen them; read
// misses fetch lines from address-interleaved home nodes; dirty lines write
// back on downgrade.
//
// The identical protocol and access trace run over a Quarc and over a
// Spidergon. The printed comparison is the paper's §2.2 argument made
// concrete: write visibility (invalidation broadcast completion) is several
// times faster on the Quarc and barely degrades as the write rate grows,
// while the Spidergon's broadcast-by-unicast chains consume its single
// injection channel and drag read misses down with them.
//
// Run with:
//
//	go run ./examples/cachecoherence
package main

import (
	"fmt"
	"log"

	"quarc/internal/coherence"
	"quarc/internal/plot"
	"quarc/internal/quarc"
	"quarc/internal/spidergon"
	"quarc/internal/traffic"
)

const (
	cores    = 16
	lines    = 64 // shared working set (cache lines)
	fetchLen = 8  // flits per data message (a 32-byte line on 34-bit flits)
	ctrlLen  = 2  // flits per control message
	cycles   = 8000
)

type outcome struct {
	issueProb float64
	writeVis  float64 // mean cycles until a write is globally visible
	readMiss  float64 // mean read miss service time
	stats     coherence.Stats
}

func runProtocol(topology string, writeFrac, issueProb float64) (outcome, error) {
	var (
		noc *coherence.FabricNoC
		err error
	)
	senders := make([]traffic.Sender, cores)
	switch topology {
	case "quarc":
		fab, ts, berr := quarc.Build(quarc.Config{N: cores, Depth: 4})
		if berr != nil {
			return outcome{}, berr
		}
		for i, t := range ts {
			senders[i] = t
		}
		noc, err = coherence.NewFabricNoC(fab, senders)
	case "spidergon":
		fab, as, berr := spidergon.Build(spidergon.Config{N: cores, Depth: 4})
		if berr != nil {
			return outcome{}, berr
		}
		for i, a := range as {
			senders[i] = a
		}
		noc, err = coherence.NewFabricNoC(fab, senders)
	}
	if err != nil {
		return outcome{}, err
	}
	sys, err := coherence.NewSystem(coherence.Config{
		Cores: cores, Lines: lines, FetchLen: fetchLen, CtrlLen: ctrlLen,
		Seed: 42, WriteFrac: writeFrac,
	}, noc)
	if err != nil {
		return outcome{}, err
	}
	noc.Bind(sys)
	stats, err := coherence.RunWorkload(sys, noc, cores, cycles, issueProb)
	if err != nil {
		return outcome{}, err
	}
	return outcome{
		issueProb: issueProb,
		writeVis:  stats.MeanWriteVisibility(),
		readMiss:  stats.MeanReadMissLatency(),
		stats:     stats,
	}, nil
}

func main() {
	fmt.Printf("MSI write-invalidate coherence: %d cores, %d-line working set, "+
		"%d-flit lines, %d cycles\n\n", cores, lines, fetchLen, cycles)

	issueProbs := []float64{0.01, 0.02, 0.04, 0.08}
	const writeFrac = 0.15

	header := []string{"accesses/core/cycle", "quarc write-vis", "spider write-vis",
		"quarc read-miss", "spider read-miss", "speedup"}
	var rows [][]string
	var firstQ, firstS outcome
	for i, p := range issueProbs {
		q, err := runProtocol("quarc", writeFrac, p)
		if err != nil {
			log.Fatal(err)
		}
		s, err := runProtocol("spidergon", writeFrac, p)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			firstQ, firstS = q, s
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", p),
			fmt.Sprintf("%.1f", q.writeVis),
			fmt.Sprintf("%.1f", s.writeVis),
			fmt.Sprintf("%.1f", q.readMiss),
			fmt.Sprintf("%.1f", s.readMiss),
			fmt.Sprintf("%.1fx", s.writeVis/q.writeVis),
		})
	}
	fmt.Println(plot.Table(header, rows))

	st := firstQ.stats
	fmt.Printf("protocol activity at the lightest load (quarc): %d reads (%d misses), "+
		"%d writes (%d upgrades), %d invalidations, %d writebacks\n",
		st.Reads, st.ReadMisses, st.Writes, st.WriteUpgrades, st.Invalidations, st.WriteBacks)
	fmt.Printf("\na write becomes globally visible in %.0f cycles on the Quarc versus "+
		"%.0f on the Spidergon\n(same cores, same trace, same protocol): the paper's "+
		"cache-sync argument, end to end.\n", firstQ.writeVis, firstS.writeVis)
}

// Multicast: demonstrate the BRCP bitstring multicast of paper §2.5.3.
//
// A 16-node Quarc sends a multicast to a scattered target set. The
// transceiver splits it into per-quadrant branch packets; each branch header
// carries a bitstring whose bit i marks the node at hop distance i+1 as a
// receiver, and the header destination is trimmed to the furthest target of
// the branch. Intermediate non-target nodes forward without absorbing;
// target nodes absorb-and-forward simultaneously.
//
// Run with:
//
//	go run ./examples/multicast
package main

import (
	"fmt"
	"log"
	"sort"

	"quarc"
	"quarc/internal/topology"
)

func main() {
	const n = 16
	fab, nodes, err := quarc.NewQuarc(quarc.QuarcConfig{N: n, Depth: 4})
	if err != nil {
		log.Fatal(err)
	}

	src := 0
	targets := []int{2, 5, 8, 11, 14}
	fmt.Printf("node %d multicasts an 8-flit message to %v\n\n", src, targets)

	// Show the branch decomposition the transceiver computes.
	fmt.Println("branch decomposition (paper §2.5.3):")
	for _, b := range topology.QuarcMulticastBranches(n, src, targets) {
		fmt.Printf("  quadrant %-9s header dst %-2d bitstring %012b\n", b.Q, b.Last, b.Bits)
	}
	fmt.Println()

	var completion quarc.MessageRecord
	fab.Tracker.OnDone = func(r quarc.MessageRecord) { completion = r }

	nodes[src].SendMulticast(targets, 8, fab.Now())
	for fab.Tracker.InFlight() > 0 {
		fab.Step()
	}

	fmt.Printf("multicast complete at cycle %d (%d destinations, generated at cycle %d)\n",
		completion.Last, completion.Delivered, completion.Gen)
	fmt.Printf("mean delivery cycle: %.1f; completion latency: %d cycles\n\n",
		float64(completion.DeliSum)/float64(completion.Delivered),
		completion.Last-completion.Gen)

	// Expected per-target latency is hops + message length; print the table.
	fmt.Println("per-target path lengths (deterministic routing):")
	sort.Ints(targets)
	for _, d := range targets {
		fmt.Printf("  node %-2d quadrant %-9s %d hops -> expected tail at cycle %d\n",
			d, topology.QuadrantOf(n, src, d), topology.QuarcHops(n, src, d),
			topology.QuarcHops(n, src, d)+8)
	}
	fmt.Printf("\nflits delivered to PEs: %d (= 8 flits x %d targets; non-targets got nothing)\n",
		fab.FlitsDelivered(), completion.Delivered)
}

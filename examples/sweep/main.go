// Sweep: regenerate one panel of the paper's Fig 9 (N=16, beta=5%, M=16)
// from the library API and render the latency-versus-load curves as an
// ASCII chart — the quickest way to see the paper's headline figure shape:
// the Quarc's curves sit below the Spidergon's everywhere, its broadcast
// latency is almost an order of magnitude lower, and it saturates at a
// visibly higher offered load.
//
// The sweep fans its independent (topology, rate, replicate) points across
// a worker pool; per-point seeds are derived from the experiment seed, so
// the output is bit-identical no matter how many workers run it.
//
// Run with:
//
//	go run ./examples/sweep                       (about a minute)
//	go run ./examples/sweep -fast                 (seconds, coarser)
//	go run ./examples/sweep -fast -replicates 3   (adds 95% CI whiskers)
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"quarc"
)

func main() {
	fast := flag.Bool("fast", false, "reduced simulation length")
	replicates := flag.Int("replicates", 1, "independent replicates per sweep point")
	workers := flag.Int("workers", 0, "sweep goroutines (0 = GOMAXPROCS)")
	flag.Parse()

	opts := quarc.DefaultOpts()
	if *fast {
		opts = quarc.FastOpts()
	}
	opts.Replicates = *replicates
	opts.Workers = *workers

	// Fig 9, middle panel: N=16, beta=5%, M=16.
	spec := quarc.Fig9Panels()[1]
	points := 2 * opts.Points * max(1, opts.Replicates)
	fmt.Printf("sweeping %s: %d offered loads x 2 architectures x %d replicate(s) "+
		"= %d independent simulations, in parallel...\n\n",
		spec.Name, opts.Points, max(1, opts.Replicates), points)

	start := time.Now()
	pr, err := quarc.RunPanel(spec, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(pr.Render())
	fmt.Printf("(swept in %.1fs)\n", time.Since(start).Seconds())

	// Quantify the headline ratios at the lowest (stable) load point.
	quarcUni, spiderUni := pr.UnicastSeries("quarc"), pr.UnicastSeries("spidergon")
	qUni, sUni := quarcUni.Y[0], spiderUni.Y[0]
	qBc, sBc := pr.CollectiveSeries("quarc").Y[0], pr.CollectiveSeries("spidergon").Y[0]
	fmt.Printf("at load %.5f: unicast %.1f vs %.1f cycles (%.1fx), "+
		"broadcast %.1f vs %.1f cycles (%.1fx)\n",
		pr.RatesSwept[0], qUni, sUni, sUni/qUni, qBc, sBc, sBc/qBc)
	fmt.Printf("saturation: quarc at %.4f, spidergon at %.4f msgs/node/cycle\n",
		quarcUni.SaturationPoint(), spiderUni.SaturationPoint())
}

// Barrier synchronisation: a second collective-communication workload.
//
// The paper positions the Quarc as "highly efficient in exchanging all types
// of traffic including broadcast and multicast" (§1) — collectives beyond
// cache invalidations. This example implements a classic two-phase barrier
// over the NoC:
//
//  1. gather: every core unicasts an "arrived" token to a root;
//  2. release: the root broadcasts the release when all tokens are in.
//
// The barrier cost is gather (unicast fan-in, bounded by the root's ejection
// bandwidth) plus release (one broadcast). On the Quarc the release is a
// single pipelined BRCP broadcast (~N/4 + M cycles); on the Spidergon it is
// a store-and-forward chain (~(N/2)(M+2) cycles), so barrier rounds are
// several times slower — which is exactly what the paper predicts for
// synchronisation-heavy MPSoC software.
//
// Run with:
//
//	go run ./examples/barrier
package main

import (
	"fmt"
	"log"

	"quarc"
	"quarc/internal/plot"
)

const (
	nodes    = 16
	tokenLen = 2 // flits per "arrived" token
	relLen   = 2 // flits per release broadcast
	rounds   = 32
)

// barrierRound runs `rounds` consecutive barriers and returns the mean
// cycles per round.
func barrierRound(topoName string) (float64, error) {
	var (
		fab  *quarc.Fabric
		uni  func(src, dst int) uint64
		bc   func(src int) uint64
		root = 0
	)
	switch topoName {
	case "quarc":
		f, ts, err := quarc.NewQuarc(quarc.QuarcConfig{N: nodes, Depth: 4})
		if err != nil {
			return 0, err
		}
		fab = f
		uni = func(s, d int) uint64 { return ts[s].SendUnicast(d, tokenLen, fab.Now()) }
		bc = func(s int) uint64 { return ts[s].SendBroadcast(relLen, fab.Now()) }
	case "spidergon":
		f, as, err := quarc.NewSpidergon(quarc.SpidergonConfig{N: nodes, Depth: 4})
		if err != nil {
			return 0, err
		}
		fab = f
		uni = func(s, d int) uint64 { return as[s].SendUnicast(d, tokenLen, fab.Now()) }
		bc = func(s int) uint64 { return as[s].SendBroadcast(relLen, fab.Now()) }
	default:
		return 0, fmt.Errorf("unknown topology %q", topoName)
	}

	// Track message completions by id.
	done := map[uint64]bool{}
	fab.Tracker.OnDone = func(r quarc.MessageRecord) { done[r.MsgID] = true }

	start := fab.Now()
	for round := 0; round < rounds; round++ {
		// Phase 1: gather. All non-root cores send their token at once —
		// the fan-in stresses the root's ejection path.
		tokens := make([]uint64, 0, nodes-1)
		for c := 0; c < nodes; c++ {
			if c != root {
				tokens = append(tokens, uni(c, root))
			}
		}
		for !allDone(done, tokens) {
			fab.Step()
		}
		// Phase 2: release broadcast; the barrier opens when the LAST core
		// hears it (completion latency).
		rel := bc(root)
		for !done[rel] {
			fab.Step()
		}
	}
	total := fab.Now() - start
	return float64(total) / rounds, nil
}

func allDone(done map[uint64]bool, ids []uint64) bool {
	for _, id := range ids {
		if !done[id] {
			return false
		}
	}
	return true
}

func main() {
	fmt.Printf("two-phase barrier on %d cores (%d-flit tokens, %d rounds)\n\n",
		nodes, tokenLen, rounds)
	var rows [][]string
	costs := map[string]float64{}
	for _, topo := range []string{"quarc", "spidergon"} {
		mean, err := barrierRound(topo)
		if err != nil {
			log.Fatal(err)
		}
		costs[topo] = mean
		rows = append(rows, []string{topo, fmt.Sprintf("%.1f", mean)})
	}
	fmt.Println(plot.Table([]string{"topology", "cycles per barrier"}, rows))
	fmt.Printf("\nthe Quarc synchronises %.1fx faster per barrier round: the gather is\n"+
		"similar on both (unicast fan-in), but the release broadcast is a single\n"+
		"pipelined BRCP wave instead of a store-and-forward chain.\n",
		costs["spidergon"]/costs["quarc"])
}

// Quickstart: build a small Quarc NoC, send a unicast and a broadcast, and
// watch the message lifecycles complete.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"quarc"
)

func main() {
	// An 8-node Quarc with 4-flit virtual-channel buffers.
	fab, nodes, err := quarc.NewQuarc(quarc.QuarcConfig{N: 8, Depth: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Print every completed message.
	fab.Tracker.OnDone = func(r quarc.MessageRecord) {
		fmt.Printf("message %d (%v) from node %d: generated at cycle %d, "+
			"%d destination(s), completed at cycle %d (latency %d cycles)\n",
			r.MsgID, r.Class, r.Src, r.Gen, r.Expected, r.Last, r.Last-r.Gen)
	}

	// Node 0 sends an 8-flit unicast to node 5. The transceiver's quadrant
	// calculator routes it: offset 5 of 8 is in the cross-ccw quadrant, so
	// the packet takes the cross link to node 4 and one rim hop backwards.
	nodes[0].SendUnicast(5, 8, fab.Now())

	// Node 3 broadcasts a cache-line update: four branch packets cover the
	// other 7 nodes along base-routing conformed paths, absorbed and
	// forwarded simultaneously at every hop.
	nodes[3].SendBroadcast(8, fab.Now())

	// Step the fabric until both messages land.
	for fab.Tracker.InFlight() > 0 {
		fab.Step()
	}

	fmt.Printf("\nsimulated %d cycles, %d flits crossed links, %d flits delivered\n",
		fab.Now(), fab.FlitsForwarded(), fab.FlitsDelivered())
	fmt.Printf("duplicate deliveries: %d (the Quarc broadcast covers every node exactly once)\n",
		fab.Tracker.Duplicates())
}

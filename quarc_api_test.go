package quarc_test

import (
	"testing"

	"quarc"
)

func TestPublicRunAPI(t *testing.T) {
	res, err := quarc.Run(quarc.Config{
		Topo: quarc.TopoQuarc, N: 16, MsgLen: 8, Beta: 0.1, Rate: 0.005,
		Warmup: 200, Measure: 1000, Drain: 6000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.UnicastCount == 0 || res.BcastCount == 0 {
		t.Fatalf("missing samples: %+v", res)
	}
	if res.Duplicates != 0 {
		t.Fatal("duplicate deliveries through the public API")
	}
}

func TestPublicFabricAPI(t *testing.T) {
	fab, nodes, err := quarc.NewQuarc(quarc.QuarcConfig{N: 16, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	var done []quarc.MessageRecord
	fab.Tracker.OnDone = func(r quarc.MessageRecord) { done = append(done, r) }
	nodes[0].SendBroadcast(8, fab.Now())
	nodes[3].SendUnicast(9, 8, fab.Now())
	for i := 0; i < 10000 && fab.Tracker.InFlight() > 0; i++ {
		fab.Step()
	}
	if len(done) != 2 {
		t.Fatalf("completed %d messages, want 2", len(done))
	}
}

func TestPublicBaselineBuilders(t *testing.T) {
	if _, _, err := quarc.NewSpidergon(quarc.SpidergonConfig{N: 16, Depth: 4}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := quarc.NewMesh(quarc.MeshConfig{W: 4, H: 4, Depth: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicCostAPI(t *testing.T) {
	if quarc.QuarcSwitchCost().Slices(32) != 1453 {
		t.Fatal("Table 1 calibration broken")
	}
	if quarc.SpidergonSwitchCost().Slices(32) != 1700 {
		t.Fatal("Spidergon calibration broken")
	}
	if len(quarc.Table1()) != 6 || len(quarc.Fig12()) != 3 {
		t.Fatal("table shapes wrong")
	}
}

func TestPublicPanelAPI(t *testing.T) {
	panels := quarc.Fig9Panels()
	if len(panels) != 3 {
		t.Fatal("Fig 9 panel count")
	}
	spec := panels[0]
	spec.Rates = []float64{0.004}
	pr, err := quarc.RunPanel(spec, quarc.RunOpts{
		Warmup: 200, Measure: 800, Drain: 4000, Depth: 4, Seed: 1, Points: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.UnicastSeries("quarc").Y) != 1 {
		t.Fatal("panel sweep incomplete")
	}
	if pr.Render() == "" {
		t.Fatal("panel render empty")
	}
}

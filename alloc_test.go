package quarc_test

import (
	"testing"

	"quarc"
)

// TestFabricStepSteadyStateAllocs is the allocation-regression guard behind
// the BenchmarkFabricStep allocs/op number: after warmup, stepping a loaded
// fabric must not allocate at all — the arbitration scratch, move buffers,
// packet storage and tracker states are all recycled. CI runs it by name.
func TestFabricStepSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the guard runs without -race")
	}
	fab, nodes, err := quarc.NewQuarc(quarc.QuarcConfig{N: 64, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Load every node with all three traffic classes, then warm up until
	// free lists and scratch buffers reach their steady-state capacity.
	mcastTargets := []int{5, 19, 33, 47} // reused: the send path must not need a fresh slice
	for i, nd := range nodes {
		nd.SendUnicast((i+7)%64, 16, 0)
		if i%8 == 0 {
			nd.SendBroadcast(16, 0)
		}
		if i%16 == 1 {
			nd.SendMulticast(mcastTargets, 16, 0)
		}
	}
	refill := func() {
		if fab.Tracker.InFlight() < 16 {
			for j, nd := range nodes {
				nd.SendUnicast((j+9)%64, 16, fab.Now())
				if j%16 == 2 {
					nd.SendMulticast(mcastTargets, 16, fab.Now())
				}
			}
		}
	}
	for i := 0; i < 2000; i++ {
		fab.Step()
		refill()
	}
	allocs := testing.AllocsPerRun(200, func() {
		fab.Step()
	})
	if allocs != 0 {
		t.Fatalf("Fabric.Step allocated %.1f times per cycle in steady state; want 0", allocs)
	}
}

// TestActivityCycleSteadyStateAllocs guards the activity scheduler's own
// machinery: draining a fabric to fully idle (every router sleeping),
// fast-forwarding the clock, waking nodes by enqueue and stepping back up
// must all run allocation-free once the free lists are warm — the
// sleep/wake churn is the low-load hot path the scheduler exists for.
func TestActivityCycleSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the guard runs without -race")
	}
	fab, nodes, err := quarc.NewQuarc(quarc.QuarcConfig{N: 64, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	idleWake := func() {
		for !fab.Idle() {
			fab.Step()
		}
		fab.AdvanceIdle(100)
		for j, nd := range nodes {
			if j%16 == 0 {
				nd.SendUnicast((j+5)%64, 8, fab.Now())
			}
		}
		for !fab.Idle() {
			fab.Step()
		}
	}
	// Warm every free list and scratch buffer through a few full cycles.
	for i := 0; i < 50; i++ {
		idleWake()
	}
	if allocs := testing.AllocsPerRun(100, idleWake); allocs != 0 {
		t.Fatalf("idle/wake cycle allocated %.1f times in steady state; want 0", allocs)
	}
}

// Command quarcbench regenerates the paper's evaluation artefacts: the
// latency-versus-load panels of Figs 9-11, the cost tables (Table 1 and
// Fig 12), the §3.2 simulator-versus-analytical-model verification, the
// modification ablation, the link-load balance analysis, and the
// future-work mesh/torus comparison.
//
// Examples:
//
//	quarcbench -experiment all
//	quarcbench -experiment fig9 -fast
//	quarcbench -experiment fig10 -replicates 5 -workers 8
//	quarcbench -experiment fig9 -models quarc,spidergon,ring -mcast-frac 0.1 -mcast-size 4
//	quarcbench -experiment cost
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"quarc/internal/experiments"
	"quarc/internal/prof"
	"quarc/internal/service"
)

func main() {
	var (
		which = flag.String("experiment", "all",
			"one of: fig9, fig10, fig11, table1, fig12, cost, verify, ablation, mesh, linkload, contention, depth, bursty, hotspot, all")
		fast       = flag.Bool("fast", false, "reduced simulation length (quick look)")
		csvDir     = flag.String("csv", "", "also write per-panel CSV files into this directory")
		replicates = flag.Int("replicates", 1,
			"independent replicates per sweep point (mean ± 95% CI aggregation)")
		workers = flag.Int("workers", 0,
			"sweep goroutines (0 = GOMAXPROCS); never changes the results")
		stepWorkers = flag.Int("step-workers", 0,
			"intra-fabric stepping goroutines per design point (0 = automatic, "+
				"1 = serial); never changes the results")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
		serial     = flag.Bool("serial", false, "run panel sweeps on a single goroutine")
		jsonOut    = flag.Bool("json", false,
			"emit fig9/fig10/fig11 panels as NDJSON in the quarcd wire schema instead of tables")
		pattern = flag.String("pattern", "uniform",
			"unicast pattern for the fig9/fig10/fig11 panel sweeps: uniform, hotspot, antipodal, neighbor, bitreverse")
		hotspotBias = flag.Float64("hotspot-bias", 0,
			"probability a hotspot-pattern unicast targets node 0")
		modelsFlag = flag.String("models", "",
			"comma-separated registry model names the fig9/fig10/fig11 panels sweep "+
				"(default: the paper's quarc,spidergon pair; see -list-models)")
		mcastFrac = flag.Float64("mcast-frac", 0,
			"fraction of non-broadcast messages sent as k-target multicasts in the panel sweeps")
		mcastSize = flag.Int("mcast-size", 0,
			"targets per multicast, 2..N-1 (required with -mcast-frac)")
		listModels = flag.Bool("list-models", false, "list the registered network models and exit")
	)
	flag.Parse()

	if *listModels {
		for _, m := range service.Models() {
			fmt.Printf("%-18s (e.g. N=%d)  %s\n", m.Name, m.ExampleN, m.Description)
		}
		return
	}

	pat, err := service.ParsePattern(*pattern)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quarcbench: %v\n", err)
		os.Exit(2)
	}
	if *hotspotBias < 0 || *hotspotBias > 1 {
		fmt.Fprintf(os.Stderr, "quarcbench: -hotspot-bias %v outside [0,1]\n", *hotspotBias)
		os.Exit(2)
	}
	var panelModels []string
	if *modelsFlag != "" {
		for _, m := range strings.Split(*modelsFlag, ",") {
			m = strings.TrimSpace(m)
			if m == "" {
				// ParseModel maps "" to the default model; a stray comma must
				// not silently add a quarc curve the user never asked for.
				fmt.Fprintf(os.Stderr, "quarcbench: -models: empty model name in %q\n", *modelsFlag)
				os.Exit(2)
			}
			name, err := service.ParseModel(m)
			if err != nil {
				fmt.Fprintf(os.Stderr, "quarcbench: -models: %v\n", err)
				os.Exit(2)
			}
			panelModels = append(panelModels, name)
		}
	}
	if *mcastFrac < 0 || *mcastFrac > 1 {
		fmt.Fprintf(os.Stderr, "quarcbench: -mcast-frac %v outside [0,1]\n", *mcastFrac)
		os.Exit(2)
	}
	if *jsonOut {
		switch *which {
		case "fig9", "fig10", "fig11":
		case "all":
			// Keep stdout pure NDJSON: under -json, "all" means the three
			// panel sweeps; the text-only experiments are skipped.
			fmt.Fprintln(os.Stderr, "quarcbench: -json: running the fig9/fig10/fig11 "+
				"panel sweeps only (the other experiments have no JSON form)")
		default:
			fmt.Fprintf(os.Stderr, "quarcbench: note: -json applies to the fig9/fig10/fig11 "+
				"panel sweeps; %q keeps its text output\n", *which)
		}
	}

	opts := experiments.DefaultOpts()
	if *fast {
		opts = experiments.FastOpts()
	}
	opts.Replicates = *replicates
	opts.Workers = *workers
	opts.StepWorkers = *stepWorkers

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quarcbench: %v\n", err)
		os.Exit(2)
	}
	if *replicates > 1 {
		switch *which {
		case "fig9", "fig10", "fig11", "all":
		default:
			fmt.Fprintf(os.Stderr, "quarcbench: note: -replicates and -workers apply to the "+
				"fig9/fig10/fig11 panel sweeps; %q runs unreplicated\n", *which)
		}
	}

	runPanel := experiments.RunPanel
	if *serial {
		runPanel = experiments.RunPanelSerial
	}
	runPanels := func(name string, panels []experiments.PanelSpec) {
		for pi, spec := range panels {
			spec.Pattern, spec.HotspotBias = pat, *hotspotBias
			spec.Models = panelModels
			spec.McastFrac, spec.McastSize = *mcastFrac, *mcastSize
			start := time.Now()
			pr, err := runPanel(spec, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "quarcbench: %s: %v\n", name, err)
				os.Exit(1)
			}
			if *jsonOut {
				if err := json.NewEncoder(os.Stdout).Encode(service.EncodePanel(pr)); err != nil {
					fmt.Fprintf(os.Stderr, "quarcbench: %s: %v\n", name, err)
					os.Exit(1)
				}
			} else {
				fmt.Println(pr.Render())
				fmt.Printf("(panel swept in %.1fs)\n\n", time.Since(start).Seconds())
			}
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					fmt.Fprintf(os.Stderr, "quarcbench: %v\n", err)
					os.Exit(1)
				}
				path := filepath.Join(*csvDir, fmt.Sprintf("%s_panel%d.csv", name, pi+1))
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintf(os.Stderr, "quarcbench: %v\n", err)
					os.Exit(1)
				}
				if err := pr.WriteCSV(f); err != nil {
					fmt.Fprintf(os.Stderr, "quarcbench: csv: %v\n", err)
					os.Exit(1)
				}
				f.Close()
				if *jsonOut {
					fmt.Fprintf(os.Stderr, "(csv written to %s)\n", path)
				} else {
					fmt.Printf("(csv written to %s)\n\n", path)
				}
			}
		}
	}

	did := false
	panelExperiments := map[string]bool{"fig9": true, "fig10": true, "fig11": true}
	want := func(names ...string) bool {
		for _, n := range names {
			if *which == n || *which == "all" {
				if *jsonOut && *which == "all" && !panelExperiments[n] {
					return false // -json keeps stdout pure NDJSON
				}
				did = true
				return true
			}
		}
		return false
	}

	if want("fig9") {
		runPanels("fig9", experiments.Fig9Panels())
	}
	if want("fig10") {
		runPanels("fig10", experiments.Fig10Panels())
	}
	if want("fig11") {
		runPanels("fig11", experiments.Fig11Panels())
	}
	if want("table1", "fig12", "cost") {
		fmt.Println(experiments.RenderCost())
	}
	if want("verify") {
		rows, err := experiments.Verify(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quarcbench: verify: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(experiments.RenderVerify(rows))
	}
	if want("ablation") {
		n, m, beta, rate := 16, 16, 0.05, 0.008
		rows, err := experiments.Ablation(n, m, beta, rate, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quarcbench: ablation: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(experiments.RenderAblation(rows, n, m, beta, rate))
	}
	if want("mesh") {
		out, err := experiments.MeshComparison(16, 16, 0.05, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quarcbench: mesh: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if want("linkload") {
		out, err := experiments.LinkLoadBalance(16, 2, 0.01, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quarcbench: linkload: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if want("contention") {
		out, err := experiments.Contention(16, 16, 0.05, 0.012, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quarcbench: contention: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if want("depth") {
		for _, topo := range []experiments.Topology{experiments.TopoQuarc, experiments.TopoSpidergon} {
			rows, err := experiments.DepthSweep(topo, 16, 16, 0.05, 0.012, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "quarcbench: depth: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(experiments.RenderDepthSweep(topo, rows))
		}
	}
	if want("bursty") {
		out, err := experiments.Bursty(16, 16, 0.05, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quarcbench: bursty: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if want("hotspot") {
		out, err := experiments.HotspotComparison(16, 16, 0.3, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quarcbench: hotspot: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "quarcbench: %v\n", err)
		os.Exit(1)
	}
	if !did {
		fmt.Fprintf(os.Stderr, "quarcbench: unknown experiment %q\n", *which)
		os.Exit(2)
	}
}

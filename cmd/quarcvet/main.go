// quarcvet runs the repo-specific static-analysis suite (internal/lint)
// over the given packages: determinism, cache-key purity, hot-path
// allocation discipline, coordinator-section race discipline and metric
// registration. Exit status 0 means no unsuppressed diagnostics; 1 means
// findings were printed; 2 means the load itself failed.
//
// Usage:
//
//	go run ./cmd/quarcvet ./...
package main

import (
	"flag"
	"fmt"
	"os"

	"quarc/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the suite's analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: quarcvet [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "quarcvet:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quarcvet:", err)
		os.Exit(2)
	}
	found := 0
	for _, pkg := range pkgs {
		for _, d := range lint.RunAnalyzers(pkg, lint.All()) {
			fmt.Println(d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "quarcvet: %d finding(s)\n", found)
		os.Exit(1)
	}
}

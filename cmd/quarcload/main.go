// Command quarcload is a closed-loop load generator for quarcd: a pool of
// concurrent clients submits single-run jobs with ?wait=1, mixing requests
// that share a small pool of hot seeds (cache hits after first touch) with
// unique-seed requests (forced simulations), then reports throughput,
// latency percentiles, cache-hit, degraded-answer and success rates.
// Transient 503s are retried with jittered exponential backoff honouring
// Retry-After. It exits non-zero unless every request succeeded (and, with
// -min-degraded, unless enough answers were degraded), so CI can use a burst
// as a serving or chaos smoke test.
//
// With -follow it is instead a reconnect-and-replay event tailer: it streams
// one job's NDJSON events (GET /v1/jobs/{id}/events), and on any broken
// connection reconnects with ?from=<events seen so far>, so every event is
// printed exactly once across disconnects — and, with a durable daemon,
// across daemon restarts. It exits 0 when the job ends done, non-zero
// otherwise.
//
// Examples:
//
//	quarcload -addr http://127.0.0.1:8080 -n 200 -c 8
//	quarcload -addr http://127.0.0.1:8080 -n 50 -c 4 -cached 0
//	quarcload -addr http://127.0.0.1:8080 -model ring -n 100
//	quarcload -addr http://127.0.0.1:8080 -follow j000003
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"quarc/internal/service"
	"quarc/internal/stats"
)

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8080", "quarcd base URL")
		total     = flag.Int("n", 200, "total requests")
		conc      = flag.Int("c", 8, "concurrent clients")
		cached    = flag.Float64("cached", 0.5, "fraction of requests drawn from the hot-seed pool (cacheable)")
		hotSeeds  = flag.Int("hot-seeds", 4, "distinct seeds in the hot pool")
		modelName = flag.String("model", "quarc",
			"network model submitted by every request (validated against the daemon's GET /v1/models)")
		nodes   = flag.Int("nodes", 8, "nodes per simulated network")
		rate    = flag.Float64("rate", 0.005, "offered load per request")
		measure = flag.Int64("measure", 1000, "measured cycles per request")
		timeout = flag.Duration("timeout", 60*time.Second, "per-request timeout")
		ready   = flag.Duration("ready-timeout", 10*time.Second, "how long to wait for the daemon to answer /healthz")
		follow  = flag.String("follow", "", "tail one job's event stream (reconnect-and-replay) instead of generating load")

		deadlineMs  = flag.Int64("deadline-ms", 0, "deadline_ms sent on every request (0 = none); expired analyzable runs come back as degraded analytic answers")
		minDegraded = flag.Int("min-degraded", 0, "exit non-zero unless at least this many answers were degraded (chaos smoke: proves the degraded path fired)")
	)
	flag.Parse()
	if *follow != "" {
		os.Exit(followJob(*addr, *follow, *ready))
	}
	if *total < 1 || *conc < 1 || *hotSeeds < 1 {
		fmt.Fprintln(os.Stderr, "quarcload: -n, -c and -hot-seeds must be positive")
		os.Exit(2)
	}

	client := &http.Client{Timeout: *timeout}
	if err := waitReady(client, *addr, *ready); err != nil {
		fmt.Fprintf(os.Stderr, "quarcload: daemon not ready: %v\n", err)
		os.Exit(1)
	}
	if err := checkModel(client, *addr, *modelName); err != nil {
		fmt.Fprintf(os.Stderr, "quarcload: %v\n", err)
		os.Exit(2)
	}

	type sample struct {
		latency  time.Duration
		cached   bool
		degraded bool
		err      error
	}
	samples := make([]sample, *total)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *total {
					return
				}
				req := service.RunRequest{
					Topo: *modelName, N: *nodes, MsgLen: 4, Beta: 0.05, Rate: *rate,
					Warmup: 200, Measure: *measure, Drain: 5000,
					DeadlineMs: *deadlineMs,
				}
				// Deterministic, evenly interleaved hot/cold split: request i
				// is hot when the running count of hot requests should grow
				// (Bresenham-style), so any -n yields round(n*frac) hot
				// requests spread across the run rather than front-loaded.
				// Hot requests cycle through the seed pool by hot ordinal.
				hotOrdinal := int(float64(i) * (*cached))
				if int(float64(i+1)*(*cached)) > hotOrdinal {
					req.Seed = 1000 + uint64(hotOrdinal%*hotSeeds)
				} else {
					req.Seed = 0xC01D_0000 + uint64(i)
				}
				t0 := time.Now()
				hit, deg, err := post(client, *addr, req)
				samples[i] = sample{latency: time.Since(t0), cached: hit, degraded: deg, err: err}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var ok, hits, degraded int
	var lats []float64
	var firstErr error
	for _, s := range samples {
		if s.err != nil {
			if firstErr == nil {
				firstErr = s.err
			}
			continue
		}
		ok++
		if s.cached {
			hits++
		}
		if s.degraded {
			degraded++
		}
		lats = append(lats, float64(s.latency.Microseconds())/1000.0)
	}
	sort.Float64s(lats)

	fmt.Printf("requests        %d (%d clients, closed loop, model %s)\n", *total, *conc, *modelName)
	fmt.Printf("elapsed         %.2fs\n", elapsed.Seconds())
	// Throughput counts completed requests only: failed requests did no
	// useful work, and counting them would inflate the figure exactly when
	// the daemon is struggling.
	fmt.Printf("throughput      %.1f req/s\n", float64(ok)/elapsed.Seconds())
	fmt.Printf("success rate    %.2f%% (%d/%d)\n", 100*float64(ok)/float64(*total), ok, *total)
	fmt.Printf("cached          %.2f%% of successes (%d)\n", pct(hits, ok), hits)
	fmt.Printf("degraded        %.2f%% of successes (%d analytic answers)\n", pct(degraded, ok), degraded)
	if len(lats) > 0 {
		fmt.Printf("latency p50     %.2f ms\n", stats.Percentile(lats, 50))
		fmt.Printf("latency p95     %.2f ms\n", stats.Percentile(lats, 95))
		fmt.Printf("latency p99     %.2f ms\n", stats.Percentile(lats, 99))
		fmt.Printf("latency max     %.2f ms\n", lats[len(lats)-1])
	}
	if ok != *total {
		fmt.Fprintf(os.Stderr, "quarcload: %d/%d requests failed; first error: %v\n",
			*total-ok, *total, firstErr)
		os.Exit(1)
	}
	if degraded < *minDegraded {
		fmt.Fprintf(os.Stderr, "quarcload: %d degraded answers, want at least %d\n",
			degraded, *minDegraded)
		os.Exit(1)
	}
}

func pct(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// waitReady polls /healthz until the daemon answers.
func waitReady(client *http.Client, addr string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("healthz: %s", resp.Status)
		} else {
			lastErr = err
		}
		time.Sleep(100 * time.Millisecond)
	}
	return lastErr
}

// checkModel validates the requested model against the daemon's registry
// (GET /v1/models), so a typo fails fast with the available names instead of
// as -n failed submissions.
func checkModel(client *http.Client, addr, name string) error {
	resp, err := client.Get(addr + "/v1/models")
	if err != nil {
		return fmt.Errorf("list models: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("list models: %s", resp.Status)
	}
	var models []service.ModelJSON
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		return fmt.Errorf("decode models: %w", err)
	}
	var names []string
	for _, m := range models {
		if m.Name == name {
			return nil
		}
		names = append(names, m.Name)
	}
	return fmt.Errorf("unknown model %q (daemon offers: %s)", name, strings.Join(names, ", "))
}

// followJob tails one job's NDJSON event stream to stdout, reconnecting
// with ?from=<events seen> whenever the connection breaks — a network blip,
// a proxy timeout, or a durable daemon restarting — so every event prints
// exactly once across any number of reconnects. Returns the exit code: 0
// when the job ends done, 1 when it fails, is cancelled, or disappears.
func followJob(addr, id string, ready time.Duration) int {
	// No client timeout: the stream is long-lived by design and reconnection
	// handles every failure mode a deadline would.
	client := &http.Client{}
	seen := 0
	var last service.State
	for {
		if err := waitReady(client, addr, ready); err != nil {
			fmt.Fprintf(os.Stderr, "quarcload: daemon not ready: %v\n", err)
			return 1
		}
		resp, err := client.Get(fmt.Sprintf("%s/v1/jobs/%s/events?from=%d", addr, id, seen))
		if err != nil {
			fmt.Fprintf(os.Stderr, "quarcload: connect: %v (reconnecting)\n", err)
			time.Sleep(500 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			// Recovery runs before the daemon listens, so a 404 is
			// authoritative: the job is gone, not still booting.
			fmt.Fprintf(os.Stderr, "quarcload: %s: %s\n", resp.Status, bytes.TrimSpace(body))
			return 1
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			line := sc.Bytes()
			var e service.Event
			if err := json.Unmarshal(line, &e); err != nil {
				continue // torn tail of a dying connection; resume from seen
			}
			seen++
			fmt.Printf("%s\n", line)
			if e.Type == "state" {
				last = e.State
			}
		}
		resp.Body.Close()
		switch last {
		case service.StateDone:
			return 0
		case service.StateFailed, service.StateCancelled:
			return 1
		}
		// The stream broke mid-job: reconnect and replay from where it broke.
		time.Sleep(500 * time.Millisecond)
	}
}

// post submits one run with ?wait=1 and reports whether it was served from
// cache and whether the answer is a degraded analytic estimate. A 503
// (queue full on an un-sheddable request, or the daemon draining) is retried
// with jittered exponential backoff, honouring a Retry-After header when the
// daemon provides one — transient backpressure should read as latency, not
// failure.
func post(client *http.Client, addr string, req service.RunRequest) (cached, degraded bool, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return false, false, err
	}
	const retries = 4
	backoff := 100 * time.Millisecond
	var resp *http.Response
	for attempt := 0; ; attempt++ {
		resp, err = client.Post(addr+"/v1/runs?wait=1", "application/json", bytes.NewReader(body))
		if err != nil {
			return false, false, err
		}
		if resp.StatusCode != http.StatusServiceUnavailable || attempt == retries {
			break
		}
		wait := backoff + time.Duration(rand.Int63n(int64(backoff)))
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, perr := strconv.Atoi(s); perr == nil && secs >= 0 {
				wait = time.Duration(secs) * time.Second
			}
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		time.Sleep(wait)
		backoff *= 2
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return false, false, err
	}
	if resp.StatusCode != http.StatusOK {
		return false, false, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(data))
	}
	var job service.JobJSON
	if err := json.Unmarshal(data, &job); err != nil {
		return false, false, fmt.Errorf("decode job: %w", err)
	}
	if job.State != service.StateDone {
		return false, false, fmt.Errorf("job %s finished %s: %s", job.ID, job.State, job.Error)
	}
	if len(job.Result) == 0 {
		return false, false, fmt.Errorf("job %s done without result", job.ID)
	}
	degraded = job.Degraded
	if !degraded {
		// The wire flag is authoritative, but double-check the payload: a
		// degraded payload without the job flag would be a serving bug worth
		// surfacing in the summary.
		var rr service.RunResult
		if json.Unmarshal(job.Result, &rr) == nil && rr.Degraded {
			degraded = true
		}
	}
	return job.Cached, degraded, nil
}

// Command benchjson converts `go test -bench` output into a JSON document,
// so the repository can track its performance trajectory as data instead of
// prose. `make bench-json` pipes the tier-1 benchmarks through it and writes
// BENCH_PR3.json.
//
// For BenchmarkFabricStep one benchmark op is one simulated fabric cycle, so
// the tool also derives simulated cycles per wall-clock second — the
// simulator's headline throughput number. With -baseline pointing at a saved
// raw benchmark log (the pre-refactor run committed as
// BENCH_PR3_BASELINE.txt), the output embeds the baseline rows and the
// fabric-step speedup against them.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -baseline BENCH_PR3_BASELINE.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// CyclesPerSec is reported for FabricStep, where one op is one
	// simulated cycle.
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
}

// FabricStepDelta compares the current FabricStep against the baseline.
type FabricStepDelta struct {
	BaselineNsPerOp      float64 `json:"baseline_ns_per_op"`
	NsPerOp              float64 `json:"ns_per_op"`
	BaselineCyclesPerSec float64 `json:"baseline_cycles_per_sec"`
	CyclesPerSec         float64 `json:"cycles_per_sec"`
	Speedup              float64 `json:"speedup"`
	BaselineAllocsPerOp  float64 `json:"baseline_allocs_per_op"`
	AllocsPerOp          float64 `json:"allocs_per_op"`
}

// Report is the emitted document.
type Report struct {
	Benchmarks []Benchmark      `json:"benchmarks"`
	Baseline   []Benchmark      `json:"baseline,omitempty"`
	FabricStep *FabricStepDelta `json:"fabric_step,omitempty"`
}

// benchLine matches `BenchmarkName[-P]  iters  ns/op [B/op allocs/op]` rows.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

func parse(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		b := Benchmark{Name: strings.TrimPrefix(m[1], "Benchmark")}
		b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		b.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			b.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
			b.AllocsPerOp, _ = strconv.ParseFloat(m[5], 64)
		}
		if b.Name == "FabricStep" && b.NsPerOp > 0 {
			b.CyclesPerSec = 1e9 / b.NsPerOp
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

func find(bs []Benchmark, name string) *Benchmark {
	for i := range bs {
		if bs[i].Name == name {
			return &bs[i]
		}
	}
	return nil
}

func main() {
	baselinePath := flag.String("baseline", "", "raw `go test -bench` log to compare FabricStep against")
	flag.Parse()

	current, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	rep := Report{Benchmarks: current}

	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		rep.Baseline, err = parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		base, cur := find(rep.Baseline, "FabricStep"), find(current, "FabricStep")
		if base != nil && cur != nil && base.NsPerOp > 0 && cur.NsPerOp > 0 {
			rep.FabricStep = &FabricStepDelta{
				BaselineNsPerOp:      base.NsPerOp,
				NsPerOp:              cur.NsPerOp,
				BaselineCyclesPerSec: 1e9 / base.NsPerOp,
				CyclesPerSec:         1e9 / cur.NsPerOp,
				Speedup:              base.NsPerOp / cur.NsPerOp,
				BaselineAllocsPerOp:  base.AllocsPerOp,
				AllocsPerOp:          cur.AllocsPerOp,
			}
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

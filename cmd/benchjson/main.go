// Command benchjson converts `go test -bench` output into a JSON document,
// so the repository can track its performance trajectory as data instead of
// prose. `make bench-json` pipes the tier-1 benchmarks through it and writes
// BENCH_PR4.json.
//
// For BenchmarkFabricStep one benchmark op is one simulated fabric cycle, so
// the tool also derives simulated cycles per wall-clock second — the
// simulator's headline throughput number. With -baseline pointing at a saved
// raw benchmark log (the pre-optimisation run committed as
// BENCH_PR4_BASELINE.txt), the output embeds the baseline rows and one
// speedup delta per benchmark present in both runs, so a PR's target ratios
// (speedup floors, regression ceilings) are readable straight out of the
// document.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -baseline BENCH_PR4_BASELINE.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// CyclesPerSec is reported for FabricStep, where one op is one
	// simulated cycle.
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
}

// Delta compares one benchmark present in both runs against its baseline.
type Delta struct {
	Name                string  `json:"name"`
	BaselineNsPerOp     float64 `json:"baseline_ns_per_op"`
	NsPerOp             float64 `json:"ns_per_op"`
	Speedup             float64 `json:"speedup"`
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op"`
	AllocsPerOp         float64 `json:"allocs_per_op"`
	// Cycles/sec pair, present only for FabricStep (one op == one simulated
	// cycle).
	BaselineCyclesPerSec float64 `json:"baseline_cycles_per_sec,omitempty"`
	CyclesPerSec         float64 `json:"cycles_per_sec,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
	Baseline   []Benchmark `json:"baseline,omitempty"`
	// Deltas holds one row per benchmark present in both runs, so a PR's
	// target ratios (speedup floors, regression ceilings) can be read
	// straight out of the document.
	Deltas []Delta `json:"deltas,omitempty"`
}

// benchLine matches `BenchmarkName[-P]  iters  ns/op [B/op allocs/op]` rows.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

func parse(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		b := Benchmark{Name: strings.TrimPrefix(m[1], "Benchmark")}
		b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		b.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			b.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
			b.AllocsPerOp, _ = strconv.ParseFloat(m[5], 64)
		}
		if b.Name == "FabricStep" && b.NsPerOp > 0 {
			b.CyclesPerSec = 1e9 / b.NsPerOp
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

func find(bs []Benchmark, name string) *Benchmark {
	for i := range bs {
		if bs[i].Name == name {
			return &bs[i]
		}
	}
	return nil
}

func main() {
	baselinePath := flag.String("baseline", "", "raw `go test -bench` log to compare against")
	flag.Parse()

	current, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	rep := Report{Benchmarks: current}

	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		rep.Baseline, err = parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		for i := range current {
			cur := &current[i]
			base := find(rep.Baseline, cur.Name)
			if base == nil || base.NsPerOp <= 0 || cur.NsPerOp <= 0 {
				continue
			}
			d := Delta{
				Name:                cur.Name,
				BaselineNsPerOp:     base.NsPerOp,
				NsPerOp:             cur.NsPerOp,
				Speedup:             base.NsPerOp / cur.NsPerOp,
				BaselineAllocsPerOp: base.AllocsPerOp,
				AllocsPerOp:         cur.AllocsPerOp,
			}
			if cur.Name == "FabricStep" {
				d.BaselineCyclesPerSec = 1e9 / base.NsPerOp
				d.CyclesPerSec = 1e9 / cur.NsPerOp
			}
			rep.Deltas = append(rep.Deltas, d)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

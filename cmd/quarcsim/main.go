// Command quarcsim runs a single flit-level NoC simulation and prints its
// latency and throughput statistics.
//
// Examples:
//
//	quarcsim -topo quarc -n 16 -m 16 -beta 0.05 -rate 0.01
//	quarcsim -topo spidergon -n 64 -m 16 -beta 0.10 -rate 0.005 -cycles 20000
//	quarcsim -topo mesh -n 16 -m 8 -rate 0.02 -pattern hotspot
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"quarc"
	"quarc/internal/prof"
	"quarc/internal/service"
)

func main() {
	var (
		topoName    = flag.String("topo", "quarc", "network model by registry name (see -list-models)")
		n           = flag.Int("n", 16, "number of nodes (multiple of 4 for rings, square for meshes)")
		m           = flag.Int("m", 16, "message length in flits")
		beta        = flag.Float64("beta", 0.05, "broadcast fraction of generated messages")
		rate        = flag.Float64("rate", 0.01, "offered load, messages per node per cycle")
		pattern     = flag.String("pattern", "uniform", "unicast pattern: uniform, hotspot, antipodal, neighbor, bitreverse")
		hotspotBias = flag.Float64("hotspot-bias", 0, "probability a hotspot-pattern unicast targets node 0")
		burstOn     = flag.Float64("burst-on", 0, "bursty traffic: mean burst length in cycles (use with -burst-off; -rate stays the mean load)")
		burstOff    = flag.Float64("burst-off", 0, "bursty traffic: mean silence length in cycles")
		mcastFrac   = flag.Float64("mcast-frac", 0, "fraction of non-broadcast messages sent as k-target multicasts (use with -mcast-size)")
		mcastSize   = flag.Int("mcast-size", 0, "targets per multicast, 2..N-1")
		warmup      = flag.Int64("warmup", 3000, "warmup cycles (not measured)")
		cycles      = flag.Int64("cycles", 12000, "measured cycles")
		drain       = flag.Int64("drain", 40000, "max drain cycles after generation stops")
		depth       = flag.Int("depth", 4, "virtual-channel buffer depth in flits")
		seed        = flag.Uint64("seed", 1, "random seed")
		replicates  = flag.Int("replicates", 1,
			"independent replicates with derived seeds; >1 reports mean ± 95% CI across them")
		workers     = flag.Int("workers", 0, "replicate goroutines (0 = GOMAXPROCS)")
		stepWorkers = flag.Int("step-workers", 0,
			"intra-fabric stepping goroutines (0 = automatic, 1 = serial); never changes the result")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
		jsonOut    = flag.Bool("json", false,
			"emit the result as JSON in the quarcd wire schema instead of text")
		listModels = flag.Bool("list-models", false, "list the registered network models and exit")
	)
	flag.Parse()

	if *listModels {
		for _, m := range service.Models() {
			fmt.Printf("%-18s (e.g. -n %d)  %s\n", m.Name, m.ExampleN, m.Description)
		}
		return
	}

	// The wire vocabulary lives in one place: the service schema, which in
	// turn defers to the model registry.
	model, err := service.ParseModel(*topoName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quarcsim: %v\n", err)
		os.Exit(2)
	}
	pat, err := service.ParsePattern(*pattern)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quarcsim: %v\n", err)
		os.Exit(2)
	}
	if *hotspotBias < 0 || *hotspotBias > 1 {
		fmt.Fprintf(os.Stderr, "quarcsim: -hotspot-bias %v outside [0,1]\n", *hotspotBias)
		os.Exit(2)
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quarcsim: %v\n", err)
		os.Exit(2)
	}

	res, reps, err := quarc.RunReplicated(quarc.Config{
		Model: model, N: *n, MsgLen: *m, Beta: *beta, Rate: *rate,
		Pattern: pat, HotspotBias: *hotspotBias,
		BurstMeanOn: *burstOn, BurstMeanOff: *burstOff,
		McastFrac: *mcastFrac, McastSize: *mcastSize, Depth: *depth,
		Warmup: *warmup, Measure: *cycles, Drain: *drain, Seed: *seed,
		StepWorkers: *stepWorkers,
	}, *replicates, *workers)
	if perr := stopProf(); perr != nil {
		fmt.Fprintf(os.Stderr, "quarcsim: %v\n", perr)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "quarcsim: %v\n", err)
		os.Exit(1)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(service.EncodeRun(res, reps)); err != nil {
			fmt.Fprintf(os.Stderr, "quarcsim: %v\n", err)
			os.Exit(1)
		}
		if res.Duplicates > 0 {
			fmt.Fprintf(os.Stderr, "quarcsim: ERROR: %d duplicate deliveries (routing bug)\n", res.Duplicates)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("topology        %s\n", model)
	fmt.Printf("nodes           %d\n", *n)
	fmt.Printf("message length  %d flits\n", *m)
	if *burstOn > 0 {
		fmt.Printf("bursty source   on %.0f / off %.0f cycles (mean load unchanged)\n", *burstOn, *burstOff)
	}
	if *mcastFrac > 0 {
		fmt.Printf("multicast       %.0f%% of non-broadcast messages to %d targets (%d completed)\n",
			*mcastFrac*100, *mcastSize, res.McastCount)
	}
	if len(reps) > 1 {
		fmt.Printf("replicates      %d (latencies are means ± 95%% CI across replicates)\n", len(reps))
	}
	fmt.Printf("offered load    %.5f msgs/node/cycle (beta=%.0f%%)\n", *rate, *beta*100)
	fmt.Printf("unicast latency %.2f ± %.2f cycles (%d messages)\n",
		res.UnicastMean, res.UnicastCI, res.UnicastCount)
	if res.UnicastCount > 0 {
		fmt.Printf("unicast tail    p50 %.0f / p95 %.0f / p99 %.0f cycles\n",
			res.UnicastP50, res.UnicastP95, res.UnicastP99)
	}
	if res.BcastCount > 0 {
		fmt.Printf("bcast completion %.2f ± %.2f cycles (%d broadcasts)\n",
			res.BcastMean, res.BcastCI, res.BcastCount)
		fmt.Printf("bcast tail      p50 %.0f / p95 %.0f / p99 %.0f cycles\n",
			res.BcastP50, res.BcastP95, res.BcastP99)
		fmt.Printf("bcast per-dest   %.2f cycles mean delivery\n", res.BcastDelivery)
	}
	fmt.Printf("throughput      %.4f flits/node/cycle\n", res.Throughput)
	fmt.Printf("saturated       %v\n", res.Saturated)
	if res.Leftover > 0 {
		fmt.Printf("WARNING: %d messages undelivered within the drain budget\n", res.Leftover)
	}
	if res.Duplicates > 0 {
		fmt.Printf("ERROR: %d duplicate deliveries (routing bug)\n", res.Duplicates)
		os.Exit(1)
	}
}

// Command quarcd serves the simulator over a JSON HTTP API: submit single
// runs (POST /v1/runs), figure-panel sweeps (POST /v1/panels) or
// design-space explorations answered with a latency/throughput/cost Pareto
// front (POST /v1/explore), enumerate the registered network models
// (GET /v1/models), poll or wait on jobs
// (GET /v1/jobs/{id}?wait=1), stream per-point progress as NDJSON
// (GET /v1/jobs/{id}/events), cancel (POST /v1/jobs/{id}/cancel), and scrape
// operational counters (GET /metrics). Identical requests are served
// bit-identically from a content-addressed LRU result cache, and an
// identical uncached request arriving while its twin is queued or running
// coalesces onto it instead of simulating twice.
//
// With -data-dir the daemon is durable: finished results persist to a
// content-addressed, byte-bounded disk store and every job's event stream
// to an append-only journal, so a restarted (even SIGKILLed) daemon serves
// previous results byte-identically with zero points re-simulated, replays
// event streams across restarts, and re-enqueues jobs that were queued or
// running when it died.
//
// The serving path is chaos-hardened: a circuit breaker degrades to
// memory-cache-only when the disk store misbehaves, per-request deadlines
// (deadline_ms) and queue shedding answer analyzable runs with instant
// analytic estimates marked degraded, a watchdog cancels jobs making no
// progress, and job panics fail one job, not the daemon. -chaos (or
// QUARCD_CHAOS) injects a deterministic fault plan into the store's
// filesystem boundary to prove all of that under fire:
//
//	quarcd -data-dir /tmp/qd -chaos 'seed=42,err=0.1,torn=0.05,slow=0.02,delay=2ms'
//
// Examples:
//
//	quarcd -addr :8080
//	quarcd -addr :8080 -data-dir /var/lib/quarcd
//	curl -s localhost:8080/v1/models
//	curl -s localhost:8080/v1/runs?wait=1 -d '{"n":16,"rate":0.01,"beta":0.05}'
//	curl -s localhost:8080/v1/runs?wait=1 -d '{"topo":"ring","n":16,"rate":0.005}'
//	curl -s localhost:8080/v1/panels -d '{"n":16,"beta":0.05,"opts":{"replicates":3}}'
//	curl -s localhost:8080/v1/explore -d '{"models":["quarc","spidergon"],"ns":[16,32],"rates":[0.005,0.01]}'
//	curl -N localhost:8080/v1/jobs/j000001/events
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"quarc/internal/faultinject"
	"quarc/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 2, "jobs executing concurrently (each sweep additionally fans across its own goroutines)")
		queueCap     = flag.Int("queue", 256, "max queued jobs before submissions get 503")
		cacheBytes   = flag.Int64("cache-bytes", 64<<20, "in-memory result-cache budget (payload bytes)")
		dataDir      = flag.String("data-dir", "", "durability directory (empty = fully in-memory)")
		storeBytes   = flag.Int64("store-bytes", 1<<30, "on-disk result-store budget (payload bytes; needs -data-dir)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to finish queued and running jobs on shutdown")
		quiet        = flag.Bool("quiet", false, "suppress per-job log lines")
		chaosSpec    = flag.String("chaos", os.Getenv("QUARCD_CHAOS"), "fault-injection plan for the disk store, e.g. 'seed=42,err=0.1,torn=0.05,slow=0.02,delay=2ms,ops=4000' (default $QUARCD_CHAOS; empty = disabled)")
		watchdog     = flag.Duration("watchdog-stall", 10*time.Minute, "cancel running jobs making no point progress for this long (0 = disabled)")
		breakerK     = flag.Int("breaker-threshold", 5, "consecutive disk-store failures that open the circuit breaker (memory-cache-only until a probe succeeds)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "quarcd: ", log.LstdFlags)
	jobLog := logger
	if *quiet {
		jobLog = nil
	}
	var chaos *faultinject.Plan
	if *chaosSpec != "" {
		spec, err := faultinject.ParseSpec(*chaosSpec)
		if err != nil {
			logger.Fatalf("-chaos: %v", err)
		}
		if *dataDir == "" {
			logger.Fatalf("-chaos needs -data-dir: the fault plan wraps the disk store")
		}
		chaos = faultinject.New(spec)
	}
	svc, err := service.New(service.Config{
		Workers: *workers, QueueCap: *queueCap, CacheBytes: *cacheBytes,
		DataDir: *dataDir, StoreBytes: *storeBytes,
		Chaos: chaos, WatchdogStall: *watchdog, BreakerThreshold: *breakerK, Log: jobLog,
	})
	if err != nil {
		logger.Fatalf("init: %v", err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	durable := "in-memory only"
	if *dataDir != "" {
		durable = "data dir " + *dataDir
	}
	logger.Printf("listening on %s (%d executors, queue %d, cache %d bytes, %s)",
		*addr, *workers, *queueCap, *cacheBytes, durable)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	logger.Printf("shutting down: draining jobs (up to %v)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := svc.Drain(drainCtx); err != nil {
		logger.Printf("drain incomplete, cancelled remaining jobs: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("serve: %v", err)
	}
	logger.Printf("bye")
}

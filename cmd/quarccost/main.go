// Command quarccost prints the FPGA area model: the module-wise breakdown
// of the Quarc switch (paper Table 1), the Quarc-versus-Spidergon cost
// comparison across flit widths (paper Fig 12), and the processing-element
// queue overhead analysis of §3.1.
//
// Examples:
//
//	quarccost
//	quarccost -width 64
package main

import (
	"flag"
	"fmt"
	"os"

	"quarc"
	"quarc/internal/cost"
	"quarc/internal/plot"
)

func main() {
	width := flag.Int("width", 32, "payload width for the module-wise breakdown (16, 32 or 64)")
	flag.Parse()

	valid := false
	for _, w := range cost.Widths {
		if *width == w {
			valid = true
		}
	}
	if !valid {
		fmt.Fprintf(os.Stderr, "quarccost: width must be one of %v\n", cost.Widths)
		os.Exit(2)
	}

	for _, sw := range []quarc.SwitchCost{quarc.QuarcSwitchCost(), quarc.SpidergonSwitchCost()} {
		fmt.Printf("== %d-bit %s switch, module-wise slices ==\n", *width, sw.Name)
		var rows [][]string
		total := 0
		for _, r := range sw.ModuleSlices(*width) {
			rows = append(rows, []string{r.Module, fmt.Sprint(r.Slices)})
			total += r.Slices
		}
		rows = append(rows, []string{"TOTAL", fmt.Sprint(total)})
		fmt.Println(plot.Table([]string{"module", "slices"}, rows))
	}

	fmt.Println("== Fig 12: slice count vs flit width ==")
	var labels []string
	var values []float64
	for _, r := range quarc.Fig12() {
		labels = append(labels,
			fmt.Sprintf("quarc %d-bit", r.Width),
			fmt.Sprintf("spidergon %d-bit", r.Width))
		values = append(values, float64(r.QuarcSlices), float64(r.SpidergonSlices))
	}
	fmt.Println(plot.Bars("occupied slices", labels, values, 48))

	fmt.Println("== PE address-queue overhead (paper §3.1) ==")
	qb, sb, err := cost.PEQueueOverhead(16, 2, 6)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quarccost: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("quarc: 4 address queues, %.0f bits total; spidergon: 1 queue, %.0f bits\n", qb, sb)
	fmt.Printf("overhead ratio %.2fx on addresses only; packet RAM identical for both\n", qb/sb)
}

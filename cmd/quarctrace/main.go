// Command quarctrace runs a small scripted scenario on a chosen topology
// with flit-level tracing enabled and prints the event log — the quickest
// way to watch a packet worm its way through the switches, see a broadcast
// fan out over its four BRCP branches, or compare against the Spidergon's
// store-and-forward chains.
//
// Examples:
//
//	quarctrace -topo quarc -n 16 -scenario broadcast
//	quarctrace -topo spidergon -n 16 -scenario broadcast
//	quarctrace -topo quarc -n 16 -scenario unicast -src 0 -dst 11
//	quarctrace -topo quarc -n 16 -scenario multicast
package main

import (
	"flag"
	"fmt"
	"os"

	"quarc/internal/network"
	"quarc/internal/quarc"
	"quarc/internal/spidergon"
	"quarc/internal/trace"
)

func main() {
	var (
		topo     = flag.String("topo", "quarc", "quarc or spidergon")
		n        = flag.Int("n", 16, "nodes")
		scenario = flag.String("scenario", "broadcast", "unicast, broadcast or multicast (quarc only)")
		src      = flag.Int("src", 0, "source node")
		dst      = flag.Int("dst", 5, "destination (unicast)")
		m        = flag.Int("m", 4, "message length in flits")
		max      = flag.Int("max", 200, "max trace lines to print")
	)
	flag.Parse()

	var fab *network.Fabric
	send := func() {}
	switch *topo {
	case "quarc":
		f, ts, err := quarc.Build(quarc.Config{N: *n, Depth: 4})
		if err != nil {
			fatal(err)
		}
		fab = f
		switch *scenario {
		case "unicast":
			send = func() { ts[*src].SendUnicast(*dst, *m, fab.Now()) }
		case "broadcast":
			send = func() { ts[*src].SendBroadcast(*m, fab.Now()) }
		case "multicast":
			send = func() {
				ts[*src].SendMulticast([]int{2, 5, 11, 14}, *m, fab.Now())
			}
		default:
			fatal(fmt.Errorf("unknown scenario %q", *scenario))
		}
	case "spidergon":
		f, as, err := spidergon.Build(spidergon.Config{N: *n, Depth: 4})
		if err != nil {
			fatal(err)
		}
		fab = f
		switch *scenario {
		case "unicast":
			send = func() { as[*src].SendUnicast(*dst, *m, fab.Now()) }
		case "broadcast":
			send = func() { as[*src].SendBroadcast(*m, fab.Now()) }
		default:
			fatal(fmt.Errorf("scenario %q not supported on spidergon", *scenario))
		}
	default:
		fatal(fmt.Errorf("unknown topology %q", *topo))
	}

	fab.Trace = trace.NewBuffer(65536)
	send()
	for i := 0; i < 1_000_000 && fab.Tracker.InFlight() > 0; i++ {
		fab.Step()
	}
	events := fab.Trace.Events()
	fmt.Printf("%s %s on %d nodes, M=%d: %d trace events, completed at cycle %d\n\n",
		*topo, *scenario, *n, *m, len(events), fab.Now())
	for i, e := range events {
		if i >= *max {
			fmt.Printf("... %d more events (raise -max)\n", len(events)-i)
			break
		}
		fmt.Println(e)
	}
	fmt.Printf("\nflits forwarded: %d, delivered: %d, duplicates: %d\n",
		fab.FlitsForwarded(), fab.FlitsDelivered(), fab.Tracker.Duplicates())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "quarctrace: %v\n", err)
	os.Exit(1)
}

// Command quarcexplore runs a design-space exploration locally: it expands a
// parameter lattice (models x sizes x offered rates x buffer depths x
// multicast presets), simulates every point, and prints the
// latency/throughput/cost Pareto front — the same engine POST /v1/explore
// serves, without the daemon.
//
// Examples:
//
//	quarcexplore -models quarc,spidergon -ns 16,32 -rates 0.005,0.01,0.02
//	quarcexplore -models quarc,mesh -ns 16 -rates 0.01 -depths 2,4,8 -fast
//	quarcexplore -models quarc,spidergon -ns 16 -rates 0.01 -csv front.csv
//
// The CSV lists every lattice point (not just the front) with an on_front
// column, so the dominated cloud can be re-plotted alongside the frontier.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"quarc/internal/experiments"
	"quarc/internal/explore"
	"quarc/internal/model"
	"quarc/internal/plot"
)

func main() {
	models := flag.String("models", "quarc,spidergon", "comma-separated model names (see -list)")
	ns := flag.String("ns", "16", "comma-separated network sizes")
	rates := flag.String("rates", "0.005,0.01,0.02", "comma-separated offered loads (msgs/node/cycle)")
	depths := flag.String("depths", "", "comma-separated buffer depths (empty: simulator default)")
	mcast := flag.String("mcast", "", "comma-separated multicast presets frac:size (e.g. 0.1:4,0.2:8)")
	msgLen := flag.Int("msglen", 16, "message length in flits")
	beta := flag.Float64("beta", 0, "broadcast fraction of generated messages")
	width := flag.Int("width", 32, "payload width (bits) for the silicon-cost axis")
	replicates := flag.Int("replicates", 1, "independent replicates per point")
	workers := flag.Int("workers", 0, "parallel point evaluations (0: GOMAXPROCS)")
	seed := flag.Uint64("seed", 0, "base RNG seed (0: default)")
	fast := flag.Bool("fast", false, "reduced cycle budgets")
	csvPath := flag.String("csv", "", "write every lattice point as CSV to this file (- for stdout)")
	list := flag.Bool("list", false, "list registered models and exit")
	flag.Parse()

	if *list {
		for _, m := range model.All() {
			fmt.Printf("%-18s %s\n", m.Name, m.Description)
		}
		return
	}

	opts := experiments.DefaultOpts()
	if *fast {
		opts = experiments.FastOpts()
	}
	opts.Replicates = *replicates
	if *seed != 0 {
		opts.Seed = *seed
	}

	spec := explore.Spec{
		Models: splitList(*models),
		MsgLen: *msgLen, Beta: *beta, CostWidth: *width,
	}
	var err error
	if spec.Ns, err = splitInts(*ns); err != nil {
		die("bad -ns: %v", err)
	}
	if spec.Rates, err = splitFloats(*rates); err != nil {
		die("bad -rates: %v", err)
	}
	if spec.Depths, err = splitInts(*depths); err != nil {
		die("bad -depths: %v", err)
	}
	if spec.Mcast, err = parseMcast(*mcast); err != nil {
		die("bad -mcast: %v", err)
	}

	eval := func(ctx context.Context, p explore.Point) (experiments.Result, bool, error) {
		agg, _, err := experiments.RunReplicatedContext(ctx, p.Cfg, opts.Replicates, 1, nil)
		return agg, false, err
	}
	done := 0
	onPoint := func(i int, p explore.Point, res experiments.Result, cached bool) {
		done++
		fmt.Fprintf(os.Stderr, "point %d done: %s n=%d rate=%g\n", done, p.Model, p.N, p.Rate)
	}
	oc, err := explore.Run(context.Background(), spec, opts, *workers, eval, onPoint)
	if err != nil {
		die("%v", err)
	}

	for _, sk := range oc.Skipped {
		fmt.Fprintf(os.Stderr, "skipped %s n=%d: %s\n", sk.Model, sk.N, sk.Reason)
	}
	fmt.Printf("lattice: %d points (%d duplicates collapsed, %d combinations skipped); front: %d points\n\n",
		len(oc.Points), oc.Deduped, len(oc.Skipped), len(oc.Front))

	fmt.Printf("== Pareto front: latency (min) / throughput (max) / cost (min, %d-bit slices) ==\n", effWidth(*width))
	var rows [][]string
	for _, i := range oc.Front {
		p := oc.Points[i]
		rows = append(rows, []string{
			p.Model, fmt.Sprint(p.N), fmt.Sprintf("%g", p.Rate), fmt.Sprint(p.Depth),
			mcastLabel(p.McastFrac, p.McastSize),
			latLabel(p), fmt.Sprintf("%.4f", p.Throughput), costLabel(p), analyticLabel(p),
		})
	}
	fmt.Println(plot.Table(
		[]string{"model", "n", "rate", "depth", "mcast", "latency", "throughput", "cost", "analytic err"},
		rows))

	if *csvPath != "" {
		if err := writeCSV(*csvPath, oc); err != nil {
			die("write csv: %v", err)
		}
	}
}

func effWidth(w int) int {
	if w == 0 {
		return 32
	}
	return w
}

func latLabel(p explore.PointOutcome) string {
	if p.Result.UnicastCount == 0 && p.Result.BcastCount == 0 {
		return "unmeasured"
	}
	return fmt.Sprintf("%.2f", p.Latency)
}

func costLabel(p explore.PointOutcome) string {
	if !p.CostKnown {
		return "unknown"
	}
	return fmt.Sprint(p.CostSlices)
}

func analyticLabel(p explore.PointOutcome) string {
	if !p.AnalyticErrOK {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", p.AnalyticErrPc)
}

func mcastLabel(frac float64, size int) string {
	if frac == 0 {
		return "-"
	}
	return fmt.Sprintf("%g:%d", frac, size)
}

// writeCSV emits every lattice point; the README documents the schema.
func writeCSV(path string, oc explore.Outcome) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	w := csv.NewWriter(out)
	if err := w.Write([]string{
		"on_front", "dominated_by", "model", "n", "rate", "depth",
		"mcast_frac", "mcast_size", "latency", "throughput",
		"cost_slices", "cost_known", "analytic_latency", "analytic_err_pc",
	}); err != nil {
		return err
	}
	for i, p := range oc.Points {
		lat, alat, aerr := "", "", ""
		if p.Result.UnicastCount > 0 || p.Result.BcastCount > 0 {
			lat = fmt.Sprintf("%g", p.Latency)
		}
		if p.AnalyticOK {
			alat = fmt.Sprintf("%g", p.AnalyticLatency)
		}
		if p.AnalyticErrOK {
			aerr = fmt.Sprintf("%g", p.AnalyticErrPc)
		}
		domBy := ""
		if d := oc.DominatedBy[i]; d >= 0 {
			domBy = fmt.Sprint(d)
		}
		cost := ""
		if p.CostKnown {
			cost = fmt.Sprint(p.CostSlices)
		}
		if err := w.Write([]string{
			fmt.Sprint(oc.DominatedBy[i] == -1), domBy,
			p.Model, fmt.Sprint(p.N), fmt.Sprintf("%g", p.Rate), fmt.Sprint(p.Depth),
			fmt.Sprintf("%g", p.McastFrac), fmt.Sprint(p.McastSize),
			lat, fmt.Sprintf("%g", p.Throughput),
			cost, fmt.Sprint(p.CostKnown), alat, aerr,
		}); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func splitFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range splitList(s) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseMcast(s string) ([]explore.McastKnob, error) {
	var out []explore.McastKnob
	for _, f := range splitList(s) {
		fracStr, sizeStr, ok := strings.Cut(f, ":")
		if !ok {
			return nil, fmt.Errorf("preset %q is not frac:size", f)
		}
		frac, err := strconv.ParseFloat(fracStr, 64)
		if err != nil {
			return nil, err
		}
		size, err := strconv.Atoi(sizeStr)
		if err != nil {
			return nil, err
		}
		out = append(out, explore.McastKnob{Frac: frac, Size: size})
	}
	return out, nil
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "quarcexplore: "+format+"\n", args...)
	os.Exit(2)
}

// Benchmarks regenerating each table and figure of the paper's evaluation
// at reduced simulation length (the full-fidelity sweeps are produced by
// cmd/quarcbench; these benches exercise the identical code paths and give
// per-experiment wall-clock costs).
//
// One benchmark per paper artefact:
//
//	Fig 9  (N=16, beta=5%, M in {8,16,32})  -> BenchmarkFig9_*
//	Fig 10 (M=16, beta=10%, N in {16,32,64}) -> BenchmarkFig10_*
//	Fig 11 (N=64, M=16, beta in {0,5,10}%)   -> BenchmarkFig11_*
//	Table 1 (module-wise switch cost)        -> BenchmarkTable1_CostModel
//	Fig 12 (cost vs width)                   -> BenchmarkFig12_CostComparison
//	§3.2 simulator verification              -> BenchmarkVerification_Analytic
//	§2.2 modification ablation               -> BenchmarkAblation_Modifications
//	§4 future-work mesh/torus comparison     -> BenchmarkExtension_MeshComparison
package quarc_test

import (
	"testing"

	"quarc"
)

// benchOpts keeps a single benchmark iteration around a few milliseconds.
func benchOpts() quarc.RunOpts {
	return quarc.RunOpts{Warmup: 200, Measure: 1000, Drain: 6000, Depth: 4, Seed: 1, Points: 3}
}

// benchPoint runs one paired Quarc/Spidergon measurement of a panel
// configuration at a stable mid-grid load.
func benchPoint(b *testing.B, n, msgLen int, beta float64) {
	b.Helper()
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		for _, topo := range []quarc.Topology{quarc.TopoQuarc, quarc.TopoSpidergon} {
			res, err := quarc.Run(quarc.Config{
				Topo: topo, N: n, MsgLen: msgLen, Beta: beta, Rate: 0.004,
				Warmup: opts.Warmup, Measure: opts.Measure, Drain: opts.Drain,
				Depth: opts.Depth, Seed: opts.Seed,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.UnicastCount == 0 {
				b.Fatal("no samples")
			}
		}
	}
}

func BenchmarkFig9_M8(b *testing.B)  { benchPoint(b, 16, 8, 0.05) }
func BenchmarkFig9_M16(b *testing.B) { benchPoint(b, 16, 16, 0.05) }
func BenchmarkFig9_M32(b *testing.B) { benchPoint(b, 16, 32, 0.05) }

func BenchmarkFig10_N16(b *testing.B) { benchPoint(b, 16, 16, 0.10) }
func BenchmarkFig10_N32(b *testing.B) { benchPoint(b, 32, 16, 0.10) }
func BenchmarkFig10_N64(b *testing.B) { benchPoint(b, 64, 16, 0.10) }

func BenchmarkFig11_Beta0(b *testing.B)  { benchPoint(b, 64, 16, 0) }
func BenchmarkFig11_Beta5(b *testing.B)  { benchPoint(b, 64, 16, 0.05) }
func BenchmarkFig11_Beta10(b *testing.B) { benchPoint(b, 64, 16, 0.10) }

func BenchmarkTable1_CostModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := quarc.Table1()
		total := 0
		for _, r := range rows {
			total += r.Slices
		}
		if total != 1453 {
			b.Fatalf("table 1 total %d", total)
		}
	}
}

func BenchmarkFig12_CostComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := quarc.Fig12()
		for _, r := range rows {
			if r.QuarcSlices >= r.SpidergonSlices {
				b.Fatalf("width %d: cost claim violated", r.Width)
			}
		}
	}
}

func BenchmarkVerification_Analytic(b *testing.B) {
	// One low-load Spidergon verification point per iteration (the cheapest
	// §3.2-style cross-check).
	for i := 0; i < b.N; i++ {
		res, err := quarc.Run(quarc.Config{
			Topo: quarc.TopoSpidergon, N: 16, MsgLen: 8, Rate: 0.003,
			Warmup: 200, Measure: 800, Drain: 4000, Seed: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.UnicastMean <= 8 {
			b.Fatal("implausible latency")
		}
	}
}

func BenchmarkAblation_Modifications(b *testing.B) {
	variants := []quarc.Topology{
		quarc.TopoQuarc, quarc.TopoQuarcChainBcast,
		quarc.TopoQuarcSingleQueue, quarc.TopoSpidergon,
	}
	for i := 0; i < b.N; i++ {
		for _, topo := range variants {
			if _, err := quarc.Run(quarc.Config{
				Topo: topo, N: 16, MsgLen: 8, Beta: 0.05, Rate: 0.004,
				Warmup: 200, Measure: 800, Drain: 6000, Seed: 3,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkExtension_MeshComparison(b *testing.B) {
	topos := []quarc.Topology{quarc.TopoQuarc, quarc.TopoMesh, quarc.TopoTorus}
	for i := 0; i < b.N; i++ {
		for _, topo := range topos {
			if _, err := quarc.Run(quarc.Config{
				Topo: topo, N: 16, MsgLen: 8, Beta: 0.05, Rate: 0.004,
				Warmup: 200, Measure: 800, Drain: 6000, Seed: 4,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSweepLowLoad is one low-load sweep point at full evaluation
// windows: the regime most points of every Fig 9-11 curve sit in, where
// almost all routers are empty almost every cycle. This is the benchmark the
// activity-driven scheduler (active-router sets + idle-cycle skipping) is
// aimed at; BENCH_PR4_BASELINE.txt holds the dense-stepping cost.
func BenchmarkSweepLowLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := quarc.Run(quarc.Config{
			Topo: quarc.TopoQuarc, N: 64, MsgLen: 16, Beta: 0.05, Rate: 0.0005,
			Warmup: 2000, Measure: 10000, Drain: 20000, Depth: 4, Seed: 11,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.UnicastCount == 0 || res.Saturated {
			b.Fatalf("low-load point degenerate: %+v", res)
		}
	}
}

// BenchmarkSweepSaturated is one deeply saturated sweep point, where the
// active set is the whole fabric every cycle: the guard that activity-driven
// scheduling costs nothing when there is no idleness to exploit.
func BenchmarkSweepSaturated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := quarc.Run(quarc.Config{
			Topo: quarc.TopoQuarc, N: 16, MsgLen: 16, Beta: 0.05, Rate: 0.1,
			Warmup: 200, Measure: 1000, Drain: 2000, Depth: 4, Seed: 12,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Saturated {
			b.Fatal("saturated point did not saturate")
		}
	}
}

// BenchmarkFabricStep measures the core simulator step cost at a moderate
// load on the largest evaluated network.
func BenchmarkFabricStep(b *testing.B) {
	fab, nodes, err := quarc.NewQuarc(quarc.QuarcConfig{N: 64, Depth: 4})
	if err != nil {
		b.Fatal(err)
	}
	// Prime with traffic.
	for i, nd := range nodes {
		nd.SendUnicast((i+7)%64, 16, 0)
		if i%8 == 0 {
			nd.SendBroadcast(16, 0)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fab.Step()
		if fab.Tracker.InFlight() == 0 {
			b.StopTimer()
			for j, nd := range nodes {
				nd.SendUnicast((j+9)%64, 16, fab.Now())
			}
			b.StartTimer()
		}
	}
}

// BenchmarkFabricStepParallel measures the per-cycle cost of one big fabric
// — a 32x32 mesh, the single-point scale the intra-fabric worker pool
// targets — with the pool off (serial) and at the automatic size. On a
// multi-core machine the auto pool shards each phase across GOMAXPROCS
// workers; on a single-core machine auto resolves to the serial path and the
// two sub-benchmarks coincide.
func BenchmarkFabricStepParallel(b *testing.B) {
	const n = 1024
	for _, bench := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"auto", quarc.DefaultStepWorkers(n)},
	} {
		b.Run(bench.name, func(b *testing.B) {
			fab, nodes, err := quarc.NewMesh(quarc.MeshConfig{W: 32, H: 32, Depth: 4})
			if err != nil {
				b.Fatal(err)
			}
			fab.SetStepWorkers(bench.workers)
			defer fab.Close()
			refill := func(now int64) {
				for i, nd := range nodes {
					nd.SendUnicast((i+31)%n, 16, now)
					nd.SendUnicast((i+997)%n, 16, now)
				}
			}
			refill(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fab.Step()
				if fab.Tracker.InFlight() == 0 {
					b.StopTimer()
					refill(fab.Now())
					b.StartTimer()
				}
			}
		})
	}
}

// BenchmarkPointN1024Saturated runs the tentpole workload end to end: one
// saturated 1024-node mesh design point, serial versus the automatic
// intra-point pool. This is the "one big point" regime where sweep-level
// parallelism has nothing to fan out and only intra-fabric sharding helps.
func BenchmarkPointN1024Saturated(b *testing.B) {
	for _, bench := range []struct {
		name        string
		stepWorkers int
	}{
		{"serial", 1},
		{"auto", 0},
	} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := quarc.Run(quarc.Config{
					Model: "mesh", N: 1024, MsgLen: 16, Rate: 0.05,
					Warmup: 100, Measure: 400, Drain: 500, Depth: 4, Seed: 13,
					StepWorkers: bench.stepWorkers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Saturated {
					b.Fatal("N=1024 point did not saturate")
				}
			}
		})
	}
}

// BenchmarkContention_StallBreakdown exercises the microarchitectural
// stall accounting (the §2.1 bottleneck analysis).
func BenchmarkContention_StallBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := quarc.Run(quarc.Config{
			Topo: quarc.TopoSpidergon, N: 16, MsgLen: 16, Beta: 0.05, Rate: 0.012,
			Warmup: 200, Measure: 800, Drain: 6000, Seed: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkAblation_BufferDepth exercises the §2.3.1 depth parameter.
func BenchmarkAblation_BufferDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, depth := range []int{2, 8} {
			if _, err := quarc.Run(quarc.Config{
				Topo: quarc.TopoQuarc, N: 16, MsgLen: 16, Beta: 0.05, Rate: 0.008,
				Depth: depth, Warmup: 200, Measure: 800, Drain: 6000, Seed: 6,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}
